package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointSubAdd(t *testing.T) {
	p := Point{3, 4}
	q := Point{1, 1}
	v := p.Sub(q)
	if v != (Vec{2, 3}) {
		t.Fatalf("Sub = %v, want {2 3}", v)
	}
	if got := q.Add(v); got != p {
		t.Fatalf("q.Add(p.Sub(q)) = %v, want %v", got, p)
	}
}

func TestDistances(t *testing.T) {
	p := Point{0, 0}
	q := Point{3, 4}
	if d := p.Dist(q); d != 5 {
		t.Errorf("Dist = %v, want 5", d)
	}
	if d := p.DistSq(q); d != 25 {
		t.Errorf("DistSq = %v, want 25", d)
	}
	if d := p.ChebyshevDist(q); d != 4 {
		t.Errorf("ChebyshevDist = %v, want 4", d)
	}
	if d := p.ManhattanDist(q); d != 7 {
		t.Errorf("ManhattanDist = %v, want 7", d)
	}
}

func TestVecOps(t *testing.T) {
	v := Vec{1, 2}
	w := Vec{3, -1}
	if got := v.Add(w); got != (Vec{4, 1}) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); got != (Vec{-2, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); got != (Vec{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Neg(); got != (Vec{-1, -2}) {
		t.Errorf("Neg = %v", got)
	}
	if got := v.Dot(w); got != 1 {
		t.Errorf("Dot = %v", got)
	}
	if got := (Vec{3, 4}).Len(); got != 5 {
		t.Errorf("Len = %v", got)
	}
	if got := (Vec{3, 4}).LenSq(); got != 25 {
		t.Errorf("LenSq = %v", got)
	}
}

func TestVecNorm(t *testing.T) {
	if got := (Vec{0, 0}).Norm(); got != (Vec{}) {
		t.Errorf("zero Norm = %v, want zero", got)
	}
	n := (Vec{3, 4}).Norm()
	if math.Abs(n.Len()-1) > 1e-12 {
		t.Errorf("Norm length = %v, want 1", n.Len())
	}
	if math.Abs(n.X-0.6) > 1e-12 || math.Abs(n.Y-0.8) > 1e-12 {
		t.Errorf("Norm = %v, want {0.6 0.8}", n)
	}
}

func TestVecClamp(t *testing.T) {
	v := Vec{30, 40}
	c := v.Clamp(5)
	if math.Abs(c.Len()-5) > 1e-12 {
		t.Errorf("Clamp length = %v, want 5", c.Len())
	}
	short := Vec{1, 0}
	if got := short.Clamp(5); got != short {
		t.Errorf("Clamp should not grow short vectors: %v", got)
	}
	if got := v.Clamp(0); got != (Vec{}) {
		t.Errorf("Clamp(0) = %v, want zero", got)
	}
	if got := v.Clamp(-1); got != (Vec{}) {
		t.Errorf("Clamp(-1) = %v, want zero", got)
	}
}

func TestRectAroundContains(t *testing.T) {
	r := RectAround(Point{10, 10}, 3)
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{10, 10}, true},
		{Point{13, 13}, true}, // boundary inclusive
		{Point{7, 7}, true},   // boundary inclusive
		{Point{13.1, 10}, false},
		{Point{10, 6.9}, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestRectSpanning(t *testing.T) {
	r := RectSpanning(Point{5, 1}, Point{2, 9})
	want := Rect{2, 1, 5, 9}
	if r != want {
		t.Fatalf("RectSpanning = %v, want %v", r, want)
	}
}

func TestRectEmptyIntersect(t *testing.T) {
	a := Rect{0, 0, 4, 4}
	b := Rect{2, 2, 6, 6}
	got := a.Intersect(b)
	if got != (Rect{2, 2, 4, 4}) {
		t.Errorf("Intersect = %v", got)
	}
	c := Rect{5, 5, 9, 9}
	if !a.Intersect(c).Empty() {
		t.Errorf("disjoint rects should intersect empty")
	}
	if !a.Overlaps(b) || a.Overlaps(c) {
		t.Errorf("Overlaps wrong: a/b=%v a/c=%v", a.Overlaps(b), a.Overlaps(c))
	}
	if (Rect{1, 1, 0, 0}).Empty() != true {
		t.Errorf("inverted rect should be empty")
	}
}

func TestRectUnion(t *testing.T) {
	a := Rect{0, 0, 1, 1}
	b := Rect{2, 2, 3, 3}
	if got := a.Union(b); got != (Rect{0, 0, 3, 3}) {
		t.Errorf("Union = %v", got)
	}
	empty := Rect{1, 1, 0, 0}
	if got := a.Union(empty); got != a {
		t.Errorf("Union with empty = %v, want %v", got, a)
	}
	if got := empty.Union(b); got != b {
		t.Errorf("empty.Union = %v, want %v", got, b)
	}
}

func TestRectMeasures(t *testing.T) {
	r := Rect{1, 2, 5, 4}
	if r.Width() != 4 || r.Height() != 2 || r.Area() != 8 {
		t.Errorf("measures: w=%v h=%v a=%v", r.Width(), r.Height(), r.Area())
	}
	if c := r.Center(); c != (Point{3, 3}) {
		t.Errorf("Center = %v", c)
	}
	empty := Rect{2, 2, 1, 1}
	if empty.Width() != 0 || empty.Height() != 0 || empty.Area() != 0 {
		t.Errorf("empty rect measures should be zero")
	}
}

func TestClampPoint(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	cases := []struct{ in, want Point }{
		{Point{5, 5}, Point{5, 5}},
		{Point{-3, 5}, Point{0, 5}},
		{Point{12, 15}, Point{10, 10}},
	}
	for _, c := range cases {
		if got := r.ClampPoint(c.in); got != c.want {
			t.Errorf("ClampPoint(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

// Property: RectAround(p, r).Contains(q) iff Chebyshev distance ≤ r.
func TestRectAroundMatchesChebyshev(t *testing.T) {
	f := func(px, py, qx, qy float64, r float64) bool {
		if math.IsNaN(px) || math.IsNaN(py) || math.IsNaN(qx) || math.IsNaN(qy) || math.IsNaN(r) {
			return true
		}
		r = math.Abs(math.Mod(r, 100))
		p := Point{math.Mod(px, 1000), math.Mod(py, 1000)}
		q := Point{math.Mod(qx, 1000), math.Mod(qy, 1000)}
		return RectAround(p, r).Contains(q) == (p.ChebyshevDist(q) <= r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: normalizing any nonzero vector yields length 1 (within epsilon),
// and clamping never exceeds the bound.
func TestNormClampProperties(t *testing.T) {
	f := func(x, y, m float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(m) || math.IsInf(x, 0) || math.IsInf(y, 0) {
			return true
		}
		v := Vec{math.Mod(x, 1e6), math.Mod(y, 1e6)}
		if v.Len() > 0 {
			if math.Abs(v.Norm().Len()-1) > 1e-9 {
				return false
			}
		}
		m = math.Abs(math.Mod(m, 1e4))
		return v.Clamp(m).Len() <= m*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: intersection is contained in both operands; union contains both.
func TestIntersectUnionProperties(t *testing.T) {
	f := func(a, b, c, d, e, f2, g, h float64) bool {
		for _, v := range []float64{a, b, c, d, e, f2, g, h} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		r := RectSpanning(Point{math.Mod(a, 100), math.Mod(b, 100)}, Point{math.Mod(c, 100), math.Mod(d, 100)})
		s := RectSpanning(Point{math.Mod(e, 100), math.Mod(f2, 100)}, Point{math.Mod(g, 100), math.Mod(h, 100)})
		i := r.Intersect(s)
		u := r.Union(s)
		if !i.Empty() {
			if !r.Contains(i.Center()) || !s.Contains(i.Center()) {
				return false
			}
		}
		return u.Contains(r.Center()) && u.Contains(s.Center())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
