// Package geom provides the planar geometry primitives used throughout the
// engine: points, vectors, and axis-aligned rectangles.
//
// The paper's index structures (Section 5.3) operate on orthogonal range
// queries, i.e. axis-aligned rectangles; games prefer rectangles (or L1
// "diamonds", which are rotated rectangles) over circles for areas of effect.
// All coordinates are float64 game-grid units.
package geom

import "math"

// Point is a location on the game grid.
type Point struct {
	X, Y float64
}

// Vec is a displacement between two points.
type Vec struct {
	X, Y float64
}

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Vec { return Vec{p.X - q.X, p.Y - q.Y} }

// Add translates p by v.
func (p Point) Add(v Vec) Point { return Point{p.X + v.X, p.Y + v.Y} }

// DistSq returns the squared Euclidean distance between p and q.
func (p Point) DistSq(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Sqrt(p.DistSq(q)) }

// ChebyshevDist returns the L∞ distance between p and q. A unit with a
// square "in range" box of half-extent r covers exactly the points at
// Chebyshev distance ≤ r, so this is the natural metric for the paper's
// rectangular range conditions.
func (p Point) ChebyshevDist(q Point) float64 {
	return math.Max(math.Abs(p.X-q.X), math.Abs(p.Y-q.Y))
}

// ManhattanDist returns the L1 distance between p and q.
func (p Point) ManhattanDist(q Point) float64 {
	return math.Abs(p.X-q.X) + math.Abs(p.Y-q.Y)
}

// Add returns the componentwise sum of v and w.
func (v Vec) Add(w Vec) Vec { return Vec{v.X + w.X, v.Y + w.Y} }

// Sub returns the componentwise difference of v and w.
func (v Vec) Sub(w Vec) Vec { return Vec{v.X - w.X, v.Y - w.Y} }

// Scale returns v scaled by s.
func (v Vec) Scale(s float64) Vec { return Vec{v.X * s, v.Y * s} }

// Neg returns the opposite vector.
func (v Vec) Neg() Vec { return Vec{-v.X, -v.Y} }

// Len returns the Euclidean length of v.
func (v Vec) Len() float64 { return math.Hypot(v.X, v.Y) }

// LenSq returns the squared Euclidean length of v.
func (v Vec) LenSq() float64 { return v.X*v.X + v.Y*v.Y }

// Dot returns the dot product of v and w.
func (v Vec) Dot(w Vec) float64 { return v.X*w.X + v.Y*w.Y }

// Norm returns v scaled to unit length. The zero vector normalizes to the
// zero vector, matching the post-processing query's convention that a unit
// with no movement intent stays put.
func (v Vec) Norm() Vec {
	l := v.Len()
	if l == 0 {
		return Vec{}
	}
	return Vec{v.X / l, v.Y / l}
}

// Clamp returns v shortened to length at most max (a unit cannot move more
// than its per-tick walk distance).
func (v Vec) Clamp(max float64) Vec {
	if max <= 0 {
		return Vec{}
	}
	l := v.Len()
	if l <= max {
		return v
	}
	return v.Scale(max / l)
}

// Rect is an axis-aligned rectangle, closed on all sides: it contains the
// points with MinX ≤ x ≤ MaxX and MinY ≤ y ≤ MaxY. An inverted rectangle
// (Min > Max on either axis) is empty.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// RectAround returns the square of half-extent r centered at p — the shape
// of every "in range" condition in the battle simulation.
func RectAround(p Point, r float64) Rect {
	return Rect{p.X - r, p.Y - r, p.X + r, p.Y + r}
}

// RectSpanning returns the smallest rectangle containing both p and q.
func RectSpanning(p, q Point) Rect {
	return Rect{
		math.Min(p.X, q.X), math.Min(p.Y, q.Y),
		math.Max(p.X, q.X), math.Max(p.Y, q.Y),
	}
}

// Contains reports whether p lies inside r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// Empty reports whether r contains no points.
func (r Rect) Empty() bool { return r.MinX > r.MaxX || r.MinY > r.MaxY }

// Intersect returns the intersection of r and s (possibly empty).
func (r Rect) Intersect(s Rect) Rect {
	return Rect{
		math.Max(r.MinX, s.MinX), math.Max(r.MinY, s.MinY),
		math.Min(r.MaxX, s.MaxX), math.Min(r.MaxY, s.MaxY),
	}
}

// Union returns the smallest rectangle containing both r and s. Unioning
// with an empty rectangle returns the other operand.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		math.Min(r.MinX, s.MinX), math.Min(r.MinY, s.MinY),
		math.Max(r.MaxX, s.MaxX), math.Max(r.MaxY, s.MaxY),
	}
}

// Overlaps reports whether r and s share at least one point.
func (r Rect) Overlaps(s Rect) bool { return !r.Intersect(s).Empty() }

// Width returns the X extent of r (0 for empty rectangles).
func (r Rect) Width() float64 {
	if r.Empty() {
		return 0
	}
	return r.MaxX - r.MinX
}

// Height returns the Y extent of r (0 for empty rectangles).
func (r Rect) Height() float64 {
	if r.Empty() {
		return 0
	}
	return r.MaxY - r.MinY
}

// Area returns the area of r (0 for empty rectangles).
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the midpoint of r.
func (r Rect) Center() Point { return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2} }

// ClampPoint returns the point of r nearest to p. For empty rectangles the
// result is unspecified but finite.
func (r Rect) ClampPoint(p Point) Point {
	return Point{clamp(p.X, r.MinX, r.MaxX), clamp(p.Y, r.MinY, r.MaxY)}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
