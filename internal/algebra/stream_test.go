package algebra

import (
	"errors"
	"math"
	"strings"
	"testing"

	"github.com/epicscale/sgl/internal/rng"
	"github.com/epicscale/sgl/internal/sgl/ast"
	"github.com/epicscale/sgl/internal/sgl/interp"
	"github.com/epicscale/sgl/internal/table"
)

// collectEffects runs the plan under one executor configuration and
// returns the emitted effect rows in order.
func collectEffects(t testing.TB, x *Executor) [][]float64 {
	t.Helper()
	var out [][]float64
	if err := x.Effects(func(row []float64) {
		out = append(out, append([]float64(nil), row...))
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// bitsEqualRows compares effect-row lists cell-exactly (Float64bits, so
// NaN payloads and signed zeros count), order included.
func bitsEqualRows(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for c := range a[i] {
			if math.Float64bits(a[i][c]) != math.Float64bits(b[i][c]) {
				return false
			}
		}
	}
	return true
}

// keyedBitsEqual compares two keyed tables cell-exactly after sorting by
// key. Tick output row order follows effect emission order, which
// legitimately differs between the unit-at-a-time interpreter and the
// Apply-major executor (Combine groups by first occurrence); comparisons
// against the interpreter are therefore keyed, while executor-vs-executor
// comparisons stay order-strict (bitsEqualTables).
func keyedBitsEqual(a, b *table.Table) bool {
	if a.Len() != b.Len() {
		return false
	}
	ac, bc := a.Clone(), b.Clone()
	ac.SortByKey()
	bc.SortByKey()
	return bitsEqualTables(ac, bc)
}

// bitsEqualTables is identicalTables from the engine tests: cell-exact
// including row order.
func bitsEqualTables(a, b *table.Table) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := range a.Rows {
		for c := range a.Rows[i] {
			if math.Float64bits(a.Rows[i][c]) != math.Float64bits(b.Rows[i][c]) {
				return false
			}
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// NewExecutorRange bounds validation (regression: invalid shard bounds
// used to reach the Base node's slice expression and panic mid-tick).

func TestNewExecutorRangeValidation(t *testing.T) {
	prog := compile(t, figure3Script)
	plan, err := Translate(prog)
	if err != nil {
		t.Fatal(err)
	}
	env := randomArmy(t, 1, 10, 20)
	r := rng.New(1).Tick(1)
	n := env.Len()

	valid := [][2]int{{0, n}, {0, -1}, {n, n}, {0, 0}, {3, 3}, {2, 7}}
	for _, b := range valid {
		x, err := NewExecutorRange(prog, plan, env, interp.NewNaive(prog, env, r), r, b[0], b[1])
		if err != nil {
			t.Errorf("bounds [%d,%d): unexpected error %v", b[0], b[1], err)
			continue
		}
		// The range must actually evaluate, not just construct.
		if err := x.Effects(func([]float64) {}); err != nil {
			t.Errorf("bounds [%d,%d): Effects failed: %v", b[0], b[1], err)
		}
	}

	invalid := [][2]int{{0, n + 1}, {-1, 5}, {-3, -1}, {5, 2}, {0, -2}, {1, -1}, {n + 1, n + 1}}
	for _, b := range invalid {
		_, err := NewExecutorRange(prog, plan, env, interp.NewNaive(prog, env, r), r, b[0], b[1])
		if err == nil {
			t.Errorf("bounds [%d,%d): expected *RangeError, got nil", b[0], b[1])
			continue
		}
		var re *RangeError
		if !errors.As(err, &re) {
			t.Errorf("bounds [%d,%d): error %v is not a *RangeError", b[0], b[1], err)
			continue
		}
		if re.Lo != b[0] || re.Hi != b[1] || re.Len != n {
			t.Errorf("bounds [%d,%d): RangeError carries [%d,%d) len %d", b[0], b[1], re.Lo, re.Hi, re.Len)
		}
	}
}

// Sharded streaming executors over a partition of the table must emit,
// concatenated in shard order, exactly the full-table effect sequence —
// the property the parallel engine's ordered merge relies on.
func TestStreamingShardsConcatenate(t *testing.T) {
	prog := compile(t, figure3Script)
	plan, err := Translate(prog)
	if err != nil {
		t.Fatal(err)
	}
	Optimize(plan)
	env := randomArmy(t, 4, 40, 30)
	r := rng.New(4).Tick(2)

	whole := collectEffects(t, NewExecutor(prog, plan, env, interp.NewNaive(prog, env, r), r))

	// Effects interleave per Apply node, so shard-concatenation only holds
	// per plan walk; emulate the engine by walking Applies explicitly.
	applies, err := plan.Applies()
	if err != nil {
		t.Fatal(err)
	}
	cuts := []int{0, 13, 14, 40}
	perApply := make([][][]float64, len(applies))
	for i := 0; i+1 < len(cuts); i++ {
		x, err := NewExecutorRange(prog, plan, env, interp.NewNaive(prog, env, r), r, cuts[i], cuts[i+1])
		if err != nil {
			t.Fatal(err)
		}
		for j, ap := range applies {
			err := x.EachUnit(ap.In, func(row *Row) error {
				args, err := x.ApplyArgs(ap, row)
				if err != nil {
					return err
				}
				var applyErr error
				x.prov.SelectTargets(ap.Def, row.Unit, args, func(tgt []float64) {
					if applyErr != nil {
						return
					}
					eff, err := x.BuildEffectRow(ap.Def, row.Unit, args, tgt)
					if err != nil {
						applyErr = err
						return
					}
					perApply[j] = append(perApply[j], append([]float64(nil), eff...))
				})
				return applyErr
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	var merged [][]float64
	for _, rows := range perApply {
		merged = append(merged, rows...)
	}
	// The serial executor also walks Applies in plan order (via Combine
	// kids), so the node-major shard-minor merge must reproduce it.
	if !bitsEqualRows(whole, merged) {
		t.Fatal("sharded streaming executors do not concatenate to the full-table effect sequence")
	}
}

// ---------------------------------------------------------------------------
// Streaming ≡ materializing, at the algebra level.

func TestStreamingMatchesMaterializingFigure3(t *testing.T) {
	prog := compile(t, figure3Script)
	for seed := uint64(1); seed <= 5; seed++ {
		env := randomArmy(t, seed, 60, 40)
		r := rng.New(seed).Tick(3)

		for _, opt := range []bool{false, true} {
			plan, err := Translate(prog)
			if err != nil {
				t.Fatal(err)
			}
			if opt {
				Optimize(plan)
			}
			mx := NewExecutor(prog, plan, env, interp.NewNaive(prog, env, r), r)
			mx.SetMaterialize(true)
			mat := collectEffects(t, mx)
			stream := collectEffects(t, NewExecutor(prog, plan, env, interp.NewNaive(prog, env, r), r))
			if !bitsEqualRows(mat, stream) {
				t.Fatalf("seed %d opt=%v: streaming effects differ from materializing", seed, opt)
			}
			if len(mat) == 0 {
				t.Fatalf("seed %d opt=%v: fixture produced no effects — test is vacuous", seed, opt)
			}
		}
	}
}

// Shared-subplan aliasing audit (the Extend-mutates-shared-rows hazard):
// a let consumed by both branches of an if/else is one Extend node feeding
// two Select consumers. Materializing shares the *Row objects across both
// branches; streaming shares the flat Ext backing plus the done bitset and
// Select verdict memos. Both must agree with the interpreter exactly.
func TestSharedSubplanBranches(t *testing.T) {
	const src = `
aggregate Foes(u) :=
  count(*)
  over e where e.player <> u.player;
action Tag(u, v) := on e where e.key = u.key set damage = v;
action Mark(u, v) := on e where e.key = u.key set inaura = v;
function main(u) {
  (let c = Foes(u)) {
    if c > 20 and u.health > 14 then perform Tag(u, c * 2);
    else perform Mark(u, c + 1)
  }
}`
	prog := compile(t, src)
	for seed := uint64(1); seed <= 3; seed++ {
		env := randomArmy(t, seed, 50, 25)
		r := rng.New(seed).Tick(1)
		want, err := interp.RunTickNaive(prog, env, r)
		if err != nil {
			t.Fatal(err)
		}
		for _, opt := range []bool{false, true} {
			plan, err := Translate(prog)
			if err != nil {
				t.Fatal(err)
			}
			if opt {
				Optimize(plan)
			}
			var ref *table.Table // materializing run, per plan
			for _, mat := range []bool{true, false} {
				x := NewExecutor(prog, plan, env, interp.NewNaive(prog, env, r), r)
				x.SetMaterialize(mat)
				got, err := x.Tick()
				if err != nil {
					t.Fatal(err)
				}
				// Keyed vs the interpreter (emission interleaving differs),
				// order-strict between the two executor paths.
				if !keyedBitsEqual(got, want) {
					t.Fatalf("seed %d opt=%v materialize=%v: shared-subplan tick differs from interpreter", seed, opt, mat)
				}
				if ref == nil {
					ref = got
				} else if !bitsEqualTables(got, ref) {
					t.Fatalf("seed %d opt=%v: streaming tick not bit-identical to materializing", seed, opt)
				}
			}
		}
	}
}

// Every extension slot must be owned by exactly one Extend node — the
// structural invariant that makes in-place row extension (materializing)
// and the per-(row, slot) done bitset (streaming) sound. The translator
// alpha-renames per inlining and the optimizer only rewires edges, so
// this must hold before and after Optimize.
func TestExtendSlotOwnership(t *testing.T) {
	progs := map[string]string{"figure3": figure3Script, "inline": `
action Move(u, dx, dy) := on e where e.key = u.key set movevect_x = dx, movevect_y = dy;
function evade(w, v) { (let scaled = v * 2) perform Move(w, scaled) }
function main(u) {
  if u.health < 10 then perform evade(u, (1, 1)); else perform evade(u, (0 - 1, 0 - 1))
}`}
	for name, src := range progs {
		t.Run(name, func(t *testing.T) {
			prog := compile(t, src)
			for _, opt := range []bool{false, true} {
				plan, err := Translate(prog)
				if err != nil {
					t.Fatal(err)
				}
				if opt {
					Optimize(plan)
				}
				owner := map[int]*Extend{}
				for _, n := range plan.Nodes() {
					e, ok := n.(*Extend)
					if !ok {
						continue
					}
					if prev, dup := owner[e.Slot]; dup && prev != e {
						t.Fatalf("opt=%v: slot %d owned by two Extends (%s, %s)", opt, e.Slot, prev.Name, e.Name)
					}
					owner[e.Slot] = e
					if e.Slot < 0 || e.Slot >= plan.Slots {
						t.Fatalf("opt=%v: slot %d out of range [0,%d)", opt, e.Slot, plan.Slots)
					}
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Pipeline compilation: guard pushdown and greedy conjunct ordering.

func TestPipelineGuardPushdown(t *testing.T) {
	// Unoptimized figure3: the MoveInDirection chain is
	// Base → π(c) → π(away) → σ(c > u.morale). The guard reads only slot c,
	// so compilation must bubble it below the away extension:
	// [π(c), σ, π(away)].
	prog := compile(t, figure3Script)
	plan, err := Translate(prog)
	if err != nil {
		t.Fatal(err)
	}
	env := randomArmy(t, 1, 10, 20)
	r := rng.New(1).Tick(1)
	x := NewExecutor(prog, plan, env, interp.NewNaive(prog, env, r), r)

	applies, err := plan.Applies()
	if err != nil {
		t.Fatal(err)
	}
	var move *Apply
	for _, ap := range applies {
		if ap.Def.Name == "MoveInDirection" {
			move = ap
		}
	}
	if move == nil {
		t.Fatal("no MoveInDirection apply in figure3 plan")
	}
	p, err := x.pipelineFor(move.In)
	if err != nil {
		t.Fatal(err)
	}
	var stages []stage
	for _, seg := range p.segs {
		stages = append(stages, seg.stages...)
	}
	if len(stages) != 3 {
		t.Fatalf("stage count = %d, want 3", len(stages))
	}
	if stages[0].ext == nil || !strings.HasPrefix(stages[0].ext.Name, "c") {
		t.Fatalf("stage 0 should be the c extension, got %+v", stages[0])
	}
	if stages[1].sel == nil {
		t.Fatalf("stage 1 should be the pushed-down guard, got %+v", stages[1])
	}
	if stages[2].ext == nil || !strings.HasPrefix(stages[2].ext.Name, "away") {
		t.Fatalf("stage 2 should be the away extension, got %+v", stages[2])
	}
}

func TestPipelineConjunctOrdering(t *testing.T) {
	// The FireAt chain's guard is "c > 0 and u.cooldown = 0": greedy
	// ordering must evaluate the equality before the range conjunct.
	prog := compile(t, figure3Script)
	plan, err := Translate(prog)
	if err != nil {
		t.Fatal(err)
	}
	env := randomArmy(t, 1, 10, 20)
	r := rng.New(1).Tick(1)
	x := NewExecutor(prog, plan, env, interp.NewNaive(prog, env, r), r)
	applies, err := plan.Applies()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ap := range applies {
		p, err := x.pipelineFor(ap.In)
		if err != nil {
			t.Fatal(err)
		}
		for _, seg := range p.segs {
			for _, st := range seg.stages {
				if st.sel == nil || len(st.conjs) < 2 {
					continue
				}
				found = true
				for i := 1; i < len(st.conjs); i++ {
					if ClassifyConjunct(st.conjs[i-1]) > ClassifyConjunct(st.conjs[i]) {
						t.Fatalf("conjuncts out of greedy order: class %d before class %d",
							ClassifyConjunct(st.conjs[i-1]), ClassifyConjunct(st.conjs[i]))
					}
				}
			}
		}
	}
	if !found {
		t.Fatal("no multi-conjunct Select stage compiled — fixture no longer covers ordering")
	}
}

func num(v float64) *ast.NumLit { return &ast.NumLit{Val: v} }

func TestConjClass(t *testing.T) {
	cmp := func(op ast.CmpOp, x, y ast.Term) ast.Cond { return &ast.Compare{Op: op, X: x, Y: y} }
	cases := []struct {
		name string
		cond ast.Cond
		want ConjunctClass
	}{
		{"eq", cmp(ast.Eq, num(1), num(2)), ClassEqGuard},
		{"lt", cmp(ast.Lt, num(1), num(2)), ClassRangeGuard},
		{"le", cmp(ast.Le, num(1), num(2)), ClassRangeGuard},
		{"gt", cmp(ast.Gt, num(1), num(2)), ClassRangeGuard},
		{"ge", cmp(ast.Ge, num(1), num(2)), ClassRangeGuard},
		{"ne-is-residual", cmp(ast.Ne, num(1), num(2)), ClassResidual},
		{"call-poisons-eq", cmp(ast.Eq, &ast.Call{Name: "abs", Args: []ast.Term{num(1)}}, num(2)), ClassResidual},
		{"nested-call-poisons", cmp(ast.Lt, &ast.Binary{Op: ast.Add, X: num(1), Y: &ast.Call{Name: "abs", Args: []ast.Term{num(1)}}}, num(2)), ClassResidual},
		{"or", &ast.Or{X: cmp(ast.Eq, num(1), num(1)), Y: cmp(ast.Eq, num(2), num(2))}, ClassResidual},
		{"not", &ast.Not{X: cmp(ast.Eq, num(1), num(1))}, ClassResidual},
		{"boollit", &ast.BoolLit{Val: true}, ClassResidual},
	}
	for _, c := range cases {
		if got := ClassifyConjunct(c.cond); got != c.want {
			t.Errorf("%s: class = %d, want %d", c.name, got, c.want)
		}
	}

	// Ordering is stable within a class and sorted across classes.
	residual := cmp(ast.Ne, num(9), num(8))
	rangeA := cmp(ast.Lt, num(1), num(2))
	rangeB := cmp(ast.Gt, num(3), num(4))
	eq := cmp(ast.Eq, num(5), num(5))
	ordered := orderConjuncts(&ast.And{
		X: &ast.And{X: residual, Y: rangeA},
		Y: &ast.And{X: rangeB, Y: eq},
	})
	want := []ast.Cond{eq, rangeA, rangeB, residual}
	if len(ordered) != len(want) {
		t.Fatalf("ordered %d conjuncts, want %d", len(ordered), len(want))
	}
	for i := range want {
		if ordered[i] != want[i] {
			t.Fatalf("position %d: got class %d, want class %d (stable order violated)",
				i, ClassifyConjunct(ordered[i]), ClassifyConjunct(want[i]))
		}
	}
}

// ---------------------------------------------------------------------------
// IEEE totality: poisoned floats are deterministic, not errors.

func TestApplyBinopIEEE(t *testing.T) {
	n := interp.NumVal
	inf := math.Inf(1)
	cases := []struct {
		name string
		op   ast.BinOp
		x, y float64
		want float64
	}{
		{"pos-div-zero", ast.Div, 1, 0, inf},
		{"neg-div-zero", ast.Div, -1, 0, -inf},
		{"zero-div-zero", ast.Div, 0, 0, math.NaN()},
		{"mod-by-zero", ast.Mod, 5, 0, math.NaN()},
		{"inf-minus-inf", ast.Sub, inf, inf, math.NaN()},
		{"inf-plus-neginf", ast.Add, inf, -inf, math.NaN()},
		{"nan-add", ast.Add, math.NaN(), 1, math.NaN()},
		{"nan-mul", ast.Mul, math.NaN(), 0, math.NaN()},
		{"inf-mul-zero", ast.Mul, inf, 0, math.NaN()},
		{"inf-propagates", ast.Add, inf, 1, inf},
	}
	for _, c := range cases {
		got := applyBinop(c.op, n(c.x), n(c.y))
		if got.Rec {
			t.Errorf("%s: got a record", c.name)
			continue
		}
		if math.Float64bits(got.Num) != math.Float64bits(c.want) &&
			!(math.IsNaN(got.Num) && math.IsNaN(c.want)) {
			t.Errorf("%s: %v %v %v = %v, want %v", c.name, c.x, c.op, c.y, got.Num, c.want)
		}
	}
}

func TestEvalCondNaNComparisons(t *testing.T) {
	x := &Executor{}
	nan := num(math.NaN())
	one := num(1)
	cases := []struct {
		op   ast.CmpOp
		want bool
	}{
		{ast.Eq, false}, {ast.Lt, false}, {ast.Le, false},
		{ast.Gt, false}, {ast.Ge, false}, {ast.Ne, true},
	}
	for _, c := range cases {
		got, err := x.evalCond(&ast.Compare{Op: c.op, X: nan, Y: one}, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("NaN %v 1 = %v, want %v", c.op, got, c.want)
		}
		// NaN on both sides behaves identically.
		got, err = x.evalCond(&ast.Compare{Op: c.op, X: nan, Y: nan}, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("NaN %v NaN = %v, want %v", c.op, got, c.want)
		}
	}
}

// A script that actually produces Inf and NaN effect values must fold
// them bit-identically across the interpreter and both executor paths —
// the algebra-level half of the replayed ≡ live guarantee for poisoned
// floats.
func TestPoisonedFloatsDeterministic(t *testing.T) {
	const src = `
action Tag(u, v) := on e where e.key = u.key set damage = v;
function main(u) { perform Tag(u, u.health / u.cooldown) }`
	prog := compile(t, src)
	env := table.New(testSchema(t), 6)
	// (health, cooldown): 5/0 → +Inf, 0/0 → NaN, ordinary quotients after.
	env.Append(unit(0, 0, 1, 1, 5, 0, 4, 1))
	env.Append(unit(1, 1, 2, 2, 0, 0, 4, 1))
	env.Append(unit(2, 0, 3, 3, 7, 2, 4, 1))
	env.Append(unit(3, 1, 4, 4, 9, 1, 4, 1))
	env.Append(unit(4, 0, 5, 5, 0, 3, 4, 1))
	env.Append(unit(5, 1, 6, 6, 11, 0, 4, 1))
	r := rng.New(3).Tick(1)

	want, err := interp.RunTickNaive(prog, env, r)
	if err != nil {
		t.Fatal(err)
	}
	dc := env.Schema.MustCol("damage")
	if !math.IsInf(want.Rows[0][dc], 1) || !math.IsNaN(want.Rows[1][dc]) {
		t.Fatalf("fixture did not poison the fold: damage = %v, %v", want.Rows[0][dc], want.Rows[1][dc])
	}

	plan, err := Translate(prog)
	if err != nil {
		t.Fatal(err)
	}
	Optimize(plan)
	for _, mat := range []bool{false, true} {
		x := NewExecutor(prog, plan, env, interp.NewNaive(prog, env, r), r)
		x.SetMaterialize(mat)
		got, err := x.Tick()
		if err != nil {
			t.Fatal(err)
		}
		if !bitsEqualTables(got, want) {
			t.Fatalf("materialize=%v: poisoned-float tick not bit-identical to interpreter", mat)
		}
	}
}

// ---------------------------------------------------------------------------
// Allocation ratchet: the streaming per-row effect path must not regress
// toward per-row allocation. The materializing path allocates one *Row
// plus one Ext slice per environment row per tick; streaming allocates a
// constant number of backing arrays. Gate at a 4× margin so runtime
// changes don't flake the suite.

func TestStreamingAllocRatchet(t *testing.T) {
	const src = `
action Tag(u, v) := on e where e.key = u.key set damage = v;
function main(u) { (let a = u.health * 2 + u.posx) { if a < 0 - 1000 then perform Tag(u, a) } }`
	prog := compile(t, src)
	plan, err := Translate(prog)
	if err != nil {
		t.Fatal(err)
	}
	Optimize(plan)
	env := randomArmy(t, 11, 1024, 64)
	r := rng.New(11).Tick(1)

	run := func(mat bool) float64 {
		return testing.AllocsPerRun(10, func() {
			x := NewExecutor(prog, plan, env, interp.NewNaive(prog, env, r), r)
			x.SetMaterialize(mat)
			if err := x.Effects(func([]float64) {}); err != nil {
				t.Fatal(err)
			}
		})
	}
	matAllocs := run(true)
	streamAllocs := run(false)
	t.Logf("allocs per tick over %d rows: materializing %.0f, streaming %.0f", env.Len(), matAllocs, streamAllocs)
	if matAllocs < float64(env.Len()) {
		t.Fatalf("materializing path allocated only %.0f for %d rows — fixture no longer per-row, ratchet is vacuous", matAllocs, env.Len())
	}
	if streamAllocs > matAllocs/4 {
		t.Fatalf("streaming allocates %.0f per tick (materializing %.0f): per-row allocation crept back in", streamAllocs, matAllocs)
	}
}
