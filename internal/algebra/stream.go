// Streaming plan execution: the pull-based counterpart of the
// materializing units() pipeline in exec.go.
//
// The materializing executor evaluates a unit-set node by producing the
// complete []*Row slice of its input, then filtering or extending it into
// a fresh slice, memoized per node. That costs one row allocation plus
// one extension-slot allocation per environment row per tick before a
// single effect is emitted. The streaming executor instead compiles each
// Apply node's input chain (Base → Select* → Extend* in some
// interleaving) into a pipeline of per-row stages and walks the base
// shard once, pushing every row through all stages and yielding the
// survivors one at a time. Row storage is flat and shared: one []Row
// backing array, one []interp.Value extension backing array, one done
// bitset — a constant number of allocations per executor, not per row.
//
// Three things make this byte-identical to the materializing path (and
// therefore to the interpreter — the standing contracts re-prove over
// this executor unchanged):
//
//   - Order. Rows are visited in base order for every Apply, and Applies
//     are visited in Plan.Applies() order, so effects are emitted in
//     exactly the serial fold order. Filtering and extension never
//     reorder rows.
//
//   - Purity. Conditions and terms are total functions of the frozen
//     snapshot: arithmetic is IEEE-754 (division by zero yields ±Inf or
//     NaN, never an error — see applyBinop), and Random is counter-based
//     on the unit key, so a term evaluates to the same bits no matter
//     when, how often, or in which pipeline it runs. This is what makes
//     the two reorderings below safe.
//
//   - Sharing. The plan is a DAG: branches share Select and Extend
//     prefixes. Extension values are memoized per (row, slot) through the
//     done bitset and multi-consumer Select verdicts through a tri-state
//     memo, so shared work is still done once even though each Apply
//     pulls its own pipeline (set-at-a-time sharing, paper Section 5.2).
//
// Two plan-order rewrites happen at pipeline-compile time, per pipeline,
// without mutating the shared plan DAG:
//
//   - Guard pushdown: a Select stage moves below (i.e. runs before) every
//     Extend stage whose slot its condition does not read. Rows that fail
//     a cheap guard never reach the aggregate index probes inside the
//     extension — the dynamic, per-pipeline generalization of optimizer
//     rule B, which can only rewire single-consumer edges.
//
//   - Greedy conjunct ordering: a multi-clause Select condition is
//     flattened into its AND-conjuncts and reordered by syntax-visible
//     selectivity — equality guards first, then range guards, then
//     residuals (anything containing a call, a disjunction, a negation,
//     or an inequality). No statistics are consulted; the ordering is a
//     total, deterministic function of the condition's syntax.
//
// Aggregates whose batch evaluation is genuinely set-at-a-time (the
// MIN/MAX sweep line, BatchAggProvider.BatchBeneficial) cannot stream row
// at a time without losing the sweep. An Extend containing such a call
// becomes a blocking stage: the pipeline collects the surviving row set,
// batches the extension exactly like the materializing path, and resumes
// streaming. Per-probe sweep results depend only on the point set (the
// frozen environment), never on the other probes, so the smaller probe
// sets produced by pushdown return bit-identical values.
package algebra

import (
	"fmt"
	"sort"

	"github.com/epicscale/sgl/internal/sgl/ast"
	"github.com/epicscale/sgl/internal/sgl/interp"
)

// Tri-state Select memo verdicts (0 = not yet evaluated).
const (
	memoPass int8 = 1
	memoFail int8 = 2
)

// stage is one per-row pipeline step: exactly one of sel/ext is set.
type stage struct {
	sel   *Select
	conjs []ast.Cond // sel.Cond's AND-conjuncts in greedy order
	memo  []int8     // shared verdict memo when sel feeds several pipelines
	ext   *Extend
}

// segment is a maximal run of per-row stages, optionally closed by a
// blocking set-at-a-time Extend.
type segment struct {
	stages []stage
	batch  *Extend // nil for the final segment
}

// pipeline is one Apply input chain compiled to streaming form.
type pipeline struct {
	segs []segment
}

// ensureStreamRows builds the executor's flat row storage: every base row
// of the shard gets a Row backed by one shared extension array, plus a
// done bit per (row, slot). Built once per executor; Row pointers stay
// stable for the batch cache.
func (x *Executor) ensureStreamRows() {
	if x.srows != nil {
		return
	}
	base := x.baseRows()
	n := len(base)
	slots := x.plan.Slots
	x.srows = make([]Row, n)
	var back []interp.Value
	if slots > 0 {
		back = make([]interp.Value, n*slots)
	}
	for i, u := range base {
		r := &x.srows[i]
		r.Unit = u
		r.ord = int32(i)
		if slots > 0 {
			r.Ext = back[i*slots : (i+1)*slots : (i+1)*slots]
		}
	}
	if slots > 0 && n > 0 {
		x.done = make([]uint64, (n*slots+63)/64)
	}
}

func (x *Executor) slotDone(row *Row, slot int) bool {
	i := int(row.ord)*x.plan.Slots + slot
	return x.done[i>>6]&(1<<uint(i&63)) != 0
}

func (x *Executor) markSlotDone(row *Row, slot int) {
	i := int(row.ord)*x.plan.Slots + slot
	x.done[i>>6] |= 1 << uint(i&63)
}

// ---------------------------------------------------------------------------
// Pipeline compilation

// pipelineFor returns the compiled pipeline for a unit-set node,
// compiling every Apply input chain of the plan on first use so that
// Selects shared between pipelines get their verdict memo.
func (x *Executor) pipelineFor(n Node) (*pipeline, error) {
	if x.pipes == nil {
		if err := x.compilePipelines(); err != nil {
			return nil, err
		}
	}
	if p, ok := x.pipes[n]; ok {
		return p, nil
	}
	// A walker asked for a node that is not an Apply input (possible for
	// external callers): compile it on demand.
	p, err := x.compileChain(n, x.selectShares())
	if err != nil {
		return nil, err
	}
	x.pipes[n] = p
	return p, nil
}

// compilePipelines compiles the input chain of every Apply in the plan.
// Selects appearing in more than one chain get a shared tri-state memo so
// their condition is evaluated once per row across all pipelines.
func (x *Executor) compilePipelines() error {
	x.ensureStreamRows()
	applies, err := x.plan.Applies()
	if err != nil {
		return err
	}
	// Count how many distinct chains each Select participates in.
	shares := map[*Select]int{}
	seen := map[Node]bool{}
	for _, ap := range applies {
		if seen[ap.In] {
			continue
		}
		seen[ap.In] = true
		for cur := ap.In; ; {
			switch v := cur.(type) {
			case *Select:
				shares[v]++
				cur = v.In
			case *Extend:
				cur = v.In
			default:
				cur = nil
			}
			if cur == nil {
				break
			}
		}
	}
	x.selShares = shares
	x.pipes = make(map[Node]*pipeline, len(seen))
	for _, ap := range applies {
		if _, ok := x.pipes[ap.In]; ok {
			continue
		}
		p, err := x.compileChain(ap.In, shares)
		if err != nil {
			return err
		}
		x.pipes[ap.In] = p
	}
	return nil
}

func (x *Executor) selectShares() map[*Select]int {
	if x.selShares == nil {
		x.selShares = map[*Select]int{}
	}
	return x.selShares
}

// selMemoFor returns the shared verdict memo for a multi-pipeline Select.
func (x *Executor) selMemoFor(s *Select) []int8 {
	if x.selMemo == nil {
		x.selMemo = map[*Select][]int8{}
	}
	m, ok := x.selMemo[s]
	if !ok {
		m = make([]int8, len(x.srows))
		x.selMemo[s] = m
	}
	return m
}

// chainStages turns the Base→…→n operator chain into its per-row stage
// list: stages collected base-first, guards pushed below independent
// extensions, conjuncts ordered greedily. This is the provider-independent
// core of pipeline compilation — the lint report (report.go) runs exactly
// this function, so static guard-placement diagnostics can never disagree
// with the live executor. Memo attachment and batch splitting, which do
// depend on the executor and its provider, happen in compileChain.
func chainStages(n Node) ([]stage, error) {
	var rev []Node
	for cur := n; ; {
		switch v := cur.(type) {
		case *Base:
			cur = nil
		case *Select:
			rev = append(rev, v)
			cur = v.In
		case *Extend:
			rev = append(rev, v)
			cur = v.In
		default:
			return nil, fmt.Errorf("algebra: node %T does not produce a unit set", cur)
		}
		if cur == nil {
			break
		}
	}
	stages := make([]stage, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		switch v := rev[i].(type) {
		case *Select:
			stages = append(stages, stage{sel: v, conjs: orderConjuncts(v.Cond)})
		case *Extend:
			stages = append(stages, stage{ext: v})
		}
	}
	pushdownGuards(stages)
	return stages, nil
}

// compileChain turns the Base→…→n operator chain into a pipeline:
// collect stages base-first, push guards below independent extensions,
// order conjuncts greedily, and split at blocking batch extensions.
func (x *Executor) compileChain(n Node, shares map[*Select]int) (*pipeline, error) {
	stages, err := chainStages(n)
	if err != nil {
		return nil, err
	}
	for i := range stages {
		if stages[i].sel != nil && shares[stages[i].sel] > 1 {
			stages[i].memo = x.selMemoFor(stages[i].sel)
		}
	}
	return splitSegments(x, stages), nil
}

// pushdownGuards moves every Select stage below (before) the Extend
// stages whose slots its condition does not read, preserving the relative
// order of Selects. Safe because conditions are pure and total: filtering
// earlier changes which rows an Extend computes, never the value any row
// computes to, and never the survivor set or its order.
func pushdownGuards(stages []stage) {
	for i := 1; i < len(stages); i++ {
		if stages[i].sel == nil {
			continue
		}
		var condSlots []int
		collectCondSlots(stages[i].sel.Cond, stages[i].sel.Env, &condSlots)
		reads := func(slot int) bool {
			for _, s := range condSlots {
				if s == slot {
					return true
				}
			}
			return false
		}
		j := i
		for j > 0 && stages[j-1].ext != nil && !reads(stages[j-1].ext.Slot) {
			stages[j], stages[j-1] = stages[j-1], stages[j]
			j--
		}
	}
}

// splitSegments cuts the stage list at every blocking (set-at-a-time)
// Extend: stages before it stream per row, then the extension is batched
// over the surviving row set, then streaming resumes.
func splitSegments(x *Executor, stages []stage) *pipeline {
	p := &pipeline{}
	start := 0
	for i := range stages {
		if stages[i].ext != nil && x.extendBlocking(stages[i].ext) {
			p.segs = append(p.segs, segment{stages: stages[start:i], batch: stages[i].ext})
			start = i + 1
		}
	}
	p.segs = append(p.segs, segment{stages: stages[start:]})
	return p
}

// extendBlocking reports whether an Extend's value contains an aggregate
// call whose batch evaluation is genuinely set-at-a-time (the MIN/MAX
// sweep line). Everything else evaluates per row with identical results
// — for non-MinMax classes EvalAggBatch is literally a loop over the
// per-probe evaluator.
func (x *Executor) extendBlocking(e *Extend) bool {
	bp, ok := x.prov.(BatchAggProvider)
	if !ok {
		return false
	}
	var calls []*ast.Call
	x.collectAggCalls(e.Value, &calls)
	for _, c := range calls {
		if def := x.prog.AggCalls[c]; def != nil && bp.BatchBeneficial(def) {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Greedy conjunct ordering

// flattenAnd appends the AND-conjuncts of c in source evaluation order.
func flattenAnd(c ast.Cond, out *[]ast.Cond) {
	if a, ok := c.(*ast.And); ok {
		flattenAnd(a.X, out)
		flattenAnd(a.Y, out)
		return
	}
	*out = append(*out, c)
}

// ConjunctClass is the syntax-only selectivity class of one AND-conjunct,
// most selective (and cheapest) first. It is exported because the lint
// pass (internal/sgl/lint) reports the same classification the executor
// orders by — one classifier, shared, so the two can never disagree.
type ConjunctClass int

// Conjunct selectivity classes.
const (
	ClassEqGuard    ConjunctClass = iota // call-free equality comparison
	ClassRangeGuard                      // call-free <, <=, >, >= comparison
	ClassResidual                        // everything else: <>, or, not, literals, calls
)

// String renders the class the way Explain and the lint report spell it.
func (c ConjunctClass) String() string {
	switch c {
	case ClassEqGuard:
		return "eq"
	case ClassRangeGuard:
		return "range"
	default:
		return "residual"
	}
}

// ClassifyConjunct ranks one conjunct by syntax-visible selectivity. Only
// the shape of the syntax is consulted — no statistics: equalities pin a
// value (most selective), ranges halve one (somewhat selective), and
// residuals — disjunctions, negations, inequalities, or anything that
// must call an aggregate or builtin — run last so cheap guards shed rows
// before expensive terms evaluate.
func ClassifyConjunct(c ast.Cond) ConjunctClass {
	cmp, ok := c.(*ast.Compare)
	if !ok {
		return ClassResidual
	}
	if termHasCall(cmp.X) || termHasCall(cmp.Y) {
		return ClassResidual
	}
	switch cmp.Op {
	case ast.Eq:
		return ClassEqGuard
	case ast.Lt, ast.Le, ast.Gt, ast.Ge:
		return ClassRangeGuard
	default: // Ne barely filters: treat like a residual
		return ClassResidual
	}
}

// orderConjuncts flattens a condition's AND-chain and stable-sorts the
// conjuncts by class, preserving source order within a class. Reordering
// is safe under short-circuit evaluation because every conjunct is a pure
// total function of the row (see the package comment); it changes which
// conjuncts get evaluated, never the verdict.
func orderConjuncts(c ast.Cond) []ast.Cond {
	var conjs []ast.Cond
	flattenAnd(c, &conjs)
	if len(conjs) > 1 {
		sort.SliceStable(conjs, func(i, j int) bool {
			return ClassifyConjunct(conjs[i]) < ClassifyConjunct(conjs[j])
		})
	}
	return conjs
}

func termHasCall(t ast.Term) bool {
	switch n := t.(type) {
	case *ast.Field:
		return termHasCall(n.X)
	case *ast.Pair:
		return termHasCall(n.X) || termHasCall(n.Y)
	case *ast.Neg:
		return termHasCall(n.X)
	case *ast.Binary:
		return termHasCall(n.X) || termHasCall(n.Y)
	case *ast.Call:
		return true
	}
	return false
}

// ---------------------------------------------------------------------------
// Pipeline execution

// runStages pushes one row through a run of per-row stages; false means
// the row was filtered out.
func (x *Executor) runStages(stages []stage, row *Row) (bool, error) {
	for i := range stages {
		st := &stages[i]
		if st.sel != nil {
			if st.memo != nil {
				switch st.memo[row.ord] {
				case memoPass:
					continue
				case memoFail:
					return false, nil
				}
			}
			pass := true
			for _, c := range st.conjs {
				ok, err := x.evalCond(c, st.sel.Env, row)
				if err != nil {
					return false, err
				}
				if !ok {
					pass = false
					break
				}
			}
			if st.memo != nil {
				if pass {
					st.memo[row.ord] = memoPass
				} else {
					st.memo[row.ord] = memoFail
				}
			}
			if !pass {
				return false, nil
			}
			continue
		}
		if !x.slotDone(row, st.ext.Slot) {
			val, err := x.evalTerm(st.ext.Value, st.ext.Env, row)
			if err != nil {
				return false, err
			}
			row.Ext[st.ext.Slot] = val
			x.markSlotDone(row, st.ext.Slot)
		}
	}
	return true, nil
}

// runBatchStage evaluates a blocking Extend for the surviving rows that
// do not have it yet, through the same batchExtend the materializing path
// uses — so the sweep-line technique is preserved verbatim.
func (x *Executor) runBatchStage(e *Extend, work []int32) error {
	rows := make([]*Row, 0, len(work))
	for _, i := range work {
		row := &x.srows[i]
		if !x.slotDone(row, e.Slot) {
			rows = append(rows, row)
		}
	}
	if len(rows) == 0 {
		return nil
	}
	if _, err := x.batchExtend(e, rows); err != nil {
		return err
	}
	for _, row := range rows {
		val, err := x.evalTerm(e.Value, e.Env, row)
		if err != nil {
			return err
		}
		row.Ext[e.Slot] = val
		x.markSlotDone(row, e.Slot)
	}
	return nil
}

// streamUnits yields the rows of unit-set node n one at a time, in base
// order — the streaming equivalent of units(n). The common case (no
// blocking batch stage) runs a single tight loop with no per-row
// bookkeeping beyond the shared memos; pipelines with batch stages
// collect survivor indexes into a reused scratch buffer between blocking
// points.
func (x *Executor) streamUnits(n Node, yield func(*Row) error) error {
	p, err := x.pipelineFor(n)
	if err != nil {
		return err
	}
	x.ensureStreamRows()
	if len(p.segs) == 1 {
		stages := p.segs[0].stages
		for i := range x.srows {
			row := &x.srows[i]
			ok, err := x.runStages(stages, row)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			if err := yield(row); err != nil {
				return err
			}
		}
		return nil
	}
	work := x.scratch[:0]
	for i := range x.srows {
		row := &x.srows[i]
		ok, err := x.runStages(p.segs[0].stages, row)
		if err != nil {
			return err
		}
		if ok {
			work = append(work, int32(i))
		}
	}
	for si := range p.segs {
		seg := &p.segs[si]
		if si > 0 {
			kept := work[:0]
			for _, i := range work {
				row := &x.srows[i]
				ok, err := x.runStages(seg.stages, row)
				if err != nil {
					return err
				}
				if ok {
					kept = append(kept, i)
				}
			}
			work = kept
		}
		if seg.batch != nil {
			if err := x.runBatchStage(seg.batch, work); err != nil {
				return err
			}
		}
	}
	for _, i := range work {
		if err := yield(&x.srows[i]); err != nil {
			return err
		}
	}
	x.scratch = work[:0]
	return nil
}
