package algebra

import (
	"github.com/epicscale/sgl/internal/sgl/ast"
	"github.com/epicscale/sgl/internal/sgl/interp"
)

// BatchAggProvider is implemented by providers that can answer the same
// aggregate for many units at once — required for the sweep-line MIN/MAX
// technique, which is inherently set-at-a-time: the whole probe set is
// sorted and answered in one pass (paper Section 5.3.1).
type BatchAggProvider interface {
	interp.Provider
	// EvalAggBatch evaluates def for every unit; args[i] are the parameter
	// values for units[i] (nil when the definition has no parameters).
	EvalAggBatch(def *ast.AggDef, units [][]float64, args [][]float64) [][]float64
	// BatchBeneficial reports whether EvalAggBatch answers def with a
	// genuinely set-at-a-time algorithm (the MIN/MAX sweep line) rather
	// than looping the per-probe evaluator. The streaming executor only
	// blocks its pipeline — collecting the surviving rows before the
	// probe — for definitions where this is true; everything else streams
	// one probe per row with bit-identical results.
	BatchBeneficial(def *ast.AggDef) bool
}

// UnitsOf exposes memoized unit-set evaluation for external plan walkers
// (the engine's decision phase walks Apply nodes itself to defer area
// effects, Section 5.4). It always uses the materializing path; walkers
// on the hot path should prefer EachUnit, which streams.
func (x *Executor) UnitsOf(n Node) ([]*Row, error) { return x.units(n) }

// EachUnit invokes yield for every row of unit-set node n, in base-row
// order — the serial effect fold order. By default rows stream through
// the compiled pipeline of stream.go; after SetMaterialize(true) they
// come from the memoized units() slices instead. The two paths yield the
// same rows, in the same order, with the same extension values.
func (x *Executor) EachUnit(n Node, yield func(*Row) error) error {
	if x.materialize {
		rows, err := x.units(n)
		if err != nil {
			return err
		}
		for _, row := range rows {
			if err := yield(row); err != nil {
				return err
			}
		}
		return nil
	}
	return x.streamUnits(n, yield)
}

// ApplyArgs evaluates an Apply node's argument terms for one row.
func (x *Executor) ApplyArgs(a *Apply, row *Row) ([]float64, error) {
	args := make([]float64, len(a.Args))
	for i, t := range a.Args {
		v, err := x.evalTerm(t, a.Env, row)
		if err != nil {
			return nil, err
		}
		args[i] = v.Num
	}
	return args, nil
}

// BuildEffectRow forwards to the shared effect-row builder.
func (x *Executor) BuildEffectRow(def *ast.ActDef, unit, args, target []float64) ([]float64, error) {
	return x.ev.BuildEffectRow(def, unit, args, target)
}

// collectAggCalls gathers the aggregate calls inside a term in evaluation
// order (inner calls before the calls whose arguments contain them), so a
// batched outer call can read the cached results of its inner calls.
func (x *Executor) collectAggCalls(t ast.Term, out *[]*ast.Call) {
	switch n := t.(type) {
	case *ast.Field:
		x.collectAggCalls(n.X, out)
	case *ast.Pair:
		x.collectAggCalls(n.X, out)
		x.collectAggCalls(n.Y, out)
	case *ast.Neg:
		x.collectAggCalls(n.X, out)
	case *ast.Binary:
		x.collectAggCalls(n.X, out)
		x.collectAggCalls(n.Y, out)
	case *ast.Call:
		for _, a := range n.Args {
			x.collectAggCalls(a, out)
		}
		if _, ok := x.prog.AggCalls[n]; ok {
			*out = append(*out, n)
		}
	}
}

// batchExtend pre-evaluates every aggregate call in an Extend's value term
// for all rows at once, caching per-(call, row) results that evalCall then
// consumes. Returns true if batching was performed.
func (x *Executor) batchExtend(v *Extend, rows []*Row) (bool, error) {
	bp, ok := x.prov.(BatchAggProvider)
	if !ok {
		return false, nil
	}
	var calls []*ast.Call
	x.collectAggCalls(v.Value, &calls)
	if len(calls) == 0 {
		return false, nil
	}
	if x.batchCache == nil {
		x.batchCache = map[*ast.Call]map[*Row]interp.Value{}
	}
	for _, call := range calls {
		def := x.prog.AggCalls[call]
		units := make([][]float64, len(rows))
		var args [][]float64
		if len(call.Args) > 1 {
			args = make([][]float64, len(rows))
		}
		for i, row := range rows {
			units[i] = row.Unit
			if args != nil {
				vals := make([]float64, len(call.Args)-1)
				for j, at := range call.Args[1:] {
					// Inner calls were batched first, so this per-row
					// evaluation hits the cache rather than the provider.
					av, err := x.evalTerm(at, v.Env, row)
					if err != nil {
						return false, err
					}
					vals[j] = av.Num
				}
				args[i] = vals
			}
		}
		results := bp.EvalAggBatch(def, units, args)
		// Merge rather than replace: the streaming pipelines may batch the
		// same call for different row subsets (two Apply chains sharing the
		// Extend reach it with different survivor sets), and earlier rows'
		// results must stay visible to evalCall.
		cache := x.batchCache[call]
		if cache == nil {
			cache = make(map[*Row]interp.Value, len(rows))
			x.batchCache[call] = cache
		}
		for i, row := range rows {
			outs := results[i]
			if len(def.Outputs) == 1 {
				cache[row] = interp.NumVal(outs[0])
			} else {
				fields := make([]string, len(def.Outputs))
				for j, o := range def.Outputs {
					fields[j] = o.As
				}
				cache[row] = interp.RecVal(fields, outs)
			}
		}
	}
	return true, nil
}
