package algebra

import (
	"fmt"
	"testing"

	"github.com/epicscale/sgl/internal/exec"
	"github.com/epicscale/sgl/internal/rng"
	"github.com/epicscale/sgl/internal/sgl/interp"
	"github.com/epicscale/sgl/internal/sgl/parser"
	"github.com/epicscale/sgl/internal/sgl/sem"
	"github.com/epicscale/sgl/internal/table"
)

// The zoo scripts reference unittype, which the local test schema lacks;
// give them the minimal schema both the exec test schema and the battle
// schema agree on.
func zooSchema(t testing.TB) *table.Schema {
	t.Helper()
	return table.MustSchema(
		table.Attr{Name: "key", Kind: table.Const},
		table.Attr{Name: "player", Kind: table.Const},
		table.Attr{Name: "unittype", Kind: table.Const},
		table.Attr{Name: "posx", Kind: table.Const},
		table.Attr{Name: "posy", Kind: table.Const},
		table.Attr{Name: "health", Kind: table.Const},
		table.Attr{Name: "cooldown", Kind: table.Const},
		table.Attr{Name: "damage", Kind: table.Sum},
	)
}

func compileZooProg(t testing.TB, src string) *sem.Program {
	t.Helper()
	s, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := sem.Check(s, zooSchema(t), map[string]float64{})
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return p
}

func randomZooArmy(t testing.TB, seed uint64, n int, side float64) *table.Table {
	t.Helper()
	st := rng.NewStream(rng.New(seed), 77)
	env := table.New(zooSchema(t), n)
	for i := 0; i < n; i++ {
		env.Append([]float64{
			float64(i), float64(i % 2), float64(st.Intn(10)),
			float64(st.Intn(int(side))), float64(st.Intn(int(side))),
			float64(st.Intn(30)), float64(st.Intn(3)), 0,
		})
	}
	return env
}

// TestOptimizePropertyZoo is the property test for the optimizer: over
// every script in the exported zoo and a spread of randomized
// environments, the optimized plan must produce a tick bit-identical to
// the unoptimized plan, the interpreter, and both executor paths — under
// the naive provider and the indexed provider (whose sweep-line batch
// evaluation exercises the streaming pipelines' blocking stages).
func TestOptimizePropertyZoo(t *testing.T) {
	for _, zp := range exec.Zoo {
		zp := zp
		t.Run(zp.Name, func(t *testing.T) {
			prog := compileZooProg(t, zp.Src)
			for _, seed := range []uint64{2, 19, 443} {
				seed := seed
				t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
					env := randomZooArmy(t, seed, 48, 30)
					r := rng.New(seed).Tick(int64(seed % 7))
					want, err := interp.RunTickNaive(prog, env, r)
					if err != nil {
						t.Fatal(err)
					}
					an := exec.NewAnalyzer(prog, []string{"player", "unittype"})
					// Executor variants over the *same provider* share the
					// Apply-major emission order (including each performer's
					// target visit order), so they must agree cell-exactly
					// including row order. Across providers — and against the
					// unit-at-a-time interpreter — only target visit order
					// may differ, so those comparisons are keyed.
					ref := map[string]*table.Table{}
					for _, opt := range []bool{false, true} {
						plan, err := Translate(prog)
						if err != nil {
							t.Fatal(err)
						}
						if opt {
							Optimize(plan)
						}
						for _, mat := range []bool{false, true} {
							for _, provName := range []string{"naive", "indexed"} {
								var prov interp.Provider
								if provName == "naive" {
									prov = interp.NewNaive(prog, env, r)
								} else {
									prov = exec.NewIndexed(an, env, r)
								}
								x := NewExecutor(prog, plan, env, prov, r)
								x.SetMaterialize(mat)
								got, err := x.Tick()
								if err != nil {
									t.Fatal(err)
								}
								if !keyedBitsEqual(got, want) {
									t.Fatalf("opt=%v materialize=%v prov=%s: tick differs from interpreter",
										opt, mat, provName)
								}
								if ref[provName] == nil {
									ref[provName] = got
								} else if !bitsEqualTables(got, ref[provName]) {
									t.Fatalf("opt=%v materialize=%v prov=%s: tick not bit-identical to reference executor run",
										opt, mat, provName)
								}
							}
						}
					}
				})
			}
		})
	}
}
