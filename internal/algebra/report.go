// Pipeline classification report: the statically-derivable part of what
// the streaming executor decides at pipeline-compile time, exposed so the
// lint pass (internal/sgl/lint) can diagnose guard placement and conjunct
// selectivity with the executor's own code. Report and
// Executor.PipelineReports both render through chainStages — the exact
// function the live executor compiles pipelines with — so a static report
// over a plan is byte-identical to the live executor's placement for that
// plan. (Batch segmentation is provider-dependent and deliberately absent
// from the report.)
package algebra

import (
	"fmt"
	"strings"

	"github.com/epicscale/sgl/internal/sgl/ast"
	"github.com/epicscale/sgl/internal/sgl/sem"
	"github.com/epicscale/sgl/internal/sgl/token"
)

// StageReport describes one stage of a compiled pipeline. Exactly one of
// the Select fields (Conjuncts) or the Extend fields (Extend) is populated.
type StageReport struct {
	// Select stages: the AND-conjuncts in greedy evaluation order with
	// their selectivity classes.
	Conjuncts []ConjunctReport `json:"conjuncts,omitempty"`
	// BlockedBy names the nearest preceding extension whose slot this
	// guard reads — the probe the guard could not be pushed below.
	// Empty when the guard runs before every extension of its chain.
	BlockedBy string `json:"blocked_by,omitempty"`
	// BlockedByProbe reports whether that extension contains an
	// aggregate call (an index probe, the expensive case).
	BlockedByProbe bool `json:"blocked_by_probe,omitempty"`

	// Extend stages: the let name being bound and whether its value
	// contains an aggregate call.
	Extend   string `json:"extend,omitempty"`
	AggProbe bool   `json:"agg_probe,omitempty"`

	// Pos is the source position of the stage's condition or value.
	Pos token.Pos `json:"-"`
}

// ConjunctReport is one ordered conjunct of a Select stage.
type ConjunctReport struct {
	Cond  string        `json:"cond"`
	Class ConjunctClass `json:"-"`
	// ClassName is Class rendered for JSON consumers.
	ClassName string    `json:"class"`
	Pos       token.Pos `json:"-"` // source position of the conjunct
	// Pushable reports that this conjunct reads no extension slot at all:
	// split into its own guard, it could run before every probe of the
	// chain. A Pushable conjunct inside a stage blocked by a probe is
	// trapped — the probe pays for rows this conjunct would have rejected.
	Pushable bool `json:"pushable,omitempty"`
}

// PipelineReport describes the compiled streaming pipeline of one Apply
// node: its action, and the stage order after guard pushdown.
type PipelineReport struct {
	Action string        `json:"action"`
	Args   string        `json:"args,omitempty"`
	Stages []StageReport `json:"stages"`
}

// String renders the pipeline in a canonical, diffable form.
func (r *PipelineReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "act %s(%s)\n", r.Action, r.Args)
	for _, st := range r.Stages {
		if st.Extend != "" {
			probe := ""
			if st.AggProbe {
				probe = " [probe]"
			}
			fmt.Fprintf(&b, "  extend %s%s\n", st.Extend, probe)
			continue
		}
		parts := make([]string, len(st.Conjuncts))
		for i, c := range st.Conjuncts {
			parts[i] = fmt.Sprintf("[%s] %s", c.Class, c.Cond)
		}
		blocked := ""
		if st.BlockedBy != "" {
			blocked = fmt.Sprintf("  (blocked by %s)", st.BlockedBy)
		}
		fmt.Fprintf(&b, "  select %s%s\n", strings.Join(parts, " and "), blocked)
	}
	return b.String()
}

// FormatReports renders a report list as one canonical string, for
// byte-comparison between static and live reports.
func FormatReports(reports []PipelineReport) string {
	var b strings.Builder
	for i := range reports {
		b.WriteString(reports[i].String())
	}
	return b.String()
}

// Report compiles every Apply input chain of the plan exactly the way the
// streaming executor does (guard pushdown + greedy conjunct ordering) and
// returns the resulting placements. prog is consulted only to distinguish
// aggregate probes from cheap builtin calls inside extensions.
func Report(prog *sem.Program, p *Plan) ([]PipelineReport, error) {
	applies, err := p.Applies()
	if err != nil {
		return nil, err
	}
	out := make([]PipelineReport, 0, len(applies))
	for _, ap := range applies {
		stages, err := chainStages(ap.In)
		if err != nil {
			return nil, err
		}
		out = append(out, reportChain(prog, ap, stages))
	}
	return out, nil
}

// PipelineReports reports the pipelines this executor actually compiled
// (compiling them if it has not yet run). The stage order is read back
// from the live pipeline structures, so a test comparing this against the
// static Report proves the lint pass and the executor share one placement.
func (x *Executor) PipelineReports() ([]PipelineReport, error) {
	if x.pipes == nil {
		if err := x.compilePipelines(); err != nil {
			return nil, err
		}
	}
	applies, err := x.plan.Applies()
	if err != nil {
		return nil, err
	}
	out := make([]PipelineReport, 0, len(applies))
	for _, ap := range applies {
		p, ok := x.pipes[ap.In]
		if !ok {
			return nil, fmt.Errorf("algebra: no compiled pipeline for apply of %s", ap.Def.Name)
		}
		var stages []stage
		for _, seg := range p.segs {
			stages = append(stages, seg.stages...)
			if seg.batch != nil {
				stages = append(stages, stage{ext: seg.batch})
			}
		}
		out = append(out, reportChain(x.prog, ap, stages))
	}
	return out, nil
}

func reportChain(prog *sem.Program, ap *Apply, stages []stage) PipelineReport {
	args := make([]string, len(ap.Args))
	for i, a := range ap.Args {
		args[i] = a.String()
	}
	r := PipelineReport{Action: ap.Def.Name, Args: strings.Join(args, ", ")}
	for i := range stages {
		st := &stages[i]
		if st.ext != nil {
			r.Stages = append(r.Stages, StageReport{
				Extend:   st.ext.Name,
				AggProbe: hasAggCall(prog, st.ext.Value),
				Pos:      st.ext.Value.Pos(),
			})
			continue
		}
		sr := StageReport{Conjuncts: make([]ConjunctReport, len(st.conjs)), Pos: st.sel.Cond.Pos()}
		for j, c := range st.conjs {
			cl := ClassifyConjunct(c)
			var cslots []int
			collectCondSlots(c, st.sel.Env, &cslots)
			sr.Conjuncts[j] = ConjunctReport{Cond: c.String(), Class: cl, ClassName: cl.String(), Pos: c.Pos(), Pushable: len(cslots) == 0}
		}
		// The nearest preceding extension this guard reads is the probe
		// it could not be pushed below (pushdownGuards stops there).
		var condSlots []int
		collectCondSlots(st.sel.Cond, st.sel.Env, &condSlots)
		for k := i - 1; k >= 0; k-- {
			ext := stages[k].ext
			if ext == nil {
				continue
			}
			for _, s := range condSlots {
				if s == ext.Slot {
					sr.BlockedBy = ext.Name
					sr.BlockedByProbe = hasAggCall(prog, ext.Value)
					break
				}
			}
			if sr.BlockedBy != "" {
				break
			}
		}
		r.Stages = append(r.Stages, sr)
	}
	return r
}

// hasAggCall reports whether the term contains a call that sem resolved to
// an aggregate definition (as opposed to a scalar builtin or Random).
func hasAggCall(prog *sem.Program, t ast.Term) bool {
	found := false
	ast.Inspect(t, func(n any) bool {
		if c, ok := n.(*ast.Call); ok && prog.AggCalls[c] != nil {
			found = true
		}
		return !found
	})
	return found
}
