// Package algebra implements the paper's bag algebra (Section 5.1) and the
// algebraic optimization of SGL scripts (Section 5.2).
//
// An SGL action function translates into a plan DAG over these operators:
//
//	Base              the environment relation E
//	Select            σφ — filters the probe set (from if-conditions)
//	Extend            π*,t AS v — adds a let-bound column, including the
//	                  aggregate-valued extensions π*,agg(*) the optimizer
//	                  cares about
//	Apply             act⊕ — a built-in action applied to every row of its
//	                  probe set, producing effect rows
//	Combine           ⊕ of the effect tables of its children
//
// The translation rules are the paper's:
//
//	[[f1; f2]]⊕(E)         = [[f1]]⊕(E) ⊕ [[f2]]⊕(E)
//	[[if φ then f]]⊕(E)    = [[f]]⊕(σφ(E))
//	[[(let A = a) f]]⊕(E)  = [[f]]⊕(π*,a(*) AS A(E))
//
// Because if-branches share their input node, the plan is a DAG and every
// shared prefix — in particular every aggregate extension — is evaluated
// once for the whole unit set: this is the set-at-a-time processing of
// Section 5.2 ("while the SGL script suggested an evaluation one unit at a
// time, the query plan employs set-at-a-time processing").
package algebra

import (
	"fmt"
	"strings"

	"github.com/epicscale/sgl/internal/sgl/ast"
)

// Env maps in-scope let names to extension slots. Slots are global to a
// plan: every Extend owns a distinct slot, so skipping an Extend on a
// branch that never reads it (rule A of the optimizer) cannot corrupt
// resolution elsewhere.
type Env struct {
	Unit   string         // name of the unit parameter in this scope
	Slots  map[string]int // let name → slot
	parent *Env
}

// Lookup resolves a let name to its slot.
func (e *Env) Lookup(name string) (int, bool) {
	for s := e; s != nil; s = s.parent {
		if i, ok := s.Slots[name]; ok {
			return i, ok
		}
	}
	return 0, false
}

func (e *Env) child(name string, slot int) *Env {
	return &Env{Unit: e.Unit, Slots: map[string]int{name: slot}, parent: e}
}

// Node is a plan operator. Base/Select/Extend produce unit sets; Apply and
// Combine produce effect tables.
type Node interface {
	node()
	// Inputs returns the producer nodes this node consumes.
	Inputs() []Node
}

// Base is the environment relation E.
type Base struct{}

// Select is σφ over its input's unit set.
type Select struct {
	In   Node
	Cond ast.Cond
	Env  *Env
}

// Extend is π*, Value AS Name: it evaluates Value for every input row and
// stores it in Slot. When Value contains an aggregate call this is the
// π*,agg(*) operator whose evaluation strategy (scan vs index probe)
// distinguishes the two engines.
type Extend struct {
	In    Node
	Name  string
	Slot  int
	Value ast.Term
	Env   *Env
}

// Apply is act⊕: the built-in action Def applied for every row of the probe
// set, with the (record-expanded) argument terms Args.
type Apply struct {
	In   Node
	Def  *ast.ActDef
	Args []ast.Term
	Env  *Env
}

// Combine is the ⊕ of its children's effect tables.
type Combine struct {
	Kids []Node
}

func (*Base) node()    {}
func (*Select) node()  {}
func (*Extend) node()  {}
func (*Apply) node()   {}
func (*Combine) node() {}

// Inputs implementations.
func (*Base) Inputs() []Node      { return nil }
func (n *Select) Inputs() []Node  { return []Node{n.In} }
func (n *Extend) Inputs() []Node  { return []Node{n.In} }
func (n *Apply) Inputs() []Node   { return []Node{n.In} }
func (n *Combine) Inputs() []Node { return n.Kids }

// Plan is a translated (and possibly optimized) SGL script: Root is the
// Combine of all effect-producing branches, and the full tick is
// Root's effects ⊕ E (paper Eq. 6).
type Plan struct {
	Root   *Combine
	Slots  int // number of extension slots
	labels []string
}

// Applies returns the plan's Apply nodes in deterministic walk order — the
// order the engine's decision phase visits them. Every external walker
// (serial or sharded) must process Apply nodes in exactly this order so
// that effect folds happen in the same floating-point association on every
// run. It errors on a malformed plan whose effect tree holds anything but
// Combine and Apply nodes.
func (p *Plan) Applies() ([]*Apply, error) {
	var out []*Apply
	var walk func(n Node) error
	walk = func(n Node) error {
		switch v := n.(type) {
		case *Combine:
			for _, k := range v.Kids {
				if err := walk(k); err != nil {
					return err
				}
			}
			return nil
		case *Apply:
			out = append(out, v)
			return nil
		default:
			return fmt.Errorf("algebra: unexpected plan node %T in effect tree", n)
		}
	}
	if err := walk(p.Root); err != nil {
		return nil, err
	}
	return out, nil
}

// SlotName returns the let name that owns a slot (for Explain).
func (p *Plan) SlotName(slot int) string {
	if slot < len(p.labels) {
		return p.labels[slot]
	}
	return fmt.Sprintf("slot%d", slot)
}

// Explain renders the plan as an indented operator tree. Shared nodes (the
// DAG edges that realize set-at-a-time sharing) are printed once and then
// referenced as [#k].
func (p *Plan) Explain() string {
	var b strings.Builder
	ids := map[Node]int{}
	next := 1
	var walk func(n Node, depth int)
	walk = func(n Node, depth int) {
		indent := strings.Repeat("  ", depth)
		if id, seen := ids[n]; seen {
			fmt.Fprintf(&b, "%s[#%d]\n", indent, id)
			return
		}
		switch v := n.(type) {
		case *Base:
			fmt.Fprintf(&b, "%sE\n", indent)
		case *Select:
			ids[n] = next
			fmt.Fprintf(&b, "%sσ[#%d] %s\n", indent, next, v.Cond)
			next++
			walk(v.In, depth+1)
		case *Extend:
			ids[n] = next
			fmt.Fprintf(&b, "%sπ[#%d] *, %s AS %s\n", indent, next, v.Value, v.Name)
			next++
			walk(v.In, depth+1)
		case *Apply:
			ids[n] = next
			args := make([]string, len(v.Args))
			for i, a := range v.Args {
				args[i] = a.String()
			}
			fmt.Fprintf(&b, "%sact⊕[#%d] %s(%s)\n", indent, next, v.Def.Name, strings.Join(args, ", "))
			next++
			walk(v.In, depth+1)
		case *Combine:
			fmt.Fprintf(&b, "%s⊕\n", indent)
			for _, k := range v.Kids {
				walk(k, depth+1)
			}
		}
	}
	walk(p.Root, 0)
	return b.String()
}

// Nodes returns every node of the plan in a deterministic postorder (inputs
// before consumers), each exactly once.
func (p *Plan) Nodes() []Node {
	var out []Node
	seen := map[Node]bool{}
	var walk func(n Node)
	walk = func(n Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		for _, in := range n.Inputs() {
			walk(in)
		}
		out = append(out, n)
	}
	walk(p.Root)
	return out
}

// CountNodes returns how many operators of each type the plan holds; used
// by optimizer tests to assert structural effects.
func (p *Plan) CountNodes() map[string]int {
	counts := map[string]int{}
	for _, n := range p.Nodes() {
		switch n.(type) {
		case *Base:
			counts["base"]++
		case *Select:
			counts["select"]++
		case *Extend:
			counts["extend"]++
		case *Apply:
			counts["apply"]++
		case *Combine:
			counts["combine"]++
		}
	}
	return counts
}
