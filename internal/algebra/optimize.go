package algebra

import (
	"github.com/epicscale/sgl/internal/sgl/ast"
)

// Optimize rewrites the plan in place using the algebraic laws of paper
// Section 5.2, and returns it. Two rules reproduce the Example 5.1 /
// Figure 6 (a)→(b) transformation:
//
//   - Rule A (dead-extension skipping): if a consumer of an Extend — and
//     everything downstream of that consumer — never reads the extended
//     column, the consumer is rewired past the Extend. This is the paper's
//     "in the right branch of the expression, agg2 is not used and can be
//     removed".
//
//   - Rule B (lazy extension): an Extend whose only consumer is a Select
//     that does not read the extended column is pushed above the Select, so
//     the (potentially expensive) aggregate is evaluated only for the rows
//     that survive the filter. This is the paper's "the aggregate index for
//     agg2 will only have to be computed for the units that satisfy
//     condition φ1".
//
// The ⊕-elimination rules (8)–(10) and act⊕(R) ⊕ R = act⊕(R) of Figure 6
// (c)→(d) are realized structurally by the executor: effects accumulate
// into a table keyed by unit and are ⊕-combined with E exactly once (see
// rules.go for the table-level identities and their property tests).
//
// Optimize is idempotent; running it twice yields the same plan.
func Optimize(p *Plan) *Plan {
	for {
		changed := false
		if applyRuleA(p) {
			changed = true
		}
		if applyRuleB(p) {
			changed = true
		}
		if !changed {
			return p
		}
	}
}

// consumers builds the reverse adjacency of the plan DAG.
func consumers(p *Plan) map[Node][]Node {
	out := map[Node][]Node{}
	for _, n := range p.Nodes() {
		for _, in := range n.Inputs() {
			out[in] = append(out[in], n)
		}
	}
	return out
}

// usedSlots computes, for every node, the set of extension slots read by
// the node itself or by anything downstream of it (its consumers,
// transitively). Nodes() is postorder (inputs first), so iterating it in
// reverse visits consumers before producers.
func usedSlots(p *Plan) map[Node]map[int]bool {
	cons := consumers(p)
	used := map[Node]map[int]bool{}
	nodes := p.Nodes()
	for i := len(nodes) - 1; i >= 0; i-- {
		n := nodes[i]
		set := map[int]bool{}
		for _, c := range cons[n] {
			//sgl:unordered set union; insertion order cannot reach the resulting set
			for s := range used[c] {
				set[s] = true
			}
		}
		for _, s := range ownSlotRefs(n) {
			set[s] = true
		}
		used[n] = set
	}
	return used
}

// ownSlotRefs returns the slots referenced directly by a node's own terms.
func ownSlotRefs(n Node) []int {
	var out []int
	add := func(env *Env, t ast.Term) {
		collectTermSlots(t, env, &out)
	}
	switch v := n.(type) {
	case *Select:
		collectCondSlots(v.Cond, v.Env, &out)
	case *Extend:
		add(v.Env, v.Value)
	case *Apply:
		for _, a := range v.Args {
			add(v.Env, a)
		}
	}
	return out
}

func collectTermSlots(t ast.Term, env *Env, out *[]int) {
	switch n := t.(type) {
	case *ast.VarRef:
		if s, ok := env.Lookup(n.Name); ok {
			*out = append(*out, s)
		}
	case *ast.FieldRef:
		if n.Base != env.Unit {
			if s, ok := env.Lookup(n.Base); ok {
				*out = append(*out, s)
			}
		}
	case *ast.Field:
		collectTermSlots(n.X, env, out)
	case *ast.Pair:
		collectTermSlots(n.X, env, out)
		collectTermSlots(n.Y, env, out)
	case *ast.Neg:
		collectTermSlots(n.X, env, out)
	case *ast.Binary:
		collectTermSlots(n.X, env, out)
		collectTermSlots(n.Y, env, out)
	case *ast.Call:
		for _, a := range n.Args {
			collectTermSlots(a, env, out)
		}
	}
}

func collectCondSlots(c ast.Cond, env *Env, out *[]int) {
	switch n := c.(type) {
	case *ast.Not:
		collectCondSlots(n.X, env, out)
	case *ast.And:
		collectCondSlots(n.X, env, out)
		collectCondSlots(n.Y, env, out)
	case *ast.Or:
		collectCondSlots(n.X, env, out)
		collectCondSlots(n.Y, env, out)
	case *ast.Compare:
		collectTermSlots(n.X, env, out)
		collectTermSlots(n.Y, env, out)
	}
}

// setInput rewires a consumer's input edge from old to new.
func setInput(consumer, old, new Node) {
	switch v := consumer.(type) {
	case *Select:
		if v.In == old {
			v.In = new
		}
	case *Extend:
		if v.In == old {
			v.In = new
		}
	case *Apply:
		if v.In == old {
			v.In = new
		}
	case *Combine:
		for i, k := range v.Kids {
			if k == old {
				v.Kids[i] = new
			}
		}
	}
}

// applyRuleA rewires consumers past Extends whose column they never read.
func applyRuleA(p *Plan) bool {
	used := usedSlots(p)
	changed := false
	for _, n := range p.Nodes() {
		for _, in := range n.Inputs() {
			ext, ok := in.(*Extend)
			if !ok {
				continue
			}
			if !used[n][ext.Slot] {
				setInput(n, ext, ext.In)
				changed = true
			}
		}
	}
	return changed
}

// applyRuleB pushes an Extend above a Select when the Select is its only
// consumer and the selection condition does not read the extension.
func applyRuleB(p *Plan) bool {
	cons := consumers(p)
	//sgl:unordered the rewrite system is terminating and locally confluent, so the fixpoint plan is the same whichever candidate fires first
	for ext, extConsumers := range cons {
		e, ok := ext.(*Extend)
		if !ok || len(extConsumers) != 1 {
			continue
		}
		sel, ok := extConsumers[0].(*Select)
		if !ok || sel.In != e {
			continue
		}
		var condSlots []int
		collectCondSlots(sel.Cond, sel.Env, &condSlots)
		reads := false
		for _, s := range condSlots {
			if s == e.Slot {
				reads = true
				break
			}
		}
		if reads {
			continue
		}
		// Swap: …→X→E→S→consumers(S) becomes …→X→S→E→consumers(S).
		for _, c := range cons[sel] {
			setInput(c, sel, e)
		}
		sel.In = e.In
		e.In = sel
		return true // topology changed; restart with fresh consumer map
	}
	return false
}
