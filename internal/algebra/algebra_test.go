package algebra

import (
	"strings"
	"testing"

	"github.com/epicscale/sgl/internal/rng"
	"github.com/epicscale/sgl/internal/sgl/interp"
	"github.com/epicscale/sgl/internal/sgl/parser"
	"github.com/epicscale/sgl/internal/sgl/sem"
	"github.com/epicscale/sgl/internal/table"
)

func testSchema(t testing.TB) *table.Schema {
	t.Helper()
	return table.MustSchema(
		table.Attr{Name: "key", Kind: table.Const},
		table.Attr{Name: "player", Kind: table.Const},
		table.Attr{Name: "posx", Kind: table.Const},
		table.Attr{Name: "posy", Kind: table.Const},
		table.Attr{Name: "health", Kind: table.Const},
		table.Attr{Name: "cooldown", Kind: table.Const},
		table.Attr{Name: "range", Kind: table.Const},
		table.Attr{Name: "morale", Kind: table.Const},
		table.Attr{Name: "weaponused", Kind: table.Max},
		table.Attr{Name: "movevect_x", Kind: table.Sum},
		table.Attr{Name: "movevect_y", Kind: table.Sum},
		table.Attr{Name: "damage", Kind: table.Sum},
		table.Attr{Name: "inaura", Kind: table.Max},
	)
}

var testConsts = map[string]float64{
	"_ARROW_DAMAGE": 6, "_ARMOR": 2, "_HEAL_AURA": 4, "_HEALER_RANGE": 10,
}

const figure3Script = `
aggregate CountEnemiesInRange(u, range) :=
  count(*)
  over e where e.posx >= u.posx - range and e.posx <= u.posx + range
    and e.posy >= u.posy - range and e.posy <= u.posy + range
    and e.player <> u.player;

aggregate CentroidOfEnemies(u, range) :=
  avg(e.posx) as x, avg(e.posy) as y
  over e where e.posx >= u.posx - range and e.posx <= u.posx + range
    and e.posy >= u.posy - range and e.posy <= u.posy + range
    and e.player <> u.player;

aggregate WeakestEnemyInRange(u, range) :=
  argmin(e.health)
  over e where e.posx >= u.posx - range and e.posx <= u.posx + range
    and e.posy >= u.posy - range and e.posy <= u.posy + range
    and e.player <> u.player;

action FireAt(u, target_key) :=
  on e where e.key = target_key
  set damage = _ARROW_DAMAGE - _ARMOR;

action MarkFired(u) :=
  on e where e.key = u.key
  set weaponused = 1;

action MoveInDirection(u, dx, dy) :=
  on e where e.key = u.key
  set movevect_x = dx, movevect_y = dy;

function main(u) {
  (let c = CountEnemiesInRange(u, u.range))
  (let away = (u.posx, u.posy) - CentroidOfEnemies(u, u.range)) {
    if c > u.morale then
      perform MoveInDirection(u, away);
    else if c > 0 and u.cooldown = 0 then
      (let target = WeakestEnemyInRange(u, u.range)) {
        perform FireAt(u, target);
        perform MarkFired(u)
      }
  }
}
`

func compile(t testing.TB, src string) *sem.Program {
	t.Helper()
	s, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := sem.Check(s, testSchema(t), testConsts)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return p
}

func unit(key, player, x, y, health, cooldown, rng_, morale float64) []float64 {
	return []float64{key, player, x, y, health, cooldown, rng_, morale, 0, 0, 0, 0, 0}
}

func randomArmy(t testing.TB, seed uint64, n int, side float64) *table.Table {
	t.Helper()
	st := rng.NewStream(rng.New(seed), 50)
	env := table.New(testSchema(t), n)
	for i := 0; i < n; i++ {
		env.Append(unit(
			float64(i), float64(i%2),
			float64(st.Intn(int(side))), float64(st.Intn(int(side))),
			float64(5+st.Intn(20)), float64(st.Intn(3)),
			float64(3+st.Intn(8)), float64(st.Intn(6)),
		))
	}
	return env
}

func TestTranslateFigure3Shape(t *testing.T) {
	prog := compile(t, figure3Script)
	plan, err := Translate(prog)
	if err != nil {
		t.Fatal(err)
	}
	counts := plan.CountNodes()
	if counts["base"] != 1 {
		t.Errorf("base = %d, want 1 (shared)", counts["base"])
	}
	if counts["extend"] != 3 { // c, away, target
		t.Errorf("extend = %d, want 3", counts["extend"])
	}
	if counts["apply"] != 3 { // Move, FireAt, MarkFired
		t.Errorf("apply = %d, want 3", counts["apply"])
	}
	if counts["select"] != 4 { // φ1, ¬φ1, φ2, ¬φ2... else-less if has 1
		// if/else → σφ1, σ¬φ1; inner if (no else) → σφ2: 3 total.
		if counts["select"] != 3 {
			t.Errorf("select = %d, want 3", counts["select"])
		}
	}
	if plan.Slots != 3 {
		t.Errorf("slots = %d, want 3", plan.Slots)
	}
	if name := plan.SlotName(0); name != "c" {
		t.Errorf("slot 0 = %q, want c", name)
	}
	out := plan.Explain()
	for _, want := range []string{"act⊕", "σ", "π", "E", "⊕"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
}

func TestOptimizeMovesCentroidOutOfElseBranch(t *testing.T) {
	prog := compile(t, figure3Script)
	plan, err := Translate(prog)
	if err != nil {
		t.Fatal(err)
	}
	Optimize(plan)

	// After rule A + rule B, the `away` extension must be consumed only on
	// the then-branch and must sit above σ(c > u.morale), exactly the
	// Figure 6 (a)→(b) rewrite.
	var away *Extend
	for _, n := range plan.Nodes() {
		if e, ok := n.(*Extend); ok && strings.HasPrefix(e.Name, "away") {
			away = e
		}
	}
	if away == nil {
		t.Fatal("away extend eliminated entirely")
	}
	if _, ok := away.In.(*Select); !ok {
		t.Fatalf("away should be evaluated after the selection, got input %T", away.In)
	}
	// The else side must not read through the away extend: the ¬φ select's
	// input chain must not contain it.
	for _, n := range plan.Nodes() {
		if s, ok := n.(*Select); ok && strings.Contains(s.Cond.String(), "not") {
			for in := s.In; in != nil; {
				if in == away {
					t.Fatal("¬φ branch still flows through the away extend")
				}
				ins := in.Inputs()
				if len(ins) == 0 {
					break
				}
				in = ins[0]
			}
		}
	}
}

func TestOptimizeIdempotent(t *testing.T) {
	prog := compile(t, figure3Script)
	plan, err := Translate(prog)
	if err != nil {
		t.Fatal(err)
	}
	Optimize(plan)
	first := plan.Explain()
	Optimize(plan)
	if plan.Explain() != first {
		t.Fatal("Optimize is not idempotent")
	}
}

func TestExecutorMatchesInterpreter(t *testing.T) {
	prog := compile(t, figure3Script)
	for seed := uint64(1); seed <= 5; seed++ {
		env := randomArmy(t, seed, 60, 40)
		r := rng.New(seed).Tick(3)

		want, err := interp.RunTickNaive(prog, env, r)
		if err != nil {
			t.Fatal(err)
		}

		// Unoptimized plan.
		plan, err := Translate(prog)
		if err != nil {
			t.Fatal(err)
		}
		got, err := NewExecutor(prog, plan, env, interp.NewNaive(prog, env, r), r).Tick()
		if err != nil {
			t.Fatal(err)
		}
		if !got.EqualContents(want) {
			t.Fatalf("seed %d: unoptimized plan differs from interpreter", seed)
		}

		// Optimized plan.
		Optimize(plan)
		got2, err := NewExecutor(prog, plan, env, interp.NewNaive(prog, env, r), r).Tick()
		if err != nil {
			t.Fatal(err)
		}
		if !got2.EqualContents(want) {
			t.Fatalf("seed %d: optimized plan differs from interpreter", seed)
		}
	}
}

func TestInliningProducesSamePlanSemantics(t *testing.T) {
	inline := `
action Move(u, dx, dy) := on e where e.key = u.key set movevect_x = dx, movevect_y = dy;
function evade(w, v) { (let scaled = v * 2) perform Move(w, scaled) }
function main(u) {
  if u.health < 10 then perform evade(u, (1, 1)); else perform evade(u, (0 - 1, 0 - 1))
}`
	prog := compile(t, inline)
	env := randomArmy(t, 9, 30, 20)
	r := rng.New(9).Tick(1)
	want, err := interp.RunTickNaive(prog, env, r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunTick(prog, env, interp.NewNaive(prog, env, r), r)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualContents(want) {
		t.Fatal("inlined plan differs from interpreter")
	}
	// Two inlinings of evade must not share slots: 2 distinct extends.
	plan, _ := Translate(prog)
	if plan.Slots != 2 {
		t.Fatalf("slots = %d, want 2 (alpha-renamed per inlining)", plan.Slots)
	}
}

func TestNestedFunctionInlining(t *testing.T) {
	src := `
action Move(u, dx, dy) := on e where e.key = u.key set movevect_x = dx, movevect_y = dy;
function level2(w, amt) { perform Move(w, amt, amt) }
function level1(w, amt) { perform level2(w, amt + 1) }
function main(u) { perform level1(u, 5) }`
	prog := compile(t, src)
	env := randomArmy(t, 3, 10, 20)
	r := rng.New(3).Tick(1)
	got, err := RunTick(prog, env, interp.NewNaive(prog, env, r), r)
	if err != nil {
		t.Fatal(err)
	}
	s := env.Schema
	for _, row := range got.Rows {
		if row[s.MustCol("movevect_x")] != 6 {
			t.Fatalf("nested inline value = %v, want 6", row[s.MustCol("movevect_x")])
		}
	}
}

func TestEmptyMainPlan(t *testing.T) {
	prog := compile(t, "function main(u) {}")
	env := randomArmy(t, 2, 10, 20)
	r := rng.New(2).Tick(1)
	got, err := RunTick(prog, env, interp.NewNaive(prog, env, r), r)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualContents(env) {
		t.Fatal("empty main should leave E unchanged")
	}
}

// ---------------------------------------------------------------------------
// Figure 7 rule identities

func ruleTable(t testing.TB, seed uint64, n int) *table.Table {
	t.Helper()
	env := randomArmy(t, seed, n, 20)
	return env
}

// Rule (8): extending R with a computed column does not change what an
// action over it combines to, because the untyped column is dropped before
// ⊕. In our representation extensions never enter tables, so the identity
// reads: act(R) ⊕ R unchanged whether or not an extension was computed.
// We verify the operational form: applying a PaperAction to R and combining
// with R equals applying to R' (same rows, extension carried separately).
func TestRule8Extension(t *testing.T) {
	r := ruleTable(t, 1, 40)
	act := PaperAction{Col: r.Schema.MustCol("damage"), Delta: func(row []float64) float64 { return row[2] }}
	lhs := act.Apply(r).CombineWith(r)
	// "Extend" r: same rows (extension held out-of-band), then apply.
	rPrime := r.Clone()
	rhs := act.Apply(rPrime).CombineWith(rPrime)
	if !lhs.EqualContents(rhs) {
		t.Fatal("rule (8) violated")
	}
}

// Rule (9): f(σφ(R)) ⊕ g(σ¬φ(R)) ⊕ R = (f(R')⊕R') ⊕ (g(R”)⊕R”) with
// R' = σφ(R), R” = σ¬φ(R).
func TestRule9SelectionPartition(t *testing.T) {
	r := ruleTable(t, 2, 50)
	s := r.Schema
	phi := func(row []float64) bool { return row[s.MustCol("health")] > 12 }
	notPhi := func(row []float64) bool { return !phi(row) }
	f := PaperAction{Col: s.MustCol("damage"), Delta: func(row []float64) float64 { return 3 }}
	g := PaperAction{Col: s.MustCol("inaura"), Delta: func(row []float64) float64 { return 5 }}

	rP := SelectRows(r, phi)
	rN := SelectRows(r, notPhi)

	lhs := f.Apply(rP).CombineWith(g.Apply(rN)).CombineWith(r)
	rhs := f.Apply(rP).CombineWith(rP).CombineWith(g.Apply(rN).CombineWith(rN))
	if !lhs.EqualContents(rhs) {
		t.Fatal("rule (9) violated")
	}
}

// Rule (10): R1⊕ ⊕ R2⊕ = π1.*⊕2.*(R1⊕ ⋈K R2⊕) for keyed tables over the
// same keys.
func TestRule10JoinForm(t *testing.T) {
	r := ruleTable(t, 3, 30)
	f := PaperAction{Col: r.Schema.MustCol("damage"), Delta: func(row []float64) float64 { return row[4] }}
	g := PaperAction{Col: r.Schema.MustCol("inaura"), Delta: func(row []float64) float64 { return 2 }}
	r1 := f.Apply(r) // keyed: one row per input row
	r2 := g.Apply(r)
	lhs := r1.CombineWith(r2)
	rhs := JoinCombineK(r1, r2)
	if !lhs.EqualContents(rhs) {
		t.Fatal("rule (10) violated")
	}
}

// Covering-action elimination (Example 5.1 step 2): act⊕(R) ⊕ R = act⊕(R)
// when R's Sum effects are neutral (tick start) — the justification for
// dropping the ⊕ with E on branches whose action touches every unit.
func TestCoveringActionElimination(t *testing.T) {
	r := ruleTable(t, 4, 40)
	if !EffectsNeutral(r) {
		t.Fatal("fixture should start effect-neutral")
	}
	act := PaperAction{Col: r.Schema.MustCol("movevect_x"), Delta: func(row []float64) float64 { return 7 }}
	lhs := act.Apply(r).CombineWith(r)
	rhs := act.Apply(r)
	if !lhs.EqualContents(rhs) {
		t.Fatal("covering-action elimination violated at tick start")
	}

	// And the precondition matters: a non-neutral R breaks it.
	rDirty := r.Clone()
	rDirty.Rows[0][r.Schema.MustCol("movevect_x")] = 5
	if EffectsNeutral(rDirty) {
		t.Fatal("dirty table should not be neutral")
	}
	lhs2 := act.Apply(rDirty).CombineWith(rDirty)
	rhs2 := act.Apply(rDirty)
	if lhs2.EqualContents(rhs2) {
		t.Fatal("expected the identity to fail without the neutrality precondition")
	}
}

func TestJoinCombineKPanics(t *testing.T) {
	r := ruleTable(t, 5, 10)
	dup := r.Clone()
	dup.Rows = append(dup.Rows, append([]float64(nil), dup.Rows[0]...)) // unkeyed
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unkeyed input")
		}
	}()
	JoinCombineK(dup, r)
}
