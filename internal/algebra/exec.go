package algebra

import (
	"fmt"
	"math"

	"github.com/epicscale/sgl/internal/rng"
	"github.com/epicscale/sgl/internal/sgl/ast"
	"github.com/epicscale/sgl/internal/sgl/interp"
	"github.com/epicscale/sgl/internal/sgl/sem"
	"github.com/epicscale/sgl/internal/table"
)

// Row is one unit flowing through a plan: its environment tuple plus the
// extension columns added by Extend operators. Ext is indexed by global
// slot; a Row object is shared by every branch that sees the unit, so each
// extension is computed exactly once (set-at-a-time sharing).
type Row struct {
	Unit []float64
	Ext  []interp.Value
}

// Executor evaluates a plan over one tick's environment. Node results are
// memoized, so the DAG sharing produced by translation (and improved by the
// optimizer) directly becomes shared computation.
//
// Concurrency contract: one Executor per goroutine, snapshot shared. An
// Executor owns mutable scratch state (the node memo cache and the batch
// aggregate cache) and must never be shared between goroutines; the inputs
// it closes over — the program, the plan, the environment table, and the
// tick source — are all read-only during a tick and may be shared freely.
// The provider must likewise be private to the goroutine (see
// exec.Indexed.Fork) or stateless (interp.Naive).
//
// The parallel engine exploits this by giving every worker its own Executor
// over a disjoint row range of the same frozen environment snapshot: plan
// evaluation restricted to rows [lo, hi) while aggregates and target
// selection still see the whole environment through the provider.
type Executor struct {
	prog  *sem.Program
	plan  *Plan
	env   *table.Table
	prov  interp.Provider
	r     rng.TickSource
	ev    *interp.Evaluator // for BuildEffectRow reuse
	cache map[Node][]*Row
	// batchCache holds per-(aggregate call, row) results produced by
	// batchExtend when the provider supports set-at-a-time evaluation.
	batchCache map[*ast.Call]map[*Row]interp.Value
	// lo/hi restrict the Base node to env.Rows[lo:hi) — the unit shard this
	// executor is responsible for. hi < 0 means the full table.
	lo, hi int
}

// NewExecutor binds a plan to an environment, provider, and tick source.
func NewExecutor(prog *sem.Program, plan *Plan, env *table.Table, prov interp.Provider, r rng.TickSource) *Executor {
	return NewExecutorRange(prog, plan, env, prov, r, 0, -1)
}

// NewExecutorRange is NewExecutor restricted to the unit shard
// env.Rows[lo:hi): the plan's Base node produces only those rows, while
// aggregates and action-target selection (which go through the provider)
// still observe the entire environment. hi < 0 selects the full table.
// Shard executors over disjoint ranges may run concurrently as long as each
// has its own provider view (see the concurrency contract on Executor).
func NewExecutorRange(prog *sem.Program, plan *Plan, env *table.Table, prov interp.Provider, r rng.TickSource, lo, hi int) *Executor {
	return &Executor{
		prog: prog, plan: plan, env: env, prov: prov, r: r,
		ev:    interp.New(prog, env, prov, r),
		cache: map[Node][]*Row{},
		lo:    lo, hi: hi,
	}
}

// baseRows returns the slice of environment rows this executor's Base node
// produces.
func (x *Executor) baseRows() [][]float64 {
	if x.hi < 0 {
		return x.env.Rows
	}
	return x.env.Rows[x.lo:x.hi]
}

// Effects evaluates the plan, emitting every effect row it produces. This
// is main⊕(E) without the final ⊕ E.
func (x *Executor) Effects(emit func(row []float64)) error {
	return x.effects(x.plan.Root, emit)
}

// Tick computes the full semantics of Eq. (6) — the plan's effects
// ⊕-combined with the environment — and must agree exactly with
// interp.Evaluator.Tick on the same program.
func (x *Executor) Tick() (*table.Table, error) {
	effects := table.New(x.env.Schema, x.env.Len())
	if err := x.Effects(func(row []float64) { effects.Append(row) }); err != nil {
		return nil, err
	}
	return effects.Union(x.env).Combine(), nil
}

func (x *Executor) effects(n Node, emit func([]float64)) error {
	switch v := n.(type) {
	case *Combine:
		for _, k := range v.Kids {
			if err := x.effects(k, emit); err != nil {
				return err
			}
		}
		return nil
	case *Apply:
		rows, err := x.units(v.In)
		if err != nil {
			return err
		}
		args := make([]float64, len(v.Args))
		for _, row := range rows {
			for i, a := range v.Args {
				val, err := x.evalTerm(a, v.Env, row)
				if err != nil {
					return err
				}
				if val.Rec {
					return fmt.Errorf("algebra: unexpanded record argument at %s", a.Pos())
				}
				args[i] = val.Num
			}
			var applyErr error
			x.prov.SelectTargets(v.Def, row.Unit, args, func(tgt []float64) {
				if applyErr != nil {
					return
				}
				eff, err := x.ev.BuildEffectRow(v.Def, row.Unit, args, tgt)
				if err != nil {
					applyErr = err
					return
				}
				emit(eff)
			})
			if applyErr != nil {
				return applyErr
			}
		}
		return nil
	default:
		return fmt.Errorf("algebra: node %T does not produce effects", n)
	}
}

// units evaluates a unit-set node, memoized.
func (x *Executor) units(n Node) ([]*Row, error) {
	if rows, ok := x.cache[n]; ok {
		return rows, nil
	}
	var rows []*Row
	var err error
	switch v := n.(type) {
	case *Base:
		base := x.baseRows()
		rows = make([]*Row, len(base))
		for i, u := range base {
			rows[i] = &Row{Unit: u, Ext: make([]interp.Value, x.plan.Slots)}
		}
	case *Select:
		var in []*Row
		in, err = x.units(v.In)
		if err != nil {
			return nil, err
		}
		rows = make([]*Row, 0, len(in))
		for _, row := range in {
			ok, cerr := x.evalCond(v.Cond, v.Env, row)
			if cerr != nil {
				return nil, cerr
			}
			if ok {
				rows = append(rows, row)
			}
		}
	case *Extend:
		rows, err = x.units(v.In)
		if err != nil {
			return nil, err
		}
		if _, berr := x.batchExtend(v, rows); berr != nil {
			return nil, berr
		}
		for _, row := range rows {
			val, verr := x.evalTerm(v.Value, v.Env, row)
			if verr != nil {
				return nil, verr
			}
			row.Ext[v.Slot] = val
		}
	default:
		return nil, fmt.Errorf("algebra: node %T does not produce a unit set", n)
	}
	x.cache[n] = rows
	return rows, nil
}

// ---------------------------------------------------------------------------
// Slot-based term and condition evaluation (mirrors interp semantics)

func (x *Executor) evalCond(c ast.Cond, env *Env, row *Row) (bool, error) {
	switch n := c.(type) {
	case *ast.BoolLit:
		return n.Val, nil
	case *ast.Not:
		v, err := x.evalCond(n.X, env, row)
		return !v, err
	case *ast.And:
		a, err := x.evalCond(n.X, env, row)
		if err != nil || !a {
			return false, err
		}
		return x.evalCond(n.Y, env, row)
	case *ast.Or:
		a, err := x.evalCond(n.X, env, row)
		if err != nil || a {
			return a, err
		}
		return x.evalCond(n.Y, env, row)
	case *ast.Compare:
		xv, err := x.evalTerm(n.X, env, row)
		if err != nil {
			return false, err
		}
		yv, err := x.evalTerm(n.Y, env, row)
		if err != nil {
			return false, err
		}
		switch n.Op {
		case ast.Eq:
			return xv.Num == yv.Num, nil
		case ast.Ne:
			return xv.Num != yv.Num, nil
		case ast.Lt:
			return xv.Num < yv.Num, nil
		case ast.Le:
			return xv.Num <= yv.Num, nil
		case ast.Gt:
			return xv.Num > yv.Num, nil
		default:
			return xv.Num >= yv.Num, nil
		}
	}
	return false, fmt.Errorf("algebra: unknown condition node %T", c)
}

func (x *Executor) evalTerm(t ast.Term, env *Env, row *Row) (interp.Value, error) {
	switch n := t.(type) {
	case *ast.NumLit:
		return interp.NumVal(n.Val), nil

	case *ast.ConstRef:
		return interp.NumVal(x.prog.Consts[n.Name]), nil

	case *ast.VarRef:
		slot, ok := env.Lookup(n.Name)
		if !ok {
			return interp.Value{}, fmt.Errorf("algebra: unresolved name %q at %s", n.Name, n.P)
		}
		return row.Ext[slot], nil

	case *ast.FieldRef:
		if n.Base == env.Unit {
			return interp.NumVal(row.Unit[x.prog.Schema.MustCol(n.Field)]), nil
		}
		slot, ok := env.Lookup(n.Base)
		if !ok {
			return interp.Value{}, fmt.Errorf("algebra: unresolved name %q at %s", n.Base, n.P)
		}
		f, ok := row.Ext[slot].Field(n.Field)
		if !ok {
			return interp.Value{}, fmt.Errorf("algebra: record %q has no field %q at %s", n.Base, n.Field, n.P)
		}
		return interp.NumVal(f), nil

	case *ast.Field:
		base, err := x.evalTerm(n.X, env, row)
		if err != nil {
			return interp.Value{}, err
		}
		f, ok := base.Field(n.Field)
		if !ok {
			return interp.Value{}, fmt.Errorf("algebra: no field %q at %s", n.Field, n.P)
		}
		return interp.NumVal(f), nil

	case *ast.Pair:
		xv, err := x.evalTerm(n.X, env, row)
		if err != nil {
			return interp.Value{}, err
		}
		yv, err := x.evalTerm(n.Y, env, row)
		if err != nil {
			return interp.Value{}, err
		}
		return interp.RecVal([]string{"x", "y"}, []float64{xv.Num, yv.Num}), nil

	case *ast.Neg:
		v, err := x.evalTerm(n.X, env, row)
		if err != nil {
			return interp.Value{}, err
		}
		if v.Rec {
			out := make([]float64, len(v.Vals))
			for i, f := range v.Vals {
				out[i] = -f
			}
			return interp.RecVal(v.Fields, out), nil
		}
		return interp.NumVal(-v.Num), nil

	case *ast.Binary:
		xv, err := x.evalTerm(n.X, env, row)
		if err != nil {
			return interp.Value{}, err
		}
		yv, err := x.evalTerm(n.Y, env, row)
		if err != nil {
			return interp.Value{}, err
		}
		return applyBinop(n.Op, xv, yv), nil

	case *ast.Call:
		return x.evalCall(n, env, row)
	}
	return interp.Value{}, fmt.Errorf("algebra: unknown term node %T", t)
}

func applyBinop(op ast.BinOp, x, y interp.Value) interp.Value {
	apply := func(a, b float64) float64 {
		switch op {
		case ast.Add:
			return a + b
		case ast.Sub:
			return a - b
		case ast.Mul:
			return a * b
		case ast.Div:
			return a / b
		default:
			return math.Trunc(math.Mod(a, b))
		}
	}
	switch {
	case !x.Rec && !y.Rec:
		return interp.NumVal(apply(x.Num, y.Num))
	case x.Rec && y.Rec:
		out := make([]float64, len(x.Vals))
		for i := range out {
			out[i] = apply(x.Vals[i], y.Vals[i])
		}
		return interp.RecVal(x.Fields, out)
	case x.Rec:
		out := make([]float64, len(x.Vals))
		for i := range out {
			out[i] = apply(x.Vals[i], y.Num)
		}
		return interp.RecVal(x.Fields, out)
	default:
		out := make([]float64, len(y.Vals))
		for i := range out {
			out[i] = apply(x.Num, y.Vals[i])
		}
		return interp.RecVal(y.Fields, out)
	}
}

func (x *Executor) evalCall(n *ast.Call, env *Env, row *Row) (interp.Value, error) {
	if cache, ok := x.batchCache[n]; ok {
		if v, ok := cache[row]; ok {
			return v, nil
		}
	}
	switch n.Name {
	case "Random", "random":
		seed, err := x.evalTerm(n.Args[0], env, row)
		if err != nil {
			return interp.Value{}, err
		}
		key := int64(row.Unit[x.prog.Schema.KeyCol()])
		return interp.NumVal(float64(x.r.Random(key, int64(seed.Num)))), nil
	case "abs", "sqrt", "floor":
		v, err := x.evalTerm(n.Args[0], env, row)
		if err != nil {
			return interp.Value{}, err
		}
		switch n.Name {
		case "abs":
			return interp.NumVal(math.Abs(v.Num)), nil
		case "sqrt":
			return interp.NumVal(math.Sqrt(v.Num)), nil
		default:
			return interp.NumVal(math.Floor(v.Num)), nil
		}
	case "min", "max":
		a, err := x.evalTerm(n.Args[0], env, row)
		if err != nil {
			return interp.Value{}, err
		}
		b, err := x.evalTerm(n.Args[1], env, row)
		if err != nil {
			return interp.Value{}, err
		}
		if n.Name == "min" {
			return interp.NumVal(math.Min(a.Num, b.Num)), nil
		}
		return interp.NumVal(math.Max(a.Num, b.Num)), nil
	}

	def := x.prog.AggCalls[n]
	if def == nil {
		return interp.Value{}, fmt.Errorf("algebra: unresolved call %q at %s", n.Name, n.P)
	}
	args := make([]float64, len(n.Args)-1)
	for i, a := range n.Args[1:] {
		v, err := x.evalTerm(a, env, row)
		if err != nil {
			return interp.Value{}, err
		}
		args[i] = v.Num
	}
	outs := x.prov.EvalAgg(def, row.Unit, args)
	if len(def.Outputs) == 1 {
		return interp.NumVal(outs[0]), nil
	}
	fields := make([]string, len(def.Outputs))
	for i, o := range def.Outputs {
		fields[i] = o.As
	}
	return interp.RecVal(fields, outs), nil
}

// RunTick translates, optimizes, and executes a program for one tick — the
// compiled counterpart of interp.RunTickNaive.
func RunTick(prog *sem.Program, env *table.Table, prov interp.Provider, r rng.TickSource) (*table.Table, error) {
	plan, err := Translate(prog)
	if err != nil {
		return nil, err
	}
	Optimize(plan)
	return NewExecutor(prog, plan, env, prov, r).Tick()
}
