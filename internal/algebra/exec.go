package algebra

import (
	"fmt"
	"math"

	"github.com/epicscale/sgl/internal/rng"
	"github.com/epicscale/sgl/internal/sgl/ast"
	"github.com/epicscale/sgl/internal/sgl/interp"
	"github.com/epicscale/sgl/internal/sgl/sem"
	"github.com/epicscale/sgl/internal/table"
)

// Row is one unit flowing through a plan: its environment tuple plus the
// extension columns added by Extend operators. Ext is indexed by global
// slot; a Row object is shared by every branch that sees the unit, so each
// extension is computed exactly once (set-at-a-time sharing).
type Row struct {
	Unit []float64
	Ext  []interp.Value
	// ord is the row's ordinal within the executor's base shard — the
	// index of the streaming path's flat memos (done bitset, Select
	// verdicts). Rows built by the materializing path leave it zero.
	ord int32
}

// Executor evaluates a plan over one tick's environment. Node results are
// memoized, so the DAG sharing produced by translation (and improved by the
// optimizer) directly becomes shared computation.
//
// Concurrency contract: one Executor per goroutine, snapshot shared. An
// Executor owns mutable scratch state (the node memo cache and the batch
// aggregate cache) and must never be shared between goroutines; the inputs
// it closes over — the program, the plan, the environment table, and the
// tick source — are all read-only during a tick and may be shared freely.
// The provider must likewise be private to the goroutine (see
// exec.Indexed.Fork) or stateless (interp.Naive).
//
// The parallel engine exploits this by giving every worker its own Executor
// over a disjoint row range of the same frozen environment snapshot: plan
// evaluation restricted to rows [lo, hi) while aggregates and target
// selection still see the whole environment through the provider.
type Executor struct {
	prog  *sem.Program
	plan  *Plan
	env   *table.Table
	prov  interp.Provider
	r     rng.TickSource
	ev    *interp.Evaluator // for BuildEffectRow reuse
	cache map[Node][]*Row
	// batchCache holds per-(aggregate call, row) results produced by
	// batchExtend when the provider supports set-at-a-time evaluation.
	batchCache map[*ast.Call]map[*Row]interp.Value
	// lo/hi restrict the Base node to env.Rows[lo:hi) — the unit shard this
	// executor is responsible for. hi < 0 means the full table.
	lo, hi int

	// materialize selects the legacy node-at-a-time path (units(), one
	// []*Row slice memoized per plan node) over the streaming pipelines of
	// stream.go. Both are byte-identical; the flag exists for differential
	// tests and the allocation/throughput comparison.
	materialize bool

	// Streaming state (stream.go): flat row storage over the base shard,
	// the per-(row, slot) extension done bitset, compiled pipelines per
	// Apply input, shared Select verdict memos, and the survivor-index
	// scratch buffer reused between blocking batch stages.
	srows     []Row
	done      []uint64
	pipes     map[Node]*pipeline
	selShares map[*Select]int
	selMemo   map[*Select][]int8
	scratch   []int32

	// aggInto is the provider's zero-alloc probe API when it offers one
	// (exec.Indexed does). The streaming path carves result destinations
	// out of valArena — results are retained in Extend slots for their
	// row's lifetime, so they cannot share one buffer, but chunked arena
	// carving amortizes the per-probe allocation away. recFields caches
	// the output-name slice of each multi-output aggregate (static per
	// definition, shared read-only across rows).
	aggInto   aggIntoProvider
	valArena  []float64
	recFields map[*ast.AggDef][]string
}

// aggIntoProvider is the optional provider fast path: EvalAgg writing
// into a caller-owned destination of length len(def.Outputs) instead of
// allocating. Implemented by exec.Indexed.
type aggIntoProvider interface {
	EvalAggInto(dst []float64, def *ast.AggDef, unit, args []float64) []float64
}

// arenaSlice carves an n-float destination out of the executor's arena,
// starting a fresh chunk when the current one is exhausted. Full chunks
// stay alive as long as any Extend slot references them — the executor
// (and so the arena) lives for one tick.
func (x *Executor) arenaSlice(n int) []float64 {
	if len(x.valArena)+n > cap(x.valArena) {
		size := 4096
		if n > size {
			size = n
		}
		x.valArena = make([]float64, 0, size)
	}
	s := x.valArena[len(x.valArena) : len(x.valArena)+n : len(x.valArena)+n]
	x.valArena = x.valArena[:len(x.valArena)+n]
	return s
}

// RangeError reports invalid shard bounds passed to NewExecutorRange.
type RangeError struct {
	Lo, Hi, Len int
}

func (e *RangeError) Error() string {
	return fmt.Sprintf("algebra: executor row range [%d,%d) invalid for environment of %d rows", e.Lo, e.Hi, e.Len)
}

// NewExecutor binds a plan to an environment, provider, and tick source.
func NewExecutor(prog *sem.Program, plan *Plan, env *table.Table, prov interp.Provider, r rng.TickSource) *Executor {
	x := &Executor{
		prog: prog, plan: plan, env: env, prov: prov, r: r,
		ev:    interp.New(prog, env, prov, r),
		cache: map[Node][]*Row{},
		lo:    0, hi: -1,
	}
	x.aggInto, _ = prov.(aggIntoProvider)
	return x
}

// NewExecutorRange is NewExecutor restricted to the unit shard
// env.Rows[lo:hi): the plan's Base node produces only those rows, while
// aggregates and action-target selection (which go through the provider)
// still observe the entire environment. hi < 0 selects the full table
// (then lo must be 0); otherwise 0 ≤ lo ≤ hi ≤ env.Len() is required and
// anything else — negative, inverted, or past-the-end bounds — returns a
// *RangeError instead of letting the Base node's slice expression panic
// mid-tick. Shard executors over disjoint ranges may run concurrently as
// long as each has its own provider view (see the concurrency contract
// on Executor).
func NewExecutorRange(prog *sem.Program, plan *Plan, env *table.Table, prov interp.Provider, r rng.TickSource, lo, hi int) (*Executor, error) {
	if hi < 0 {
		if hi != -1 || lo != 0 {
			return nil, &RangeError{Lo: lo, Hi: hi, Len: env.Len()}
		}
	} else if lo < 0 || lo > hi || hi > env.Len() {
		return nil, &RangeError{Lo: lo, Hi: hi, Len: env.Len()}
	}
	x := NewExecutor(prog, plan, env, prov, r)
	x.lo, x.hi = lo, hi
	return x, nil
}

// SetMaterialize switches the executor to the legacy materializing
// units() path (true) or the streaming pipelines (false, the default).
// Must be called before the first evaluation; the two paths produce
// byte-identical effects, so this is an ablation and test toggle, not a
// semantic choice.
func (x *Executor) SetMaterialize(on bool) { x.materialize = on }

// baseRows returns the slice of environment rows this executor's Base node
// produces.
func (x *Executor) baseRows() [][]float64 {
	if x.hi < 0 {
		return x.env.Rows
	}
	return x.env.Rows[x.lo:x.hi]
}

// Effects evaluates the plan, emitting every effect row it produces. This
// is main⊕(E) without the final ⊕ E.
func (x *Executor) Effects(emit func(row []float64)) error {
	return x.effects(x.plan.Root, emit)
}

// Tick computes the full semantics of Eq. (6) — the plan's effects
// ⊕-combined with the environment — and must agree exactly with
// interp.Evaluator.Tick on the same program.
func (x *Executor) Tick() (*table.Table, error) {
	effects := table.New(x.env.Schema, x.env.Len())
	if err := x.Effects(func(row []float64) { effects.Append(row) }); err != nil {
		return nil, err
	}
	return effects.Union(x.env).Combine(), nil
}

func (x *Executor) effects(n Node, emit func([]float64)) error {
	switch v := n.(type) {
	case *Combine:
		for _, k := range v.Kids {
			if err := x.effects(k, emit); err != nil {
				return err
			}
		}
		return nil
	case *Apply:
		args := make([]float64, len(v.Args))
		return x.EachUnit(v.In, func(row *Row) error {
			for i, a := range v.Args {
				val, err := x.evalTerm(a, v.Env, row)
				if err != nil {
					return err
				}
				if val.Rec {
					return fmt.Errorf("algebra: unexpanded record argument at %s", a.Pos())
				}
				args[i] = val.Num
			}
			var applyErr error
			x.prov.SelectTargets(v.Def, row.Unit, args, func(tgt []float64) {
				if applyErr != nil {
					return
				}
				eff, err := x.ev.BuildEffectRow(v.Def, row.Unit, args, tgt)
				if err != nil {
					applyErr = err
					return
				}
				emit(eff)
			})
			return applyErr
		})
	default:
		return fmt.Errorf("algebra: node %T does not produce effects", n)
	}
}

// units evaluates a unit-set node, memoized.
func (x *Executor) units(n Node) ([]*Row, error) {
	if rows, ok := x.cache[n]; ok {
		return rows, nil
	}
	var rows []*Row
	var err error
	switch v := n.(type) {
	case *Base:
		base := x.baseRows()
		rows = make([]*Row, len(base))
		for i, u := range base {
			rows[i] = &Row{Unit: u, Ext: make([]interp.Value, x.plan.Slots)}
		}
	case *Select:
		var in []*Row
		in, err = x.units(v.In)
		if err != nil {
			return nil, err
		}
		rows = make([]*Row, 0, len(in))
		for _, row := range in {
			ok, cerr := x.evalCond(v.Cond, v.Env, row)
			if cerr != nil {
				return nil, cerr
			}
			if ok {
				rows = append(rows, row)
			}
		}
	case *Extend:
		rows, err = x.units(v.In)
		if err != nil {
			return nil, err
		}
		if _, berr := x.batchExtend(v, rows); berr != nil {
			return nil, berr
		}
		for _, row := range rows {
			val, verr := x.evalTerm(v.Value, v.Env, row)
			if verr != nil {
				return nil, verr
			}
			row.Ext[v.Slot] = val
		}
	default:
		return nil, fmt.Errorf("algebra: node %T does not produce a unit set", n)
	}
	x.cache[n] = rows
	return rows, nil
}

// ---------------------------------------------------------------------------
// Slot-based term and condition evaluation (mirrors interp semantics)

func (x *Executor) evalCond(c ast.Cond, env *Env, row *Row) (bool, error) {
	switch n := c.(type) {
	case *ast.BoolLit:
		return n.Val, nil
	case *ast.Not:
		v, err := x.evalCond(n.X, env, row)
		return !v, err
	case *ast.And:
		a, err := x.evalCond(n.X, env, row)
		if err != nil || !a {
			return false, err
		}
		return x.evalCond(n.Y, env, row)
	case *ast.Or:
		a, err := x.evalCond(n.X, env, row)
		if err != nil || a {
			return a, err
		}
		return x.evalCond(n.Y, env, row)
	case *ast.Compare:
		xv, err := x.evalTerm(n.X, env, row)
		if err != nil {
			return false, err
		}
		yv, err := x.evalTerm(n.Y, env, row)
		if err != nil {
			return false, err
		}
		switch n.Op {
		case ast.Eq:
			return xv.Num == yv.Num, nil
		case ast.Ne:
			return xv.Num != yv.Num, nil
		case ast.Lt:
			return xv.Num < yv.Num, nil
		case ast.Le:
			return xv.Num <= yv.Num, nil
		case ast.Gt:
			return xv.Num > yv.Num, nil
		default:
			return xv.Num >= yv.Num, nil
		}
	}
	return false, fmt.Errorf("algebra: unknown condition node %T", c)
}

func (x *Executor) evalTerm(t ast.Term, env *Env, row *Row) (interp.Value, error) {
	switch n := t.(type) {
	case *ast.NumLit:
		return interp.NumVal(n.Val), nil

	case *ast.ConstRef:
		return interp.NumVal(x.prog.Consts[n.Name]), nil

	case *ast.VarRef:
		slot, ok := env.Lookup(n.Name)
		if !ok {
			return interp.Value{}, fmt.Errorf("algebra: unresolved name %q at %s", n.Name, n.P)
		}
		return row.Ext[slot], nil

	case *ast.FieldRef:
		if n.Base == env.Unit {
			return interp.NumVal(row.Unit[x.prog.Schema.MustCol(n.Field)]), nil
		}
		slot, ok := env.Lookup(n.Base)
		if !ok {
			return interp.Value{}, fmt.Errorf("algebra: unresolved name %q at %s", n.Base, n.P)
		}
		f, ok := row.Ext[slot].Field(n.Field)
		if !ok {
			return interp.Value{}, fmt.Errorf("algebra: record %q has no field %q at %s", n.Base, n.Field, n.P)
		}
		return interp.NumVal(f), nil

	case *ast.Field:
		base, err := x.evalTerm(n.X, env, row)
		if err != nil {
			return interp.Value{}, err
		}
		f, ok := base.Field(n.Field)
		if !ok {
			return interp.Value{}, fmt.Errorf("algebra: no field %q at %s", n.Field, n.P)
		}
		return interp.NumVal(f), nil

	case *ast.Pair:
		xv, err := x.evalTerm(n.X, env, row)
		if err != nil {
			return interp.Value{}, err
		}
		yv, err := x.evalTerm(n.Y, env, row)
		if err != nil {
			return interp.Value{}, err
		}
		return interp.RecVal([]string{"x", "y"}, []float64{xv.Num, yv.Num}), nil

	case *ast.Neg:
		v, err := x.evalTerm(n.X, env, row)
		if err != nil {
			return interp.Value{}, err
		}
		if v.Rec {
			out := make([]float64, len(v.Vals))
			for i, f := range v.Vals {
				out[i] = -f
			}
			return interp.RecVal(v.Fields, out), nil
		}
		return interp.NumVal(-v.Num), nil

	case *ast.Binary:
		xv, err := x.evalTerm(n.X, env, row)
		if err != nil {
			return interp.Value{}, err
		}
		yv, err := x.evalTerm(n.Y, env, row)
		if err != nil {
			return interp.Value{}, err
		}
		return applyBinop(n.Op, xv, yv), nil

	case *ast.Call:
		return x.evalCall(n, env, row)
	}
	return interp.Value{}, fmt.Errorf("algebra: unknown term node %T", t)
}

// applyBinop evaluates arithmetic with IEEE-754 semantics, exactly like
// the interpreter: it is total — no operand combination is an error.
// Division by zero yields ±Inf (x/0), NaN (0/0), and Mod with a zero
// divisor yields NaN through math.Mod; every operator propagates NaN.
// Comparisons over these values follow IEEE too: NaN compares false
// under =, <, <=, >, >= and true under <> (see evalCond). These bits
// flow into effect rows, the fold, and checkpoint bytes unchanged —
// poisoned floats are deterministic, not rejected, which is what keeps
// replayed ≡ live over any script (pinned by the NaN/Inf tests).
func applyBinop(op ast.BinOp, x, y interp.Value) interp.Value {
	apply := func(a, b float64) float64 {
		switch op {
		case ast.Add:
			return a + b
		case ast.Sub:
			return a - b
		case ast.Mul:
			return a * b
		case ast.Div:
			return a / b
		default:
			return math.Trunc(math.Mod(a, b))
		}
	}
	switch {
	case !x.Rec && !y.Rec:
		return interp.NumVal(apply(x.Num, y.Num))
	case x.Rec && y.Rec:
		out := make([]float64, len(x.Vals))
		for i := range out {
			out[i] = apply(x.Vals[i], y.Vals[i])
		}
		return interp.RecVal(x.Fields, out)
	case x.Rec:
		out := make([]float64, len(x.Vals))
		for i := range out {
			out[i] = apply(x.Vals[i], y.Num)
		}
		return interp.RecVal(x.Fields, out)
	default:
		out := make([]float64, len(y.Vals))
		for i := range out {
			out[i] = apply(x.Num, y.Vals[i])
		}
		return interp.RecVal(y.Fields, out)
	}
}

func (x *Executor) evalCall(n *ast.Call, env *Env, row *Row) (interp.Value, error) {
	if cache, ok := x.batchCache[n]; ok {
		if v, ok := cache[row]; ok {
			return v, nil
		}
	}
	switch n.Name {
	case "Random", "random":
		seed, err := x.evalTerm(n.Args[0], env, row)
		if err != nil {
			return interp.Value{}, err
		}
		key := int64(row.Unit[x.prog.Schema.KeyCol()])
		return interp.NumVal(float64(x.r.Random(key, int64(seed.Num)))), nil
	case "abs", "sqrt", "floor":
		v, err := x.evalTerm(n.Args[0], env, row)
		if err != nil {
			return interp.Value{}, err
		}
		switch n.Name {
		case "abs":
			return interp.NumVal(math.Abs(v.Num)), nil
		case "sqrt":
			return interp.NumVal(math.Sqrt(v.Num)), nil
		default:
			return interp.NumVal(math.Floor(v.Num)), nil
		}
	case "min", "max":
		a, err := x.evalTerm(n.Args[0], env, row)
		if err != nil {
			return interp.Value{}, err
		}
		b, err := x.evalTerm(n.Args[1], env, row)
		if err != nil {
			return interp.Value{}, err
		}
		if n.Name == "min" {
			return interp.NumVal(math.Min(a.Num, b.Num)), nil
		}
		return interp.NumVal(math.Max(a.Num, b.Num)), nil
	}

	def := x.prog.AggCalls[n]
	if def == nil {
		return interp.Value{}, fmt.Errorf("algebra: unresolved call %q at %s", n.Name, n.P)
	}
	args := make([]float64, len(n.Args)-1)
	for i, a := range n.Args[1:] {
		v, err := x.evalTerm(a, env, row)
		if err != nil {
			return interp.Value{}, err
		}
		args[i] = v.Num
	}
	var outs []float64
	if x.aggInto != nil && !x.materialize {
		// Streaming fast path: the destination comes from the arena (the
		// result is retained in an Extend slot, so no shared scratch) and
		// the probe itself runs allocation-free on provider scratch.
		outs = x.aggInto.EvalAggInto(x.arenaSlice(len(def.Outputs)), def, row.Unit, args)
	} else {
		outs = x.prov.EvalAgg(def, row.Unit, args)
	}
	if len(def.Outputs) == 1 {
		return interp.NumVal(outs[0]), nil
	}
	fields := x.recFields[def]
	if fields == nil {
		fields = make([]string, len(def.Outputs))
		for i, o := range def.Outputs {
			fields[i] = o.As
		}
		if x.recFields == nil {
			x.recFields = map[*ast.AggDef][]string{}
		}
		x.recFields[def] = fields
	}
	return interp.RecVal(fields, outs), nil
}

// RunTick translates, optimizes, and executes a program for one tick — the
// compiled counterpart of interp.RunTickNaive.
func RunTick(prog *sem.Program, env *table.Table, prov interp.Provider, r rng.TickSource) (*table.Table, error) {
	plan, err := Translate(prog)
	if err != nil {
		return nil, err
	}
	Optimize(plan)
	return NewExecutor(prog, plan, env, prov, r).Tick()
}
