package algebra

import (
	"fmt"

	"github.com/epicscale/sgl/internal/sgl/ast"
	"github.com/epicscale/sgl/internal/sgl/sem"
)

// Translate compiles a checked program's main function into a plan, applying
// the paper's SGL→algebra rules. Script-function performs are inlined (they
// are guaranteed non-recursive by sem), with callee let-bindings
// alpha-renamed to keep slots distinct.
func Translate(prog *sem.Program) (*Plan, error) {
	tr := &translator{prog: prog}
	base := &Base{}
	env := &Env{Unit: prog.Main.Params[0], Slots: map[string]int{}}
	root, err := tr.action(prog.Main.Body, base, env, nil)
	if err != nil {
		return nil, err
	}
	c, ok := root.(*Combine)
	if !ok {
		c = &Combine{Kids: []Node{root}}
	}
	return &Plan{Root: c, Slots: tr.nextSlot, labels: tr.labels}, nil
}

type translator struct {
	prog     *sem.Program
	nextSlot int
	labels   []string
	gensym   int
}

// subst maps inlined parameter names to caller-scope terms.
type subst map[string]ast.Term

func (tr *translator) newSlot(name string) int {
	tr.labels = append(tr.labels, name)
	tr.nextSlot++
	return tr.nextSlot - 1
}

// action translates one action under the given probe-set input and scope.
func (tr *translator) action(a ast.Action, in Node, env *Env, sub subst) (Node, error) {
	switch n := a.(type) {
	case *ast.Nop:
		return &Combine{}, nil

	case *ast.Seq:
		// [[f1; f2]]⊕(E) = [[f1]]⊕(E) ⊕ [[f2]]⊕(E): all parts share `in`.
		c := &Combine{}
		for _, sub2 := range n.Acts {
			k, err := tr.action(sub2, in, env, sub)
			if err != nil {
				return nil, err
			}
			c.Kids = append(c.Kids, k)
		}
		return c, nil

	case *ast.If:
		// [[if φ then f]]⊕(E) = [[f]]⊕(σφ(E)); the else branch reads σ¬φ
		// of the *same* input node — the sharing that makes this a DAG.
		cond, err := tr.cond(n.Cond, sub)
		if err != nil {
			return nil, err
		}
		thenSel := &Select{In: in, Cond: cond, Env: env}
		thenEff, err := tr.action(n.Then, thenSel, env, sub)
		if err != nil {
			return nil, err
		}
		if n.Else == nil {
			return thenEff, nil
		}
		elseSel := &Select{In: in, Cond: &ast.Not{P: n.P, X: cond}, Env: env}
		elseEff, err := tr.action(n.Else, elseSel, env, sub)
		if err != nil {
			return nil, err
		}
		return &Combine{Kids: []Node{thenEff, elseEff}}, nil

	case *ast.Let:
		// [[(let A = a) f]]⊕(E) = [[f]]⊕(π*,a(*) AS A(E)).
		value, err := tr.term(n.Value, sub)
		if err != nil {
			return nil, err
		}
		slot := tr.newSlot(n.Name)
		ext := &Extend{In: in, Name: n.Name, Slot: slot, Value: value, Env: env}
		return tr.action(n.Body, ext, env.child(n.Name, slot), sub)

	case *ast.Perform:
		return tr.perform(n, in, env, sub)
	}
	return nil, fmt.Errorf("algebra: unknown action node %T", a)
}

func (tr *translator) perform(n *ast.Perform, in Node, env *Env, sub subst) (Node, error) {
	target := tr.prog.Performs[n]
	if target == nil {
		return nil, fmt.Errorf("algebra: unresolved perform %q at %s", n.Name, n.P)
	}
	if target.Act != nil {
		args := make([]ast.Term, len(target.Args))
		for i, a := range target.Args {
			t, err := tr.term(a, sub)
			if err != nil {
				return nil, err
			}
			args[i] = t
		}
		return &Apply{In: in, Def: target.Act, Args: args, Env: env}, nil
	}

	// Script function: inline with parameter substitution. The callee's
	// unit parameter maps to the caller's unit; other parameters map to the
	// caller-scope argument terms; callee lets are alpha-renamed by the
	// translator's gensym inside tr.action (fresh slots are automatic, and
	// name collisions are impossible because the callee body only mentions
	// its own names, which we rewrite here).
	callee := target.Func
	inlineSub := subst{}
	for i, arg := range target.Args {
		t, err := tr.term(arg, sub)
		if err != nil {
			return nil, err
		}
		inlineSub[callee.Params[i+1]] = t
	}
	tr.gensym++
	body, err := tr.renameLets(callee.Body, fmt.Sprintf("·%d", tr.gensym))
	if err != nil {
		return nil, err
	}
	// The callee's unit parameter name must resolve to the caller's unit:
	// record it as a VarRef substitution handled structurally by term().
	inlineSub[callee.Params[0]] = &ast.VarRef{P: n.P, Name: env.Unit}
	return tr.action(body, in, env, inlineSub)
}

// term applies the inline substitution to a term, leaving everything else
// intact. Substituted terms were already rewritten for the caller scope, so
// they are not re-substituted (no capture).
func (tr *translator) term(t ast.Term, sub subst) (ast.Term, error) {
	if sub == nil {
		return t, nil
	}
	switch n := t.(type) {
	case *ast.NumLit, *ast.ConstRef:
		return t, nil
	case *ast.VarRef:
		if r, ok := sub[n.Name]; ok {
			return r, nil
		}
		return t, nil
	case *ast.FieldRef:
		if r, ok := sub[n.Base]; ok {
			if v, isVar := r.(*ast.VarRef); isVar {
				return &ast.FieldRef{P: n.P, Base: v.Name, Field: n.Field}, nil
			}
			return &ast.Field{P: n.P, X: r, Field: n.Field}, nil
		}
		return t, nil
	case *ast.Field:
		x, err := tr.term(n.X, sub)
		if err != nil {
			return nil, err
		}
		return &ast.Field{P: n.P, X: x, Field: n.Field}, nil
	case *ast.Pair:
		x, err := tr.term(n.X, sub)
		if err != nil {
			return nil, err
		}
		y, err := tr.term(n.Y, sub)
		if err != nil {
			return nil, err
		}
		return &ast.Pair{P: n.P, X: x, Y: y}, nil
	case *ast.Neg:
		x, err := tr.term(n.X, sub)
		if err != nil {
			return nil, err
		}
		return &ast.Neg{P: n.P, X: x}, nil
	case *ast.Binary:
		x, err := tr.term(n.X, sub)
		if err != nil {
			return nil, err
		}
		y, err := tr.term(n.Y, sub)
		if err != nil {
			return nil, err
		}
		return &ast.Binary{P: n.P, Op: n.Op, X: x, Y: y}, nil
	case *ast.Call:
		args := make([]ast.Term, len(n.Args))
		for i, a := range n.Args {
			t2, err := tr.term(a, sub)
			if err != nil {
				return nil, err
			}
			args[i] = t2
		}
		out := &ast.Call{P: n.P, Name: n.Name, Args: args}
		if def, ok := tr.prog.AggCalls[n]; ok {
			// Keep the resolution table consistent for the rewritten node.
			tr.prog.AggCalls[out] = def
		}
		return out, nil
	}
	return nil, fmt.Errorf("algebra: unknown term node %T", t)
}

func (tr *translator) cond(c ast.Cond, sub subst) (ast.Cond, error) {
	switch n := c.(type) {
	case *ast.BoolLit:
		return c, nil
	case *ast.Not:
		x, err := tr.cond(n.X, sub)
		if err != nil {
			return nil, err
		}
		return &ast.Not{P: n.P, X: x}, nil
	case *ast.And:
		x, err := tr.cond(n.X, sub)
		if err != nil {
			return nil, err
		}
		y, err := tr.cond(n.Y, sub)
		if err != nil {
			return nil, err
		}
		return &ast.And{P: n.P, X: x, Y: y}, nil
	case *ast.Or:
		x, err := tr.cond(n.X, sub)
		if err != nil {
			return nil, err
		}
		y, err := tr.cond(n.Y, sub)
		if err != nil {
			return nil, err
		}
		return &ast.Or{P: n.P, X: x, Y: y}, nil
	case *ast.Compare:
		x, err := tr.term(n.X, sub)
		if err != nil {
			return nil, err
		}
		y, err := tr.term(n.Y, sub)
		if err != nil {
			return nil, err
		}
		return &ast.Compare{P: n.P, Op: n.Op, X: x, Y: y}, nil
	}
	return nil, fmt.Errorf("algebra: unknown condition node %T", c)
}

// renameLets alpha-renames every let binding in an action body by appending
// a suffix, rewriting references consistently. Used when inlining so two
// inlinings of the same function get distinct names.
func (tr *translator) renameLets(a ast.Action, suffix string) (ast.Action, error) {
	return tr.renameAction(a, suffix, map[string]string{})
}

func (tr *translator) renameAction(a ast.Action, suffix string, renames map[string]string) (ast.Action, error) {
	switch n := a.(type) {
	case *ast.Nop:
		return n, nil
	case *ast.Seq:
		acts := make([]ast.Action, len(n.Acts))
		for i, sub := range n.Acts {
			r, err := tr.renameAction(sub, suffix, renames)
			if err != nil {
				return nil, err
			}
			acts[i] = r
		}
		return &ast.Seq{P: n.P, Acts: acts}, nil
	case *ast.If:
		cond := tr.renameCond(n.Cond, renames)
		then, err := tr.renameAction(n.Then, suffix, renames)
		if err != nil {
			return nil, err
		}
		out := &ast.If{P: n.P, Cond: cond, Then: then}
		if n.Else != nil {
			els, err := tr.renameAction(n.Else, suffix, renames)
			if err != nil {
				return nil, err
			}
			out.Else = els
		}
		return out, nil
	case *ast.Let:
		value := tr.renameTerm(n.Value, renames)
		inner := make(map[string]string, len(renames)+1)
		//sgl:unordered map copy; insertion order cannot reach the resulting map
		for k, v := range renames {
			inner[k] = v
		}
		inner[n.Name] = n.Name + suffix
		body, err := tr.renameAction(n.Body, suffix, inner)
		if err != nil {
			return nil, err
		}
		return &ast.Let{P: n.P, Name: n.Name + suffix, Value: value, Body: body}, nil
	case *ast.Perform:
		args := make([]ast.Term, len(n.Args))
		for i, t := range n.Args {
			args[i] = tr.renameTerm(t, renames)
		}
		np := &ast.Perform{P: n.P, Name: n.Name, Args: args}
		// The resolution table is keyed by node identity: register the
		// renamed perform with its target's argument terms renamed the
		// same way, so tr.perform can resolve it.
		if target := tr.prog.Performs[n]; target != nil {
			targs := make([]ast.Term, len(target.Args))
			for i, t := range target.Args {
				targs[i] = tr.renameTerm(t, renames)
			}
			tr.prog.Performs[np] = &sem.PerformTarget{Func: target.Func, Act: target.Act, Args: targs}
		}
		return np, nil
	}
	return nil, fmt.Errorf("algebra: unknown action node %T", a)
}

func (tr *translator) renameTerm(t ast.Term, renames map[string]string) ast.Term {
	switch n := t.(type) {
	case *ast.VarRef:
		if r, ok := renames[n.Name]; ok {
			return &ast.VarRef{P: n.P, Name: r}
		}
		return n
	case *ast.FieldRef:
		if r, ok := renames[n.Base]; ok {
			return &ast.FieldRef{P: n.P, Base: r, Field: n.Field}
		}
		return n
	case *ast.Field:
		return &ast.Field{P: n.P, X: tr.renameTerm(n.X, renames), Field: n.Field}
	case *ast.Pair:
		return &ast.Pair{P: n.P, X: tr.renameTerm(n.X, renames), Y: tr.renameTerm(n.Y, renames)}
	case *ast.Neg:
		return &ast.Neg{P: n.P, X: tr.renameTerm(n.X, renames)}
	case *ast.Binary:
		return &ast.Binary{P: n.P, Op: n.Op, X: tr.renameTerm(n.X, renames), Y: tr.renameTerm(n.Y, renames)}
	case *ast.Call:
		args := make([]ast.Term, len(n.Args))
		for i, a := range n.Args {
			args[i] = tr.renameTerm(a, renames)
		}
		out := &ast.Call{P: n.P, Name: n.Name, Args: args}
		if def, ok := tr.prog.AggCalls[n]; ok {
			tr.prog.AggCalls[out] = def
		}
		return out
	default:
		return t
	}
}

func (tr *translator) renameCond(c ast.Cond, renames map[string]string) ast.Cond {
	switch n := c.(type) {
	case *ast.Not:
		return &ast.Not{P: n.P, X: tr.renameCond(n.X, renames)}
	case *ast.And:
		return &ast.And{P: n.P, X: tr.renameCond(n.X, renames), Y: tr.renameCond(n.Y, renames)}
	case *ast.Or:
		return &ast.Or{P: n.P, X: tr.renameCond(n.X, renames), Y: tr.renameCond(n.Y, renames)}
	case *ast.Compare:
		return &ast.Compare{P: n.P, Op: n.Op, X: tr.renameTerm(n.X, renames), Y: tr.renameTerm(n.Y, renames)}
	default:
		return c
	}
}
