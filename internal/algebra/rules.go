package algebra

import (
	"github.com/epicscale/sgl/internal/table"
)

// This file implements the ⊕-interaction rules of paper Figure 7 as
// table-level operations, so their soundness can be property-tested
// directly (see rules_test.go). The plan-level Optimize uses them
// implicitly: the executor's single effects-⊎-E combine at the end of a
// tick is exactly the normal form these rules justify.

// SelectRows is σφ on a materialized table (multiset semantics: row order
// preserved, rows shared not copied).
func SelectRows(t *table.Table, pred func(row []float64) bool) *table.Table {
	out := table.New(t.Schema, t.Len())
	for _, r := range t.Rows {
		if pred(r) {
			out.Rows = append(out.Rows, r)
		}
	}
	return out
}

// PaperAction models a built-in action in the *paper's* output convention
// (Figure 5): the action's SELECT copies every attribute of the input row
// and overwrites some effect attributes with new values computed from the
// row. Delta is added for Sum attributes and folded for Max/Min attributes,
// matching "e.damage + (...) AS damage".
type PaperAction struct {
	Col   int                         // effect column the action writes
	Delta func(row []float64) float64 // contribution computed from the row
}

// Apply returns act⊕(R) in the paper's convention: one output row per input
// row, all attributes copied, the action column folded with the delta.
// Because each input row yields exactly one output row with the same const
// attributes, the result of applying to a keyed table is keyed.
func (a PaperAction) Apply(t *table.Table) *table.Table {
	out := table.New(t.Schema, t.Len())
	kind := t.Schema.Attr(a.Col).Kind
	for _, r := range t.Rows {
		nr := append([]float64(nil), r...)
		switch kind {
		case table.Sum:
			nr[a.Col] = r[a.Col] + a.Delta(r)
		default:
			nr[a.Col] = kind.Fold(r[a.Col], a.Delta(r))
		}
		out.Rows = append(out.Rows, nr)
	}
	return out
}

// JoinCombineK implements the right-hand side of rule (10):
// π1.*⊕2.*(R1⊕ ⋈K R2⊕) — join two keyed tables on K and fold each effect
// attribute pairwise. Both tables must be keyed on the same key set with
// identical const attributes per key; JoinCombineK panics otherwise, since
// rule (10) is only stated for that case.
func JoinCombineK(r1, r2 *table.Table) *table.Table {
	if !r1.Schema.Equal(r2.Schema) {
		panic("algebra: JoinCombineK schema mismatch")
	}
	if !r1.Keyed() || !r2.Keyed() || r1.Len() != r2.Len() {
		panic("algebra: JoinCombineK requires keyed tables over the same keys")
	}
	s := r1.Schema
	out := table.New(s, r1.Len())
	for _, a := range r1.Rows {
		b := r2.Lookup(int64(a[s.KeyCol()]))
		if b == nil {
			panic("algebra: JoinCombineK key sets differ")
		}
		nr := make([]float64, s.NumAttrs())
		for _, c := range s.ConstCols() {
			if a[c] != b[c] {
				panic("algebra: JoinCombineK const attributes differ")
			}
			nr[c] = a[c]
		}
		for _, c := range s.EffectCols() {
			nr[c] = s.Attr(c).Kind.Fold(a[c], b[c])
		}
		out.Rows = append(out.Rows, nr)
	}
	return out
}

// EffectsNeutral reports whether every Sum-kind effect attribute of every
// row is 0. This is the tick-start invariant under which the covering-
// action rule act⊕(R) ⊕ R = act⊕(R) of Example 5.1 step 2 is valid: for
// Max/Min attributes the paper-convention action output already folds in
// the base value and the fold is idempotent, so only Sum attributes (where
// re-adding the base would double-count) need to start neutral.
func EffectsNeutral(t *table.Table) bool {
	for _, r := range t.Rows {
		for _, c := range t.Schema.EffectCols() {
			if t.Schema.Attr(c).Kind == table.Sum && r[c] != 0 {
				return false
			}
		}
	}
	return true
}
