package metrics

import (
	"fmt"
	"io"
	"sort"
)

// LoadGenRow is one world's worth of load-generator results: how fast its
// clock ran and what the spectator queries cost, over the measurement
// window. Produced by the internal/server load generator and rendered by
// WriteLoadGen.
type LoadGenRow struct {
	World string
	// Ticks the world advanced during the window, and the rate that
	// implies against the configured target (0 target = uncapped).
	Ticks      int64
	TickRate   float64
	TargetRate float64
	// Spectator-query accounting: completed queries, their throughput,
	// and client-observed latency quantiles in microseconds.
	Queries    int
	QPS        float64
	MeanMicros float64
	P50Micros  float64
	P99Micros  float64
	MaxMicros  float64
	Errors     int
	// Actor-command accounting: accepted command submissions, their
	// throughput, and client-observed latency quantiles in microseconds
	// (all zero when the run had no actors).
	Commands     int
	CPS          float64
	CmdP50Micros float64
	CmdP99Micros float64
	CmdErrors    int
	// Push-subscription accounting (all zero when the run had no
	// subscribers): live SSE subscribers, answer events they received,
	// their rate, and the polls that many subscribers would have issued
	// for the same freshness — one per subscriber per tick. Pushes ≪
	// PollEquiv is the point of maintained answers + push delivery.
	Subscribers int
	Pushes      int
	PushRate    float64
	PollEquiv   int64
	SubErrors   int
}

// LatencySummary reduces a sample of latencies (microseconds) to the
// quantiles LoadGenRow reports. The input is sorted in place.
func LatencySummary(micros []float64) (mean, p50, p99, max float64) {
	if len(micros) == 0 {
		return 0, 0, 0, 0
	}
	sort.Float64s(micros)
	sum := 0.0
	for _, v := range micros {
		sum += v
	}
	q := func(p float64) float64 {
		i := int(p * float64(len(micros)-1))
		return micros[i]
	}
	return sum / float64(len(micros)), q(0.50), q(0.99), micros[len(micros)-1]
}

// WriteLoadGen renders the per-world load-generator table plus a totals
// line, in the style of the other experiment tables. The actor-command
// columns appear only when some row actually submitted commands.
func WriteLoadGen(w io.Writer, rows []LoadGenRow) {
	withCmds, withSubs := false, false
	for _, r := range rows {
		if r.Commands > 0 || r.CmdErrors > 0 {
			withCmds = true
		}
		if r.Subscribers > 0 || r.SubErrors > 0 {
			withSubs = true
		}
	}
	fmt.Fprintf(w, "%-14s %8s %10s %10s %9s %9s %10s %10s %10s %10s %7s",
		"world", "ticks", "ticks/s", "target", "queries", "q/s", "mean µs", "p50 µs", "p99 µs", "max µs", "errors")
	if withCmds {
		fmt.Fprintf(w, " %8s %8s %10s %10s %8s", "cmds", "cmd/s", "cmd p50 µs", "cmd p99 µs", "cmderrs")
	}
	if withSubs {
		fmt.Fprintf(w, " %6s %8s %8s %9s %8s", "subs", "pushes", "push/s", "polls≡", "suberrs")
	}
	fmt.Fprintln(w)
	var ticks, pollEquiv int64
	var queries, errs, cmds, cmdErrs, subs, pushes, subErrs int
	var qps, rate, cps, pushRate float64
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %8d %10.1f %10.1f %9d %9.0f %10.1f %10.1f %10.1f %10.1f %7d",
			r.World, r.Ticks, r.TickRate, r.TargetRate, r.Queries, r.QPS,
			r.MeanMicros, r.P50Micros, r.P99Micros, r.MaxMicros, r.Errors)
		if withCmds {
			fmt.Fprintf(w, " %8d %8.0f %10.1f %10.1f %8d",
				r.Commands, r.CPS, r.CmdP50Micros, r.CmdP99Micros, r.CmdErrors)
		}
		if withSubs {
			fmt.Fprintf(w, " %6d %8d %8.1f %9d %8d",
				r.Subscribers, r.Pushes, r.PushRate, r.PollEquiv, r.SubErrors)
		}
		fmt.Fprintln(w)
		ticks += r.Ticks
		queries += r.Queries
		errs += r.Errors
		qps += r.QPS
		rate += r.TickRate
		cmds += r.Commands
		cps += r.CPS
		cmdErrs += r.CmdErrors
		subs += r.Subscribers
		pushes += r.Pushes
		pushRate += r.PushRate
		pollEquiv += r.PollEquiv
		subErrs += r.SubErrors
	}
	fmt.Fprintf(w, "%-14s %8d %10.1f %10s %9d %9.0f %10s %10s %10s %10s %7d",
		"TOTAL", ticks, rate, "", queries, qps, "", "", "", "", errs)
	if withCmds {
		fmt.Fprintf(w, " %8d %8.0f %10s %10s %8d", cmds, cps, "", "", cmdErrs)
	}
	if withSubs {
		fmt.Fprintf(w, " %6d %8d %8.1f %9d %8d", subs, pushes, pushRate, pollEquiv, subErrs)
	}
	fmt.Fprintln(w)
}
