// Package metrics is the experiment harness: it regenerates every figure
// and table of the paper's evaluation (Section 6) as machine-readable rows
// and paper-style text tables.
//
//   - Figure 10: total time to simulate a fixed number of clock ticks as
//     the unit count grows, grid sized for constant density, for both the
//     naive and the indexed engine;
//   - the 10-ticks-per-second capacity claim ("the naive system does not
//     scale to 1100 units on this processor, while the indexed system
//     scales to more than 12000");
//   - the density experiment (unit count fixed, density varied);
//   - the proportionality check ("proportional to the number of ticks
//     simulated, to within one percent").
package metrics

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"github.com/epicscale/sgl/internal/algebra"
	"github.com/epicscale/sgl/internal/engine"
	"github.com/epicscale/sgl/internal/exec"
	"github.com/epicscale/sgl/internal/game"
	"github.com/epicscale/sgl/internal/rng"
	"github.com/epicscale/sgl/internal/sgl/sem"
	"github.com/epicscale/sgl/internal/table"
	"github.com/epicscale/sgl/internal/workload"
)

// Runner measures battle-simulation performance. Construct with NewRunner.
type Runner struct {
	prog *sem.Program
	// Warmup ticks run before timing starts (index caches, branch
	// predictors; also lets the armies engage so the workload is combat,
	// not marching).
	Warmup int
	// Workers is the engine worker count every measurement runs with. The
	// default 1 reproduces the paper's single-threaded numbers; set it
	// higher (or to runtime.GOMAXPROCS(0)) to measure the sharded
	// executor. Results are bit-identical either way, so the comparison
	// is pure throughput.
	Workers int
}

// NewRunner compiles the battle simulation once for all measurements.
func NewRunner() (*Runner, error) {
	prog, err := game.Compile()
	if err != nil {
		return nil, err
	}
	return &Runner{prog: prog, Warmup: 3, Workers: 1}, nil
}

// Program exposes the compiled battle program (for explain tooling).
func (r *Runner) Program() *sem.Program { return r.prog }

// newEngine builds a fresh engine for one measurement.
func (r *Runner) newEngine(mode engine.Mode, n int, density float64, seed uint64) (*engine.Engine, error) {
	spec := workload.Spec{Units: n, Density: density, Seed: seed, Formation: workload.BattleLines}
	return engine.New(r.prog, game.NewMechanics(), workload.Generate(spec), engine.Options{
		Mode:         mode,
		Categoricals: game.Categoricals(),
		Seed:         seed,
		Side:         spec.Side(),
		MoveSpeed:    1,
		Workers:      r.Workers,
	})
}

// SpeedupRow is one point of the parallel-scaling experiment.
type SpeedupRow struct {
	Units          int
	Workers        int
	SecondsPerTick float64
	Speedup        float64 // vs the Workers=1 row of the same unit count
}

// Speedup measures seconds per tick of the indexed engine across worker
// counts, normalized to the serial run. Because the sharded executor is
// bit-identical to the serial one, any deviation from 1.0 is pure
// scheduling — there is no accuracy trade-off to report.
func (r *Runner) Speedup(n int, workers []int, density float64, measureTicks int) ([]SpeedupRow, error) {
	if len(workers) == 0 {
		return nil, nil
	}
	saved := r.Workers
	defer func() { r.Workers = saved }()
	var rows []SpeedupRow
	for _, w := range workers {
		r.Workers = w
		s, err := r.TickSeconds(engine.Indexed, n, density, measureTicks, 42)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SpeedupRow{Units: n, Workers: w, SecondsPerTick: s})
	}
	// Normalize against the Workers=1 row (the first row if the caller
	// did not measure serial).
	base := rows[0].SecondsPerTick
	for _, row := range rows {
		if row.Workers == 1 {
			base = row.SecondsPerTick
			break
		}
	}
	for i := range rows {
		rows[i].Speedup = base / rows[i].SecondsPerTick
	}
	return rows, nil
}

// WriteSpeedup renders the parallel-scaling series as a text table.
func WriteSpeedup(w io.Writer, rows []SpeedupRow) {
	fmt.Fprintf(w, "%-8s %-8s %14s %10s\n", "units", "workers", "sec/tick", "speedup")
	for _, row := range rows {
		fmt.Fprintf(w, "%-8d %-8d %14.6f %9.2fx\n", row.Units, row.Workers, row.SecondsPerTick, row.Speedup)
	}
}

// TickSeconds returns the measured wall-clock seconds per tick for the
// given configuration, averaged over measureTicks ticks after warmup.
func (r *Runner) TickSeconds(mode engine.Mode, n int, density float64, measureTicks int, seed uint64) (float64, error) {
	e, err := r.newEngine(mode, n, density, seed)
	if err != nil {
		return 0, err
	}
	if err := e.Run(r.Warmup); err != nil {
		return 0, err
	}
	start := time.Now()
	if err := e.Run(measureTicks); err != nil {
		return 0, err
	}
	return time.Since(start).Seconds() / float64(measureTicks), nil
}

// MaintainRow is one point of the incremental-maintenance experiment:
// the same battle measured with from-scratch index rebuilds and with
// delta-driven maintenance. Both modes are bit-identical in outcome, so
// the comparison is pure throughput plus the maintenance work counters.
type MaintainRow struct {
	Units          int
	Incremental    bool
	SecondsPerTick float64
	// Maintenance accounting over the measured ticks (zero in rebuild
	// mode): ticks that patched instead of rebuilt, average dirty rows
	// per tick, and structure-level reuse/patch/build/fallback counts.
	MaintainTicks int
	DirtyPerTick  float64
	Reuses        int
	Patches       int
	Builds        int
	Fallbacks     int
}

// MaintainComparison measures the battle at n units with index rebuilding
// vs incremental maintenance (Options.Incremental), returning one row per
// mode. The battle is a high-churn workload, so expect the per-definition
// threshold to push position-keyed definitions back to rebuilds during
// the marching phase; the structure counters show exactly how much was
// salvaged.
func (r *Runner) MaintainComparison(n int, density float64, measureTicks int) ([]MaintainRow, error) {
	var rows []MaintainRow
	for _, inc := range []bool{false, true} {
		spec := workload.Spec{Units: n, Density: density, Seed: 42, Formation: workload.BattleLines}
		e, err := engine.New(r.prog, game.NewMechanics(), workload.Generate(spec), engine.Options{
			Mode:         engine.Indexed,
			Categoricals: game.Categoricals(),
			Seed:         42,
			Side:         spec.Side(),
			MoveSpeed:    1,
			Workers:      r.Workers,
			Incremental:  inc,
		})
		if err != nil {
			return nil, err
		}
		if err := e.Run(r.Warmup); err != nil {
			return nil, err
		}
		before := e.Stats
		start := time.Now()
		if err := e.Run(measureTicks); err != nil {
			return nil, err
		}
		elapsed := time.Since(start).Seconds()
		row := MaintainRow{
			Units:          n,
			Incremental:    inc,
			SecondsPerTick: elapsed / float64(measureTicks),
			MaintainTicks:  e.Stats.MaintainTicks - before.MaintainTicks,
			Reuses:         e.Stats.IndexStats.IndexReuses - before.IndexStats.IndexReuses,
			Patches:        e.Stats.IndexStats.IndexPatches - before.IndexStats.IndexPatches,
			Builds:         e.Stats.IndexStats.IndexBuilds - before.IndexStats.IndexBuilds,
			Fallbacks:      e.Stats.IndexStats.MaintainFallbacks - before.IndexStats.MaintainFallbacks,
		}
		row.DirtyPerTick = float64(e.Stats.DirtyRows-before.DirtyRows) / float64(measureTicks)
		rows = append(rows, row)
	}
	return rows, nil
}

// ExecRow is one point of the streaming-vs-materializing executor
// comparison.
type ExecRow struct {
	Units          int
	Streaming      bool
	SecondsPerTick float64
	// Speedup is this row's throughput relative to the materializing row
	// at the same unit count (1.0 for the materializing row itself).
	Speedup float64
	// EffectAllocs is the heap allocations of one effect-query pass in
	// isolation (executor construction + plan evaluation over the frozen
	// army, per-tick indexes prebuilt) — the budget the streaming rewrite
	// targets. Whole-tick allocation counts are dominated by index
	// rebuilds and would bury this number.
	EffectAllocs float64
}

// effectPassAllocs measures heap allocations of a single effect-query
// pass over env, excluding index construction (a warm-up pass builds the
// provider's lazy per-tick indexes before the measured window). A fresh
// executor is built per pass, exactly as the engine does per tick.
func (r *Runner) effectPassAllocs(env *table.Table, mat bool) (float64, error) {
	plan, err := algebra.Translate(r.prog)
	if err != nil {
		return 0, err
	}
	algebra.Optimize(plan)
	rt := rng.New(42).Tick(1)
	prov := exec.NewIndexed(exec.NewAnalyzer(r.prog, game.Categoricals()), env, rt)
	pass := func() error {
		x := algebra.NewExecutor(r.prog, plan, env, prov, rt)
		x.SetMaterialize(mat)
		return x.Effects(func([]float64) {})
	}
	if err := pass(); err != nil { // warm-up: index builds happen here
		return 0, err
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	const runs = 5
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		if err := pass(); err != nil {
			return 0, err
		}
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / runs, nil
}

// ExecComparison measures the battle at n units under the legacy
// materializing executor vs the streaming pipelines (Options.
// MaterializeExec), returning one row per path. The two are bit-identical
// in outcome — TestStreamingMatchesMaterializing — so the delta is pure
// executor overhead: per-row []*Row and extension-slot allocation versus
// the flat streaming storage, plus whatever the guard pushdown saves in
// index probes.
func (r *Runner) ExecComparison(n int, density float64, measureTicks int) ([]ExecRow, error) {
	var rows []ExecRow
	var allocEnv *table.Table
	for _, mat := range []bool{true, false} {
		spec := workload.Spec{Units: n, Density: density, Seed: 42, Formation: workload.BattleLines}
		e, err := engine.New(r.prog, game.NewMechanics(), workload.Generate(spec), engine.Options{
			Mode:            engine.Indexed,
			Categoricals:    game.Categoricals(),
			Seed:            42,
			Side:            spec.Side(),
			MoveSpeed:       1,
			Workers:         r.Workers,
			MaterializeExec: mat,
		})
		if err != nil {
			return nil, err
		}
		if err := e.Run(r.Warmup); err != nil {
			return nil, err
		}
		start := time.Now()
		if err := e.Run(measureTicks); err != nil {
			return nil, err
		}
		elapsed := time.Since(start).Seconds()
		if allocEnv == nil {
			// Snapshot the post-combat army once so both rows measure
			// their effect pass over identical data.
			allocEnv = e.Env().Clone()
		}
		rows = append(rows, ExecRow{
			Units:          n,
			Streaming:      !mat,
			SecondsPerTick: elapsed / float64(measureTicks),
		})
	}
	base := rows[0].SecondsPerTick // materializing runs first
	for i := range rows {
		if rows[i].SecondsPerTick > 0 {
			rows[i].Speedup = base / rows[i].SecondsPerTick
		}
		allocs, err := r.effectPassAllocs(allocEnv, !rows[i].Streaming)
		if err != nil {
			return nil, err
		}
		rows[i].EffectAllocs = allocs
	}
	return rows, nil
}

// WriteExec renders the materializing-vs-streaming executor table.
func WriteExec(w io.Writer, rows []ExecRow) {
	fmt.Fprintf(w, "%-8s %-12s %14s %9s %18s\n", "units", "executor", "sec/tick", "speedup", "effect allocs/pass")
	for _, row := range rows {
		exec := "materialize"
		if row.Streaming {
			exec = "stream"
		}
		fmt.Fprintf(w, "%-8d %-12s %14.6f %8.2fx %18.0f\n", row.Units, exec, row.SecondsPerTick, row.Speedup, row.EffectAllocs)
	}
}

// WriteMaintain renders the rebuild-vs-maintain table.
func WriteMaintain(w io.Writer, rows []MaintainRow) {
	fmt.Fprintf(w, "%-8s %-8s %14s %10s %12s %9s %9s %9s %9s\n",
		"units", "mode", "sec/tick", "maintained", "dirty/tick", "reuses", "patches", "builds", "fallbacks")
	for _, row := range rows {
		mode := "rebuild"
		if row.Incremental {
			mode = "incr"
		}
		fmt.Fprintf(w, "%-8d %-8s %14.6f %10d %12.1f %9d %9d %9d %9d\n",
			row.Units, mode, row.SecondsPerTick, row.MaintainTicks, row.DirtyPerTick,
			row.Reuses, row.Patches, row.Builds, row.Fallbacks)
	}
}

// Fig10Row is one point of the Figure 10 series.
type Fig10Row struct {
	Units          int
	Mode           string
	SecondsPerTick float64
	// Total500 scales to the paper's reporting unit: seconds of real time
	// to simulate 500 clock ticks.
	Total500 float64
}

// Fig10 measures both engines across the given unit counts at the given
// density (the paper uses 1%). measureTicks trades accuracy for runtime.
// naiveCap skips the naive engine above that many units (the paper's
// figure also stops the naive curve early; quadratic growth makes large
// naive points prohibitively slow).
func (r *Runner) Fig10(sizes []int, density float64, measureTicks, naiveCap int) ([]Fig10Row, error) {
	var rows []Fig10Row
	for _, n := range sizes {
		for _, mode := range []engine.Mode{engine.Naive, engine.Indexed} {
			if mode == engine.Naive && naiveCap > 0 && n > naiveCap {
				continue
			}
			s, err := r.TickSeconds(mode, n, density, measureTicks, 42)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig10Row{
				Units: n, Mode: mode.String(),
				SecondsPerTick: s, Total500: s * 500,
			})
		}
	}
	return rows, nil
}

// WriteFig10 renders the series as a paper-style table.
func WriteFig10(w io.Writer, rows []Fig10Row) {
	fmt.Fprintf(w, "%-8s %-8s %14s %16s\n", "units", "engine", "sec/tick", "sec/500 ticks")
	for _, row := range rows {
		fmt.Fprintf(w, "%-8d %-8s %14.6f %16.2f\n", row.Units, row.Mode, row.SecondsPerTick, row.Total500)
	}
}

// DensityRow is one point of the density experiment.
type DensityRow struct {
	Units          int
	Density        float64
	Mode           string
	SecondsPerTick float64
}

// Density fixes the unit count and varies occupancy, as in Section 6.1
// "Varying Unit Density" (n=500, 0.5%–8%).
func (r *Runner) Density(n int, densities []float64, measureTicks int) ([]DensityRow, error) {
	var rows []DensityRow
	for _, d := range densities {
		for _, mode := range []engine.Mode{engine.Naive, engine.Indexed} {
			s, err := r.TickSeconds(mode, n, d, measureTicks, 42)
			if err != nil {
				return nil, err
			}
			rows = append(rows, DensityRow{Units: n, Density: d, Mode: mode.String(), SecondsPerTick: s})
		}
	}
	return rows, nil
}

// WriteDensity renders the density table.
func WriteDensity(w io.Writer, rows []DensityRow) {
	fmt.Fprintf(w, "%-8s %-9s %-8s %14s\n", "units", "density", "engine", "sec/tick")
	for _, row := range rows {
		fmt.Fprintf(w, "%-8d %-9.3f %-8s %14.6f\n", row.Units, row.Density, row.Mode, row.SecondsPerTick)
	}
}

// Capacity binary-searches the largest unit count whose tick time stays
// within budget (the paper's 10 ticks/second ⇒ 100 ms), between lo and hi.
func (r *Runner) Capacity(mode engine.Mode, budget time.Duration, lo, hi, measureTicks int) (int, error) {
	fits := func(n int) (bool, error) {
		s, err := r.TickSeconds(mode, n, 0.01, measureTicks, 42)
		if err != nil {
			return false, err
		}
		return s <= budget.Seconds(), nil
	}
	ok, err := fits(lo)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, nil
	}
	for lo+lo/10+1 < hi { // ~10% resolution is plenty for a capacity claim
		mid := (lo + hi) / 2
		ok, err := fits(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// ProportionalityRow records total time vs tick count.
type ProportionalityRow struct {
	Ticks          int
	TotalSeconds   float64
	SecondsPerTick float64
}

// Proportionality checks that total time scales linearly with the number
// of simulated ticks (the paper: "proportional … to within one percent").
func (r *Runner) Proportionality(mode engine.Mode, n int, tickCounts []int) ([]ProportionalityRow, error) {
	var rows []ProportionalityRow
	for _, ticks := range tickCounts {
		e, err := r.newEngine(mode, n, 0.01, 42)
		if err != nil {
			return nil, err
		}
		if err := e.Run(r.Warmup); err != nil {
			return nil, err
		}
		start := time.Now()
		if err := e.Run(ticks); err != nil {
			return nil, err
		}
		total := time.Since(start).Seconds()
		rows = append(rows, ProportionalityRow{Ticks: ticks, TotalSeconds: total, SecondsPerTick: total / float64(ticks)})
	}
	return rows, nil
}

// Fig1Row is one point of the expressiveness/#NPC trade-off illustration
// (paper Figure 1): the largest army each script tier sustains at 10
// ticks/second under each engine.
type Fig1Row struct {
	Tier     string
	Mode     string
	MaxUnits int
}

// ScriptTiers orders the Figure 1 games from least to most expressive,
// mapped onto scripted behavior levels our engine can actually run.
var ScriptTiers = []string{"uniform", "reactive", "tactical", "individual"}
