// Prometheus-style instrumentation: a tiny dependency-free registry of
// counters and gauges rendered in the text exposition format, so an sgld
// daemon (or any other embedder) can expose operational state on /metrics
// and be scraped by a stock Prometheus.
//
// Only the two metric kinds the server needs are implemented — monotone
// counters and settable gauges, both float64-valued, with an optional
// fixed label set per series. Series are identified by (name, sorted
// labels); Registry.Counter and Registry.Gauge are get-or-create, so
// call sites can look series up on the hot path without holding their
// own references.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair attached to a metric series.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing float64 metric. The zero value is
// usable; all methods are safe for concurrent use.
type Counter struct {
	bits atomic.Uint64
}

// Inc adds 1 to the counter.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v to the counter. Negative v is ignored (counters are
// monotone by definition; use a Gauge for values that can fall).
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current counter value.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a float64 metric that can move in both directions. The zero
// value is usable; all methods are safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds v (possibly negative) to the gauge.
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// series is one registered (name, labels) time series.
type series struct {
	name    string
	labels  string // rendered {k="v",…} suffix, "" when unlabeled
	counter *Counter
	gauge   *Gauge
}

// Registry holds named metric series and renders them in the Prometheus
// text exposition format. The zero value is ready to use; methods are
// safe for concurrent use.
type Registry struct {
	mu     sync.Mutex
	series map[string]*series // keyed by name + rendered labels
	help   map[string]string  // metric name → HELP text
}

// Help registers the HELP line emitted for a metric name.
func (r *Registry) Help(name, text string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.help == nil {
		r.help = map[string]string{}
	}
	r.help[name] = text
}

// Counter returns the counter series for (name, labels), creating it on
// first use. It panics if the series already exists as a gauge.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.locked(name, labels)
	if s.counter == nil {
		if s.gauge != nil {
			panic(fmt.Sprintf("metrics: %s%s registered as gauge", s.name, s.labels))
		}
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge returns the gauge series for (name, labels), creating it on first
// use. It panics if the series already exists as a counter.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.locked(name, labels)
	if s.gauge == nil {
		if s.counter != nil {
			panic(fmt.Sprintf("metrics: %s%s registered as counter", s.name, s.labels))
		}
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// locked returns the series for (name, labels), creating the entry if
// needed. Callers hold r.mu, and must also assign the metric value under
// the same critical section: once an entry escapes the lock its
// counter/gauge fields are immutable, which is what makes the lock-free
// reads in WritePrometheus safe.
func (r *Registry) locked(name string, labels []Label) *series {
	suffix := renderLabels(labels)
	key := name + suffix
	if r.series == nil {
		r.series = map[string]*series{}
	}
	s := r.series[key]
	if s == nil {
		s = &series{name: name, labels: suffix}
		r.series[key] = s
	}
	return s
}

// renderLabels renders a sorted {k="v",…} suffix with Prometheus escaping.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double-quote, and newline.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// DeleteSeries removes every series carrying the given label pair and
// returns how many were removed. Use it when the labeled entity (a
// session, a shard) is gone for good: without removal, churn through
// distinct label values grows the registry and every exposition
// without bound. Counters handed out earlier keep working; they are
// simply no longer rendered or findable, and a later get-or-create for
// the same (name, labels) starts a fresh series.
func (r *Registry) DeleteSeries(label Label) int {
	needle := renderLabels([]Label{label})
	needle = needle[1 : len(needle)-1] // k="v" without the braces
	r.mu.Lock()
	defer r.mu.Unlock()
	removed := 0
	for key, s := range r.series {
		if s.labels == "{"+needle+"}" ||
			strings.Contains(s.labels, "{"+needle+",") ||
			strings.Contains(s.labels, ","+needle+",") ||
			strings.HasSuffix(s.labels, ","+needle+"}") {
			delete(r.series, key)
			removed++
		}
	}
	return removed
}

// WritePrometheus renders every registered series in the text exposition
// format, sorted by metric name then label set, with HELP/TYPE headers
// once per metric name.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	all := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		all = append(all, s)
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	sort.Slice(all, func(i, j int) bool {
		if all[i].name != all[j].name {
			return all[i].name < all[j].name
		}
		return all[i].labels < all[j].labels
	})
	prev := ""
	for _, s := range all {
		if s.name != prev {
			if h, ok := help[s.name]; ok {
				fmt.Fprintf(w, "# HELP %s %s\n", s.name, h)
			}
			kind := "gauge"
			if s.counter != nil {
				kind = "counter"
			}
			fmt.Fprintf(w, "# TYPE %s %s\n", s.name, kind)
			prev = s.name
		}
		var v float64
		switch {
		case s.counter != nil:
			v = s.counter.Value()
		case s.gauge != nil:
			v = s.gauge.Value()
		}
		fmt.Fprintf(w, "%s%s %v\n", s.name, s.labels, v)
	}
}
