package metrics

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/epicscale/sgl/internal/engine"
)

func runner(t *testing.T) *Runner {
	t.Helper()
	r, err := NewRunner()
	if err != nil {
		t.Fatal(err)
	}
	r.Warmup = 1
	return r
}

func TestTickSecondsPositive(t *testing.T) {
	r := runner(t)
	s, err := r.TickSeconds(engine.Indexed, 100, 0.01, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s <= 0 {
		t.Fatalf("seconds per tick = %v", s)
	}
}

func TestFig10ShapeTiny(t *testing.T) {
	r := runner(t)
	rows, err := r.Fig10([]int{100, 400}, 0.01, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Extract per-mode series.
	times := map[string]map[int]float64{}
	for _, row := range rows {
		if times[row.Mode] == nil {
			times[row.Mode] = map[int]float64{}
		}
		times[row.Mode][row.Units] = row.SecondsPerTick
		if row.Total500 <= 0 || row.Total500 != row.SecondsPerTick*500 {
			t.Fatalf("Total500 inconsistent: %+v", row)
		}
	}
	// The naive engine must grow super-linearly: 4× units ⇒ well over 4×
	// the time (quadratic predicts 16×; allow noise down to 6×).
	naiveRatio := times["naive"][400] / times["naive"][100]
	if naiveRatio < 6 {
		t.Errorf("naive 400/100 ratio = %.1f, expected clearly super-linear", naiveRatio)
	}
	// The indexed engine must beat naive at 400 by a wide margin.
	if times["indexed"][400] >= times["naive"][400]/3 {
		t.Errorf("indexed %.6f vs naive %.6f at 400 units: no clear win", times["indexed"][400], times["naive"][400])
	}
	var buf bytes.Buffer
	WriteFig10(&buf, rows)
	if !strings.Contains(buf.String(), "sec/500 ticks") {
		t.Error("table header missing")
	}
}

func TestNaiveCapSkipsLargeNaivePoints(t *testing.T) {
	r := runner(t)
	rows, err := r.Fig10([]int{100, 300}, 0.01, 1, 150)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.Mode == "naive" && row.Units > 150 {
			t.Fatalf("naive point above cap: %+v", row)
		}
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
}

func TestDensityTiny(t *testing.T) {
	r := runner(t)
	rows, err := r.Density(80, []float64{0.01, 0.04}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	var buf bytes.Buffer
	WriteDensity(&buf, rows)
	if !strings.Contains(buf.String(), "density") {
		t.Error("density header missing")
	}
}

func TestCapacityFindsThreshold(t *testing.T) {
	r := runner(t)
	// A generous budget that even the naive engine meets at 50 units.
	n, err := r.Capacity(engine.Indexed, 500*time.Millisecond, 50, 400, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n < 50 {
		t.Fatalf("capacity = %d, want ≥ 50", n)
	}
	// An impossible budget yields 0.
	n, err = r.Capacity(engine.Naive, time.Nanosecond, 50, 400, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("capacity under 1ns budget = %d, want 0", n)
	}
}

func TestProportionality(t *testing.T) {
	r := runner(t)
	rows, err := r.Proportionality(engine.Indexed, 150, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.TotalSeconds <= 0 || row.SecondsPerTick <= 0 {
			t.Fatalf("bad row %+v", row)
		}
	}
}

func TestTierProgramsCompile(t *testing.T) {
	for _, tier := range ScriptTiers {
		if _, err := TierProgram(tier); err != nil {
			t.Errorf("tier %s: %v", tier, err)
		}
	}
	if _, err := TierProgram("bogus"); err == nil {
		t.Error("unknown tier should fail")
	}
}

// Each tier must actually run under both engines and stay in agreement.
func TestTiersRunDifferentially(t *testing.T) {
	for _, tier := range ScriptTiers[:3] { // "individual" is covered by engine tests
		prog, err := TierProgram(tier)
		if err != nil {
			t.Fatal(err)
		}
		tr := &Runner{prog: prog, Warmup: 0}
		naive, err := tr.newEngine(engine.Naive, 60, 0.02, 7)
		if err != nil {
			t.Fatal(err)
		}
		indexed, err := tr.newEngine(engine.Indexed, 60, 0.02, 7)
		if err != nil {
			t.Fatal(err)
		}
		for tick := 0; tick < 5; tick++ {
			if err := naive.Tick(); err != nil {
				t.Fatalf("tier %s naive: %v", tier, err)
			}
			if err := indexed.Tick(); err != nil {
				t.Fatalf("tier %s indexed: %v", tier, err)
			}
			if !naive.Env().AlmostEqualContents(indexed.Env(), 1e-9) {
				t.Fatalf("tier %s diverged at tick %d", tier, tick)
			}
		}
	}
}

// The parallel-scaling experiment must normalize against its first row
// and produce identical game outcomes at every worker count (the engine
// guarantees bit-identical environments, so only timing differs).
func TestSpeedupRows(t *testing.T) {
	r, err := NewRunner()
	if err != nil {
		t.Fatal(err)
	}
	r.Warmup = 1
	rows, err := r.Speedup(60, []int{1, 2}, 0.01, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(rows))
	}
	if rows[0].Workers != 1 || rows[0].Speedup != 1 {
		t.Fatalf("first row must be the Workers=1 baseline: %+v", rows[0])
	}
	if rows[1].SecondsPerTick <= 0 {
		t.Fatalf("non-positive timing: %+v", rows[1])
	}
	var buf strings.Builder
	WriteSpeedup(&buf, rows)
	if !strings.Contains(buf.String(), "workers") {
		t.Fatal("WriteSpeedup table missing header")
	}
}

func TestMaintainComparison(t *testing.T) {
	r := runner(t)
	// Warmup 3 so maintenance has its two-tick runway before measuring.
	r.Warmup = 3
	rows, err := r.MaintainComparison(80, 0.01, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Incremental || !rows[1].Incremental {
		t.Fatalf("want [rebuild, incr] rows, got %+v", rows)
	}
	if rows[0].MaintainTicks != 0 {
		t.Error("rebuild mode should report zero maintained ticks")
	}
	if rows[1].MaintainTicks == 0 {
		t.Error("incremental mode never maintained")
	}
	var buf bytes.Buffer
	WriteMaintain(&buf, rows)
	if !strings.Contains(buf.String(), "rebuild") || !strings.Contains(buf.String(), "incr") {
		t.Fatalf("table missing modes:\n%s", buf.String())
	}
}

func TestExecComparison(t *testing.T) {
	r := runner(t)
	rows, err := r.ExecComparison(80, 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Streaming || !rows[1].Streaming {
		t.Fatalf("want [materialize, stream] rows, got %+v", rows)
	}
	for _, row := range rows {
		if row.SecondsPerTick <= 0 || row.Speedup <= 0 {
			t.Fatalf("non-positive measurement: %+v", row)
		}
	}
	if rows[0].Speedup != 1 {
		t.Fatalf("materializing row speedup = %v, want 1 (its own baseline)", rows[0].Speedup)
	}
	// The effect-path allocation claim the streaming rewrite makes: at
	// least 50% fewer allocations per pass than the materializing path.
	if rows[0].EffectAllocs <= 0 {
		t.Fatalf("materializing effect pass reported %v allocs", rows[0].EffectAllocs)
	}
	if rows[1].EffectAllocs > rows[0].EffectAllocs/2 {
		t.Fatalf("streaming effect pass allocates %.0f vs materializing %.0f: less than 2x reduction",
			rows[1].EffectAllocs, rows[0].EffectAllocs)
	}
	var buf bytes.Buffer
	WriteExec(&buf, rows)
	if !strings.Contains(buf.String(), "materialize") || !strings.Contains(buf.String(), "stream") {
		t.Fatalf("table missing executor modes:\n%s", buf.String())
	}
}

func TestQueryFanout(t *testing.T) {
	r, err := NewRunner()
	if err != nil {
		t.Fatal(err)
	}
	r.Warmup = 1
	rows, err := r.QueryFanout([]int{60, 120}, 8, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, row := range rows {
		if row.IndexedMicros <= 0 || row.ScanMicros <= 0 {
			t.Fatalf("non-positive timing: %+v", row)
		}
	}
	var buf bytes.Buffer
	WriteQueryFanout(&buf, rows)
	if !strings.Contains(buf.String(), "indexed") {
		t.Fatalf("table output:\n%s", buf.String())
	}
}
