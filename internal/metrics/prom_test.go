package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestRegistryExposition(t *testing.T) {
	var r Registry
	r.Help("sgld_ticks_total", "Clock ticks advanced per session.")
	r.Counter("sgld_ticks_total", L("session", "alpha")).Add(3)
	r.Counter("sgld_ticks_total", L("session", "beta")).Inc()
	r.Gauge("sgld_worlds").Set(2)
	r.Counter("sgld_query_seconds_total", L("session", "alpha")).Add(0.25)

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()

	want := []string{
		"# HELP sgld_ticks_total Clock ticks advanced per session.",
		"# TYPE sgld_ticks_total counter",
		`sgld_ticks_total{session="alpha"} 3`,
		`sgld_ticks_total{session="beta"} 1`,
		"# TYPE sgld_worlds gauge",
		"sgld_worlds 2",
		`sgld_query_seconds_total{session="alpha"} 0.25`,
	}
	for _, w := range want {
		if !strings.Contains(out, w) {
			t.Errorf("exposition missing %q\n%s", w, out)
		}
	}
	// Sorted by name: query_seconds before ticks_total before worlds.
	iq := strings.Index(out, "sgld_query_seconds_total{")
	it := strings.Index(out, "sgld_ticks_total{")
	iw := strings.Index(out, "sgld_worlds ")
	if !(iq < it && it < iw) {
		t.Errorf("series not sorted by name:\n%s", out)
	}
}

func TestCounterGaugeSemantics(t *testing.T) {
	var c Counter
	c.Add(2.5)
	c.Add(-1) // ignored: counters are monotone
	c.Inc()
	if got := c.Value(); got != 3.5 {
		t.Errorf("counter = %v, want 3.5", got)
	}
	var g Gauge
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Errorf("gauge = %v, want 6", got)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	var r Registry
	a := r.Counter("x", L("s", "1"))
	b := r.Counter("x", L("s", "1"))
	if a != b {
		t.Error("same (name, labels) should return the same counter")
	}
	other := r.Counter("x", L("s", "2"))
	if a == other {
		t.Error("distinct labels should return distinct counters")
	}
	// Label order must not matter.
	p := r.Gauge("y", L("a", "1"), L("b", "2"))
	q := r.Gauge("y", L("b", "2"), L("a", "1"))
	if p != q {
		t.Error("label order should not distinguish series")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	var r Registry
	r.Counter("z")
	defer func() {
		if recover() == nil {
			t.Error("Gauge on a counter series should panic")
		}
	}()
	r.Gauge("z")
}

func TestCounterConcurrent(t *testing.T) {
	var r Registry
	c := r.Counter("conc")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Errorf("concurrent counter = %v, want 8000", got)
	}
}

// Concurrent FIRST use of the same series must yield one counter, not
// racing lazily-created orphans that lose increments (regression: the
// metric value was once created outside the registry lock).
func TestRegistryConcurrentFirstUse(t *testing.T) {
	for iter := 0; iter < 20; iter++ {
		var r Registry
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < 50; j++ {
					r.Counter("first", L("s", "x")).Inc()
				}
			}()
		}
		wg.Wait()
		if got := r.Counter("first", L("s", "x")).Value(); got != 400 {
			t.Fatalf("iter %d: first-use counter = %v, want 400", iter, got)
		}
	}
}

func TestDeleteSeries(t *testing.T) {
	var r Registry
	r.Counter("ticks", L("session", "a")).Add(5)
	r.Counter("ticks", L("session", "b")).Add(7)
	r.Counter("queries", L("session", "a"), L("kind", "scan")).Inc()
	r.Gauge("worlds").Set(2)

	if got := r.DeleteSeries(L("session", "a")); got != 2 {
		t.Errorf("DeleteSeries removed %d series, want 2", got)
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	if strings.Contains(out, `session="a"`) {
		t.Errorf("deleted session still exposed:\n%s", out)
	}
	for _, keep := range []string{`ticks{session="b"} 7`, "worlds 2"} {
		if !strings.Contains(out, keep) {
			t.Errorf("unrelated series lost: missing %q:\n%s", keep, out)
		}
	}
	// Recreating the series starts fresh (a counter reset, as scrapers
	// expect for a reborn entity).
	if v := r.Counter("ticks", L("session", "a")).Value(); v != 0 {
		t.Errorf("recreated series = %v, want 0", v)
	}
	if got := r.DeleteSeries(L("session", "zzz")); got != 0 {
		t.Errorf("deleting absent label removed %d series", got)
	}
}

func TestLabelEscaping(t *testing.T) {
	var r Registry
	r.Counter("esc", L("v", "a\"b\\c\nd")).Inc()
	var b strings.Builder
	r.WritePrometheus(&b)
	if want := `esc{v="a\"b\\c\nd"} 1`; !strings.Contains(b.String(), want) {
		t.Errorf("escaped label missing %q in:\n%s", want, b.String())
	}
}

func TestLatencySummary(t *testing.T) {
	mean, p50, p99, max := LatencySummary([]float64{4, 1, 3, 2})
	if mean != 2.5 || p50 != 2 || max != 4 {
		t.Errorf("summary = %v %v %v %v", mean, p50, p99, max)
	}
	if m, _, _, _ := LatencySummary(nil); m != 0 {
		t.Error("empty sample should summarize to zeros")
	}
}

func TestWriteLoadGen(t *testing.T) {
	var b strings.Builder
	WriteLoadGen(&b, []LoadGenRow{
		{World: "w0", Ticks: 100, TickRate: 10, TargetRate: 10, Queries: 500, QPS: 50, MeanMicros: 3, P50Micros: 2, P99Micros: 9, MaxMicros: 12},
		{World: "w1", Ticks: 90, TickRate: 9, TargetRate: 10, Queries: 400, QPS: 40, MeanMicros: 4, P50Micros: 3, P99Micros: 11, MaxMicros: 20, Errors: 1},
	})
	out := b.String()
	for _, w := range []string{"world", "w0", "w1", "TOTAL", "190", "900", "1"} {
		if !strings.Contains(out, w) {
			t.Errorf("table missing %q:\n%s", w, out)
		}
	}
}
