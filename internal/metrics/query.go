package metrics

import (
	"fmt"
	"io"
	"time"

	"github.com/epicscale/sgl/internal/engine"
	"github.com/epicscale/sgl/internal/game"
)

// FanoutQuery is the observation query the fan-out experiment serves: a
// windowed divisible aggregate, the bread-and-butter spectator question
// ("how much is happening here?"). Indexed, it costs one O(log n)
// range-tree probe after a shared per-tick build; scanned, it costs O(n)
// per call. Exported so the server's load generator drives the same
// query the experiment measures.
const FanoutQuery = `
aggregate Zone(u, x, y, r) :=
  count(*) as n, sum(e.health) as hp
  over e where e.posx >= x - r and e.posx <= x + r
    and e.posy >= y - r and e.posy <= y + r;`

// QueryFanoutRow is one point of the observation-query experiment.
type QueryFanoutRow struct {
	Units   int
	Queries int
	// IndexedMicros is the mean per-query cost through Engine.Query,
	// amortizing the shared per-tick index build over the fan-out.
	IndexedMicros float64
	// ScanMicros is the mean per-query cost of the naive scan evaluation.
	ScanMicros float64
	// Speedup is ScanMicros / IndexedMicros.
	Speedup float64
}

// QueryFanout measures serving `queries` concurrent-spectator queries
// per tick against live battles of the given sizes. The indexed column
// grows ~logarithmically with army size while the scan column grows
// linearly — the reuse argument for answering observers from the same
// index structures the tick already builds.
func (r *Runner) QueryFanout(sizes []int, queries int, density float64) ([]QueryFanoutRow, error) {
	q, err := engine.CompileQuery(FanoutQuery, game.Schema(), game.Consts())
	if err != nil {
		return nil, err
	}
	var rows []QueryFanoutRow
	for _, n := range sizes {
		e, err := r.newEngine(engine.Indexed, n, density, 42)
		if err != nil {
			return nil, err
		}
		if err := e.Run(r.Warmup); err != nil {
			return nil, err
		}
		probe := func(eval func(i int) error) (float64, error) {
			start := time.Now()
			for i := 0; i < queries; i++ {
				if err := eval(i); err != nil {
					return 0, err
				}
			}
			// Nanosecond resolution: at small sizes the whole indexed loop
			// can finish in under a microsecond, which integer-µs
			// truncation would report as zero.
			return float64(time.Since(start).Nanoseconds()) / 1e3 / float64(queries), nil
		}
		args := func(i int) (x, y, rad float64) {
			return float64(7 * i % 97), float64(13 * i % 89), 12
		}
		idxMicros, err := probe(func(i int) error {
			x, y, rad := args(i)
			_, err := e.Query(q, x, y, rad)
			return err
		})
		if err != nil {
			return nil, err
		}
		scanMicros, err := probe(func(i int) error {
			x, y, rad := args(i)
			_, err := e.QueryScan(q, x, y, rad)
			return err
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, QueryFanoutRow{
			Units: n, Queries: queries,
			IndexedMicros: idxMicros, ScanMicros: scanMicros,
			Speedup: scanMicros / idxMicros,
		})
	}
	return rows, nil
}

// WriteQueryFanout renders the fan-out series as a text table.
func WriteQueryFanout(w io.Writer, rows []QueryFanoutRow) {
	fmt.Fprintf(w, "%-8s %-8s %14s %14s %10s\n", "units", "queries", "indexed µs/q", "scan µs/q", "speedup")
	for _, row := range rows {
		fmt.Fprintf(w, "%-8d %-8d %14.2f %14.2f %9.1fx\n",
			row.Units, row.Queries, row.IndexedMicros, row.ScanMicros, row.Speedup)
	}
}
