// The admission experiment: command-injection throughput of the sharded
// per-origin admission path against the same volume serialized through a
// single lock, across actor counts. This is the measurement behind the
// sharded-admission design claim — Submit from N concurrent actors must
// not contend on the session writer lock — rendered as a table the same
// way the paper's figures are.
package metrics

import (
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/epicscale/sgl/internal/engine"
)

// AdmissionRow is one actor count's throughput measurement.
type AdmissionRow struct {
	Actors int
	// ShardedPerSec is commands/second through the per-origin sharded
	// queues (the Session.Submit path).
	ShardedPerSec float64
	// LockedPerSec is commands/second with every actor serialized
	// through one mutex — the pre-sharding architecture.
	LockedPerSec float64
}

// Admission measures concurrent submission throughput at each actor
// count. Every round, the actors concurrently inject perRound commands
// between two tick boundaries; only the concurrent injection phase is
// timed (the tick that applies the batch is the same work either way).
func (r *Runner) Admission(actorCounts []int, perRound, rounds int) ([]AdmissionRow, error) {
	const n = 2000
	rows := make([]AdmissionRow, 0, len(actorCounts))
	for _, actors := range actorCounts {
		row := AdmissionRow{Actors: actors}
		for _, sharded := range []bool{true, false} {
			e, err := r.newEngine(engine.Indexed, n, 0.01, 42)
			if err != nil {
				return nil, err
			}
			sess := engine.NewSession(e)
			var lock sync.Mutex // the serialized variant's single lock
			var elapsed time.Duration
			quota := (perRound / actors / 64) * 64 // whole batches per actor
			if quota == 0 {
				quota = 64
			}
			for round := 0; round < rounds; round++ {
				var wg sync.WaitGroup
				errs := make([]error, actors)
				start := time.Now()
				for a := 0; a < actors; a++ {
					wg.Add(1)
					go func(a int) {
						defer wg.Done()
						origin := fmt.Sprintf("actor-%d", a)
						batch := make([]engine.Command, 64)
						for sent := 0; sent < quota; sent += len(batch) {
							for i := range batch {
								batch[i] = engine.Command{
									Op:  engine.OpSet,
									Key: int64((a*perRound + sent + i) % n),
									Col: "health",
									Val: float64(round + 1),
								}
							}
							if sharded {
								errs[a] = sess.Submit(origin, batch...)
							} else {
								lock.Lock()
								errs[a] = e.Submit(origin, batch...)
								lock.Unlock()
							}
							if errs[a] != nil {
								return
							}
						}
					}(a)
				}
				wg.Wait()
				elapsed += time.Since(start)
				for _, err := range errs {
					if err != nil {
						return nil, err
					}
				}
				if err := sess.Step(1); err != nil { // untimed: drains + applies
					return nil, err
				}
			}
			total := float64(rounds * quota * actors)
			perSec := total / elapsed.Seconds()
			if sharded {
				row.ShardedPerSec = perSec
			} else {
				row.LockedPerSec = perSec
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteAdmission renders the admission table.
func WriteAdmission(w io.Writer, rows []AdmissionRow) {
	fmt.Fprintf(w, "%-8s %16s %16s %10s\n", "actors", "sharded cmd/s", "locked cmd/s", "ratio")
	for _, row := range rows {
		ratio := 0.0
		if row.LockedPerSec > 0 {
			ratio = row.ShardedPerSec / row.LockedPerSec
		}
		fmt.Fprintf(w, "%-8d %16.0f %16.0f %9.2fx\n", row.Actors, row.ShardedPerSec, row.LockedPerSec, ratio)
	}
}
