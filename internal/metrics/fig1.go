package metrics

import (
	"fmt"
	"io"
	"time"

	"github.com/epicscale/sgl/internal/engine"
	"github.com/epicscale/sgl/internal/game"
	"github.com/epicscale/sgl/internal/sgl/parser"
	"github.com/epicscale/sgl/internal/sgl/sem"
	"github.com/epicscale/sgl/internal/workload"
)

// The Figure 1 reproduction runs four script tiers of increasing
// expressiveness — stand-ins for the figure's Rome: Total War, Warcraft
// III, The Sims 2 and Neverwinter Nights quadrants — and reports the
// largest army each sustains at 10 ticks per second under each engine.
// The paper's argument is that indexing moves every tier's frontier out by
// an order of magnitude, collapsing the expressiveness-versus-scale
// trade-off.

// tierScripts maps tier name → SGL source (over the battle schema).
var tierScripts = map[string]string{
	// uniform: every unit marches at the enemy's global centroid; one
	// shared aggregate, no individuality (Rome-style block movement).
	"uniform": `
aggregate EnemyCentroid(u) :=
  avg(e.posx) as x, avg(e.posy) as y
  over e where e.player <> u.player;
action MoveToward(u, tx, ty) :=
  on e where e.key = u.key
  set movevect_x = tx - u.posx, movevect_y = ty - u.posy;
function main(u) {
  perform MoveToward(u, EnemyCentroid(u))
}`,

	// reactive: attack the weakest enemy in reach, otherwise close on the
	// nearest enemy (Warcraft-style per-unit combat decisions).
	"reactive": `
aggregate WeakestEnemyInReach(u) :=
  argmin(e.health) as key
  over e where e.posx >= u.posx - u.range and e.posx <= u.posx + u.range
    and e.posy >= u.posy - u.range and e.posy <= u.posy + u.range
    and e.player <> u.player;
aggregate NearestEnemy(u) :=
  nearestkey() as key, nearestx() as x, nearesty() as y
  over e where e.player <> u.player;
action Strike(u, target_key, roll, dmgroll) :=
  on e where e.key = target_key
    and (roll = 20 or (roll <> 1 and roll + u.attack >= e.ac))
  set damage = max(1, dmgroll - e.dr);
action MarkAttack(u) :=
  on e where e.key = u.key set weaponused = 1;
action MoveToward(u, tx, ty) :=
  on e where e.key = u.key
  set movevect_x = tx - u.posx, movevect_y = ty - u.posy;
function main(u) {
  (let w = WeakestEnemyInReach(u)) {
    if w >= 0 and u.cooldown = 0 then {
      (let roll = Random(1) % 20 + 1)
      (let dmgroll = Random(2) % u.dmgsides + 1 + u.dmgbonus) {
        perform Strike(u, w, roll, dmgroll);
        perform MarkAttack(u)
      }
    };
    else (let foe = NearestEnemy(u)) {
      if foe.key >= 0 then perform MoveToward(u, foe.x, foe.y)
    }
  }
}`,

	// tactical: reactive plus morale-driven flight from local
	// outnumbering (Sims-tier responsiveness to the neighbourhood).
	"tactical": `
aggregate CountEnemiesInSight(u) :=
  count(*)
  over e where e.posx >= u.posx - u.sight and e.posx <= u.posx + u.sight
    and e.posy >= u.posy - u.sight and e.posy <= u.posy + u.sight
    and e.player <> u.player;
aggregate CountFriendsInSight(u) :=
  count(*)
  over e where e.posx >= u.posx - u.sight and e.posx <= u.posx + u.sight
    and e.posy >= u.posy - u.sight and e.posy <= u.posy + u.sight
    and e.player = u.player;
aggregate EnemyCentroidInSight(u) :=
  avg(e.posx) as x, avg(e.posy) as y
  over e where e.posx >= u.posx - u.sight and e.posx <= u.posx + u.sight
    and e.posy >= u.posy - u.sight and e.posy <= u.posy + u.sight
    and e.player <> u.player;
aggregate WeakestEnemyInReach(u) :=
  argmin(e.health) as key
  over e where e.posx >= u.posx - u.range and e.posx <= u.posx + u.range
    and e.posy >= u.posy - u.range and e.posy <= u.posy + u.range
    and e.player <> u.player;
aggregate NearestEnemy(u) :=
  nearestkey() as key, nearestx() as x, nearesty() as y
  over e where e.player <> u.player;
action Strike(u, target_key, roll, dmgroll) :=
  on e where e.key = target_key
    and (roll = 20 or (roll <> 1 and roll + u.attack >= e.ac))
  set damage = max(1, dmgroll - e.dr);
action MarkAttack(u) :=
  on e where e.key = u.key set weaponused = 1;
action MoveToward(u, tx, ty) :=
  on e where e.key = u.key
  set movevect_x = tx - u.posx, movevect_y = ty - u.posy;
action MoveAway(u, fx, fy) :=
  on e where e.key = u.key
  set movevect_x = u.posx - fx, movevect_y = u.posy - fy;
function main(u) {
  (let seen = CountEnemiesInSight(u)) {
    if seen > CountFriendsInSight(u) * 2 + u.morale then
      perform MoveAway(u, EnemyCentroidInSight(u));
    else {
      (let w = WeakestEnemyInReach(u)) {
        if w >= 0 and u.cooldown = 0 then {
          (let roll = Random(1) % 20 + 1)
          (let dmgroll = Random(2) % u.dmgsides + 1 + u.dmgbonus) {
            perform Strike(u, w, roll, dmgroll);
            perform MarkAttack(u)
          }
        };
        else (let foe = NearestEnemy(u)) {
          if foe.key >= 0 then perform MoveToward(u, foe.x, foe.y)
        }
      }
    }
  }
}`,
}

// TierProgram compiles one tier (the "individual" tier is the full battle
// script).
func TierProgram(tier string) (*sem.Program, error) {
	if tier == "individual" {
		return game.Compile()
	}
	src, ok := tierScripts[tier]
	if !ok {
		return nil, fmt.Errorf("metrics: unknown tier %q", tier)
	}
	script, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	return sem.Check(script, game.Schema(), game.Consts())
}

// Fig1 measures the capacity frontier of every tier under both engines.
func (r *Runner) Fig1(budget time.Duration, lo, hi, measureTicks int) ([]Fig1Row, error) {
	var rows []Fig1Row
	for _, tier := range ScriptTiers {
		prog, err := TierProgram(tier)
		if err != nil {
			return nil, err
		}
		tr := &Runner{prog: prog, Warmup: r.Warmup}
		for _, mode := range []engine.Mode{engine.Naive, engine.Indexed} {
			n, err := tr.Capacity(mode, budget, lo, hi, measureTicks)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig1Row{Tier: tier, Mode: mode.String(), MaxUnits: n})
		}
	}
	return rows, nil
}

// WriteFig1 renders the tier capacity table.
func WriteFig1(w io.Writer, rows []Fig1Row) {
	fmt.Fprintf(w, "%-12s %-8s %10s\n", "tier", "engine", "max units")
	for _, row := range rows {
		fmt.Fprintf(w, "%-12s %-8s %10d\n", row.Tier, row.Mode, row.MaxUnits)
	}
}

// ensure workload import is used even if newEngine moves.
var _ = workload.Spec{}
