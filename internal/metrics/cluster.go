// The cluster experiment's table: gateway scale-out measured with the
// stock load generator. Each row is one fleet size driven with an
// identical per-world workload; linear tick throughput across rows is
// the scale-out claim — the gateway adds routing, and routing must not
// become the bottleneck. Produced by cluster.Experiment and rendered by
// WriteCluster.
package metrics

import (
	"fmt"
	"io"
)

// ClusterRow aggregates one fleet configuration's load-generator run.
type ClusterRow struct {
	// Nodes is the fleet size behind the gateway; Worlds the session
	// count the run hosted across it.
	Nodes  int
	Worlds int
	// Ticks is the fleet-wide tick total over the window; TicksPerSec
	// the rate that implies.
	Ticks       int64
	TicksPerSec float64
	// QPS is the fleet-wide spectator-query throughput, and CPS the
	// actor-command throughput (0 when the run had no actors).
	QPS float64
	CPS float64
	// Errors counts failed queries plus rejected commands, fleet-wide.
	// Anything non-zero voids the row.
	Errors int
}

// WriteCluster renders the scale-out table plus a speedup column
// against the first row (the single-node baseline).
func WriteCluster(w io.Writer, rows []ClusterRow) {
	fmt.Fprintf(w, "%-6s %7s %10s %10s %10s %8s %8s\n",
		"nodes", "worlds", "ticks", "ticks/s", "queries/s", "cmd/s", "speedup")
	var base float64
	for i, row := range rows {
		if i == 0 {
			base = row.TicksPerSec
		}
		speedup := 0.0
		if base > 0 {
			speedup = row.TicksPerSec / base
		}
		errs := ""
		if row.Errors > 0 {
			errs = fmt.Sprintf("  (%d errors)", row.Errors)
		}
		fmt.Fprintf(w, "%-6d %7d %10d %10.1f %10.0f %8.0f %7.2fx%s\n",
			row.Nodes, row.Worlds, row.Ticks, row.TicksPerSec, row.QPS, row.CPS, speedup, errs)
	}
}
