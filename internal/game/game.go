// Package game implements the battle-simulation case study of paper
// Section 3.2: a two-player RTS combat with three unit types —
//
//   - Knights: melee, armored (high AC, damage reduction), hard-hitting
//     (1d8+3), short reach;
//   - Archers: ranged (large attack range), unarmored, 1d6 arrows;
//   - Healers: project a nonstackable healing aura over nearby friendlies
//     ("a unit can only be healed once per clock tick").
//
// Combat follows the d20 System: attack rolls of 1d20 + attack bonus
// against the defender's armor class, natural 20 always hits, natural 1
// always misses, damage dice reduced by the defender's damage reduction
// with a 1-point floor. Visibility follows the d20 convention of large
// sight ranges, which is exactly what makes aggregates expensive for the
// naive engine.
//
// The per-unit SGL scripts realize the paper's coordination behaviors:
// archers keep the knight line between themselves and the enemy centroid;
// knights close ranks when their formation spreads beyond two standard
// deviations; everyone flees when locally outnumbered beyond morale; and
// healers chase and heal the most wounded friendly unit.
package game

import (
	"fmt"
	"math"

	"github.com/epicscale/sgl/internal/geom"
	"github.com/epicscale/sgl/internal/rng"
	"github.com/epicscale/sgl/internal/sgl/parser"
	"github.com/epicscale/sgl/internal/sgl/sem"
	"github.com/epicscale/sgl/internal/table"
)

// Unit type codes stored in the unittype attribute.
const (
	Knight = 0
	Archer = 1
	Healer = 2
)

// Schema returns the battle simulation's environment schema — the paper's
// Eq. (1) extended with the d20 combat attributes.
func Schema() *table.Schema {
	return table.MustSchema(
		table.Attr{Name: "key", Kind: table.Const},
		table.Attr{Name: "player", Kind: table.Const},
		table.Attr{Name: "unittype", Kind: table.Const},
		table.Attr{Name: "posx", Kind: table.Const},
		table.Attr{Name: "posy", Kind: table.Const},
		table.Attr{Name: "health", Kind: table.Const},
		table.Attr{Name: "maxhealth", Kind: table.Const},
		table.Attr{Name: "ac", Kind: table.Const},     // armor class
		table.Attr{Name: "dr", Kind: table.Const},     // damage reduction
		table.Attr{Name: "attack", Kind: table.Const}, // attack bonus
		table.Attr{Name: "dmgsides", Kind: table.Const},
		table.Attr{Name: "dmgbonus", Kind: table.Const},
		table.Attr{Name: "range", Kind: table.Const}, // attack reach
		table.Attr{Name: "sight", Kind: table.Const}, // visibility half-extent
		table.Attr{Name: "morale", Kind: table.Const},
		table.Attr{Name: "cooldown", Kind: table.Const},
		table.Attr{Name: "weaponused", Kind: table.Max},
		table.Attr{Name: "movevect_x", Kind: table.Sum},
		table.Attr{Name: "movevect_y", Kind: table.Sum},
		table.Attr{Name: "damage", Kind: table.Sum},
		table.Attr{Name: "inaura", Kind: table.Max},
	)
}

// Consts returns the game constants referenced by the scripts.
func Consts() map[string]float64 {
	return map[string]float64{
		"_TIME_RELOAD":  2, // cooldown ticks after attacking
		"_HEAL_AURA":    3, // hit points restored by a healing aura
		"_HEALER_RANGE": 6, // aura half-extent
		"_SPREAD_LIMIT": 4, // knights close ranks beyond this spread
		"_PACK_COUNT":   3, // knights wanted within two std deviations
	}
}

// Categoricals are the low-volatility partition attributes of the battle
// schema (the paper's "6 range trees — one per player/unit type
// combination" layering).
func Categoricals() []string { return []string{"player", "unittype"} }

// Script is the full SGL content of the battle simulation: the aggregate
// and action definitions of the paper's Figures 4 and 5 plus the
// coordination behaviors of Section 3.2. On each tick every unit evaluates
// roughly ten aggregate queries, as in the paper's experimental setup.
const Script = `
# ---- aggregates -----------------------------------------------------------

aggregate CountEnemiesInSight(u) :=
  count(*)
  over e where e.posx >= u.posx - u.sight and e.posx <= u.posx + u.sight
    and e.posy >= u.posy - u.sight and e.posy <= u.posy + u.sight
    and e.player <> u.player;

aggregate CountFriendsInSight(u) :=
  count(*)
  over e where e.posx >= u.posx - u.sight and e.posx <= u.posx + u.sight
    and e.posy >= u.posy - u.sight and e.posy <= u.posy + u.sight
    and e.player = u.player;

aggregate EnemyCentroidInSight(u) :=
  avg(e.posx) as x, avg(e.posy) as y
  over e where e.posx >= u.posx - u.sight and e.posx <= u.posx + u.sight
    and e.posy >= u.posy - u.sight and e.posy <= u.posy + u.sight
    and e.player <> u.player;

aggregate FriendlyKnightLine(u) :=
  count(*) as n, avg(e.posx) as x, avg(e.posy) as y
  over e where e.player = u.player and e.unittype = 0;

aggregate KnightFormation(u) :=
  avg(e.posx) as cx, avg(e.posy) as cy,
  stddev(e.posx) as sx, stddev(e.posy) as sy
  over e where e.player = u.player and e.unittype = 0;

aggregate KnightsWithin(u, r) :=
  count(*)
  over e where e.posx >= u.posx - r and e.posx <= u.posx + r
    and e.posy >= u.posy - r and e.posy <= u.posy + r
    and e.player = u.player and e.unittype = 0;

aggregate WeakestEnemyInReach(u) :=
  argmin(e.health) as key
  over e where e.posx >= u.posx - u.range and e.posx <= u.posx + u.range
    and e.posy >= u.posy - u.range and e.posy <= u.posy + u.range
    and e.player <> u.player;

aggregate NearestEnemy(u) :=
  nearestkey() as key, nearestdist() as dist,
  nearestx() as x, nearesty() as y
  over e where e.player <> u.player;

aggregate MostWoundedFriend(u) :=
  argmax(e.maxhealth - e.health) as key, max(e.maxhealth - e.health) as missing
  over e where e.player = u.player and e.health < e.maxhealth;

aggregate WoundedFriendsNear(u, r) :=
  count(*)
  over e where e.posx >= u.posx - r and e.posx <= u.posx + r
    and e.posy >= u.posy - r and e.posy <= u.posy + r
    and e.player = u.player and e.health < e.maxhealth;

aggregate FriendCentroid(u) :=
  avg(e.posx) as x, avg(e.posy) as y
  over e where e.player = u.player;

# ---- actions ----------------------------------------------------------------

action Strike(u, target_key, roll, dmgroll) :=
  on e where e.key = target_key
    and (roll = 20 or (roll <> 1 and roll + u.attack >= e.ac))
  set damage = max(1, dmgroll - e.dr);

action MarkAttack(u) :=
  on e where e.key = u.key
  set weaponused = 1;

action MoveToward(u, tx, ty) :=
  on e where e.key = u.key
  set movevect_x = tx - u.posx, movevect_y = ty - u.posy;

action MoveAway(u, fx, fy) :=
  on e where e.key = u.key
  set movevect_x = u.posx - fx, movevect_y = u.posy - fy;

action HealAura(u) :=
  on e where u.player = e.player
    and e.posx >= u.posx - _HEALER_RANGE and e.posx <= u.posx + _HEALER_RANGE
    and e.posy >= u.posy - _HEALER_RANGE and e.posy <= u.posy + _HEALER_RANGE
  set inaura = _HEAL_AURA;

# ---- behaviors ---------------------------------------------------------------

function attackWeakest(u) {
  (let w = WeakestEnemyInReach(u)) {
    if w >= 0 then {
      (let roll = Random(1) % 20 + 1)
      (let dmgroll = Random(2) % u.dmgsides + 1 + u.dmgbonus) {
        perform Strike(u, w, roll, dmgroll);
        perform MarkAttack(u)
      }
    }
  }
}

function knightMain(u) {
  (let seen = CountEnemiesInSight(u)) {
    if seen > CountFriendsInSight(u) * 2 + u.morale then
      perform MoveAway(u, EnemyCentroidInSight(u));
    else if u.cooldown = 0 then {
      (let w = WeakestEnemyInReach(u)) {
        if w >= 0 then perform attackWeakest(u);
        else (let form = KnightFormation(u)) {
          (let spread = max(form.sx, form.sy)) {
            if spread > _SPREAD_LIMIT and KnightsWithin(u, spread * 2) < _PACK_COUNT then
              perform MoveToward(u, form.cx, form.cy);  # close ranks
            else if seen > 0 then
              perform MoveToward(u, EnemyCentroidInSight(u));
            else (let foe = NearestEnemy(u)) {
              if foe.key >= 0 then perform MoveToward(u, foe.x, foe.y)
            }
          }
        }
      }
    }
  }
}

function archerMain(u) {
  (let seen = CountEnemiesInSight(u)) {
    if seen > CountFriendsInSight(u) * 2 + u.morale then
      perform MoveAway(u, EnemyCentroidInSight(u));
    else {
      if u.cooldown = 0 then perform attackWeakest(u);
      if seen > 0 then (let line = FriendlyKnightLine(u)) {
        if line.n > 0 then
          # Stand so the knights sit between the archers and the enemy:
          # cover = 2·knightCentroid − enemyCentroid.
          perform MoveToward(u, (line.x, line.y) * 2 - EnemyCentroidInSight(u))
      };
      if seen = 0 then (let foe = NearestEnemy(u)) {
        if foe.key >= 0 then perform MoveToward(u, foe.x, foe.y)
      }
    }
  }
}

function healerMain(u) {
  (let seen = CountEnemiesInSight(u)) {
    if seen > CountFriendsInSight(u) + u.morale then
      perform MoveAway(u, EnemyCentroidInSight(u));
    else {
      if WoundedFriendsNear(u, _HEALER_RANGE) > 0 and u.cooldown = 0 then {
        perform HealAura(u);
        perform MarkAttack(u)
      };
      (let w = MostWoundedFriend(u)) {
        if w.key >= 0 and w.missing > 2 then
          perform MoveToward(u, FriendCentroid(u));
        else if seen = 0 then (let foe = NearestEnemy(u)) {
          if foe.dist > _HEALER_RANGE * 2 and foe.key >= 0 then
            perform MoveToward(u, FriendCentroid(u))
        }
      }
    }
  }
}

function main(u) {
  if u.unittype = 0 then perform knightMain(u);
  else if u.unittype = 1 then perform archerMain(u);
  else perform healerMain(u)
}
`

// Compile parses and checks the battle script against the battle schema.
func Compile() (*sem.Program, error) {
	script, err := parser.Parse(Script)
	if err != nil {
		return nil, fmt.Errorf("game: parse: %w", err)
	}
	prog, err := sem.Check(script, Schema(), Consts())
	if err != nil {
		return nil, fmt.Errorf("game: check: %w", err)
	}
	return prog, nil
}

// Stats describe one unit type's d20 block.
type Stats struct {
	MaxHealth float64
	AC        float64
	DR        float64
	Attack    float64
	DmgSides  float64
	DmgBonus  float64
	Range     float64
	Sight     float64
	Morale    float64
}

// Roster returns the d20 stat blocks by unit type code.
func Roster() [3]Stats {
	return [3]Stats{
		Knight: {MaxHealth: 30, AC: 18, DR: 2, Attack: 5, DmgSides: 8, DmgBonus: 3, Range: 2, Sight: 16, Morale: 8},
		Archer: {MaxHealth: 18, AC: 13, DR: 0, Attack: 4, DmgSides: 6, DmgBonus: 0, Range: 12, Sight: 16, Morale: 5},
		Healer: {MaxHealth: 16, AC: 11, DR: 0, Attack: 0, DmgSides: 4, DmgBonus: 0, Range: 1, Sight: 16, Morale: 4},
	}
}

// NewUnit builds an environment row for one unit.
func NewUnit(key int64, player int, unitType int, pos geom.Point) []float64 {
	st := Roster()[unitType]
	return []float64{
		float64(key), float64(player), float64(unitType),
		pos.X, pos.Y,
		st.MaxHealth, st.MaxHealth,
		st.AC, st.DR, st.Attack, st.DmgSides, st.DmgBonus,
		st.Range, st.Sight, st.Morale,
		0,          // cooldown
		0, 0, 0, 0, // weaponused, movevect_x, movevect_y, damage
		0, // inaura
	}
}

// Mechanics implements engine.Game: the post-processing query of the
// paper's Example 4.1 specialized to the battle schema.
type Mechanics struct {
	schema   *table.Schema
	health   int
	maxHP    int
	cooldown int
	wUsed    int
	mvx, mvy int
	damage   int
	aura     int
	reload   float64
}

// NewMechanics builds the post-processor for the battle schema.
func NewMechanics() *Mechanics {
	s := Schema()
	return &Mechanics{
		schema:   s,
		health:   s.MustCol("health"),
		maxHP:    s.MustCol("maxhealth"),
		cooldown: s.MustCol("cooldown"),
		wUsed:    s.MustCol("weaponused"),
		mvx:      s.MustCol("movevect_x"),
		mvy:      s.MustCol("movevect_y"),
		damage:   s.MustCol("damage"),
		aura:     s.MustCol("inaura"),
		reload:   Consts()["_TIME_RELOAD"],
	}
}

// ApplyEffects performs the post-processing step:
//
//	health   ← min(maxhealth, health − damage + aura)
//	cooldown ← max(0, cooldown − 1) + weaponused·_TIME_RELOAD
//	movement ← the summed movement vector, handed to the movement phase
//
// and reports death when health reaches 0 ("when it is reduced to 0, the
// unit is dead").
func (m *Mechanics) ApplyEffects(row []float64, effects []float64) (geom.Vec, bool) {
	dmg := nonIdentity(effects[m.damage], 0)
	aura := nonIdentity(effects[m.aura], 0)
	if aura < 0 {
		aura = 0
	}
	h := row[m.health] - dmg + aura
	if h > row[m.maxHP] {
		h = row[m.maxHP] // "never restored beyond the initial health"
	}
	row[m.health] = h

	used := nonIdentity(effects[m.wUsed], 0)
	cd := row[m.cooldown] - 1
	if cd < 0 {
		cd = 0
	}
	row[m.cooldown] = cd + used*m.reload

	mv := geom.Vec{X: nonIdentity(effects[m.mvx], 0), Y: nonIdentity(effects[m.mvy], 0)}
	return mv, h > 0
}

// Respawn restores a freshly killed unit to full health with no cooldown;
// the engine then places it at a random free square (the Section 6 rule
// that keeps the population — and hence the measured workload — constant).
func (m *Mechanics) Respawn(row []float64, st *rng.Stream) {
	row[m.health] = row[m.maxHP]
	row[m.cooldown] = 0
}

// nonIdentity maps an untouched fold identity (±Inf) to the game default.
func nonIdentity(v, def float64) float64 {
	if math.IsInf(v, 0) {
		return def
	}
	return v
}
