package game

import "testing"

func TestCompileSmoke(t *testing.T) {
	prog, err := Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Script.Aggs) != 11 || len(prog.Script.Acts) != 5 {
		t.Fatalf("aggs=%d acts=%d", len(prog.Script.Aggs), len(prog.Script.Acts))
	}
}
