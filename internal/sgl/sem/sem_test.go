package sem

import (
	"strings"
	"testing"

	"github.com/epicscale/sgl/internal/sgl/parser"
	"github.com/epicscale/sgl/internal/table"
)

func testSchema(t testing.TB) *table.Schema {
	t.Helper()
	return table.MustSchema(
		table.Attr{Name: "key", Kind: table.Const},
		table.Attr{Name: "player", Kind: table.Const},
		table.Attr{Name: "posx", Kind: table.Const},
		table.Attr{Name: "posy", Kind: table.Const},
		table.Attr{Name: "health", Kind: table.Const},
		table.Attr{Name: "cooldown", Kind: table.Const},
		table.Attr{Name: "range", Kind: table.Const},
		table.Attr{Name: "morale", Kind: table.Const},
		table.Attr{Name: "weaponused", Kind: table.Max},
		table.Attr{Name: "movevect_x", Kind: table.Sum},
		table.Attr{Name: "movevect_y", Kind: table.Sum},
		table.Attr{Name: "damage", Kind: table.Sum},
		table.Attr{Name: "inaura", Kind: table.Max},
	)
}

var testConsts = map[string]float64{
	"_ARROW_DAMAGE": 6,
	"_ARMOR":        2,
	"_HEAL_AURA":    4,
	"_HEALER_RANGE": 10,
}

func check(t *testing.T, src string) (*Program, error) {
	t.Helper()
	s, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Check(s, testSchema(t), testConsts)
}

func mustCheck(t *testing.T, src string) *Program {
	t.Helper()
	p, err := check(t, src)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	return p
}

func wantErr(t *testing.T, src, substr string) {
	t.Helper()
	_, err := check(t, src)
	if err == nil {
		t.Fatalf("expected error containing %q, got none", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("error = %v, want substring %q", err, substr)
	}
}

const fullScript = `
aggregate CountEnemiesInRange(u, range) :=
  count(*)
  over e where e.posx >= u.posx - range and e.posx <= u.posx + range
    and e.posy >= u.posy - range and e.posy <= u.posy + range
    and e.player <> u.player;

aggregate CentroidOfEnemies(u, range) :=
  avg(e.posx) as x, avg(e.posy) as y
  over e where e.posx >= u.posx - range and e.posx <= u.posx + range
    and e.posy >= u.posy - range and e.posy <= u.posy + range
    and e.player <> u.player;

aggregate NearestEnemy(u) :=
  nearestkey() as key, nearestdist() as dist
  over e where e.player <> u.player;

action FireAt(u, target_key) :=
  on e where e.key = target_key
  set damage = (_ARROW_DAMAGE - _ARMOR) * (Random(1) % 2);

action MarkFired(u) :=
  on e where e.key = u.key
  set weaponused = 1;

action MoveInDirection(u, dx, dy) :=
  on e where e.key = u.key
  set movevect_x = dx, movevect_y = dy;

function main(u) {
  (let c = CountEnemiesInRange(u, u.range))
  (let away = (u.posx, u.posy) - CentroidOfEnemies(u, u.range)) {
    if c > u.morale then
      perform MoveInDirection(u, away);
    else if c > 0 and u.cooldown = 0 then
      (let target = NearestEnemy(u).key) {
        perform FireAt(u, target);
        perform MarkFired(u)
      }
  }
}
`

func TestFullScriptChecks(t *testing.T) {
	p := mustCheck(t, fullScript)
	if p.Main == nil || p.Main.Name != "main" {
		t.Fatal("main not resolved")
	}
	if len(p.AggCalls) != 3 {
		t.Fatalf("AggCalls = %d, want 3", len(p.AggCalls))
	}
	if len(p.Performs) != 3 {
		t.Fatalf("Performs = %d, want 3", len(p.Performs))
	}
	// The record argument to MoveInDirection must be expanded to 2 terms.
	for perf, target := range p.Performs {
		if perf.Name == "MoveInDirection" {
			if target.Act == nil || len(target.Args) != 2 {
				t.Fatalf("MoveInDirection target = %+v", target)
			}
		}
	}
}

func TestAggResultTypes(t *testing.T) {
	p := mustCheck(t, fullScript)
	for call, def := range p.AggCalls {
		ty := AggResultType(def)
		switch call.Name {
		case "CountEnemiesInRange":
			if !ty.Equal(Num) {
				t.Errorf("count type = %s", ty)
			}
		case "CentroidOfEnemies":
			if !ty.Equal(RecordOf("x", "y")) {
				t.Errorf("centroid type = %s", ty)
			}
		case "NearestEnemy":
			if !ty.Equal(RecordOf("key", "dist")) {
				t.Errorf("nearest type = %s", ty)
			}
		}
	}
}

func TestTypeHelpers(t *testing.T) {
	if Num.Width() != 1 || RecordOf("x", "y").Width() != 2 {
		t.Error("Width wrong")
	}
	if !RecordOf("a").Equal(RecordOf("a")) || RecordOf("a").Equal(RecordOf("b")) {
		t.Error("Equal wrong")
	}
	if UnitType.String() != "unit" || Num.String() != "num" {
		t.Error("String wrong")
	}
	if got := RecordOf("x", "y").String(); got != "record{x,y}" {
		t.Errorf("record String = %q", got)
	}
}

func TestMissingMain(t *testing.T) {
	wantErr(t, "function helper(u) { perform helper2(u) } function helper2(u) {}", "no main function")
}

func TestDuplicateDeclarations(t *testing.T) {
	wantErr(t, "function main(u) {} function main(u) {}", "duplicate declaration")
	wantErr(t, "aggregate A(u) := count(*) over e; action A(u) := on e set damage = 1; function main(u) {}", "duplicate declaration")
}

func TestUnknownNames(t *testing.T) {
	wantErr(t, "function main(u) { perform Missing(u) }", "undefined function")
	wantErr(t, "function main(u) { (let x = u.bogus) perform m2(u) } function m2(u) {}", "no attribute")
	wantErr(t, "function main(u) { (let x = _NOPE) {} }", "unknown game constant")
	wantErr(t, "function main(u) { (let x = y + 1) {} }", "undefined name")
}

func TestRecursionRejected(t *testing.T) {
	wantErr(t, "function main(u) { perform main(u) }", "recursive")
	wantErr(t, `
function main(u) { perform a(u) }
function a(u) { perform b(u) }
function b(u) { perform a(u) }
`, "recursive")
}

func TestMutualCallsAllowed(t *testing.T) {
	mustCheck(t, `
action Noop(u) := on e where e.key = u.key set damage = 0;
function main(u) { perform a(u); perform b(u) }
function a(u) { perform c(u) }
function b(u) { perform c(u) }
function c(u) { perform Noop(u) }
`)
}

func TestUnitDiscipline(t *testing.T) {
	wantErr(t, "function main(u) { (let x = u + 1) {} }", "arithmetic on the unit")
	wantErr(t, "function main(u) { (let x = u) {} }", "cannot bind the unit")
	wantErr(t, `
action A(u, v) := on e where e.key = u.key set damage = v;
function main(u) { perform A(u, u) }`, "unit may only be the first argument")
	wantErr(t, `
action A(u) := on e where e.key = u.key set damage = 1;
function main(u) { perform A(u.posx) }`, "must be the current unit")
}

func TestShadowingRejected(t *testing.T) {
	wantErr(t, "function main(u) { (let x = 1) (let x = 2) {} }", "shadows")
	wantErr(t, "function main(u) { (let u = 1) {} }", "shadows")
}

func TestRecordArithmetic(t *testing.T) {
	mustCheck(t, `
action Move(u, x, y) := on e where e.key = u.key set movevect_x = x, movevect_y = y;
function main(u) {
  (let a = (1, 2) + (3, 4))
  (let b = a * 2)
  (let c = 2 * a - b)
  perform Move(u, c)
}`)
	wantErr(t, "function main(u) { (let a = (1,2) + NearestEnemyX(u)) {} } aggregate NearestEnemyX(u) := nearestkey() as key, nearestdist() as dist over e;",
		"record shapes differ")
}

func TestComparisonsNumbersOnly(t *testing.T) {
	wantErr(t, "function main(u) { if (1,2) = (1,2) then {} }", "numbers")
}

func TestFieldAccess(t *testing.T) {
	mustCheck(t, `
aggregate N(u) := nearestkey() as key, nearestdist() as dist over e;
action A(u, k) := on e where e.key = k set damage = 1;
function main(u) { (let n = N(u)) { if n.dist < 5 then perform A(u, n.key) } }`)
	wantErr(t, `
aggregate N(u) := nearestkey() as key over e;
function main(u) { (let n = N(u)) { if n.key < 5 then {} } }`, "") // single output: n is Num, n.key invalid
}

func TestFieldOnNumberRejected(t *testing.T) {
	wantErr(t, "function main(u) { (let x = 3) (let y = x.f) {} }", "has no fields")
}

func TestAggArityAndArgs(t *testing.T) {
	wantErr(t, `
aggregate C(u, r) := count(*) over e;
function main(u) { (let x = C(u)) {} }`, "takes 2 arguments")
	wantErr(t, `
aggregate C(u) := count(*) over e;
function main(u) { (let x = C(u, (1,2))) {} }`, "takes 1 arguments")
}

func TestAggregateInsideDefinitionRejected(t *testing.T) {
	wantErr(t, `
aggregate C(u) := count(*) over e;
aggregate D(u) := sum(C(u)) over e;
function main(u) {}`, "cannot be called inside a definition")
}

func TestActionSetValidation(t *testing.T) {
	wantErr(t, "action A(u) := on e set bogus = 1; function main(u) {}", "unknown attribute")
	wantErr(t, "action A(u) := on e set posx = 1; function main(u) {}", "const and cannot be the subject")
	wantErr(t, "action A(u) := on e set damage = 1, damage = 2; function main(u) {}", "set twice")
}

func TestAggOutputValidation(t *testing.T) {
	wantErr(t, "aggregate A(u) := sum() over e; function main(u) {}", "requires an argument")
	wantErr(t, "aggregate A(u) := count(e.posx) over e; function main(u) {}", "takes no argument")
	wantErr(t, "aggregate A(u) := count(*) as c, sum(e.posx) as c over e; function main(u) {}", "duplicate output name")
}

func TestNearestRequiresPos(t *testing.T) {
	s, err := parser.Parse("aggregate N(u) := nearestkey() over e; function main(u) {}")
	if err != nil {
		t.Fatal(err)
	}
	noPos := table.MustSchema(
		table.Attr{Name: "key", Kind: table.Const},
		table.Attr{Name: "damage", Kind: table.Sum},
	)
	if _, err := Check(s, noPos, nil); err == nil || !strings.Contains(err.Error(), "posx") {
		t.Fatalf("err = %v", err)
	}
}

func TestScalarBuiltins(t *testing.T) {
	mustCheck(t, `
function main(u) {
  (let a = abs(-3))
  (let b = min(a, sqrt(4)))
  (let c = max(b, floor(2.5)))
  (let d = Random(c))
  {}
}`)
	wantErr(t, "function main(u) { (let a = abs(1, 2)) {} }", "takes 1 argument")
	wantErr(t, "function main(u) { (let a = Random((1,2))) {} }", "Random seed must be a number")
	wantErr(t, "function main(u) { (let a = min((1,2), 3)) {} }", "must be numbers")
}

func TestPerformArityAfterExpansion(t *testing.T) {
	wantErr(t, `
action Move(u, x, y) := on e where e.key = u.key set movevect_x = x, movevect_y = y;
function main(u) { perform Move(u, 1) }`, "after expansion")
	mustCheck(t, `
action Move(u, x, y) := on e where e.key = u.key set movevect_x = x, movevect_y = y;
function main(u) { perform Move(u, 1, 2) }`)
}

func TestScriptFunctionWithRecordParam(t *testing.T) {
	// A script function may receive a record; its parameter is then
	// record-typed at that call site.
	mustCheck(t, `
action Move(u, x, y) := on e where e.key = u.key set movevect_x = x, movevect_y = y;
function go(u, v) { perform Move(u, v) }
function main(u) { perform go(u, (1, 2)) }`)
}

func TestParameterNamedERejected(t *testing.T) {
	wantErr(t, "aggregate A(u, e) := count(*) over e; function main(u) {}", "may not be named 'e'")
}

func TestDuplicateParams(t *testing.T) {
	wantErr(t, "aggregate A(u, r, r) := count(*) over e; function main(u) {}", "duplicate parameter")
	wantErr(t, "function main(u) {} function f(u, a, a) { perform f2(u) } function f2(u) {}", "")
}

// ---------------------------------------------------------------------------
// Query mode (CheckQuery)

func checkQuery(t *testing.T, src string) (*Program, error) {
	t.Helper()
	s, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return CheckQuery(s, testSchema(t), testConsts)
}

func TestCheckQueryAccepts(t *testing.T) {
	for _, src := range []string{
		`aggregate Zone(u, x, y, r) :=
		   count(*) as n, sum(e.health) as hp
		   over e where e.posx >= x - r and e.posx <= x + r
		     and e.posy >= y - r and e.posy <= y + r;`,
		`aggregate ByPlayer(u, p) := count(*) over e where e.player = p;`,
		`aggregate Spotted(u) :=
		   count(*) over e where e.posx >= u.posx - u.range and e.posx <= u.posx + u.range
		     and e.player <> u.player;`,
		`aggregate Strongest(u) := max(e.health) as top, argmax(e.health) as who over e;`,
		`aggregate A(u) := count(*) over e; aggregate B(u) := avg(e.posx) over e;`,
	} {
		p, err := checkQuery(t, src)
		if err != nil {
			t.Errorf("CheckQuery(%q) = %v", src, err)
			continue
		}
		if p.Main != nil {
			t.Error("query program should have no Main")
		}
	}
}

func TestCheckQueryRejects(t *testing.T) {
	for _, tc := range []struct{ src, substr string }{
		{`function main(u) { perform X(u) }`, "read-only"},
		{`aggregate A(u) := count(*) over e;
		  action Tag(u) := on e where e.key = u.key set damage = 1;`, "no effects"},
		{``, "no aggregate"},
		{`aggregate A(u) := count(*) over e where Random(1) > 2;`, "Random"},
		{`aggregate A(u) := sum(Random(3)) over e;`, "Random"},
		{`aggregate A(u) := count(*) over e; aggregate A(u) := count(*) over e;`, "duplicate"},
		{`aggregate A(u) := count(*) over e where e.nosuch = 1;`, "nosuch"},
	} {
		_, err := checkQuery(t, tc.src)
		if err == nil {
			t.Errorf("CheckQuery(%q) succeeded, want error containing %q", tc.src, tc.substr)
			continue
		}
		if !strings.Contains(err.Error(), tc.substr) {
			t.Errorf("CheckQuery(%q) error = %v, want substring %q", tc.src, err, tc.substr)
		}
	}
}

// Query mode must not loosen the normal script checks: Random stays legal
// in full scripts.
func TestRandomStillAllowedInScripts(t *testing.T) {
	mustCheck(t, `
action Tag(u, v) := on e where e.key = u.key set damage = v;
function main(u) { perform Tag(u, Random(1) % 4) }`)
}
