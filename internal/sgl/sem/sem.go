// Package sem performs semantic analysis of parsed SGL scripts: name
// resolution, type checking, and the validations that make the paper's
// semantics well-defined (effect attributes only in SET clauses, the unit
// parameter only in unit position, acyclic perform chains so scripts are
// terminating functions, aggregate normal form).
//
// The type system is deliberately small. Terms are either numbers or
// records (ordered named tuples of numbers). Records arise from pair
// construction (x, y) — fields x and y — and from multi-output aggregate
// calls; a single-output aggregate call is a plain number. Arithmetic is
// defined on numbers, componentwise on same-shaped records, and broadcast
// between a record and a number, which is exactly enough to write the
// paper's (u.posx, u.posy) − Centroid(…) vector idiom. Comparisons are on
// numbers only.
//
// A record argument to a perform expands positionally into its fields, so
// `perform MoveInDirection(u, away_vector)` matches an action declared as
// MoveInDirection(u, x, y). The expansion is recorded in the Program so the
// interpreter and planner never re-derive it.
package sem

import (
	"fmt"

	"github.com/epicscale/sgl/internal/sgl/ast"
	"github.com/epicscale/sgl/internal/sgl/token"
	"github.com/epicscale/sgl/internal/table"
)

// Error is a semantic error with its source position.
type Error struct {
	Pos token.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos token.Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Type describes an SGL value: a number, a record of named number fields,
// or the distinguished unit type of the current-unit parameter.
type Type struct {
	Unit   bool
	Rec    bool
	Fields []string
}

// Num is the scalar number type.
var Num = Type{}

// UnitType is the type of the current-unit parameter u.
var UnitType = Type{Unit: true}

// RecordOf returns the record type with the given fields.
func RecordOf(fields ...string) Type { return Type{Rec: true, Fields: fields} }

// Width returns how many scalar slots the type expands to in argument
// position: 1 for numbers, len(fields) for records.
func (t Type) Width() int {
	if t.Rec {
		return len(t.Fields)
	}
	return 1
}

// Equal reports structural type equality.
func (t Type) Equal(o Type) bool {
	if t.Unit != o.Unit || t.Rec != o.Rec || len(t.Fields) != len(o.Fields) {
		return false
	}
	for i := range t.Fields {
		if t.Fields[i] != o.Fields[i] {
			return false
		}
	}
	return true
}

// String renders the type for error messages.
func (t Type) String() string {
	switch {
	case t.Unit:
		return "unit"
	case t.Rec:
		s := "record{"
		for i, f := range t.Fields {
			if i > 0 {
				s += ","
			}
			s += f
		}
		return s + "}"
	default:
		return "num"
	}
}

// PerformTarget is the resolution of one perform statement: exactly one of
// Func (a script-defined action function) or Act (a built-in action
// definition) is set. Args holds the argument terms after record expansion,
// excluding the leading unit argument.
type PerformTarget struct {
	Func *ast.FuncDef
	Act  *ast.ActDef
	Args []ast.Term
}

// Program is a semantically checked SGL script bound to an environment
// schema and a constant table. All later stages (interpreter, planner)
// work from a Program.
type Program struct {
	Script *ast.Script
	Schema *table.Schema
	Consts map[string]float64

	// Main is the entry-point action function.
	Main *ast.FuncDef

	// AggCalls resolves each aggregate Call term to its definition.
	AggCalls map[*ast.Call]*ast.AggDef

	// Performs resolves each perform statement.
	Performs map[*ast.Perform]*PerformTarget

	// FuncParamTypes records, for each script function, the parameter
	// types it was checked under (call-site polymorphic; keyed by func
	// then a signature string).
	funcSigs map[*ast.FuncDef]map[string]bool
}

// AggResultType returns the type of a call to the given aggregate
// definition: Num for a single output, a record otherwise.
func AggResultType(def *ast.AggDef) Type {
	if len(def.Outputs) == 1 {
		return Num
	}
	fields := make([]string, len(def.Outputs))
	for i, o := range def.Outputs {
		fields[i] = o.As
	}
	return RecordOf(fields...)
}

// scalarBuiltins are the pure numeric helper functions available in terms,
// with their arities. Random is handled separately (it is the ρ of the
// semantics, not a pure function).
var scalarBuiltins = map[string]int{
	"abs": 1, "sqrt": 1, "floor": 1, "min": 2, "max": 2,
}

// Check analyzes the script against the schema and constants. On success
// the returned Program carries all resolution tables; on failure the error
// is the first problem found, with its source position.
func Check(script *ast.Script, schema *table.Schema, consts map[string]float64) (*Program, error) {
	p := &Program{
		Script:   script,
		Schema:   schema,
		Consts:   consts,
		AggCalls: make(map[*ast.Call]*ast.AggDef),
		Performs: make(map[*ast.Perform]*PerformTarget),
		funcSigs: make(map[*ast.FuncDef]map[string]bool),
	}
	c := &checker{p: p}

	// Duplicate declaration names (one namespace across all three kinds,
	// since perform and call sites do not distinguish them).
	seen := map[string]token.Pos{}
	declare := func(name string, pos token.Pos) error {
		if prev, dup := seen[name]; dup {
			return errf(pos, "duplicate declaration of %q (previous at %s)", name, prev)
		}
		seen[name] = pos
		return nil
	}
	for _, f := range script.Funcs {
		if err := declare(f.Name, f.P); err != nil {
			return nil, err
		}
		// Parameter well-formedness is checked even for functions that are
		// never performed, so a broken helper fails fast.
		names := map[string]bool{}
		for i, pname := range f.Params {
			if names[pname] {
				return nil, errf(paramAt(f.P, f.ParamPos, i), "duplicate parameter %q in %q", pname, f.Name)
			}
			names[pname] = true
		}
	}
	for _, a := range script.Aggs {
		if err := declare(a.Name, a.P); err != nil {
			return nil, err
		}
	}
	for _, a := range script.Acts {
		if err := declare(a.Name, a.P); err != nil {
			return nil, err
		}
	}

	for _, a := range script.Aggs {
		if err := c.checkAggDef(a); err != nil {
			return nil, err
		}
	}
	for _, a := range script.Acts {
		if err := c.checkActDef(a); err != nil {
			return nil, err
		}
	}

	main := script.Func("main")
	if main == nil {
		return nil, errf(token.Pos{Line: 1, Col: 1}, "script has no main function")
	}
	p.Main = main
	if len(main.Params) != 1 {
		return nil, errf(main.P, "main must take exactly the unit parameter, has %d parameters", len(main.Params))
	}
	if err := c.checkFunc(main, []Type{UnitType}, nil); err != nil {
		return nil, err
	}
	return p, nil
}

// CheckQuery analyzes a script in query mode: an observation query over
// the live environment rather than a behavior that changes it. A query
// script declares aggregate definitions only — action definitions,
// action functions (and hence perform/SET effects) are rejected, as is
// Random, so a compiled query is a pure read of whatever snapshot it is
// later evaluated against. The returned Program has no Main; it exists
// to carry the checked definitions, the schema binding, and the constant
// table through the same evaluation machinery the engine uses.
func CheckQuery(script *ast.Script, schema *table.Schema, consts map[string]float64) (*Program, error) {
	if len(script.Funcs) > 0 {
		f := script.Funcs[0]
		return nil, errf(f.P, "query may not define action function %q: queries are read-only", f.Name)
	}
	if len(script.Acts) > 0 {
		a := script.Acts[0]
		return nil, errf(a.P, "query may not define action %q: queries have no effects", a.Name)
	}
	if len(script.Aggs) == 0 {
		return nil, errf(token.Pos{Line: 1, Col: 1}, "query declares no aggregate")
	}
	p := &Program{
		Script:   script,
		Schema:   schema,
		Consts:   consts,
		AggCalls: make(map[*ast.Call]*ast.AggDef),
		Performs: make(map[*ast.Perform]*PerformTarget),
		funcSigs: make(map[*ast.FuncDef]map[string]bool),
	}
	c := &checker{p: p, query: true}
	seen := map[string]token.Pos{}
	for _, a := range script.Aggs {
		if prev, dup := seen[a.Name]; dup {
			return nil, errf(a.P, "duplicate declaration of %q (previous at %s)", a.Name, prev)
		}
		seen[a.Name] = a.P
		if err := c.checkAggDef(a); err != nil {
			return nil, err
		}
	}
	return p, nil
}

type checker struct {
	p *Program
	// query marks query-mode checking (CheckQuery): Random is rejected so
	// observation queries are pure reads of the snapshot.
	query bool
}

// env maps in-scope names (parameters and let-bindings) to types.
type env map[string]Type

func (e env) clone() env {
	c := make(env, len(e)+1)
	for k, v := range e {
		c[k] = v
	}
	return c
}

// termCtx says which row variables a term may reference.
type termCtx uint8

const (
	scriptCtx termCtx = iota // action functions: unit param, lets, aggregate calls
	defCtx                   // aggregate/action definitions: e and the unit param
)

// ---------------------------------------------------------------------------
// Definitions

// paramAt returns the recorded position of parameter i, falling back to the
// declaration position for ASTs built by hand without ParamPos.
func paramAt(def token.Pos, ppos []token.Pos, i int) token.Pos {
	if i < len(ppos) {
		return ppos[i]
	}
	return def
}

func (c *checker) defEnv(params []string, ppos []token.Pos, pos token.Pos) (env, string, error) {
	if len(params) == 0 {
		return nil, "", errf(pos, "definition needs at least the unit parameter")
	}
	ev := env{}
	unit := params[0]
	ev[unit] = UnitType
	for i, pname := range params[1:] {
		if _, dup := ev[pname]; dup {
			return nil, "", errf(paramAt(pos, ppos, i+1), "duplicate parameter %q", pname)
		}
		ev[pname] = Num
	}
	if _, clash := ev["e"]; clash {
		return nil, "", errf(pos, "parameter may not be named 'e'")
	}
	ev["e"] = UnitType // the scanned row behaves like a unit tuple
	return ev, unit, nil
}

func (c *checker) checkAggDef(def *ast.AggDef) error {
	ev, _, err := c.defEnv(def.Params, def.ParamPos, def.P)
	if err != nil {
		return err
	}
	names := map[string]bool{}
	for _, out := range def.Outputs {
		if names[out.As] {
			return errf(out.P, "duplicate output name %q", out.As)
		}
		names[out.As] = true
		needsArg := false
		switch out.Func {
		case ast.Sum, ast.Avg, ast.Stddev, ast.Min, ast.Max, ast.ArgMin, ast.ArgMax:
			needsArg = true
		case ast.Count, ast.NearestKey, ast.NearestDist, ast.NearestX, ast.NearestY:
		}
		if needsArg && out.Arg == nil {
			return errf(out.P, "%s requires an argument", out.Func)
		}
		if !needsArg && out.Arg != nil {
			return errf(out.P, "%s takes no argument", out.Func)
		}
		if out.Arg != nil {
			t, err := c.checkTerm(out.Arg, ev, defCtx)
			if err != nil {
				return err
			}
			if !t.Equal(Num) {
				return errf(out.Arg.Pos(), "aggregate argument must be a number, got %s", t)
			}
		}
		if out.Func == ast.NearestKey || out.Func == ast.NearestDist ||
			out.Func == ast.NearestX || out.Func == ast.NearestY {
			for _, attr := range []string{"posx", "posy"} {
				if _, ok := c.p.Schema.Col(attr); !ok {
					return errf(out.P, "%s requires schema attributes posx and posy", out.Func)
				}
			}
		}
	}
	if def.Where != nil {
		if err := c.checkCond(def.Where, ev, defCtx); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkActDef(def *ast.ActDef) error {
	ev, _, err := c.defEnv(def.Params, def.ParamPos, def.P)
	if err != nil {
		return err
	}
	if def.Where != nil {
		if err := c.checkCond(def.Where, ev, defCtx); err != nil {
			return err
		}
	}
	set := map[string]bool{}
	for _, s := range def.Sets {
		col, ok := c.p.Schema.Col(s.Attr)
		if !ok {
			return errf(s.P, "set clause targets unknown attribute %q", s.Attr)
		}
		if c.p.Schema.Attr(col).Kind == table.Const {
			return errf(s.P, "attribute %q is const and cannot be the subject of an effect", s.Attr)
		}
		if set[s.Attr] {
			return errf(s.P, "attribute %q set twice", s.Attr)
		}
		set[s.Attr] = true
		t, err := c.checkTerm(s.Value, ev, defCtx)
		if err != nil {
			return err
		}
		if !t.Equal(Num) {
			return errf(s.Value.Pos(), "set clause value must be a number, got %s", t)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Action functions

// sig builds a signature string for call-site polymorphic memoization.
func sig(types []Type) string {
	s := ""
	for _, t := range types {
		s += t.String() + ";"
	}
	return s
}

func (c *checker) checkFunc(f *ast.FuncDef, argTypes []Type, stack []*ast.FuncDef) error {
	for _, onStack := range stack {
		if onStack == f {
			return errf(f.P, "recursive perform chain through %q: SGL functions must be non-recursive", f.Name)
		}
	}
	if len(argTypes) != len(f.Params) {
		return errf(f.P, "%q called with %d arguments, declared with %d parameters", f.Name, len(argTypes), len(f.Params))
	}
	if !argTypes[0].Unit {
		return errf(f.P, "first argument of %q must be the current unit", f.Name)
	}
	s := sig(argTypes)
	if c.p.funcSigs[f] == nil {
		c.p.funcSigs[f] = map[string]bool{}
	}
	if c.p.funcSigs[f][s] {
		return nil // already checked under this signature
	}
	c.p.funcSigs[f][s] = true

	ev := env{}
	for i, pname := range f.Params {
		if _, dup := ev[pname]; dup {
			return errf(paramAt(f.P, f.ParamPos, i), "duplicate parameter %q", pname)
		}
		ev[pname] = argTypes[i]
	}
	return c.checkAction(f.Body, ev, append(stack, f))
}

func (c *checker) checkAction(a ast.Action, ev env, stack []*ast.FuncDef) error {
	switch n := a.(type) {
	case *ast.Nop:
		return nil
	case *ast.Seq:
		for _, sub := range n.Acts {
			if err := c.checkAction(sub, ev, stack); err != nil {
				return err
			}
		}
		return nil
	case *ast.If:
		if err := c.checkCond(n.Cond, ev, scriptCtx); err != nil {
			return err
		}
		if err := c.checkAction(n.Then, ev, stack); err != nil {
			return err
		}
		if n.Else != nil {
			return c.checkAction(n.Else, ev, stack)
		}
		return nil
	case *ast.Let:
		t, err := c.checkTerm(n.Value, ev, scriptCtx)
		if err != nil {
			return err
		}
		if t.Unit {
			return errf(n.P, "cannot bind the unit value to %q", n.Name)
		}
		if _, shadow := ev[n.Name]; shadow {
			return errf(n.P, "let %q shadows an existing binding", n.Name)
		}
		inner := ev.clone()
		inner[n.Name] = t
		return c.checkAction(n.Body, inner, stack)
	case *ast.Perform:
		return c.checkPerform(n, ev, stack)
	default:
		return errf(a.Pos(), "unknown action node %T", a)
	}
}

func (c *checker) checkPerform(n *ast.Perform, ev env, stack []*ast.FuncDef) error {
	if len(n.Args) == 0 {
		return errf(n.P, "perform %s needs at least the unit argument", n.Name)
	}
	// First argument must be the unit parameter.
	uref, ok := n.Args[0].(*ast.VarRef)
	if !ok || !ev[uref.Name].Unit {
		return errf(n.Args[0].Pos(), "first argument of perform %s must be the current unit", n.Name)
	}

	// Type the remaining arguments and expand records positionally.
	var expanded []ast.Term
	var expandedTypes []Type
	for _, arg := range n.Args[1:] {
		t, err := c.checkTerm(arg, ev, scriptCtx)
		if err != nil {
			return err
		}
		if t.Unit {
			return errf(arg.Pos(), "the unit may only be the first argument")
		}
		if t.Rec {
			for _, f := range t.Fields {
				expanded = append(expanded, &ast.Field{P: arg.Pos(), X: arg, Field: f})
				expandedTypes = append(expandedTypes, Num)
			}
		} else {
			expanded = append(expanded, arg)
			expandedTypes = append(expandedTypes, Num)
		}
	}

	if f := c.p.Script.Func(n.Name); f != nil {
		// Script function: check its body under these argument types.
		// Record arguments are passed unexpanded so the callee sees them
		// as records; numeric arity must still match.
		var callTypes []Type
		callTypes = append(callTypes, UnitType)
		var callArgs []ast.Term
		for _, arg := range n.Args[1:] {
			t, _ := c.checkTerm(arg, ev, scriptCtx)
			callTypes = append(callTypes, t)
			callArgs = append(callArgs, arg)
		}
		if err := c.checkFunc(f, callTypes, stack); err != nil {
			return err
		}
		c.p.Performs[n] = &PerformTarget{Func: f, Args: callArgs}
		return nil
	}
	if a := c.p.Script.Act(n.Name); a != nil {
		want := len(a.Params) - 1
		if len(expanded) != want {
			return errf(n.P, "perform %s: %d argument values after expansion, action takes %d", n.Name, len(expanded), want)
		}
		c.p.Performs[n] = &PerformTarget{Act: a, Args: expanded}
		return nil
	}
	return errf(n.P, "perform of undefined function %q", n.Name)
}

// ---------------------------------------------------------------------------
// Conditions and terms

func (c *checker) checkCond(cond ast.Cond, ev env, ctx termCtx) error {
	switch n := cond.(type) {
	case *ast.BoolLit:
		return nil
	case *ast.Not:
		return c.checkCond(n.X, ev, ctx)
	case *ast.And:
		if err := c.checkCond(n.X, ev, ctx); err != nil {
			return err
		}
		return c.checkCond(n.Y, ev, ctx)
	case *ast.Or:
		if err := c.checkCond(n.X, ev, ctx); err != nil {
			return err
		}
		return c.checkCond(n.Y, ev, ctx)
	case *ast.Compare:
		tx, err := c.checkTerm(n.X, ev, ctx)
		if err != nil {
			return err
		}
		ty, err := c.checkTerm(n.Y, ev, ctx)
		if err != nil {
			return err
		}
		if !tx.Equal(Num) || !ty.Equal(Num) {
			return errf(n.P, "comparisons are defined on numbers, got %s %s %s", tx, n.Op, ty)
		}
		return nil
	default:
		return errf(cond.Pos(), "unknown condition node %T", cond)
	}
}

func (c *checker) checkTerm(t ast.Term, ev env, ctx termCtx) (Type, error) {
	switch n := t.(type) {
	case *ast.NumLit:
		return Num, nil

	case *ast.ConstRef:
		if _, ok := c.p.Consts[n.Name]; !ok {
			return Num, errf(n.P, "unknown game constant %s", n.Name)
		}
		return Num, nil

	case *ast.VarRef:
		ty, ok := ev[n.Name]
		if !ok {
			return Num, errf(n.P, "undefined name %q", n.Name)
		}
		return ty, nil

	case *ast.FieldRef:
		base, ok := ev[n.Base]
		if !ok {
			return Num, errf(n.P, "undefined name %q", n.Base)
		}
		if base.Unit {
			if _, ok := c.p.Schema.Col(n.Field); !ok {
				return Num, errf(n.P, "schema has no attribute %q", n.Field)
			}
			return Num, nil
		}
		if base.Rec {
			for _, f := range base.Fields {
				if f == n.Field {
					return Num, nil
				}
			}
			return Num, errf(n.P, "record %q has no field %q", n.Base, n.Field)
		}
		return Num, errf(n.P, "%q is a number and has no fields", n.Base)

	case *ast.Field:
		base, err := c.checkTerm(n.X, ev, ctx)
		if err != nil {
			return Num, err
		}
		if !base.Rec {
			return Num, errf(n.P, "field access on non-record value of type %s", base)
		}
		for _, f := range base.Fields {
			if f == n.Field {
				return Num, nil
			}
		}
		return Num, errf(n.P, "record has no field %q", n.Field)

	case *ast.Pair:
		for _, sub := range []ast.Term{n.X, n.Y} {
			ty, err := c.checkTerm(sub, ev, ctx)
			if err != nil {
				return Num, err
			}
			if !ty.Equal(Num) {
				return Num, errf(sub.Pos(), "pair components must be numbers, got %s", ty)
			}
		}
		return RecordOf("x", "y"), nil

	case *ast.Neg:
		ty, err := c.checkTerm(n.X, ev, ctx)
		if err != nil {
			return Num, err
		}
		if ty.Unit {
			return Num, errf(n.P, "cannot negate the unit value")
		}
		return ty, nil

	case *ast.Binary:
		tx, err := c.checkTerm(n.X, ev, ctx)
		if err != nil {
			return Num, err
		}
		ty, err := c.checkTerm(n.Y, ev, ctx)
		if err != nil {
			return Num, err
		}
		if tx.Unit || ty.Unit {
			return Num, errf(n.P, "arithmetic on the unit value")
		}
		switch {
		case !tx.Rec && !ty.Rec:
			return Num, nil
		case tx.Rec && ty.Rec:
			if !tx.Equal(ty) {
				return Num, errf(n.P, "record shapes differ: %s vs %s", tx, ty)
			}
			return tx, nil
		case tx.Rec:
			return tx, nil // record ∘ scalar broadcasts
		default:
			return ty, nil // scalar ∘ record broadcasts
		}

	case *ast.Call:
		return c.checkCall(n, ev, ctx)
	}
	return Num, errf(t.Pos(), "unknown term node %T", t)
}

func (c *checker) checkCall(n *ast.Call, ev env, ctx termCtx) (Type, error) {
	if n.Name == "Random" || n.Name == "random" {
		if c.query {
			return Num, errf(n.P, "Random is not allowed in queries: observation queries are deterministic reads")
		}
		if len(n.Args) != 1 {
			return Num, errf(n.P, "Random takes exactly one seed argument")
		}
		ty, err := c.checkTerm(n.Args[0], ev, ctx)
		if err != nil {
			return Num, err
		}
		if !ty.Equal(Num) {
			return Num, errf(n.P, "Random seed must be a number")
		}
		return Num, nil
	}
	if arity, ok := scalarBuiltins[n.Name]; ok {
		if len(n.Args) != arity {
			return Num, errf(n.P, "%s takes %d argument(s), got %d", n.Name, arity, len(n.Args))
		}
		for _, a := range n.Args {
			ty, err := c.checkTerm(a, ev, ctx)
			if err != nil {
				return Num, err
			}
			if !ty.Equal(Num) {
				return Num, errf(a.Pos(), "%s arguments must be numbers, got %s", n.Name, ty)
			}
		}
		return Num, nil
	}

	// Aggregate function call: only valid in action-function terms, first
	// argument the unit, remaining arguments numbers.
	def := c.p.Script.Agg(n.Name)
	if def == nil {
		return Num, errf(n.P, "call of undefined function %q", n.Name)
	}
	if ctx == defCtx {
		return Num, errf(n.P, "aggregate %q cannot be called inside a definition", n.Name)
	}
	if len(n.Args) == 0 {
		return Num, errf(n.P, "aggregate %s needs at least the unit argument", n.Name)
	}
	if uref, ok := n.Args[0].(*ast.VarRef); !ok || !ev[uref.Name].Unit {
		return Num, errf(n.Args[0].Pos(), "first argument of %s must be the current unit", n.Name)
	}
	if len(n.Args) != len(def.Params) {
		return Num, errf(n.P, "%s takes %d arguments, got %d", n.Name, len(def.Params), len(n.Args))
	}
	for _, a := range n.Args[1:] {
		ty, err := c.checkTerm(a, ev, ctx)
		if err != nil {
			return Num, err
		}
		if !ty.Equal(Num) {
			return Num, errf(a.Pos(), "aggregate arguments must be numbers, got %s", ty)
		}
	}
	c.p.AggCalls[n] = def
	return AggResultType(def), nil
}
