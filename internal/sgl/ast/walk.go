package ast

// Inspect walks the AST rooted at n in source order, calling fn for every
// node it encounters: declarations (*FuncDef, *AggDef, *ActDef), output and
// set clauses (*AggOutput, *SetClause), and every Term, Cond and Action.
// If fn returns false the node's children are skipped. n may be a *Script,
// any declaration, or any Term/Cond/Action; nil nodes are skipped.
func Inspect(n any, fn func(any) bool) {
	if n == nil {
		return
	}
	switch x := n.(type) {
	case *Script:
		for _, f := range x.Funcs {
			Inspect(f, fn)
		}
		for _, a := range x.Aggs {
			Inspect(a, fn)
		}
		for _, a := range x.Acts {
			Inspect(a, fn)
		}
	case *FuncDef:
		if fn(x) {
			inspectAction(x.Body, fn)
		}
	case *AggDef:
		if fn(x) {
			for i := range x.Outputs {
				Inspect(&x.Outputs[i], fn)
			}
			inspectCond(x.Where, fn)
		}
	case *ActDef:
		if fn(x) {
			inspectCond(x.Where, fn)
			for i := range x.Sets {
				Inspect(&x.Sets[i], fn)
			}
		}
	case *AggOutput:
		if fn(x) {
			inspectTerm(x.Arg, fn)
		}
	case *SetClause:
		if fn(x) {
			inspectTerm(x.Value, fn)
		}
	case Term:
		inspectTerm(x, fn)
	case Cond:
		inspectCond(x, fn)
	case Action:
		inspectAction(x, fn)
	}
}

func inspectTerm(t Term, fn func(any) bool) {
	if t == nil || isNilTerm(t) || !fn(t) {
		return
	}
	switch x := t.(type) {
	case *Binary:
		inspectTerm(x.X, fn)
		inspectTerm(x.Y, fn)
	case *Neg:
		inspectTerm(x.X, fn)
	case *Call:
		for _, a := range x.Args {
			inspectTerm(a, fn)
		}
	case *Pair:
		inspectTerm(x.X, fn)
		inspectTerm(x.Y, fn)
	case *Field:
		inspectTerm(x.X, fn)
	}
}

func inspectCond(c Cond, fn func(any) bool) {
	if c == nil || isNilCond(c) || !fn(c) {
		return
	}
	switch x := c.(type) {
	case *Compare:
		inspectTerm(x.X, fn)
		inspectTerm(x.Y, fn)
	case *And:
		inspectCond(x.X, fn)
		inspectCond(x.Y, fn)
	case *Or:
		inspectCond(x.X, fn)
		inspectCond(x.Y, fn)
	case *Not:
		inspectCond(x.X, fn)
	}
}

func inspectAction(a Action, fn func(any) bool) {
	if a == nil || isNilAction(a) || !fn(a) {
		return
	}
	switch x := a.(type) {
	case *Let:
		inspectTerm(x.Value, fn)
		inspectAction(x.Body, fn)
	case *Seq:
		for _, s := range x.Acts {
			inspectAction(s, fn)
		}
	case *If:
		inspectCond(x.Cond, fn)
		inspectAction(x.Then, fn)
		inspectAction(x.Else, fn)
	case *Perform:
		for _, t := range x.Args {
			inspectTerm(t, fn)
		}
	}
}

// The interface values may wrap typed nil pointers when callers build ASTs
// by hand; treat those as absent rather than panicking in the type switch.
func isNilTerm(t Term) bool {
	switch x := t.(type) {
	case *NumLit:
		return x == nil
	case *ConstRef:
		return x == nil
	case *VarRef:
		return x == nil
	case *FieldRef:
		return x == nil
	case *Binary:
		return x == nil
	case *Neg:
		return x == nil
	case *Call:
		return x == nil
	case *Pair:
		return x == nil
	case *Field:
		return x == nil
	}
	return false
}

func isNilCond(c Cond) bool {
	switch x := c.(type) {
	case *Compare:
		return x == nil
	case *And:
		return x == nil
	case *Or:
		return x == nil
	case *Not:
		return x == nil
	case *BoolLit:
		return x == nil
	}
	return false
}

func isNilAction(a Action) bool {
	switch x := a.(type) {
	case *Let:
		return x == nil
	case *Seq:
		return x == nil
	case *If:
		return x == nil
	case *Perform:
		return x == nil
	case *Nop:
		return x == nil
	}
	return false
}
