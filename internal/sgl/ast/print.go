// Source printing: every declaration form renders back to parseable SGL.
// The printer is the other half of the fuzzing contract — for any script
// the parser accepts, print → parse → print must be a fixed point (the
// round-trip fuzz targets enforce it). To keep the grammar unambiguous
// the printer is conservative: terms and conditions reuse their fully
// parenthesized String() forms, and if/then/else bodies are always
// braced, which sidesteps the dangling-else ambiguity entirely.
package ast

import (
	"fmt"
	"strings"
)

// String renders the script as parseable SGL source: aggregate
// definitions, then action definitions, then functions — the grouping the
// parser reconstructs regardless of the original interleaving, so the
// form is print-stable.
func (s *Script) String() string {
	var parts []string
	for _, d := range s.Aggs {
		parts = append(parts, d.String())
	}
	for _, d := range s.Acts {
		parts = append(parts, d.String())
	}
	for _, d := range s.Funcs {
		parts = append(parts, d.String())
	}
	return strings.Join(parts, "\n\n") + "\n"
}

func paramList(params []string) string { return strings.Join(params, ", ") }

// String renders one aggregate definition.
func (d *AggDef) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "aggregate %s(%s) :=\n  ", d.Name, paramList(d.Params))
	for i, out := range d.Outputs {
		if i > 0 {
			b.WriteString(", ")
		}
		arg := "*"
		switch {
		case out.Arg != nil:
			arg = out.Arg.String()
		case out.Func != Count:
			arg = ""
		}
		fmt.Fprintf(&b, "%s(%s) as %s", out.Func, arg, out.As)
	}
	b.WriteString("\n  over e")
	if d.Where != nil {
		fmt.Fprintf(&b, " where %s", d.Where)
	}
	b.WriteString(";")
	return b.String()
}

// String renders one action definition.
func (d *ActDef) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "action %s(%s) :=\n  on e", d.Name, paramList(d.Params))
	if d.Where != nil {
		fmt.Fprintf(&b, " where %s", d.Where)
	}
	b.WriteString("\n  set ")
	for i, set := range d.Sets {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s = %s", set.Attr, set.Value)
	}
	b.WriteString(";")
	return b.String()
}

// String renders one function definition.
func (d *FuncDef) String() string {
	return fmt.Sprintf("function %s(%s) { %s }", d.Name, paramList(d.Params), printAction(d.Body))
}

// printAction renders an action in "prim" position (anything the parser's
// primAction accepts): sequences brace themselves, so the result composes
// under let and if without ambiguity.
func printAction(a Action) string {
	switch n := a.(type) {
	case *Let:
		return fmt.Sprintf("(let %s = %s) %s", n.Name, n.Value, printAction(n.Body))
	case *Seq:
		parts := make([]string, len(n.Acts))
		for i, sub := range n.Acts {
			parts[i] = printAction(sub)
		}
		return "{ " + strings.Join(parts, "; ") + " }"
	case *If:
		// Braced bodies keep else-binding unambiguous.
		s := fmt.Sprintf("if %s then { %s }", n.Cond, printAction(n.Then))
		if n.Else != nil {
			s += fmt.Sprintf(" else { %s }", printAction(n.Else))
		}
		return s
	case *Perform:
		args := make([]string, len(n.Args))
		for i, t := range n.Args {
			args[i] = t.String()
		}
		return fmt.Sprintf("perform %s(%s)", n.Name, strings.Join(args, ", "))
	case *Nop:
		return "{ }"
	default:
		panic(fmt.Sprintf("ast: unknown action %T", a))
	}
}
