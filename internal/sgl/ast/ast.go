// Package ast defines the abstract syntax of SGL (paper Section 4.1).
//
// A script is a set of declarations:
//
//   - action functions (the `function` grammar of the paper: let,
//     sequencing, if-then-else, perform);
//   - aggregate function definitions (the SQL fragments of Figure 4 /
//     Eq. (5)), written `aggregate Name(u, p…) := out, … over e where φ;`
//   - built-in action definitions (Figure 5 / Eq. (4)), written
//     `action Name(u, p…) := on e where φ set A = t, …;`
//
// Terms and conditions are shared between the two worlds; a term may
// reference the current unit u, the scanned environment row e (only inside
// aggregate/action definitions), parameters, let-bound variables, game
// constants, Random(i), and aggregate calls (only inside action functions).
package ast

import (
	"fmt"
	"strings"

	"github.com/epicscale/sgl/internal/sgl/token"
)

// ---------------------------------------------------------------------------
// Terms

// Term is an SGL term: arithmetic over constants, attributes, random
// numbers, and aggregate function calls (paper Section 4.1).
type Term interface {
	Pos() token.Pos
	String() string
	isTerm()
}

// NumLit is a numeric literal.
type NumLit struct {
	P   token.Pos
	Val float64
}

// ConstRef references a named game constant such as _TIME_RELOAD.
type ConstRef struct {
	P    token.Pos
	Name string
}

// VarRef references a parameter or let-bound variable.
type VarRef struct {
	P    token.Pos
	Name string
}

// FieldRef is Base.Field: an attribute of the current unit (u.posx), of the
// scanned row (e.posx, in definitions only), or a field of a record-valued
// variable (away_vector.x).
type FieldRef struct {
	P           token.Pos
	Base, Field string
}

// BinOp is a binary arithmetic operator.
type BinOp uint8

// Arithmetic operators.
const (
	Add BinOp = iota
	Sub
	Mul
	Div
	Mod
)

func (o BinOp) String() string { return [...]string{"+", "-", "*", "/", "%"}[o] }

// Binary applies an arithmetic operator to two terms.
type Binary struct {
	P    token.Pos
	Op   BinOp
	X, Y Term
}

// Neg is unary minus.
type Neg struct {
	P token.Pos
	X Term
}

// Call is a function application: Random(i), a scalar builtin (abs, min,
// max, sqrt, floor), or — inside action functions only — an aggregate
// function call whose first argument must be u.
type Call struct {
	P    token.Pos
	Name string
	Args []Term
}

// Pair is the record constructor (x, y) used for positions and vectors,
// e.g. the (u.posx, u.posy) − Centroid(…) of the paper's Figure 3. Its
// fields are named x and y.
type Pair struct {
	P    token.Pos
	X, Y Term
}

// Field accesses a field of a record-valued term, e.g. NearestEnemy(u).key.
type Field struct {
	P     token.Pos
	X     Term
	Field string
}

func (t *NumLit) Pos() token.Pos   { return t.P }
func (t *ConstRef) Pos() token.Pos { return t.P }
func (t *VarRef) Pos() token.Pos   { return t.P }
func (t *FieldRef) Pos() token.Pos { return t.P }
func (t *Binary) Pos() token.Pos   { return t.P }
func (t *Neg) Pos() token.Pos      { return t.P }
func (t *Call) Pos() token.Pos     { return t.P }
func (t *Pair) Pos() token.Pos     { return t.P }
func (t *Field) Pos() token.Pos    { return t.P }

func (*NumLit) isTerm()   {}
func (*ConstRef) isTerm() {}
func (*VarRef) isTerm()   {}
func (*FieldRef) isTerm() {}
func (*Binary) isTerm()   {}
func (*Neg) isTerm()      {}
func (*Call) isTerm()     {}
func (*Pair) isTerm()     {}
func (*Field) isTerm()    {}

func (t *NumLit) String() string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", t.Val), "0"), ".")
}
func (t *ConstRef) String() string { return t.Name }
func (t *VarRef) String() string   { return t.Name }
func (t *FieldRef) String() string { return t.Base + "." + t.Field }
func (t *Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", t.X, t.Op, t.Y)
}
func (t *Neg) String() string { return fmt.Sprintf("(-%s)", t.X) }
func (t *Call) String() string {
	args := make([]string, len(t.Args))
	for i, a := range t.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", t.Name, strings.Join(args, ", "))
}
func (t *Pair) String() string  { return fmt.Sprintf("(%s, %s)", t.X, t.Y) }
func (t *Field) String() string { return fmt.Sprintf("%s.%s", t.X, t.Field) }

// ---------------------------------------------------------------------------
// Conditions

// Cond is a Boolean combination of atomic comparisons (paper Section 4.1:
// "conditions are Boolean combinations of atomic conditions").
type Cond interface {
	Pos() token.Pos
	String() string
	isCond()
}

// CmpOp is a comparison operator.
type CmpOp uint8

// Comparison operators; the paper lists =, <, ≤, ≠ and we add their
// mirror images for convenience.
const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

func (o CmpOp) String() string { return [...]string{"=", "<>", "<", "<=", ">", ">="}[o] }

// Negate returns the complementary comparison (used when rewriting
// if-then-else into σφ / σ¬φ branches).
func (o CmpOp) Negate() CmpOp {
	return [...]CmpOp{Ne, Eq, Ge, Gt, Le, Lt}[o]
}

// Compare is an atomic condition t1 op t2.
type Compare struct {
	P    token.Pos
	Op   CmpOp
	X, Y Term
}

// And is conjunction.
type And struct {
	P    token.Pos
	X, Y Cond
}

// Or is disjunction.
type Or struct {
	P    token.Pos
	X, Y Cond
}

// Not is negation.
type Not struct {
	P token.Pos
	X Cond
}

// BoolLit is a literal condition (true/false).
type BoolLit struct {
	P   token.Pos
	Val bool
}

func (c *Compare) Pos() token.Pos { return c.P }
func (c *And) Pos() token.Pos     { return c.P }
func (c *Or) Pos() token.Pos      { return c.P }
func (c *Not) Pos() token.Pos     { return c.P }
func (c *BoolLit) Pos() token.Pos { return c.P }

func (*Compare) isCond() {}
func (*And) isCond()     {}
func (*Or) isCond()      {}
func (*Not) isCond()     {}
func (*BoolLit) isCond() {}

func (c *Compare) String() string { return fmt.Sprintf("%s %s %s", c.X, c.Op, c.Y) }
func (c *And) String() string     { return fmt.Sprintf("(%s and %s)", c.X, c.Y) }
func (c *Or) String() string      { return fmt.Sprintf("(%s or %s)", c.X, c.Y) }
func (c *Not) String() string     { return fmt.Sprintf("(not %s)", c.X) }
func (c *BoolLit) String() string { return fmt.Sprintf("%v", c.Val) }

// Conjuncts flattens a condition into its top-level conjuncts. The paper's
// index construction assumes φ is conjunctive (Section 5.3); the planner
// uses this to classify each conjunct separately.
func Conjuncts(c Cond) []Cond {
	if a, ok := c.(*And); ok {
		return append(Conjuncts(a.X), Conjuncts(a.Y)...)
	}
	return []Cond{c}
}

// ---------------------------------------------------------------------------
// Actions (the `function` bodies)

// Action is a node of the paper's action grammar.
type Action interface {
	Pos() token.Pos
	isAction()
}

// Let binds Name to Value for the scope of Body: "(let v := t) f" extends
// the current unit record by the value of term t.
type Let struct {
	P     token.Pos
	Name  string
	Value Term
	Body  Action
}

// Seq is "f1; f2; …" — per the semantics, the ⊕-combination of its parts'
// effect tables, not sequential execution.
type Seq struct {
	P    token.Pos
	Acts []Action
}

// If is "if φ then f1 [else f2]"; a nil Else is the one-armed form. The
// two-armed form abbreviates "if φ then f1; if ¬φ then f2".
type If struct {
	P    token.Pos
	Cond Cond
	Then Action
	Else Action // may be nil
}

// Perform invokes a defined function or a built-in action. The first
// argument is conventionally u.
type Perform struct {
	P    token.Pos
	Name string
	Args []Term
}

// Nop is the empty action (a unit in cooldown "just performs an empty
// action").
type Nop struct {
	P token.Pos
}

func (a *Let) Pos() token.Pos     { return a.P }
func (a *Seq) Pos() token.Pos     { return a.P }
func (a *If) Pos() token.Pos      { return a.P }
func (a *Perform) Pos() token.Pos { return a.P }
func (a *Nop) Pos() token.Pos     { return a.P }

func (*Let) isAction()     {}
func (*Seq) isAction()     {}
func (*If) isAction()      {}
func (*Perform) isAction() {}
func (*Nop) isAction()     {}

// ---------------------------------------------------------------------------
// Declarations

// FuncDef is an SGL action function. The entry point is the function named
// "main" ("each script has a main action function called MAIN").
type FuncDef struct {
	P        token.Pos
	Name     string
	Params   []string    // first is the unit parameter, conventionally u
	ParamPos []token.Pos // position of each parameter; parallel to Params
	Body     Action
}

// AggFunc identifies the SQL aggregate of one aggregate output column.
type AggFunc uint8

// Aggregate functions. Count/Sum/Avg/Stddev are divisible (Definition 5.1)
// and indexable by the layered range tree; Min/Max/ArgMin/ArgMax use the
// sweep line; NearestKey/NearestDist are the spatial aggregates served by
// the kD-tree (Section 5.3.2).
const (
	Count AggFunc = iota
	Sum
	Avg
	Stddev
	Min
	Max
	ArgMin
	ArgMax
	NearestKey
	NearestDist
	NearestX
	NearestY
)

var aggNames = [...]string{"count", "sum", "avg", "stddev", "min", "max", "argmin", "argmax", "nearestkey", "nearestdist", "nearestx", "nearesty"}

func (f AggFunc) String() string { return aggNames[f] }

// AggFuncByName maps lowercase spellings to AggFunc.
var AggFuncByName = map[string]AggFunc{
	"count": Count, "sum": Sum, "avg": Avg, "stddev": Stddev,
	"min": Min, "max": Max, "argmin": ArgMin, "argmax": ArgMax,
	"nearestkey": NearestKey, "nearestdist": NearestDist,
	"nearestx": NearestX, "nearesty": NearestY,
}

// Divisible reports whether the aggregate satisfies Definition 5.1
// (agg(A\B) = f(agg(A), agg(B)) for B ⊆ A). Count, sum and all statistical
// moments are divisible; min and max are not.
func (f AggFunc) Divisible() bool {
	switch f {
	case Count, Sum, Avg, Stddev:
		return true
	default:
		return false
	}
}

// AggOutput is one output column of an aggregate definition:
// func(arg) as name. Count, NearestKey and NearestDist take no argument.
type AggOutput struct {
	P    token.Pos
	Func AggFunc
	Arg  Term   // nil for Count/NearestKey/NearestDist
	As   string // result field name
}

// AggDef is an aggregate function definition (Figure 4 / Eq. (5)):
//
//	aggregate Name(u, p…) := out1, out2, … over e where φ;
//
// Semantically: SELECT a1(h1(u,e,r)) …, ak(hk(u,e,r)) FROM E e WHERE φ(u,e,r).
type AggDef struct {
	P        token.Pos
	Name     string
	Params   []string    // first is the unit parameter
	ParamPos []token.Pos // position of each parameter; parallel to Params
	Outputs  []AggOutput
	Where    Cond // may be nil (no predicate: aggregate over all of E)
}

// SetClause assigns an effect attribute in an action definition.
type SetClause struct {
	P     token.Pos
	Attr  string
	Value Term
}

// ActDef is a built-in action definition (Figure 5 / Eq. (4)):
//
//	action Name(u, p…) := on e where φ set A1 = t1, …;
//
// Semantically: SELECT e.K, h1(u,e,r) AS A1, … FROM E e WHERE φ(u,e,r),
// with every unmentioned effect attribute left at its identity.
type ActDef struct {
	P        token.Pos
	Name     string
	Params   []string
	ParamPos []token.Pos // position of each parameter; parallel to Params
	Where    Cond        // may be nil (applies to every unit)
	Sets     []SetClause
}

// Script is a parsed SGL compilation unit.
type Script struct {
	Funcs []*FuncDef
	Aggs  []*AggDef
	Acts  []*ActDef
}

// Func returns the function with the given name, or nil.
func (s *Script) Func(name string) *FuncDef {
	for _, f := range s.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Agg returns the aggregate definition with the given name, or nil.
func (s *Script) Agg(name string) *AggDef {
	for _, a := range s.Aggs {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Act returns the action definition with the given name, or nil.
func (s *Script) Act(name string) *ActDef {
	for _, a := range s.Acts {
		if a.Name == name {
			return a
		}
	}
	return nil
}
