package interp

import (
	"math"

	"github.com/epicscale/sgl/internal/rng"
	"github.com/epicscale/sgl/internal/sgl/ast"
	"github.com/epicscale/sgl/internal/sgl/sem"
	"github.com/epicscale/sgl/internal/table"
)

// Naive is the paper's baseline aggregate query evaluator: every aggregate
// and every action target selection is a full O(n) scan of the environment,
// so a tick over n units costs O(n²). It exists both as the experimental
// baseline (Figure 10's "Naive Algorithm" curve) and as the semantics
// oracle the indexed evaluator is differentially tested against.
//
// A semantically checked program cannot fail at evaluation time; if it does,
// that is an internal invariant violation and Naive panics.
type Naive struct {
	prog *sem.Program
	env  *table.Table
	r    rng.TickSource
}

// NewNaive returns a naive provider bound to one tick's environment and
// random source.
func NewNaive(prog *sem.Program, env *table.Table, r rng.TickSource) *Naive {
	return &Naive{prog: prog, env: env, r: r}
}

var _ Provider = (*Naive)(nil)

// EvalAgg scans the environment once, folding every output column of the
// definition in a single pass.
func (p *Naive) EvalAgg(def *ast.AggDef, unit []float64, args []float64) []float64 {
	accs := NewAggAccs(def, p.prog.Schema, unit)
	dl := DefParams(def)
	for _, e := range p.env.Rows {
		ok, err := EvalDefCond(def.Where, dl, unit, args, e, p.prog, p.r)
		if err != nil {
			panic("interp: " + err.Error())
		}
		if !ok {
			continue
		}
		for _, acc := range accs {
			acc.Add(e, func(t ast.Term) float64 {
				v, err := evalDefTerm(t, dl, unit, args, e, p.prog, p.r)
				if err != nil {
					panic("interp: " + err.Error())
				}
				return v
			})
		}
	}
	out := make([]float64, len(accs))
	for i, acc := range accs {
		out[i] = acc.Result()
	}
	return out
}

// SelectTargets scans the environment, visiting each row that satisfies the
// action's WHERE clause.
func (p *Naive) SelectTargets(def *ast.ActDef, unit []float64, args []float64, visit func([]float64)) {
	dl := DefParams(def)
	for _, e := range p.env.Rows {
		ok, err := EvalDefCond(def.Where, dl, unit, args, e, p.prog, p.r)
		if err != nil {
			panic("interp: " + err.Error())
		}
		if ok {
			visit(e)
		}
	}
}

// ---------------------------------------------------------------------------
// Aggregate accumulators (shared by the naive provider and by the indexed
// evaluator's fallback scan path)

// AggAcc folds rows into one aggregate output column.
type AggAcc interface {
	// Add folds one qualifying row; eval evaluates the output's argument
	// term against that row.
	Add(row []float64, eval func(ast.Term) float64)
	// Result returns the final value (the documented empty-set identity if
	// no rows were added).
	Result() float64
}

// NewAggAccs builds one accumulator per output column of the definition,
// for the given probing unit.
func NewAggAccs(def *ast.AggDef, schema *table.Schema, unit []float64) []AggAcc {
	accs := make([]AggAcc, len(def.Outputs))
	for i, out := range def.Outputs {
		accs[i] = newAggAcc(out, schema, unit)
	}
	return accs
}

func newAggAcc(out ast.AggOutput, schema *table.Schema, unit []float64) AggAcc {
	switch out.Func {
	case ast.Count:
		return &countAcc{}
	case ast.Sum:
		return &sumAcc{arg: out.Arg}
	case ast.Avg:
		return &avgAcc{arg: out.Arg}
	case ast.Stddev:
		return &stddevAcc{arg: out.Arg}
	case ast.Min:
		return &extremumAcc{arg: out.Arg, min: true, best: math.Inf(1)}
	case ast.Max:
		return &extremumAcc{arg: out.Arg, min: false, best: math.Inf(-1)}
	case ast.ArgMin:
		return &argExtremumAcc{arg: out.Arg, min: true, best: math.Inf(1), bestKey: NoKey, keyCol: schema.KeyCol()}
	case ast.ArgMax:
		return &argExtremumAcc{arg: out.Arg, min: false, best: math.Inf(-1), bestKey: NoKey, keyCol: schema.KeyCol()}
	case ast.NearestKey, ast.NearestDist, ast.NearestX, ast.NearestY:
		return &nearestAcc{
			want:    out.Func,
			ux:      unit[schema.MustCol("posx")],
			uy:      unit[schema.MustCol("posy")],
			selfKey: int64(unit[schema.KeyCol()]),
			xCol:    schema.MustCol("posx"),
			yCol:    schema.MustCol("posy"),
			keyCol:  schema.KeyCol(),
			best:    math.Inf(1),
			bestKey: NoKey,
		}
	default:
		panic("interp: unknown aggregate function")
	}
}

type countAcc struct{ n float64 }

func (a *countAcc) Add([]float64, func(ast.Term) float64) { a.n++ }
func (a *countAcc) Result() float64                       { return a.n }

type sumAcc struct {
	arg ast.Term
	sum float64
}

func (a *sumAcc) Add(row []float64, eval func(ast.Term) float64) { a.sum += eval(a.arg) }
func (a *sumAcc) Result() float64                                { return a.sum }

type avgAcc struct {
	arg ast.Term
	sum float64
	n   float64
}

func (a *avgAcc) Add(row []float64, eval func(ast.Term) float64) {
	a.sum += eval(a.arg)
	a.n++
}

func (a *avgAcc) Result() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sum / a.n
}

type stddevAcc struct {
	arg        ast.Term
	sum, sumSq float64
	n          float64
}

func (a *stddevAcc) Add(row []float64, eval func(ast.Term) float64) {
	v := eval(a.arg)
	a.sum += v
	a.sumSq += v * v
	a.n++
}

func (a *stddevAcc) Result() float64 {
	if a.n == 0 {
		return 0
	}
	mean := a.sum / a.n
	variance := a.sumSq/a.n - mean*mean
	if variance < 0 {
		variance = 0 // numerical guard
	}
	return math.Sqrt(variance)
}

type extremumAcc struct {
	arg  ast.Term
	min  bool
	best float64
}

func (a *extremumAcc) Add(row []float64, eval func(ast.Term) float64) {
	v := eval(a.arg)
	if a.min && v < a.best || !a.min && v > a.best {
		a.best = v
	}
}

func (a *extremumAcc) Result() float64 { return a.best }

type argExtremumAcc struct {
	arg     ast.Term
	min     bool
	best    float64
	bestKey int64
	keyCol  int
}

func (a *argExtremumAcc) Add(row []float64, eval func(ast.Term) float64) {
	v := eval(a.arg)
	key := int64(row[a.keyCol])
	better := a.min && v < a.best || !a.min && v > a.best
	if v == a.best && a.bestKey != NoKey && key < a.bestKey {
		better = true // tie-break toward the smaller key for determinism
	}
	if a.bestKey == NoKey || better {
		a.best, a.bestKey = v, key
	}
}

func (a *argExtremumAcc) Result() float64 { return float64(a.bestKey) }

type nearestAcc struct {
	want         ast.AggFunc
	ux, uy       float64
	selfKey      int64
	xCol, yCol   int
	keyCol       int
	best         float64 // squared distance
	bestKey      int64
	bestX, bestY float64
}

func (a *nearestAcc) Add(row []float64, eval func(ast.Term) float64) {
	key := int64(row[a.keyCol])
	if key == a.selfKey {
		return // a unit is never its own nearest neighbour
	}
	dx, dy := row[a.xCol]-a.ux, row[a.yCol]-a.uy
	d := dx*dx + dy*dy
	if a.bestKey == NoKey || d < a.best || (d == a.best && key < a.bestKey) {
		a.best, a.bestKey = d, key
		a.bestX, a.bestY = row[a.xCol], row[a.yCol]
	}
}

func (a *nearestAcc) Result() float64 {
	switch a.want {
	case ast.NearestKey:
		return float64(a.bestKey)
	case ast.NearestX:
		if a.bestKey == NoKey {
			return 0
		}
		return a.bestX
	case ast.NearestY:
		if a.bestKey == NoKey {
			return 0
		}
		return a.bestY
	default: // NearestDist
		if a.bestKey == NoKey {
			return math.Inf(1)
		}
		return math.Sqrt(a.best)
	}
}

// RunTickNaive is a convenience that runs the full formal tick (Eq. 6) with
// the naive provider: used heavily in tests and by the sglc tool.
func RunTickNaive(prog *sem.Program, env *table.Table, r rng.TickSource) (*table.Table, error) {
	ev := New(prog, env, NewNaive(prog, env, r), r)
	return ev.Tick()
}
