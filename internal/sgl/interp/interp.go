// Package interp implements the denotational semantics of SGL (paper
// Section 4.3) as a direct tree-walking evaluator. It is the correctness
// oracle for the whole system: the compiled set-at-a-time plans and the
// indexed evaluator must produce byte-identical game states.
//
// The semantics functions:
//
//	[[(let v := t) f]]E,r(u) = [[f]]E,r(u, v: [[t]](u,E,r))
//	[[f1; f2]]E,r(u)        = [[f1]]E,r(u) ⊕ [[f2]]E,r(u)
//	[[if φ then f]]E,r(u)   = [[f]]E,r(u) if φ(u), else ∅
//	[[perform G]]E,r(u)     = [[g]]E,r(u)        (defined function g)
//	[[perform H]]E,r(u)     = h(u,E,r)           (built-in action h)
//
// and the whole tick, Eq. (6): tick(E, ρ) = main⊕(E) ⊕ E.
//
// Aggregate evaluation and action target selection are factored behind the
// Provider interface — the paper's "two 'pluggable' versions of our
// aggregate query evaluator". This package supplies the naive O(n)-scan
// Provider; package exec supplies the indexed one.
package interp

import (
	"fmt"
	"math"

	"github.com/epicscale/sgl/internal/rng"
	"github.com/epicscale/sgl/internal/sgl/ast"
	"github.com/epicscale/sgl/internal/sgl/sem"
	"github.com/epicscale/sgl/internal/table"
)

// Empty-set aggregate results. SQL would return NULL; SGL has no NULL, so
// the identities below apply and scripts guard with count > 0, exactly as
// the paper's Figure 3 does.
const (
	// NoKey is returned by argmin/argmax/nearestkey over an empty set.
	NoKey = -1
)

// Value is a runtime SGL value: a number or a record of named numbers.
type Value struct {
	Rec    bool
	Num    float64
	Fields []string
	Vals   []float64
}

// NumVal wraps a float64.
func NumVal(v float64) Value { return Value{Num: v} }

// RecVal builds a record value.
func RecVal(fields []string, vals []float64) Value {
	return Value{Rec: true, Fields: fields, Vals: vals}
}

// Field returns the named field of a record value.
func (v Value) Field(name string) (float64, bool) {
	for i, f := range v.Fields {
		if f == name {
			return v.Vals[i], true
		}
	}
	return 0, false
}

// Provider evaluates aggregate functions and selects action targets for one
// clock tick. Implementations are bound to a specific environment table and
// tick random source at construction.
type Provider interface {
	// EvalAgg returns the output column values of the aggregate definition
	// evaluated for the given unit row with the given parameter values
	// (excluding the unit parameter).
	EvalAgg(def *ast.AggDef, unit []float64, args []float64) []float64

	// SelectTargets visits every environment row satisfying the action
	// definition's WHERE clause for the given unit and parameters.
	SelectTargets(def *ast.ActDef, unit []float64, args []float64, visit func(target []float64))
}

// Evaluator runs SGL scripts for one tick. Construct with New per tick.
type Evaluator struct {
	prog *sem.Program
	prov Provider
	env  *table.Table
	r    rng.TickSource
}

// New returns an evaluator for the given program over env, using prov for
// aggregate/target evaluation and r for Random.
func New(prog *sem.Program, env *table.Table, prov Provider, r rng.TickSource) *Evaluator {
	return &Evaluator{prog: prog, prov: prov, env: env, r: r}
}

// scope is the evaluation environment of an action function body.
type scope struct {
	unitName string
	unit     []float64
	vars     map[string]Value
}

func (s *scope) child() *scope {
	c := &scope{unitName: s.unitName, unit: s.unit, vars: make(map[string]Value, len(s.vars)+1)}
	for k, v := range s.vars {
		c.vars[k] = v
	}
	return c
}

// RunUnit evaluates main for one unit, emitting every effect row the unit's
// action produces. Effect rows have the environment schema: const columns
// copied from the affected row, set effect columns from the action's SET
// clauses, all other effect columns at their fold identity.
func (e *Evaluator) RunUnit(unit []float64, emit func(row []float64)) error {
	sc := &scope{unitName: e.prog.Main.Params[0], unit: unit, vars: map[string]Value{}}
	return e.runAction(e.prog.Main.Body, sc, emit)
}

// Tick computes the full semantics of Eq. (6): the ⊕-combination of every
// unit's effect table with the environment. The caller initializes the
// environment's effect columns (the game-mechanics defaults) beforehand.
func (e *Evaluator) Tick() (*table.Table, error) {
	effects := table.New(e.env.Schema, e.env.Len())
	for _, unit := range e.env.Rows {
		if err := e.RunUnit(unit, func(row []float64) { effects.Append(row) }); err != nil {
			return nil, err
		}
	}
	return effects.Union(e.env).Combine(), nil
}

func (e *Evaluator) runAction(a ast.Action, sc *scope, emit func([]float64)) error {
	switch n := a.(type) {
	case *ast.Nop:
		return nil
	case *ast.Seq:
		for _, sub := range n.Acts {
			if err := e.runAction(sub, sc, emit); err != nil {
				return err
			}
		}
		return nil
	case *ast.If:
		ok, err := e.evalCond(n.Cond, sc)
		if err != nil {
			return err
		}
		if ok {
			return e.runAction(n.Then, sc, emit)
		}
		if n.Else != nil {
			return e.runAction(n.Else, sc, emit)
		}
		return nil
	case *ast.Let:
		v, err := e.evalTerm(n.Value, sc)
		if err != nil {
			return err
		}
		inner := sc.child()
		inner.vars[n.Name] = v
		return e.runAction(n.Body, inner, emit)
	case *ast.Perform:
		return e.runPerform(n, sc, emit)
	default:
		return fmt.Errorf("interp: unknown action node %T", a)
	}
}

func (e *Evaluator) runPerform(n *ast.Perform, sc *scope, emit func([]float64)) error {
	target := e.prog.Performs[n]
	if target == nil {
		return fmt.Errorf("interp: unresolved perform %q at %s", n.Name, n.P)
	}
	if target.Func != nil {
		// Defined function: bind parameters and evaluate the body.
		inner := &scope{unitName: target.Func.Params[0], unit: sc.unit, vars: map[string]Value{}}
		for i, arg := range target.Args {
			v, err := e.evalTerm(arg, sc)
			if err != nil {
				return err
			}
			inner.vars[target.Func.Params[i+1]] = v
		}
		return e.runAction(target.Func.Body, inner, emit)
	}

	// Built-in action: evaluate expanded numeric arguments, select targets,
	// build one effect row per target.
	def := target.Act
	args := make([]float64, len(target.Args))
	for i, arg := range target.Args {
		v, err := e.evalTerm(arg, sc)
		if err != nil {
			return err
		}
		if v.Rec {
			return fmt.Errorf("interp: internal error: unexpanded record argument at %s", arg.Pos())
		}
		args[i] = v.Num
	}
	var applyErr error
	e.prov.SelectTargets(def, sc.unit, args, func(tgt []float64) {
		if applyErr != nil {
			return
		}
		row, err := e.BuildEffectRow(def, sc.unit, args, tgt)
		if err != nil {
			applyErr = err
			return
		}
		emit(row)
	})
	return applyErr
}

// BuildEffectRow materializes the effect row an action produces for one
// target: const columns from the target, SET columns evaluated, all other
// effect columns at their fold identities so ⊕ ignores them.
func (e *Evaluator) BuildEffectRow(def *ast.ActDef, unit, args, target []float64) ([]float64, error) {
	s := e.env.Schema
	row := make([]float64, s.NumAttrs())
	for _, c := range s.ConstCols() {
		row[c] = target[c]
	}
	for _, c := range s.EffectCols() {
		row[c] = s.Attr(c).Kind.Identity()
	}
	dl := DefParams(def)
	for _, set := range def.Sets {
		v, err := e.EvalDefTerm(set.Value, dl, unit, args, target)
		if err != nil {
			return nil, err
		}
		row[s.MustCol(set.Attr)] = v
	}
	return row, nil
}

// ---------------------------------------------------------------------------
// Script-context terms and conditions

func (e *Evaluator) evalCond(c ast.Cond, sc *scope) (bool, error) {
	switch n := c.(type) {
	case *ast.BoolLit:
		return n.Val, nil
	case *ast.Not:
		v, err := e.evalCond(n.X, sc)
		return !v, err
	case *ast.And:
		x, err := e.evalCond(n.X, sc)
		if err != nil || !x {
			return false, err
		}
		return e.evalCond(n.Y, sc)
	case *ast.Or:
		x, err := e.evalCond(n.X, sc)
		if err != nil || x {
			return x, err
		}
		return e.evalCond(n.Y, sc)
	case *ast.Compare:
		x, err := e.evalTerm(n.X, sc)
		if err != nil {
			return false, err
		}
		y, err := e.evalTerm(n.Y, sc)
		if err != nil {
			return false, err
		}
		return compare(n.Op, x.Num, y.Num), nil
	default:
		return false, fmt.Errorf("interp: unknown condition node %T", c)
	}
}

func compare(op ast.CmpOp, x, y float64) bool {
	switch op {
	case ast.Eq:
		return x == y
	case ast.Ne:
		return x != y
	case ast.Lt:
		return x < y
	case ast.Le:
		return x <= y
	case ast.Gt:
		return x > y
	default:
		return x >= y
	}
}

func (e *Evaluator) evalTerm(t ast.Term, sc *scope) (Value, error) {
	switch n := t.(type) {
	case *ast.NumLit:
		return NumVal(n.Val), nil

	case *ast.ConstRef:
		return NumVal(e.prog.Consts[n.Name]), nil

	case *ast.VarRef:
		if n.Name == sc.unitName {
			return Value{}, fmt.Errorf("interp: unit value used as a term at %s", n.P)
		}
		v, ok := sc.vars[n.Name]
		if !ok {
			return Value{}, fmt.Errorf("interp: undefined name %q at %s", n.Name, n.P)
		}
		return v, nil

	case *ast.FieldRef:
		if n.Base == sc.unitName {
			return NumVal(sc.unit[e.prog.Schema.MustCol(n.Field)]), nil
		}
		v, ok := sc.vars[n.Base]
		if !ok {
			return Value{}, fmt.Errorf("interp: undefined name %q at %s", n.Base, n.P)
		}
		f, ok := v.Field(n.Field)
		if !ok {
			return Value{}, fmt.Errorf("interp: record %q has no field %q at %s", n.Base, n.Field, n.P)
		}
		return NumVal(f), nil

	case *ast.Field:
		v, err := e.evalTerm(n.X, sc)
		if err != nil {
			return Value{}, err
		}
		f, ok := v.Field(n.Field)
		if !ok {
			return Value{}, fmt.Errorf("interp: no field %q at %s", n.Field, n.P)
		}
		return NumVal(f), nil

	case *ast.Pair:
		x, err := e.evalTerm(n.X, sc)
		if err != nil {
			return Value{}, err
		}
		y, err := e.evalTerm(n.Y, sc)
		if err != nil {
			return Value{}, err
		}
		return RecVal([]string{"x", "y"}, []float64{x.Num, y.Num}), nil

	case *ast.Neg:
		v, err := e.evalTerm(n.X, sc)
		if err != nil {
			return Value{}, err
		}
		if v.Rec {
			out := make([]float64, len(v.Vals))
			for i, x := range v.Vals {
				out[i] = -x
			}
			return RecVal(v.Fields, out), nil
		}
		return NumVal(-v.Num), nil

	case *ast.Binary:
		x, err := e.evalTerm(n.X, sc)
		if err != nil {
			return Value{}, err
		}
		y, err := e.evalTerm(n.Y, sc)
		if err != nil {
			return Value{}, err
		}
		return binop(n.Op, x, y)

	case *ast.Call:
		return e.evalCall(n, sc)
	}
	return Value{}, fmt.Errorf("interp: unknown term node %T", t)
}

func binop(op ast.BinOp, x, y Value) (Value, error) {
	apply := func(a, b float64) float64 {
		switch op {
		case ast.Add:
			return a + b
		case ast.Sub:
			return a - b
		case ast.Mul:
			return a * b
		case ast.Div:
			return a / b
		default: // Mod: truncated like C, on the integer parts
			return math.Trunc(math.Mod(a, b))
		}
	}
	switch {
	case !x.Rec && !y.Rec:
		return NumVal(apply(x.Num, y.Num)), nil
	case x.Rec && y.Rec:
		out := make([]float64, len(x.Vals))
		for i := range out {
			out[i] = apply(x.Vals[i], y.Vals[i])
		}
		return RecVal(x.Fields, out), nil
	case x.Rec:
		out := make([]float64, len(x.Vals))
		for i := range out {
			out[i] = apply(x.Vals[i], y.Num)
		}
		return RecVal(x.Fields, out), nil
	default:
		out := make([]float64, len(y.Vals))
		for i := range out {
			out[i] = apply(x.Num, y.Vals[i])
		}
		return RecVal(y.Fields, out), nil
	}
}

func (e *Evaluator) evalCall(n *ast.Call, sc *scope) (Value, error) {
	if n.Name == "Random" || n.Name == "random" {
		seed, err := e.evalTerm(n.Args[0], sc)
		if err != nil {
			return Value{}, err
		}
		key := int64(sc.unit[e.prog.Schema.KeyCol()])
		return NumVal(float64(e.r.Random(key, int64(seed.Num)))), nil
	}
	switch n.Name {
	case "abs", "sqrt", "floor":
		v, err := e.evalTerm(n.Args[0], sc)
		if err != nil {
			return Value{}, err
		}
		switch n.Name {
		case "abs":
			return NumVal(math.Abs(v.Num)), nil
		case "sqrt":
			return NumVal(math.Sqrt(v.Num)), nil
		default:
			return NumVal(math.Floor(v.Num)), nil
		}
	case "min", "max":
		a, err := e.evalTerm(n.Args[0], sc)
		if err != nil {
			return Value{}, err
		}
		b, err := e.evalTerm(n.Args[1], sc)
		if err != nil {
			return Value{}, err
		}
		if n.Name == "min" {
			return NumVal(math.Min(a.Num, b.Num)), nil
		}
		return NumVal(math.Max(a.Num, b.Num)), nil
	}

	def := e.prog.AggCalls[n]
	if def == nil {
		return Value{}, fmt.Errorf("interp: unresolved call %q at %s", n.Name, n.P)
	}
	args := make([]float64, len(n.Args)-1)
	for i, a := range n.Args[1:] {
		v, err := e.evalTerm(a, sc)
		if err != nil {
			return Value{}, err
		}
		args[i] = v.Num
	}
	outs := e.prov.EvalAgg(def, sc.unit, args)
	if len(def.Outputs) == 1 {
		return NumVal(outs[0]), nil
	}
	fields := make([]string, len(def.Outputs))
	for i, o := range def.Outputs {
		fields[i] = o.As
	}
	return RecVal(fields, outs), nil
}

// ---------------------------------------------------------------------------
// Definition-context evaluation (shared with the providers)

// EvalDefTerm evaluates a term from an aggregate or action definition with
// u bound to unit, e bound to target, and the definition's parameters bound
// to args. Random(i) inside a definition is attributed to the *target* row,
// matching the paper's Random(e, 1) in Figure 5, so both evaluators roll
// the same dice no matter which unit triggered the effect.
func (e *Evaluator) EvalDefTerm(t ast.Term, def DefLike, unit, args, target []float64) (float64, error) {
	return evalDefTerm(t, def, unit, args, target, e.prog, e.r)
}

// DefLike abstracts AggDef and ActDef for shared definition evaluation.
type DefLike interface {
	ParamNames() []string
}

// ParamNames implementations live here so ast stays dependency-free.

type aggDefParams struct{ d *ast.AggDef }
type actDefParams struct{ d *ast.ActDef }

func (a aggDefParams) ParamNames() []string { return a.d.Params }
func (a actDefParams) ParamNames() []string { return a.d.Params }

// DefParams adapts a definition to defLike.
func DefParams(def any) DefLike {
	switch d := def.(type) {
	case *ast.AggDef:
		return aggDefParams{d}
	case *ast.ActDef:
		return actDefParams{d}
	default:
		panic("interp: DefParams on non-definition")
	}
}

// EvalDefTermWith evaluates a definition term with explicit program and
// random source, for providers outside this package.
func EvalDefTermWith(t ast.Term, def DefLike, unit, args, target []float64, prog *sem.Program, r rng.TickSource) (float64, error) {
	return evalDefTerm(t, def, unit, args, target, prog, r)
}

func evalDefTerm(t ast.Term, def DefLike, unit, args, target []float64, prog *sem.Program, r rng.TickSource) (float64, error) {
	params := def.ParamNames()
	var eval func(t ast.Term) (float64, error)
	eval = func(t ast.Term) (float64, error) {
		switch n := t.(type) {
		case *ast.NumLit:
			return n.Val, nil
		case *ast.ConstRef:
			return prog.Consts[n.Name], nil
		case *ast.VarRef:
			for i, p := range params[1:] {
				if p == n.Name {
					return args[i], nil
				}
			}
			return 0, fmt.Errorf("interp: undefined name %q at %s", n.Name, n.P)
		case *ast.FieldRef:
			col := prog.Schema.MustCol(n.Field)
			switch n.Base {
			case "e":
				return target[col], nil
			case params[0]:
				return unit[col], nil
			}
			return 0, fmt.Errorf("interp: unknown row variable %q at %s", n.Base, n.P)
		case *ast.Neg:
			v, err := eval(n.X)
			return -v, err
		case *ast.Binary:
			x, err := eval(n.X)
			if err != nil {
				return 0, err
			}
			y, err := eval(n.Y)
			if err != nil {
				return 0, err
			}
			v, err := binop(n.Op, NumVal(x), NumVal(y))
			return v.Num, err
		case *ast.Call:
			switch n.Name {
			case "Random", "random":
				seed, err := eval(n.Args[0])
				if err != nil {
					return 0, err
				}
				key := int64(target[prog.Schema.KeyCol()])
				return float64(r.Random(key, int64(seed))), nil
			case "abs", "sqrt", "floor":
				v, err := eval(n.Args[0])
				if err != nil {
					return 0, err
				}
				switch n.Name {
				case "abs":
					return math.Abs(v), nil
				case "sqrt":
					return math.Sqrt(v), nil
				default:
					return math.Floor(v), nil
				}
			case "min", "max":
				a, err := eval(n.Args[0])
				if err != nil {
					return 0, err
				}
				b, err := eval(n.Args[1])
				if err != nil {
					return 0, err
				}
				if n.Name == "min" {
					return math.Min(a, b), nil
				}
				return math.Max(a, b), nil
			}
			return 0, fmt.Errorf("interp: call %q not allowed in definitions at %s", n.Name, n.P)
		}
		return 0, fmt.Errorf("interp: term %T not allowed in definitions", t)
	}
	return eval(t)
}

// EvalDefCond evaluates a definition WHERE clause for (unit, target, args).
func EvalDefCond(c ast.Cond, def DefLike, unit, args, target []float64, prog *sem.Program, r rng.TickSource) (bool, error) {
	if c == nil {
		return true, nil
	}
	switch n := c.(type) {
	case *ast.BoolLit:
		return n.Val, nil
	case *ast.Not:
		v, err := EvalDefCond(n.X, def, unit, args, target, prog, r)
		return !v, err
	case *ast.And:
		x, err := EvalDefCond(n.X, def, unit, args, target, prog, r)
		if err != nil || !x {
			return false, err
		}
		return EvalDefCond(n.Y, def, unit, args, target, prog, r)
	case *ast.Or:
		x, err := EvalDefCond(n.X, def, unit, args, target, prog, r)
		if err != nil || x {
			return x, err
		}
		return EvalDefCond(n.Y, def, unit, args, target, prog, r)
	case *ast.Compare:
		x, err := evalDefTerm(n.X, def, unit, args, target, prog, r)
		if err != nil {
			return false, err
		}
		y, err := evalDefTerm(n.Y, def, unit, args, target, prog, r)
		if err != nil {
			return false, err
		}
		return compare(n.Op, x, y), nil
	}
	return false, fmt.Errorf("interp: unknown condition node %T", c)
}
