package interp

import (
	"math"
	"testing"

	"github.com/epicscale/sgl/internal/rng"
	"github.com/epicscale/sgl/internal/sgl/parser"
	"github.com/epicscale/sgl/internal/sgl/sem"
	"github.com/epicscale/sgl/internal/table"
)

func testSchema(t testing.TB) *table.Schema {
	t.Helper()
	return table.MustSchema(
		table.Attr{Name: "key", Kind: table.Const},
		table.Attr{Name: "player", Kind: table.Const},
		table.Attr{Name: "posx", Kind: table.Const},
		table.Attr{Name: "posy", Kind: table.Const},
		table.Attr{Name: "health", Kind: table.Const},
		table.Attr{Name: "cooldown", Kind: table.Const},
		table.Attr{Name: "range", Kind: table.Const},
		table.Attr{Name: "morale", Kind: table.Const},
		table.Attr{Name: "weaponused", Kind: table.Max},
		table.Attr{Name: "movevect_x", Kind: table.Sum},
		table.Attr{Name: "movevect_y", Kind: table.Sum},
		table.Attr{Name: "damage", Kind: table.Sum},
		table.Attr{Name: "inaura", Kind: table.Max},
	)
}

var testConsts = map[string]float64{
	"_ARROW_DAMAGE": 6,
	"_ARMOR":        2,
	"_HEAL_AURA":    4,
	"_HEALER_RANGE": 10,
}

// unit builds a row: key, player, posx, posy, health, cooldown, range,
// morale, then zeroed effect columns.
func unit(key, player, x, y, health, cooldown, rng_, morale float64) []float64 {
	return []float64{key, player, x, y, health, cooldown, rng_, morale, 0, 0, 0, 0, 0}
}

func compile(t testing.TB, src string) *sem.Program {
	t.Helper()
	s, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := sem.Check(s, testSchema(t), testConsts)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return p
}

func makeEnv(t testing.TB, rows ...[]float64) *table.Table {
	t.Helper()
	env := table.New(testSchema(t), len(rows))
	for _, r := range rows {
		env.Append(r)
	}
	return env
}

func tick() rng.TickSource { return rng.New(7).Tick(1) }

const combatScript = `
aggregate CountEnemiesInRange(u, range) :=
  count(*)
  over e where e.posx >= u.posx - range and e.posx <= u.posx + range
    and e.posy >= u.posy - range and e.posy <= u.posy + range
    and e.player <> u.player;

aggregate CentroidOfEnemies(u, range) :=
  avg(e.posx) as x, avg(e.posy) as y
  over e where e.posx >= u.posx - range and e.posx <= u.posx + range
    and e.posy >= u.posy - range and e.posy <= u.posy + range
    and e.player <> u.player;

aggregate NearestEnemy(u) :=
  nearestkey() as key, nearestdist() as dist
  over e where e.player <> u.player;

aggregate WeakestEnemyInRange(u, range) :=
  argmin(e.health)
  over e where e.posx >= u.posx - range and e.posx <= u.posx + range
    and e.posy >= u.posy - range and e.posy <= u.posy + range
    and e.player <> u.player;

action FireAt(u, target_key) :=
  on e where e.key = target_key
  set damage = _ARROW_DAMAGE - _ARMOR;

action MarkFired(u) :=
  on e where e.key = u.key
  set weaponused = 1;

action MoveInDirection(u, dx, dy) :=
  on e where e.key = u.key
  set movevect_x = dx, movevect_y = dy;

action Heal(u) :=
  on e where u.player = e.player
    and e.posx >= u.posx - _HEALER_RANGE and e.posx <= u.posx + _HEALER_RANGE
    and e.posy >= u.posy - _HEALER_RANGE and e.posy <= u.posy + _HEALER_RANGE
  set inaura = _HEAL_AURA;

function main(u) {
  (let c = CountEnemiesInRange(u, u.range))
  (let away = (u.posx, u.posy) - CentroidOfEnemies(u, u.range)) {
    if c > u.morale then
      perform MoveInDirection(u, away);
    else if c > 0 and u.cooldown = 0 then
      (let target = WeakestEnemyInRange(u, u.range)) {
        perform FireAt(u, target);
        perform MarkFired(u)
      }
  }
}
`

func TestRunUnitFires(t *testing.T) {
	prog := compile(t, combatScript)
	// Unit 1 (player 0) sees one enemy (key 2) in range; morale high.
	env := makeEnv(t,
		unit(1, 0, 10, 10, 20, 0, 5, 3),
		unit(2, 1, 12, 10, 15, 0, 5, 3),
	)
	ev := New(prog, env, NewNaive(prog, env, tick()), tick())
	var rows [][]float64
	if err := ev.RunUnit(env.Rows[0], func(r []float64) { rows = append(rows, append([]float64(nil), r...)) }); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("effect rows = %d, want 2 (FireAt + MarkFired)", len(rows))
	}
	s := env.Schema
	var sawDamage, sawMark bool
	for _, r := range rows {
		switch int64(r[s.KeyCol()]) {
		case 2:
			if r[s.MustCol("damage")] != 4 {
				t.Errorf("damage = %v, want 4", r[s.MustCol("damage")])
			}
			sawDamage = true
		case 1:
			if r[s.MustCol("weaponused")] != 1 {
				t.Errorf("weaponused = %v, want 1", r[s.MustCol("weaponused")])
			}
			sawMark = true
		}
	}
	if !sawDamage || !sawMark {
		t.Fatalf("missing effects: damage=%v mark=%v", sawDamage, sawMark)
	}
}

func TestRunUnitFlees(t *testing.T) {
	prog := compile(t, combatScript)
	// Three enemies in range, morale 2 → flee. Enemies centered at x=13.
	env := makeEnv(t,
		unit(1, 0, 10, 10, 20, 0, 5, 2),
		unit(2, 1, 12, 10, 15, 0, 5, 3),
		unit(3, 1, 13, 10, 15, 0, 5, 3),
		unit(4, 1, 14, 10, 15, 0, 5, 3),
	)
	ev := New(prog, env, NewNaive(prog, env, tick()), tick())
	var rows [][]float64
	if err := ev.RunUnit(env.Rows[0], func(r []float64) { rows = append(rows, append([]float64(nil), r...)) }); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("effect rows = %d, want 1 (move)", len(rows))
	}
	s := env.Schema
	// away = (10,10) - centroid(13,10) = (-3, 0).
	if got := rows[0][s.MustCol("movevect_x")]; got != -3 {
		t.Errorf("movevect_x = %v, want -3", got)
	}
	if got := rows[0][s.MustCol("movevect_y")]; got != 0 {
		t.Errorf("movevect_y = %v, want 0", got)
	}
	// Unset effect columns must sit at their identities.
	if got := rows[0][s.MustCol("damage")]; got != 0 {
		t.Errorf("damage identity = %v, want 0", got)
	}
	if got := rows[0][s.MustCol("weaponused")]; !math.IsInf(got, -1) {
		t.Errorf("weaponused identity = %v, want -Inf", got)
	}
}

func TestRunUnitIdlesOnCooldown(t *testing.T) {
	prog := compile(t, combatScript)
	env := makeEnv(t,
		unit(1, 0, 10, 10, 20, 3, 5, 3), // cooldown 3 → no action
		unit(2, 1, 12, 10, 15, 0, 5, 3),
	)
	ev := New(prog, env, NewNaive(prog, env, tick()), tick())
	count := 0
	if err := ev.RunUnit(env.Rows[0], func([]float64) { count++ }); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Fatalf("cooldown unit emitted %d effects, want 0", count)
	}
}

func TestTickCombinesEffects(t *testing.T) {
	prog := compile(t, combatScript)
	// Two archers (1,3) both in range of enemy 2 only; enemy 2 is the
	// weakest (and only) target: damage must stack to 8.
	env := makeEnv(t,
		unit(1, 0, 10, 10, 20, 0, 5, 9),
		unit(3, 0, 11, 10, 20, 0, 5, 9),
		unit(2, 1, 12, 10, 15, 99, 5, 9), // enemy on cooldown: acts empty
	)
	ev := New(prog, env, NewNaive(prog, env, tick()), tick())
	out, err := ev.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Fatalf("tick rows = %d, want 3", out.Len())
	}
	s := env.Schema
	target := out.Lookup(2)
	if target == nil {
		t.Fatal("target row missing")
	}
	if got := target[s.MustCol("damage")]; got != 8 {
		t.Fatalf("stacked damage = %v, want 8 (4+4)", got)
	}
}

func TestHealAuraNonstackable(t *testing.T) {
	src := combatScript + `
function healerMain(u) { perform Heal(u) }`
	prog := compile(t, src)
	env := makeEnv(t,
		unit(1, 0, 10, 10, 20, 0, 5, 9),
		unit(2, 0, 12, 10, 15, 0, 5, 9),
	)
	ev := New(prog, env, NewNaive(prog, env, tick()), tick())
	// Apply Heal from both units directly (bypassing main): two overlapping
	// auras on each friendly unit must max to 4, not sum to 8.
	effects := table.New(env.Schema, 4)
	healDef := prog.Script.Act("Heal")
	for _, u := range env.Rows {
		p := NewNaive(prog, env, tick())
		p.SelectTargets(healDef, u, nil, func(tgt []float64) {
			row, err := ev.BuildEffectRow(healDef, u, nil, tgt)
			if err != nil {
				t.Fatal(err)
			}
			effects.Append(row)
		})
	}
	if effects.Len() != 4 {
		t.Fatalf("aura rows = %d, want 4 (2 healers × 2 targets)", effects.Len())
	}
	combined := effects.Union(env).Combine()
	s := env.Schema
	for _, key := range []int64{1, 2} {
		if got := combined.Lookup(key)[s.MustCol("inaura")]; got != 4 {
			t.Fatalf("inaura key %d = %v, want 4 (nonstackable max)", key, got)
		}
	}
}

func TestNearestAggregates(t *testing.T) {
	prog := compile(t, combatScript)
	env := makeEnv(t,
		unit(1, 0, 0, 0, 20, 0, 5, 3),
		unit(2, 1, 3, 4, 15, 0, 5, 3), // dist 5
		unit(3, 1, 6, 8, 15, 0, 5, 3), // dist 10
	)
	p := NewNaive(prog, env, tick())
	def := prog.Script.Agg("NearestEnemy")
	out := p.EvalAgg(def, env.Rows[0], nil)
	if out[0] != 2 {
		t.Fatalf("nearestkey = %v, want 2", out[0])
	}
	if out[1] != 5 {
		t.Fatalf("nearestdist = %v, want 5", out[1])
	}
}

func TestNearestExcludesSelf(t *testing.T) {
	prog := compile(t, `
aggregate NearestAny(u) := nearestkey() as key, nearestdist() as dist over e;
function main(u) {}`)
	env := makeEnv(t,
		unit(1, 0, 0, 0, 20, 0, 5, 3),
		unit(2, 0, 3, 4, 15, 0, 5, 3),
	)
	p := NewNaive(prog, env, tick())
	out := p.EvalAgg(prog.Script.Agg("NearestAny"), env.Rows[0], nil)
	if out[0] != 2 {
		t.Fatalf("nearest should exclude self, got key %v", out[0])
	}
}

func TestEmptySetIdentities(t *testing.T) {
	prog := compile(t, `
aggregate Stats(u) :=
  count(*) as n, sum(e.health) as s, avg(e.health) as a,
  stddev(e.health) as sd, min(e.health) as mn, max(e.health) as mx,
  argmin(e.health) as am, nearestkey() as nk, nearestdist() as nd
  over e where e.player <> u.player;
function main(u) {}`)
	env := makeEnv(t, unit(1, 0, 0, 0, 20, 0, 5, 3)) // no enemies at all
	p := NewNaive(prog, env, tick())
	out := p.EvalAgg(prog.Script.Agg("Stats"), env.Rows[0], nil)
	if out[0] != 0 || out[1] != 0 || out[2] != 0 || out[3] != 0 {
		t.Fatalf("count/sum/avg/stddev over empty = %v", out[:4])
	}
	if !math.IsInf(out[4], 1) || !math.IsInf(out[5], -1) {
		t.Fatalf("min/max over empty = %v %v", out[4], out[5])
	}
	if out[6] != NoKey || out[7] != NoKey {
		t.Fatalf("argmin/nearestkey over empty = %v %v", out[6], out[7])
	}
	if !math.IsInf(out[8], 1) {
		t.Fatalf("nearestdist over empty = %v", out[8])
	}
}

func TestStatisticalAggregates(t *testing.T) {
	prog := compile(t, `
aggregate Stats(u) :=
  count(*) as n, sum(e.health) as s, avg(e.health) as a, stddev(e.health) as sd
  over e where e.player <> u.player;
function main(u) {}`)
	env := makeEnv(t,
		unit(1, 0, 0, 0, 20, 0, 5, 3),
		unit(2, 1, 1, 0, 10, 0, 5, 3),
		unit(3, 1, 2, 0, 20, 0, 5, 3),
		unit(4, 1, 3, 0, 30, 0, 5, 3),
	)
	p := NewNaive(prog, env, tick())
	out := p.EvalAgg(prog.Script.Agg("Stats"), env.Rows[0], nil)
	if out[0] != 3 || out[1] != 60 || out[2] != 20 {
		t.Fatalf("count/sum/avg = %v", out[:3])
	}
	want := math.Sqrt(200.0 / 3.0) // population stddev of {10,20,30}
	if math.Abs(out[3]-want) > 1e-9 {
		t.Fatalf("stddev = %v, want %v", out[3], want)
	}
}

func TestArgMinTieBreak(t *testing.T) {
	prog := compile(t, `
aggregate Weakest(u) := argmin(e.health) over e where e.player <> u.player;
function main(u) {}`)
	env := makeEnv(t,
		unit(1, 0, 0, 0, 20, 0, 5, 3),
		unit(5, 1, 1, 0, 10, 0, 5, 3),
		unit(3, 1, 2, 0, 10, 0, 5, 3), // tie on health: smaller key wins
	)
	p := NewNaive(prog, env, tick())
	out := p.EvalAgg(prog.Script.Agg("Weakest"), env.Rows[0], nil)
	if out[0] != 3 {
		t.Fatalf("argmin tie = %v, want 3", out[0])
	}
}

func TestRandomDeterministicWithinTick(t *testing.T) {
	prog := compile(t, `
action Jitter(u) := on e where e.key = u.key set movevect_x = Random(1) % 5;
function main(u) { perform Jitter(u) }`)
	env := makeEnv(t, unit(1, 0, 0, 0, 20, 0, 5, 3))
	run := func() float64 {
		ev := New(prog, env, NewNaive(prog, env, tick()), tick())
		var v float64
		if err := ev.RunUnit(env.Rows[0], func(r []float64) { v = r[env.Schema.MustCol("movevect_x")] }); err != nil {
			t.Fatal(err)
		}
		return v
	}
	if run() != run() {
		t.Fatal("Random not stable within a tick")
	}
	// Different tick → (almost surely) different value; check a few ticks.
	diff := false
	for tk := int64(2); tk < 10 && !diff; tk++ {
		r2 := rng.New(7).Tick(tk)
		ev := New(prog, env, NewNaive(prog, env, r2), r2)
		var v float64
		if err := ev.RunUnit(env.Rows[0], func(r []float64) { v = r[env.Schema.MustCol("movevect_x")] }); err != nil {
			t.Fatal(err)
		}
		if v != run() {
			diff = true
		}
	}
	if !diff {
		t.Fatal("Random identical across 8 ticks; ρ not varying")
	}
}

func TestScriptFunctionInlining(t *testing.T) {
	prog := compile(t, `
action Move(u, x, y) := on e where e.key = u.key set movevect_x = x, movevect_y = y;
function go(w, v) { perform Move(w, v) }
function main(u) { perform go(u, (3, 4)) }`)
	env := makeEnv(t, unit(1, 0, 0, 0, 20, 0, 5, 3))
	ev := New(prog, env, NewNaive(prog, env, tick()), tick())
	var row []float64
	if err := ev.RunUnit(env.Rows[0], func(r []float64) { row = append([]float64(nil), r...) }); err != nil {
		t.Fatal(err)
	}
	s := env.Schema
	if row == nil || row[s.MustCol("movevect_x")] != 3 || row[s.MustCol("movevect_y")] != 4 {
		t.Fatalf("inlined call wrong: %v", row)
	}
}

func TestScalarBuiltinsEvaluate(t *testing.T) {
	prog := compile(t, `
action Apply(u, v) := on e where e.key = u.key set movevect_x = v;
function main(u) {
  (let a = abs(0 - 3))
  (let b = min(a, max(2, 1)) + sqrt(16) + floor(2.9))
  perform Apply(u, b)
}`)
	env := makeEnv(t, unit(1, 0, 0, 0, 20, 0, 5, 3))
	ev := New(prog, env, NewNaive(prog, env, tick()), tick())
	var got float64
	if err := ev.RunUnit(env.Rows[0], func(r []float64) { got = r[env.Schema.MustCol("movevect_x")] }); err != nil {
		t.Fatal(err)
	}
	if got != 2+4+2 {
		t.Fatalf("builtins = %v, want 8", got)
	}
}

func TestModuloTruncates(t *testing.T) {
	prog := compile(t, `
action Apply(u, v) := on e where e.key = u.key set movevect_x = v;
function main(u) { perform Apply(u, 7 % 3) }`)
	env := makeEnv(t, unit(1, 0, 0, 0, 20, 0, 5, 3))
	ev := New(prog, env, NewNaive(prog, env, tick()), tick())
	var got float64
	if err := ev.RunUnit(env.Rows[0], func(r []float64) { got = r[env.Schema.MustCol("movevect_x")] }); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("7 %% 3 = %v, want 1", got)
	}
}

func TestBoundaryInclusiveRange(t *testing.T) {
	prog := compile(t, combatScript)
	// Enemy exactly at range boundary (Chebyshev distance = range).
	env := makeEnv(t,
		unit(1, 0, 10, 10, 20, 0, 5, 0),
		unit(2, 1, 15, 10, 15, 0, 5, 0),
	)
	p := NewNaive(prog, env, tick())
	out := p.EvalAgg(prog.Script.Agg("CountEnemiesInRange"), env.Rows[0], []float64{5})
	if out[0] != 1 {
		t.Fatalf("boundary enemy not counted: %v", out[0])
	}
}

func TestTickIdempotentForIdleArmy(t *testing.T) {
	prog := compile(t, combatScript)
	// All units on cooldown: tick(E) must equal E exactly.
	env := makeEnv(t,
		unit(1, 0, 10, 10, 20, 5, 5, 3),
		unit(2, 1, 12, 10, 15, 5, 5, 3),
	)
	ev := New(prog, env, NewNaive(prog, env, tick()), tick())
	out, err := ev.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if !out.EqualContents(env) {
		t.Fatal("idle tick changed the environment")
	}
}

func TestValueHelpers(t *testing.T) {
	v := RecVal([]string{"x", "y"}, []float64{1, 2})
	if f, ok := v.Field("y"); !ok || f != 2 {
		t.Fatalf("Field(y) = %v,%v", f, ok)
	}
	if _, ok := v.Field("z"); ok {
		t.Fatal("Field(z) should not exist")
	}
	if NumVal(3).Num != 3 {
		t.Fatal("NumVal wrong")
	}
}

func TestDefParamsPanicsOnBadType(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DefParams(42)
}

var sinkRows int

func BenchmarkNaiveTick(b *testing.B) {
	prog := compile(b, combatScript)
	st := rng.NewStream(rng.New(3), 9)
	env := table.New(testSchema(b), 500)
	for i := 0; i < 500; i++ {
		env.Append(unit(float64(i), float64(i%2), st.Float64()*200, st.Float64()*200, 20, 0, 10, 4))
	}
	ev := New(prog, env, NewNaive(prog, env, tick()), tick())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := ev.Tick()
		if err != nil {
			b.Fatal(err)
		}
		sinkRows = out.Len()
	}
}
