// Package token defines the lexical tokens of SGL, the Scalable Games
// Language of paper Section 4.
//
// SGL's surface syntax has three kinds of top-level declarations:
//
//   - `function` — action functions written in the imperative-looking
//     grammar of Section 4.1 (let / if-then-else / perform / sequencing);
//   - `aggregate` — aggregate function definitions, the SQL SELECT
//     fragments of the paper's Figure 4, written here in an OVER/WHERE
//     form equivalent to Eq. (5);
//   - `action` — built-in action function definitions, the paper's
//     Figure 5 fragments, written in an ON/WHERE/SET form equivalent to
//     Eq. (4).
package token

import "fmt"

// Kind identifies a token class.
type Kind uint8

// Token kinds.
const (
	Invalid Kind = iota
	EOF
	Ident  // main, u, posx, CountEnemiesInRange
	Number // 12, 3.5
	Const  // _TIME_RELOAD — underscore-prefixed game constants

	// Punctuation.
	LParen // (
	RParen // )
	LBrace // {
	RBrace // }
	Semi   // ;
	Comma  // ,
	Dot    // .
	Define // :=

	// Operators.
	Assign  // =  (both let-binding and the SQL equality comparison)
	NotEq   // <>
	Less    // <
	LessEq  // <=
	Greater // >
	GreatEq // >=
	Plus    // +
	Minus   // -
	Star    // *
	Slash   // /
	Percent // %

	// Keywords.
	KwFunction
	KwAggregate
	KwAction
	KwLet
	KwIf
	KwThen
	KwElse
	KwPerform
	KwAnd
	KwOr
	KwNot
	KwOver
	KwOn
	KwWhere
	KwSet
	KwAs
	KwTrue
	KwFalse
)

var kindNames = map[Kind]string{
	Invalid: "invalid", EOF: "EOF", Ident: "identifier", Number: "number", Const: "constant",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}", Semi: ";", Comma: ",", Dot: ".", Define: ":=",
	Assign: "=", NotEq: "<>", Less: "<", LessEq: "<=", Greater: ">", GreatEq: ">=",
	Plus: "+", Minus: "-", Star: "*", Slash: "/", Percent: "%",
	KwFunction: "function", KwAggregate: "aggregate", KwAction: "action", KwLet: "let",
	KwIf: "if", KwThen: "then", KwElse: "else", KwPerform: "perform",
	KwAnd: "and", KwOr: "or", KwNot: "not", KwOver: "over", KwOn: "on",
	KwWhere: "where", KwSet: "set", KwAs: "as", KwTrue: "true", KwFalse: "false",
}

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Keywords maps keyword spellings to kinds. SGL keywords are
// case-insensitive, like SQL; the lexer lowercases before lookup.
var Keywords = map[string]Kind{
	"function": KwFunction, "aggregate": KwAggregate, "action": KwAction,
	"let": KwLet, "if": KwIf, "then": KwThen, "else": KwElse,
	"perform": KwPerform, "and": KwAnd, "or": KwOr, "not": KwNot,
	"over": KwOver, "on": KwOn, "where": KwWhere, "set": KwSet, "as": KwAs,
	"true": KwTrue, "false": KwFalse,
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line, Col int
}

// String renders the position as line:col.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexeme with its position.
type Token struct {
	Kind Kind
	Text string // original spelling for Ident/Number/Const
	Pos  Pos
}

// String renders the token for error messages.
func (t Token) String() string {
	switch t.Kind {
	case Ident, Number, Const:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	default:
		return fmt.Sprintf("%q", t.Kind.String())
	}
}
