package lexer

import (
	"strings"
	"testing"

	"github.com/epicscale/sgl/internal/sgl/token"
)

func kinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatalf("Tokenize(%q): %v", src, err)
	}
	out := make([]token.Kind, len(toks))
	for i, tk := range toks {
		out[i] = tk.Kind
	}
	return out
}

func TestEmptyInput(t *testing.T) {
	got := kinds(t, "")
	if len(got) != 1 || got[0] != token.EOF {
		t.Fatalf("empty input = %v", got)
	}
}

func TestPunctuationAndOperators(t *testing.T) {
	src := "( ) { } ; , . := = <> < <= > >= + - * / % !="
	want := []token.Kind{
		token.LParen, token.RParen, token.LBrace, token.RBrace, token.Semi,
		token.Comma, token.Dot, token.Define, token.Assign, token.NotEq,
		token.Less, token.LessEq, token.Greater, token.GreatEq,
		token.Plus, token.Minus, token.Star, token.Slash, token.Percent,
		token.NotEq, token.EOF,
	}
	got := kinds(t, src)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	got := kinds(t, "IF Then eLsE perform LET")
	want := []token.Kind{token.KwIf, token.KwThen, token.KwElse, token.KwPerform, token.KwLet, token.EOF}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestIdentifiersAndConstants(t *testing.T) {
	toks, err := Tokenize("posx _TIME_RELOAD CountEnemiesInRange x1_y")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != token.Ident || toks[0].Text != "posx" {
		t.Fatalf("tok0 = %v", toks[0])
	}
	if toks[1].Kind != token.Const || toks[1].Text != "_TIME_RELOAD" {
		t.Fatalf("tok1 = %v", toks[1])
	}
	if toks[2].Kind != token.Ident || toks[2].Text != "CountEnemiesInRange" {
		t.Fatalf("tok2 = %v", toks[2])
	}
	if toks[3].Kind != token.Ident || toks[3].Text != "x1_y" {
		t.Fatalf("tok3 = %v", toks[3])
	}
}

func TestNumbers(t *testing.T) {
	toks, err := Tokenize("12 3.5 0.25")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"12", "3.5", "0.25"}
	for i, w := range want {
		if toks[i].Kind != token.Number || toks[i].Text != w {
			t.Fatalf("tok%d = %v, want number %q", i, toks[i], w)
		}
	}
}

func TestComments(t *testing.T) {
	src := "a # line comment\nb // another\nc"
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 4 { // a b c EOF
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
	if toks[2].Pos.Line != 3 {
		t.Fatalf("token c at line %d, want 3", toks[2].Pos.Line)
	}
}

func TestPositions(t *testing.T) {
	toks, err := Tokenize("if x\n  then")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (token.Pos{Line: 1, Col: 1}) {
		t.Fatalf("if pos = %v", toks[0].Pos)
	}
	if toks[1].Pos != (token.Pos{Line: 1, Col: 4}) {
		t.Fatalf("x pos = %v", toks[1].Pos)
	}
	if toks[2].Pos != (token.Pos{Line: 2, Col: 3}) {
		t.Fatalf("then pos = %v", toks[2].Pos)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		src    string
		substr string
	}{
		{"@", "unexpected character"},
		{"12abc", "malformed number"},
		{"_", "bare underscore"},
		{":", "expected '='"},
		{"!x", "expected '='"},
	}
	for _, c := range cases {
		_, err := Tokenize(c.src)
		if err == nil {
			t.Errorf("Tokenize(%q): expected error", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.substr) {
			t.Errorf("Tokenize(%q) error = %v, want substring %q", c.src, err, c.substr)
		}
	}
}

func TestErrorHasPosition(t *testing.T) {
	_, err := Tokenize("x\n  @")
	if err == nil {
		t.Fatal("expected error")
	}
	le, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if le.Pos != (token.Pos{Line: 2, Col: 3}) {
		t.Fatalf("error pos = %v, want 2:3", le.Pos)
	}
}

func TestPaperExampleLexes(t *testing.T) {
	// The running example of paper Figure 3, adapted to this syntax.
	src := `
main(u) {
  (let c = CountEnemiesInRange(u, u.range))
  (let away_vector = (u.posx, u.posy) - CentroidOfEnemyUnits(u, u.range)) {
    if (c > u.morale) then
      perform MoveInDirection(u, away_vector);
    else if (c > 0 and u.cooldown = 0) then
      (let target_key = NearestEnemy(u).key) {
        perform FireAt(u, target_key);
      }
  }
}`
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) < 50 {
		t.Fatalf("suspiciously few tokens: %d", len(toks))
	}
}
