package lexer

import "testing"

// FuzzTokenize asserts the lexer never panics: any byte sequence either
// tokenizes or reports a positioned error.
func FuzzTokenize(f *testing.F) {
	for _, seed := range []string{
		"",
		"aggregate A(u) := count(*) over e where e.posx >= u.posx - 5;",
		"function main(u) { perform F(u, Random(1) % 20 + 1) }",
		"action X(u) := on e where e.key = u.key set damage = 1;",
		"# comment\n(let v = 1.5e3) { }",
		"<> <= >= := = ( ) { } , ; . * / % + - _CONST",
		"\"unterminated",
		"\x00\xff\xfe",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := Tokenize(src)
		if err == nil && len(toks) == 0 {
			t.Fatal("successful tokenize must at least yield EOF")
		}
	})
}
