// Package lexer turns SGL source text into a token stream.
//
// Lexical structure: identifiers are letters/digits/underscores starting
// with a letter; game constants start with an underscore (_TIME_RELOAD);
// numbers are decimal with an optional fraction; `#` and `//` start line
// comments; keywords are case-insensitive.
package lexer

import (
	"fmt"
	"strings"

	"github.com/epicscale/sgl/internal/sgl/token"
)

// Error is a lexical error with its source position.
type Error struct {
	Pos token.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans SGL source text. Construct with New.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// New returns a lexer over src.
func New(src string) *Lexer { return &Lexer{src: src, line: 1, col: 1} }

// Tokenize scans the whole input, returning all tokens followed by an EOF
// token, or the first lexical error.
func Tokenize(src string) ([]token.Token, error) {
	lx := New(src)
	var toks []token.Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks, nil
		}
	}
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) pos() token.Pos { return token.Pos{Line: l.line, Col: l.col} }

func isLetter(c byte) bool { return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' }
func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
func isIdent(c byte) bool  { return isLetter(c) || isDigit(c) || c == '_' }

// Next returns the next token.
func (l *Lexer) Next() (token.Token, error) {
	l.skipSpaceAndComments()
	start := l.pos()
	if l.off >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: start}, nil
	}
	c := l.peek()
	switch {
	case isLetter(c):
		return l.identifier(start), nil
	case c == '_':
		return l.constant(start)
	case isDigit(c):
		return l.number(start)
	}
	l.advance()
	simple := func(k token.Kind) (token.Token, error) {
		return token.Token{Kind: k, Pos: start}, nil
	}
	switch c {
	case '(':
		return simple(token.LParen)
	case ')':
		return simple(token.RParen)
	case '{':
		return simple(token.LBrace)
	case '}':
		return simple(token.RBrace)
	case ';':
		return simple(token.Semi)
	case ',':
		return simple(token.Comma)
	case '.':
		return simple(token.Dot)
	case '+':
		return simple(token.Plus)
	case '-':
		return simple(token.Minus)
	case '*':
		return simple(token.Star)
	case '%':
		return simple(token.Percent)
	case '/':
		return simple(token.Slash)
	case '=':
		return simple(token.Assign)
	case ':':
		if l.peek() == '=' {
			l.advance()
			return simple(token.Define)
		}
		return token.Token{}, &Error{Pos: start, Msg: "expected '=' after ':'"}
	case '<':
		switch l.peek() {
		case '=':
			l.advance()
			return simple(token.LessEq)
		case '>':
			l.advance()
			return simple(token.NotEq)
		}
		return simple(token.Less)
	case '>':
		if l.peek() == '=' {
			l.advance()
			return simple(token.GreatEq)
		}
		return simple(token.Greater)
	case '!':
		if l.peek() == '=' {
			l.advance()
			return simple(token.NotEq) // accept C-style != as a courtesy
		}
		return token.Token{}, &Error{Pos: start, Msg: "expected '=' after '!'"}
	}
	return token.Token{}, &Error{Pos: start, Msg: fmt.Sprintf("unexpected character %q", c)}
}

func (l *Lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '#':
			l.skipLine()
		case c == '/' && l.peek2() == '/':
			l.skipLine()
		default:
			return
		}
	}
}

func (l *Lexer) skipLine() {
	for l.off < len(l.src) && l.peek() != '\n' {
		l.advance()
	}
}

func (l *Lexer) identifier(start token.Pos) token.Token {
	begin := l.off
	for l.off < len(l.src) && isIdent(l.peek()) {
		l.advance()
	}
	text := l.src[begin:l.off]
	if k, ok := token.Keywords[strings.ToLower(text)]; ok {
		return token.Token{Kind: k, Text: text, Pos: start}
	}
	return token.Token{Kind: token.Ident, Text: text, Pos: start}
}

func (l *Lexer) constant(start token.Pos) (token.Token, error) {
	begin := l.off
	l.advance() // leading underscore
	if l.off >= len(l.src) || !isIdent(l.peek()) {
		return token.Token{}, &Error{Pos: start, Msg: "bare underscore is not a constant name"}
	}
	for l.off < len(l.src) && isIdent(l.peek()) {
		l.advance()
	}
	return token.Token{Kind: token.Const, Text: l.src[begin:l.off], Pos: start}, nil
}

func (l *Lexer) number(start token.Pos) (token.Token, error) {
	begin := l.off
	for l.off < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	if l.off < len(l.src) && l.peek() == '.' && isDigit(l.peek2()) {
		l.advance()
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	if l.off < len(l.src) && isLetter(l.peek()) {
		return token.Token{}, &Error{Pos: start, Msg: "malformed number"}
	}
	return token.Token{Kind: token.Number, Text: l.src[begin:l.off], Pos: start}, nil
}
