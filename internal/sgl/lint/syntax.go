package lint

import (
	"math"

	"github.com/epicscale/sgl/internal/sgl/ast"
	"github.com/epicscale/sgl/internal/sgl/token"
)

// checkDuplicates reports SGL002 for redeclared names (one namespace
// across functions, aggregates and actions — call sites don't distinguish
// them) and SGL003 for duplicate parameters, at the parameter's own
// position.
func (l *linter) checkDuplicates(script *ast.Script) {
	seen := map[string]token.Pos{}
	decl := func(name string, pos token.Pos) {
		if prev, dup := seen[name]; dup {
			l.report(CodeDupDecl, pos, "duplicate declaration of %q (previous at %s)", name, prev)
			return
		}
		seen[name] = pos
	}
	params := func(owner string, names []string, ppos []token.Pos, ownerPos token.Pos) {
		have := map[string]bool{}
		for i, p := range names {
			pos := ownerPos
			if i < len(ppos) {
				pos = ppos[i]
			}
			if have[p] {
				l.report(CodeDupParam, pos, "duplicate parameter %q in %s", p, owner)
				continue
			}
			have[p] = true
		}
	}
	for _, f := range script.Funcs {
		decl(f.Name, f.P)
		params("function "+f.Name, f.Params, f.ParamPos, f.P)
	}
	for _, a := range script.Aggs {
		decl(a.Name, a.P)
		params("aggregate "+a.Name, a.Params, a.ParamPos, a.P)
	}
	for _, a := range script.Acts {
		decl(a.Name, a.P)
		params("action "+a.Name, a.Params, a.ParamPos, a.P)
	}
}

// checkShadows reports SGL004 where a let rebinds a name already in scope
// (a parameter or an outer let) — sem rejects these too; lint gives them
// a code and keeps going.
func (l *linter) checkShadows(script *ast.Script) {
	for _, f := range script.Funcs {
		scope := map[string]bool{}
		for _, p := range f.Params {
			scope[p] = true
		}
		l.shadowWalk(f.Body, scope)
	}
}

func (l *linter) shadowWalk(a ast.Action, scope map[string]bool) {
	switch n := a.(type) {
	case *ast.Let:
		if scope[n.Name] {
			l.report(CodeShadow, n.P, "let %q shadows an existing binding", n.Name)
		}
		inner := make(map[string]bool, len(scope)+1)
		for k := range scope {
			inner[k] = true
		}
		inner[n.Name] = true
		l.shadowWalk(n.Body, inner)
	case *ast.Seq:
		for _, s := range n.Acts {
			l.shadowWalk(s, scope)
		}
	case *ast.If:
		l.shadowWalk(n.Then, scope)
		if n.Else != nil {
			l.shadowWalk(n.Else, scope)
		}
	}
}

// checkDivZero reports SGL005 for division or modulus whose divisor folds
// to constant zero. The runtime semantics are total (IEEE ±Inf/NaN, pinned
// by the executor tests), so this compiles — which is exactly why it
// deserves a diagnostic.
func (l *linter) checkDivZero(script *ast.Script) {
	ast.Inspect(script, func(n any) bool {
		b, ok := n.(*ast.Binary)
		if !ok || (b.Op != ast.Div && b.Op != ast.Mod) {
			return true
		}
		if v, ok := l.fold(b.Y); ok && v == 0 {
			op := "division"
			if b.Op == ast.Mod {
				op = "modulus"
			}
			l.report(CodeDivZero, b.Y.Pos(), "%s by constant zero (evaluates to %s at runtime)", op, divZeroResult(b.Op))
		}
		return true
	})
}

func divZeroResult(op ast.BinOp) string {
	if op == ast.Mod {
		return "NaN"
	}
	return "±Inf or NaN"
}

// fold evaluates a term to a constant if its value is decidable from the
// source alone: literals, game constants, arithmetic over those, and the
// pure scalar builtins. The arithmetic is the same IEEE-754 the executor
// uses, so folded comparisons decide exactly what the runtime would.
func (l *linter) fold(t ast.Term) (float64, bool) {
	switch n := t.(type) {
	case *ast.NumLit:
		return n.Val, true
	case *ast.ConstRef:
		v, ok := l.opts.Consts[n.Name]
		return v, ok
	case *ast.Neg:
		v, ok := l.fold(n.X)
		return -v, ok
	case *ast.Binary:
		x, okx := l.fold(n.X)
		y, oky := l.fold(n.Y)
		if !okx || !oky {
			return 0, false
		}
		switch n.Op {
		case ast.Add:
			return x + y, true
		case ast.Sub:
			return x - y, true
		case ast.Mul:
			return x * y, true
		case ast.Div:
			return x / y, true
		case ast.Mod:
			return math.Mod(x, y), true
		}
		return 0, false
	case *ast.Call:
		args := make([]float64, len(n.Args))
		for i, a := range n.Args {
			v, ok := l.fold(a)
			if !ok {
				return 0, false
			}
			args[i] = v
		}
		switch n.Name {
		case "abs":
			if len(args) == 1 {
				return math.Abs(args[0]), true
			}
		case "sqrt":
			if len(args) == 1 {
				return math.Sqrt(args[0]), true
			}
		case "floor":
			if len(args) == 1 {
				return math.Floor(args[0]), true
			}
		case "min":
			if len(args) == 2 {
				return math.Min(args[0], args[1]), true
			}
		case "max":
			if len(args) == 2 {
				return math.Max(args[0], args[1]), true
			}
		}
		return 0, false
	}
	return 0, false
}
