package lint

import (
	"github.com/epicscale/sgl/internal/sgl/ast"
	"github.com/epicscale/sgl/internal/sgl/parser"
	"github.com/epicscale/sgl/internal/sgl/sem"
	"github.com/epicscale/sgl/internal/sgl/token"
)

// run drives the phases: parse; syntactic rules; sem; dead analysis and
// performance classification. Each later phase runs only if the earlier
// ones left the script standing.
func (l *linter) run(src string) {
	script, err := parser.Parse(src)
	if err != nil {
		l.report(CodeCompile, errPos(err), "%s", errMsg(err))
		return
	}

	// Syntactic rules need no checked program and carry sharper codes
	// than the sem errors they overlap with.
	l.checkDuplicates(script)
	l.checkShadows(script)
	l.checkDivZero(script)
	l.checkConjunctions(script)

	var prog *sem.Program
	if l.opts.Mode == ModeQuery {
		prog, err = sem.CheckQuery(script, l.opts.Schema, l.opts.Consts)
	} else {
		prog, err = sem.Check(script, l.opts.Schema, l.opts.Consts)
	}
	if err != nil {
		// Report the compile failure unless a syntactic rule already
		// diagnosed it under a sharper code at the same position.
		if !l.coveredAt(errPos(err)) {
			l.report(CodeCompile, errPos(err), "%s", errMsg(err))
		}
		return
	}

	reach := l.reachable(prog)
	l.checkDeadDefs(prog, reach)
	l.checkDeadLets(script)
	l.checkDeadParams(script)
	l.checkDeadOutputs(prog, reach)
	l.checkDeadConsts(script)
	l.checkPerformance(prog, reach)
}

// coveredAt reports whether an error-severity diagnostic was already
// recorded at pos.
func (l *linter) coveredAt(pos token.Pos) bool {
	for _, d := range l.diags {
		if d.Severity == SevError && d.Pos == pos {
			return true
		}
	}
	return false
}

// errPos extracts the source position from a parser or sem error.
func errPos(err error) token.Pos {
	switch e := err.(type) {
	case *parser.Error:
		return e.Pos
	case *sem.Error:
		return e.Pos
	}
	return token.Pos{Line: 1, Col: 1}
}

// errMsg extracts the bare message (the position is carried separately).
func errMsg(err error) string {
	switch e := err.(type) {
	case *parser.Error:
		return e.Msg
	case *sem.Error:
		return e.Msg
	}
	return err.Error()
}

// condSites returns every condition in the script with a label for
// messages: aggregate/action WHERE clauses and if-conditions.
type condSite struct {
	cond  ast.Cond
	owner string
}

func condSites(script *ast.Script) []condSite {
	var sites []condSite
	for _, a := range script.Aggs {
		if a.Where != nil {
			sites = append(sites, condSite{a.Where, "aggregate " + a.Name})
		}
	}
	for _, a := range script.Acts {
		if a.Where != nil {
			sites = append(sites, condSite{a.Where, "action " + a.Name})
		}
	}
	for _, f := range script.Funcs {
		ast.Inspect(f, func(n any) bool {
			if ifn, ok := n.(*ast.If); ok {
				sites = append(sites, condSite{ifn.Cond, "function " + f.Name})
			}
			return true
		})
	}
	return sites
}
