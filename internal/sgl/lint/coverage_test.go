package lint

import (
	"math"
	"strings"
	"testing"

	"github.com/epicscale/sgl/internal/game"
	"github.com/epicscale/sgl/internal/sgl/ast"
)

// Direct unit tests for the pure helpers of the interval analysis and
// the constant folder — the end-to-end tests exercise the common paths,
// these pin the full operator tables.

func num(v float64) *ast.NumLit { return &ast.NumLit{Val: v} }

func cmp(op ast.CmpOp, x, y ast.Term) *ast.Compare { return &ast.Compare{Op: op, X: x, Y: y} }

func TestCondVerdictTable(t *testing.T) {
	l := &linter{opts: Options{Consts: map[string]float64{"_K": 4}}}
	varRef := &ast.VarRef{Name: "x"} // not foldable → unknown
	cases := []struct {
		name string
		cond ast.Cond
		want int
	}{
		{"true literal", &ast.BoolLit{Val: true}, vTrue},
		{"false literal", &ast.BoolLit{Val: false}, vFalse},
		{"not true", &ast.Not{X: &ast.BoolLit{Val: true}}, vFalse},
		{"not false", &ast.Not{X: &ast.BoolLit{Val: false}}, vTrue},
		{"not unknown", &ast.Not{X: cmp(ast.Lt, varRef, num(1))}, vUnknown},
		{"and short-circuit false", &ast.And{X: &ast.BoolLit{Val: false}, Y: cmp(ast.Lt, varRef, num(1))}, vFalse},
		{"and both true", &ast.And{X: &ast.BoolLit{Val: true}, Y: cmp(ast.Lt, num(1), num(2))}, vTrue},
		{"and unknown", &ast.And{X: &ast.BoolLit{Val: true}, Y: cmp(ast.Lt, varRef, num(1))}, vUnknown},
		{"or short-circuit true", &ast.Or{X: &ast.BoolLit{Val: true}, Y: cmp(ast.Lt, varRef, num(1))}, vTrue},
		{"or both false", &ast.Or{X: &ast.BoolLit{Val: false}, Y: cmp(ast.Gt, num(1), num(2))}, vFalse},
		{"or unknown", &ast.Or{X: &ast.BoolLit{Val: false}, Y: cmp(ast.Lt, varRef, num(1))}, vUnknown},
		{"eq", cmp(ast.Eq, num(3), num(3)), vTrue},
		{"ne", cmp(ast.Ne, num(3), num(3)), vFalse},
		{"lt", cmp(ast.Lt, num(2), num(3)), vTrue},
		{"le", cmp(ast.Le, num(3), num(3)), vTrue},
		{"gt", cmp(ast.Gt, num(2), num(3)), vFalse},
		{"ge", cmp(ast.Ge, num(3), num(3)), vTrue},
		{"const ref", cmp(ast.Eq, &ast.ConstRef{Name: "_K"}, num(4)), vTrue},
		{"nan is false", cmp(ast.Le, num(math.NaN()), num(1)), vFalse},
		{"unfoldable", cmp(ast.Lt, varRef, num(1)), vUnknown},
	}
	for _, c := range cases {
		if got := l.condVerdict(c.cond); got != c.want {
			t.Errorf("%s: verdict = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestFoldBuiltinsAndOperators(t *testing.T) {
	l := &linter{opts: Options{Consts: map[string]float64{"_K": 9}}}
	call := func(name string, args ...ast.Term) *ast.Call { return &ast.Call{Name: name, Args: args} }
	cases := []struct {
		name string
		term ast.Term
		want float64
	}{
		{"neg", &ast.Neg{X: num(3)}, -3},
		{"add", &ast.Binary{Op: ast.Add, X: num(1), Y: num(2)}, 3},
		{"sub", &ast.Binary{Op: ast.Sub, X: num(1), Y: num(2)}, -1},
		{"mul", &ast.Binary{Op: ast.Mul, X: num(3), Y: num(4)}, 12},
		{"div", &ast.Binary{Op: ast.Div, X: num(8), Y: num(2)}, 4},
		{"mod", &ast.Binary{Op: ast.Mod, X: num(8), Y: num(3)}, 2},
		{"const", &ast.ConstRef{Name: "_K"}, 9},
		{"abs", call("abs", num(-5)), 5},
		{"sqrt", call("sqrt", &ast.ConstRef{Name: "_K"}), 3},
		{"floor", call("floor", num(2.9)), 2},
		{"min", call("min", num(2), num(7)), 2},
		{"max", call("max", num(2), num(7)), 7},
	}
	for _, c := range cases {
		got, ok := l.fold(c.term)
		if !ok || got != c.want {
			t.Errorf("%s: fold = (%v, %v), want (%v, true)", c.name, got, ok, c.want)
		}
	}
	if _, ok := l.fold(&ast.ConstRef{Name: "_MISSING"}); ok {
		t.Error("unknown constant folded")
	}
	if _, ok := l.fold(call("abs", &ast.VarRef{Name: "x"})); ok {
		t.Error("call over an unfoldable argument folded")
	}
}

func TestMirrorOpFullTable(t *testing.T) {
	cases := map[ast.CmpOp]ast.CmpOp{
		ast.Lt: ast.Gt, ast.Le: ast.Ge, ast.Gt: ast.Lt, ast.Ge: ast.Le,
		ast.Eq: ast.Eq, ast.Ne: ast.Ne,
	}
	for op, want := range cases { //sgl:unordered each case is checked independently
		if got := mirrorOp(op); got != want {
			t.Errorf("mirrorOp(%v) = %v, want %v", op, got, want)
		}
	}
}

// TestConstantOnLeftMirrors pins the mirrored-comparison path through
// the public surface: `5 < e.health` must constrain e.health exactly
// like `e.health > 5`, so adding an upper bound below 5 is SGL006.
func TestConstantOnLeftMirrors(t *testing.T) {
	diags := lintScript(t, `
aggregate Foes(u) := count(*) over e where 5 < e.health and e.health < 3;
action Tag(u, v) := on e where e.key = u.key set damage = v;
function main(u) { perform Tag(u, Foes(u)) }`)
	wantCodes(t, diags, CodeAlwaysFalse)
}

// TestTooManyAxesIsSGL101 and TestNonCategoricalEqIsSGL101 pin the two
// perfAgg details the common fleet never hits: a 3-axis range box and an
// equality partition on a non-categorical attribute.
func TestTooManyAxesIsSGL101(t *testing.T) {
	diags := lintScript(t, `
aggregate Box(u) := count(*) over e
  where e.posx >= u.posx - 1 and e.posx <= u.posx + 1
    and e.posy >= u.posy - 1 and e.posy <= u.posy + 1
    and e.health >= u.health - 1 and e.health <= u.health + 1;
action Tag(u, v) := on e where e.key = u.key set damage = v;
function main(u) { perform Tag(u, Box(u)) }`)
	wantCodes(t, diags, CodeResidual)
	if !strings.Contains(diags[0].Msg, "range axes exceed") {
		t.Errorf("detail = %q, want the axis-count explanation", diags[0].Msg)
	}
}

func TestNonCategoricalEqIsSGL101(t *testing.T) {
	diags := lintScript(t, `
aggregate Same(u) := count(*) over e where e.health = u.health;
action Tag(u, v) := on e where e.key = u.key set damage = v;
function main(u) { perform Tag(u, Same(u)) }`)
	wantCodes(t, diags, CodeResidual)
	if !strings.Contains(diags[0].Msg, "non-categorical") || !strings.Contains(diags[0].Msg, "health") {
		t.Errorf("detail = %q, want the non-categorical equality explanation naming health", diags[0].Msg)
	}
}

// TestNearestWithRangeIsSGL104 pins the nearest-specific scan reason
// (query mode; nearest is also non-divisible, so SGL102 rides along).
func TestNearestWithRangeIsSGL104(t *testing.T) {
	diags := lintQuery(t, `aggregate Close(u) := nearestkey() as key over e
  where e.posx >= u.posx - 5 and e.posx <= u.posx + 5;`)
	wantCodes(t, diags, CodeNonDivisible, CodeScanOutput)
	found := false
	for _, d := range diags {
		if d.Code == CodeScanOutput {
			found = true
			if !strings.Contains(d.Msg, "kD-tree") {
				t.Errorf("detail = %q, want the nearest/kD-tree explanation", d.Msg)
			}
		}
	}
	if !found {
		t.Fatal("no SGL104 diagnostic")
	}
}

func TestModulusByZeroMessage(t *testing.T) {
	diags := lintScript(t, `
action Tag(u, v) := on e where e.key = u.key set damage = v;
function main(u) { perform Tag(u, u.health % (1 - 1)) }`)
	wantCodes(t, diags, CodeDivZero)
	if !strings.Contains(diags[0].Msg, "modulus") || !strings.Contains(diags[0].Msg, "NaN") {
		t.Errorf("msg = %q, want a modulus-specific NaN message", diags[0].Msg)
	}
}

func TestHasErrorsAndStrings(t *testing.T) {
	diags := Lint(`aggregate Broken(u) := count(* over e;`, Options{
		Mode: ModeScript, Schema: game.Schema(), Categoricals: game.Categoricals(),
	})
	if !HasErrors(diags) {
		t.Fatal("parse failure must produce an error-severity diagnostic")
	}
	lines := Strings(diags)
	if len(lines) != len(diags) {
		t.Fatalf("Strings returned %d lines for %d diagnostics", len(lines), len(diags))
	}
	for i, s := range lines {
		if s != diags[i].String() {
			t.Errorf("Strings[%d] = %q, want %q", i, s, diags[i].String())
		}
	}
	clean := Lint(cleanSrc, Options{Mode: ModeScript, Schema: game.Schema(), Categoricals: game.Categoricals()})
	if HasErrors(clean) {
		t.Errorf("clean script reports errors: %v", Strings(clean))
	}
}

// TestIntervalEdgeCases drives the open/closed bound handling and the
// ≠-exclusion logic through the public surface.
func TestIntervalEdgeCases(t *testing.T) {
	// Open bounds that meet exactly: x > 5 and x < 5 is empty even
	// though lo == hi.
	diags := lintScript(t, `
aggregate A(u) := count(*) over e where e.health > 5 and e.health < 5;
action Tag(u, v) := on e where e.key = u.key set damage = v;
function main(u) { perform Tag(u, A(u)) }`)
	wantCodes(t, diags, CodeAlwaysFalse)

	// A point interval erased by ≠: x >= 5 and x <= 5 and x <> 5.
	diags = lintScript(t, `
aggregate A(u) := count(*) over e where e.health >= 5 and e.health <= 5 and e.health <> 5;
action Tag(u, v) := on e where e.key = u.key set damage = v;
function main(u) { perform Tag(u, A(u)) }`)
	wantCodes(t, diags, CodeAlwaysFalse)

	// Equality pinned inside a wider range is implied, not empty.
	diags = lintScript(t, `
aggregate A(u) := count(*) over e where e.health = 5 and e.health <= 9;
action Tag(u, v) := on e where e.key = u.key set damage = v;
function main(u) { perform Tag(u, A(u)) }`)
	wantCodes(t, diags, CodeAlwaysTrue)
}
