package lint

import (
	"fmt"
	"sort"
	"strings"

	"github.com/epicscale/sgl/internal/algebra"
	"github.com/epicscale/sgl/internal/exec"
	"github.com/epicscale/sgl/internal/sgl/ast"
	"github.com/epicscale/sgl/internal/sgl/sem"
)

// checkPerformance classifies every reachable definition with the
// executor's own analyzer (exec.NewAnalyzer — the same call the engine
// makes at world creation) and reports the SGL1xx family. Because the
// classifier is shared, a lint verdict here is exactly the pipeline the
// engine will run: SGL101 means per-tick scans, SGL104 means one output
// drags an otherwise indexed definition to a per-probe scan, SGL103 means
// a guard that filters after an index probe instead of before it, and
// SGL102 (query mode) means the maintainer rederives the answer on every
// dirty tick instead of patching it.
func (l *linter) checkPerformance(prog *sem.Program, reach *reachSet) {
	an := exec.NewAnalyzer(prog, l.opts.Categoricals)

	if l.opts.Mode == ModeQuery {
		n := len(prog.Script.Aggs)
		if n == 0 {
			return
		}
		entry := prog.Script.Aggs[n-1]
		l.perfAgg(an, entry)
		if !exec.NewAnswerPlan(prog, entry).Divisible() {
			l.report(CodeNonDivisible, entry.P,
				"aggregate %s is not divisible: a maintained or subscribed query rederives the full answer on every dirty tick instead of patching it (divisible functions: count, sum, avg, stddev, with an index-usable condition)",
				entry.Name)
		}
		return
	}

	for _, def := range prog.Script.Aggs {
		if reach.aggs[def] {
			l.perfAgg(an, def)
		}
	}
	for _, def := range prog.Script.Acts {
		if !reach.acts[def] {
			continue
		}
		a := an.Act(def)
		if a.Class == exec.ActScan && def.Where != nil {
			pos := def.P
			detail := "its condition is not index-usable"
			if len(a.Residual) > 0 {
				pos = a.Residual[0].Pos()
				detail = fmt.Sprintf("conjunct %s is neither a categorical equality nor an orthogonal range on e", a.Residual[0])
			} else if len(a.Axes) > 2 {
				detail = fmt.Sprintf("%d range axes exceed the 2-dimensional spatial index", len(a.Axes))
			}
			l.report(CodeResidual, pos,
				"action %s targets by full scan: %s", def.Name, detail)
		}
	}

	l.checkGuardPlacement(prog)
}

// perfAgg reports SGL101 for a non-index-usable aggregate and SGL104 for
// scan-class outputs of an otherwise indexable one.
func (l *linter) perfAgg(an *exec.Analyzer, def *ast.AggDef) {
	a := an.Agg(def)
	if !a.Indexable {
		pos := def.P
		detail := "its condition is not index-usable"
		switch {
		case len(a.Residual) > 0:
			pos = a.Residual[0].Pos()
			detail = fmt.Sprintf("conjunct %s is neither a categorical equality nor an orthogonal range on e", a.Residual[0])
		case len(a.Axes) > 2:
			detail = fmt.Sprintf("%d range axes exceed the 2-dimensional index", len(a.Axes))
		default:
			for _, eq := range a.Eqs {
				if !l.categorical(eq.Col) {
					detail = fmt.Sprintf("equality on %s partitions on a non-categorical attribute", l.attrName(eq.Col))
					break
				}
			}
		}
		l.report(CodeResidual, pos,
			"aggregate %s evaluates by full scan on every probe: %s", def.Name, detail)
		return
	}
	for i, out := range def.Outputs {
		if a.OutClass[i] == exec.ClassScan {
			l.report(CodeScanOutput, out.P,
				"output %s of aggregate %s falls back to a per-probe scan even though the condition is index-usable (%s)",
				out.As, def.Name, scanReason(out))
		}
	}
}

// scanReason explains why classifyOutput demoted an output of an
// indexable definition: mirrors the rules in exec.classifyOutput.
func scanReason(out ast.AggOutput) string {
	switch out.Func {
	case ast.Min, ast.Max:
		return "min/max over a one-sided range walks the partition"
	case ast.NearestKey, ast.NearestDist, ast.NearestX, ast.NearestY:
		return "nearest constrained by a range cannot use the kD-tree alone"
	}
	return "the argument depends on the probe unit or a parameter, so it cannot be precomputed into the index"
}

// categorical reports whether the schema column is in the configured
// categorical set (same resolution exec.NewAnalyzer performs).
func (l *linter) categorical(col int) bool {
	for _, name := range l.opts.Categoricals {
		if c, ok := l.opts.Schema.Col(name); ok && c == col {
			return true
		}
	}
	return false
}

func (l *linter) attrName(col int) string {
	if l.opts.Schema != nil && col >= 0 && col < l.opts.Schema.NumAttrs() {
		return l.opts.Schema.Attr(col).Name
	}
	return fmt.Sprintf("column %d", col)
}

// checkGuardPlacement compiles the default optimized plan the way the
// engine does and reports SGL103 for trapped pushable conjuncts: a
// conjunct that reads no extension (it could filter rows before any
// probe) but shares a guard stage with one that does read a probe result,
// so the stage as a whole runs after the probe and the probe pays for
// rows the pushable conjunct would have rejected. (A guard that reads the
// probe's own result is not reported — it cannot run anywhere else.)
func (l *linter) checkGuardPlacement(prog *sem.Program) {
	plan, err := algebra.Translate(prog)
	if err != nil {
		return // nothing compiled, nothing to place
	}
	reports, err := algebra.Report(prog, algebra.Optimize(plan))
	if err != nil {
		return
	}
	seen := map[string]bool{}
	for _, r := range reports {
		for _, st := range r.Stages {
			if st.BlockedBy == "" || !st.BlockedByProbe {
				continue
			}
			for _, c := range st.Conjuncts {
				if !c.Pushable {
					continue
				}
				key := c.Cond + "\x00" + st.BlockedBy
				if seen[key] {
					continue
				}
				seen[key] = true
				l.report(CodeGuardBlocked, c.Pos,
					"conjunct %s could filter before the index probe of %s but is trapped behind it in the pipeline of %s — test it in an earlier if so the probe skips rejected rows",
					c.Cond, st.BlockedBy, r.Action)
			}
		}
	}
}

// FormatClassification renders an analyzer's verdict for every definition
// of the program in declaration order, in a canonical diffable form. The
// differential consistency test renders lint's analyzer and the live
// engine's analyzer through this one function and byte-compares the two.
func FormatClassification(an *exec.Analyzer, prog *sem.Program) string {
	var b strings.Builder
	for _, def := range prog.Script.Aggs {
		a := an.Agg(def)
		fmt.Fprintf(&b, "agg %s indexable=%v eqs=%d axes=%d residual=%d outputs=", def.Name, a.Indexable, len(a.Eqs), len(a.Axes), len(a.Residual))
		parts := make([]string, len(def.Outputs))
		for i, out := range def.Outputs {
			parts[i] = out.As + ":" + a.OutClass[i].String()
		}
		b.WriteString(strings.Join(parts, ","))
		b.WriteByte('\n')
	}
	for _, def := range prog.Script.Acts {
		a := an.Act(def)
		fmt.Fprintf(&b, "act %s class=%s residual=%d deferrable=%v\n", def.Name, a.Class, len(a.Residual), a.Deferrable)
	}
	return b.String()
}

// sortedCodes returns the distinct codes present in diags, sorted — a
// convenience for goldens and test assertions.
func sortedCodes(diags []Diagnostic) []string {
	set := map[string]bool{}
	for _, d := range diags {
		set[d.Code] = true
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
