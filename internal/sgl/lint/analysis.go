package lint

import (
	"math"

	"github.com/epicscale/sgl/internal/sgl/ast"
)

// Interval analysis over call-free comparisons: within one AND-chain,
// every conjunct of the form <term> op <constant> narrows an interval
// keyed by the term's canonical spelling. A conjunct that empties its
// interval can never hold (SGL006); one that cannot narrow it further is
// always true given the earlier conjuncts (SGL007). Constant-only
// conditions are decided outright by folding with the runtime's own
// IEEE-754 arithmetic. Negations are left alone (¬unsat is not unsat);
// disjunction arms are analyzed as independent chains.

// checkConjunctions runs the interval analysis over every condition site.
func (l *linter) checkConjunctions(script *ast.Script) {
	for _, site := range condSites(script) {
		l.analyzeChain(ast.Conjuncts(site.cond), site.owner)
	}
}

// Tri-state constant verdict of a condition.
const (
	vUnknown = iota
	vTrue
	vFalse
)

// condVerdict decides a condition from constants alone, if possible.
func (l *linter) condVerdict(c ast.Cond) int {
	switch n := c.(type) {
	case *ast.BoolLit:
		if n.Val {
			return vTrue
		}
		return vFalse
	case *ast.Not:
		switch l.condVerdict(n.X) {
		case vTrue:
			return vFalse
		case vFalse:
			return vTrue
		}
		return vUnknown
	case *ast.And:
		x, y := l.condVerdict(n.X), l.condVerdict(n.Y)
		if x == vFalse || y == vFalse {
			return vFalse
		}
		if x == vTrue && y == vTrue {
			return vTrue
		}
		return vUnknown
	case *ast.Or:
		x, y := l.condVerdict(n.X), l.condVerdict(n.Y)
		if x == vTrue || y == vTrue {
			return vTrue
		}
		if x == vFalse && y == vFalse {
			return vFalse
		}
		return vUnknown
	case *ast.Compare:
		x, okx := l.fold(n.X)
		y, oky := l.fold(n.Y)
		if !okx || !oky {
			return vUnknown
		}
		if cmpHolds(n.Op, x, y) {
			return vTrue
		}
		return vFalse
	}
	return vUnknown
}

// cmpHolds applies a comparison with the executor's IEEE semantics
// (every comparison with NaN is false).
func cmpHolds(op ast.CmpOp, x, y float64) bool {
	switch op {
	case ast.Eq:
		return x == y
	case ast.Ne:
		return x != y
	case ast.Lt:
		return x < y
	case ast.Le:
		return x <= y
	case ast.Gt:
		return x > y
	case ast.Ge:
		return x >= y
	}
	return false
}

// interval is a (possibly open) range of feasible values for one term,
// with point exclusions from ≠-conjuncts.
type interval struct {
	lo, hi         float64
	loOpen, hiOpen bool
	neq            []float64
}

func fullInterval() *interval {
	return &interval{lo: math.Inf(-1), hi: math.Inf(1)}
}

func (iv *interval) empty() bool {
	if iv.lo > iv.hi {
		return true
	}
	if iv.lo == iv.hi && (iv.loOpen || iv.hiOpen) {
		return true
	}
	// A pinned point excluded by a ≠ is empty.
	if iv.lo == iv.hi {
		for _, x := range iv.neq {
			if x == iv.lo {
				return true
			}
		}
	}
	return false
}

// contains reports whether v is feasible under the interval.
func (iv *interval) contains(v float64) bool {
	if v < iv.lo || (v == iv.lo && iv.loOpen) {
		return false
	}
	if v > iv.hi || (v == iv.hi && iv.hiOpen) {
		return false
	}
	for _, x := range iv.neq {
		if x == v {
			return false
		}
	}
	return true
}

// subsetOf reports whether every value feasible under iv is feasible
// under the constraint interval c (c's neq holes are checked against iv).
func (iv *interval) subsetOf(c *interval) bool {
	if iv.lo < c.lo || (iv.lo == c.lo && c.loOpen && !iv.loOpen) {
		return false
	}
	if iv.hi > c.hi || (iv.hi == c.hi && c.hiOpen && !iv.hiOpen) {
		return false
	}
	for _, x := range c.neq {
		if iv.contains(x) {
			return false
		}
	}
	return true
}

// intersect narrows iv by the constraint c.
func (iv *interval) intersect(c *interval) {
	if c.lo > iv.lo || (c.lo == iv.lo && c.loOpen) {
		iv.lo, iv.loOpen = c.lo, c.loOpen
	}
	if c.hi < iv.hi || (c.hi == iv.hi && c.hiOpen) {
		iv.hi, iv.hiOpen = c.hi, c.hiOpen
	}
	iv.neq = append(iv.neq, c.neq...)
}

// constraintFor turns op+constant into an interval constraint.
func constraintFor(op ast.CmpOp, c float64) *interval {
	iv := fullInterval()
	switch op {
	case ast.Eq:
		iv.lo, iv.hi = c, c
	case ast.Ne:
		iv.neq = []float64{c}
	case ast.Lt:
		iv.hi, iv.hiOpen = c, true
	case ast.Le:
		iv.hi = c
	case ast.Gt:
		iv.lo, iv.loOpen = c, true
	case ast.Ge:
		iv.lo = c
	}
	return iv
}

// isCallFree reports whether a term contains no calls — the totality
// requirement for keying an interval by the term's spelling (calls may
// be Random or aggregate probes, whose value is not a function of the
// spelling).
func isCallFree(t ast.Term) bool {
	free := true
	ast.Inspect(t, func(n any) bool {
		if _, ok := n.(*ast.Call); ok {
			free = false
		}
		return free
	})
	return free
}

// analyzeChain runs the interval analysis over one AND-chain.
func (l *linter) analyzeChain(conjs []ast.Cond, owner string) {
	ivs := map[string]*interval{}
	for _, conj := range conjs {
		// Constant-only conjuncts are decided outright.
		switch l.condVerdict(conj) {
		case vTrue:
			l.report(CodeAlwaysTrue, conj.Pos(), "conjunct %s is always true in %s", conj, owner)
			continue
		case vFalse:
			l.report(CodeAlwaysFalse, conj.Pos(), "conjunct %s is always false in %s — the condition can never hold", conj, owner)
			return
		}
		// Disjunction arms are independent chains of their own.
		if or, ok := conj.(*ast.Or); ok {
			l.analyzeChain(ast.Conjuncts(or.X), owner)
			l.analyzeChain(ast.Conjuncts(or.Y), owner)
			continue
		}
		cmp, ok := conj.(*ast.Compare)
		if !ok {
			continue
		}
		// Normalize to <call-free term> op <constant>.
		var key ast.Term
		var op ast.CmpOp
		var c float64
		if v, okc := l.fold(cmp.Y); okc && isCallFree(cmp.X) {
			key, op, c = cmp.X, cmp.Op, v
		} else if v, okc := l.fold(cmp.X); okc && isCallFree(cmp.Y) {
			key, c = cmp.Y, v
			op = mirrorOp(cmp.Op)
		} else {
			continue
		}
		if math.IsNaN(c) {
			l.report(CodeAlwaysFalse, conj.Pos(), "conjunct %s compares against NaN and is always false in %s", conj, owner)
			return
		}
		k := key.String()
		iv := ivs[k]
		if iv == nil {
			iv = fullInterval()
			ivs[k] = iv
		}
		cons := constraintFor(op, c)
		if iv.subsetOf(cons) {
			l.report(CodeAlwaysTrue, conj.Pos(), "conjunct %s is implied by the earlier conjuncts on %s in %s", conj, k, owner)
			continue
		}
		iv.intersect(cons)
		if iv.empty() {
			l.report(CodeAlwaysFalse, conj.Pos(), "conjunct %s leaves no feasible value for %s in %s — the condition can never hold", conj, k, owner)
			return
		}
	}
}

// mirrorOp flips a comparison whose constant was on the left:
// c op t  ⇒  t op' c.
func mirrorOp(op ast.CmpOp) ast.CmpOp {
	switch op {
	case ast.Lt:
		return ast.Gt
	case ast.Le:
		return ast.Ge
	case ast.Gt:
		return ast.Lt
	case ast.Ge:
		return ast.Le
	}
	return op
}
