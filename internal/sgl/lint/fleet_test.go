package lint

import (
	goast "go/ast"
	goparser "go/parser"
	gotoken "go/token"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"github.com/epicscale/sgl/internal/exec"
	"github.com/epicscale/sgl/internal/game"
)

// diagStrings renders diagnostics through Diagnostic.String for golden
// comparison.
func diagStrings(diags []Diagnostic) []string {
	out := []string{}
	for _, d := range diags {
		out = append(out, d.String())
	}
	return out
}

func compareGolden(t *testing.T, name string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: %d diagnostics, want %d\ngot:  %v\nwant: %v", name, len(got), len(want), got, want)
		return
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("%s: diagnostic %d = %q, want %q", name, i, got[i], want[i])
		}
	}
}

// TestBuiltinScriptGolden pins the built-in battle script's only
// finding: _TIME_RELOAD is consumed by the engine-side tick rule
// (Mechanics), not by the script text, so the dead-const check cannot
// see the use. Every other fleet finding in the script itself has been
// fixed (dead count in KnightFormation, dead hp output and the unused
// NearestHealer aggregate around WeakestEnemyInReach).
func TestBuiltinScriptGolden(t *testing.T) {
	diags := Lint(game.Script, Options{
		Mode:         ModeScript,
		Schema:       game.Schema(),
		Consts:       game.Consts(),
		Categoricals: game.Categoricals(),
	})
	compareGolden(t, "builtin", diagStrings(diags), []string{
		"1:1: SGL012 warn: game constant _TIME_RELOAD is never referenced by the script",
	})
}

// zooGoldens pins the zoo fleet. The zoo deliberately exercises every
// executor class, so several programs carry intentional performance
// findings — those are the point of the program, not defects. Programs
// absent from the map must lint clean.
var zooGoldens = map[string][]string{
	"one-sided-minmax-falls-back": {
		"3:3: SGL104 warn: output min of aggregate WeakestEast falls back to a per-probe scan even though the condition is index-usable (min/max over a one-sided range walks the partition)",
	},
	"mixed-output-classes": {
		"3:44: SGL011 warn: output column cx of aggregate Recon is never read at any call site",
	},
	"global-extrema": {
		"3:3: SGL011 warn: output column top of aggregate Best is never read at any call site",
		"4:3: SGL011 warn: output column low of aggregate Best is never read at any call site",
	},
	"multi-conjunct-greedy": {
		"10:8: SGL103 warn: conjunct u.cooldown = 0 could filter before the index probe of f but is trapped behind it in the pipeline of Tag — test it in an earlier if so the probe skips rejected rows",
		"10:40: SGL103 warn: conjunct u.health > 3 could filter before the index probe of f but is trapped behind it in the pipeline of Tag — test it in an earlier if so the probe skips rejected rows",
		"10:57: SGL103 warn: conjunct u.unittype <> 9 could filter before the index probe of f but is trapped behind it in the pipeline of Tag — test it in an earlier if so the probe skips rejected rows",
	},
}

func TestZooGoldens(t *testing.T) {
	for _, p := range exec.Zoo {
		diags := Lint(p.Src, Options{
			Mode:         ModeScript,
			Schema:       game.Schema(),
			Consts:       nil, // zoo programs are schema-only by design
			Categoricals: game.Categoricals(),
		})
		compareGolden(t, "zoo/"+p.Name, diagStrings(diags), zooGoldens[p.Name])
	}
}

// fleetSource is one SGL source extracted from a Go file's string
// literals.
type fleetSource struct {
	name string // file#index
	src  string
	mode Mode
}

// extractSGL parses a Go source file and returns every string literal
// that looks like an SGL program: script if it declares function main,
// query if it opens with an aggregate definition.
func extractSGL(t *testing.T, path string) []fleetSource {
	t.Helper()
	fset := gotoken.NewFileSet()
	f, err := goparser.ParseFile(fset, path, nil, 0)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	var out []fleetSource
	goast.Inspect(f, func(n goast.Node) bool {
		lit, ok := n.(*goast.BasicLit)
		if !ok || lit.Kind != gotoken.STRING {
			return true
		}
		raw := strings.Trim(lit.Value, "`\"")
		name := filepath.Base(filepath.Dir(path)) + "/" + filepath.Base(path)
		switch {
		case strings.Contains(raw, "function main"):
			out = append(out, fleetSource{name, raw, ModeScript})
		case strings.HasPrefix(strings.TrimSpace(raw), "aggregate "):
			out = append(out, fleetSource{name, raw, ModeQuery})
		}
		return true
	})
	if len(out) == 0 {
		t.Fatalf("no SGL sources found in %s", path)
	}
	for i := range out {
		out[i].name += "#" + string(rune('0'+i))
	}
	return out
}

// fleetAllowlist pins the accepted findings for the example and metrics
// scripts, keyed by "dir/file#i: diagnostic". Anything not listed fails
// the test — the fleet stays clean by construction.
//
// The pinned findings are deliberate: the checkpoint example's Zone and
// Closest queries exist to demonstrate the min/max and nearest query
// classes (non-divisible by nature), and the Figure-1 tier scripts plus
// the modding sample mirror the paper's script shapes — restructuring
// their strike guard to hoist u.cooldown above the probe would change
// the measured workloads and the documented example texts to silence a
// warning that is, for a reader, the interesting part.
var fleetAllowlist = map[string]bool{
	"checkpoint/main.go#1: 2:1: SGL102 warn: aggregate Zone is not divisible: a maintained or subscribed query rederives the full answer on every dirty tick instead of patching it (divisible functions: count, sum, avg, stddev, with an index-usable condition)":    true,
	"checkpoint/main.go#2: 2:1: SGL102 warn: aggregate Closest is not divisible: a maintained or subscribed query rederives the full answer on every dirty tick instead of patching it (divisible functions: count, sum, avg, stddev, with an index-usable condition)": true,
	"metrics/fig1.go#1: 21:19: SGL103 warn: conjunct u.cooldown = 0 could filter before the index probe of w but is trapped behind it in the pipeline of Strike — test it in an earlier if so the probe skips rejected rows":                                           true,
	"metrics/fig1.go#2: 43:23: SGL103 warn: conjunct u.cooldown = 0 could filter before the index probe of w but is trapped behind it in the pipeline of Strike — test it in an earlier if so the probe skips rejected rows":                                           true,
	"modding/main.go#0: 26:19: SGL103 warn: conjunct u.cooldown = 0 could filter before the index probe of w but is trapped behind it in the pipeline of Strike — test it in an earlier if so the probe skips rejected rows":                                           true,
}

// TestExampleAndMetricsScriptsClean lints every SGL source embedded in
// the example programs and the Figure-1 tier scripts. The fleet must be
// clean modulo the explicit allowlist above.
func TestExampleAndMetricsScriptsClean(t *testing.T) {
	files := []string{
		"../../../examples/quickstart/main.go",
		"../../../examples/checkpoint/main.go",
		"../../../examples/modding/main.go",
		"../../../examples/skeletons/main.go",
		"../../../internal/metrics/fig1.go",
	}
	var unexpected []string
	for _, path := range files {
		for _, s := range extractSGL(t, path) {
			opts := Options{
				Mode:         s.mode,
				Schema:       game.Schema(),
				Categoricals: game.Categoricals(),
			}
			// Scripts referencing game constants need them to compile;
			// schema-only sources skip them so the dead-const check
			// doesn't flag the whole constant table.
			if strings.Contains(s.src, "_TIME_RELOAD") || strings.Contains(s.src, "_HEAL") ||
				strings.Contains(s.src, "_SPREAD") || strings.Contains(s.src, "_PACK") || strings.Contains(s.src, "_HEALER") {
				opts.Consts = game.Consts()
			}
			for _, d := range Lint(s.src, opts) {
				key := s.name + ": " + d.String()
				if !fleetAllowlist[key] {
					unexpected = append(unexpected, key)
				}
			}
		}
	}
	sort.Strings(unexpected)
	for _, u := range unexpected {
		t.Errorf("unexpected fleet finding: %s", u)
	}
}
