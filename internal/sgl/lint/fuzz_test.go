package lint

import (
	"testing"

	"github.com/epicscale/sgl/internal/exec"
	"github.com/epicscale/sgl/internal/game"
)

// FuzzLint asserts the diagnostics engine never panics or hangs on
// arbitrary input, in either mode: whatever the front end does with the
// source (reject or accept), lint must return a (possibly empty)
// diagnostic list. Seeds are the same corpus the front-end fuzzer uses
// (the zoo plus the battle script), so any input that exercises a
// parser edge also exercises the analyzers behind it.
func FuzzLint(f *testing.F) {
	for _, zp := range exec.Zoo {
		f.Add(zp.Src)
	}
	f.Add(game.Script)
	f.Add(`aggregate Q(u) := min(e.health) over e where e.posx > 0 and e.posx < 1;`)
	schema := game.Schema()
	consts := game.Consts()
	cats := game.Categoricals()
	f.Fuzz(func(t *testing.T, src string) {
		for _, mode := range []Mode{ModeScript, ModeQuery} {
			diags := Lint(src, Options{Mode: mode, Schema: schema, Consts: consts, Categoricals: cats})
			for _, d := range diags {
				if d.Code == "" || d.Msg == "" {
					t.Fatalf("mode %v: empty diagnostic %+v", mode, d)
				}
			}
		}
	})
}
