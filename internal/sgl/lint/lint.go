// Package lint is the SGL diagnostics engine: a multi-rule static-analysis
// pass over parsed and checked scripts producing structured, positioned,
// coded diagnostics. One engine backs the sglvet CLI, sglc -vet, and the
// server's create-from-script / query / subscribe compile paths.
//
// Codes come in two families:
//
//   - SGL0xx — correctness. 001–004 are compile-blocking (the script is
//     rejected by the parser or by sem; lint re-reports them with a code
//     and a precise position). 005–012 compile fine but indicate code
//     that cannot mean what it says: division by a constant zero,
//     conjunctions that are always false or conjuncts that are always
//     true (interval analysis over call-free comparisons), and dead
//     definitions, lets, parameters, output columns and constants.
//
//   - SGL1xx — performance. These mirror the real executor's classifiers
//     (internal/exec.Analyzer, exec.AnswerPlan, internal/algebra's
//     pipeline report): a definition whose pipeline is residual class,
//     a non-divisible aggregate in a maintained/subscribed query, an
//     output falling back to a per-probe scan, a guard that cannot be
//     pushed below the index probe. Lint calls the exact classifier the
//     engine runs with, so lint and executor can never disagree.
//
// The paper framing: which query classes admit efficient (incremental,
// indexed) evaluation is decidable from the query text alone — so decide
// it at compile time and tell the user, instead of silently falling back
// at runtime.
package lint

import (
	"fmt"
	"sort"

	"github.com/epicscale/sgl/internal/sgl/token"
	"github.com/epicscale/sgl/internal/table"
)

// Severity of a diagnostic: "error" means the script does not compile;
// "warn" means it compiles but something is wrong or slow.
type Severity string

// Severities.
const (
	SevError Severity = "error"
	SevWarn  Severity = "warn"
)

// Diagnostic is one lint finding.
type Diagnostic struct {
	Code     string    `json:"code"`
	Severity Severity  `json:"severity"`
	Pos      token.Pos `json:"-"`
	Line     int       `json:"line"`
	Col      int       `json:"col"`
	Msg      string    `json:"msg"`
}

// String renders the diagnostic in the conventional line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%d:%d: %s %s: %s", d.Line, d.Col, d.Code, d.Severity, d.Msg)
}

// Mode selects which compile pipeline the source is checked against.
type Mode int

// Modes.
const (
	// ModeScript is a behavior script: sem.Check, entry point main.
	ModeScript Mode = iota
	// ModeQuery is a read-only observation query: sem.CheckQuery, the
	// last aggregate is the entry point.
	ModeQuery
)

// Options configure a lint run. Schema is required; the rest default to
// empty.
type Options struct {
	Mode   Mode
	Schema *table.Schema
	Consts map[string]float64
	// Categoricals are the partitioning attributes the engine will run
	// with — they decide index usability, so lint must be given the same
	// list the engine is (the server and battlesim use game.Categoricals).
	Categoricals []string
}

// Diagnostic codes. The full table with examples lives in LANGUAGE.md.
const (
	CodeCompile      = "SGL001" // parse or semantic error
	CodeDupDecl      = "SGL002" // duplicate declaration
	CodeDupParam     = "SGL003" // duplicate parameter
	CodeShadow       = "SGL004" // let shadows an existing binding
	CodeDivZero      = "SGL005" // division/modulus by constant zero
	CodeAlwaysFalse  = "SGL006" // condition can never hold
	CodeAlwaysTrue   = "SGL007" // conjunct always holds (foldable)
	CodeDeadDef      = "SGL008" // definition never used
	CodeDeadLet      = "SGL009" // let binding never read
	CodeDeadParam    = "SGL010" // parameter never read
	CodeDeadOutput   = "SGL011" // aggregate output column never read
	CodeDeadConst    = "SGL012" // game constant never referenced
	CodeResidual     = "SGL101" // definition not index-usable
	CodeNonDivisible = "SGL102" // non-divisible aggregate in maintained/subscribed query
	CodeGuardBlocked = "SGL103" // guard not pushable below the index probe
	CodeScanOutput   = "SGL104" // output falls back to scan despite indexable def
)

func severityOf(code string) Severity {
	switch code {
	case CodeCompile, CodeDupDecl, CodeDupParam, CodeShadow:
		return SevError
	default:
		return SevWarn
	}
}

// linter accumulates diagnostics for one run.
type linter struct {
	opts  Options
	diags []Diagnostic
}

func (l *linter) report(code string, pos token.Pos, format string, args ...any) {
	l.diags = append(l.diags, Diagnostic{
		Code:     code,
		Severity: severityOf(code),
		Pos:      pos,
		Line:     pos.Line,
		Col:      pos.Col,
		Msg:      fmt.Sprintf(format, args...),
	})
}

// Lint runs every rule against src and returns the findings sorted by
// position, then code. It never panics on any input the lexer accepts:
// a source that fails to parse or check yields a single SGL001.
func Lint(src string, opts Options) []Diagnostic {
	l := &linter{opts: opts}
	l.run(src)
	sort.SliceStable(l.diags, func(i, j int) bool {
		a, b := l.diags[i], l.diags[j]
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Code < b.Code
	})
	return l.diags
}

// HasErrors reports whether any diagnostic is compile-blocking.
func HasErrors(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Severity == SevError {
			return true
		}
	}
	return false
}

// Strings renders each diagnostic on its own line (for golden files and
// test failure output).
func Strings(diags []Diagnostic) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.String()
	}
	return out
}
