package lint

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"github.com/epicscale/sgl/internal/game"
)

func lintScript(t *testing.T, src string) []Diagnostic {
	t.Helper()
	return Lint(src, Options{
		Mode:         ModeScript,
		Schema:       game.Schema(),
		Categoricals: game.Categoricals(),
	})
}

func lintQuery(t *testing.T, src string) []Diagnostic {
	t.Helper()
	return Lint(src, Options{
		Mode:         ModeQuery,
		Schema:       game.Schema(),
		Categoricals: game.Categoricals(),
	})
}

// codes returns the distinct diagnostic codes, sorted.
func codes(diags []Diagnostic) []string { return sortedCodes(diags) }

func wantCodes(t *testing.T, diags []Diagnostic, want ...string) {
	t.Helper()
	got := codes(diags)
	if want == nil {
		want = []string{}
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("codes = %v, want %v\ndiagnostics:\n%s", got, want, strings.Join(Strings(diags), "\n"))
	}
}

// A lint-clean script: everything reachable, indexed, divisible, no guard
// after the probe.
const cleanSrc = `
aggregate Foes(u) :=
  count(*)
  over e where e.player <> u.player
    and e.posx >= u.posx - 5 and e.posx <= u.posx + 5;
action Tag(u, v) := on e where e.key = u.key set damage = v;
function main(u) { perform Tag(u, Foes(u)) }`

func TestCleanScriptHasNoDiagnostics(t *testing.T) {
	wantCodes(t, lintScript(t, cleanSrc))
}

func TestParseErrorIsSGL001(t *testing.T) {
	diags := lintScript(t, "function main(u) {")
	wantCodes(t, diags, CodeCompile)
	if !HasErrors(diags) {
		t.Error("parse failure should be an error-severity diagnostic")
	}
	if diags[0].Line == 0 || diags[0].Col == 0 {
		t.Errorf("SGL001 carries no position: %+v", diags[0])
	}
}

func TestSemErrorIsSGL001(t *testing.T) {
	src := `function main(u) { perform Missing(u) }`
	diags := lintScript(t, src)
	wantCodes(t, diags, CodeCompile)
	if want := "Missing"; !strings.Contains(diags[0].Msg, want) {
		t.Errorf("msg %q does not mention %q", diags[0].Msg, want)
	}
}

func TestDuplicateDeclarationIsSGL002(t *testing.T) {
	src := `
aggregate N(u) := count(*) over e;
aggregate N(u) := sum(e.health) over e;
action Tag(u, v) := on e where e.key = u.key set damage = v;
function main(u) { perform Tag(u, N(u)) }`
	diags := lintScript(t, src)
	// sem also rejects the script; the sharper SGL002 must be the only
	// error at that position.
	wantCodes(t, diags, CodeDupDecl)
	if diags[0].Line != 3 {
		t.Errorf("SGL002 at line %d, want 3 (the redeclaration)", diags[0].Line)
	}
}

func TestDuplicateParamIsSGL003AtParamPosition(t *testing.T) {
	src := `
action Tag(u, v, v) := on e where e.key = u.key set damage = v;
function main(u) { perform Tag(u, 1, 2) }`
	diags := lintScript(t, src)
	wantCodes(t, diags, CodeDupParam)
	d := diags[0]
	if d.Line != 2 || d.Col != 18 {
		t.Errorf("SGL003 at %d:%d, want 2:18 (the second v)", d.Line, d.Col)
	}
}

func TestShadowIsSGL004(t *testing.T) {
	src := `
action Tag(u, v) := on e where e.key = u.key set damage = v;
function main(u) {
  (let x = 1) (let x = 2) perform Tag(u, x)
}`
	diags := lintScript(t, src)
	wantCodes(t, diags, CodeShadow)
}

func TestDivisionByConstantZeroIsSGL005(t *testing.T) {
	src := `
action Tag(u, v) := on e where e.key = u.key set damage = v;
function main(u) { perform Tag(u, u.health / (2 - 2)) }`
	diags := lintScript(t, src)
	wantCodes(t, diags, CodeDivZero)
}

func TestUnsatisfiableConjunctionIsSGL006(t *testing.T) {
	src := `
aggregate N(u) := count(*) over e where e.health > 5 and e.health < 3;
action Tag(u, v) := on e where e.key = u.key set damage = v;
function main(u) { perform Tag(u, N(u)) }`
	diags := lintScript(t, src)
	wantCodes(t, diags, CodeAlwaysFalse)
	if !strings.Contains(diags[0].Msg, "e.health") {
		t.Errorf("SGL006 should name the term: %s", diags[0].Msg)
	}
}

func TestConstantFalseComparisonIsSGL006(t *testing.T) {
	src := `
aggregate N(u) := count(*) over e where 1 > 2;
action Tag(u, v) := on e where e.key = u.key set damage = v;
function main(u) { perform Tag(u, N(u)) }`
	wantCodes(t, lintScript(t, src), CodeAlwaysFalse)
}

func TestNaNComparisonIsSGL006(t *testing.T) {
	src := `
aggregate N(u) := count(*) over e where e.health > 0 / 0;
action Tag(u, v) := on e where e.key = u.key set damage = v;
function main(u) { perform Tag(u, N(u)) }`
	diags := lintScript(t, src)
	for _, d := range diags {
		if d.Code == CodeAlwaysFalse && strings.Contains(d.Msg, "NaN") {
			return
		}
	}
	t.Errorf("no NaN SGL006 among:\n%s", strings.Join(Strings(diags), "\n"))
}

func TestImpliedConjunctIsSGL007(t *testing.T) {
	src := `
aggregate N(u) := count(*) over e where e.health > 5 and e.health > 3;
action Tag(u, v) := on e where e.key = u.key set damage = v;
function main(u) { perform Tag(u, N(u)) }`
	diags := lintScript(t, src)
	wantCodes(t, diags, CodeAlwaysTrue)
	if diags[0].Line != 2 {
		t.Errorf("SGL007 at line %d, want 2", diags[0].Line)
	}
}

func TestOrArmsAnalyzedIndependently(t *testing.T) {
	// Each arm is feasible on its own; the union must not be merged into
	// one empty interval.
	src := `
aggregate N(u) := count(*) over e where e.health <= 8 or e.health >= 25;
action Tag(u, v) := on e where e.key = u.key set damage = v;
function main(u) { perform Tag(u, N(u)) }`
	for _, d := range lintScript(t, src) {
		if d.Code == CodeAlwaysFalse || d.Code == CodeAlwaysTrue {
			t.Errorf("disjunction misanalyzed: %s", d)
		}
	}
}

func TestNegationIsNotFlagged(t *testing.T) {
	src := `
aggregate N(u) := count(*) over e where not (e.health > 5 and e.health < 3);
action Tag(u, v) := on e where e.key = u.key set damage = v;
function main(u) { perform Tag(u, N(u)) }`
	for _, d := range lintScript(t, src) {
		if d.Code == CodeAlwaysFalse {
			t.Errorf("negated unsat conjunction flagged as unsat: %s", d)
		}
	}
}

func TestDeadDefinitionIsSGL008(t *testing.T) {
	src := `
aggregate Unused(u) := count(*) over e;
action Tag(u, v) := on e where e.key = u.key set damage = v;
function helper(u) { perform Tag(u, 1) }
function main(u) { perform Tag(u, 0) }`
	diags := lintScript(t, src)
	wantCodes(t, diags, CodeDeadDef)
	var names []string
	for _, d := range diags {
		names = append(names, d.Msg)
	}
	joined := strings.Join(names, "\n")
	if !strings.Contains(joined, "Unused") || !strings.Contains(joined, "helper") {
		t.Errorf("dead Unused and helper not both reported:\n%s", joined)
	}
}

func TestDeadLetIsSGL009(t *testing.T) {
	src := `
action Tag(u, v) := on e where e.key = u.key set damage = v;
function main(u) { (let x = 1) perform Tag(u, 2) }`
	wantCodes(t, lintScript(t, src), CodeDeadLet)
}

func TestDeadParamIsSGL010ButUnitParamIsExempt(t *testing.T) {
	src := `
aggregate Everyone(u) := count(*) over e;
action Tag(u, v, w) := on e where e.key = u.key set damage = v;
function main(u) { perform Tag(u, Everyone(u), 3) }`
	diags := lintScript(t, src)
	wantCodes(t, diags, CodeDeadParam)
	if !strings.Contains(diags[0].Msg, "parameter w") {
		t.Errorf("SGL010 should name w, got: %s", diags[0].Msg)
	}
}

func TestDeadOutputColumnIsSGL011(t *testing.T) {
	src := `
aggregate Stats(u) := count(*) as n, sum(e.health) as hp over e where e.player = u.player;
action Tag(u, v) := on e where e.key = u.key set damage = v;
function main(u) { (let s = Stats(u)) perform Tag(u, s.n) }`
	diags := lintScript(t, src)
	wantCodes(t, diags, CodeDeadOutput)
	if !strings.Contains(diags[0].Msg, "hp") {
		t.Errorf("SGL011 should name hp, got: %s", diags[0].Msg)
	}
}

func TestRecordUseReadsEveryColumn(t *testing.T) {
	// Passing the record variable whole (record expansion) uses all
	// columns — no SGL011.
	src := `
aggregate Stats(u) := count(*) as n, sum(e.health) as hp over e where e.player = u.player;
action Tag(u, a, b) := on e where e.key = u.key set damage = a + b;
function main(u) { (let s = Stats(u)) perform Tag(u, s) }`
	for _, d := range lintScript(t, src) {
		if d.Code == CodeDeadOutput {
			t.Errorf("record expansion misread as dead column: %s", d)
		}
	}
}

func TestDeadConstIsSGL012ScriptModeOnly(t *testing.T) {
	src := `
action Tag(u, v) := on e where e.key = u.key set damage = v;
function main(u) { perform Tag(u, _SPEED) }`
	consts := map[string]float64{"_SPEED": 2, "_RANGE": 7}
	diags := Lint(src, Options{
		Mode: ModeScript, Schema: game.Schema(),
		Consts: consts, Categoricals: game.Categoricals(),
	})
	wantCodes(t, diags, CodeDeadConst)
	if !strings.Contains(diags[0].Msg, "_RANGE") {
		t.Errorf("SGL012 should name RANGE, got: %s", diags[0].Msg)
	}

	qdiags := Lint(`aggregate N(u) := count(*) over e;`, Options{
		Mode: ModeQuery, Schema: game.Schema(),
		Consts: consts, Categoricals: game.Categoricals(),
	})
	for _, d := range qdiags {
		if d.Code == CodeDeadConst {
			t.Errorf("SGL012 must not fire in query mode: %s", d)
		}
	}
}

func TestResidualConditionIsSGL101(t *testing.T) {
	src := `
aggregate Odd(u) := count(*) over e where e.posx + e.posy > u.posx;
action Tag(u, v) := on e where e.key = u.key set damage = v;
function main(u) { perform Tag(u, Odd(u)) }`
	diags := lintScript(t, src)
	wantCodes(t, diags, CodeResidual)
	if diags[0].Line != 2 {
		t.Errorf("SGL101 anchored at line %d, want 2 (the residual conjunct)", diags[0].Line)
	}
}

func TestScanActionIsSGL101(t *testing.T) {
	src := `
action Curse(u) := on e where e.posx * e.posy > 10 set damage = 1;
function main(u) { perform Curse(u) }`
	diags := lintScript(t, src)
	wantCodes(t, diags, CodeResidual)
	if !strings.Contains(diags[0].Msg, "Curse") {
		t.Errorf("SGL101 should name the action: %s", diags[0].Msg)
	}
}

func TestNonDivisibleQueryIsSGL102(t *testing.T) {
	src := `aggregate Weakest(u) := min(e.health) over e where e.player = u.player;`
	diags := lintQuery(t, src)
	found := false
	for _, d := range diags {
		if d.Code == CodeNonDivisible {
			found = true
			if !strings.Contains(d.Msg, "rederives") {
				t.Errorf("SGL102 should explain the rederive cost: %s", d.Msg)
			}
		}
	}
	if !found {
		t.Errorf("min() query produced no SGL102:\n%s", strings.Join(Strings(diags), "\n"))
	}
}

func TestDivisibleQueryHasNoSGL102(t *testing.T) {
	src := `aggregate Hurt(u) := count(*) over e where e.health <= 50;`
	for _, d := range lintQuery(t, src) {
		if d.Code == CodeNonDivisible {
			t.Errorf("divisible count query flagged SGL102: %s", d)
		}
	}
}

func TestTrappedPushableConjunctIsSGL103(t *testing.T) {
	// u.cooldown = 0 reads no extension: split into its own if it would
	// run before the Foes probe, but sharing the guard with n > 3 traps
	// it behind the probe.
	src := `
aggregate Foes(u) := count(*) over e where e.player <> u.player;
action Tag(u, v) := on e where e.key = u.key set damage = v;
function main(u) { (let n = Foes(u)) { if n > 3 and u.cooldown = 0 then perform Tag(u, n) } }`
	diags := lintScript(t, src)
	wantCodes(t, diags, CodeGuardBlocked)
	if !strings.Contains(diags[0].Msg, "u.cooldown") {
		t.Errorf("SGL103 should name the trapped conjunct: %s", diags[0].Msg)
	}
}

func TestGuardReadingOnlyProbeResultHasNoSGL103(t *testing.T) {
	// A guard that reads the probe's own result cannot run anywhere else
	// — not a finding.
	src := `
aggregate Foes(u) := count(*) over e where e.player <> u.player;
action Tag(u, v) := on e where e.key = u.key set damage = v;
function main(u) { (let n = Foes(u)) { if n > 3 then perform Tag(u, n) } }`
	for _, d := range lintScript(t, src) {
		if d.Code == CodeGuardBlocked {
			t.Errorf("probe-result guard flagged SGL103: %s", d)
		}
	}
}

func TestGuardBeforeProbeHasNoSGL103(t *testing.T) {
	// u-only guard in its own if: pushdown hoists it above the probe.
	src := `
aggregate Foes(u) := count(*) over e where e.player <> u.player;
action Tag(u, v) := on e where e.key = u.key set damage = v;
function main(u) { if u.cooldown = 0 then (let n = Foes(u)) perform Tag(u, n) }`
	for _, d := range lintScript(t, src) {
		if d.Code == CodeGuardBlocked {
			t.Errorf("hoistable guard flagged SGL103: %s", d)
		}
	}
}

func TestScanOutputIsSGL104(t *testing.T) {
	src := `
aggregate WeakestEast(u) := min(e.health) over e where e.posx >= u.posx and e.player <> u.player;
action Tag(u, v) := on e where e.key = u.key set damage = v;
function main(u) { perform Tag(u, WeakestEast(u)) }`
	diags := lintScript(t, src)
	wantCodes(t, diags, CodeScanOutput)
	if !strings.Contains(diags[0].Msg, "min") {
		t.Errorf("SGL104 should name the output: %s", diags[0].Msg)
	}
}

func TestQueryModeDeadAggIsSGL008WithEntryPointHint(t *testing.T) {
	src := `
aggregate First(u) := count(*) over e;
aggregate Second(u) := sum(e.health) over e;`
	diags := lintQuery(t, src)
	found := false
	for _, d := range diags {
		if d.Code == CodeDeadDef {
			found = true
			if !strings.Contains(d.Msg, "entry point") {
				t.Errorf("query-mode SGL008 should explain the entry rule: %s", d.Msg)
			}
			if d.Line != 2 {
				t.Errorf("dead aggregate is First at line 2, got line %d", d.Line)
			}
		}
	}
	if !found {
		t.Error("non-entry aggregate not reported dead in query mode")
	}
}

func TestDiagnosticsAreSortedAndStable(t *testing.T) {
	src := `
aggregate Unused(u) := count(*) over e;
action Tag(u, v) := on e where e.key = u.key set damage = v;
function main(u) { (let x = 1) perform Tag(u, 1 / 0) }`
	a := lintScript(t, src)
	b := lintScript(t, src)
	if !reflect.DeepEqual(a, b) {
		t.Error("lint output is not deterministic")
	}
	for i := 1; i < len(a); i++ {
		if a[i].Line < a[i-1].Line {
			t.Errorf("diagnostics out of order: %s before %s", a[i-1], a[i])
		}
	}
}

func TestDiagnosticJSONShape(t *testing.T) {
	diags := lintScript(t, `
aggregate N(u) := count(*) over e where 1 > 2;
action Tag(u, v) := on e where e.key = u.key set damage = v;
function main(u) { perform Tag(u, N(u)) }`)
	raw, err := json.Marshal(diags)
	if err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	d := decoded[0]
	for _, k := range []string{"code", "severity", "line", "col", "msg"} {
		if _, ok := d[k]; !ok {
			t.Errorf("JSON diagnostic missing %q: %v", k, d)
		}
	}
	if _, leaked := d["Pos"]; leaked {
		t.Error("internal Pos field leaked into JSON")
	}
}
