package lint

import (
	"testing"

	"github.com/epicscale/sgl/internal/algebra"
	"github.com/epicscale/sgl/internal/engine"
	"github.com/epicscale/sgl/internal/exec"
	"github.com/epicscale/sgl/internal/game"
	"github.com/epicscale/sgl/internal/sgl/parser"
	"github.com/epicscale/sgl/internal/sgl/sem"
	"github.com/epicscale/sgl/internal/workload"
)

// TestLintClassificationMatchesRuntime is the consistency contract
// between static analysis and execution: for the built-in script and
// every zoo program, the classification lint computes (its own
// exec.NewAnalyzer) must byte-match the classification the live engine
// runs with (engine.Analyzer()), and the pipeline placement lint reads
// (a fresh Translate→Optimize→Report) must byte-match the report of the
// plan the engine actually compiled (engine.Plan()). Both sides render
// through the same functions — FormatClassification and
// algebra.FormatReports — so a divergence is a real analyzer/optimizer
// drift, not a formatting difference.
func TestLintClassificationMatchesRuntime(t *testing.T) {
	type program struct {
		name   string
		src    string
		consts map[string]float64
	}
	programs := []program{{"builtin", game.Script, game.Consts()}}
	for _, p := range exec.Zoo {
		programs = append(programs, program{"zoo/" + p.Name, p.Src, nil})
	}

	rows := workload.Generate(workload.Spec{Units: 64, Density: 0.02, Seed: 11, Formation: workload.BattleLines})
	for _, p := range programs {
		script, err := parser.Parse(p.src)
		if err != nil {
			t.Fatalf("%s: parse: %v", p.name, err)
		}
		prog, err := sem.Check(script, game.Schema(), p.consts)
		if err != nil {
			t.Fatalf("%s: check: %v", p.name, err)
		}

		// Static side: exactly what the linter consults.
		staticClass := FormatClassification(exec.NewAnalyzer(prog, game.Categoricals()), prog)
		plan, err := algebra.Translate(prog)
		if err != nil {
			t.Fatalf("%s: translate: %v", p.name, err)
		}
		staticRep, err := algebra.Report(prog, algebra.Optimize(plan))
		if err != nil {
			t.Fatalf("%s: static report: %v", p.name, err)
		}

		// Runtime side: the engine's own analyzer and compiled plan.
		eng, err := engine.New(prog, game.NewMechanics(), rows.Clone(), engine.Options{
			Mode:         engine.Indexed,
			Categoricals: game.Categoricals(),
			Seed:         11,
			Side:         64,
			MoveSpeed:    1,
		})
		if err != nil {
			t.Fatalf("%s: engine: %v", p.name, err)
		}
		liveClass := FormatClassification(eng.Analyzer(), prog)
		liveRep, err := algebra.Report(prog, eng.Plan())
		if err != nil {
			t.Fatalf("%s: live report: %v", p.name, err)
		}

		if staticClass != liveClass {
			t.Errorf("%s: classification drift between lint and engine\nlint:\n%s\nengine:\n%s", p.name, staticClass, liveClass)
		}
		if got, want := algebra.FormatReports(liveRep), algebra.FormatReports(staticRep); got != want {
			t.Errorf("%s: pipeline drift between lint and engine\nlint:\n%s\nengine:\n%s", p.name, want, got)
		}
	}
}

// TestLintDivisibilityMatchesMaintainedPlan pins SGL102 to the
// executor's own divisibility decision: for a spread of query shapes,
// lint reports SGL102 exactly when the engine's maintained-answer plan
// declares the query non-divisible (i.e. it will rederive instead of
// patch).
func TestLintDivisibilityMatchesMaintainedPlan(t *testing.T) {
	queries := []string{
		`aggregate Pop(u) := count(*) over e;`,
		`aggregate HP(u, p) := sum(e.health) as hp, avg(e.health) as mean over e where e.player = p;`,
		`aggregate Weak(u) := min(e.health) as weakest over e;`,
		`aggregate Near(u) := nearestkey() as key, nearestdist() as dist over e;`,
		`aggregate Spread(u) := stddev(e.posx) over e;`,
		`aggregate Frail(u) := argmin(e.health) as key over e;`,
		`aggregate Odd(u) := count(*) over e where e.posx * e.posy > 10;`,
	}
	rows := workload.Generate(workload.Spec{Units: 32, Density: 0.02, Seed: 5, Formation: workload.BattleLines})
	script, err := parser.Parse(game.Script)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := sem.Check(script, game.Schema(), game.Consts())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(prog, game.NewMechanics(), rows, engine.Options{
		Mode: engine.Indexed, Categoricals: game.Categoricals(), Seed: 5, Side: 64, MoveSpeed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range queries {
		q, err := engine.CompileQuery(src, game.Schema(), nil)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		divisible := eng.MaintainedPlan(q).Divisible()

		diags := Lint(src, Options{Mode: ModeQuery, Schema: game.Schema(), Categoricals: game.Categoricals()})
		warned := false
		for _, d := range diags {
			if d.Code == CodeNonDivisible {
				warned = true
			}
		}
		if warned == divisible {
			t.Errorf("%s: lint SGL102=%v but MaintainedPlan.Divisible()=%v — the shared classifier disagrees with itself", src, warned, divisible)
		}
	}
}
