package lint

import (
	"sort"

	"github.com/epicscale/sgl/internal/sgl/ast"
	"github.com/epicscale/sgl/internal/sgl/sem"
	"github.com/epicscale/sgl/internal/sgl/token"
)

// reachSet holds the declarations reachable from the entry point.
type reachSet struct {
	funcs map[*ast.FuncDef]bool
	aggs  map[*ast.AggDef]bool
	acts  map[*ast.ActDef]bool
}

// reachable computes the declarations the entry point can reach: main's
// perform/call closure in script mode, the entry aggregate (the last one
// declared) in query mode. Resolution uses sem's own tables, so lint's
// notion of "used" is exactly the compiler's.
func (l *linter) reachable(prog *sem.Program) *reachSet {
	r := &reachSet{
		funcs: map[*ast.FuncDef]bool{},
		aggs:  map[*ast.AggDef]bool{},
		acts:  map[*ast.ActDef]bool{},
	}
	if l.opts.Mode == ModeQuery {
		if n := len(prog.Script.Aggs); n > 0 {
			r.aggs[prog.Script.Aggs[n-1]] = true
		}
		return r
	}
	var visit func(f *ast.FuncDef)
	visit = func(f *ast.FuncDef) {
		if r.funcs[f] {
			return
		}
		r.funcs[f] = true
		ast.Inspect(f, func(n any) bool {
			switch x := n.(type) {
			case *ast.Call:
				if def := prog.AggCalls[x]; def != nil {
					r.aggs[def] = true
				}
			case *ast.Perform:
				if tgt := prog.Performs[x]; tgt != nil {
					if tgt.Act != nil {
						r.acts[tgt.Act] = true
					}
					if tgt.Func != nil {
						visit(tgt.Func)
					}
				}
			}
			return true
		})
	}
	if prog.Main != nil {
		visit(prog.Main)
	}
	return r
}

// checkDeadDefs reports SGL008 for declarations the entry point cannot
// reach.
func (l *linter) checkDeadDefs(prog *sem.Program, reach *reachSet) {
	for _, f := range prog.Script.Funcs {
		if !reach.funcs[f] {
			l.report(CodeDeadDef, f.P, "function %s is never performed", f.Name)
		}
	}
	for _, a := range prog.Script.Aggs {
		if reach.aggs[a] {
			continue
		}
		if l.opts.Mode == ModeQuery {
			l.report(CodeDeadDef, a.P, "aggregate %s is never evaluated: the last declared aggregate is the query entry point, and definitions cannot reference each other", a.Name)
		} else {
			l.report(CodeDeadDef, a.P, "aggregate %s is never called", a.Name)
		}
	}
	for _, a := range prog.Script.Acts {
		if !reach.acts[a] {
			l.report(CodeDeadDef, a.P, "action %s is never performed", a.Name)
		}
	}
}

// checkDeadLets reports SGL009 for let bindings whose name is never read
// in their body. sem rejects shadowing, so a textual match inside the
// body is exact.
func (l *linter) checkDeadLets(script *ast.Script) {
	for _, f := range script.Funcs {
		ast.Inspect(f, func(n any) bool {
			let, ok := n.(*ast.Let)
			if !ok {
				return true
			}
			if !nameRead(let.Body, let.Name) {
				l.report(CodeDeadLet, let.P, "let %s is never read in function %s", let.Name, f.Name)
			}
			return true
		})
	}
}

// nameRead reports whether the name is read anywhere in the node: as a
// bare variable or as the base of a field access.
func nameRead(root any, name string) bool {
	found := false
	ast.Inspect(root, func(n any) bool {
		switch x := n.(type) {
		case *ast.VarRef:
			if x.Name == name {
				found = true
			}
		case *ast.FieldRef:
			if x.Base == name {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkDeadParams reports SGL010 for parameters beyond the unit parameter
// that the declaration never reads. (An unused unit parameter is normal —
// `count(*) over e` aggregates legitimately ignore their probe unit.)
func (l *linter) checkDeadParams(script *ast.Script) {
	deadParams := func(owner string, params []string, ppos []token.Pos, fallback token.Pos, body any) {
		for i, p := range params {
			if i == 0 {
				continue
			}
			if !nameRead(body, p) {
				pos := fallback
				if i < len(ppos) {
					pos = ppos[i]
				}
				l.report(CodeDeadParam, pos, "parameter %s of %s is never read", p, owner)
			}
		}
	}
	for _, f := range script.Funcs {
		deadParams("function "+f.Name, f.Params, f.ParamPos, f.P, f.Body)
	}
	for _, a := range script.Aggs {
		deadParams("aggregate "+a.Name, a.Params, a.ParamPos, a.P, a)
	}
	for _, a := range script.Acts {
		deadParams("action "+a.Name, a.Params, a.ParamPos, a.P, a)
	}
}

// checkDeadOutputs reports SGL011 for output columns of reachable
// multi-output aggregates that no call site ever reads. A call used as a
// whole record (record-expanded perform argument, componentwise
// arithmetic, a let variable read bare) uses every column.
func (l *linter) checkDeadOutputs(prog *sem.Program, reach *reachSet) {
	if l.opts.Mode == ModeQuery {
		return // the entry aggregate's outputs are the query's result row
	}
	// used[def][column name] — only reachable multi-output aggregates.
	used := map[*ast.AggDef]map[string]bool{}
	for _, a := range prog.Script.Aggs {
		if len(a.Outputs) > 1 && reach.aggs[a] {
			used[a] = map[string]bool{}
		}
	}
	if len(used) == 0 {
		return
	}
	u := &outputUseWalker{prog: prog, used: used}
	for _, f := range prog.Script.Funcs {
		u.action(f.Body, map[string]*ast.AggDef{})
	}
	for _, a := range prog.Script.Aggs {
		m := used[a]
		if m == nil {
			continue
		}
		for _, out := range a.Outputs {
			if !m[out.As] {
				l.report(CodeDeadOutput, out.P, "output column %s of aggregate %s is never read at any call site", out.As, a.Name)
			}
		}
	}
}

// outputUseWalker tracks which columns of multi-output aggregate results
// are read. lets maps in-scope record variables to the aggregate whose
// result they hold.
type outputUseWalker struct {
	prog *sem.Program
	used map[*ast.AggDef]map[string]bool
}

func (u *outputUseWalker) useAll(def *ast.AggDef) {
	if m := u.used[def]; m != nil {
		for _, out := range def.Outputs {
			m[out.As] = true
		}
	}
}

func (u *outputUseWalker) action(a ast.Action, lets map[string]*ast.AggDef) {
	switch n := a.(type) {
	case *ast.Let:
		// A let binding a bare tracked aggregate call: field reads of the
		// variable mark single columns, bare reads mark all.
		if call, ok := n.Value.(*ast.Call); ok {
			if def := u.prog.AggCalls[call]; def != nil && u.used[def] != nil {
				for _, arg := range call.Args {
					u.term(arg, lets)
				}
				inner := cloneLets(lets)
				inner[n.Name] = def
				u.action(n.Body, inner)
				return
			}
		}
		u.term(n.Value, lets)
		inner := cloneLets(lets)
		delete(inner, n.Name)
		u.action(n.Body, inner)
	case *ast.Seq:
		for _, s := range n.Acts {
			u.action(s, lets)
		}
	case *ast.If:
		u.cond(n.Cond, lets)
		u.action(n.Then, lets)
		if n.Else != nil {
			u.action(n.Else, lets)
		}
	case *ast.Perform:
		for _, t := range n.Args {
			u.term(t, lets)
		}
	}
}

// term marks aggregate output columns a term reads. Field access on a
// call or a tracked record variable marks one column; any other
// appearance marks all columns (record expansion reads everything).
func (u *outputUseWalker) term(t ast.Term, lets map[string]*ast.AggDef) {
	switch n := t.(type) {
	case nil:
		return
	case *ast.Field:
		if call, ok := n.X.(*ast.Call); ok {
			if def := u.prog.AggCalls[call]; def != nil && u.used[def] != nil {
				u.used[def][n.Field] = true
				for _, arg := range call.Args {
					u.term(arg, lets)
				}
				return
			}
		}
		u.term(n.X, lets)
	case *ast.FieldRef:
		if def := lets[n.Base]; def != nil {
			if m := u.used[def]; m != nil {
				m[n.Field] = true
			}
		}
	case *ast.VarRef:
		if def := lets[n.Name]; def != nil {
			u.useAll(def)
		}
	case *ast.Call:
		if def := u.prog.AggCalls[n]; def != nil {
			u.useAll(def)
		}
		for _, a := range n.Args {
			u.term(a, lets)
		}
	case *ast.Binary:
		u.term(n.X, lets)
		u.term(n.Y, lets)
	case *ast.Neg:
		u.term(n.X, lets)
	case *ast.Pair:
		u.term(n.X, lets)
		u.term(n.Y, lets)
	}
}

func (u *outputUseWalker) cond(c ast.Cond, lets map[string]*ast.AggDef) {
	ast.Inspect(c, func(n any) bool {
		if cmp, ok := n.(*ast.Compare); ok {
			u.term(cmp.X, lets)
			u.term(cmp.Y, lets)
			return false
		}
		return true
	})
}

func cloneLets(m map[string]*ast.AggDef) map[string]*ast.AggDef {
	c := make(map[string]*ast.AggDef, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// checkDeadConsts reports SGL012 for game constants the script never
// references (script mode only — a short observation query legitimately
// ignores most of the table).
func (l *linter) checkDeadConsts(script *ast.Script) {
	if l.opts.Mode != ModeScript || len(l.opts.Consts) == 0 {
		return
	}
	refd := map[string]bool{}
	ast.Inspect(script, func(n any) bool {
		if c, ok := n.(*ast.ConstRef); ok {
			refd[c.Name] = true
		}
		return true
	})
	names := make([]string, 0, len(l.opts.Consts))
	for name := range l.opts.Consts {
		if !refd[name] {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		l.report(CodeDeadConst, token.Pos{Line: 1, Col: 1}, "game constant %s is never referenced by the script", name)
	}
}
