package parser

import (
	"strings"
	"testing"

	"github.com/epicscale/sgl/internal/sgl/ast"
)

func TestParseTermArithmetic(t *testing.T) {
	term, err := ParseTerm("1 + 2 * 3")
	if err != nil {
		t.Fatal(err)
	}
	b, ok := term.(*ast.Binary)
	if !ok || b.Op != ast.Add {
		t.Fatalf("root = %T %v", term, term)
	}
	if _, ok := b.X.(*ast.NumLit); !ok {
		t.Fatalf("left = %T", b.X)
	}
	mul, ok := b.Y.(*ast.Binary)
	if !ok || mul.Op != ast.Mul {
		t.Fatalf("right should be a Mul node, got %v", b.Y)
	}
}

func TestParseTermPrecedenceAndParens(t *testing.T) {
	term, err := ParseTerm("(1 + 2) * 3")
	if err != nil {
		t.Fatal(err)
	}
	b, ok := term.(*ast.Binary)
	if !ok || b.Op != ast.Mul {
		t.Fatalf("root = %v", term)
	}
	if inner, ok := b.X.(*ast.Binary); !ok || inner.Op != ast.Add {
		t.Fatalf("left = %v", b.X)
	}
}

func TestParseTermUnaryMinus(t *testing.T) {
	term, err := ParseTerm("-u.posx + 3")
	if err != nil {
		t.Fatal(err)
	}
	b := term.(*ast.Binary)
	n, ok := b.X.(*ast.Neg)
	if !ok {
		t.Fatalf("left = %T", b.X)
	}
	fr, ok := n.X.(*ast.FieldRef)
	if !ok || fr.Base != "u" || fr.Field != "posx" {
		t.Fatalf("neg operand = %v", n.X)
	}
}

func TestParseTermPairAndFieldChain(t *testing.T) {
	term, err := ParseTerm("(u.posx, u.posy)")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := term.(*ast.Pair); !ok {
		t.Fatalf("got %T", term)
	}
	term, err = ParseTerm("NearestEnemy(u).key")
	if err != nil {
		t.Fatal(err)
	}
	f, ok := term.(*ast.Field)
	if !ok || f.Field != "key" {
		t.Fatalf("got %v", term)
	}
	if c, ok := f.X.(*ast.Call); !ok || c.Name != "NearestEnemy" {
		t.Fatalf("call = %v", f.X)
	}
}

func TestParseTermConstsAndCalls(t *testing.T) {
	term, err := ParseTerm("Random(1) % 2 * (_ARROW_DAMAGE - _ARMOR)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(term.String(), "Random(1)") {
		t.Fatalf("String = %q", term.String())
	}
	if !strings.Contains(term.String(), "_ARROW_DAMAGE") {
		t.Fatalf("String = %q", term.String())
	}
}

func TestParseCondPrecedence(t *testing.T) {
	c, err := ParseCond("a = 1 or b = 2 and c = 3")
	if err != nil {
		t.Fatal(err)
	}
	or, ok := c.(*ast.Or)
	if !ok {
		t.Fatalf("root = %T (or should bind loosest)", c)
	}
	if _, ok := or.Y.(*ast.And); !ok {
		t.Fatalf("right = %T, want And", or.Y)
	}
}

func TestParseCondParenAmbiguity(t *testing.T) {
	// "(c > u.morale)" — parenthesized condition.
	c, err := ParseCond("(c > u.morale)")
	if err != nil {
		t.Fatal(err)
	}
	if cmp, ok := c.(*ast.Compare); !ok || cmp.Op != ast.Gt {
		t.Fatalf("got %v", c)
	}
	// "(a + b) > c" — parenthesized term on the left.
	c, err = ParseCond("(a + b) > c")
	if err != nil {
		t.Fatal(err)
	}
	cmp := c.(*ast.Compare)
	if _, ok := cmp.X.(*ast.Binary); !ok {
		t.Fatalf("left = %T", cmp.X)
	}
	// "not (a = b or c = d)" — negated parenthesized condition.
	c, err = ParseCond("not (a = b or c = d)")
	if err != nil {
		t.Fatal(err)
	}
	n, ok := c.(*ast.Not)
	if !ok {
		t.Fatalf("got %T", c)
	}
	if _, ok := n.X.(*ast.Or); !ok {
		t.Fatalf("inner = %T", n.X)
	}
}

func TestConjuncts(t *testing.T) {
	c, err := ParseCond("a = 1 and b = 2 and (c = 3 or d = 4)")
	if err != nil {
		t.Fatal(err)
	}
	parts := ast.Conjuncts(c)
	if len(parts) != 3 {
		t.Fatalf("Conjuncts = %d, want 3", len(parts))
	}
	if _, ok := parts[2].(*ast.Or); !ok {
		t.Fatalf("third conjunct = %T", parts[2])
	}
}

func TestParseActionLetIfPerform(t *testing.T) {
	a, err := ParseAction(`(let c = Count(u, u.range)) if c > 3 then perform Flee(u); else perform Stay(u)`)
	if err != nil {
		t.Fatal(err)
	}
	let, ok := a.(*ast.Let)
	if !ok || let.Name != "c" {
		t.Fatalf("root = %T", a)
	}
	iff, ok := let.Body.(*ast.If)
	if !ok {
		t.Fatalf("body = %T", let.Body)
	}
	if iff.Else == nil {
		t.Fatal("else branch missing (the '; else' form must parse)")
	}
	if p, ok := iff.Then.(*ast.Perform); !ok || p.Name != "Flee" {
		t.Fatalf("then = %v", iff.Then)
	}
}

func TestParseActionSequence(t *testing.T) {
	a, err := ParseAction("perform A(u); perform B(u); perform C(u);")
	if err != nil {
		t.Fatal(err)
	}
	seq, ok := a.(*ast.Seq)
	if !ok || len(seq.Acts) != 3 {
		t.Fatalf("got %T with %v", a, a)
	}
}

func TestParseActionEmptyBraces(t *testing.T) {
	a, err := ParseAction("{}")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := a.(*ast.Nop); !ok {
		t.Fatalf("got %T", a)
	}
}

func TestParsePaperFigure3(t *testing.T) {
	src := `
main(u) {
  (let c = CountEnemiesInRange(u, u.range))
  (let away_vector = (u.posx, u.posy) - CentroidOfEnemyUnits(u, u.range)) {
    if (c > u.morale) then
      perform MoveInDirection(u, away_vector);
    else if (c > 0 and u.cooldown = 0) then
      (let target_key = NearestEnemy(u).key) {
        perform FireAt(u, target_key);
      }
  }
}`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Funcs) != 1 || s.Funcs[0].Name != "main" {
		t.Fatalf("funcs = %v", s.Funcs)
	}
	main := s.Func("main")
	if main == nil || len(main.Params) != 1 || main.Params[0] != "u" {
		t.Fatalf("main = %+v", main)
	}
	outer, ok := main.Body.(*ast.Let)
	if !ok || outer.Name != "c" {
		t.Fatalf("outer = %T", main.Body)
	}
	inner, ok := outer.Body.(*ast.Let)
	if !ok || inner.Name != "away_vector" {
		t.Fatalf("inner = %T", outer.Body)
	}
	iff, ok := inner.Body.(*ast.If)
	if !ok || iff.Else == nil {
		t.Fatalf("if = %+v", inner.Body)
	}
	elseIf, ok := iff.Else.(*ast.If)
	if !ok || elseIf.Else != nil {
		t.Fatalf("else-if = %+v", iff.Else)
	}
	if let, ok := elseIf.Then.(*ast.Let); !ok || let.Name != "target_key" {
		t.Fatalf("else-if body = %+v", elseIf.Then)
	}
}

func TestParseAggregateDecl(t *testing.T) {
	src := `
aggregate CountEnemiesInRange(u, range) :=
  count(*)
  over e where e.posx >= u.posx - range and e.posx <= u.posx + range
    and e.posy >= u.posy - range and e.posy <= u.posy + range
    and e.player <> u.player;

aggregate CentroidOfEnemyUnits(u, range) :=
  avg(e.posx) as x, avg(e.posy) as y
  over e where e.player <> u.player;
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Aggs) != 2 {
		t.Fatalf("aggs = %d", len(s.Aggs))
	}
	c := s.Agg("CountEnemiesInRange")
	if c == nil || len(c.Outputs) != 1 || c.Outputs[0].Func != ast.Count || c.Outputs[0].Arg != nil {
		t.Fatalf("count decl = %+v", c)
	}
	if got := len(ast.Conjuncts(c.Where)); got != 5 {
		t.Fatalf("conjuncts = %d, want 5", got)
	}
	cen := s.Agg("CentroidOfEnemyUnits")
	if cen.Outputs[0].As != "x" || cen.Outputs[1].As != "y" {
		t.Fatalf("centroid outputs = %+v", cen.Outputs)
	}
	if cen.Outputs[0].Func != ast.Avg {
		t.Fatalf("centroid func = %v", cen.Outputs[0].Func)
	}
}

func TestParseAggregateDefaultOutputName(t *testing.T) {
	s, err := Parse("aggregate Weakest(u) := min(e.health) over e;")
	if err != nil {
		t.Fatal(err)
	}
	if s.Aggs[0].Outputs[0].As != "min" {
		t.Fatalf("default name = %q", s.Aggs[0].Outputs[0].As)
	}
	if s.Aggs[0].Where != nil {
		t.Fatal("where should be nil")
	}
}

func TestParseActionDecl(t *testing.T) {
	src := `
action FireAt(u, target_key) :=
  on e where e.key = target_key
  set damage = (_ARROW_HIT_DAMAGE - _ARMOR) * (Random(1) % 2);

action Heal(u) :=
  on e where u.player = e.player
    and e.posx >= u.posx - _HEALER_RANGE and e.posx <= u.posx + _HEALER_RANGE
    and e.posy >= u.posy - _HEALER_RANGE and e.posy <= u.posy + _HEALER_RANGE
  set inaura = _HEAL_AURA;
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Acts) != 2 {
		t.Fatalf("acts = %d", len(s.Acts))
	}
	fire := s.Act("FireAt")
	if fire == nil || len(fire.Sets) != 1 || fire.Sets[0].Attr != "damage" {
		t.Fatalf("fire = %+v", fire)
	}
	heal := s.Act("Heal")
	if heal == nil || len(ast.Conjuncts(heal.Where)) != 5 {
		t.Fatalf("heal = %+v", heal)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, substr string
	}{
		{"function", "expected function name"},
		{"main() {}", "at least the unit parameter"},
		{"main(u) { perform }", "expected function name after 'perform'"},
		{"main(u) { if then perform A(u) }", "expected condition"},
		{"main(u) { (u) }", "expected 'let'"},
		{"aggregate A(u) := bogus(*) over e;", "unknown aggregate function"},
		{"aggregate A(u) := count(*) over x;", "expected environment row variable 'e'"},
		{"action A(u) := on e set ;", "expected attribute name"},
		{"main(u) { perform A(u) } trailing", "expected"},
		{"42", "expected declaration"},
		{"main(u) { (let x = ) perform A(u) }", "expected term"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q): expected error containing %q", c.src, c.substr)
			continue
		}
		if !strings.Contains(err.Error(), c.substr) {
			t.Errorf("Parse(%q) error = %v, want substring %q", c.src, err, c.substr)
		}
	}
}

func TestErrorsCarryPosition(t *testing.T) {
	_, err := Parse("main(u) {\n  perform\n}")
	if err == nil {
		t.Fatal("expected error")
	}
	pe, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type = %T", err)
	}
	if pe.Pos.Line != 3 { // the '}' after "perform" is on line 3
		t.Fatalf("error line = %d", pe.Pos.Line)
	}
}

func TestNestedElseChains(t *testing.T) {
	src := `main(u) {
	  if a = 1 then perform A(u)
	  else if a = 2 then perform B(u)
	  else if a = 3 then perform C(u)
	  else perform D(u)
	}`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	depth := 0
	var a ast.Action = s.Funcs[0].Body
	for {
		iff, ok := a.(*ast.If)
		if !ok {
			break
		}
		depth++
		if iff.Else == nil {
			break
		}
		a = iff.Else
	}
	if depth != 3 {
		t.Fatalf("chain depth = %d, want 3", depth)
	}
}
