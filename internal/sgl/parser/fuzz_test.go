package parser_test

import (
	"testing"

	"github.com/epicscale/sgl/internal/exec"
	"github.com/epicscale/sgl/internal/game"
	"github.com/epicscale/sgl/internal/sgl/parser"
)

// FuzzParse asserts two properties over arbitrary input: the parser never
// panics, and every script it accepts survives a print → reparse → print
// round trip as a fixed point (so the ast printer emits exactly the
// grammar the parser reads). The seed corpus is the whole script zoo plus
// the battle simulation.
func FuzzParse(f *testing.F) {
	for _, zp := range exec.Zoo {
		f.Add(zp.Src)
	}
	f.Add(game.Script)
	f.Add("function main(u) { if u.posx = 0 then { } else perform F(u) }")
	f.Add("aggregate A(u) := min(e.health) as m, nearestkey() as k over e;")
	f.Fuzz(func(t *testing.T, src string) {
		s, err := parser.Parse(src)
		if err != nil {
			return
		}
		printed := s.String()
		s2, err := parser.Parse(printed)
		if err != nil {
			t.Fatalf("printed form does not reparse: %v\ninput: %q\nprinted:\n%s", err, src, printed)
		}
		if again := s2.String(); again != printed {
			t.Fatalf("print is not a fixed point\nfirst:\n%s\nsecond:\n%s", printed, again)
		}
	})
}

// The deterministic round-trip over the full corpus, so a printer
// regression fails plain `go test` rather than only a fuzz run.
func TestPrintRoundTrip(t *testing.T) {
	srcs := map[string]string{"battle": game.Script}
	for _, zp := range exec.Zoo {
		srcs[zp.Name] = zp.Src
	}
	for name, src := range srcs {
		t.Run(name, func(t *testing.T) {
			s, err := parser.Parse(src)
			if err != nil {
				t.Fatal(err)
			}
			printed := s.String()
			s2, err := parser.Parse(printed)
			if err != nil {
				t.Fatalf("printed form does not reparse: %v\n%s", err, printed)
			}
			if again := s2.String(); again != printed {
				t.Fatalf("print not a fixed point:\n%s\n---\n%s", printed, again)
			}
			// The reprinted script must also be semantically intact: same
			// declaration counts and names.
			if len(s2.Aggs) != len(s.Aggs) || len(s2.Acts) != len(s.Acts) || len(s2.Funcs) != len(s.Funcs) {
				t.Fatal("round trip changed declaration counts")
			}
		})
	}
}
