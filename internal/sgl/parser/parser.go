// Package parser builds the SGL abstract syntax tree from source text.
//
// The accepted grammar (see the package documentation of ast for the
// declaration forms):
//
//	script    := decl*
//	decl      := ["function"] IDENT "(" params ")" "{" action "}"
//	           | "aggregate" IDENT "(" params ")" ":=" aggOut ("," aggOut)*
//	             "over" IDENT ["where" cond] ";"
//	           | "action" IDENT "(" params ")" ":=" "on" IDENT
//	             ["where" cond] "set" set ("," set)* ";"
//	action    := prim (";" [prim])*
//	prim      := "(" "let" IDENT "=" term ")" prim
//	           | "{" [action] "}"
//	           | "if" cond "then" prim [[";"] "else" prim]
//	           | "perform" IDENT "(" args ")"
//	cond      := or; or := and ("or" and)*; and := atom ("and" atom)*
//	atom      := "not" atom | "true" | "false" | term cmp term | "(" cond ")"
//	term      := add; add := mul (("+"|"-") mul)*; mul := unary (("*"|"/"|"%") unary)*
//	unary     := "-" unary | postfix; postfix := primary ("." IDENT)*
//	primary   := NUMBER | CONST | IDENT ["(" args ")"] | "(" term ["," term] ")"
//
// The `; else` form matches the paper's Figure 3, which writes a semicolon
// before `else`.
package parser

import (
	"fmt"
	"strconv"

	"github.com/epicscale/sgl/internal/sgl/ast"
	"github.com/epicscale/sgl/internal/sgl/lexer"
	"github.com/epicscale/sgl/internal/sgl/token"
)

// Error is a syntax error with its source position.
type Error struct {
	Pos token.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Parse parses a complete SGL compilation unit.
func Parse(src string) (*ast.Script, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.script()
}

// ParseAction parses a bare action (for tests and the REPL-ish tooling).
func ParseAction(src string) (ast.Action, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	a, err := p.action()
	if err != nil {
		return nil, err
	}
	if err := p.expect(token.EOF); err != nil {
		return nil, err
	}
	return a, nil
}

// ParseTerm parses a bare term.
func ParseTerm(src string) (ast.Term, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	t, err := p.term()
	if err != nil {
		return nil, err
	}
	if err := p.expect(token.EOF); err != nil {
		return nil, err
	}
	return t, nil
}

// ParseCond parses a bare condition.
func ParseCond(src string) (ast.Cond, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	c, err := p.cond()
	if err != nil {
		return nil, err
	}
	if err := p.expect(token.EOF); err != nil {
		return nil, err
	}
	return c, nil
}

type parser struct {
	toks []token.Token
	i    int
}

func (p *parser) cur() token.Token  { return p.toks[p.i] }
func (p *parser) peek() token.Token { return p.toks[min(p.i+1, len(p.toks)-1)] }
func (p *parser) next() token.Token {
	t := p.toks[p.i]
	if t.Kind != token.EOF {
		p.i++
	}
	return t
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *parser) errf(pos token.Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k token.Kind) error {
	if p.cur().Kind != k {
		return p.errf(p.cur().Pos, "expected %s, found %s", k, p.cur())
	}
	p.next()
	return nil
}

func (p *parser) accept(k token.Kind) bool {
	if p.cur().Kind == k {
		p.next()
		return true
	}
	return false
}

// ---------------------------------------------------------------------------
// Declarations

func (p *parser) script() (*ast.Script, error) {
	s := &ast.Script{}
	for p.cur().Kind != token.EOF {
		switch p.cur().Kind {
		case token.KwAggregate:
			d, err := p.aggDecl()
			if err != nil {
				return nil, err
			}
			s.Aggs = append(s.Aggs, d)
		case token.KwAction:
			d, err := p.actDecl()
			if err != nil {
				return nil, err
			}
			s.Acts = append(s.Acts, d)
		case token.KwFunction, token.Ident:
			d, err := p.funcDecl()
			if err != nil {
				return nil, err
			}
			s.Funcs = append(s.Funcs, d)
		default:
			return nil, p.errf(p.cur().Pos, "expected declaration, found %s", p.cur())
		}
	}
	return s, nil
}

func (p *parser) params() ([]string, []token.Pos, error) {
	if err := p.expect(token.LParen); err != nil {
		return nil, nil, err
	}
	var names []string
	var poss []token.Pos
	if p.cur().Kind != token.RParen {
		for {
			if p.cur().Kind != token.Ident {
				return nil, nil, p.errf(p.cur().Pos, "expected parameter name, found %s", p.cur())
			}
			t := p.next()
			names = append(names, t.Text)
			poss = append(poss, t.Pos)
			if !p.accept(token.Comma) {
				break
			}
		}
	}
	if err := p.expect(token.RParen); err != nil {
		return nil, nil, err
	}
	if len(names) == 0 {
		return nil, nil, p.errf(p.cur().Pos, "declaration needs at least the unit parameter")
	}
	return names, poss, nil
}

func (p *parser) funcDecl() (*ast.FuncDef, error) {
	pos := p.cur().Pos
	p.accept(token.KwFunction) // optional, matching the paper's bare main(u){…}
	if p.cur().Kind != token.Ident {
		return nil, p.errf(p.cur().Pos, "expected function name, found %s", p.cur())
	}
	name := p.next().Text
	params, ppos, err := p.params()
	if err != nil {
		return nil, err
	}
	if err := p.expect(token.LBrace); err != nil {
		return nil, err
	}
	var body ast.Action
	if p.cur().Kind == token.RBrace {
		body = &ast.Nop{P: p.cur().Pos}
	} else {
		body, err = p.action()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expect(token.RBrace); err != nil {
		return nil, err
	}
	return &ast.FuncDef{P: pos, Name: name, Params: params, ParamPos: ppos, Body: body}, nil
}

func (p *parser) aggDecl() (*ast.AggDef, error) {
	pos := p.next().Pos // aggregate
	if p.cur().Kind != token.Ident {
		return nil, p.errf(p.cur().Pos, "expected aggregate name, found %s", p.cur())
	}
	name := p.next().Text
	params, ppos, err := p.params()
	if err != nil {
		return nil, err
	}
	if err := p.expect(token.Define); err != nil {
		return nil, err
	}
	var outs []ast.AggOutput
	for {
		out, err := p.aggOutput()
		if err != nil {
			return nil, err
		}
		outs = append(outs, out)
		if !p.accept(token.Comma) {
			break
		}
	}
	if err := p.expect(token.KwOver); err != nil {
		return nil, err
	}
	if p.cur().Kind != token.Ident || p.cur().Text != "e" {
		return nil, p.errf(p.cur().Pos, "expected environment row variable 'e', found %s", p.cur())
	}
	p.next()
	var where ast.Cond
	if p.accept(token.KwWhere) {
		where, err = p.cond()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expect(token.Semi); err != nil {
		return nil, err
	}
	return &ast.AggDef{P: pos, Name: name, Params: params, ParamPos: ppos, Outputs: outs, Where: where}, nil
}

func (p *parser) aggOutput() (ast.AggOutput, error) {
	pos := p.cur().Pos
	if p.cur().Kind != token.Ident {
		return ast.AggOutput{}, p.errf(pos, "expected aggregate function, found %s", p.cur())
	}
	fname := p.next().Text
	f, ok := ast.AggFuncByName[lower(fname)]
	if !ok {
		return ast.AggOutput{}, p.errf(pos, "unknown aggregate function %q", fname)
	}
	if err := p.expect(token.LParen); err != nil {
		return ast.AggOutput{}, err
	}
	var arg ast.Term
	switch {
	case p.accept(token.Star): // count(*)
	case p.cur().Kind == token.RParen: // count(), nearestkey()
	default:
		var err error
		arg, err = p.term()
		if err != nil {
			return ast.AggOutput{}, err
		}
	}
	if err := p.expect(token.RParen); err != nil {
		return ast.AggOutput{}, err
	}
	as := lower(fname)
	if p.accept(token.KwAs) {
		if p.cur().Kind != token.Ident {
			return ast.AggOutput{}, p.errf(p.cur().Pos, "expected output name after 'as', found %s", p.cur())
		}
		as = p.next().Text
	}
	return ast.AggOutput{P: pos, Func: f, Arg: arg, As: as}, nil
}

func (p *parser) actDecl() (*ast.ActDef, error) {
	pos := p.next().Pos // action
	if p.cur().Kind != token.Ident {
		return nil, p.errf(p.cur().Pos, "expected action name, found %s", p.cur())
	}
	name := p.next().Text
	params, ppos, err := p.params()
	if err != nil {
		return nil, err
	}
	if err := p.expect(token.Define); err != nil {
		return nil, err
	}
	if err := p.expect(token.KwOn); err != nil {
		return nil, err
	}
	if p.cur().Kind != token.Ident || p.cur().Text != "e" {
		return nil, p.errf(p.cur().Pos, "expected environment row variable 'e', found %s", p.cur())
	}
	p.next()
	var where ast.Cond
	if p.accept(token.KwWhere) {
		where, err = p.cond()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expect(token.KwSet); err != nil {
		return nil, err
	}
	var sets []ast.SetClause
	for {
		if p.cur().Kind != token.Ident {
			return nil, p.errf(p.cur().Pos, "expected attribute name in set clause, found %s", p.cur())
		}
		spos := p.cur().Pos
		attr := p.next().Text
		if err := p.expect(token.Assign); err != nil {
			return nil, err
		}
		v, err := p.term()
		if err != nil {
			return nil, err
		}
		sets = append(sets, ast.SetClause{P: spos, Attr: attr, Value: v})
		if !p.accept(token.Comma) {
			break
		}
	}
	if err := p.expect(token.Semi); err != nil {
		return nil, err
	}
	return &ast.ActDef{P: pos, Name: name, Params: params, ParamPos: ppos, Where: where, Sets: sets}, nil
}

// ---------------------------------------------------------------------------
// Actions

func (p *parser) action() (ast.Action, error) {
	pos := p.cur().Pos
	var acts []ast.Action
	first, err := p.primAction()
	if err != nil {
		return nil, err
	}
	acts = append(acts, first)
	for p.accept(token.Semi) {
		if k := p.cur().Kind; k == token.RBrace || k == token.EOF || k == token.KwElse {
			break // trailing semicolon
		}
		a, err := p.primAction()
		if err != nil {
			return nil, err
		}
		acts = append(acts, a)
	}
	if len(acts) == 1 {
		return acts[0], nil
	}
	return &ast.Seq{P: pos, Acts: acts}, nil
}

func (p *parser) primAction() (ast.Action, error) {
	pos := p.cur().Pos
	switch p.cur().Kind {
	case token.LParen:
		// "(" let … ")" action
		if p.peek().Kind != token.KwLet {
			return nil, p.errf(pos, "expected 'let' after '(' in action position")
		}
		p.next() // (
		p.next() // let
		if p.cur().Kind != token.Ident {
			return nil, p.errf(p.cur().Pos, "expected variable name after 'let', found %s", p.cur())
		}
		name := p.next().Text
		if err := p.expect(token.Assign); err != nil {
			return nil, err
		}
		val, err := p.term()
		if err != nil {
			return nil, err
		}
		if err := p.expect(token.RParen); err != nil {
			return nil, err
		}
		body, err := p.primAction()
		if err != nil {
			return nil, err
		}
		return &ast.Let{P: pos, Name: name, Value: val, Body: body}, nil

	case token.LBrace:
		p.next()
		if p.accept(token.RBrace) {
			return &ast.Nop{P: pos}, nil
		}
		a, err := p.action()
		if err != nil {
			return nil, err
		}
		if err := p.expect(token.RBrace); err != nil {
			return nil, err
		}
		return a, nil

	case token.KwIf:
		p.next()
		cond, err := p.cond()
		if err != nil {
			return nil, err
		}
		if err := p.expect(token.KwThen); err != nil {
			return nil, err
		}
		then, err := p.primAction()
		if err != nil {
			return nil, err
		}
		node := &ast.If{P: pos, Cond: cond, Then: then}
		// Accept both "… else" and the paper's "…; else".
		if p.cur().Kind == token.KwElse ||
			(p.cur().Kind == token.Semi && p.peek().Kind == token.KwElse) {
			p.accept(token.Semi)
			p.next() // else
			els, err := p.primAction()
			if err != nil {
				return nil, err
			}
			node.Else = els
		}
		return node, nil

	case token.KwPerform:
		p.next()
		if p.cur().Kind != token.Ident {
			return nil, p.errf(p.cur().Pos, "expected function name after 'perform', found %s", p.cur())
		}
		name := p.next().Text
		if err := p.expect(token.LParen); err != nil {
			return nil, err
		}
		args, err := p.args()
		if err != nil {
			return nil, err
		}
		return &ast.Perform{P: pos, Name: name, Args: args}, nil
	}
	return nil, p.errf(pos, "expected action, found %s", p.cur())
}

func (p *parser) args() ([]ast.Term, error) {
	var out []ast.Term
	if p.cur().Kind != token.RParen {
		for {
			t, err := p.term()
			if err != nil {
				return nil, err
			}
			out = append(out, t)
			if !p.accept(token.Comma) {
				break
			}
		}
	}
	if err := p.expect(token.RParen); err != nil {
		return nil, err
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Conditions

func (p *parser) cond() (ast.Cond, error) {
	left, err := p.andCond()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == token.KwOr {
		pos := p.next().Pos
		right, err := p.andCond()
		if err != nil {
			return nil, err
		}
		left = &ast.Or{P: pos, X: left, Y: right}
	}
	return left, nil
}

func (p *parser) andCond() (ast.Cond, error) {
	left, err := p.atomCond()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == token.KwAnd {
		pos := p.next().Pos
		right, err := p.atomCond()
		if err != nil {
			return nil, err
		}
		left = &ast.And{P: pos, X: left, Y: right}
	}
	return left, nil
}

var cmpOps = map[token.Kind]ast.CmpOp{
	token.Assign: ast.Eq, token.NotEq: ast.Ne,
	token.Less: ast.Lt, token.LessEq: ast.Le,
	token.Greater: ast.Gt, token.GreatEq: ast.Ge,
}

func (p *parser) atomCond() (ast.Cond, error) {
	pos := p.cur().Pos
	switch p.cur().Kind {
	case token.KwNot:
		p.next()
		x, err := p.atomCond()
		if err != nil {
			return nil, err
		}
		return &ast.Not{P: pos, X: x}, nil
	case token.KwTrue:
		p.next()
		return &ast.BoolLit{P: pos, Val: true}, nil
	case token.KwFalse:
		p.next()
		return &ast.BoolLit{P: pos, Val: false}, nil
	}

	// Ambiguity between "(cond)" and "term cmp term" where the term begins
	// with "(": try the comparison reading first, backtracking on failure.
	save := p.i
	if x, err := p.term(); err == nil {
		if op, ok := cmpOps[p.cur().Kind]; ok {
			p.next()
			y, err := p.term()
			if err != nil {
				return nil, err
			}
			return &ast.Compare{P: pos, Op: op, X: x, Y: y}, nil
		}
	}
	p.i = save

	if p.cur().Kind == token.LParen {
		p.next()
		c, err := p.cond()
		if err != nil {
			return nil, err
		}
		if err := p.expect(token.RParen); err != nil {
			return nil, err
		}
		return c, nil
	}
	return nil, p.errf(pos, "expected condition, found %s", p.cur())
}

// ---------------------------------------------------------------------------
// Terms

func (p *parser) term() (ast.Term, error) {
	left, err := p.mulTerm()
	if err != nil {
		return nil, err
	}
	for {
		var op ast.BinOp
		switch p.cur().Kind {
		case token.Plus:
			op = ast.Add
		case token.Minus:
			op = ast.Sub
		default:
			return left, nil
		}
		pos := p.next().Pos
		right, err := p.mulTerm()
		if err != nil {
			return nil, err
		}
		left = &ast.Binary{P: pos, Op: op, X: left, Y: right}
	}
}

func (p *parser) mulTerm() (ast.Term, error) {
	left, err := p.unaryTerm()
	if err != nil {
		return nil, err
	}
	for {
		var op ast.BinOp
		switch p.cur().Kind {
		case token.Star:
			op = ast.Mul
		case token.Slash:
			op = ast.Div
		case token.Percent:
			op = ast.Mod
		default:
			return left, nil
		}
		pos := p.next().Pos
		right, err := p.unaryTerm()
		if err != nil {
			return nil, err
		}
		left = &ast.Binary{P: pos, Op: op, X: left, Y: right}
	}
}

func (p *parser) unaryTerm() (ast.Term, error) {
	if p.cur().Kind == token.Minus {
		pos := p.next().Pos
		x, err := p.unaryTerm()
		if err != nil {
			return nil, err
		}
		return &ast.Neg{P: pos, X: x}, nil
	}
	return p.postfixTerm()
}

func (p *parser) postfixTerm() (ast.Term, error) {
	t, err := p.primaryTerm()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == token.Dot {
		pos := p.next().Pos
		if p.cur().Kind != token.Ident {
			return nil, p.errf(p.cur().Pos, "expected field name after '.', found %s", p.cur())
		}
		field := p.next().Text
		if v, ok := t.(*ast.VarRef); ok {
			t = &ast.FieldRef{P: v.P, Base: v.Name, Field: field}
		} else {
			t = &ast.Field{P: pos, X: t, Field: field}
		}
	}
	return t, nil
}

func (p *parser) primaryTerm() (ast.Term, error) {
	pos := p.cur().Pos
	switch p.cur().Kind {
	case token.Number:
		text := p.next().Text
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, p.errf(pos, "bad number %q", text)
		}
		return &ast.NumLit{P: pos, Val: v}, nil

	case token.Const:
		return &ast.ConstRef{P: pos, Name: p.next().Text}, nil

	case token.Ident:
		name := p.next().Text
		if p.cur().Kind == token.LParen {
			p.next()
			args, err := p.args()
			if err != nil {
				return nil, err
			}
			return &ast.Call{P: pos, Name: name, Args: args}, nil
		}
		return &ast.VarRef{P: pos, Name: name}, nil

	case token.LParen:
		p.next()
		x, err := p.term()
		if err != nil {
			return nil, err
		}
		if p.accept(token.Comma) {
			y, err := p.term()
			if err != nil {
				return nil, err
			}
			if err := p.expect(token.RParen); err != nil {
				return nil, err
			}
			return &ast.Pair{P: pos, X: x, Y: y}, nil
		}
		if err := p.expect(token.RParen); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, p.errf(pos, "expected term, found %s", p.cur())
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}
