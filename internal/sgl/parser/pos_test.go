package parser

import (
	"fmt"
	"strings"
	"testing"

	"github.com/epicscale/sgl/internal/sgl/ast"
	"github.com/epicscale/sgl/internal/sgl/token"
)

// TestEveryNodeHasPosition parses a multi-line script exercising every AST
// production and asserts every node carries a usable source position —
// diagnostics must point at the offending token, not the script start.
func TestEveryNodeHasPosition(t *testing.T) {
	src := `# leading comment so nothing sits at 1:1
aggregate NearestFoe(u) :=
    nearestkey() as key,
    nearestdist() as dist
  over e
  where e.player <> u.player and e.hp > 0;

aggregate PackStats(me, lo) :=
    count(*) as n,
    sum(e.hp) as hp,
    min(e.posx) as west
  over e
  where e.player = me.player
    and (e.posx - me.posx) * (e.posx - me.posx) < lo * 2
    and not (e.hp <= 0)
    or e.morale >= _PACK_COUNT;

action Strafe(u, dx, dy) :=
  on e
  where e.key = u.key
  set movevect_x = dx / 2,
      movevect_y = 0 - dy;

helper(u, amt) {
  (let foe = NearestFoe(u)) {
    if foe.dist < amt then
      perform Strafe(u, Random(1), abs(amt));
    else
      perform Strafe(u, (1, 2).x, min(amt, 3))
  }
}

main(u) {
  (let m = u.morale)
  if m > 0 and m < 100 then perform helper(u, m % 7)
}
`
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}

	type posed interface{ Pos() token.Pos }
	var bad []string
	check := func(n any, pos token.Pos) {
		if pos.Line <= 0 || pos.Col <= 0 {
			bad = append(bad, fmt.Sprintf("%T at %v", n, pos))
		}
	}
	ast.Inspect(s, func(n any) bool {
		if p, ok := n.(posed); ok {
			check(n, p.Pos())
		}
		switch d := n.(type) {
		case *ast.FuncDef:
			checkParams(t, d.Name, d.Params, d.ParamPos, &bad)
		case *ast.AggDef:
			checkParams(t, d.Name, d.Params, d.ParamPos, &bad)
		case *ast.ActDef:
			checkParams(t, d.Name, d.Params, d.ParamPos, &bad)
		}
		return true
	})
	if len(bad) > 0 {
		t.Fatalf("nodes without usable positions:\n  %s", strings.Join(bad, "\n  "))
	}

	// Spot-check that positions land on the right lines, not just nonzero:
	// the `or` disjunct of PackStats sits on line 16, the second parameter
	// of Strafe on line 18, the perform in main on line 35.
	pack := s.Agg("PackStats")
	or, ok := pack.Where.(*ast.Or)
	if !ok {
		t.Fatalf("PackStats where: expected *ast.Or at top, got %T", pack.Where)
	}
	if got := or.Y.Pos().Line; got != 16 {
		t.Errorf("or-disjunct line = %d, want 16", got)
	}
	strafe := s.Act("Strafe")
	if got := strafe.ParamPos[1]; got.Line != 18 || got.Col != 18 {
		t.Errorf("Strafe param dx at %v, want 18:18", got)
	}
	var performLine int
	ast.Inspect(s.Func("main"), func(n any) bool {
		if p, ok := n.(*ast.Perform); ok {
			performLine = p.Pos().Line
		}
		return true
	})
	if performLine != 35 {
		t.Errorf("main's perform on line %d, want 35", performLine)
	}
}

func checkParams(t *testing.T, name string, params []string, ppos []token.Pos, bad *[]string) {
	t.Helper()
	if len(ppos) != len(params) {
		*bad = append(*bad, fmt.Sprintf("%s: %d params but %d param positions", name, len(params), len(ppos)))
		return
	}
	for i, p := range ppos {
		if p.Line <= 0 || p.Col <= 0 {
			*bad = append(*bad, fmt.Sprintf("%s: param %q at %v", name, params[i], p))
		}
	}
}
