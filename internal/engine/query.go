// Ad-hoc observation queries over the live world: the read half of the
// session API. A Query is a compiled, read-only SGL aggregate evaluated
// against the engine's current environment — the same "game AI as query
// processing" machinery the tick uses, opened up to spectators,
// observers, and tooling.
//
// Execution reuses the indexed evaluator end to end: the first query
// evaluated after a tick builds (and freezes) that query's per-partition
// index structures over the current snapshot, and every subsequent
// evaluation — including concurrent ones — probes the frozen structures
// through a private exec.Indexed.Fork. N readers therefore share one
// index build per tick, and each probe costs what a unit's own aggregate
// costs inside a tick: O(log n) for divisible range aggregates, a
// kD-descent for nearest-neighbour, O(1) for global extrema. The
// QueryScan* variants evaluate the same query with the naive O(n) scan
// provider; they are the semantics oracle the differential tests (and
// the fan-out benchmark's baseline) use.
//
// Concurrency: Query/QueryAt/QueryUnit may be called from any number of
// goroutines simultaneously, but never concurrently with Tick — the
// Session facade enforces that with a reader/writer lock. Tick
// invalidates all cached query providers (the environment mutated under
// them).
package engine

import (
	"fmt"
	"sort"
	"sync"

	"github.com/epicscale/sgl/internal/exec"
	"github.com/epicscale/sgl/internal/sgl/ast"
	"github.com/epicscale/sgl/internal/sgl/interp"
	"github.com/epicscale/sgl/internal/sgl/parser"
	"github.com/epicscale/sgl/internal/sgl/sem"
	"github.com/epicscale/sgl/internal/table"
)

// Query is a compiled observation query: one or more aggregate
// definitions checked in query mode (read-only, no effects, no Random),
// of which the last declared is the entry point. A Query is immutable
// and may be shared by any number of engines and goroutines.
type Query struct {
	prog *sem.Program
	def  *ast.AggDef
	// unitCols are the schema columns the entry aggregate reads through
	// its unit parameter (plus posx/posy for nearest outputs, which
	// implicitly probe from the unit's position). They decide which probe
	// forms the query supports: none → Query, ⊆ {posx, posy} → QueryAt,
	// anything else → QueryUnit.
	unitCols []int
}

// CompileQuery parses and checks an observation query against a schema
// and constant table. The source is the SGL aggregate-definition subset:
// filters, categorical and range predicates, and aggregate outputs —
// no actions, no effects, no Random. The last aggregate declared is the
// query's entry point.
func CompileQuery(src string, schema *table.Schema, consts map[string]float64) (*Query, error) {
	script, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	prog, err := sem.CheckQuery(script, schema, consts)
	if err != nil {
		return nil, err
	}
	def := script.Aggs[len(script.Aggs)-1]
	return &Query{prog: prog, def: def, unitCols: unitCols(def, schema)}, nil
}

// Name returns the entry aggregate's name.
func (q *Query) Name() string { return q.def.Name }

// Outputs returns the entry aggregate's output column names, in result
// order.
func (q *Query) Outputs() []string {
	out := make([]string, len(q.def.Outputs))
	for i, o := range q.def.Outputs {
		out[i] = o.As
	}
	return out
}

// Params returns the entry aggregate's parameter names after the unit
// parameter — the args an evaluation must supply, in order.
func (q *Query) Params() []string { return append([]string(nil), q.def.Params[1:]...) }

// NeedsUnit reports whether the query reads any attribute of its probe
// unit beyond position — such a query can only run through QueryUnit.
func (q *Query) NeedsUnit() bool {
	for _, c := range q.unitCols {
		if n := q.prog.Schema.Attr(c).Name; n != "posx" && n != "posy" {
			return true
		}
	}
	return false
}

// NeedsPosition reports whether the query probes from a position
// (explicit u.posx/u.posy references or nearest-neighbour outputs).
func (q *Query) NeedsPosition() bool { return len(q.unitCols) > 0 }

// unitCols collects the schema columns def reads through its unit
// parameter, in ascending column order. Nearest outputs count as posx
// and posy reads: the kD probe starts at the unit's position.
func unitCols(def *ast.AggDef, schema *table.Schema) []int {
	unit := def.Params[0]
	cols := map[int]bool{}
	var walkTerm func(t ast.Term)
	walkTerm = func(t ast.Term) {
		switch n := t.(type) {
		case *ast.FieldRef:
			if n.Base == unit {
				if c, ok := schema.Col(n.Field); ok {
					cols[c] = true
				}
			}
		case *ast.Field:
			walkTerm(n.X)
		case *ast.Pair:
			walkTerm(n.X)
			walkTerm(n.Y)
		case *ast.Neg:
			walkTerm(n.X)
		case *ast.Binary:
			walkTerm(n.X)
			walkTerm(n.Y)
		case *ast.Call:
			for _, a := range n.Args {
				walkTerm(a)
			}
		}
	}
	var walkCond func(c ast.Cond)
	walkCond = func(c ast.Cond) {
		switch n := c.(type) {
		case *ast.Not:
			walkCond(n.X)
		case *ast.And:
			walkCond(n.X)
			walkCond(n.Y)
		case *ast.Or:
			walkCond(n.X)
			walkCond(n.Y)
		case *ast.Compare:
			walkTerm(n.X)
			walkTerm(n.Y)
		}
	}
	if def.Where != nil {
		walkCond(def.Where)
	}
	for _, out := range def.Outputs {
		if out.Arg != nil {
			walkTerm(out.Arg)
		}
		switch out.Func {
		case ast.NearestKey, ast.NearestDist, ast.NearestX, ast.NearestY:
			cols[schema.MustCol("posx")] = true
			cols[schema.MustCol("posy")] = true
		}
	}
	var list []int
	//sgl:unordered columns are collected and sorted before return
	for c := range cols {
		list = append(list, c)
	}
	sort.Ints(list)
	return list
}

// ---------------------------------------------------------------------------
// Engine-side execution

// queryState lives on the Engine (see engine.go fields): a generation
// counter bumped by Tick plus one cache entry per Query. The engine-wide
// qmu guards only the map and the recency bookkeeping; each entry has
// its own mutex for the (possibly expensive) analyzer and index builds,
// so readers of different queries never wait on each other's builds.
type queryState struct {
	gen   uint64
	seq   uint64 // global use counter, for LRU over the cap
	cache map[*Query]*queryCacheEntry
}

type queryCacheEntry struct {
	mu      sync.Mutex // guards an/prov/provGen (build coordination)
	an      *exec.Analyzer
	prov    *exec.Indexed
	provGen uint64
	// Maintained answers (answers.go). amu guards plan and answers; it
	// is never held while qmu is taken... except through queryProvider on
	// the re-derive path, which nests qmu (then ent.mu) under amu — safe
	// because no code path takes amu while holding qmu or ent.mu.
	amu     sync.Mutex
	plan    *exec.AnswerPlan
	answers map[answerKey]*answerEntry
	// Recency bookkeeping, guarded by the engine's qmu.
	lastGen uint64
	lastSeq uint64
}

// queryEvictAfter is how many generations (ticks) a query's cached
// analyzer survives without being evaluated. Hot spectator queries stay
// warm; a query compiled for one request is released instead of pinning
// its program and analyzer for the engine's lifetime.
const queryEvictAfter = 2

// maxCachedQueries bounds the cache between ticks: a paused world served
// one-shot queries would otherwise grow an analyzer plus a frozen index
// set per distinct Query with nothing to evict them until the next Tick.
// Past the cap the least-recently-used entry is dropped.
const maxCachedQueries = 64

// invalidateQueries drops every cached query provider (the environment
// they indexed has mutated) and evicts per-query state that has not been
// used for queryEvictAfter generations; called at the end of Tick. Tick
// never runs concurrently with Query* (the Session lock enforces it), so
// the brief per-entry locking here is uncontended.
func (e *Engine) invalidateQueries() {
	e.qmu.Lock()
	e.queries.gen++
	//sgl:unordered per-entry invalidation and eviction touch only their own entry
	for q, ent := range e.queries.cache {
		if e.queries.gen-ent.lastGen > queryEvictAfter {
			delete(e.queries.cache, q)
			continue
		}
		ent.mu.Lock()
		ent.prov = nil
		ent.mu.Unlock()
	}
	e.qmu.Unlock()
}

// queryEntry returns (creating if needed) q's cache entry and stamps its
// recency, evicting the least-recently-used entry past the cap. Returns
// the current generation and the use stamp just assigned.
func (e *Engine) queryEntry(q *Query) (*queryCacheEntry, uint64, uint64) {
	e.qmu.Lock()
	if e.queries.cache == nil {
		e.queries.cache = map[*Query]*queryCacheEntry{}
	}
	ent := e.queries.cache[q]
	if ent == nil {
		ent = &queryCacheEntry{}
		e.queries.cache[q] = ent
		for len(e.queries.cache) > maxCachedQueries {
			var lru *Query
			//sgl:unordered LRU victim search is a min-fold; a lastSeq tie evicts an arbitrary entry, which costs one recompile but never changes answer values
			for cand, ce := range e.queries.cache {
				if cand == q {
					continue
				}
				if lru == nil || ce.lastSeq < e.queries.cache[lru].lastSeq {
					lru = cand
				}
			}
			delete(e.queries.cache, lru)
		}
	}
	e.queries.seq++
	ent.lastGen, ent.lastSeq = e.queries.gen, e.queries.seq
	gen, seq := e.queries.gen, e.queries.seq
	e.qmu.Unlock()
	return ent, gen, seq
}

// queryProvider returns the frozen indexed provider for q over the
// current environment, building it at most once per tick. The first
// caller after a tick pays the build; everyone else forks it. The build
// runs under the entry's own lock, so concurrent queries for other
// shapes proceed, and concurrent callers for the same shape wait for the
// one build instead of duplicating it.
func (e *Engine) queryProvider(q *Query) *exec.Indexed {
	ent, gen, _ := e.queryEntry(q)

	ent.mu.Lock()
	defer ent.mu.Unlock()
	if ent.an == nil {
		ent.an = exec.NewAnalyzer(q.prog, e.opts.Categoricals)
	}
	if ent.prov == nil || ent.provGen != gen {
		prov := exec.NewIndexed(ent.an, e.env, e.src.Tick(e.tick))
		prov.Freeze()
		ent.prov, ent.provGen = prov, gen
	}
	return ent.prov
}

// checkQueryArgs validates the evaluation's argument count.
func (q *Query) checkArgs(args []float64) error {
	if want := len(q.def.Params) - 1; len(args) != want {
		return fmt.Errorf("engine: query %s takes %d argument(s), got %d", q.def.Name, want, len(args))
	}
	return nil
}

// syntheticUnit builds the probe row for world and positional queries:
// zeros everywhere, key = −1 (matches no live unit, so nearest-neighbour
// self-exclusion is inert), position as given.
func (e *Engine) syntheticUnit(x, y float64) []float64 {
	row := make([]float64, e.prog.Schema.NumAttrs())
	row[e.prog.Schema.KeyCol()] = -1
	row[e.posX], row[e.posY] = x, y
	return row
}

// Query evaluates a world query — one that reads no attribute of a probe
// unit — and returns the entry aggregate's outputs in declaration order.
// Safe for concurrent use with other Query* calls (not with Tick).
func (e *Engine) Query(q *Query, args ...float64) ([]float64, error) {
	if len(q.unitCols) > 0 {
		return nil, fmt.Errorf("engine: query %s reads unit attributes %s; use QueryAt or QueryUnit", q.def.Name, q.unitAttrNames())
	}
	return e.queryRow(q, e.syntheticUnit(0, 0), args, false)
}

// QueryAt evaluates a positional query from the observer position
// (x, y): the probe unit is synthetic, carrying only that position, so
// the query may reference u.posx/u.posy (and nearest-neighbour outputs
// measure from it) but no other unit attribute.
func (e *Engine) QueryAt(q *Query, x, y float64, args ...float64) ([]float64, error) {
	if q.NeedsUnit() {
		return nil, fmt.Errorf("engine: query %s reads unit attributes %s beyond position; use QueryUnit", q.def.Name, q.unitAttrNames())
	}
	return e.queryRow(q, e.syntheticUnit(x, y), args, false)
}

// QueryUnit evaluates a query from the perspective of the live unit with
// the given key, exactly as the unit's own script would observe the
// world this instant. The key resolves through the frozen provider's
// key index, so the whole call stays O(log n).
func (e *Engine) QueryUnit(q *Query, key int64, args ...float64) ([]float64, error) {
	if err := q.checkArgs(args); err != nil {
		return nil, err
	}
	prov := e.queryProvider(q)
	row, ok := prov.RowByKey(key)
	if !ok {
		return nil, fmt.Errorf("engine: query %s: no unit with key %d", q.def.Name, key)
	}
	return prov.Fork().EvalAgg(q.def, row, args), nil
}

// QueryScan, QueryScanAt and QueryScanUnit are the naive counterparts of
// Query, QueryAt and QueryUnit: the same semantics evaluated by a full
// O(n) environment scan, mirroring the paper's pluggable-evaluator
// design. They exist as the differential oracle and the baseline the
// fan-out benchmark measures against; results agree with the indexed
// path up to floating-point association (exactly like Naive vs Indexed
// engine mode).
func (e *Engine) QueryScan(q *Query, args ...float64) ([]float64, error) {
	if len(q.unitCols) > 0 {
		return nil, fmt.Errorf("engine: query %s reads unit attributes %s; use QueryScanAt or QueryScanUnit", q.def.Name, q.unitAttrNames())
	}
	return e.queryRow(q, e.syntheticUnit(0, 0), args, true)
}

// QueryScanAt is the naive-scan QueryAt.
func (e *Engine) QueryScanAt(q *Query, x, y float64, args ...float64) ([]float64, error) {
	if q.NeedsUnit() {
		return nil, fmt.Errorf("engine: query %s reads unit attributes %s beyond position; use QueryScanUnit", q.def.Name, q.unitAttrNames())
	}
	return e.queryRow(q, e.syntheticUnit(x, y), args, true)
}

// QueryScanUnit is the naive-scan QueryUnit.
func (e *Engine) QueryScanUnit(q *Query, key int64, args ...float64) ([]float64, error) {
	row := e.env.Lookup(key)
	if row == nil {
		return nil, fmt.Errorf("engine: query %s: no unit with key %d", q.def.Name, key)
	}
	return e.queryRow(q, row, args, true)
}

func (e *Engine) queryRow(q *Query, unit []float64, args []float64, scan bool) ([]float64, error) {
	if err := q.checkArgs(args); err != nil {
		return nil, err
	}
	if scan {
		prov := interp.NewNaive(q.prog, e.env, e.src.Tick(e.tick))
		return prov.EvalAgg(q.def, unit, args), nil
	}
	fork := e.queryProvider(q).Fork()
	return fork.EvalAgg(q.def, unit, args), nil
}

// unitAttrNames renders the unit attributes a query reads, for error
// messages.
func (q *Query) unitAttrNames() string {
	s := ""
	for i, c := range q.unitCols {
		if i > 0 {
			s += ", "
		}
		s += q.prog.Schema.Attr(c).Name
	}
	return s
}
