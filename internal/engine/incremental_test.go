package engine

import (
	"testing"

	"github.com/epicscale/sgl/internal/exec"
)

// TestIncrementalMatchesRebuild is the differential harness for
// incremental index maintenance: for every zoo program and for the battle
// simulation, an engine that patches its indexes from the previous tick
// must leave an environment byte-identical to one that rebuilds from
// scratch — at every single tick (not just the end state), and at both
// Workers = 1 and Workers = 4. The incremental engines run with threshold
// 1 so maintenance engages regardless of churn: this is the hostile
// setting, since high-churn ticks patch almost every partition.
func TestIncrementalMatchesRebuild(t *testing.T) {
	const units, ticks, seed = 64, 100, 7
	mk := func(t *testing.T, progName, src string, battle bool, n int) {
		t.Run(progName, func(t *testing.T) {
			prog := battleProg(t)
			if !battle {
				prog = compileZoo(t, src)
			}
			alwaysMaintain := func(w int) *Engine {
				return newEngine(t, prog, n, Indexed, seed, func(o *Options) {
					o.Workers = w
					o.Incremental = true
					o.IncrementalThreshold = 1
				})
			}
			oracle := newEngine(t, prog, n, Indexed, seed, func(o *Options) { o.Workers = 1 })
			inc1, inc4 := alwaysMaintain(1), alwaysMaintain(4)
			for tick := 0; tick < ticks; tick++ {
				for _, e := range []*Engine{oracle, inc1, inc4} {
					if err := e.Tick(); err != nil {
						t.Fatalf("tick %d: %v", tick, err)
					}
				}
				if !identicalTables(oracle.Env(), inc1.Env()) {
					t.Fatalf("incremental w=1 diverged from rebuild at tick %d", tick)
				}
				if !identicalTables(oracle.Env(), inc4.Env()) {
					t.Fatalf("incremental w=4 diverged from rebuild at tick %d", tick)
				}
			}
			// Guard against the test passing vacuously. Some zoo programs
			// legitimately have nothing to maintain (residual-only
			// definitions force scans), and the serial engine's IndexBuilds
			// also counts per-tick Section 5.4 effect indexes, so the
			// engagement check is only sound on the frozen w=4 engine,
			// where Freeze provably installs every indexable definition.
			if is := inc4.Stats.IndexStats; is.IndexBuilds > 0 && inc4.Stats.MaintainTicks == 0 {
				t.Error("index structures were built but maintenance never engaged")
			}
			if battle {
				is := inc1.Stats.IndexStats
				if is.IndexReuses == 0 || is.IndexPatches == 0 {
					t.Errorf("battle maintenance should reuse and patch structures; got reuses=%d patches=%d",
						is.IndexReuses, is.IndexPatches)
				}
			}
		})
	}
	for _, zp := range exec.Zoo {
		mk(t, zp.Name, zp.Src, false, units)
	}
	mk(t, "battle-sim", "", true, 90)
}

// The default threshold must fall back to rebuilding on high-churn
// definitions without changing outcomes.
func TestIncrementalThresholdFallback(t *testing.T) {
	prog := battleProg(t)
	oracle := newEngine(t, prog, 80, Indexed, 11, nil)
	inc := newEngine(t, prog, 80, Indexed, 11, func(o *Options) {
		o.Incremental = true // default threshold
	})
	tiny := newEngine(t, prog, 80, Indexed, 11, func(o *Options) {
		o.Incremental = true
		o.IncrementalThreshold = 1e-9 // everything relevant falls back
	})
	for tick := 0; tick < 30; tick++ {
		for _, e := range []*Engine{oracle, inc, tiny} {
			if err := e.Tick(); err != nil {
				t.Fatal(err)
			}
		}
		if !identicalTables(oracle.Env(), inc.Env()) {
			t.Fatalf("default-threshold incremental diverged at tick %d", tick)
		}
		if !identicalTables(oracle.Env(), tiny.Env()) {
			t.Fatalf("tiny-threshold incremental diverged at tick %d", tick)
		}
	}
	if tiny.Stats.IndexStats.MaintainFallbacks == 0 {
		t.Error("tiny threshold should force fallbacks on a battle workload")
	}
}

// Incremental must compose with the ablation options.
func TestIncrementalComposesWithAblations(t *testing.T) {
	prog := battleProg(t)
	for _, tweak := range []struct {
		name string
		fn   func(*Options)
	}{
		{"no-area-defer", func(o *Options) { o.DisableAreaDefer = true }},
		{"no-optimizer", func(o *Options) { o.DisableOptimizer = true }},
	} {
		t.Run(tweak.name, func(t *testing.T) {
			oracle := newEngine(t, prog, 72, Indexed, 17, func(o *Options) { tweak.fn(o) })
			inc := newEngine(t, prog, 72, Indexed, 17, func(o *Options) {
				tweak.fn(o)
				o.Incremental = true
				o.IncrementalThreshold = 1
			})
			for tick := 0; tick < 25; tick++ {
				if err := oracle.Tick(); err != nil {
					t.Fatal(err)
				}
				if err := inc.Tick(); err != nil {
					t.Fatal(err)
				}
				if !identicalTables(oracle.Env(), inc.Env()) {
					t.Fatalf("%s: incremental diverged at tick %d", tweak.name, tick)
				}
			}
		})
	}
}

// The delta capture must see every mutation path: effects, movement,
// death/respawn. Run a combat-heavy battle and check the recorded dirty
// rows are plausible (some rows dirty, not all rows every tick would also
// be fine — what matters is divergence, covered above — but a zero delta
// under heavy combat means capture is broken).
func TestDeltaCaptureSeesCombat(t *testing.T) {
	prog := battleProg(t)
	e := newEngine(t, prog, 90, Indexed, 3, func(o *Options) {
		o.Incremental = true
		o.IncrementalThreshold = 1
	})
	if err := e.Run(20); err != nil {
		t.Fatal(err)
	}
	if e.Stats.MaintainTicks == 0 {
		t.Fatal("maintenance never engaged")
	}
	if e.Stats.DirtyRows == 0 {
		t.Fatal("battle ran 20 ticks with an empty delta — capture broken")
	}
}

func BenchmarkTickIncremental500(b *testing.B) {
	prog := battleProg(b)
	for _, inc := range []bool{false, true} {
		name := "rebuild"
		if inc {
			name = "incr"
		}
		b.Run(name, func(b *testing.B) {
			e := newEngine(b, prog, 500, Indexed, 42, func(o *Options) {
				o.Workers = 1
				o.Incremental = inc
			})
			if err := e.Run(3); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := e.Tick(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
