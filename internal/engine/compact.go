// Journal compaction: bound the interactive state a long-lived world
// drags through every checkpoint.
//
// The input journal is a complete history — that is what makes contract
// #5's replay-from-genesis possible — but a complete history grows
// without bound under sustained command traffic, and the checkpoint
// format embeds it, so a year-old world would write a year of inputs
// into every snapshot. Compaction trades the genesis replay for a
// bounded one: everything stamped before a base tick is folded into the
// engine's own state (it already is — journal entries are applied at
// their stamped tick, so the environment rows, counters, and constant
// table carry their full effect), the journal keeps only the tail from
// the base tick on, and the checkpoint records the base so a reader
// knows the stream is a (base snapshot + tail), not a genesis history.
//
// Replay degrades explicitly, never silently: asking for journal entries
// from before the base returns a typed *CompactedError naming the base
// tick, so a replayer knows to start from the base checkpoint instead of
// tick zero. TestReplayMatchesLiveCompacted proves the degraded form of
// contract #5: replaying the tail against the base checkpoint is
// byte-identical to the live run that never compacted a thing.
package engine

import "fmt"

// CompactedError reports that requested journal history was folded into
// the base checkpoint by compaction and is no longer replayable from
// this stream alone; replay must start from a checkpoint at (or after)
// BaseTick.
type CompactedError struct {
	// BaseTick is the journal's base: entries stamped before it are gone.
	BaseTick int64
}

// Error describes the degraded replay window.
func (e *CompactedError) Error() string {
	return fmt.Sprintf("engine: journal compacted: entries before base tick %d were folded into the base checkpoint", e.BaseTick)
}

// Compact folds every journal entry already applied — stamped before the
// current tick — into the base and drops it from the journal, leaving
// only the tail (entries stamped at the current tick, i.e. the pending
// window). The journal base becomes the current tick and is recorded in
// subsequent checkpoints (format v3). Compact must not run concurrently
// with Tick; the Session facade serializes it under the writer lock.
// It returns the new base tick.
func (e *Engine) Compact() int64 {
	e.inmu.Lock()
	defer e.inmu.Unlock()
	return e.compactLocked()
}

func (e *Engine) compactLocked() int64 {
	if e.journalBase < e.tick {
		kept := e.journal[:0]
		for _, sc := range e.journal {
			if sc.Tick >= e.tick {
				kept = append(kept, sc)
			}
		}
		// Zero the dropped tail so folded spawn rows do not linger
		// reachable through the backing array.
		for i := len(kept); i < len(e.journal); i++ {
			e.journal[i] = StampedCommand{}
		}
		e.journal = kept
		e.journalBase = e.tick
	}
	return e.journalBase
}

// JournalBase returns the tick the journal is compacted to: entries
// stamped before it were folded into the base checkpoint. Zero means the
// journal is complete from genesis.
func (e *Engine) JournalBase() int64 {
	e.inmu.Lock()
	defer e.inmu.Unlock()
	return e.journalBase
}

// JournalSince returns a copy of the journal entries stamped at or after
// the given tick. If from predates the journal base the history no
// longer exists in this stream and the call returns a *CompactedError
// naming the base tick — the caller must replay from a base checkpoint
// instead.
func (e *Engine) JournalSince(from int64) ([]StampedCommand, error) {
	e.inmu.Lock()
	defer e.inmu.Unlock()
	if from < e.journalBase {
		return nil, &CompactedError{BaseTick: e.journalBase}
	}
	var out []StampedCommand
	for _, sc := range e.journal {
		if sc.Tick >= from {
			out = append(out, sc)
		}
	}
	return out, nil
}

// Compact is Engine.Compact under the session's writer lock: the fold
// waits for the clock and for in-flight readers, then drops the applied
// journal prefix. Returns the new base tick.
func (s *Session) Compact() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.e.Compact()
}

// JournalBase returns the journal's compaction base under the reader
// lock (see Engine.JournalBase).
func (s *Session) JournalBase() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.e.JournalBase()
}

// JournalSince returns the journal tail from the given tick on, under
// the reader lock (see Engine.JournalSince).
func (s *Session) JournalSince(from int64) ([]StampedCommand, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.e.JournalSince(from)
}
