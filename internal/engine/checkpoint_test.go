package engine

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"github.com/epicscale/sgl/internal/exec"
	"github.com/epicscale/sgl/internal/game"
	"github.com/epicscale/sgl/internal/sgl/ast"
	"github.com/epicscale/sgl/internal/sgl/parser"
	"github.com/epicscale/sgl/internal/sgl/sem"
	"github.com/epicscale/sgl/internal/table"
)

// restoreCfg is one execution configuration a checkpoint is resumed
// under. The exactness contract says the configuration must not matter.
type restoreCfg struct {
	workers     int
	incremental bool
}

var restoreCfgs = []restoreCfg{
	{workers: 1}, {workers: 4},
	{workers: 1, incremental: true}, {workers: 4, incremental: true},
}

// TestCheckpointResumeBitIdentical is the acceptance harness for the
// checkpoint exactness contract: for every zoo program and the battle
// simulation, checkpoint at tick T ∈ {1, 7, mid-run}, restore, run to
// tick N — the environment must be byte-identical to the uninterrupted
// run, at Workers ∈ {1, 4} × Incremental ∈ {off, on}, and regardless of
// which configuration wrote the checkpoint.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	const units, ticks = 64, 20
	mk := func(progName, src string, battle bool, n int) {
		t.Run(progName, func(t *testing.T) {
			prog := battleProg(t)
			if !battle {
				prog = compileZoo(t, src)
			}
			oracle := newEngine(t, prog, n, Indexed, 7, func(o *Options) { o.Workers = 1 })
			if err := oracle.Run(ticks); err != nil {
				t.Fatal(err)
			}
			for _, at := range []int{1, 7, ticks / 2} {
				// The writer runs under the hostile configuration (sharded,
				// always-maintain); the format must not leak any of it.
				writer := newEngine(t, prog, n, Indexed, 7, func(o *Options) {
					o.Workers = 4
					o.Incremental = true
					o.IncrementalThreshold = 1
				})
				if err := writer.Run(at); err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := writer.Checkpoint(&buf); err != nil {
					t.Fatal(err)
				}
				for _, cfg := range restoreCfgs {
					restored, err := Restore(bytes.NewReader(buf.Bytes()), prog, game.NewMechanics(), Options{
						Workers:              cfg.workers,
						Incremental:          cfg.incremental,
						IncrementalThreshold: 1,
					})
					if err != nil {
						t.Fatalf("restore at tick %d: %v", at, err)
					}
					if restored.TickCount() != int64(at) {
						t.Fatalf("restored tick counter %d, want %d", restored.TickCount(), at)
					}
					if err := restored.Run(ticks - at); err != nil {
						t.Fatal(err)
					}
					if !identicalTables(oracle.Env(), restored.Env()) {
						t.Fatalf("resume from tick %d at w=%d inc=%v diverged from the uninterrupted run",
							at, cfg.workers, cfg.incremental)
					}
					if restored.Stats.Deaths != oracle.Stats.Deaths ||
						restored.Stats.Moves != oracle.Stats.Moves ||
						restored.Stats.MovesBlocked != oracle.Stats.MovesBlocked ||
						restored.Stats.Ticks != oracle.Stats.Ticks {
						t.Fatalf("resumed counters diverged: deaths %d/%d moves %d/%d blocked %d/%d ticks %d/%d",
							restored.Stats.Deaths, oracle.Stats.Deaths,
							restored.Stats.Moves, oracle.Stats.Moves,
							restored.Stats.MovesBlocked, oracle.Stats.MovesBlocked,
							restored.Stats.Ticks, oracle.Stats.Ticks)
					}
				}
			}
		})
	}
	for _, zp := range exec.Zoo {
		mk(zp.Name, zp.Src, false, units)
	}
	mk("battle-sim", "", true, 90)
}

// A checkpoint is a pure function of the resumable state: writing twice
// yields identical bytes, and write → restore → write is a fixed point.
func TestCheckpointDeterministic(t *testing.T) {
	prog := battleProg(t)
	e := newEngine(t, prog, 80, Indexed, 3, nil)
	if err := e.Run(9); err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := e.Checkpoint(&a); err != nil {
		t.Fatal(err)
	}
	if err := e.Checkpoint(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two checkpoints of the same state differ")
	}
	restored, err := Restore(bytes.NewReader(a.Bytes()), prog, game.NewMechanics(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var c bytes.Buffer
	if err := restored.Checkpoint(&c); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("restore → checkpoint is not a fixed point")
	}
}

// Restoring a naive-mode checkpoint preserves the mode (naive and
// indexed runs differ in floating-point association, so the mode is part
// of the determinism fingerprint).
func TestCheckpointPreservesMode(t *testing.T) {
	prog := battleProg(t)
	oracle := newEngine(t, prog, 60, Naive, 5, func(o *Options) { o.Workers = 1 })
	writer := newEngine(t, prog, 60, Naive, 5, func(o *Options) { o.Workers = 1 })
	if err := oracle.Run(10); err != nil {
		t.Fatal(err)
	}
	if err := writer.Run(4); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := writer.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(&buf, prog, game.NewMechanics(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if restored.opts.Mode != Naive {
		t.Fatal("mode not restored")
	}
	if err := restored.Run(6); err != nil {
		t.Fatal(err)
	}
	if !identicalTables(oracle.Env(), restored.Env()) {
		t.Fatal("naive-mode resume diverged")
	}
}

func mustParse(t testing.TB, src string) *ast.Script {
	t.Helper()
	script, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return script
}

func checkpointBytes(t testing.TB, prog *sem.Program) []byte {
	t.Helper()
	e := newEngine(t, prog, 48, Indexed, 11, nil)
	if err := e.Run(3); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// Corrupted and truncated inputs must fail with an error describing the
// problem, never panic or restore silently wrong state.
func TestRestoreErrorPaths(t *testing.T) {
	prog := battleProg(t)
	valid := checkpointBytes(t, prog)
	mech := game.NewMechanics()

	corrupt := func(mut func(b []byte)) []byte {
		b := append([]byte(nil), valid...)
		mut(b)
		return b
	}
	cases := []struct {
		name  string
		input []byte
		want  string
	}{
		{"empty", nil, "truncated"},
		{"bad-magic", corrupt(func(b []byte) { b[0] = 'X' }), "magic"},
		{"bad-version", corrupt(func(b []byte) { b[8] = 99 }), "version"},
		{"truncated-header", valid[:20], "truncated"},
		{"truncated-rows", valid[:len(valid)-40], "truncated"},
		{"missing-checksum", valid[:len(valid)-8], "truncated"},
		{"flipped-row-byte", corrupt(func(b []byte) { b[len(b)-100] ^= 0x40 }), "checksum"},
		{"flipped-seed-byte", corrupt(func(b []byte) { b[13] ^= 0x01 }), "checksum"},
		{"garbage", bytes.Repeat([]byte{0xAB}, 64), "magic"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Restore(bytes.NewReader(tc.input), prog, mech, Options{})
			if err == nil {
				t.Fatal("corrupted checkpoint restored without error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// A checkpoint must only restore against the program it was written
// under: schema mismatch is detected before any engine is built.
func TestRestoreSchemaMismatch(t *testing.T) {
	valid := checkpointBytes(t, battleProg(t))
	otherSchema := table.MustSchema(
		table.Attr{Name: "key", Kind: table.Const},
		table.Attr{Name: "posx", Kind: table.Const},
		table.Attr{Name: "posy", Kind: table.Const},
		table.Attr{Name: "damage", Kind: table.Sum},
	)
	otherProg, err := sem.Check(mustParse(t, `
action Tag(u, v) := on e where e.key = u.key set damage = v;
function main(u) { perform Tag(u, 1) }`), otherSchema, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(bytes.NewReader(valid), otherProg, game.NewMechanics(), Options{}); err == nil ||
		!strings.Contains(err.Error(), "schema") {
		t.Fatalf("schema mismatch not detected: %v", err)
	}
}

// Checkpoint must surface writer errors (full disk, closed pipe).
func TestCheckpointWriteError(t *testing.T) {
	prog := battleProg(t)
	e := newEngine(t, prog, 40, Indexed, 2, nil)
	if err := e.Run(2); err != nil {
		t.Fatal(err)
	}
	if err := e.Checkpoint(&failAfter{n: 10}); err == nil {
		t.Fatal("write error swallowed")
	}
}

type failAfter struct{ n int }

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	if len(p) > f.n {
		p = p[:f.n]
	}
	f.n -= len(p)
	return len(p), nil
}

// FuzzRestore: arbitrary bytes must never panic the restore path —
// neither Restore (prog-supplied, v1+v2) nor the self-contained Open
// (v2, which additionally parses the embedded script). Seeds cover a
// valid v2 checkpoint with live input sections (journal, pending
// commands, sequence counters), interesting prefixes including one that
// truncates inside the input sections, corruption inside the embedded
// script region, and a synthesized v1 stream for the cross-version
// path.
func FuzzRestore(f *testing.F) {
	prog := battleProg(f)
	valid := checkpointBytes(f, prog)

	// A current-version checkpoint whose script/consts/inputs sections
	// are all nonempty: applied commands, a journal, and a pending entry.
	interactive := func() []byte {
		e := newEngine(f, prog, 48, Indexed, 11, nil)
		if err := e.Submit("fuzz", Command{Op: OpSet, Key: 1, Col: "health", Val: 9}); err != nil {
			f.Fatal(err)
		}
		if err := e.Run(2); err != nil {
			f.Fatal(err)
		}
		if err := e.Submit("fuzz", Command{Op: OpDespawn, Key: 2}); err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := e.Checkpoint(&buf); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}()

	// v3 corpora: compacted streams (nonzero journal base), with and
	// without a pending tail, plus adversarial variants — a truncated
	// compacted stream and a checksum-valid stream whose base field
	// contradicts its own journal. A genuine v2 stream from the
	// version-parameterized writer seeds the back-compat path.
	compacted, compactedPending, badBase, v2 := func() (a, b, c, d []byte) {
		e := newEngine(f, prog, 64, Indexed, 17, nil)
		if err := e.Submit("fuzz", Command{Op: OpSet, Key: 3, Col: "morale", Val: 4}); err != nil {
			f.Fatal(err)
		}
		if err := e.Run(3); err != nil {
			f.Fatal(err)
		}
		var v2buf bytes.Buffer
		if err := e.checkpointVersioned(&v2buf, CheckpointVersionV2); err != nil {
			f.Fatal(err)
		}
		e.Compact()
		var cbuf bytes.Buffer
		if err := e.Checkpoint(&cbuf); err != nil {
			f.Fatal(err)
		}
		if err := e.Submit("fuzz", Command{Op: OpDespawn, Key: 5}); err != nil {
			f.Fatal(err)
		}
		var pbuf bytes.Buffer
		if err := e.Checkpoint(&pbuf); err != nil {
			f.Fatal(err)
		}
		e.journalBase = e.tick + 5 // self-contradictory, but checksummed
		var bbuf bytes.Buffer
		if err := e.Checkpoint(&bbuf); err != nil {
			f.Fatal(err)
		}
		return cbuf.Bytes(), pbuf.Bytes(), bbuf.Bytes(), v2buf.Bytes()
	}()

	f.Add(valid)
	f.Add(interactive)
	f.Add(compacted)
	f.Add(compactedPending)
	f.Add(compactedPending[:len(compactedPending)-16]) // truncated compacted tail
	f.Add(badBase)
	f.Add(v2)
	baseField := append([]byte(nil), compacted...)
	baseField[len(baseField)-20] ^= 0x80 // inside the trailing base/checksum region
	f.Add(baseField)
	f.Add(valid[:8])
	f.Add(valid[:9])
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-8])
	f.Add(interactive[:len(interactive)-24]) // truncated inside the input sections
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0xFF
	f.Add(flipped)
	script := append([]byte(nil), interactive...)
	script[150] ^= 0x20 // inside the embedded script text
	f.Add(script)
	f.Add(synthesizeV1(f, 48, 11))
	f.Add([]byte(checkpointMagic))
	f.Add([]byte{})
	mech := game.NewMechanics()
	f.Fuzz(func(t *testing.T, data []byte) {
		if sess, err := Open(bytes.NewReader(data), mech, Options{}); err == nil {
			if err := sess.Step(1); err != nil {
				t.Skipf("opened session step failed: %v", err)
			}
		}
		e, err := Restore(bytes.NewReader(data), prog, mech, Options{})
		if err != nil {
			return
		}
		// Whatever restored must be a usable engine.
		if err := e.Tick(); err != nil {
			t.Skipf("restored engine tick failed: %v", err)
		}
	})
}

// A checksum-valid v2 stream whose embedded script does not compile must
// fail Open with an error, not a panic — the script section is data, not
// trusted code. (Engine-internal surgery: rewrite the source and
// re-checkpoint, so the checksum is honest.)
func TestOpenBadEmbeddedScript(t *testing.T) {
	prog := battleProg(t)
	e := newEngine(t, prog, 40, Indexed, 2, nil)
	if err := e.Run(2); err != nil {
		t.Fatal(err)
	}
	cases := []struct{ name, src string }{
		{"parse-error", "function main(u) {"},
		{"check-error", "function main(u) { perform NoSuchAction(u) }"},
		{"empty", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e.source = tc.src
			var buf bytes.Buffer
			if err := e.Checkpoint(&buf); err != nil {
				t.Fatal(err)
			}
			if _, err := Open(bytes.NewReader(buf.Bytes()), game.NewMechanics(), Options{}); err == nil ||
				!strings.Contains(err.Error(), "embedded script") {
				t.Fatalf("Open with %s script: err = %v, want embedded-script error", tc.name, err)
			}
		})
	}
}
