// Incremental per-tick index maintenance (the engine half; the structure
// half lives in exec.MaintainFrom). Rather than instrumenting every
// mutation site — effect application, movement, resurrection — the engine
// keeps a flat snapshot of the previous tick's rows and diffs it at tick
// end: O(n·width) bit-compares, trivial next to index construction, and
// immune to new mutation paths silently bypassing delta capture. The diff
// also yields a per-row changed-column mask, which is what lets
// MaintainFrom tell a unit that merely cooled down apart from one that
// moved.
//
// Timeline: the provider built at tick T reflects the environment after
// tick T−1 (effects apply post-decision). The delta captured at the end
// of tick T spans exactly that state to the state after T, so the
// provider for tick T+1 is obtained by patching tick T's provider with
// tick T's delta. The first two indexed ticks rebuild (no prior provider
// with a matching snapshot exists yet); maintenance engages from the
// third.
package engine

import (
	"math"

	"github.com/epicscale/sgl/internal/exec"
	"github.com/epicscale/sgl/internal/rng"
)

// incThreshold resolves Options.IncrementalThreshold.
func (e *Engine) incThreshold() float64 {
	t := e.opts.IncrementalThreshold
	switch {
	case t == 0:
		return DefaultIncrementalThreshold
	case t < 0:
		return 0
	default:
		return t
	}
}

// newIndexedProvider builds the tick's indexed provider, patched from the
// previous tick's structures when incremental maintenance is on and a
// valid delta exists. decideIndexed probes it lazily; the parallel path
// calls Freeze on it afterwards (which only builds what maintenance did
// not install).
func (e *Engine) newIndexedProvider(r rng.TickSource, keyIdx map[int64]int) *exec.Indexed {
	prov := exec.NewIndexed(e.an, e.env, r)
	prov.SeedKeyIndex(keyIdx)
	if e.opts.Incremental && e.deltaOK && e.prevProv != nil {
		if prov.MaintainFrom(e.prevProv, e.delta, e.incThreshold()) {
			e.Stats.MaintainTicks++
			e.Stats.DirtyRows += len(e.delta.Dirty)
		}
	}
	e.tickProv = prov
	return prov
}

// captureIncremental diffs the environment against the previous tick's
// snapshot at tick end, producing the Delta the next tick's provider is
// maintained with. Values are compared bit-for-bit (Float64bits): the
// index build pipeline is a pure function of row bits, so bit equality is
// exactly the "nothing this index consumed changed" predicate.
func (e *Engine) captureIncremental() {
	// Rows OpSet commands edited this tick under a synced snapshot (see
	// applyCommands): the sync makes the diff below blind to those edits,
	// so they are re-added to the fresh delta by hand. Consumed (and
	// cleared) every tick, whatever path returns.
	cmdRows := e.cmdSetRows
	e.cmdSetRows = e.cmdSetRows[:0]

	// Index maintenance and answer maintenance (answers.go) share the
	// delta; capture runs when either consumer is live. When neither is,
	// the snapshot is dropped entirely: a baseline that skipped ticks
	// would under-report rows that changed and changed back, so capture
	// must restart from scratch when it re-engages.
	incIdx := e.opts.Incremental && e.opts.Mode == Indexed
	if !incIdx && !e.hasMaintainedAnswers() {
		e.incSnap = nil
		e.deltaOK = false
		e.prevProv, e.tickProv = nil, nil
		return
	}
	n, w := e.env.Len(), e.prog.Schema.NumAttrs()
	if len(e.incSnap) != n*w {
		// First tick (or a population change): no usable baseline. Snapshot
		// now; the delta becomes valid at the end of the next tick.
		e.incSnap = make([]float64, n*w)
		for i, row := range e.env.Rows {
			copy(e.incSnap[i*w:(i+1)*w], row)
		}
		e.deltaOK = false
		e.retireTickProv(incIdx)
		return
	}
	dirty, masks := e.incDirty[:0], e.incMasks[:0]
	for i, row := range e.env.Rows {
		base := e.incSnap[i*w : (i+1)*w]
		var m uint64
		for c, v := range row {
			if math.Float64bits(v) != math.Float64bits(base[c]) {
				b := c
				if b > 63 {
					b = 63 // alias wide schemas conservatively
				}
				m |= 1 << b
			}
		}
		if m != 0 {
			dirty = append(dirty, i)
			masks = append(masks, m)
			copy(base, row)
		}
	}
	e.incDirty, e.incMasks = dirty, masks
	e.delta = exec.Delta{Dirty: dirty, Masks: masks}
	// Command-set rows enter with a conservative full mask, whether or
	// not the tick touched them again: the delta must span the whole
	// pre-command → post-tick window maintainAnswers classifies over.
	// Over-reporting is safe for both consumers (rows re-derive from the
	// live table); the synced snapshot is what keeps next tick's baseline
	// honest.
	for _, i := range cmdRows {
		if i < n {
			e.delta.Add(i, ^uint64(0))
		}
	}
	e.deltaOK = true
	e.retireTickProv(incIdx)
}

// retireTickProv rotates the tick's provider into prevProv when index
// maintenance will patch from it next tick, and drops both otherwise
// (answer-only capture has no use for a frozen index set).
func (e *Engine) retireTickProv(incIdx bool) {
	if incIdx {
		e.prevProv, e.tickProv = e.tickProv, nil
	} else {
		e.prevProv, e.tickProv = nil, nil
	}
}
