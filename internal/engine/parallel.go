// Parallel sharded tick execution (the paper's Section 4–5 insight made
// operational): within a tick every unit script only *reads* the frozen
// environment snapshot and *emits* effect rows that are later combined
// with commutative/associative fold operators, so the per-tick effect
// query is embarrassingly parallel. This file shards the environment's
// unit rows into Workers contiguous ranges, runs the effect query
// concurrently per shard against the shared read-only snapshot, and
// merges the per-shard effect buffers at a single barrier.
//
// Determinism contract. The serial engine folds effects in (plan Apply
// node, performer row, target visit) order; floating-point folds are not
// associative, so the parallel path must reproduce exactly that
// association to be bit-identical:
//
//   - shards are contiguous row ranges, so concatenating shard buffers in
//     shard order restores global performer-row order;
//   - each shard buffers effect rows per Apply node, and the barrier folds
//     node-major, shard-minor — the serial association exactly;
//   - randomness is counter-based: rng.TickSource hashes (seed, tick,
//     unit key, i), so a script draws the same values no matter which
//     worker evaluates it, and sequential draws (respawn placement) come
//     from per-unit substreams derived from the tick seed.
//
// The result: for any program, any tick count, and any Workers value, the
// environment table is byte-identical to the serial run. The engine tests
// prove this across the whole script zoo.
package engine

import (
	"sync"

	"github.com/epicscale/sgl/internal/algebra"
	"github.com/epicscale/sgl/internal/exec"
	"github.com/epicscale/sgl/internal/rng"
	"github.com/epicscale/sgl/internal/sgl/ast"
	"github.com/epicscale/sgl/internal/sgl/interp"
)

// shardBounds splits the half-open range [0, n) into at most p contiguous
// shards of near-equal size. The boundaries depend only on (n, p), never
// on scheduling, and concatenating the shards in index order yields
// [0, n) — the property the ordered merge relies on.
func shardBounds(n, p int) [][2]int {
	if p < 1 {
		p = 1
	}
	if p > n {
		p = n
	}
	if p < 1 {
		return [][2]int{{0, 0}}
	}
	bounds := make([][2]int, p)
	for s := 0; s < p; s++ {
		bounds[s] = [2]int{s * n / p, (s + 1) * n / p}
	}
	return bounds
}

// shards returns the engine's shard boundaries for n items.
func (e *Engine) shards(n int) [][2]int { return shardBounds(n, e.workers) }

// runShards runs fn(shard, lo, hi) for every shard, concurrently when
// there is more than one, and waits for all of them. fn must only write
// state owned by its shard (per-shard output slots or disjoint row
// ranges).
func runShards(bounds [][2]int, fn func(s, lo, hi int)) {
	if len(bounds) == 1 {
		fn(0, bounds[0][0], bounds[0][1])
		return
	}
	var wg sync.WaitGroup
	for s, b := range bounds {
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			fn(s, lo, hi)
		}(s, b[0], b[1])
	}
	wg.Wait()
}

// runShardsErr is runShards for fallible shard work: it collects one
// error slot per shard and returns the lowest-shard failure, so the
// reported error is deterministic regardless of scheduling.
func runShardsErr(bounds [][2]int, fn func(s, lo, hi int) error) error {
	errs := make([]error, len(bounds))
	runShards(bounds, func(s, lo, hi int) {
		errs[s] = fn(s, lo, hi)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// decideParallel is the sharded decision + action stage.
func (e *Engine) decideParallel(r rng.TickSource, acc *accumulator, keyIdx map[int64]int) error {
	if e.opts.Mode == Naive {
		return e.decideNaiveParallel(r, acc, keyIdx)
	}
	return e.decideIndexedParallel(r, acc, keyIdx)
}

// decideNaiveParallel shards the unit-at-a-time interpreter: each worker
// runs its units' scripts against the full frozen snapshot (interp.Naive
// and interp.Evaluator are stateless) and buffers the emitted effect
// rows; the barrier folds the buffers in shard order, which is global
// unit order — the serial fold association exactly.
func (e *Engine) decideNaiveParallel(r rng.TickSource, acc *accumulator, keyIdx map[int64]int) error {
	bounds := e.shards(e.env.Len())
	effs := make([][][]float64, len(bounds))
	if err := runShardsErr(bounds, func(s, lo, hi int) error {
		prov := interp.NewNaive(e.prog, e.env, r)
		ev := interp.New(e.prog, e.env, prov, r)
		var buf [][]float64
		for _, unit := range e.env.View(lo, hi).Rows {
			if err := ev.RunUnit(unit, func(row []float64) {
				buf = append(buf, row)
			}); err != nil {
				return err
			}
		}
		effs[s] = buf
		return nil
	}); err != nil {
		return err
	}
	kc := e.prog.Schema.KeyCol()
	for s, buf := range effs {
		for _, row := range buf {
			if idx, ok := keyIdx[int64(row[kc])]; ok {
				acc.foldRow(idx, row)
				e.countEffect(s)
			}
		}
	}
	return nil
}

// shardDecision is one worker's output: effect rows and deferred area
// performers, both bucketed per Apply node so the merge can reproduce the
// serial node-major fold order.
type shardDecision struct {
	effects [][][]float64 // [apply node][emission order] effect row
	perf    [][]performer // [apply node][row order] deferred performers
	stats   exec.Stats
}

// decideIndexedParallel shards the compiled set-at-a-time plan. One
// master provider builds every per-tick index up front (Freeze); each
// worker probes the frozen indexes through its own Fork and evaluates the
// plan restricted to its row range with a private Executor. Non-deferred
// effects are buffered per Apply node; deferrable area performers are
// collected per Apply node and applied after the barrier through the
// Section 5.4 effect index, concatenated in the exact order the serial
// walk would have discovered them.
func (e *Engine) decideIndexedParallel(r rng.TickSource, acc *accumulator, keyIdx map[int64]int) error {
	master := e.newIndexedProvider(r, keyIdx)
	master.Freeze()
	applies, err := e.plan.Applies()
	if err != nil {
		return err
	}
	bounds := e.shards(e.env.Len())
	outs := make([]shardDecision, len(bounds))

	if err := runShardsErr(bounds, func(s, lo, hi int) error {
		out := &outs[s]
		out.effects = make([][][]float64, len(applies))
		out.perf = make([][]performer, len(applies))
		prov := master.Fork()
		x, err := algebra.NewExecutorRange(e.prog, e.plan, e.env, prov, r, lo, hi)
		if err != nil {
			return err
		}
		x.SetMaterialize(e.opts.MaterializeExec)
		for j, ap := range applies {
			j, ap := j, ap
			deferThis := e.an.Act(ap.Def).Deferrable && !e.opts.DisableAreaDefer
			err := x.EachUnit(ap.In, func(row *algebra.Row) error {
				args, err := x.ApplyArgs(ap, row)
				if err != nil {
					return err
				}
				if deferThis {
					out.perf[j] = append(out.perf[j], performer{unit: row.Unit, args: args})
					return nil
				}
				var applyErr error
				prov.SelectTargets(ap.Def, row.Unit, args, func(tgt []float64) {
					if applyErr != nil {
						return
					}
					eff, err := x.BuildEffectRow(ap.Def, row.Unit, args, tgt)
					if err != nil {
						applyErr = err
						return
					}
					out.effects[j] = append(out.effects[j], eff)
				})
				return applyErr
			})
			if err != nil {
				return err
			}
		}
		out.stats = prov.Stats
		return nil
	}); err != nil {
		return err
	}

	// Barrier merge: fold buffered effects Apply-node-major, shard-minor —
	// within a node, shard order is global performer-row order, so every
	// target's fold sequence matches the serial walk bit for bit.
	kc := e.prog.Schema.KeyCol()
	for j := range applies {
		for s := range outs {
			for _, eff := range outs[s].effects[j] {
				if idx, ok := keyIdx[int64(eff[kc])]; ok {
					acc.foldRow(idx, eff)
					e.countEffect(s)
				}
			}
		}
	}

	// Deferred area actions, in serial discovery order: a definition
	// enters the order at the first (node, row) that actually deferred a
	// performer, and its performers concatenate node-major, shard-minor.
	deferred := map[*ast.ActDef][]performer{}
	var deferredOrder []*ast.ActDef
	for j, ap := range applies {
		for s := range outs {
			ps := outs[s].perf[j]
			if len(ps) == 0 {
				continue
			}
			if _, seen := deferred[ap.Def]; !seen {
				deferredOrder = append(deferredOrder, ap.Def)
			}
			deferred[ap.Def] = append(deferred[ap.Def], ps...)
		}
	}
	for _, def := range deferredOrder {
		if err := e.applyDeferredArea(def, deferred[def], r, acc); err != nil {
			return err
		}
	}

	e.Stats.IndexStats.Add(master.Stats)
	for s := range outs {
		e.Stats.IndexStats.Add(outs[s].stats)
	}
	return nil
}
