package engine

import (
	"fmt"
	"math"

	"github.com/epicscale/sgl/internal/algebra"
	"github.com/epicscale/sgl/internal/geom"
	"github.com/epicscale/sgl/internal/index/rangetree"
	"github.com/epicscale/sgl/internal/index/segtree"
	"github.com/epicscale/sgl/internal/index/sweepline"
	"github.com/epicscale/sgl/internal/rng"
	"github.com/epicscale/sgl/internal/sgl/ast"
	"github.com/epicscale/sgl/internal/sgl/interp"
	"github.com/epicscale/sgl/internal/table"
)

// performer is one unit that decided to execute an area action this tick,
// with its evaluated action arguments.
type performer struct {
	unit []float64
	args []float64
}

// decideNaive runs the unit-at-a-time interpreter with O(n)-scan aggregates:
// the Figure 10 baseline.
func (e *Engine) decideNaive(r rng.TickSource, acc *accumulator, keyIdx map[int64]int) error {
	prov := interp.NewNaive(e.prog, e.env, r)
	ev := interp.New(e.prog, e.env, prov, r)
	kc := e.prog.Schema.KeyCol()
	for _, unit := range e.env.Rows {
		err := ev.RunUnit(unit, func(row []float64) {
			if idx, ok := keyIdx[int64(row[kc])]; ok {
				acc.foldRow(idx, row)
				e.countEffect(0)
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// decideIndexed runs the compiled set-at-a-time plan over the indexed
// provider. Apply nodes with deferrable area actions are collected and
// applied through the Section 5.4 effect index instead of per-performer
// target enumeration.
//
// Both this serial path and decideIndexedParallel iterate Plan.Applies()
// — sharing one traversal is what guarantees the parallel merge folds
// effects in the same order the serial path does.
func (e *Engine) decideIndexed(r rng.TickSource, acc *accumulator, keyIdx map[int64]int) error {
	prov := e.newIndexedProvider(r, keyIdx)
	x := algebra.NewExecutor(e.prog, e.plan, e.env, prov, r)
	x.SetMaterialize(e.opts.MaterializeExec)
	kc := e.prog.Schema.KeyCol()

	deferred := map[*ast.ActDef][]performer{}
	var deferredOrder []*ast.ActDef

	applies, err := e.plan.Applies()
	if err != nil {
		return err
	}
	for _, ap := range applies {
		ap := ap
		deferThis := e.an.Act(ap.Def).Deferrable && !e.opts.DisableAreaDefer
		err := x.EachUnit(ap.In, func(row *algebra.Row) error {
			args, err := x.ApplyArgs(ap, row)
			if err != nil {
				return err
			}
			if deferThis {
				if _, seen := deferred[ap.Def]; !seen {
					deferredOrder = append(deferredOrder, ap.Def)
				}
				deferred[ap.Def] = append(deferred[ap.Def], performer{unit: row.Unit, args: args})
				return nil
			}
			var applyErr error
			prov.SelectTargets(ap.Def, row.Unit, args, func(tgt []float64) {
				if applyErr != nil {
					return
				}
				eff, err := x.BuildEffectRow(ap.Def, row.Unit, args, tgt)
				if err != nil {
					applyErr = err
					return
				}
				if idx, ok := keyIdx[int64(eff[kc])]; ok {
					acc.foldRow(idx, eff)
					e.countEffect(0)
				}
			})
			return applyErr
		})
		if err != nil {
			return err
		}
	}

	for _, def := range deferredOrder {
		perf := deferred[def]
		if err := e.applyDeferredArea(def, perf, r, acc); err != nil {
			return err
		}
	}
	e.Stats.IndexStats.Add(prov.Stats)
	return nil
}

// applyDeferredArea implements the paper's Section 5.4 ⊕-optimization:
// "to optimize ⊕, we arrange our query plan to group together all actions
// of the same type. For each such action we construct an index that
// contains their centers of effect. Applying ⊕ now consists of performing
// an aggregate on this index; for stackable effects this action is sum,
// and for nonstackable effects it is max."
//
// Performers with identical range offsets and identical categorical
// requirements form one group; each group's centers are indexed once and
// every unit recovers its combined contribution with one probe per SET
// column.
func (e *Engine) applyDeferredArea(def *ast.ActDef, performers []performer, r rng.TickSource, acc *accumulator) error {
	a := e.an.Act(def)
	dl := interp.DefParams(def)
	schema := e.prog.Schema

	type center struct {
		x, y float64
		vals []float64 // one per SET clause
	}
	type groupKey struct {
		offLoX, offHiX, offLoY, offHiY float64
		eq                             string
	}
	type group struct {
		key     groupKey
		eqVals  []float64
		centers []center
	}
	groups := map[groupKey]*group{}
	var order []groupKey

	axCol := func(i int) int {
		if i < len(a.Axes) {
			return a.Axes[i].Col
		}
		return -1
	}
	evalAxisOffsets := func(unit, args []float64, ax int) (lo, hi float64, err error) {
		if ax >= len(a.Axes) {
			return math.Inf(-1), math.Inf(1), nil
		}
		base := unit[a.Axes[ax].Col]
		lo, hi = math.Inf(-1), math.Inf(1)
		if a.Axes[ax].Lo != nil {
			v, err := interp.EvalDefTermWith(a.Axes[ax].Lo, dl, unit, args, unit, e.prog, r)
			if err != nil {
				return 0, 0, err
			}
			lo = v - base
		}
		if a.Axes[ax].Hi != nil {
			v, err := interp.EvalDefTermWith(a.Axes[ax].Hi, dl, unit, args, unit, e.prog, r)
			if err != nil {
				return 0, 0, err
			}
			hi = v - base
		}
		return lo, hi, nil
	}

	for _, p := range performers {
		// u-only conjuncts gate the performer entirely.
		skip := false
		for _, c := range a.UOnly {
			ok, err := interp.EvalDefCond(c, dl, p.unit, p.args, p.unit, e.prog, r)
			if err != nil {
				return err
			}
			if !ok {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		loX, hiX, err := evalAxisOffsets(p.unit, p.args, 0)
		if err != nil {
			return err
		}
		loY, hiY, err := evalAxisOffsets(p.unit, p.args, 1)
		if err != nil {
			return err
		}
		eqVals := make([]float64, len(a.Eqs))
		eqKey := ""
		for i, eq := range a.Eqs {
			v, err := interp.EvalDefTermWith(eq.Term, dl, p.unit, p.args, p.unit, e.prog, r)
			if err != nil {
				return err
			}
			eqVals[i] = v
			eqKey += fmt.Sprintf("%g|", v)
		}
		vals := make([]float64, len(def.Sets))
		for i, set := range def.Sets {
			v, err := interp.EvalDefTermWith(set.Value, dl, p.unit, p.args, p.unit, e.prog, r)
			if err != nil {
				return err
			}
			vals[i] = v
		}
		gk := groupKey{loX, hiX, loY, hiY, eqKey}
		g := groups[gk]
		if g == nil {
			g = &group{key: gk, eqVals: eqVals}
			groups[gk] = g
			order = append(order, gk)
		}
		cx, cy := 0.0, 0.0
		if c := axCol(0); c >= 0 {
			cx = p.unit[c]
		}
		if c := axCol(1); c >= 0 {
			cy = p.unit[c]
		}
		g.centers = append(g.centers, center{x: cx, y: cy, vals: vals})
	}

	// Target eligibility: e-only conjuncts, evaluated once per row. Pure
	// per row, so the scan shards across the worker pool.
	eligible := make([]bool, e.env.Len())
	if err := runShardsErr(e.shards(e.env.Len()), func(_, lo, hi int) error {
		for i := lo; i < hi; i++ {
			row := e.env.Rows[i]
			ok := true
			for _, c := range a.EOnly {
				pass, err := interp.EvalDefCond(c, dl, row, nil, row, e.prog, r)
				if err != nil {
					return err
				}
				if !pass {
					ok = false
					break
				}
			}
			eligible[i] = ok
		}
		return nil
	}); err != nil {
		return err
	}

	for _, gk := range order {
		g := groups[gk]
		// Targets matching this group's categorical requirements.
		var targets []int
		for i, row := range e.env.Rows {
			if !eligible[i] {
				continue
			}
			match := true
			for j, eq := range a.Eqs {
				if eq.Neq {
					if row[eq.Col] == g.eqVals[j] {
						match = false
					}
				} else if row[eq.Col] != g.eqVals[j] {
					match = false
				}
			}
			if match {
				targets = append(targets, i)
			}
		}
		if len(targets) == 0 {
			continue
		}

		for si, set := range def.Sets {
			col := schema.MustCol(set.Attr)
			kind := schema.Attr(col).Kind
			// Reflected probe window for target t:
			// performer at c affects t iff t ∈ [c+lo, c+hi] iff c ∈ [t−hi, t−lo].
			switch kind {
			case table.Sum:
				pts := make([]rangetree.Point, len(g.centers))
				vals := make([]float64, len(g.centers))
				for j, c := range g.centers {
					pts[j] = rangetree.Point{X: c.x, Y: c.y}
					vals[j] = c.vals[si]
				}
				rt := rangetree.Build(pts, 1, vals)
				e.Stats.IndexStats.IndexBuilds++
				// Each target folds into its own accumulator row exactly
				// once here, and the tree is read-only, so the probe loop
				// shards across the worker pool; per-shard counters merge
				// after the barrier.
				tb := shardBounds(len(targets), e.workers)
				probeCnt := make([]int, len(tb))
				appliedCnt := make([]int, len(tb))
				runShards(tb, func(s, lo, hi int) {
					out := []float64{0}
					for _, ti := range targets[lo:hi] {
						row := e.env.Rows[ti]
						tx, ty := 0.0, 0.0
						if c := axCol(0); c >= 0 {
							tx = row[c]
						}
						if c := axCol(1); c >= 0 {
							ty = row[c]
						}
						out[0] = 0
						rt.Aggregate(reflectedRect(tx, ty, gk.offLoX, gk.offHiX, gk.offLoY, gk.offHiY), out)
						probeCnt[s]++
						if out[0] != 0 {
							acc.fold(ti, col, out[0])
							appliedCnt[s]++
						}
					}
				})
				for s := range tb {
					e.Stats.IndexStats.TreeProbes += probeCnt[s]
					e.Stats.EffectsApplied += appliedCnt[s]
					if s < len(e.Stats.EffectsByWorker) {
						e.Stats.EffectsByWorker[s] += appliedCnt[s]
					}
				}
			default: // Max or Min: one sweep over the group's centers
				op := segtree.Max
				if kind == table.Min {
					op = segtree.Min
				}
				pts := make([]sweepline.Point, len(g.centers))
				for j, c := range g.centers {
					pts[j] = sweepline.Point{X: c.x, Y: c.y, Value: c.vals[si], Key: int64(j)}
				}
				probes := make([]sweepline.Probe, len(targets))
				for j, ti := range targets {
					row := e.env.Rows[ti]
					tx, ty := 0.0, 0.0
					if c := axCol(0); c >= 0 {
						tx = row[c]
					}
					if c := axCol(1); c >= 0 {
						ty = row[c]
					}
					rect := reflectedRect(tx, ty, gk.offLoX, gk.offHiX, gk.offLoY, gk.offHiY)
					cx, rx := intervalCenterHalf(rect.MinX, rect.MaxX)
					cy, _ := intervalCenterHalf(rect.MinY, rect.MaxY)
					probes[j] = sweepline.Probe{X: cx, Y: cy, RX: rx, Exclude: sweepline.NoExclude}
				}
				// The reflected y-window height is constant within a group.
				var rect0 = reflectedRect(0, 0, gk.offLoX, gk.offHiX, gk.offLoY, gk.offHiY)
				_, ry := intervalCenterHalf(rect0.MinY, rect0.MaxY)
				res := sweepline.Sweep(pts, probes, ry, op)
				e.Stats.IndexStats.Sweeps++
				for j, rres := range res {
					if rres.Found {
						acc.fold(targets[j], col, rres.Value)
						e.countEffect(0)
					}
				}
			}
		}
	}
	return nil
}

// reflectedRect is the probe window of a target at (tx, ty): a performer
// centered at c affects the target iff the target lies in [c+lo, c+hi] on
// each axis, i.e. iff c lies in [t−hi, t−lo].
func reflectedRect(tx, ty, loX, hiX, loY, hiY float64) geom.Rect {
	return geom.Rect{MinX: tx - hiX, MinY: ty - hiY, MaxX: tx - loX, MaxY: ty - loY}
}

// intervalCenterHalf converts an interval to (center, half-extent); a
// doubly unbounded interval (absent axis, where all coordinates are 0)
// maps to (0, +Inf).
func intervalCenterHalf(lo, hi float64) (float64, float64) {
	if math.IsInf(lo, -1) && math.IsInf(hi, 1) {
		return 0, math.Inf(1)
	}
	return (lo + hi) / 2, (hi - lo) / 2
}
