// Session: the long-lived facade over an Engine for server-style use.
// An Engine alone is a batch object — one goroutine ticks it and reads
// Env() when done. A Session turns it into a world that can be advanced,
// observed by many concurrent readers, and checkpointed, with the
// synchronization those uses need built in:
//
//   - Step takes the writer lock, so the environment never mutates under
//     a reader;
//   - Query/QueryAt/QueryUnit take the reader lock, so any number of
//     spectators run simultaneously (sharing one index build per tick,
//     see query.go) while Step waits;
//   - Checkpoint takes the reader lock too — persisting a world does not
//     block its observers, only its clock;
//   - Submit takes NO session lock at all: it routes through the sharded
//     per-origin admission queues (admission.go), so N concurrent actors
//     never contend with each other, with spectators, or with the clock.
package engine

import (
	"fmt"
	"io"
	"sync"

	"github.com/epicscale/sgl/internal/sgl/sem"
)

// StatsFunc observes the engine after each completed tick of a
// Session.Step: the tick counter just reached and the cumulative run
// stats. It runs under the session's writer lock — keep it cheap, and do
// not call back into the session from it.
type StatsFunc func(tick int64, stats RunStats)

// Session wraps an Engine with the locking that makes concurrent
// observation safe. Create one with NewSession and route every
// interaction through it; the underlying engine must not be ticked
// directly while the session is in use.
type Session struct {
	mu sync.RWMutex
	e  *Engine
	fn StatsFunc
}

// NewSession wraps an engine.
func NewSession(e *Engine) *Session { return &Session{e: e} }

// RestoreSession is Restore composed with NewSession: reopen a
// checkpoint and serve it. For self-contained version-2 checkpoints,
// Open does the same without needing the program.
func RestoreSession(r io.Reader, prog *sem.Program, g Game, tune Options) (*Session, error) {
	e, err := Restore(r, prog, g, tune)
	if err != nil {
		return nil, err
	}
	return NewSession(e), nil
}

// OnTick installs the per-tick stats hook (nil uninstalls). Safe to call
// at any time, including while a Step runs on another goroutine; the
// hook takes effect from the next tick.
func (s *Session) OnTick(fn StatsFunc) {
	s.mu.Lock()
	s.fn = fn
	s.mu.Unlock()
}

// Engine returns the wrapped engine for read-only inspection (plans,
// stats). Ticking or mutating it directly bypasses the session's
// locking.
func (s *Session) Engine() *Engine { return s.e }

// Tick returns the number of completed ticks.
func (s *Session) Tick() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.e.TickCount()
}

// Stats returns a snapshot of the cumulative run counters.
func (s *Session) Stats() RunStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := s.e.Stats
	st.EffectsByWorker = append([]int(nil), st.EffectsByWorker...)
	return st
}

// Step advances the world n ticks, invoking the OnTick hook after each.
// The writer lock is acquired per tick, not for the whole call: readers
// always observe a completed tick, never a torn one, and long steps
// leave windows between ticks for queued spectators instead of starving
// them for the entire batch.
func (s *Session) Step(n int) error {
	if n < 0 {
		return fmt.Errorf("engine: session: negative step %d", n)
	}
	for i := 0; i < n; i++ {
		if err := s.stepOne(); err != nil {
			return err
		}
	}
	return nil
}

func (s *Session) stepOne() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.e.Tick(); err != nil {
		return err
	}
	if s.fn != nil {
		// Same defensive copy as Stats(): a hook that retains its
		// argument must not watch EffectsByWorker mutate under it.
		st := s.e.Stats
		st.EffectsByWorker = append([]int(nil), st.EffectsByWorker...)
		s.fn(s.e.TickCount(), st)
	}
	return nil
}

// Query evaluates a world query against the current state. Any number of
// Query/QueryAt/QueryUnit calls may run concurrently; they block only
// while a Step is in progress.
func (s *Session) Query(q *Query, args ...float64) ([]float64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.e.Query(q, args...)
}

// QueryAt evaluates a positional query from the observer position (x, y).
func (s *Session) QueryAt(q *Query, x, y float64, args ...float64) ([]float64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.e.QueryAt(q, x, y, args...)
}

// QueryUnit evaluates a query from the perspective of the live unit with
// the given key.
func (s *Session) QueryUnit(q *Query, key int64, args ...float64) ([]float64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.e.QueryUnit(q, key, args...)
}

// QueryMaintained is Query backed by the maintained-answer cache (see
// answers.go): repeated evaluations across ticks reuse and patch the
// cached answer instead of re-deriving it through a fresh index build.
func (s *Session) QueryMaintained(q *Query, args ...float64) ([]float64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.e.QueryMaintained(q, args...)
}

// QueryMaintainedAt is QueryAt backed by the maintained-answer cache.
func (s *Session) QueryMaintainedAt(q *Query, x, y float64, args ...float64) ([]float64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.e.QueryMaintainedAt(q, x, y, args...)
}

// QueryMaintainedUnit is QueryUnit backed by the maintained-answer cache.
func (s *Session) QueryMaintainedUnit(q *Query, key int64, args ...float64) ([]float64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.e.QueryMaintainedUnit(q, key, args...)
}

// QueryScan is the naive-scan twin of Query under the same reader lock
// (see Engine.QueryScan): identical semantics evaluated by an O(n)
// environment scan instead of the shared per-tick indexes.
func (s *Session) QueryScan(q *Query, args ...float64) ([]float64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.e.QueryScan(q, args...)
}

// QueryScanAt is the naive-scan twin of QueryAt under the reader lock.
func (s *Session) QueryScanAt(q *Query, x, y float64, args ...float64) ([]float64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.e.QueryScanAt(q, x, y, args...)
}

// QueryScanUnit is the naive-scan twin of QueryUnit under the reader lock.
func (s *Session) QueryScanUnit(q *Query, key int64, args ...float64) ([]float64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.e.QueryScanUnit(q, key, args...)
}

// View runs fn against the engine under the reader lock: everything fn
// reads — multiple queries, the tick counter, stats — comes from one
// consistent between-ticks snapshot, which a sequence of individual
// Session calls cannot guarantee while the clock runs. fn must treat
// the engine as read-only and must not call back into the session (the
// lock is not reentrant); use the Engine's own Query*/QueryScan*
// methods inside fn, not the Session's.
func (s *Session) View(fn func(e *Engine)) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	fn(s.e)
}

// Checkpoint writes the world's resumable state to w (see
// Engine.Checkpoint). It runs under the reader lock: concurrent queries
// proceed, the clock waits. Queued sharded admissions are stamped and
// drained into the stream first, so every acknowledged Submit is in the
// checkpoint it should survive through.
func (s *Session) Checkpoint(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.e.Checkpoint(w)
}

// Submit validates and enqueues externally injected commands,
// all-or-nothing (see Engine.SubmitSharded). It takes no session lock:
// admission is sharded per origin, so any number of goroutines submit
// concurrently — with each other, with spectators, and with a running
// tick — contending only when two connections share one origin. The
// commands are stamped in canonical (tick, origin, sequence) order at
// the next drain boundary (tick or checkpoint), which makes the world —
// and the checkpoint bytes — independent of how the calls interleaved.
func (s *Session) Submit(origin string, cmds ...Command) error {
	_, err := s.SubmitTick(origin, cmds...)
	return err
}

// SubmitTick is Submit returning the completed tick count at admission —
// a lower bound on the tick the accepted commands will be stamped with
// (they apply at the first tick boundary that drains them). On error
// nothing was enqueued.
func (s *Session) SubmitTick(origin string, cmds ...Command) (int64, error) {
	return s.e.SubmitSharded(origin, cmds...)
}

// SubmitStamped enqueues one journal entry with its original (tick,
// origin, seq) stamp under the writer lock — the replay path a follower
// replica drives (see Engine.SubmitStamped): the entry must be stamped
// for the session's current tick, so a replayer submits each tick's
// journal slice and then steps once. Unlike Submit, this serializes
// against the clock; replay is a single-writer activity by construction.
func (s *Session) SubmitStamped(sc StampedCommand) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.e.SubmitStamped(sc)
}

// Journal returns a copy of the run's input journal under the reader
// lock (see Engine.Journal).
func (s *Session) Journal() []StampedCommand {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.e.Journal()
}

// Pending returns a copy of the commands waiting for the next tick
// boundary, under the reader lock.
func (s *Session) Pending() []StampedCommand {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.e.Pending()
}
