package engine

import (
	"fmt"
	"testing"

	"github.com/epicscale/sgl/internal/exec"
)

// runMaintainedDifferential drives the maintained-answer contract over
// one engine configuration: every zoo query, compiled once and held
// across ticks so its answers are actually maintained (the harness in
// query_test.go recompiles per tick, which would defeat the cache),
// must agree with the naive scan oracle at every tick. When exact is
// set, divisible queries must match the scan bit for bit — the refold
// guarantee — not merely within tolerance. A non-nil inject hook runs
// before each Tick and may Submit commands, so the contract also covers
// edits that enter through the command pipeline rather than the tick
// itself.
func runMaintainedDifferential(t *testing.T, workers int, incremental bool, threshold float64, ticks int, exact bool, inject func(t *testing.T, e *Engine, tick int)) *Engine {
	t.Helper()
	prog := battleProg(t)
	e := newEngine(t, prog, 90, Indexed, 13, func(o *Options) {
		o.Workers = workers
		o.Incremental = incremental
		o.IncrementalThreshold = threshold
	})
	type zooQuery struct {
		name      string
		q         *Query
		kind      queryKind
		args      []float64
		divisible bool
	}
	queries := make([]zooQuery, 0, len(queryZoo))
	for _, zq := range queryZoo {
		q := compileQuery(t, zq.src)
		queries = append(queries, zooQuery{
			name: zq.name, q: q, kind: zq.kind, args: zq.args,
			divisible: exec.NewAnswerPlan(q.prog, q.def).Divisible(),
		})
	}
	probes := [][2]float64{{0, 0}, {10, 14}, {25, 3}}
	keys := []int64{0, 17, 42}
	check := func(tick int, zq zooQuery, got, scan []float64, err1, err2 error) {
		t.Helper()
		if err1 != nil {
			t.Fatalf("tick %d, %s: maintained: %v", tick, zq.name, err1)
		}
		if err2 != nil {
			t.Fatalf("tick %d, %s: scan: %v", tick, zq.name, err2)
		}
		if len(got) != len(scan) {
			t.Fatalf("tick %d, %s: output arity mismatch", tick, zq.name)
		}
		for i := range got {
			if exact && zq.divisible {
				if got[i] != scan[i] && !(got[i] != got[i] && scan[i] != scan[i]) {
					t.Fatalf("tick %d, %s, output %s: maintained %v != scan %v (divisible answers must be bit-exact)",
						tick, zq.name, zq.q.Outputs()[i], got[i], scan[i])
				}
				continue
			}
			if !closeEnough(got[i], scan[i]) {
				t.Fatalf("tick %d, %s, output %s: maintained %v != scan %v",
					tick, zq.name, zq.q.Outputs()[i], got[i], scan[i])
			}
		}
	}
	for tick := 0; tick < ticks; tick++ {
		for _, zq := range queries {
			switch zq.kind {
			case qWorld:
				got, err1 := e.QueryMaintained(zq.q, zq.args...)
				scan, err2 := e.QueryScan(zq.q, zq.args...)
				check(tick, zq, got, scan, err1, err2)
			case qAt:
				for _, p := range probes {
					got, err1 := e.QueryMaintainedAt(zq.q, p[0], p[1], zq.args...)
					scan, err2 := e.QueryScanAt(zq.q, p[0], p[1], zq.args...)
					check(tick, zq, got, scan, err1, err2)
				}
			case qUnit:
				for _, key := range keys {
					got, err1 := e.QueryMaintainedUnit(zq.q, key, zq.args...)
					scan, err2 := e.QueryScanUnit(zq.q, key, zq.args...)
					check(tick, zq, got, scan, err1, err2)
				}
			}
		}
		if inject != nil {
			inject(t, e, tick)
		}
		if err := e.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

// TestMaintainedMatchesScan is the contract-family member for query
// answers: maintained answers ≡ QueryScan* every tick over the whole
// query zoo × Workers {1,4} × Incremental {off,on}.
func TestMaintainedMatchesScan(t *testing.T) {
	for _, workers := range []int{1, 4} {
		for _, inc := range []bool{false, true} {
			workers, inc := workers, inc
			name := "workers=1/inc=off"
			switch {
			case workers == 1 && inc:
				name = "workers=1/inc=on"
			case workers == 4 && !inc:
				name = "workers=4/inc=off"
			case workers == 4 && inc:
				name = "workers=4/inc=on"
			}
			t.Run(name, func(t *testing.T) {
				e := runMaintainedDifferential(t, workers, inc, 0, 10, false, nil)
				// The cache must actually have worked: some answers
				// survived ticks untouched, and the first tick (no
				// baseline delta) forced rederives.
				if e.Stats.AnswerHits == 0 {
					t.Fatal("no answer classified untouched across 10 battle ticks")
				}
				if e.Stats.AnswerRederives == 0 {
					t.Fatal("no answer rederived (the first tick alone must rederive)")
				}
			})
		}
	}
}

// At threshold 1 every touched divisible answer is patched in place, and
// a patched answer must equal the from-scratch scan bit for bit — the
// exactness claim answers.go's refold design rests on.
func TestMaintainedAlwaysPatchBitExact(t *testing.T) {
	for _, workers := range []int{1, 4} {
		workers := workers
		name := "workers=1"
		if workers == 4 {
			name = "workers=4"
		}
		t.Run(name, func(t *testing.T) {
			e := runMaintainedDifferential(t, workers, true, 1, 10, true, nil)
			if e.Stats.AnswerPatches == 0 {
				t.Fatal("threshold 1 never patched an answer in 10 battle ticks")
			}
		})
	}
}

// injectAnswerCommands is the command stream the command-injecting
// differential drives: set edits on columns the tick itself never
// rewrites (morale) and ones it does (health), plus a population change
// and a constant tune, so every delta interaction the command pipeline
// has — snapshot sync, delta merge, baseline drop — faces the oracle.
func injectAnswerCommands(t *testing.T, e *Engine, tick int) {
	t.Helper()
	submit := func(cmds ...Command) {
		t.Helper()
		if err := e.Submit("diff", cmds...); err != nil {
			t.Fatalf("tick %d: submit: %v", tick, err)
		}
	}
	switch tick {
	case 2:
		// The sim never writes morale: without command-edit carry-over the
		// tick-end diff is blind to this and cached answers go stale.
		submit(Command{Op: OpSet, Key: 3, Col: "morale", Val: 11})
	case 4:
		submit(Command{Op: OpSet, Key: 5, Col: "health", Val: 2},
			Command{Op: OpSet, Key: 17, Col: "morale", Val: 1})
	case 6:
		submit(Command{Op: OpDespawn, Key: 9}) // population change: baseline drops
	case 7:
		submit(Command{Op: OpTune, Col: "_HEAL_AURA", Val: 5})
	case 8:
		submit(Command{Op: OpSet, Key: 42, Col: "morale", Val: 7})
	}
}

// TestMaintainedMatchesScanWithCommands re-runs the contract with
// externally injected commands in the stream. This is the regression net
// for the synced-snapshot hole: an OpSet under Incremental+Indexed used
// to reach only the previous tick's delta, so the fresh delta
// maintainAnswers classifies against omitted the edit and the
// pre-command cached answer was served as a hit forever.
func TestMaintainedMatchesScanWithCommands(t *testing.T) {
	for _, workers := range []int{1, 4} {
		for _, inc := range []bool{false, true} {
			workers, inc := workers, inc
			name := fmt.Sprintf("workers=%d/inc=%v", workers, inc)
			t.Run(name, func(t *testing.T) {
				runMaintainedDifferential(t, workers, inc, 0, 10, false, injectAnswerCommands)
			})
		}
	}
}

// The distilled bug: a maintained answer over a column only commands
// ever write (the sim never touches morale) must see an OpSet edit the
// very next tick under Incremental+Indexed — the configuration where
// applyCommands syncs the snapshot and the tick-end diff alone cannot
// see the edit.
func TestMaintainedAnswerSeesCommandEdit(t *testing.T) {
	prog := battleProg(t)
	e := newEngine(t, prog, 48, Indexed, 7, func(o *Options) { o.Incremental = true })
	q := compileQuery(t, `aggregate M(u) := sum(e.morale) as m over e;`)
	read := func() float64 {
		t.Helper()
		got, err := e.QueryMaintained(q)
		if err != nil {
			t.Fatal(err)
		}
		scan, err := e.QueryScan(q)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != scan[0] {
			t.Fatalf("tick %d: maintained sum(morale) %v != scan %v", e.TickCount(), got[0], scan[0])
		}
		return got[0]
	}
	// Prime the cache past the baseline-less ticks so maintenance is live.
	for i := 0; i < 3; i++ {
		read()
		if err := e.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	before := read()
	if err := e.Submit("cmd", Command{Op: OpSet, Key: 3, Col: "morale", Val: before + 100}); err != nil {
		t.Fatal(err)
	}
	if err := e.Tick(); err != nil {
		t.Fatal(err)
	}
	after := read()
	if after == before {
		t.Fatal("the set command did not move the answer; the stale-hit regression is not exercised")
	}
	// And the answer must stay correct on later quiet ticks too.
	for i := 0; i < 3; i++ {
		if err := e.Tick(); err != nil {
			t.Fatal(err)
		}
		read()
	}
}

// A query whose read set no tick touches (player assignments never
// change) must hit the cache every tick after the first, with zero
// patches or provider detours after the initial derivations.
func TestMaintainedUntouchedQueryHits(t *testing.T) {
	prog := battleProg(t)
	e := newEngine(t, prog, 90, Indexed, 13, nil)
	q := compileQuery(t, `aggregate A(u, p) := count(*) as n over e where e.player = p;`)
	first, err := e.QueryMaintained(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	const ticks = 8
	for i := 0; i < ticks; i++ {
		if err := e.Tick(); err != nil {
			t.Fatal(err)
		}
		got, err := e.QueryMaintained(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != first[0] {
			t.Fatalf("tick %d: count by player drifted: %v -> %v", i, first[0], got[0])
		}
	}
	// First tick end has no baseline delta (one rederive); every later
	// tick must classify the answer untouched.
	if e.Stats.AnswerHits < ticks-1 {
		t.Fatalf("AnswerHits = %d, want >= %d", e.Stats.AnswerHits, ticks-1)
	}
	if e.Stats.AnswerPatches != 0 {
		t.Fatalf("AnswerPatches = %d for a query no tick touches", e.Stats.AnswerPatches)
	}
	if e.Stats.AnswerRederives != 1 {
		t.Fatalf("AnswerRederives = %d, want exactly the baseline-less first tick", e.Stats.AnswerRederives)
	}
}

// Maintained-answer state is bounded: probe fan-out within one query is
// capped, and answers unread for a few ticks die with their query cache
// entry.
func TestMaintainedAnswerEviction(t *testing.T) {
	prog := battleProg(t)
	e := newEngine(t, prog, 48, Indexed, 1, nil)
	q := compileQuery(t, `
aggregate Here(u, r) :=
  count(*) as n, avg(e.posx) as cx
  over e where e.posx >= u.posx - r and e.posx <= u.posx + r;`)
	for i := 0; i < maxAnswersPerQuery+10; i++ {
		if _, err := e.QueryMaintainedAt(q, float64(i), 0, 5); err != nil {
			t.Fatal(err)
		}
	}
	e.qmu.Lock()
	ent := e.queries.cache[q]
	e.qmu.Unlock()
	if ent == nil {
		t.Fatal("query entry missing after maintained evaluations")
	}
	ent.amu.Lock()
	live := len(ent.answers)
	ent.amu.Unlock()
	if live > maxAnswersPerQuery {
		t.Fatalf("answer cache grew to %d entries (cap %d)", live, maxAnswersPerQuery)
	}

	// Stop reading; the query cache generation eviction must release the
	// whole entry — answers included — within a few ticks.
	for i := 0; i < queryEvictAfter+2; i++ {
		if err := e.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	e.qmu.Lock()
	_, alive := e.queries.cache[q]
	e.qmu.Unlock()
	if alive {
		t.Fatal("unread query entry (and its maintained answers) survived generation eviction")
	}
}

// Delta capture engages on demand for maintained answers even with
// Options.Incremental off, and disengages — dropping the baseline — when
// the last answer dies, so a later re-engagement cannot diff against a
// stale snapshot (the ABA hazard).
func TestMaintainedCaptureLifecycle(t *testing.T) {
	prog := battleProg(t)
	e := newEngine(t, prog, 48, Indexed, 1, nil)
	if err := e.Tick(); err != nil {
		t.Fatal(err)
	}
	if e.incSnap != nil {
		t.Fatal("delta capture active with no consumer")
	}
	q := compileQuery(t, `aggregate N(u) := count(*) as n, sum(e.health) as hp over e;`)
	if _, err := e.QueryMaintained(q); err != nil {
		t.Fatal(err)
	}
	if err := e.Tick(); err != nil {
		t.Fatal(err)
	}
	if e.incSnap == nil {
		t.Fatal("delta capture did not engage for a live maintained answer")
	}
	// Abandon the query; after eviction the baseline must be dropped.
	for i := 0; i < queryEvictAfter+2; i++ {
		if err := e.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if e.incSnap != nil {
		t.Fatal("delta capture still active after the last maintained answer was evicted")
	}
}
