package engine

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/epicscale/sgl/internal/exec"
	"github.com/epicscale/sgl/internal/game"
	"github.com/epicscale/sgl/internal/geom"
	"github.com/epicscale/sgl/internal/sgl/sem"
	"github.com/epicscale/sgl/internal/table"
	"github.com/epicscale/sgl/internal/workload"
)

// injectScripted submits the test's fixed command scenario for one tick
// boundary: every op, several origins, deliberately awkward arrival
// orders (later origins submit first), and a few commands whose
// apply-time rules must reject them. Deterministic by construction, so
// the journal it produces is the replay oracle.
func injectScripted(t testing.TB, e *Engine, tick int64) {
	t.Helper()
	submit := func(origin string, cmds ...Command) {
		t.Helper()
		if err := e.Submit(origin, cmds...); err != nil {
			t.Fatalf("tick %d: submit(%s): %v", tick, origin, err)
		}
	}
	switch tick {
	case 2:
		// bob arrives before alice; canonical order applies alice first.
		submit("bob", Command{Op: OpSet, Key: 6, Col: "morale", Val: 9})
		submit("alice", Command{Op: OpSet, Key: 5, Col: "health", Val: 12})
	case 4:
		// Two spawns race for the same key: alice wins on canonical order
		// (origin sorts first), bob's duplicate is rejected at apply time.
		submit("bob", Command{Op: OpSpawn, Row: game.NewUnit(9001, 1, game.Archer, geom.Point{X: 71, Y: 70})})
		submit("alice", Command{Op: OpSpawn, Row: game.NewUnit(9001, 0, game.Knight, geom.Point{X: 70, Y: 70})})
		submit("alice", Command{Op: OpSpawn, Row: game.NewUnit(9002, 1, game.Healer, geom.Point{X: 70, Y: 71})})
	case 6:
		submit("alice", Command{Op: OpDespawn, Key: 9001})
		submit("bob", Command{Op: OpDespawn, Key: 424242}) // no such unit: rejected
		// A set in the same batch as a population change: the maintenance
		// baseline must drop entirely (the one-tick-later ABA hole).
		submit("carol", Command{Op: OpSet, Key: 7, Col: "health", Val: 13})
	case 8:
		submit("ops", Command{Op: OpTune, Col: "_HEAL_AURA", Val: 5})
	case 10:
		submit("alice", Command{Op: OpSet, Key: 2, Col: "posx", Val: 3})
	}
}

// scriptedTicks is how long the interactive scenario runs: past the last
// injection with room for its effects to propagate.
const scriptedTicks = 14

// runLiveInteractive drives an engine through the scenario and returns
// its checkpoint bytes (with one command still pending, so the buffer's
// survival is part of every comparison).
func runLiveInteractive(t testing.TB, e *Engine) []byte {
	t.Helper()
	for tick := int64(0); tick < scriptedTicks; tick++ {
		injectScripted(t, e, tick)
		if err := e.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	// Left pending deliberately: checkpoints must carry the input buffer.
	if err := e.Submit("late", Command{Op: OpSet, Key: 1, Col: "morale", Val: 2}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// replayFromJournal drives a fresh engine of the same (program, spec,
// seed) using only the recorded journal, and returns its checkpoint
// bytes.
func replayFromJournal(t testing.TB, e *Engine, journal []StampedCommand) []byte {
	t.Helper()
	byTick := map[int64][]StampedCommand{}
	for _, sc := range journal {
		byTick[sc.Tick] = append(byTick[sc.Tick], sc)
	}
	for tick := int64(0); tick < scriptedTicks; tick++ {
		for _, sc := range byTick[tick] {
			if err := e.SubmitStamped(sc); err != nil {
				t.Fatalf("replay tick %d: %v", tick, err)
			}
		}
		if err := e.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	for _, sc := range byTick[scriptedTicks] {
		if err := e.SubmitStamped(sc); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := e.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReplayMatchesLive is the acceptance harness for exactness contract
// #5: a run replayed from the recorded input journal is byte-identical
// to the live interactive run — same checkpoint bytes, which cover the
// environment, every counter, the journal itself, the per-origin
// sequence numbers and the pending input buffer — for every zoo program
// and the battle simulation, at Workers {1, 4} × Incremental {off, on}.
// (Byte comparisons hold Incremental fixed per pair — its maintenance
// counters are checkpointed state — and the cross-configuration
// environment check closes the square.)
func TestReplayMatchesLive(t *testing.T) {
	const units = 64
	mk := func(progName, src string, battle bool) {
		t.Run(progName, func(t *testing.T) {
			prog := battleProg(t)
			if !battle {
				prog = compileZoo(t, src)
			}
			var envs []*Engine
			for _, cfg := range restoreCfgs {
				tweak := func(o *Options) {
					o.Workers = cfg.workers
					o.Incremental = cfg.incremental
					o.IncrementalThreshold = 1 // always maintain: the hostile setting
				}
				live := newEngine(t, prog, units, Indexed, 7, tweak)
				liveBytes := runLiveInteractive(t, live)
				replay := newEngine(t, prog, units, Indexed, 7, tweak)
				replayBytes := replayFromJournal(t, replay, live.Journal())
				if !bytes.Equal(liveBytes, replayBytes) {
					t.Fatalf("w=%d inc=%v: journal replay diverged from the live interactive run",
						cfg.workers, cfg.incremental)
				}
				if live.Stats.CommandsApplied == 0 || live.Stats.CommandsRejected == 0 {
					t.Fatalf("scenario exercised no apply/reject path (applied %d, rejected %d)",
						live.Stats.CommandsApplied, live.Stats.CommandsRejected)
				}
				envs = append(envs, live)
			}
			for _, e := range envs[1:] {
				if !identicalTables(envs[0].Env(), e.Env()) {
					t.Fatal("interactive environments diverged across Workers/Incremental configurations")
				}
			}
		})
	}
	for _, zp := range exec.Zoo {
		mk(zp.Name, zp.Src, false)
	}
	mk("battle-sim", "", true)
}

// Submissions from different origins apply in canonical (origin, seq)
// order, so the world is independent of arrival interleaving: submitting
// the same per-origin sequences in opposite arrival orders yields
// byte-identical checkpoints (including journals and sequence counters).
func TestCommandOrderIndependence(t *testing.T) {
	prog := battleProg(t)
	run := func(aliceFirst bool) []byte {
		e := newEngine(t, prog, 64, Indexed, 3, nil)
		if err := e.Run(2); err != nil {
			t.Fatal(err)
		}
		a := func() {
			if err := e.Submit("alice",
				Command{Op: OpSet, Key: 4, Col: "health", Val: 7},
				Command{Op: OpSet, Key: 4, Col: "morale", Val: 1}); err != nil {
				t.Fatal(err)
			}
		}
		b := func() {
			if err := e.Submit("bob",
				Command{Op: OpSet, Key: 4, Col: "health", Val: 20}); err != nil {
				t.Fatal(err)
			}
		}
		if aliceFirst {
			a()
			b()
		} else {
			b()
			a()
		}
		if err := e.Run(3); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := e.Checkpoint(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(run(true), run(false)) {
		t.Fatal("arrival interleaving leaked into the world")
	}
}

// Submit-time validation: structurally invalid commands are refused with
// an error (and the whole batch with them — all-or-nothing), before
// anything reaches the buffer or journal.
func TestSubmitValidation(t *testing.T) {
	prog := battleProg(t)
	e := newEngine(t, prog, 48, Indexed, 5, nil)
	nan := math.NaN()
	cases := []struct {
		name string
		cmd  Command
		want string
	}{
		{"short-row", Command{Op: OpSpawn, Row: []float64{1, 2}}, "width"},
		{"nan-row", Command{Op: OpSpawn, Row: nanRow(prog, nan)}, "finite"},
		{"neg-key-spawn", Command{Op: OpSpawn, Row: game.NewUnit(-4, 0, 0, geom.Point{X: 1, Y: 1})}, "non-negative"},
		{"out-of-world", Command{Op: OpSpawn, Row: game.NewUnit(9000, 0, 0, geom.Point{X: 1e6, Y: 1})}, "outside the world"},
		{"neg-despawn", Command{Op: OpDespawn, Key: -1}, "non-negative"},
		{"unknown-col", Command{Op: OpSet, Key: 1, Col: "nosuch", Val: 1}, "no column"},
		{"set-key", Command{Op: OpSet, Key: 1, Col: "key", Val: 9}, "immutable"},
		{"set-effect-col", Command{Op: OpSet, Key: 1, Col: "damage", Val: 9}, "effect column"},
		{"set-nan", Command{Op: OpSet, Key: 1, Col: "health", Val: nan}, "finite"},
		{"set-pos-out", Command{Op: OpSet, Key: 1, Col: "posx", Val: -3}, "outside the world"},
		{"unknown-const", Command{Op: OpTune, Col: "_NOSUCH", Val: 1}, "no game constant"},
		{"bad-op", Command{Op: CommandOp(99)}, "unknown command op"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := e.Submit("t", tc.cmd)
			if err == nil {
				t.Fatal("invalid command accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
	// All-or-nothing: a batch with one bad command enqueues nothing.
	err := e.Submit("t",
		Command{Op: OpSet, Key: 1, Col: "health", Val: 5},
		Command{Op: OpSet, Key: 1, Col: "nosuch", Val: 5})
	if err == nil {
		t.Fatal("batch with an invalid command accepted")
	}
	if len(e.Pending()) != 0 || len(e.Journal()) != 0 {
		t.Fatal("a rejected batch left state behind")
	}
}

// Apply-time rules reject deterministically and keep the engine running:
// duplicate spawn keys, occupied squares, missing despawn/set targets.
func TestApplyTimeRejections(t *testing.T) {
	prog := battleProg(t)
	e := newEngine(t, prog, 48, Indexed, 5, nil)
	if err := e.Run(1); err != nil {
		t.Fatal(err)
	}
	n := e.Env().Len()
	// Find a live unit's square to collide with.
	row0 := e.Env().Rows[0]
	px, _ := prog.Schema.Col("posx")
	py, _ := prog.Schema.Col("posy")
	occupied := geom.Point{X: row0[px], Y: row0[py]}
	key0 := int64(row0[prog.Schema.KeyCol()])

	err := e.Submit("t",
		Command{Op: OpSpawn, Row: game.NewUnit(7000, 0, game.Knight, occupied)},                 // onto a live unit
		Command{Op: OpSpawn, Row: game.NewUnit(key0, 0, game.Knight, geom.Point{X: 60, Y: 60})}, // duplicate key
		Command{Op: OpDespawn, Key: 555555},                                                     // no such unit
		Command{Op: OpSet, Key: 666666, Col: "health", Val: 3},                                  // no such unit
		Command{Op: OpSet, Key: key0, Col: "health", Val: 21},                                   // fine
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(1); err != nil {
		t.Fatal(err)
	}
	if e.Stats.CommandsRejected != 4 {
		t.Fatalf("CommandsRejected = %d, want 4", e.Stats.CommandsRejected)
	}
	if e.Stats.CommandsApplied != 1 {
		t.Fatalf("CommandsApplied = %d, want 1", e.Stats.CommandsApplied)
	}
	if e.Env().Len() != n {
		t.Fatalf("population changed: %d → %d", n, e.Env().Len())
	}
	if err := e.Run(3); err != nil {
		t.Fatal(err)
	}
}

// Spawn and despawn change the population mid-run; the engine (and the
// incremental-maintenance machinery, which diffs positionally) must keep
// matching a rebuild-from-scratch twin afterwards.
func TestSpawnDespawnPopulationChange(t *testing.T) {
	prog := battleProg(t)
	a := newEngine(t, prog, 48, Indexed, 9, func(o *Options) { o.Incremental = true; o.IncrementalThreshold = 1 })
	b := newEngine(t, prog, 48, Indexed, 9, nil) // rebuild every tick
	drive := func(e *Engine) {
		t.Helper()
		if err := e.Run(3); err != nil {
			t.Fatal(err)
		}
		if err := e.Submit("t",
			Command{Op: OpSpawn, Row: game.NewUnit(8001, 0, game.Archer, geom.Point{X: 65, Y: 65})},
			Command{Op: OpDespawn, Key: 2},
		); err != nil {
			t.Fatal(err)
		}
		if err := e.Run(4); err != nil {
			t.Fatal(err)
		}
	}
	drive(a)
	drive(b)
	if a.Env().Len() != 48 { // -1 despawn +1 spawn
		t.Fatalf("population = %d, want 48", a.Env().Len())
	}
	if !identicalTables(a.Env(), b.Env()) {
		t.Fatal("incremental engine diverged from rebuild twin after population change")
	}
	if a.Env().Lookup(8001) == nil {
		t.Fatal("spawned unit missing")
	}
	if a.Env().Lookup(2) != nil {
		t.Fatal("despawned unit still present")
	}
}

// OpTune retunes THIS engine's constants only: a sibling engine built
// from the same program object keeps the original values, and the tuned
// value shows up in ConstValue and in behavior from the next tick.
func TestTuneConstIsolation(t *testing.T) {
	prog := battleProg(t)
	a := newEngine(t, prog, 48, Indexed, 5, nil)
	b := newEngine(t, prog, 48, Indexed, 5, nil)
	if err := a.Submit("ops", Command{Op: OpTune, Col: "_HEAL_AURA", Val: 11}); err != nil {
		t.Fatal(err)
	}
	if err := a.Tick(); err != nil {
		t.Fatal(err)
	}
	if v, _ := a.ConstValue("_HEAL_AURA"); v != 11 {
		t.Fatalf("tuned const = %v, want 11", v)
	}
	if v, _ := b.ConstValue("_HEAL_AURA"); v != game.Consts()["_HEAL_AURA"] {
		t.Fatalf("sibling engine's const changed to %v", v)
	}
	if v := prog.Consts["_HEAL_AURA"]; v != game.Consts()["_HEAL_AURA"] {
		t.Fatalf("caller's program consts mutated to %v", v)
	}
}

// Mid-stream checkpoint/restore: checkpoint a live interactive run while
// commands are pending, reopen it through the self-contained Open (no
// program supplied), and both runs — interrupted and uninterrupted —
// must finish byte-identical. This is the satellite proof that journaled
// and pending inputs survive Open.
func TestCheckpointMidStreamOpen(t *testing.T) {
	prog := battleProg(t)
	const cut = 6 // mid-scenario: the tick-6 despawns are submitted but not yet applied

	oracle := newEngine(t, prog, 64, Indexed, 7, nil)
	oracleBytes := runLiveInteractive(t, oracle)

	writer := newEngine(t, prog, 64, Indexed, 7, nil)
	for tick := int64(0); tick < cut; tick++ {
		injectScripted(t, writer, tick)
		if err := writer.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	injectScripted(t, writer, cut) // pending at the checkpoint
	var mid bytes.Buffer
	if err := writer.Checkpoint(&mid); err != nil {
		t.Fatal(err)
	}

	for _, cfg := range restoreCfgs {
		sess, err := Open(bytes.NewReader(mid.Bytes()), game.NewMechanics(), Options{
			Workers:              cfg.workers,
			Incremental:          cfg.incremental,
			IncrementalThreshold: 1,
		})
		if err != nil {
			t.Fatalf("open at w=%d inc=%v: %v", cfg.workers, cfg.incremental, err)
		}
		e := sess.Engine()
		if got := len(e.Pending()); got == 0 {
			t.Fatal("pending commands did not survive Open")
		}
		for tick := int64(cut); tick < scriptedTicks; tick++ {
			if tick != cut { // cut's commands came back inside the checkpoint
				injectScripted(t, e, tick)
			}
			if err := e.Tick(); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Submit("late", Command{Op: OpSet, Key: 1, Col: "morale", Val: 2}); err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		if err := e.Checkpoint(&got); err != nil {
			t.Fatal(err)
		}
		// Checkpoint bytes embed the maintenance counters, so the byte
		// comparison needs matching Incremental; compare environments and
		// interactive state for the maintained configurations instead.
		if !cfg.incremental {
			if !bytes.Equal(oracleBytes, got.Bytes()) {
				t.Fatalf("mid-stream Open at w=%d diverged from the uninterrupted run", cfg.workers)
			}
		} else {
			if !identicalTables(oracle.Env(), e.Env()) {
				t.Fatalf("mid-stream Open at w=%d inc=true: environment diverged", cfg.workers)
			}
			if e.Stats.CommandsApplied != oracle.Stats.CommandsApplied ||
				e.Stats.CommandsRejected != oracle.Stats.CommandsRejected {
				t.Fatalf("command counters diverged: %d/%d vs %d/%d",
					e.Stats.CommandsApplied, e.Stats.CommandsRejected,
					oracle.Stats.CommandsApplied, oracle.Stats.CommandsRejected)
			}
		}
		if len(e.Journal()) != len(oracle.Journal()) {
			t.Fatalf("journal length %d, want %d", len(e.Journal()), len(oracle.Journal()))
		}
	}
}

// Open needs the embedded script: a version-1 stream is rejected with a
// pointer at Restore, while Restore itself still reads v1 — the version
// policy's both halves.
func TestOpenRejectsV1RestoreReadsV1(t *testing.T) {
	prog := battleProg(t)
	v1 := synthesizeV1(t, 64, 7)

	if _, err := Open(bytes.NewReader(v1), game.NewMechanics(), Options{}); err == nil ||
		!strings.Contains(err.Error(), "version 1") {
		t.Fatalf("Open(v1) error = %v, want a version-1 explanation", err)
	}

	e, err := Restore(bytes.NewReader(v1), prog, game.NewMechanics(), Options{})
	if err != nil {
		t.Fatalf("Restore(v1): %v", err)
	}
	if e.TickCount() != 2 {
		t.Fatalf("restored v1 tick = %d, want 2", e.TickCount())
	}
	if err := e.Run(3); err != nil {
		t.Fatalf("restored v1 engine does not run: %v", err)
	}
	// A v1 world re-checkpoints as v2 and is then self-contained.
	var buf bytes.Buffer
	if err := e.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(bytes.NewReader(buf.Bytes()), game.NewMechanics(), Options{}); err != nil {
		t.Fatalf("re-checkpointed v1 world failed Open: %v", err)
	}
}

// synthesizeV1 hand-encodes a valid version-1 checkpoint (the frozen
// PR 3 layout: 7 counters, no script/consts/input sections) at tick 2
// over a fresh army.
func synthesizeV1(t testing.TB, units int, seed uint64) []byte {
	t.Helper()
	spec := workload.Spec{Units: units, Density: 0.01, Seed: seed, Formation: workload.BattleLines}
	army := workload.Generate(spec)
	var buf bytes.Buffer
	cw := table.NewWriter(&buf)
	cw.Bytes([]byte(checkpointMagic))
	cw.U32(CheckpointVersionV1)
	cw.U64(seed)
	cw.I64(2) // tick
	cw.U8(1)  // mode: indexed
	cw.U8(0)  // flags
	cw.F64(spec.Side())
	cw.F64(1) // movespeed
	cats := game.Categoricals()
	cw.U32(uint32(len(cats)))
	for _, c := range cats {
		cw.Str(c)
	}
	cw.I64(2) // stats: Ticks
	for i := 0; i < 6; i++ {
		cw.I64(0)
	}
	table.WriteSchema(cw, game.Schema())
	table.WriteRows(cw, army)
	cw.U64(cw.Sum())
	if err := cw.Err(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// nanRow builds a full-width row with one NaN cell (helper for the
// validation table).
func nanRow(prog *sem.Program, nan float64) []float64 {
	row := game.NewUnit(9100, 0, 0, geom.Point{X: 1, Y: 1})
	row[prog.Schema.MustCol("health")] = nan
	return row
}
