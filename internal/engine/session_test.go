package engine

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/epicscale/sgl/internal/game"
)

func newSession(t testing.TB, units int, seed uint64) *Session {
	t.Helper()
	return NewSession(newEngine(t, battleProg(t), units, Indexed, seed, nil))
}

// Step fires the per-tick hook once per tick with monotonically
// advancing counters.
func TestSessionStepAndHook(t *testing.T) {
	s := newSession(t, 60, 5)
	var ticks []int64
	s.OnTick(func(tick int64, stats RunStats) {
		ticks = append(ticks, tick)
		if stats.Ticks != int(tick) {
			t.Errorf("hook at tick %d saw stats.Ticks %d", tick, stats.Ticks)
		}
	})
	if err := s.Step(4); err != nil {
		t.Fatal(err)
	}
	if err := s.Step(3); err != nil {
		t.Fatal(err)
	}
	if len(ticks) != 7 {
		t.Fatalf("hook fired %d times, want 7", len(ticks))
	}
	for i, tk := range ticks {
		if tk != int64(i+1) {
			t.Fatalf("hook ticks = %v", ticks)
		}
	}
	if s.Tick() != 7 {
		t.Fatalf("Tick() = %d", s.Tick())
	}
	if s.Stats().Ticks != 7 {
		t.Fatalf("Stats().Ticks = %d", s.Stats().Ticks)
	}
	if err := s.Step(-1); err == nil {
		t.Fatal("negative step accepted")
	}
}

// The session's locking makes concurrent spectators safe against a
// running clock: readers hammer queries while the main goroutine steps.
// Run under -race this is the core safety proof for the session API.
func TestSessionConcurrentQueryAndStep(t *testing.T) {
	s := newSession(t, 90, 13)
	q := compileQuery(t, `
aggregate Zone(u, x, y, r) :=
  count(*) as n, sum(e.health) as hp
  over e where e.posx >= x - r and e.posx <= x + r
    and e.posy >= y - r and e.posy <= y + r;`)
	knn := compileQuery(t, `aggregate C(u) := nearestkey() as k, nearestdist() as d over e;`)

	var stop atomic.Bool
	var served atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for !stop.Load() {
				if _, err := s.Query(q, 12, 12, 10); err != nil {
					errCh <- err
					return
				}
				if _, err := s.QueryAt(knn, float64(g), 7); err != nil {
					errCh <- err
					return
				}
				if _, err := s.QueryUnit(q, int64(g), 12, 12, 10); err != nil {
					errCh <- err
					return
				}
				served.Add(3)
			}
		}(g)
	}
	// Keep the clock running until every reader demonstrably overlapped
	// with it (single-core schedulers may not run the readers at all for
	// the first few steps).
	for i := 0; i < 500 && (i < 10 || served.Load() < 24); i++ {
		if err := s.Step(1); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if served.Load() == 0 {
		t.Fatal("no queries served")
	}
}

// The naive-scan twins run under the same reader lock, so they too are
// safe against a running clock (regression: the server once called the
// engine's scan methods directly, bypassing the session lock), and they
// agree with the indexed path between steps.
func TestSessionQueryScanLockedAndAgrees(t *testing.T) {
	s := newSession(t, 80, 17)
	q := compileQuery(t, `
aggregate Zone(u, x, y, r) :=
  count(*) as n
  over e where e.posx >= x - r and e.posx <= x + r
    and e.posy >= y - r and e.posy <= y + r;`)
	pos := compileQuery(t, `
aggregate Near(u, r) :=
  count(*)
  over e where e.posx >= u.posx - r and e.posx <= u.posx + r
    and e.posy >= u.posy - r and e.posy <= u.posy + r;`)

	var stop atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, 3)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if _, err := s.QueryScan(q, 10, 10, 8); err != nil {
				errCh <- err
				return
			}
			if _, err := s.QueryScanAt(pos, 5, 5, 8); err != nil {
				errCh <- err
				return
			}
			if _, err := s.QueryScanUnit(pos, 3, 8); err != nil {
				errCh <- err
				return
			}
		}
	}()
	for i := 0; i < 30; i++ {
		if err := s.Step(1); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	idx, err := s.Query(q, 10, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	scan, err := s.QueryScan(q, 10, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	if idx[0] != scan[0] {
		t.Errorf("indexed %v != scan %v", idx, scan)
	}
	iu, err := s.QueryUnit(pos, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	su, err := s.QueryScanUnit(pos, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if iu[0] != su[0] {
		t.Errorf("unit indexed %v != scan %v", iu, su)
	}
}

// View runs its function under the reader lock against one consistent
// snapshot: tick and query results read inside one View must agree even
// with a concurrent stepper.
func TestSessionView(t *testing.T) {
	s := newSession(t, 60, 21)
	q := compileQuery(t, `aggregate Pop(u) := count(*) over e;`)

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if err := s.Step(1); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 50; i++ {
		var t1, t2 int64
		var pop []float64
		s.View(func(e *Engine) {
			t1 = e.TickCount()
			pop, _ = e.Query(q)
			t2 = e.TickCount()
		})
		if t1 != t2 {
			t.Fatalf("tick moved inside View: %d → %d", t1, t2)
		}
		if len(pop) != 1 || pop[0] != 60 {
			t.Fatalf("population inside View = %v", pop)
		}
	}
	stop.Store(true)
	wg.Wait()
}

// A session checkpointed mid-run and restored into a new session
// continues byte-identically, and checkpointing does not perturb the
// run.
func TestSessionCheckpointRestore(t *testing.T) {
	oracle := newSession(t, 80, 11)
	if err := oracle.Step(16); err != nil {
		t.Fatal(err)
	}

	s := newSession(t, 80, 11)
	if err := s.Step(6); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreSession(&buf, battleProg(t), game.NewMechanics(), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Step(10); err != nil {
		t.Fatal(err)
	}
	if !identicalTables(oracle.Engine().Env(), restored.Engine().Env()) {
		t.Fatal("restored session diverged from uninterrupted session")
	}
	// The original session keeps running unaffected by the checkpoint.
	if err := s.Step(10); err != nil {
		t.Fatal(err)
	}
	if !identicalTables(oracle.Engine().Env(), s.Engine().Env()) {
		t.Fatal("checkpointing perturbed the running session")
	}
}

// RestoreSession surfaces restore errors.
func TestRestoreSessionError(t *testing.T) {
	if _, err := RestoreSession(bytes.NewReader([]byte("junk")), battleProg(t), game.NewMechanics(), Options{}); err == nil {
		t.Fatal("junk restored")
	}
}

// SubmitStamped drives the follower-replica replay path through the
// session facade: replaying a live session's journal tick by tick via
// Session.SubmitStamped + Step produces byte-identical checkpoints. The
// wrapper takes the writer lock, so the replay can interleave with
// concurrent spectator queries without tripping the race detector.
func TestSessionSubmitStampedReplay(t *testing.T) {
	const units, seed, ticks = 64, 9, 8
	live := newSession(t, units, seed)
	for tick := int64(0); tick < ticks; tick++ {
		if tick == 2 {
			if err := live.Submit("alice", Command{Op: OpSet, Key: 5, Col: "morale", Val: 4}); err != nil {
				t.Fatal(err)
			}
			if err := live.Submit("bob", Command{Op: OpSet, Key: 6, Col: "health", Val: 11}); err != nil {
				t.Fatal(err)
			}
		}
		if err := live.Step(1); err != nil {
			t.Fatal(err)
		}
	}
	var liveBytes bytes.Buffer
	if err := live.Checkpoint(&liveBytes); err != nil {
		t.Fatal(err)
	}

	replay := newSession(t, units, seed)
	journal := live.Journal()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // spectator racing the replay: SubmitStamped must lock
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				replay.Stats()
				replay.Tick()
			}
		}
	}()
	for tick := int64(0); tick < ticks; tick++ {
		for _, sc := range journal {
			if sc.Tick == tick {
				if err := replay.SubmitStamped(sc); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := replay.Step(1); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	var replayBytes bytes.Buffer
	if err := replay.Checkpoint(&replayBytes); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(liveBytes.Bytes(), replayBytes.Bytes()) {
		t.Fatal("session-level stamped replay diverged from the live session")
	}
	// A stamp for the wrong tick is refused, not silently misapplied.
	if err := replay.SubmitStamped(StampedCommand{Tick: 0, Origin: "late", Cmd: Command{Op: OpSet, Key: 1, Col: "morale", Val: 1}}); err == nil {
		t.Fatal("stale-stamped command accepted")
	}
}
