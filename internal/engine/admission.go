// Sharded command admission: the scalable front half of the command
// pipeline (see command.go for the pipeline itself).
//
// Engine.Submit is correct but serial — the Session used to route every
// submission through the writer lock, so N concurrent actors contended
// on one mutex with the clock. The observation that removes the lock is
// the same one that makes contract #5 hold at all: the world depends
// only on the canonical (tick, origin, sequence) order of the accepted
// commands, never on their arrival interleaving. Admission therefore
// does not need to agree on a global order at submit time; it only needs
// to preserve each origin's own order. That is a per-origin problem, so
// admission shards per origin:
//
//	actor A ──▶ queue[A] ─┐
//	actor B ──▶ queue[B] ─┼─ drain (tick/checkpoint boundary):
//	actor C ──▶ queue[C] ─┘  stamp in sorted-origin order → pending+journal
//
//	- SubmitSharded validates against immutable engine state only (the
//	  schema, the world geometry, the constant-name set — all fixed at
//	  construction), reserves buffer space with one atomic CAS, and
//	  appends to its origin's queue under that queue's own mutex. Two
//	  actors on different origins share no lock at all; two connections
//	  racing the same origin serialize only with each other.
//	- The queues are drained at the next tick boundary (and before a
//	  checkpoint is serialized, so an acknowledged command is always in
//	  the stream it should survive through). The drain stamps commands
//	  with (current tick, origin, next per-origin sequence), walking the
//	  origins in sorted order so the stamped batch arrives in canonical
//	  order and the insertion into the pending buffer and journal stays
//	  O(1) per command.
//
// Stamping happens at the drain, not at submission: a queued command has
// no sequence number yet, so the assignment order — and with it every
// downstream byte — is a pure function of WHAT each origin submitted
// before the boundary, which is exactly the determinism argument
// TestSubmitArrivalOrderTorture hammers on. The replay path
// (SubmitStamped) carries its own historical stamps and therefore
// bypasses the sharded queues entirely.
package engine

import (
	"fmt"
	"sort"
	"sync"
)

// originQueue buffers one origin's submitted-but-not-yet-stamped
// commands. Its mutex serializes only that origin's submitters against
// each other and against the drain.
type originQueue struct {
	mu   sync.Mutex
	cmds []Command
}

// admission is the sharded front buffer: one queue per origin. The map
// grows with the distinct origins seen, like the per-origin sequence
// counters do; queues are never removed, so a *originQueue pointer once
// handed out stays the live queue for its origin.
type admission struct {
	mu     sync.RWMutex
	queues map[string]*originQueue
}

// queue returns the origin's queue, creating it on first use.
func (a *admission) queue(origin string) *originQueue {
	a.mu.RLock()
	q := a.queues[origin]
	a.mu.RUnlock()
	if q != nil {
		return q
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if q = a.queues[origin]; q == nil {
		if a.queues == nil {
			a.queues = map[string]*originQueue{}
		}
		q = &originQueue{}
		a.queues[origin] = q
	}
	return q
}

// SubmitSharded validates cmds and enqueues them on the origin's
// admission queue, all-or-nothing, returning the engine's completed tick
// count at admission time (a lower bound on the tick the commands will
// be stamped with). Unlike Submit, it is safe to call from any number of
// goroutines concurrently — with itself on any origins, and with a
// running Tick or Checkpoint: it touches only immutable engine state,
// the atomic buffer reservation, and the origin's own queue. The queued
// commands are stamped and enter the pending buffer and journal at the
// next drain (tick or checkpoint boundary), each origin's in queue
// order, origins in canonical sorted order.
func (e *Engine) SubmitSharded(origin string, cmds ...Command) (int64, error) {
	tick := e.atick.Load()
	if len(origin) > MaxOriginLen {
		return tick, fmt.Errorf("engine: origin longer than %d bytes", MaxOriginLen)
	}
	for i := range cmds {
		if err := e.validateCommand(&cmds[i]); err != nil {
			return tick, fmt.Errorf("engine: command %d: %w", i, err)
		}
	}
	if err := e.reserve(len(cmds)); err != nil {
		return tick, err
	}
	// Decouple spawn rows from the caller before publishing them to the
	// drain, exactly as Submit does.
	for i := range cmds {
		if cmds[i].Row != nil {
			cmds[i].Row = append([]float64(nil), cmds[i].Row...)
		}
	}
	q := e.adm.queue(origin)
	q.mu.Lock()
	q.cmds = append(q.cmds, cmds...)
	q.mu.Unlock()
	return tick, nil
}

// reserve claims n slots of the shared input budget (queued + pending ≤
// MaxPendingCommands) with a CAS loop, so concurrent submitters cannot
// jointly overshoot the bound the checkpoint decoder enforces.
func (e *Engine) reserve(n int) error {
	for {
		cur := e.inflight.Load()
		if cur+int64(n) > MaxPendingCommands {
			return fmt.Errorf("engine: input buffer full (%d pending, limit %d)", cur, MaxPendingCommands)
		}
		if e.inflight.CompareAndSwap(cur, cur+int64(n)) {
			return nil
		}
	}
}

// drainAdmission moves every queued command into the pending buffer and
// journal with its canonical (tick, origin, sequence) stamp. Called at
// the top of Tick and before Checkpoint serializes, under inmu; the
// sorted-origin walk makes the stamped batch independent of arrival
// interleaving and keeps the canonical insertions O(1) per command.
func (e *Engine) drainAdmission() {
	e.adm.mu.RLock()
	origins := make([]string, 0, len(e.adm.queues))
	//sgl:unordered origins are collected and sorted before stamping
	for o := range e.adm.queues {
		origins = append(origins, o)
	}
	e.adm.mu.RUnlock()
	sort.Strings(origins)
	for _, origin := range origins {
		q := e.adm.queue(origin)
		q.mu.Lock()
		cmds := q.cmds
		q.cmds = nil
		q.mu.Unlock()
		if len(cmds) == 0 {
			continue
		}
		if e.seqs == nil {
			e.seqs = map[string]uint64{}
		}
		for _, c := range cmds {
			sc := StampedCommand{Tick: e.tick, Origin: origin, Seq: e.seqs[origin], Cmd: c}
			e.seqs[origin]++
			e.pending = insertCanonical(e.pending, sc)
			e.journal = insertCanonical(e.journal, sc)
		}
	}
}
