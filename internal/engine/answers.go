// Maintained query answers: the engine half of answering observation
// queries under updates. Where Query/QueryAt/QueryUnit rebuild (and
// share) a per-tick index set, QueryMaintained* keeps the *result* of a
// specific (query, probe, args) evaluation cached across ticks and uses
// the tick's exec.Delta to decide, per answer, the cheapest way to stay
// current:
//
//   - untouched: no changed column intersects what the answer reads —
//     the cached values are returned as-is (Stats.AnswerHits);
//   - patched: all outputs are divisible and the relevant churn is at or
//     below Options.IncrementalThreshold — exec.Answer re-evaluates just
//     the dirty rows and refolds (Stats.AnswerPatches), bit-identical to
//     a fresh scan;
//   - rederived: everything else falls back to the existing shared
//     queryProvider path, or to a from-scratch state rebuild for
//     divisible answers below the threshold (Stats.AnswerRederives).
//
// The cache hangs off the per-Query cache in query.go: an answer lives
// inside its query's cache entry, is maintained by maintainAnswers at
// the end of every Tick (the delta is fresh then), and dies with the
// entry when invalidateQueries evicts it. Like Query*, QueryMaintained*
// may be called from any number of goroutines but never concurrently
// with Tick — the Session facade enforces that.
//
// The per-answer verdict counters (AnswerHits/Patches/Rederives) are
// deliberately not checkpoint-serialized: like IndexStats, they depend
// on which spectators were watching, not on the world.
package engine

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/epicscale/sgl/internal/exec"
)

// Probe forms a maintained answer can be keyed by.
const (
	probeWorld uint8 = iota
	probeAt
	probeUnit
)

// answerKey identifies one maintained evaluation: probe form, probe
// coordinates or unit key, and the argument vector (packed bitwise so
// NaN arguments still compare).
type answerKey struct {
	kind uint8
	x, y float64
	unit int64
	args string
}

func packArgs(args []float64) string {
	if len(args) == 0 {
		return ""
	}
	buf := make([]byte, 8*len(args))
	for i, v := range args {
		binary.BigEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	return string(buf)
}

// answerEntry is one maintained answer. Guarded by the owning cache
// entry's amu.
type answerEntry struct {
	// ans is the patchable per-row state (divisible plans only); nil
	// when the answer was derived through the provider path or the state
	// was invalidated.
	ans *exec.Answer
	// vals is the current answer; nil until first evaluated.
	vals []float64
	// stale marks vals as needing re-derivation at the next read.
	stale bool
	// viaProvider selects the provider path for that re-derivation
	// (non-divisible outputs, or churn above the threshold).
	viaProvider bool
	// Recency for eviction, stamped from the query cache's gen/seq.
	lastGen uint64
	lastSeq uint64
}

// maxAnswersPerQuery bounds one query's probe fan-out: each answer holds
// O(population) state, so a spectator sweeping probe positions must
// recycle slots instead of growing one per position ever probed.
const maxAnswersPerQuery = 32

// QueryMaintained is Query backed by the maintained-answer cache: same
// semantics and probe rules, but repeated evaluations across ticks reuse
// the cached answer whenever the tick's delta provably could not move it,
// and patch it in place when the relevant churn is small.
func (e *Engine) QueryMaintained(q *Query, args ...float64) ([]float64, error) {
	if len(q.unitCols) > 0 {
		return nil, fmt.Errorf("engine: query %s reads unit attributes %s; use QueryMaintainedAt or QueryMaintainedUnit", q.def.Name, q.unitAttrNames())
	}
	key := answerKey{kind: probeWorld, args: packArgs(args)}
	return e.maintainedRow(q, key, e.syntheticUnit(0, 0), args)
}

// QueryMaintainedAt is QueryAt backed by the maintained-answer cache.
func (e *Engine) QueryMaintainedAt(q *Query, x, y float64, args ...float64) ([]float64, error) {
	if q.NeedsUnit() {
		return nil, fmt.Errorf("engine: query %s reads unit attributes %s beyond position; use QueryMaintainedUnit", q.def.Name, q.unitAttrNames())
	}
	key := answerKey{kind: probeAt, x: x, y: y, args: packArgs(args)}
	return e.maintainedRow(q, key, e.syntheticUnit(x, y), args)
}

// QueryMaintainedUnit is QueryUnit backed by the maintained-answer
// cache. The probe row is copied at evaluation time; maintainAnswers
// invalidates the answer when the unit's own read columns change.
func (e *Engine) QueryMaintainedUnit(q *Query, unitKey int64, args ...float64) ([]float64, error) {
	row := e.env.Lookup(unitKey)
	if row == nil {
		return nil, fmt.Errorf("engine: query %s: no unit with key %d", q.def.Name, unitKey)
	}
	key := answerKey{kind: probeUnit, unit: unitKey, args: packArgs(args)}
	return e.maintainedRow(q, key, row, args)
}

// MaintainedPlan returns the answer-maintenance plan maintained
// evaluations of q run with, building it exactly as maintainedRow would.
// Exposed for explain tooling and the lint/runtime consistency tests: the
// plan's Divisible() is the patch-vs-rederive decision the maintainer
// makes every dirty tick.
func (e *Engine) MaintainedPlan(q *Query) *exec.AnswerPlan {
	ent, _, _ := e.queryEntry(q)
	ent.amu.Lock()
	defer ent.amu.Unlock()
	if ent.plan == nil {
		ent.plan = exec.NewAnswerPlan(q.prog, q.def)
	}
	return ent.plan
}

// maintainedRow returns the cached answer for (q, key), deriving it if
// absent or stale. Lock order: queryEntry's qmu section completes before
// amu is taken; the provider fallback nests qmu→ent.mu under amu, which
// nothing inverts.
func (e *Engine) maintainedRow(q *Query, key answerKey, unit, args []float64) ([]float64, error) {
	if err := q.checkArgs(args); err != nil {
		return nil, err
	}
	ent, gen, seq := e.queryEntry(q)
	ent.amu.Lock()
	defer ent.amu.Unlock()
	if ent.plan == nil {
		ent.plan = exec.NewAnswerPlan(q.prog, q.def)
	}
	if ent.answers == nil {
		ent.answers = map[answerKey]*answerEntry{}
	}
	a := ent.answers[key]
	if a == nil {
		a = &answerEntry{}
		ent.answers[key] = a
		for len(ent.answers) > maxAnswersPerQuery {
			var lruKey answerKey
			var lru *answerEntry
			//sgl:unordered LRU victim search is a min-fold; a lastSeq tie evicts an arbitrary entry, which costs one rederive but never changes answer values
			for k, cand := range ent.answers {
				if k == key {
					continue
				}
				if lru == nil || cand.lastSeq < lru.lastSeq {
					lruKey, lru = k, cand
				}
			}
			delete(ent.answers, lruKey)
		}
	}
	a.lastGen, a.lastSeq = gen, seq
	if a.vals != nil && !a.stale {
		return append([]float64(nil), a.vals...), nil
	}
	if ent.plan.Divisible() && !a.viaProvider {
		ans, err := exec.NewAnswer(ent.plan, e.env, unit, args, e.src.Tick(e.tick))
		if err != nil {
			return nil, err
		}
		a.ans = ans
		a.vals = ans.Values()
		a.stale = false
		return append([]float64(nil), a.vals...), nil
	}
	vals := e.queryProvider(q).Fork().EvalAgg(q.def, unit, args)
	a.ans = nil
	a.vals = vals
	a.stale = false
	// The provider detour is one-shot: a later quiet tick may rebuild
	// patchable state for divisible plans.
	a.viaProvider = !ent.plan.Divisible()
	return append([]float64(nil), vals...), nil
}

// maintainAnswers classifies every cached answer against the tick's
// delta. Called at the end of Tick, after captureIncremental and before
// invalidateQueries: the delta spans exactly the tick that just ran, and
// Tick never runs concurrently with readers, so the per-entry locking is
// uncontended and the Stats counters are safe to bump.
func (e *Engine) maintainAnswers() {
	type qe struct {
		q   *Query
		ent *queryCacheEntry
	}
	e.qmu.Lock()
	gen := e.queries.gen
	ents := make([]qe, 0, len(e.queries.cache))
	//sgl:unordered snapshot into a slice; per-entry maintenance below is independent of visit order
	for q, ent := range e.queries.cache {
		ents = append(ents, qe{q, ent})
	}
	e.qmu.Unlock()
	if len(ents) == 0 {
		return
	}
	n := e.env.Len()
	thr := e.incThreshold()
	r := e.src.Tick(e.tick)
	kc := e.prog.Schema.KeyCol()
	// Keys of rows the tick dirtied, for probe-unit invalidation; built
	// lazily since most answers are world/positional.
	var dirtyKeys map[int64]uint64
	for _, x := range ents {
		x.ent.amu.Lock()
		//sgl:unordered per-answer maintenance touches only its own entry; stats counters are sums
		for key, a := range x.ent.answers {
			if gen-a.lastGen > queryEvictAfter {
				delete(x.ent.answers, key)
				continue
			}
			if a.vals == nil || a.stale {
				continue // nothing current to maintain; next read derives
			}
			if !e.deltaOK {
				// No usable delta (first tick, population change): the
				// cached values and per-row state are both suspect.
				a.stale, a.ans = true, nil
				a.viaProvider = !x.ent.plan.Divisible()
				e.Stats.AnswerRederives++
				continue
			}
			if key.kind == probeUnit {
				if dirtyKeys == nil {
					dirtyKeys = make(map[int64]uint64, len(e.delta.Dirty))
					for j, i := range e.delta.Dirty {
						dirtyKeys[int64(e.env.Rows[i][kc])] = e.delta.Masks[j]
					}
				}
				if m, ok := dirtyKeys[key.unit]; ok && m&x.q.unitColMask() != 0 {
					// The probe row itself changed in a column the query
					// reads through u: the frozen copy inside the state
					// is wrong, not just the fold.
					a.stale, a.ans = true, nil
					a.viaProvider = !x.ent.plan.Divisible()
					e.Stats.AnswerRederives++
					continue
				}
			}
			if !x.ent.plan.Touched(e.delta) {
				e.Stats.AnswerHits++
				continue
			}
			rel := x.ent.plan.RelevantDirty(e.delta)
			if a.ans != nil && float64(rel) <= thr*float64(n) {
				if err := a.ans.Patch(e.env, e.delta, r); err == nil {
					a.vals = a.ans.Values()
					a.stale = false
					e.Stats.AnswerPatches++
					continue
				}
				a.ans = nil
			}
			a.stale = true
			a.viaProvider = !x.ent.plan.Divisible() || float64(rel) > thr*float64(n)
			if a.viaProvider {
				a.ans = nil
			}
			e.Stats.AnswerRederives++
		}
		x.ent.amu.Unlock()
	}
}

// hasMaintainedAnswers reports whether any cached query carries live
// maintained answers — the signal that delta capture must run even when
// index maintenance is off.
func (e *Engine) hasMaintainedAnswers() bool {
	e.qmu.Lock()
	ents := make([]*queryCacheEntry, 0, len(e.queries.cache))
	//sgl:unordered existence check (any-live fold); order cannot reach the boolean
	for _, ent := range e.queries.cache {
		ents = append(ents, ent)
	}
	e.qmu.Unlock()
	for _, ent := range ents {
		ent.amu.Lock()
		live := len(ent.answers) > 0
		ent.amu.Unlock()
		if live {
			return true
		}
	}
	return false
}

// unitColMask is unitCols as a Delta-style column bitmask (columns ≥ 63
// alias into bit 63, matching captureIncremental).
func (q *Query) unitColMask() uint64 {
	var m uint64
	for _, c := range q.unitCols {
		if c > 63 {
			c = 63
		}
		m |= 1 << c
	}
	return m
}
