package engine

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"github.com/epicscale/sgl/internal/exec"
	"github.com/epicscale/sgl/internal/game"
)

// Compact folds the applied journal prefix: the base advances to the
// current tick, folded history becomes unreachable through a typed
// *CompactedError, the tail (and anything pending) survives, and the
// base round-trips through checkpoint v3.
func TestCompactSemantics(t *testing.T) {
	prog := battleProg(t)
	e := newEngine(t, prog, 64, Indexed, 7, nil)
	for tick := int64(0); tick < 12; tick++ {
		injectScripted(t, e, tick)
		if err := e.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	full := e.Journal()
	if len(full) == 0 {
		t.Fatal("scenario journaled nothing")
	}
	// One command pending at the compaction boundary: stamped at the
	// current tick, it must survive the fold.
	if err := e.Submit("late", Command{Op: OpSet, Key: 1, Col: "morale", Val: 5}); err != nil {
		t.Fatal(err)
	}
	var before bytes.Buffer
	if err := e.Checkpoint(&before); err != nil { // drains + stamps the pending command
		t.Fatal(err)
	}

	if base := e.Compact(); base != 12 {
		t.Fatalf("Compact returned base %d, want 12", base)
	}
	if got := e.JournalBase(); got != 12 {
		t.Fatalf("JournalBase = %d, want 12", got)
	}
	tail := e.Journal()
	if len(tail) != 1 || tail[0].Origin != "late" || tail[0].Tick != 12 {
		t.Fatalf("post-compact journal = %+v, want only the pending tick-12 command", tail)
	}

	if _, err := e.JournalSince(12); err != nil {
		t.Fatalf("JournalSince(base): %v", err)
	}
	_, err := e.JournalSince(3)
	var ce *CompactedError
	if !errors.As(err, &ce) {
		t.Fatalf("JournalSince(3) = %v, want *CompactedError", err)
	}
	if ce.BaseTick != 12 {
		t.Fatalf("CompactedError.BaseTick = %d, want 12", ce.BaseTick)
	}

	// The base survives checkpoint → restore, and restore → checkpoint
	// stays a byte fixed point with the base carried.
	var ckpt bytes.Buffer
	if err := e.Checkpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(before.Bytes(), ckpt.Bytes()) {
		t.Fatal("compaction did not change the checkpoint bytes")
	}
	sess, err := Open(bytes.NewReader(ckpt.Bytes()), game.NewMechanics(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	re := sess.Engine()
	if got := re.JournalBase(); got != 12 {
		t.Fatalf("restored JournalBase = %d, want 12", got)
	}
	var again bytes.Buffer
	if err := re.Checkpoint(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ckpt.Bytes(), again.Bytes()) {
		t.Fatal("restore → checkpoint is not a fixed point for a compacted stream")
	}
}

// Options.CompactJournal keeps checkpoint size flat under sustained
// command traffic — the acceptance bound is ≥ 10⁴ commands per tick —
// while the uncompacted twin's checkpoint grows with every tick of
// input history.
func TestCompactJournalBoundedCheckpoint(t *testing.T) {
	prog := battleProg(t)
	const perTick = 10_000
	run := func(compact bool) (sizeEarly, sizeLate int) {
		e := newEngine(t, prog, 64, Indexed, 13, func(o *Options) {
			o.CompactJournal = compact
		})
		sess := NewSession(e)
		batch := make([]Command, 500)
		size := func() int {
			var buf bytes.Buffer
			if err := sess.Checkpoint(&buf); err != nil {
				t.Fatal(err)
			}
			return buf.Len()
		}
		for tick := 0; tick < 6; tick++ {
			for b := 0; b < perTick/len(batch); b++ {
				for i := range batch {
					batch[i] = Command{Op: OpSet, Key: int64((b*len(batch) + i) % 64), Col: "morale", Val: float64(tick + b)}
				}
				if err := sess.Submit(fmt.Sprintf("actor-%d", b%8), batch...); err != nil {
					t.Fatalf("tick %d batch %d: %v", tick, b, err)
				}
			}
			if err := sess.Step(1); err != nil {
				t.Fatal(err)
			}
			if tick == 2 {
				sizeEarly = size()
			}
		}
		sizeLate = size()
		return
	}
	early, late := run(true)
	if late != early {
		t.Fatalf("compacted checkpoint grew under command traffic: %d bytes at tick 3, %d at tick 6", early, late)
	}
	uEarly, uLate := run(false)
	if uLate <= uEarly {
		t.Fatalf("uncompacted control did not grow (%d → %d); the bounded-size assertion proves nothing", uEarly, uLate)
	}
	if late >= uLate {
		t.Fatalf("compacted checkpoint (%d bytes) not smaller than uncompacted (%d bytes)", late, uLate)
	}
}

// TestReplayMatchesLiveCompacted extends exactness contract #5 to the
// compacted form: a run that compacts mid-stream is replayable from the
// base checkpoint plus the journal tail — SubmitStamped per entry,
// bypassing the sharded admission queues — and the replay's final
// checkpoint is byte-identical to the live run's, for every zoo program
// and the battle simulation at Workers {1,4} × Incremental {off,on}.
func TestReplayMatchesLiveCompacted(t *testing.T) {
	const baseTick = 6
	mk := func(progName, src string, battle bool) {
		t.Run(progName, func(t *testing.T) {
			prog := battleProg(t)
			if !battle {
				prog = compileZoo(t, src)
			}
			for _, cfg := range restoreCfgs {
				tune := Options{
					Workers:              cfg.workers,
					Incremental:          cfg.incremental,
					IncrementalThreshold: 1,
				}
				tweak := func(o *Options) {
					o.Workers = cfg.workers
					o.Incremental = cfg.incremental
					o.IncrementalThreshold = 1
				}
				live := newEngine(t, prog, 64, Indexed, 7, tweak)
				for tick := int64(0); tick < baseTick; tick++ {
					injectScripted(t, live, tick)
					if err := live.Tick(); err != nil {
						t.Fatal(err)
					}
				}
				live.Compact()
				var baseCkpt bytes.Buffer
				if err := live.Checkpoint(&baseCkpt); err != nil {
					t.Fatal(err)
				}
				for tick := int64(baseTick); tick < scriptedTicks; tick++ {
					injectScripted(t, live, tick)
					if err := live.Tick(); err != nil {
						t.Fatal(err)
					}
				}
				var liveBytes bytes.Buffer
				if err := live.Checkpoint(&liveBytes); err != nil {
					t.Fatal(err)
				}

				// Genesis replay must degrade explicitly, not silently.
				var ce *CompactedError
				if _, err := live.JournalSince(0); !errors.As(err, &ce) || ce.BaseTick != baseTick {
					t.Fatalf("JournalSince(0) after compaction = %v, want *CompactedError{BaseTick: %d}", err, baseTick)
				}

				// Replay: base checkpoint + journal tail.
				sess, err := Open(bytes.NewReader(baseCkpt.Bytes()), game.NewMechanics(), tune)
				if err != nil {
					t.Fatal(err)
				}
				re := sess.Engine()
				tail, err := live.JournalSince(baseTick)
				if err != nil {
					t.Fatal(err)
				}
				byTick := map[int64][]StampedCommand{}
				for _, sc := range tail {
					byTick[sc.Tick] = append(byTick[sc.Tick], sc)
				}
				// The base checkpoint already carries any entries that were
				// pending at the base tick; replay only what came after.
				carried := len(re.Pending())
				for tick := int64(baseTick); tick < scriptedTicks; tick++ {
					entries := byTick[tick]
					if tick == baseTick {
						entries = entries[carried:] // skip what the checkpoint carried
					}
					for _, sc := range entries {
						if err := re.SubmitStamped(sc); err != nil {
							t.Fatalf("replay tick %d: %v", tick, err)
						}
					}
					if err := re.Tick(); err != nil {
						t.Fatal(err)
					}
				}
				var replayBytes bytes.Buffer
				if err := re.Checkpoint(&replayBytes); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(liveBytes.Bytes(), replayBytes.Bytes()) {
					t.Fatalf("w=%d inc=%v: replay from the base checkpoint diverged from the live compacted run",
						cfg.workers, cfg.incremental)
				}
			}
		})
	}
	for _, zp := range exec.Zoo {
		mk(zp.Name, zp.Src, false)
	}
	mk("battle-sim", "", true)
}

// A stream whose base field contradicts itself — base beyond the tick,
// or journal entries stamped before the base — is rejected at decode,
// even with a valid checksum.
func TestRestoreRejectsInconsistentBase(t *testing.T) {
	prog := battleProg(t)
	mkBytes := func(poison func(e *Engine)) []byte {
		e := newEngine(t, prog, 48, Indexed, 3, nil)
		for tick := int64(0); tick < 4; tick++ {
			injectScripted(t, e, 2) // journal entries at ticks 0..3
			if err := e.Tick(); err != nil {
				t.Fatal(err)
			}
		}
		poison(e)
		var buf bytes.Buffer
		if err := e.Checkpoint(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	t.Run("base-beyond-tick", func(t *testing.T) {
		b := mkBytes(func(e *Engine) { e.journalBase = e.tick + 5 })
		if _, err := Open(bytes.NewReader(b), game.NewMechanics(), Options{}); err == nil {
			t.Fatal("stream with base > tick accepted")
		}
	})
	t.Run("entry-before-base", func(t *testing.T) {
		b := mkBytes(func(e *Engine) { e.journalBase = 2 }) // journal still holds tick-0/1 entries
		if _, err := Open(bytes.NewReader(b), game.NewMechanics(), Options{}); err == nil {
			t.Fatal("stream with journal entries before the base accepted")
		}
	})
}

// A genuine v2 stream (written by this build's version-parameterized
// writer, byte-compatible with the previous release) still opens, with
// journal base 0 — and resumes identically to its v3 twin.
func TestOpenReadsV2(t *testing.T) {
	prog := battleProg(t)
	mkEngine := func() *Engine {
		e := newEngine(t, prog, 64, Indexed, 9, nil)
		for tick := int64(0); tick < 6; tick++ {
			injectScripted(t, e, tick)
			if err := e.Tick(); err != nil {
				t.Fatal(err)
			}
		}
		return e
	}
	e := mkEngine()
	var v2, v3 bytes.Buffer
	if err := e.checkpointVersioned(&v2, CheckpointVersionV2); err != nil {
		t.Fatal(err)
	}
	if err := e.Checkpoint(&v3); err != nil {
		t.Fatal(err)
	}
	if v3.Len() != v2.Len()+8 {
		t.Fatalf("v3 stream should be exactly one i64 base field larger: v2 %d bytes, v3 %d", v2.Len(), v3.Len())
	}
	open := func(b []byte) *Session {
		s, err := Open(bytes.NewReader(b), game.NewMechanics(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s2, s3 := open(v2.Bytes()), open(v3.Bytes())
	if got := s2.JournalBase(); got != 0 {
		t.Fatalf("v2 stream restored with base %d, want 0", got)
	}
	for _, s := range []*Session{s2, s3} {
		if err := s.Step(4); err != nil {
			t.Fatal(err)
		}
	}
	if !identicalTables(s2.Engine().Env(), s3.Engine().Env()) {
		t.Fatal("v2- and v3-restored worlds diverged")
	}
}
