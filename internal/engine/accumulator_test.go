package engine

import (
	"math"
	"testing"

	"github.com/epicscale/sgl/internal/game"
	"github.com/epicscale/sgl/internal/geom"
	"github.com/epicscale/sgl/internal/table"
)

func accSchema(t *testing.T) *table.Schema {
	t.Helper()
	return table.MustSchema(
		table.Attr{Name: "key", Kind: table.Const},
		table.Attr{Name: "hp", Kind: table.Const},
		table.Attr{Name: "dmg", Kind: table.Sum},
		table.Attr{Name: "aura", Kind: table.Max},
		table.Attr{Name: "slow", Kind: table.Min},
	)
}

// A fresh accumulator must hold every effect column's fold identity and
// leave const columns at zero.
func TestAccumulatorIdentities(t *testing.T) {
	s := accSchema(t)
	acc := newAccumulator(s, 3)
	for i := 0; i < 3; i++ {
		if got := acc.vals[i][s.MustCol("dmg")]; got != 0 {
			t.Fatalf("sum identity: got %v, want 0", got)
		}
		if got := acc.vals[i][s.MustCol("aura")]; !math.IsInf(got, -1) {
			t.Fatalf("max identity: got %v, want -Inf", got)
		}
		if got := acc.vals[i][s.MustCol("slow")]; !math.IsInf(got, 1) {
			t.Fatalf("min identity: got %v, want +Inf", got)
		}
		for _, c := range []string{"key", "hp"} {
			if got := acc.vals[i][s.MustCol(c)]; got != 0 {
				t.Fatalf("const column %s initialized to %v", c, got)
			}
		}
	}
}

// fold must combine with the column's tagged operator: + for Sum,
// max/min selection for the nonstackable kinds.
func TestAccumulatorFoldSemantics(t *testing.T) {
	s := accSchema(t)
	acc := newAccumulator(s, 1)
	dmg, aura, slow := s.MustCol("dmg"), s.MustCol("aura"), s.MustCol("slow")

	acc.fold(0, dmg, 3)
	acc.fold(0, dmg, 4.5)
	if got := acc.vals[0][dmg]; got != 7.5 {
		t.Fatalf("sum fold: got %v, want 7.5", got)
	}
	acc.fold(0, aura, 2)
	acc.fold(0, aura, 1) // lower value must not stack or win
	if got := acc.vals[0][aura]; got != 2 {
		t.Fatalf("max fold: got %v, want 2", got)
	}
	acc.fold(0, slow, 5)
	acc.fold(0, slow, 9)
	if got := acc.vals[0][slow]; got != 5 {
		t.Fatalf("min fold: got %v, want 5", got)
	}
}

// Folding into a const column is a programming error: const attributes
// have no fold operator (⊕ groups on them), so the schema must reject the
// attempt loudly rather than corrupt unit state.
func TestAccumulatorConstFoldRejected(t *testing.T) {
	s := accSchema(t)
	acc := newAccumulator(s, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("folding into a const column must panic")
		}
	}()
	acc.fold(0, s.MustCol("hp"), 1)
}

// foldRow folds every effect column at once and must leave const columns
// (unit identity and state) untouched.
func TestAccumulatorFoldRow(t *testing.T) {
	s := accSchema(t)
	acc := newAccumulator(s, 2)
	eff := make([]float64, s.NumAttrs())
	eff[s.MustCol("key")] = 42 // const columns of an effect row are ignored
	eff[s.MustCol("dmg")] = 2
	eff[s.MustCol("aura")] = 3
	eff[s.MustCol("slow")] = 1
	acc.foldRow(1, eff)
	acc.foldRow(1, eff)
	if got := acc.vals[1][s.MustCol("dmg")]; got != 4 {
		t.Fatalf("dmg after two foldRows: got %v, want 4", got)
	}
	if got := acc.vals[1][s.MustCol("aura")]; got != 3 {
		t.Fatalf("aura after two foldRows: got %v, want 3", got)
	}
	if got := acc.vals[1][s.MustCol("slow")]; got != 1 {
		t.Fatalf("slow after two foldRows: got %v, want 1", got)
	}
	if got := acc.vals[1][s.MustCol("key")]; got != 0 {
		t.Fatalf("const column mutated by foldRow: %v", got)
	}
	// Row 0 must be untouched (rows are slices of one flat backing array;
	// a stride bug would bleed folds across rows).
	if got := acc.vals[0][s.MustCol("dmg")]; got != 0 {
		t.Fatalf("foldRow bled into neighbouring row: %v", got)
	}
}

// Effects fold for every unit this tick — including units that die from
// those very effects. Death is decided by the post-processing query
// *after* accumulation, so a unit at 1 hp taking lethal damage still has
// its full combined effect row, and the engine resurrects it afterwards.
func TestFoldRowOnDyingUnits(t *testing.T) {
	prog := battleProg(t)
	e := newEngine(t, prog, 60, Indexed, 31, nil)
	if err := e.Run(40); err != nil {
		t.Fatal(err)
	}
	if e.Stats.Deaths == 0 {
		t.Skip("no deaths in 40 ticks; cannot exercise the dead-unit path")
	}
	// The resurrection rule keeps population constant and no corpse stays.
	s := game.Schema()
	if e.Env().Len() != 60 {
		t.Fatalf("population drifted to %d", e.Env().Len())
	}
	for _, row := range e.Env().Rows {
		if row[s.MustCol("health")] <= 0 {
			t.Fatal("dead unit survived resurrection")
		}
	}
}

// ---------------------------------------------------------------------------
// movementPhase world-clamping edge cases

// moveEngine builds a minimal battle-schema engine with units at explicit
// positions, for driving movementPhase directly.
func moveEngine(t *testing.T, side float64, pos [][2]float64) *Engine {
	return moveEngineSpeed(t, side, 1, pos)
}

func moveEngineSpeed(t *testing.T, side, speed float64, pos [][2]float64) *Engine {
	t.Helper()
	prog := battleProg(t)
	s := game.Schema()
	env := table.New(s, len(pos))
	for i, p := range pos {
		row := make([]float64, s.NumAttrs())
		row[s.MustCol("key")] = float64(i + 1)
		row[s.MustCol("posx")], row[s.MustCol("posy")] = p[0], p[1]
		row[s.MustCol("health")] = 10
		row[s.MustCol("maxhealth")] = 10
		env.Append(row)
	}
	e, err := New(prog, game.NewMechanics(), env, Options{
		Mode:         Indexed,
		Categoricals: game.Categoricals(),
		Side:         side,
		MoveSpeed:    speed,
		Workers:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func unitPos(e *Engine, i int) (float64, float64) {
	s := game.Schema()
	row := e.Env().Rows[i]
	return row[s.MustCol("posx")], row[s.MustCol("posy")]
}

// A move pushing past the world edge clamps onto it; the unit must never
// leave [0, Side).
func TestMovementClampsToWorld(t *testing.T) {
	e := moveEngine(t, 8, [][2]float64{{0, 0}, {7, 7}})
	dead := []bool{false, false}

	// Unit 0 tries to leave through the origin corner: the clamped
	// candidate is its own square, which always succeeds.
	e.movementPhase([]geom.Vec{{X: -5, Y: -5}, {}}, dead)
	if x, y := unitPos(e, 0); x != 0 || y != 0 {
		t.Fatalf("unit 0 escaped low edge: %v,%v", x, y)
	}

	// Unit 1 tries to leave through the far corner: clamped to just under
	// Side, still inside its square.
	e.movementPhase([]geom.Vec{{}, {X: 5, Y: 5}}, dead)
	x, y := unitPos(e, 1)
	if x >= 8 || y >= 8 || x < 7 || y < 7 {
		t.Fatalf("unit 1 not clamped to far edge: %v,%v", x, y)
	}
	if e.Stats.MovesBlocked != 0 {
		t.Fatalf("edge clamping must not count as blocked, got %d", e.Stats.MovesBlocked)
	}
}

// In a degenerate 1×1 world every candidate collapses to the only square.
func TestMovementDegenerateWorld(t *testing.T) {
	e := moveEngine(t, 1, [][2]float64{{0, 0}})
	e.movementPhase([]geom.Vec{{X: 3, Y: -2}}, []bool{false})
	if x, y := unitPos(e, 0); math.Floor(x) != 0 || math.Floor(y) != 0 {
		t.Fatalf("unit left the only square: %v,%v", x, y)
	}
}

// A fully surrounded unit whose step and both slides are occupied is
// blocked and stays put.
func TestMovementBlockedBySlides(t *testing.T) {
	// Mover at (1,1); occupiers at (2,2) (full step), (2,1) (x-slide),
	// (1,2) (y-slide). MoveSpeed 2 keeps the diagonal step a full square.
	e := moveEngineSpeed(t, 4, 2, [][2]float64{{1, 1}, {2, 2}, {2, 1}, {1, 2}})
	moves := []geom.Vec{{X: 1, Y: 1}, {}, {}, {}}
	dead := []bool{false, false, false, false}
	e.movementPhase(moves, dead)
	if x, y := unitPos(e, 0); x != 1 || y != 1 {
		t.Fatalf("blocked unit moved to %v,%v", x, y)
	}
	if e.Stats.MovesBlocked != 1 {
		t.Fatalf("MovesBlocked = %d, want 1", e.Stats.MovesBlocked)
	}
}

// The slide fallback: full step occupied, x-slide free.
func TestMovementSlidesAroundObstacle(t *testing.T) {
	e := moveEngineSpeed(t, 4, 2, [][2]float64{{1, 1}, {2, 2}})
	moves := []geom.Vec{{X: 1, Y: 1}, {}}
	dead := []bool{false, false}
	e.movementPhase(moves, dead)
	x, y := unitPos(e, 0)
	if !(x == 2 && y == 1) {
		t.Fatalf("expected x-slide to (2,1), got (%v,%v)", x, y)
	}
	if e.Stats.Moves != 1 {
		t.Fatalf("Moves = %d, want 1", e.Stats.Moves)
	}
}

// Dead units never move, whatever their move vector says.
func TestMovementSkipsDead(t *testing.T) {
	e := moveEngine(t, 4, [][2]float64{{1, 1}})
	e.movementPhase([]geom.Vec{{X: 1, Y: 0}}, []bool{true})
	if x, y := unitPos(e, 0); x != 1 || y != 1 {
		t.Fatalf("dead unit moved to %v,%v", x, y)
	}
	if e.Stats.Moves != 0 || e.Stats.MovesBlocked != 0 {
		t.Fatal("dead unit counted in move stats")
	}
}

// MoveSpeed clamps the step length, not each axis independently: a long
// diagonal request shrinks to a unit-length vector.
func TestMovementSpeedClamp(t *testing.T) {
	e := moveEngine(t, 16, [][2]float64{{8, 8}})
	e.movementPhase([]geom.Vec{{X: 30, Y: 40}}, []bool{false})
	x, y := unitPos(e, 0)
	dx, dy := x-8, y-8
	if d := math.Hypot(dx, dy); d > 1+1e-9 {
		t.Fatalf("moved %v > MoveSpeed 1", d)
	}
}
