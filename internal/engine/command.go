// External command injection: the write half of the interactive session
// API. A closed simulation only ever mutates itself; a *game* is driven
// by players, whose actions arrive asynchronously from many connections.
// The command pipeline turns those arrivals back into something the
// deterministic tick machinery can digest:
//
//   - Submit validates a typed command against the schema and world
//     geometry, stamps it (tick, origin, per-origin sequence), appends it
//     to the per-tick input buffer AND to the run's input journal, and
//     returns; nothing mutates yet. SubmitSharded (admission.go) is its
//     scalable concurrent twin: validation against immutable state only,
//     the stamp deferred to the next drain boundary.
//   - The next Tick drains the buffer first — before the effect query,
//     before any index build — applying commands in the canonical order
//     (tick, origin, sequence). Two clients racing their submissions
//     therefore produce the same world no matter how the network
//     interleaved them: the canonical order depends only on WHAT was
//     submitted in the tick window, not on when within it.
//   - Commands that fail their apply-time rules (spawn onto an occupied
//     square, despawn of a dead key) are rejected deterministically and
//     counted, never partially applied.
//
// Exactness contract #5 follows: the journal is a complete record of every
// accepted input with its stamp, so re-submitting it against a fresh
// engine of the same (program, initial environment, seed) reproduces the
// live interactive run byte-for-byte, at any Workers × Incremental
// setting — TestReplayMatchesLive proves it, and checkpoint format v2
// carries the pending buffer and journal so the contract survives
// checkpoint/restore mid-stream.
//
// Interaction with incremental maintenance: a command mutates rows after
// the previous tick's delta was captured, so applyCommands feeds the
// affected rows back into the delta (exec.Delta.Add, conservative
// all-columns mask). Population changes and constant tunes invalidate the
// delta outright — the next tick rebuilds from scratch, and maintenance
// re-engages after.
package engine

import (
	"fmt"
	"math"
	"sort"

	"github.com/epicscale/sgl/internal/index/grid"
	"github.com/epicscale/sgl/internal/table"
)

// CommandOp enumerates the typed world mutations a session accepts.
type CommandOp uint8

// Command operations.
const (
	// OpSpawn inserts a new unit row (Command.Row, full schema width).
	OpSpawn CommandOp = iota
	// OpDespawn removes the unit with Command.Key.
	OpDespawn
	// OpSet overwrites one state column (Command.Col) of the unit with
	// Command.Key to Command.Val.
	OpSet
	// OpTune changes the named game constant (Command.Col) the engine's
	// scripts read to Command.Val, from the next tick on.
	OpTune
)

// String returns the wire name of the operation.
func (op CommandOp) String() string {
	switch op {
	case OpSpawn:
		return "spawn"
	case OpDespawn:
		return "despawn"
	case OpSet:
		return "set"
	case OpTune:
		return "tune"
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// MarshalJSON encodes the operation as its wire name.
func (op CommandOp) MarshalJSON() ([]byte, error) {
	return []byte(`"` + op.String() + `"`), nil
}

// UnmarshalJSON decodes a wire name back into the operation.
func (op *CommandOp) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"spawn"`:
		*op = OpSpawn
	case `"despawn"`:
		*op = OpDespawn
	case `"set"`:
		*op = OpSet
	case `"tune"`:
		*op = OpTune
	default:
		return fmt.Errorf("engine: unknown command op %s", b)
	}
	return nil
}

// Command is one externally injected world mutation. Which fields matter
// depends on Op: Spawn reads Row (and normalizes Key from its key
// column), Despawn reads Key, Set reads Key/Col/Val, Tune reads Col (the
// constant's name) and Val.
type Command struct {
	// Op selects the mutation.
	Op CommandOp `json:"op"`
	// Key is the target unit key (despawn, set; normalized for spawn).
	Key int64 `json:"key,omitempty"`
	// Col names the schema column (set) or game constant (tune).
	Col string `json:"col,omitempty"`
	// Val is the value written (set, tune).
	Val float64 `json:"val,omitempty"`
	// Row is the full environment row a spawn inserts.
	Row []float64 `json:"row,omitempty"`
}

// StampedCommand is a command plus the stamp Submit assigned: the tick it
// applies before, the submitting origin, and the origin's sequence
// number. The triple (Tick, Origin, Seq) is the canonical application
// order and the journal's replay key.
type StampedCommand struct {
	// Tick is the engine tick count at submission; the command applies at
	// the start of the Tick call that advances the world to Tick+1.
	Tick int64 `json:"tick"`
	// Origin identifies the submitter (a player, a connection, a tool).
	Origin string `json:"origin"`
	// Seq is the origin's own submission counter, assigned by Submit.
	Seq uint64 `json:"seq"`
	// Cmd is the command itself.
	Cmd Command `json:"cmd"`
}

// Input-pipeline limits.
const (
	// MaxPendingCommands bounds the per-tick input window — queued
	// admissions plus the stamped pending buffer; Submit and
	// SubmitSharded fail once it is full (backpressure, and a decode
	// bound for restore). Sized for the sharded admission path's target
	// of ~10⁵ commands per tick from many concurrent actors.
	MaxPendingCommands = 1 << 17
	// MaxOriginLen bounds the origin identifier a command carries.
	MaxOriginLen = 64
)

// Submit validates cmds and enqueues them for application at the next
// tick boundary, all-or-nothing: if any command fails validation, none is
// enqueued. Accepted commands are stamped (tick, origin, per-origin
// sequence) and recorded in the input journal. Submit must not run
// concurrently with Tick or with itself — the Session facade serializes
// it under the writer lock.
//
// Validation here covers everything knowable without the live world:
// schema shape, world geometry, finiteness, known columns and constants.
// Rules that depend on the world at application time — key existence and
// uniqueness, square occupancy — are checked when the command applies,
// and a violation then rejects the command deterministically (counted in
// RunStats.CommandsRejected) rather than failing the tick.
func (e *Engine) Submit(origin string, cmds ...Command) error {
	if len(origin) > MaxOriginLen {
		return fmt.Errorf("engine: origin longer than %d bytes", MaxOriginLen)
	}
	for i := range cmds {
		if err := e.validateCommand(&cmds[i]); err != nil {
			return fmt.Errorf("engine: command %d: %w", i, err)
		}
	}
	// The budget is shared with the sharded queues, so the reservation is
	// atomic even though this path itself is serialized.
	if err := e.reserve(len(cmds)); err != nil {
		return err
	}
	if e.seqs == nil {
		e.seqs = map[string]uint64{}
	}
	for _, c := range cmds {
		if c.Row != nil {
			c.Row = append([]float64(nil), c.Row...) // decouple from the caller
		}
		sc := StampedCommand{Tick: e.tick, Origin: origin, Seq: e.seqs[origin], Cmd: c}
		e.seqs[origin]++
		e.pending = insertCanonical(e.pending, sc)
		e.journal = insertCanonical(e.journal, sc)
	}
	return nil
}

// insertCanonical appends sc and bubbles it into canonical (tick,
// origin, sequence) position. Ticks only grow, so the walk never leaves
// the current tick's tail segment. Keeping BOTH the buffer and the
// journal canonical at all times (not just sorting at the tick boundary)
// is what makes checkpoints — which embed them — byte-independent of
// arrival interleaving, not merely semantically independent.
func insertCanonical(list []StampedCommand, sc StampedCommand) []StampedCommand {
	list = append(list, sc)
	for i := len(list) - 1; i > 0; i-- {
		p := list[i-1]
		if p.Tick != sc.Tick || p.Origin < sc.Origin || (p.Origin == sc.Origin && p.Seq < sc.Seq) {
			break
		}
		list[i], list[i-1] = list[i-1], list[i]
	}
	return list
}

// SubmitStamped enqueues one journal entry with its original stamp — the
// replay path, deliberately bypassing the sharded admission queues: a
// journal entry already carries its canonical (tick, origin, seq) stamp,
// and routing it through a queue that re-stamps at the drain would
// destroy exactly the history being replayed. The entry must be stamped
// for the engine's current tick (drive the engine tick by tick,
// submitting each tick's journal slice first). The origin's sequence
// counter advances past the entry's, so a replayed-then-live session
// keeps assigning fresh sequence numbers.
func (e *Engine) SubmitStamped(sc StampedCommand) error {
	if len(sc.Origin) > MaxOriginLen {
		return fmt.Errorf("engine: origin longer than %d bytes", MaxOriginLen)
	}
	if sc.Tick != e.tick {
		return fmt.Errorf("engine: replayed command stamped for tick %d submitted at tick %d", sc.Tick, e.tick)
	}
	if err := e.validateCommand(&sc.Cmd); err != nil {
		return fmt.Errorf("engine: replayed command: %w", err)
	}
	if err := e.reserve(1); err != nil {
		return err
	}
	if sc.Cmd.Row != nil {
		sc.Cmd.Row = append([]float64(nil), sc.Cmd.Row...)
	}
	if e.seqs == nil {
		e.seqs = map[string]uint64{}
	}
	if next := sc.Seq + 1; next > e.seqs[sc.Origin] {
		e.seqs[sc.Origin] = next
	}
	e.pending = insertCanonical(e.pending, sc)
	e.journal = insertCanonical(e.journal, sc)
	return nil
}

// Journal returns a copy of the run's input journal: every accepted
// command with its (tick, origin, sequence) stamp, in acceptance order,
// from the compaction base on (see JournalBase; zero base means complete
// from genesis). Replaying it against a fresh engine of the same
// (program, initial environment, seed) — or, when compacted, against the
// base checkpoint — reproduces this run byte-identically (contract #5).
// Commands admitted through the sharded queues enter the journal at the
// next drain boundary (tick or checkpoint), not at admission.
func (e *Engine) Journal() []StampedCommand {
	e.inmu.Lock()
	defer e.inmu.Unlock()
	return append([]StampedCommand(nil), e.journal...)
}

// Pending returns a copy of the stamped commands waiting for the next
// tick boundary.
func (e *Engine) Pending() []StampedCommand {
	e.inmu.Lock()
	defer e.inmu.Unlock()
	return append([]StampedCommand(nil), e.pending...)
}

// ConstValue returns the engine's current value of a named game constant
// — the base value from the program's constant table, or the latest
// OpTune override.
func (e *Engine) ConstValue(name string) (float64, bool) {
	v, ok := e.prog.Consts[name]
	return v, ok
}

// validateCommand checks the world-independent rules. It normalizes a
// spawn's Key field from the row's key column.
func (e *Engine) validateCommand(c *Command) error {
	switch c.Op {
	case OpSpawn:
		if len(c.Row) != e.prog.Schema.NumAttrs() {
			return fmt.Errorf("spawn row width %d != schema width %d", len(c.Row), e.prog.Schema.NumAttrs())
		}
		for i, v := range c.Row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("spawn row column %s is not finite", e.prog.Schema.Attr(i).Name)
			}
		}
		key := c.Row[e.prog.Schema.KeyCol()]
		if key != math.Trunc(key) || key < 0 {
			return fmt.Errorf("spawn key %v must be a non-negative integer", key)
		}
		c.Key = int64(key)
		if err := e.validatePos(c.Row[e.posX], c.Row[e.posY]); err != nil {
			return err
		}
	case OpDespawn:
		if c.Key < 0 {
			return fmt.Errorf("despawn key %d must be non-negative", c.Key)
		}
	case OpSet:
		if c.Key < 0 {
			return fmt.Errorf("set key %d must be non-negative", c.Key)
		}
		col, ok := e.prog.Schema.Col(c.Col)
		if !ok {
			return fmt.Errorf("set: no column %q in the schema", c.Col)
		}
		if col == e.prog.Schema.KeyCol() {
			return fmt.Errorf("set: the key column is immutable")
		}
		if e.prog.Schema.Attr(col).Kind != table.Const {
			return fmt.Errorf("set: column %q is an effect column (kind %v), not unit state", c.Col, e.prog.Schema.Attr(col).Kind)
		}
		if math.IsNaN(c.Val) || math.IsInf(c.Val, 0) {
			return fmt.Errorf("set %s: value must be finite", c.Col)
		}
		if col == e.posX || col == e.posY {
			if c.Val < 0 || c.Val >= e.opts.Side {
				return fmt.Errorf("set %s = %v is outside the world [0, %v)", c.Col, c.Val, e.opts.Side)
			}
		}
	case OpTune:
		// Checked against the immutable name set, not the live constant
		// table: OpTune changes values, never names, and the sharded
		// admission path validates lock-free while ticks retune.
		if _, ok := e.constNames[c.Col]; !ok {
			return fmt.Errorf("tune: no game constant %q", c.Col)
		}
		if math.IsNaN(c.Val) || math.IsInf(c.Val, 0) {
			return fmt.Errorf("tune %s: value must be finite", c.Col)
		}
	default:
		return fmt.Errorf("unknown command op %d", c.Op)
	}
	return nil
}

func (e *Engine) validatePos(x, y float64) error {
	if x < 0 || x >= e.opts.Side || y < 0 || y >= e.opts.Side {
		return fmt.Errorf("position (%v, %v) is outside the world [0, %v)²", x, y, e.opts.Side)
	}
	return nil
}

// applyCommands drains the input buffer at the tick boundary, applying
// commands in the canonical (tick, origin, sequence) order — the order
// insertCanonical maintains the buffer in, so the drain is a plain walk.
// It runs first in Tick, before the key index, the effect query, and any
// index build, so the whole tick observes the post-command world.
func (e *Engine) applyCommands() {
	if len(e.pending) == 0 {
		return
	}
	// Occupancy mirror of the live environment, maintained through the
	// batch so each command observes its predecessors' placements — the
	// same one-unit-per-square rule movement and resurrection enforce.
	occ := grid.NewOccupancy(e.env.Len())
	kc := e.prog.Schema.KeyCol()
	for _, row := range e.env.Rows {
		occ.Place(row[e.posX], row[e.posY], int64(row[kc]))
	}

	popChanged, tuned := false, false
	setRows := map[int]bool{}
	for _, sc := range e.pending {
		c := sc.Cmd
		switch c.Op {
		case OpSpawn:
			if e.rowIndexByKey(c.Key) >= 0 {
				e.Stats.CommandsRejected++ // duplicate key
				continue
			}
			if !occ.Place(c.Row[e.posX], c.Row[e.posY], c.Key) {
				e.Stats.CommandsRejected++ // square occupied
				continue
			}
			e.env.Append(append([]float64(nil), c.Row...))
			popChanged = true
		case OpDespawn:
			i := e.rowIndexByKey(c.Key)
			if i < 0 {
				e.Stats.CommandsRejected++
				continue
			}
			row := e.env.Rows[i]
			occ.Remove(row[e.posX], row[e.posY], c.Key)
			e.env.Rows = append(e.env.Rows[:i], e.env.Rows[i+1:]...)
			popChanged = true
		case OpSet:
			i := e.rowIndexByKey(c.Key)
			if i < 0 {
				e.Stats.CommandsRejected++
				continue
			}
			row := e.env.Rows[i]
			col, _ := e.prog.Schema.Col(c.Col)
			if col == e.posX || col == e.posY {
				nx, ny := row[e.posX], row[e.posY]
				if col == e.posX {
					nx = c.Val
				} else {
					ny = c.Val
				}
				if !occ.Move(row[e.posX], row[e.posY], nx, ny, c.Key) {
					e.Stats.CommandsRejected++ // target square occupied
					continue
				}
			}
			row[col] = c.Val
			setRows[i] = true
		case OpTune:
			e.prog.Consts[c.Col] = c.Val
			tuned = true
		}
		e.Stats.CommandsApplied++
	}
	// Release the drained buffer's share of the admission budget (see
	// Engine.reserve): queued sharded commands kept their reservation
	// through the stamp, so the window bound held end to end.
	e.inflight.Add(-int64(len(e.pending)))
	e.pending = e.pending[:0]

	// Feed the mutations into the incremental-maintenance path.
	// Population changes shift row indexes and constant tunes change
	// index build inputs, so both invalidate the delta outright — the
	// coming tick rebuilds from scratch and maintenance re-engages
	// afterwards. Row edits instead merge into the captured delta with a
	// conservative all-columns mask (exec.Delta.Add), AND the flat
	// snapshot is synced to the edited rows. The sync closes an ABA hole:
	// the snapshot's contract is "what the tick's provider was built
	// from", and this tick's provider bakes the post-command values — if
	// the tick then happens to restore a cell to its pre-command value
	// (a command-wounded unit dying and respawning at full health), the
	// end-of-tick bit-diff against an unsynced snapshot would see no
	// change and the next maintained provider would keep the stale
	// command value. TestReplayMatchesLive/global-extrema catches exactly
	// that sequence.
	if popChanged || tuned {
		// Dropping the snapshot (not just the delta) matters: a set
		// command in the same batch would otherwise leave the snapshot
		// claiming pre-command values for rows this tick's fresh provider
		// bakes post-command — the same ABA hole as below, one tick
		// later. The cost is one extra rebuild tick before maintenance
		// re-engages on a clean baseline.
		e.deltaOK = false
		e.incSnap = nil
	} else if w := e.prog.Schema.NumAttrs(); e.opts.Incremental && e.opts.Mode == Indexed && len(e.incSnap) == e.env.Len()*w {
		rows := make([]int, 0, len(setRows))
		//sgl:unordered row indexes are collected and sorted before use
		for i := range setRows {
			rows = append(rows, i)
		}
		sort.Ints(rows)
		for _, i := range rows {
			copy(e.incSnap[i*w:(i+1)*w], e.env.Rows[i])
			// The sync just hid this edit from the tick-end diff: if the
			// tick leaves the row alone, captureIncremental's fresh delta
			// would omit it and maintainAnswers would classify answers
			// reading it as untouched against their pre-command values.
			// Remember the row so capture can re-add it.
			e.cmdSetRows = append(e.cmdSetRows, i)
		}
		if e.deltaOK {
			// One sorted merge instead of per-row sorted inserts: a large
			// command batch (the sharded admission path admits ~10⁵ per
			// tick) would otherwise cost O(rows²) in Delta.Add shifting.
			e.delta.AddRows(rows, ^uint64(0))
		}
	}
}

// rowIndexByKey scans for the row index of a key (commands are rare;
// a linear scan per command keeps zero cross-tick state).
func (e *Engine) rowIndexByKey(key int64) int {
	kc := e.prog.Schema.KeyCol()
	fk := float64(key)
	for i, row := range e.env.Rows {
		if row[kc] == fk {
			return i
		}
	}
	return -1
}
