// Package engine implements the discrete simulation engine of paper
// Section 2.2 and Section 6: the clock-tick loop with its query/decision,
// update, and movement stages, the post-processing query that applies
// combined effects to unit state, collision detection with very simple
// pathfinding, and the resurrection rule the experiments use to keep the
// population constant.
//
// The engine runs the same game under two interchangeable evaluators —
// the paper's central experimental comparison:
//
//   - Naive: the unit-at-a-time interpreter with O(n)-scan aggregates
//     (O(n²) per tick);
//   - Indexed: the compiled set-at-a-time plan over the index structures of
//     Section 5.3 (O(n log n) per tick), including the Section 5.4 effect
//     index for area-of-effect actions.
//
// Both must produce identical game states tick-for-tick; the differential
// tests enforce this.
package engine

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/epicscale/sgl/internal/algebra"
	"github.com/epicscale/sgl/internal/exec"
	"github.com/epicscale/sgl/internal/geom"
	"github.com/epicscale/sgl/internal/index/grid"
	"github.com/epicscale/sgl/internal/rng"
	"github.com/epicscale/sgl/internal/sgl/sem"
	"github.com/epicscale/sgl/internal/table"
)

// Mode selects the aggregate query evaluator.
type Mode int

// Evaluator modes.
const (
	Naive Mode = iota
	Indexed
)

// String returns the mode label used in benchmark output.
func (m Mode) String() string {
	if m == Naive {
		return "naive"
	}
	return "indexed"
}

// Game supplies the game-mechanics half of the simulation: how combined
// effects turn into new unit state (the paper's post-processing query,
// Example 4.1) and how dead units respawn.
type Game interface {
	// ApplyEffects folds one tick's combined effects (indexed by schema
	// column; untouched effect columns hold their fold identities) into the
	// unit row, mutating state columns in place. It returns the unit's
	// desired movement for the movement phase and whether it survives.
	//
	// ApplyEffects must be safe for concurrent calls on distinct rows:
	// with Options.Workers > 1 (the default resolves to all cores) the
	// engine invokes it from several goroutines at once, each for a
	// disjoint row range. Implementations must not keep mutable state
	// across calls (scratch buffers, counters, logs) unless it is
	// synchronized. Respawn, by contrast, is always called serially.
	ApplyEffects(row []float64, effects []float64) (move geom.Vec, alive bool)

	// Respawn re-rolls a dead unit's state in place. The engine assigns a
	// fresh free position afterwards ("resurrected at a position chosen
	// uniformly at random on the grid").
	Respawn(row []float64, st *rng.Stream)
}

// Options configure an engine run.
type Options struct {
	Mode Mode
	// Categoricals are the low-volatility partition attributes (player,
	// unit type).
	Categoricals []string
	// Seed drives every random decision of the run.
	Seed uint64
	// Side is the square world's edge length; positions live in
	// [0, Side) × [0, Side) with one unit per integer grid square.
	Side float64
	// MoveSpeed caps per-tick movement distance (WALK_DIST_PER_TICK).
	MoveSpeed float64
	// DisableAreaDefer turns off the Section 5.4 effect index so its
	// benefit can be measured (ablation A4); area actions then apply
	// through per-performer target reports.
	DisableAreaDefer bool
	// DisableOptimizer skips the algebraic rewrites (ablation).
	DisableOptimizer bool
	// MaterializeExec runs the effect query through the legacy
	// materializing executor (one memoized []*Row slice per plan node)
	// instead of the streaming pipelines. Results are bit-identical
	// (proved by TestStreamingMatchesMaterializing); the switch exists for
	// that differential and for the allocation/throughput comparison in
	// cmd/benchfig. Not part of the checkpoint format: like Workers, a
	// checkpoint taken under either executor resumes identically under
	// the other.
	MaterializeExec bool
	// Workers is the number of shards the tick's effect query runs across.
	// 0 picks runtime.GOMAXPROCS(0); 1 is the serial path. Because the
	// state-effect pattern freezes the environment for the whole decision
	// phase and effects combine with commutative/associative folds merged
	// in a fixed order, the resulting environment is bit-identical for any
	// Workers value.
	Workers int
	// Incremental turns on delta-driven index maintenance for the Indexed
	// mode: each tick the engine records which rows changed and the next
	// tick's indexes are patched from the previous tick's instead of
	// rebuilt from scratch. Results are bit-identical to rebuilding
	// (proved by TestIncrementalMatchesRebuild); the only trade-off is
	// memory for the previous tick's structures and snapshot.
	Incremental bool
	// IncrementalThreshold is the per-definition dirty-row fraction above
	// which maintenance falls back to a from-scratch rebuild (patching
	// most of an index costs more than rebuilding it). 0 means
	// DefaultIncrementalThreshold; negative means rebuild whenever
	// anything relevant changed; values ≥ 1 always maintain.
	IncrementalThreshold float64
	// CompactJournal folds the applied journal prefix into the base after
	// every tick (see compact.go): the journal — and with it the
	// checkpoint — stays proportional to the pending window instead of
	// the run's full input history, and checkpoints record the base tick
	// (format v3). The world's evolution is untouched; only the replay
	// window is, which is why this is an operational knob like Workers
	// (consulted from restore-time tune, never serialized). Replay from
	// before the base degrades explicitly via *CompactedError.
	CompactJournal bool
}

// DefaultIncrementalThreshold is the dirty-fraction fallback cutoff used
// when Options.IncrementalThreshold is zero.
const DefaultIncrementalThreshold = 0.3

// Engine simulates one battle. The Engine itself is not safe for
// concurrent use (one Tick at a time), but a Tick internally fans the
// decision phase, effect accumulation, and post-processing out across
// Options.Workers goroutines.
type Engine struct {
	// prog is a private shallow clone of the caller's program with an
	// engine-owned Consts map, so OpTune commands mutate this engine's
	// constant table without touching other engines compiled from the
	// same program.
	prog   *sem.Program
	source string // canonical script text (ast printer), embedded in checkpoints
	game   Game
	opts   Options

	env  *table.Table
	src  rng.Source
	tick int64

	// Command-pipeline state (see command.go): the per-tick input buffer,
	// the run's input journal, and the per-origin sequence counters.
	// inmu guards them against the one writer that may run under the
	// session's READER lock — the pre-checkpoint admission drain — so
	// concurrent Journal/Pending/Checkpoint readers stay coherent; every
	// other mutation happens under the session's writer lock.
	inmu    sync.Mutex
	pending []StampedCommand
	journal []StampedCommand
	seqs    map[string]uint64
	// journalBase is the compaction base (compact.go): journal entries
	// stamped before it were folded into the base checkpoint. Guarded by
	// inmu like the journal itself.
	journalBase int64

	// Sharded admission state (admission.go): the per-origin queues of
	// submitted-but-unstamped commands, the atomic (queued + pending)
	// occupancy the buffer bound is enforced against, and a lock-free
	// mirror of the tick counter for admission-time acknowledgments.
	adm      admission
	inflight atomic.Int64
	atick    atomic.Int64

	// constNames is the immutable set of tunable constant names, fixed at
	// construction: OpTune updates values, never the key set, so the
	// lock-free admission path can validate names without reading the
	// mutable constant table.
	constNames map[string]struct{}

	an   *exec.Analyzer
	plan *algebra.Plan

	posX, posY int // schema columns
	fxCols     []int
	workers    int // resolved Options.Workers (>= 1)

	// Incremental-maintenance state (Options.Incremental, Indexed mode):
	// the provider the current tick used, the provider and delta to
	// maintain the next tick's indexes from, and the flat row snapshot
	// the delta is computed against.
	tickProv *exec.Indexed
	prevProv *exec.Indexed
	incSnap  []float64
	incDirty []int
	incMasks []uint64
	delta    exec.Delta
	deltaOK  bool
	// cmdSetRows holds the row indexes OpSet commands edited this tick
	// when applyCommands synced the snapshot to the post-command values:
	// the sync makes the tick-end diff blind to the edit, so capture must
	// re-add these rows to the fresh delta for maintainAnswers.
	cmdSetRows []int

	// Observation-query state (see query.go): qmu guards the cached
	// per-query analyzers and frozen providers, so any number of reader
	// goroutines can share one index build per tick.
	qmu     sync.Mutex
	queries queryState

	// Stats accumulates counters across ticks.
	Stats RunStats
}

// RunStats aggregates per-run counters.
type RunStats struct {
	Ticks          int
	EffectsApplied int
	Moves          int
	MovesBlocked   int
	Deaths         int
	// MaintainTicks counts the ticks whose indexes were patched from the
	// previous tick's (Options.Incremental); DirtyRows accumulates the
	// per-tick delta sizes those patches consumed.
	MaintainTicks int
	DirtyRows     int
	// CommandsApplied and CommandsRejected count externally injected
	// commands by their apply-time outcome (see command.go; rejected
	// means the command's apply-time rule failed — the submission itself
	// was valid and is in the journal).
	CommandsApplied  int
	CommandsRejected int
	// Maintained-answer verdicts (answers.go): cached answers returned
	// untouched, patched in place, and marked for re-derivation. Like
	// IndexStats, deliberately not checkpoint-serialized — they depend on
	// which spectators were watching, not on the world.
	AnswerHits      int
	AnswerPatches   int
	AnswerRederives int
	IndexStats      exec.Stats
	// EffectsByWorker splits EffectsApplied by the worker shard that
	// produced each effect row (all in slot 0 on the serial path).
	EffectsByWorker []int
}

// New builds an engine over an initial environment. The environment's
// effect columns must be at their game defaults (normally all zero); the
// engine keeps that invariant across ticks.
func New(prog *sem.Program, game Game, initial *table.Table, opts Options) (*Engine, error) {
	if !initial.Keyed() {
		return nil, fmt.Errorf("engine: initial environment must be keyed")
	}
	px, ok := prog.Schema.Col("posx")
	if !ok {
		return nil, fmt.Errorf("engine: schema needs posx")
	}
	py, ok := prog.Schema.Col("posy")
	if !ok {
		return nil, fmt.Errorf("engine: schema needs posy")
	}
	// The resurrection phase draws positions with Intn(int(Side)), so a
	// degenerate or non-finite side would panic mid-run; rejecting it here
	// also keeps the write and read sides of the checkpoint format in
	// agreement about what a valid world is.
	if !(opts.Side >= 1) || math.IsInf(opts.Side, 0) {
		return nil, fmt.Errorf("engine: world side must be a finite value >= 1, got %v", opts.Side)
	}
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	// Clone the program shallowly with a private Consts map: OpTune
	// commands retune THIS engine's constants; the caller's program (and
	// any sibling engine compiled from it) must stay untouched. The AST,
	// schema and resolution maps are immutable and stay shared.
	p := *prog
	p.Consts = make(map[string]float64, len(prog.Consts))
	//sgl:unordered map copy; insertion order cannot reach the resulting map
	for k, v := range prog.Consts {
		p.Consts[k] = v
	}
	prog = &p
	e := &Engine{
		prog:    prog,
		source:  prog.Script.String(),
		game:    game,
		opts:    opts,
		env:     initial.Clone(),
		src:     rng.New(opts.Seed),
		an:      exec.NewAnalyzer(prog, opts.Categoricals),
		posX:    px,
		posY:    py,
		workers: w,
	}
	e.fxCols = prog.Schema.EffectCols()
	e.rebuildConstNames()
	e.Stats.EffectsByWorker = make([]int, w)
	plan, err := algebra.Translate(prog)
	if err != nil {
		return nil, err
	}
	if !opts.DisableOptimizer {
		algebra.Optimize(plan)
	}
	e.plan = plan
	return e, nil
}

// Env returns the live environment table (do not mutate).
func (e *Engine) Env() *table.Table { return e.env }

// TickCount returns the number of completed ticks.
func (e *Engine) TickCount() int64 { return e.tick }

// Workers returns the resolved worker count ticks run with (Options.
// Workers after defaulting, always >= 1).
func (e *Engine) Workers() int { return e.workers }

// Plan returns the compiled plan (for explain tooling).
func (e *Engine) Plan() *algebra.Plan { return e.plan }

// Analyzer returns the index-usability analysis the engine runs with (for
// explain tooling and the lint/runtime consistency tests).
func (e *Engine) Analyzer() *exec.Analyzer { return e.an }

// Run advances the simulation n ticks.
func (e *Engine) Run(n int) error {
	for i := 0; i < n; i++ {
		if err := e.Tick(); err != nil {
			return err
		}
	}
	return nil
}

// Source returns the engine's script in canonical printed form (the ast
// printer's fixed point) — the text checkpoint format v2 embeds.
func (e *Engine) Source() string { return e.source }

// Program returns the engine's checked program. The engine owns its
// constant table (OpTune mutates it); treat the result as read-only.
func (e *Engine) Program() *sem.Program { return e.prog }

// rebuildConstNames derives the immutable tunable-name set the lock-free
// admission path validates OpTune against. Called at construction and
// after a restore adopts the checkpoint's constant table.
func (e *Engine) rebuildConstNames() {
	e.constNames = make(map[string]struct{}, len(e.prog.Consts))
	//sgl:unordered set construction; membership is order-free
	for k := range e.prog.Consts {
		e.constNames[k] = struct{}{}
	}
}

// Tick advances one clock tick through all phases.
func (e *Engine) Tick() error {
	// Stamp and drain externally injected commands first: queued sharded
	// admissions get their canonical (tick, origin, seq) stamps, then the
	// whole tick — key index, effect query, index builds — observes the
	// post-command world (see admission.go and command.go for the
	// ordering and determinism argument).
	e.inmu.Lock()
	e.drainAdmission()
	e.inmu.Unlock()
	e.applyCommands()

	r := e.src.Tick(e.tick)
	n := e.env.Len()
	acc := newAccumulator(e.prog.Schema, n)
	keyIdx := make(map[int64]int, n)
	kc := e.prog.Schema.KeyCol()
	for i, row := range e.env.Rows {
		keyIdx[int64(row[kc])] = i
	}

	// Decision + action stages (query/decide/update of Section 2.2). With
	// Workers > 1 the effect query runs sharded over the frozen snapshot
	// and the per-shard effects merge at a barrier in serial fold order.
	var err error
	switch {
	case e.workers > 1:
		err = e.decideParallel(r, acc, keyIdx)
	case e.opts.Mode == Naive:
		err = e.decideNaive(r, acc, keyIdx)
	default:
		err = e.decideIndexed(r, acc, keyIdx)
	}
	if err != nil {
		return err
	}

	// Post-processing query (Example 4.1): combine effects into state.
	// Each row folds only its own accumulator slot, so the loop shards
	// cleanly; per-shard death counts merge in shard order.
	moves := make([]geom.Vec, n)
	dead := make([]bool, n)
	bounds := e.shards(n)
	deaths := make([]int, len(bounds))
	runShards(bounds, func(s, lo, hi int) {
		for i := lo; i < hi; i++ {
			mv, alive := e.game.ApplyEffects(e.env.Rows[i], acc.vals[i])
			moves[i] = mv
			if !alive {
				dead[i] = true
				deaths[s]++
			}
		}
	})
	for _, d := range deaths {
		e.Stats.Deaths += d
	}

	// Movement phase: random order, collision detection, simple pathfinding.
	e.movementPhase(moves, dead)

	// Resurrection keeps the population constant (Section 6).
	e.resurrect(dead)

	// Record which rows this tick changed, so the next tick can patch the
	// previous indexes instead of rebuilding them.
	e.captureIncremental()

	// Classify every maintained answer against the fresh delta before the
	// query caches are invalidated.
	e.maintainAnswers()

	// The environment mutated: every cached observation-query provider
	// indexes a stale snapshot now.
	e.invalidateQueries()

	e.tick++
	e.atick.Store(e.tick)
	e.Stats.Ticks++
	if e.opts.CompactJournal {
		// Fold the entries this tick just applied into the base: the
		// journal stays proportional to the pending window.
		e.Compact()
	}
	return nil
}

// countEffect records one applied effect attributed to a worker shard.
func (e *Engine) countEffect(worker int) {
	e.Stats.EffectsApplied++
	if worker >= 0 && worker < len(e.Stats.EffectsByWorker) {
		e.Stats.EffectsByWorker[worker]++
	}
}

// ---------------------------------------------------------------------------
// Effect accumulation

// accumulator folds effect rows per environment row, replacing the
// materialize-⊎-Combine pipeline with a single in-place ⊕ (the executed
// form of the Figure 6 (c)→(d) rewrite).
type accumulator struct {
	schema *table.Schema
	vals   [][]float64
}

func newAccumulator(s *table.Schema, n int) *accumulator {
	a := &accumulator{schema: s, vals: make([][]float64, n)}
	width := s.NumAttrs()
	flat := make([]float64, n*width)
	for i := range a.vals {
		a.vals[i] = flat[i*width : (i+1)*width]
		for _, c := range s.EffectCols() {
			a.vals[i][c] = s.Attr(c).Kind.Identity()
		}
	}
	return a
}

func (a *accumulator) fold(rowIdx, col int, v float64) {
	a.vals[rowIdx][col] = a.schema.Attr(col).Kind.Fold(a.vals[rowIdx][col], v)
}

func (a *accumulator) foldRow(rowIdx int, effectRow []float64) {
	for _, c := range a.schema.EffectCols() {
		a.vals[rowIdx][c] = a.schema.Attr(c).Kind.Fold(a.vals[rowIdx][c], effectRow[c])
	}
}

// ---------------------------------------------------------------------------
// Movement and resurrection

// movePlan is one mover's precomputed, world-clamped candidate squares:
// full step, then the two axis-aligned slides ("very simple pathfinding").
type movePlan struct {
	cands  [3]geom.Point
	active bool
}

// movementPhase runs in two stages. Candidate planning is pure per unit —
// a mover's clamped step and slide candidates depend only on its own
// frozen row and move vector, never on other units — so it runs sharded
// across the worker pool. The claim sweep that follows stays serial by
// design: each move in the random order observes the occupancy left by
// every earlier move (a unit can step into a square vacated this very
// tick), a sequential dependency chain the state-effect argument does not
// cover. Since planning is order-independent and the sweep consumes plans
// in the same permutation regardless of shard count, the phase is
// bit-identical at any Workers value.
func (e *Engine) movementPhase(moves []geom.Vec, dead []bool) {
	n := e.env.Len()
	plans := make([]movePlan, n)
	runShards(e.shards(n), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			if dead[i] || (moves[i].X == 0 && moves[i].Y == 0) {
				continue
			}
			row := e.env.Rows[i]
			mv := moves[i].Clamp(e.opts.MoveSpeed)
			x, y := row[e.posX], row[e.posY]
			plans[i] = movePlan{active: true, cands: [3]geom.Point{
				e.clampToWorld(geom.Point{X: x + mv.X, Y: y + mv.Y}),
				e.clampToWorld(geom.Point{X: x + mv.X, Y: y}),
				e.clampToWorld(geom.Point{X: x, Y: y + mv.Y}),
			}}
		}
	})

	occ := grid.NewOccupancy(n)
	kc := e.prog.Schema.KeyCol()
	for _, row := range e.env.Rows {
		occ.Place(row[e.posX], row[e.posY], int64(row[kc]))
	}
	st := rng.NewStream(e.src, 1_000_000+e.tick)
	for _, i := range st.Perm(n) {
		if !plans[i].active {
			continue
		}
		row := e.env.Rows[i]
		key := int64(row[kc])
		x, y := row[e.posX], row[e.posY]
		moved := false
		for _, cand := range plans[i].cands {
			if occ.Move(x, y, cand.X, cand.Y, key) {
				row[e.posX], row[e.posY] = cand.X, cand.Y
				moved = true
				break
			}
		}
		if moved {
			e.Stats.Moves++
		} else {
			e.Stats.MovesBlocked++
		}
	}
}

func (e *Engine) clampToWorld(p geom.Point) geom.Point {
	max := e.opts.Side - 1e-9
	if max < 0 {
		max = 0
	}
	return geom.Rect{MinX: 0, MinY: 0, MaxX: max, MaxY: max}.ClampPoint(p)
}

func (e *Engine) resurrect(dead []bool) {
	occ := grid.NewOccupancy(e.env.Len())
	kc := e.prog.Schema.KeyCol()
	for i, row := range e.env.Rows {
		if !dead[i] {
			occ.Place(row[e.posX], row[e.posY], int64(row[kc]))
		}
	}
	for i, row := range e.env.Rows {
		if !dead[i] {
			continue
		}
		key := int64(row[kc])
		// Each corpse draws from its own substream keyed by (tick, unit):
		// the draw sequence is independent of resurrection order and of
		// the worker count, so respawns stay bit-identical at any
		// parallelism. (Square conflicts are still resolved serially in
		// row order below.)
		st := e.src.Substream(2_000_000+e.tick, key)
		e.game.Respawn(row, st)
		for tries := 0; ; tries++ {
			x := float64(st.Intn(int(e.opts.Side)))
			y := float64(st.Intn(int(e.opts.Side)))
			if occ.Place(x, y, key) {
				row[e.posX], row[e.posY] = x, y
				break
			}
			if tries > 10*int(e.opts.Side*e.opts.Side) {
				// Pathological full grid: stack at origin rather than spin.
				row[e.posX], row[e.posY] = 0, 0
				break
			}
		}
	}
}
