// Checkpoint/restore: pause a world, persist it, and resume it — on this
// process or another — with the continuation byte-identical to the run
// that never stopped.
//
// The contract is exact because the engine keeps no hidden sequential
// state between ticks. Every random decision is counter-based on
// (seed, tick, unit key, draw index), the movement permutation and the
// respawn substreams are re-derived from (seed, tick) alone, and the
// incremental-maintenance caches are a pure optimization proven
// bit-identical to rebuilding. The complete resumable state is therefore:
// the environment rows, the tick counter, the seed, the handful of
// options that change floating-point association (Mode, the ablation
// switches, world geometry) — and, since the command pipeline, the
// interactive inputs: the pending input buffer, the input journal, the
// per-origin sequence counters, and the (possibly retuned) constant
// table. Workers / Incremental / IncrementalThreshold / CompactJournal
// are deliberately NOT part of the format — a checkpoint taken at any
// setting resumes identically at any other, which is what lets an
// operator migrate a world onto different hardware (or switch a world's
// compaction policy in flight).
//
// Format version 3 is self-contained: it embeds the SGL script text (in
// the ast printer's canonical form) and the constant table, so Open can
// rebuild the whole session from the stream alone — no separate program,
// no sidecar file to keep paired with the snapshot. Layout
// (little-endian, FNV-1a checksum over everything before the trailer):
//
//	magic     "SGLCKPT\n"                     8 bytes
//	version   u32                             currently 3
//	seed      u64
//	tick      i64
//	mode      u8                              Naive / Indexed
//	flags     u8                              bit0 DisableAreaDefer, bit1 DisableOptimizer
//	side      f64 bits
//	movespeed f64 bits
//	cats      u32 count, then len-prefixed strings (categorical attributes)
//	stats     9 × i64                         Ticks, EffectsApplied, Moves,
//	                                          MovesBlocked, Deaths,
//	                                          MaintainTicks, DirtyRows,
//	                                          CommandsApplied, CommandsRejected
//	script    len-prefixed string             canonical SGL source
//	consts    u32 count, then (name, f64) sorted by name
//	schema    table codec schema section
//	rows      table codec row section
//	base      i64                             journal compaction base tick (v3+)
//	pending   u32 count, then stamped commands (input buffer)
//	journal   u32 count, then stamped commands (input journal tail)
//	seqs      u32 count, then (origin, u64) sorted by origin
//	checksum  u64                             FNV-1a of all preceding bytes
//
// Version 3 (this PR) added the single base field for journal compaction
// (compact.go): a nonzero base says the journal section is a tail — the
// history before the base was folded into this very snapshot, so the
// stream is a (base checkpoint + tail), not a genesis history. Version 2
// (the command pipeline PR) is the same layout without the base field
// and decodes with base 0; version 1 (PR 3) is the header through the
// schema/rows sections with 7 stats counters and no script/consts/
// inputs. This build keeps all three decoders and dispatches on the
// version tag. The version number is bumped on ANY layout change and
// never reused; readers reject versions they do not know. See ROADMAP.md
// for the compatibility policy.
package engine

import (
	"fmt"
	"io"
	"math"
	"sort"

	"github.com/epicscale/sgl/internal/sgl/parser"
	"github.com/epicscale/sgl/internal/sgl/sem"
	"github.com/epicscale/sgl/internal/table"
)

// checkpointMagic identifies an SGL checkpoint stream.
const checkpointMagic = "SGLCKPT\n"

// CheckpointVersion is the format version this build writes. Reads accept
// this, CheckpointVersionV2 and CheckpointVersionV1.
const CheckpointVersion = 3

// CheckpointVersionV2 is the command-pipeline format: self-contained
// (embedded script, constants and inputs) but without the journal
// compaction base. Decodes with base 0 — a complete genesis journal.
const CheckpointVersionV2 = 2

// CheckpointVersionV1 is the PR 3 format: no embedded script, constants
// or inputs. Still readable through Restore (which takes the program the
// checkpointed engine ran); Open needs a self-contained version (v2+).
const CheckpointVersionV1 = 1

// Decode bounds for the self-describing sections.
const (
	// maxCategoricals bounds the categorical-attribute list a reader
	// accepts; real programs partition on a handful of attributes.
	maxCategoricals = 1 << 10
	// maxScriptBytes bounds the embedded script text.
	maxScriptBytes = 1 << 22
	// maxJournalEntries bounds the journal section a reader accepts.
	maxJournalEntries = 1 << 22
	// maxOrigins bounds the per-origin sequence-counter section.
	maxOrigins = 1 << 20
)

// Checkpoint serializes the engine's resumable state to w. It must be
// called between ticks (never concurrently with Tick); a Session
// serializes this automatically. The stream is self-describing and ends
// in a checksum, so Restore detects truncation and corruption. The
// written format is version 3: self-contained, embedding the script,
// the journal compaction base, and any pending or journaled inputs, so
// Open can reopen it with no other artifact. Commands still queued in
// the sharded admission buffers are stamped and drained into the stream
// first — an acknowledged Submit is always part of the checkpoint.
func (e *Engine) Checkpoint(w io.Writer) error {
	return e.checkpointVersioned(w, CheckpointVersion)
}

// checkpointVersioned writes the stream at a chosen format version —
// always CheckpointVersion in production; tests use it to synthesize
// genuine older-version streams for the back-compat and fuzz corpora.
// Writing v2 silently drops a nonzero journal base, so only uncompacted
// engines should be serialized that way.
func (e *Engine) checkpointVersioned(w io.Writer, version uint32) error {
	e.inmu.Lock()
	defer e.inmu.Unlock()
	e.drainAdmission()
	cw := table.NewWriter(w)
	cw.Bytes([]byte(checkpointMagic))
	cw.U32(version)
	cw.U64(e.opts.Seed)
	cw.I64(e.tick)
	cw.U8(uint8(e.opts.Mode))
	var flags uint8
	if e.opts.DisableAreaDefer {
		flags |= 1
	}
	if e.opts.DisableOptimizer {
		flags |= 2
	}
	cw.U8(flags)
	cw.F64(e.opts.Side)
	cw.F64(e.opts.MoveSpeed)
	cw.U32(uint32(len(e.opts.Categoricals)))
	for _, c := range e.opts.Categoricals {
		cw.Str(c)
	}
	for _, v := range []int{
		e.Stats.Ticks, e.Stats.EffectsApplied, e.Stats.Moves,
		e.Stats.MovesBlocked, e.Stats.Deaths,
		e.Stats.MaintainTicks, e.Stats.DirtyRows,
		e.Stats.CommandsApplied, e.Stats.CommandsRejected,
	} {
		cw.I64(int64(v))
	}
	cw.Str(e.source)
	table.WriteConsts(cw, e.prog.Consts)
	table.WriteSchema(cw, e.prog.Schema)
	table.WriteRows(cw, e.env)
	if version >= CheckpointVersion {
		cw.I64(e.journalBase)
	}
	writeCommands(cw, e.pending)
	writeCommands(cw, e.journal)
	writeSeqs(cw, e.seqs)
	cw.U64(cw.Sum()) // trailer: checksum of everything above
	if err := cw.Err(); err != nil {
		return fmt.Errorf("engine: checkpoint: %w", err)
	}
	return nil
}

// writeCommands encodes a stamped-command list section.
func writeCommands(cw *table.Writer, cmds []StampedCommand) {
	cw.U32(uint32(len(cmds)))
	for _, sc := range cmds {
		cw.I64(sc.Tick)
		cw.Str(sc.Origin)
		cw.U64(sc.Seq)
		cw.U8(uint8(sc.Cmd.Op))
		cw.I64(sc.Cmd.Key)
		cw.Str(sc.Cmd.Col)
		cw.F64(sc.Cmd.Val)
		cw.U32(uint32(len(sc.Cmd.Row)))
		for _, v := range sc.Cmd.Row {
			cw.F64(v)
		}
	}
}

// readCommands decodes a stamped-command list section, bounding every
// count before allocating.
func readCommands(cr *table.Reader, section string) ([]StampedCommand, error) {
	n := cr.U32()
	if cr.Err() != nil {
		return nil, cr.Err()
	}
	if n > maxJournalEntries {
		err := fmt.Errorf("engine: %s section with %d entries exceeds limit %d", section, n, maxJournalEntries)
		cr.Fail(err)
		return nil, err
	}
	var cmds []StampedCommand
	for i := uint32(0); i < n; i++ {
		var sc StampedCommand
		sc.Tick = cr.I64()
		sc.Origin = cr.Str(MaxOriginLen)
		sc.Seq = cr.U64()
		sc.Cmd.Op = CommandOp(cr.U8())
		sc.Cmd.Key = cr.I64()
		sc.Cmd.Col = cr.Str(table.MaxNameLen)
		sc.Cmd.Val = cr.F64()
		rowLen := cr.U32()
		if cr.Err() != nil {
			return nil, cr.Err()
		}
		if sc.Cmd.Op > OpTune {
			err := fmt.Errorf("engine: %s entry %d has unknown op %d", section, i, sc.Cmd.Op)
			cr.Fail(err)
			return nil, err
		}
		if rowLen > table.MaxAttrs {
			err := fmt.Errorf("engine: %s entry %d row width %d exceeds limit %d", section, i, rowLen, table.MaxAttrs)
			cr.Fail(err)
			return nil, err
		}
		if rowLen > 0 {
			sc.Cmd.Row = make([]float64, rowLen)
			for c := range sc.Cmd.Row {
				sc.Cmd.Row[c] = cr.F64()
			}
		}
		if cr.Err() != nil {
			return nil, cr.Err()
		}
		cmds = append(cmds, sc)
	}
	return cmds, nil
}

// writeSeqs encodes the per-origin sequence counters sorted by origin, so
// equal maps always encode to equal bytes.
func writeSeqs(cw *table.Writer, seqs map[string]uint64) {
	origins := make([]string, 0, len(seqs))
	//sgl:unordered keys are collected and sorted before encoding
	for o := range seqs {
		origins = append(origins, o)
	}
	sort.Strings(origins)
	cw.U32(uint32(len(origins)))
	for _, o := range origins {
		cw.Str(o)
		cw.U64(seqs[o])
	}
}

func readSeqs(cr *table.Reader) (map[string]uint64, error) {
	n := cr.U32()
	if cr.Err() != nil {
		return nil, cr.Err()
	}
	if n > maxOrigins {
		err := fmt.Errorf("engine: sequence section with %d origins exceeds limit %d", n, maxOrigins)
		cr.Fail(err)
		return nil, err
	}
	seqs := make(map[string]uint64, n)
	for i := uint32(0); i < n; i++ {
		o := cr.Str(MaxOriginLen)
		v := cr.U64()
		if cr.Err() != nil {
			return nil, cr.Err()
		}
		seqs[o] = v
	}
	return seqs, nil
}

// checkpointPayload is a fully decoded, checksum-verified checkpoint
// stream, version-normalized: v1 streams decode with empty script/consts
// and no inputs, and pre-v3 streams decode with journal base 0.
type checkpointPayload struct {
	version   uint32
	seed      uint64
	tick      int64
	mode      Mode
	flags     uint8
	side      float64
	moveSpeed float64
	cats      []string
	counters  [9]int64
	script    string
	consts    map[string]float64
	schema    *table.Schema
	env       *table.Table
	base      int64
	pending   []StampedCommand
	journal   []StampedCommand
	seqs      map[string]uint64
}

// decodeCheckpoint reads and validates a checkpoint stream of any known
// version. Nothing engine-shaped is built until the trailing checksum has
// verified the bytes.
func decodeCheckpoint(r io.Reader) (*checkpointPayload, error) {
	cr := table.NewReader(r)
	var magic [8]byte
	cr.Bytes(magic[:])
	if cr.Err() == nil && string(magic[:]) != checkpointMagic {
		return nil, fmt.Errorf("engine: restore: not an SGL checkpoint (bad magic)")
	}
	p := &checkpointPayload{}
	p.version = cr.U32()
	if cr.Err() == nil && (p.version < CheckpointVersionV1 || p.version > CheckpointVersion) {
		return nil, fmt.Errorf("engine: restore: unsupported checkpoint version %d (this build reads %d through %d)",
			p.version, CheckpointVersionV1, CheckpointVersion)
	}
	p.seed = cr.U64()
	p.tick = cr.I64()
	p.mode = Mode(cr.U8())
	p.flags = cr.U8()
	p.side = cr.F64()
	p.moveSpeed = cr.F64()
	ncat := cr.U32()
	if cr.Err() == nil && ncat > maxCategoricals {
		return nil, fmt.Errorf("engine: restore: %d categorical attributes exceeds limit", ncat)
	}
	for i := uint32(0); i < ncat && cr.Err() == nil; i++ {
		p.cats = append(p.cats, cr.Str(table.MaxNameLen))
	}
	ncounters := len(p.counters)
	if p.version == CheckpointVersionV1 {
		ncounters = 7 // v1 predates the command counters
	}
	for i := 0; i < ncounters; i++ {
		p.counters[i] = cr.I64()
	}
	if err := cr.Err(); err != nil {
		return nil, fmt.Errorf("engine: restore: %w", err)
	}
	if p.tick < 0 || p.mode > Indexed || p.flags > 3 {
		return nil, fmt.Errorf("engine: restore: malformed header (tick %d, mode %d, flags %d)", p.tick, p.mode, p.flags)
	}
	// The world geometry must be usable: resurrection draws positions in
	// [0, Side), so a degenerate or non-finite side would panic mid-tick.
	if !(p.side >= 1) || math.IsInf(p.side, 0) || !(p.moveSpeed >= 0) || math.IsInf(p.moveSpeed, 0) {
		return nil, fmt.Errorf("engine: restore: malformed world geometry (side %v, movespeed %v)", p.side, p.moveSpeed)
	}

	var err error
	if p.version >= CheckpointVersionV2 {
		p.script = cr.Str(maxScriptBytes)
		if err := cr.Err(); err != nil {
			return nil, fmt.Errorf("engine: restore: %w", err)
		}
		if p.consts, err = table.ReadConsts(cr); err != nil {
			return nil, fmt.Errorf("engine: restore: %w", err)
		}
	}
	if p.schema, err = table.ReadSchema(cr); err != nil {
		return nil, fmt.Errorf("engine: restore: %w", err)
	}
	if p.env, err = table.ReadRows(cr, p.schema); err != nil {
		return nil, fmt.Errorf("engine: restore: %w", err)
	}
	if p.version >= CheckpointVersion {
		p.base = cr.I64()
		if err := cr.Err(); err != nil {
			return nil, fmt.Errorf("engine: restore: %w", err)
		}
		if p.base < 0 || p.base > p.tick {
			return nil, fmt.Errorf("engine: restore: journal base %d outside [0, tick %d]", p.base, p.tick)
		}
	}
	if p.version >= CheckpointVersionV2 {
		if p.pending, err = readCommands(cr, "pending-input"); err != nil {
			return nil, fmt.Errorf("engine: restore: %w", err)
		}
		if len(p.pending) > MaxPendingCommands {
			return nil, fmt.Errorf("engine: restore: %d pending commands exceeds limit %d", len(p.pending), MaxPendingCommands)
		}
		if p.journal, err = readCommands(cr, "journal"); err != nil {
			return nil, fmt.Errorf("engine: restore: %w", err)
		}
		// A compacted stream's journal is a tail: every surviving entry is
		// stamped at or after the base. An entry from before the base
		// contradicts the base field — one of them is corrupt.
		for i, sc := range p.journal {
			if sc.Tick < p.base {
				return nil, fmt.Errorf("engine: restore: journal entry %d stamped tick %d predates journal base %d", i, sc.Tick, p.base)
			}
		}
		if p.seqs, err = readSeqs(cr); err != nil {
			return nil, fmt.Errorf("engine: restore: %w", err)
		}
	}
	sum := cr.Sum() // checksum of everything consumed so far
	stored := cr.U64()
	if err := cr.Err(); err != nil {
		return nil, fmt.Errorf("engine: restore: %w", err)
	}
	if stored != sum {
		return nil, fmt.Errorf("engine: restore: checksum mismatch (stored %016x, computed %016x): corrupted checkpoint", stored, sum)
	}
	return p, nil
}

// buildRestored constructs the engine a verified payload describes,
// running the program prog (whose schema must already be known to match
// the payload's).
func buildRestored(p *checkpointPayload, prog *sem.Program, g Game, tune Options) (*Engine, error) {
	// Decode rows against prog's schema so the environment shares the
	// program's schema object (pointer identity matters to plan operators).
	p.env.Schema = prog.Schema
	e, err := New(prog, g, p.env, Options{
		Mode:                 p.mode,
		Categoricals:         p.cats,
		Seed:                 p.seed,
		Side:                 p.side,
		MoveSpeed:            p.moveSpeed,
		DisableAreaDefer:     p.flags&1 != 0,
		DisableOptimizer:     p.flags&2 != 0,
		Workers:              tune.Workers,
		Incremental:          tune.Incremental,
		IncrementalThreshold: tune.IncrementalThreshold,
		CompactJournal:       tune.CompactJournal,
	})
	if err != nil {
		return nil, fmt.Errorf("engine: restore: %w", err)
	}
	e.tick = p.tick
	e.atick.Store(p.tick)
	e.Stats.Ticks = int(p.counters[0])
	e.Stats.EffectsApplied = int(p.counters[1])
	e.Stats.Moves = int(p.counters[2])
	e.Stats.MovesBlocked = int(p.counters[3])
	e.Stats.Deaths = int(p.counters[4])
	e.Stats.MaintainTicks = int(p.counters[5])
	e.Stats.DirtyRows = int(p.counters[6])
	e.Stats.CommandsApplied = int(p.counters[7])
	e.Stats.CommandsRejected = int(p.counters[8])
	if p.version >= CheckpointVersionV2 {
		// The v2+ payload is authoritative for everything interactive: the
		// constant table with any OpTune history folded in, the journal
		// base, and the input state. The script source is NOT adopted —
		// the engine runs prog, and its canonical print equals the
		// embedded text whenever the programs match (the ast printer is a
		// parse/print fixed point), which keeps restore → checkpoint a
		// byte fixed point.
		e.prog.Consts = p.consts
		e.rebuildConstNames()
		e.journal = p.journal
		e.journalBase = p.base
		e.seqs = p.seqs
		// Pending commands apply at the next tick; re-validate them against
		// the rebuilt engine so a hostile-but-checksummed stream cannot
		// smuggle a row that would panic the apply path.
		for i := range p.pending {
			if err := e.validateCommand(&p.pending[i].Cmd); err != nil {
				return nil, fmt.Errorf("engine: restore: pending command %d: %w", i, err)
			}
		}
		e.pending = p.pending
		e.inflight.Store(int64(len(p.pending)))
	}
	return e, nil
}

// Restore reopens a checkpoint written by Checkpoint and returns an
// engine positioned exactly where the writer stopped: same environment,
// same tick counter, same seed and semantic options, with the cumulative
// run counters (deaths, moves, …) and — for version-2 checkpoints — the
// input journal, pending commands and retuned constants carried over.
// Continuing the restored engine produces environments byte-identical to
// the run that was never interrupted.
//
// prog must be the program the checkpointed engine ran (the embedded
// schema is verified against prog's); for self-contained version-2+
// checkpoints, Open rebuilds the program from the stream instead and
// needs no prog at all. Of tune, only the determinism-neutral execution
// knobs are consulted — Workers, Incremental, IncrementalThreshold,
// CompactJournal — so a world checkpointed on one machine can resume
// with a different parallelism, maintenance, or compaction strategy
// without changing a single output bit. Everything else (Mode, Seed,
// Side, MoveSpeed, Categoricals, ablation switches, and on v2+ the
// constant table and journal base) comes from the checkpoint itself.
//
// Restored measurement state starts fresh where it is configuration-
// dependent: RunStats.IndexStats and EffectsByWorker count work done by
// *this* engine's evaluator and worker layout, so they restart at zero.
func Restore(r io.Reader, prog *sem.Program, g Game, tune Options) (*Engine, error) {
	p, err := decodeCheckpoint(r)
	if err != nil {
		return nil, err
	}
	if !p.schema.Equal(prog.Schema) {
		return nil, fmt.Errorf("engine: restore: checkpoint schema %v does not match program schema %v", p.schema, prog.Schema)
	}
	return buildRestored(p, prog, g, tune)
}

// Open reopens a self-contained (version 2 or 3) checkpoint as a ready-
// to-serve Session, rebuilding the program from the embedded script and
// constant table — the whole world from one stream, nothing to pair it
// with. Version-1 checkpoints predate the embedded script and are
// rejected with an explanatory error; reopen those through Restore with
// the program they ran. tune follows Restore's contract: only the
// determinism-neutral knobs — Workers, Incremental,
// IncrementalThreshold, CompactJournal — are consulted.
func Open(r io.Reader, g Game, tune Options) (*Session, error) {
	p, err := decodeCheckpoint(r)
	if err != nil {
		return nil, err
	}
	if p.version < CheckpointVersionV2 {
		return nil, fmt.Errorf("engine: open: checkpoint version %d has no embedded script; restore it with Restore and the program it ran", p.version)
	}
	script, err := parser.Parse(p.script)
	if err != nil {
		return nil, fmt.Errorf("engine: open: embedded script: %w", err)
	}
	prog, err := sem.Check(script, p.schema, p.consts)
	if err != nil {
		return nil, fmt.Errorf("engine: open: embedded script: %w", err)
	}
	e, err := buildRestored(p, prog, g, tune)
	if err != nil {
		return nil, err
	}
	return NewSession(e), nil
}
