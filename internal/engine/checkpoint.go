// Checkpoint/restore: pause a world, persist it, and resume it — on this
// process or another — with the continuation byte-identical to the run
// that never stopped.
//
// The contract is exact because the engine keeps no hidden sequential
// state between ticks. Every random decision is counter-based on
// (seed, tick, unit key, draw index), the movement permutation and the
// respawn substreams are re-derived from (seed, tick) alone, and the
// incremental-maintenance caches are a pure optimization proven
// bit-identical to rebuilding. The complete resumable state is therefore:
// the environment rows, the tick counter, the seed, and the handful of
// options that change floating-point association (Mode, the ablation
// switches, world geometry). Workers / Incremental / IncrementalThreshold
// are deliberately NOT part of the format — a checkpoint taken at any
// setting resumes identically at any other, which is what lets an
// operator migrate a world onto different hardware.
//
// Format (version 1), little-endian, FNV-1a checksum over everything
// before the trailer:
//
//	magic     "SGLCKPT\n"                     8 bytes
//	version   u32                             currently 1
//	seed      u64
//	tick      i64
//	mode      u8                              Naive / Indexed
//	flags     u8                              bit0 DisableAreaDefer, bit1 DisableOptimizer
//	side      f64 bits
//	movespeed f64 bits
//	cats      u32 count, then len-prefixed strings (categorical attributes)
//	stats     7 × i64                         Ticks, EffectsApplied, Moves,
//	                                          MovesBlocked, Deaths,
//	                                          MaintainTicks, DirtyRows
//	schema    table codec schema section
//	rows      table codec row section
//	checksum  u64                             FNV-1a of all preceding bytes
//
// The version number is bumped on ANY layout change; readers reject
// versions they do not know. See ROADMAP.md for the compatibility policy.
package engine

import (
	"fmt"
	"io"
	"math"

	"github.com/epicscale/sgl/internal/sgl/sem"
	"github.com/epicscale/sgl/internal/table"
)

// checkpointMagic identifies an SGL checkpoint stream.
const checkpointMagic = "SGLCKPT\n"

// CheckpointVersion is the format version this build writes (and the only
// one it reads).
const CheckpointVersion = 1

// maxCategoricals bounds the categorical-attribute list a reader accepts;
// real programs partition on a handful of attributes.
const maxCategoricals = 1 << 10

// Checkpoint serializes the engine's resumable state to w. It must be
// called between ticks (never concurrently with Tick); a Session
// serializes this automatically. The stream is self-describing and ends
// in a checksum, so Restore detects truncation and corruption.
func (e *Engine) Checkpoint(w io.Writer) error {
	cw := table.NewWriter(w)
	cw.Bytes([]byte(checkpointMagic))
	cw.U32(CheckpointVersion)
	cw.U64(e.opts.Seed)
	cw.I64(e.tick)
	cw.U8(uint8(e.opts.Mode))
	var flags uint8
	if e.opts.DisableAreaDefer {
		flags |= 1
	}
	if e.opts.DisableOptimizer {
		flags |= 2
	}
	cw.U8(flags)
	cw.F64(e.opts.Side)
	cw.F64(e.opts.MoveSpeed)
	cw.U32(uint32(len(e.opts.Categoricals)))
	for _, c := range e.opts.Categoricals {
		cw.Str(c)
	}
	for _, v := range []int{
		e.Stats.Ticks, e.Stats.EffectsApplied, e.Stats.Moves,
		e.Stats.MovesBlocked, e.Stats.Deaths,
		e.Stats.MaintainTicks, e.Stats.DirtyRows,
	} {
		cw.I64(int64(v))
	}
	table.WriteSchema(cw, e.prog.Schema)
	table.WriteRows(cw, e.env)
	cw.U64(cw.Sum()) // trailer: checksum of everything above
	if err := cw.Err(); err != nil {
		return fmt.Errorf("engine: checkpoint: %w", err)
	}
	return nil
}

// Restore reopens a checkpoint written by Checkpoint and returns an
// engine positioned exactly where the writer stopped: same environment,
// same tick counter, same seed and semantic options, with the cumulative
// run counters (deaths, moves, …) carried over. Continuing the restored
// engine produces environments byte-identical to the run that was never
// interrupted.
//
// prog must be the same program the checkpointed engine ran (the
// embedded schema is verified against prog's; the script itself is not
// serialized — programs are code, checkpoints are state). Of tune, only
// the determinism-neutral execution knobs are consulted — Workers,
// Incremental, IncrementalThreshold — so a world checkpointed on one
// machine can resume with a different parallelism or maintenance
// strategy without changing a single output bit. Everything else (Mode,
// Seed, Side, MoveSpeed, Categoricals, ablation switches) comes from the
// checkpoint itself.
//
// Restored measurement state starts fresh where it is configuration-
// dependent: RunStats.IndexStats and EffectsByWorker count work done by
// *this* engine's evaluator and worker layout, so they restart at zero.
func Restore(r io.Reader, prog *sem.Program, g Game, tune Options) (*Engine, error) {
	cr := table.NewReader(r)
	var magic [8]byte
	cr.Bytes(magic[:])
	if cr.Err() == nil && string(magic[:]) != checkpointMagic {
		return nil, fmt.Errorf("engine: restore: not an SGL checkpoint (bad magic)")
	}
	version := cr.U32()
	if cr.Err() == nil && version != CheckpointVersion {
		return nil, fmt.Errorf("engine: restore: unsupported checkpoint version %d (this build reads %d)", version, CheckpointVersion)
	}
	seed := cr.U64()
	tick := cr.I64()
	mode := Mode(cr.U8())
	flags := cr.U8()
	side := cr.F64()
	moveSpeed := cr.F64()
	ncat := cr.U32()
	if cr.Err() == nil && ncat > maxCategoricals {
		return nil, fmt.Errorf("engine: restore: %d categorical attributes exceeds limit", ncat)
	}
	var cats []string
	for i := uint32(0); i < ncat && cr.Err() == nil; i++ {
		cats = append(cats, cr.Str(table.MaxNameLen))
	}
	var counters [7]int64
	for i := range counters {
		counters[i] = cr.I64()
	}
	if err := cr.Err(); err != nil {
		return nil, fmt.Errorf("engine: restore: %w", err)
	}
	if tick < 0 || mode > Indexed || flags > 3 {
		return nil, fmt.Errorf("engine: restore: malformed header (tick %d, mode %d, flags %d)", tick, mode, flags)
	}
	// The world geometry must be usable: resurrection draws positions in
	// [0, Side), so a degenerate or non-finite side would panic mid-tick.
	if !(side >= 1) || math.IsInf(side, 0) || !(moveSpeed >= 0) || math.IsInf(moveSpeed, 0) {
		return nil, fmt.Errorf("engine: restore: malformed world geometry (side %v, movespeed %v)", side, moveSpeed)
	}

	schema, err := table.ReadSchema(cr)
	if err != nil {
		return nil, fmt.Errorf("engine: restore: %w", err)
	}
	if !schema.Equal(prog.Schema) {
		return nil, fmt.Errorf("engine: restore: checkpoint schema %v does not match program schema %v", schema, prog.Schema)
	}
	// Decode rows against prog's schema so the environment shares the
	// program's schema object (pointer identity matters to plan operators).
	env, err := table.ReadRows(cr, prog.Schema)
	if err != nil {
		return nil, fmt.Errorf("engine: restore: %w", err)
	}
	sum := cr.Sum() // checksum of everything consumed so far
	stored := cr.U64()
	if err := cr.Err(); err != nil {
		return nil, fmt.Errorf("engine: restore: %w", err)
	}
	if stored != sum {
		return nil, fmt.Errorf("engine: restore: checksum mismatch (stored %016x, computed %016x): corrupted checkpoint", stored, sum)
	}

	e, err := New(prog, g, env, Options{
		Mode:                 mode,
		Categoricals:         cats,
		Seed:                 seed,
		Side:                 side,
		MoveSpeed:            moveSpeed,
		DisableAreaDefer:     flags&1 != 0,
		DisableOptimizer:     flags&2 != 0,
		Workers:              tune.Workers,
		Incremental:          tune.Incremental,
		IncrementalThreshold: tune.IncrementalThreshold,
	})
	if err != nil {
		return nil, fmt.Errorf("engine: restore: %w", err)
	}
	e.tick = tick
	e.Stats.Ticks = int(counters[0])
	e.Stats.EffectsApplied = int(counters[1])
	e.Stats.Moves = int(counters[2])
	e.Stats.MovesBlocked = int(counters[3])
	e.Stats.Deaths = int(counters[4])
	e.Stats.MaintainTicks = int(counters[5])
	e.Stats.DirtyRows = int(counters[6])
	return e, nil
}
