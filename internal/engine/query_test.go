package engine

import (
	"math"
	"strings"
	"sync"
	"testing"

	"github.com/epicscale/sgl/internal/game"
)

// queryKind says which probe form a zoo query exercises.
type queryKind int

const (
	qWorld queryKind = iota // Engine.Query
	qAt                     // Engine.QueryAt (positional)
	qUnit                   // Engine.QueryUnit (live-unit perspective)
)

// queryZoo covers every output class the indexed evaluator has — range
// aggregates over the range tree, k-NN over the kD-tree, global extrema,
// windowed min/max, and a residual predicate that forces the scan
// fallback — in each probe form. Each query's indexed result must match
// the naive scan evaluation over the same snapshot.
var queryZoo = []struct {
	name string
	src  string
	kind queryKind
	args []float64
}{
	{"count-by-player", `
aggregate Army(u, p) := count(*) as n, sum(e.health) as hp over e where e.player = p;`,
		qWorld, []float64{1}},

	{"zone-divisible", `
aggregate Zone(u, x, y, r) :=
  count(*) as n, sum(e.health) as hp, avg(e.health) as mean, stddev(e.health) as sd
  over e where e.posx >= x - r and e.posx <= x + r
    and e.posy >= y - r and e.posy <= y + r;`,
		qWorld, []float64{12, 12, 9}},

	{"zone-one-sided", `
aggregate East(u, x) := count(*) over e where e.posx >= x;`,
		qWorld, []float64{10}},

	{"global-extrema", `
aggregate Strongest(u) :=
  max(e.health) as top, argmax(e.health) as who,
  min(e.health) as low, argmin(e.health) as frail
  over e where e.unittype = 0;`,
		qWorld, nil},

	{"window-minmax", `
aggregate WeakestNear(u, x, y, r) :=
  min(e.health) as hp, argmin(e.health) as key
  over e where e.posx >= x - r and e.posx <= x + r
    and e.posy >= y - r and e.posy <= y + r;`,
		qWorld, []float64{10, 14, 12}},

	{"residual-scan-fallback", `
aggregate Diagonal(u, c) := count(*) over e where e.posx + e.posy <= c;`,
		qWorld, []float64{25}},

	{"wounded-filter", `
aggregate Wounded(u, p) :=
  count(*) as n, avg(e.maxhealth - e.health) as missing
  over e where e.player = p and e.health < e.maxhealth;`,
		qWorld, []float64{0}},

	{"knn-from-position", `
aggregate Closest(u) :=
  nearestkey() as key, nearestdist() as dist, nearestx() as x, nearesty() as y
  over e;`,
		qAt, nil},

	{"knn-filtered", `
aggregate ClosestHealer(u, p) :=
  nearestkey() as key, nearestdist() as dist
  over e where e.player = p and e.unittype = 2;`,
		qAt, []float64{0}},

	{"window-from-position", `
aggregate Here(u, r) :=
  count(*) as n, avg(e.posx) as cx, avg(e.posy) as cy
  over e where e.posx >= u.posx - r and e.posx <= u.posx + r
    and e.posy >= u.posy - r and e.posy <= u.posy + r;`,
		qAt, []float64{8}},

	{"unit-perspective-sight", `
aggregate SeenBy(u) :=
  count(*) as n, avg(e.health) as hp
  over e where e.posx >= u.posx - u.sight and e.posx <= u.posx + u.sight
    and e.posy >= u.posy - u.sight and e.posy <= u.posy + u.sight
    and e.player <> u.player;`,
		qUnit, nil},

	{"unit-perspective-nearest-foe", `
aggregate Foe(u) := nearestkey() as key, nearestdist() as dist
  over e where e.player <> u.player;`,
		qUnit, nil},
}

func compileQuery(t testing.TB, src string) *Query {
	t.Helper()
	q, err := CompileQuery(src, game.Schema(), game.Consts())
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// closeEnough mirrors the engine's naive-vs-indexed tolerance: indexed
// aggregates associate floating-point folds differently than a scan.
func closeEnough(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// TestQueryMatchesScan is the acceptance harness for observation
// queries: for every zoo query, at several ticks of a live battle, the
// indexed evaluation must equal the naive scan evaluation over the same
// snapshot.
func TestQueryMatchesScan(t *testing.T) {
	prog := battleProg(t)
	e := newEngine(t, prog, 90, Indexed, 13, nil)
	probes := [][2]float64{{0, 0}, {10, 14}, {25, 3}}
	for tick := 0; tick < 8; tick++ {
		for _, zq := range queryZoo {
			q := compileQuery(t, zq.src)
			var pairs [][2][]float64
			switch zq.kind {
			case qWorld:
				idx, err := e.Query(q, zq.args...)
				if err != nil {
					t.Fatalf("%s: %v", zq.name, err)
				}
				scan, err := e.QueryScan(q, zq.args...)
				if err != nil {
					t.Fatalf("%s: %v", zq.name, err)
				}
				pairs = append(pairs, [2][]float64{idx, scan})
			case qAt:
				for _, p := range probes {
					idx, err := e.QueryAt(q, p[0], p[1], zq.args...)
					if err != nil {
						t.Fatalf("%s: %v", zq.name, err)
					}
					scan, err := e.QueryScanAt(q, p[0], p[1], zq.args...)
					if err != nil {
						t.Fatalf("%s: %v", zq.name, err)
					}
					pairs = append(pairs, [2][]float64{idx, scan})
				}
			case qUnit:
				for _, key := range []int64{0, 17, 42} {
					idx, err := e.QueryUnit(q, key, zq.args...)
					if err != nil {
						t.Fatalf("%s: %v", zq.name, err)
					}
					scan, err := e.QueryScanUnit(q, key, zq.args...)
					if err != nil {
						t.Fatalf("%s: %v", zq.name, err)
					}
					pairs = append(pairs, [2][]float64{idx, scan})
				}
			}
			for _, pr := range pairs {
				if len(pr[0]) != len(pr[1]) {
					t.Fatalf("%s: output arity mismatch", zq.name)
				}
				for i := range pr[0] {
					if !closeEnough(pr[0][i], pr[1][i]) {
						t.Fatalf("tick %d, %s, output %s: indexed %v != scan %v",
							tick, zq.name, q.Outputs()[i], pr[0][i], pr[1][i])
					}
				}
			}
		}
		if err := e.Tick(); err != nil {
			t.Fatal(err)
		}
	}
}

// Queries are served from the live post-tick state, not a stale
// snapshot: after a tick changes the world, a repeated query must see
// the change.
func TestQuerySeesLiveState(t *testing.T) {
	prog := battleProg(t)
	e := newEngine(t, prog, 90, Indexed, 13, nil)
	q := compileQuery(t, `aggregate Centroid(u) := avg(e.posx) as x, avg(e.posy) as y over e;`)
	before, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := e.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	after, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if before[0] == after[0] && before[1] == after[1] {
		t.Fatal("query result frozen across 5 ticks of a battle-lines engagement (armies march)")
	}
	scan, err := e.QueryScan(q)
	if err != nil {
		t.Fatal(err)
	}
	if !closeEnough(after[0], scan[0]) || !closeEnough(after[1], scan[1]) {
		t.Fatal("post-tick query disagrees with post-tick scan")
	}
}

// N concurrent readers share one frozen index build per (query, tick):
// the provider is built once and forked per call.
func TestQueryConcurrentReadersShareBuild(t *testing.T) {
	prog := battleProg(t)
	e := newEngine(t, prog, 90, Indexed, 13, nil)
	if err := e.Run(3); err != nil {
		t.Fatal(err)
	}
	q := compileQuery(t, `
aggregate Zone(u, x, y, r) :=
  count(*) as n, sum(e.health) as hp
  over e where e.posx >= x - r and e.posx <= x + r
    and e.posy >= y - r and e.posy <= y + r;`)

	want, err := e.Query(q, 12, 12, 10)
	if err != nil {
		t.Fatal(err)
	}
	const readers, perReader = 16, 50
	var wg sync.WaitGroup
	errs := make([]error, readers)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perReader; i++ {
				got, err := e.Query(q, 12, 12, 10)
				if err != nil {
					errs[g] = err
					return
				}
				for c := range got {
					if got[c] != want[c] {
						errs[g] = errAt{g, i}
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// One provider exists for q, and it was built exactly once this tick.
	e.qmu.Lock()
	ent := e.queries.cache[q]
	e.qmu.Unlock()
	if ent == nil || ent.prov == nil {
		t.Fatal("no cached provider after queries")
	}
	if ent.prov.Stats.IndexBuilds == 0 {
		t.Fatal("provider reports no index builds")
	}
	builds := ent.prov.Stats.IndexBuilds
	if _, err := e.Query(q, 12, 12, 10); err != nil {
		t.Fatal(err)
	}
	if ent.prov.Stats.IndexBuilds != builds {
		t.Fatalf("extra index builds within one tick: %d -> %d", builds, ent.prov.Stats.IndexBuilds)
	}
}

type errAt [2]int

func (e errAt) Error() string { return "concurrent query result diverged" }

// Probe-form validation: a query that reads unit attributes is rejected
// by the wrong entry points with an actionable message.
func TestQueryProbeFormValidation(t *testing.T) {
	prog := battleProg(t)
	e := newEngine(t, prog, 48, Indexed, 1, nil)

	needsUnit := compileQuery(t, `
aggregate Seen(u) := count(*) over e where e.posx >= u.posx - u.sight and e.posx <= u.posx + u.sight;`)
	if _, err := e.Query(needsUnit); err == nil || !strings.Contains(err.Error(), "QueryUnit") {
		t.Fatalf("unit-reading query accepted as world query: %v", err)
	}
	if _, err := e.QueryAt(needsUnit, 1, 2); err == nil || !strings.Contains(err.Error(), "QueryUnit") {
		t.Fatalf("sight-reading query accepted as positional query: %v", err)
	}
	if got := needsUnit.NeedsUnit(); !got {
		t.Fatal("NeedsUnit() = false for a u.sight query")
	}

	positional := compileQuery(t, `aggregate C(u) := nearestkey() as k over e;`)
	if _, err := e.Query(positional); err == nil {
		t.Fatal("nearest query accepted without a position")
	}
	if _, err := e.QueryAt(positional, 3, 4); err != nil {
		t.Fatal(err)
	}
	if positional.NeedsUnit() || !positional.NeedsPosition() {
		t.Fatal("nearest query misclassified")
	}

	world := compileQuery(t, `aggregate N(u) := count(*) over e;`)
	if _, err := e.Query(world); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(world, 1); err == nil || !strings.Contains(err.Error(), "argument") {
		t.Fatalf("arity mismatch accepted: %v", err)
	}
	if _, err := e.QueryUnit(world, 99999); err == nil || !strings.Contains(err.Error(), "no unit") {
		t.Fatalf("missing key accepted: %v", err)
	}

	if world.Name() != "N" {
		t.Fatalf("Name() = %q", world.Name())
	}
	params := compileQuery(t, `aggregate P(u, a, b) := count(*) over e where e.posx >= a and e.posx <= b;`)
	if got := params.Params(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Params() = %v", got)
	}
}

// CompileQuery surfaces parse and semantic errors.
func TestCompileQueryErrors(t *testing.T) {
	for _, tc := range []struct{ src, want string }{
		{`aggregate A(u) := count(*`, ""},
		{`function main(u) { perform X(u) }`, "read-only"},
		{`aggregate A(u) := count(*) over e where Random(1) > 0;`, "Random"},
	} {
		_, err := CompileQuery(tc.src, game.Schema(), game.Consts())
		if err == nil {
			t.Fatalf("CompileQuery(%q) succeeded", tc.src)
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("CompileQuery(%q) error = %v, want %q", tc.src, err, tc.want)
		}
	}
}

// Per-query cache state must not grow without bound when callers compile
// queries ad hoc: entries unused for a few ticks are evicted, while a
// query evaluated every tick stays warm.
func TestQueryCacheEviction(t *testing.T) {
	prog := battleProg(t)
	e := newEngine(t, prog, 48, Indexed, 1, nil)
	hot := compileQuery(t, `aggregate Hot(u) := count(*) over e;`)
	for i := 0; i < 10; i++ {
		oneShot := compileQuery(t, `aggregate Once(u) := avg(e.health) over e;`)
		if _, err := e.Query(oneShot); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Query(hot); err != nil {
			t.Fatal(err)
		}
		if err := e.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	e.qmu.Lock()
	cached := len(e.queries.cache)
	_, hotAlive := e.queries.cache[hot]
	e.qmu.Unlock()
	if !hotAlive {
		t.Fatal("hot query evicted despite being evaluated every tick")
	}
	if cached > 1+queryEvictAfter+1 {
		t.Fatalf("query cache grew to %d entries; one-shot queries are not evicted", cached)
	}

	// Between ticks the cache is capped: a paused world answering
	// one-shot queries must not grow without bound.
	for i := 0; i < maxCachedQueries+20; i++ {
		oneShot := compileQuery(t, `aggregate Flood(u) := count(*) over e;`)
		if _, err := e.Query(oneShot); err != nil {
			t.Fatal(err)
		}
	}
	e.qmu.Lock()
	cached = len(e.queries.cache)
	e.qmu.Unlock()
	if cached > maxCachedQueries {
		t.Fatalf("query cache grew to %d entries without a tick (cap %d)", cached, maxCachedQueries)
	}
}
