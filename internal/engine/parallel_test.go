package engine

import (
	"fmt"
	"math"
	"testing"

	"github.com/epicscale/sgl/internal/exec"
	"github.com/epicscale/sgl/internal/game"
	"github.com/epicscale/sgl/internal/sgl/parser"
	"github.com/epicscale/sgl/internal/sgl/sem"
	"github.com/epicscale/sgl/internal/table"
)

// identicalTables reports cell-exact equality including row order: every
// cell must match bit for bit (Float64bits, so NaN and signed zero are
// compared exactly). This is the parallel executor's hard invariant — not
// "almost equal", not order-insensitive.
func identicalTables(a, b *table.Table) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := range a.Rows {
		for c := range a.Rows[i] {
			if math.Float64bits(a.Rows[i][c]) != math.Float64bits(b.Rows[i][c]) {
				return false
			}
		}
	}
	return true
}

func compileZoo(t testing.TB, src string) *sem.Program {
	t.Helper()
	script, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := sem.Check(script, game.Schema(), game.Consts())
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func runWorkers(t *testing.T, prog *sem.Program, mode Mode, workers, units, ticks int, seed uint64) *table.Table {
	t.Helper()
	e := newEngine(t, prog, units, mode, seed, func(o *Options) { o.Workers = workers })
	if err := e.Run(ticks); err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return e.Env()
}

// TestParallelMatchesSerial is the headline determinism proof: for every
// program in the script zoo, 50 ticks at Workers ∈ {1, 2, 3, 8} must
// leave an environment table byte-identical to the serial run — cell
// exact, row order included.
func TestParallelMatchesSerial(t *testing.T) {
	const units, ticks = 64, 50
	for _, zp := range exec.Zoo {
		zp := zp
		t.Run(zp.Name, func(t *testing.T) {
			prog := compileZoo(t, zp.Src)
			serial := runWorkers(t, prog, Indexed, 1, units, ticks, 7)
			for _, w := range []int{1, 2, 3, 8} {
				got := runWorkers(t, prog, Indexed, w, units, ticks, 7)
				if !identicalTables(serial, got) {
					t.Fatalf("indexed workers=%d diverged from serial after %d ticks", w, ticks)
				}
			}
			// The sharded interpreter path must honor the same contract.
			naiveSerial := runWorkers(t, prog, Naive, 1, units, ticks, 7)
			for _, w := range []int{3} {
				got := runWorkers(t, prog, Naive, w, units, ticks, 7)
				if !identicalTables(naiveSerial, got) {
					t.Fatalf("naive workers=%d diverged from serial after %d ticks", w, ticks)
				}
			}
		})
	}
}

// The battle simulation adds movement, deaths, resurrection, and the
// deferred heal aura (the Section 5.4 effect index) to the mix.
func TestParallelMatchesSerialBattle(t *testing.T) {
	prog := battleProg(t)
	const units, ticks = 90, 40
	for _, mode := range []Mode{Indexed, Naive} {
		serial := runWorkers(t, prog, mode, 1, units, ticks, 13)
		for _, w := range []int{2, 3, 8} {
			t.Run(fmt.Sprintf("%s-w%d", mode, w), func(t *testing.T) {
				got := runWorkers(t, prog, mode, w, units, ticks, 13)
				if !identicalTables(serial, got) {
					t.Fatalf("%s workers=%d diverged from serial after %d ticks", mode, w, ticks)
				}
			})
		}
	}
}

// Ablation options must compose with sharding.
func TestParallelMatchesSerialAblations(t *testing.T) {
	prog := battleProg(t)
	for _, tweak := range []struct {
		name string
		fn   func(*Options)
	}{
		{"no-area-defer", func(o *Options) { o.DisableAreaDefer = true }},
		{"no-optimizer", func(o *Options) { o.DisableOptimizer = true }},
	} {
		t.Run(tweak.name, func(t *testing.T) {
			mk := func(w int) *Engine {
				return newEngine(t, prog, 72, Indexed, 17, func(o *Options) {
					tweak.fn(o)
					o.Workers = w
				})
			}
			serial, par := mk(1), mk(4)
			if err := serial.Run(25); err != nil {
				t.Fatal(err)
			}
			if err := par.Run(25); err != nil {
				t.Fatal(err)
			}
			if !identicalTables(serial.Env(), par.Env()) {
				t.Fatalf("%s: workers=4 diverged from serial", tweak.name)
			}
		})
	}
}

// TestStreamingMatchesMaterializing pins the executor refactor's
// contract: the streaming pipelines and the legacy materializing path
// must leave byte-identical environments over the whole script zoo and
// the battle simulation, composed with sharding and incremental index
// maintenance — Workers ∈ {1, 4} × Incremental ∈ {off, on}.
func TestStreamingMatchesMaterializing(t *testing.T) {
	run := func(t *testing.T, prog *sem.Program, units, ticks int, seed uint64, workers int, incr, mat bool) *table.Table {
		t.Helper()
		e := newEngine(t, prog, units, Indexed, seed, func(o *Options) {
			o.Workers = workers
			o.Incremental = incr
			o.MaterializeExec = mat
		})
		if err := e.Run(ticks); err != nil {
			t.Fatalf("workers=%d incr=%v materialize=%v: %v", workers, incr, mat, err)
		}
		return e.Env()
	}
	check := func(t *testing.T, prog *sem.Program, units, ticks int, seed uint64) {
		t.Helper()
		for _, workers := range []int{1, 4} {
			for _, incr := range []bool{false, true} {
				streaming := run(t, prog, units, ticks, seed, workers, incr, false)
				materializing := run(t, prog, units, ticks, seed, workers, incr, true)
				if !identicalTables(streaming, materializing) {
					t.Fatalf("workers=%d incr=%v: streaming diverged from materializing after %d ticks",
						workers, incr, ticks)
				}
			}
		}
	}
	for _, zp := range exec.Zoo {
		zp := zp
		t.Run(zp.Name, func(t *testing.T) {
			check(t, compileZoo(t, zp.Src), 64, 30, 7)
		})
	}
	t.Run("battle", func(t *testing.T) {
		check(t, battleProg(t), 90, 30, 13)
	})
}

// Per-worker effect counters must account for every applied effect.
func TestEffectsByWorkerAccounting(t *testing.T) {
	prog := battleProg(t)
	e := newEngine(t, prog, 80, Indexed, 23, func(o *Options) { o.Workers = 4 })
	if err := e.Run(15); err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, c := range e.Stats.EffectsByWorker {
		sum += c
	}
	if e.Stats.EffectsApplied == 0 {
		t.Fatal("no effects applied in 15 ticks")
	}
	if sum != e.Stats.EffectsApplied {
		t.Fatalf("per-worker counters sum to %d, want EffectsApplied=%d", sum, e.Stats.EffectsApplied)
	}
	if len(e.Stats.EffectsByWorker) != 4 {
		t.Fatalf("want 4 worker slots, got %d", len(e.Stats.EffectsByWorker))
	}
}

// shardBounds must cover [0, n) exactly, in order, for any worker count.
func TestShardBounds(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		for _, p := range []int{1, 2, 3, 8, 100} {
			bounds := shardBounds(n, p)
			pos := 0
			for _, b := range bounds {
				if b[0] != pos || b[1] < b[0] {
					t.Fatalf("n=%d p=%d: bad bounds %v", n, p, bounds)
				}
				pos = b[1]
			}
			if pos != n {
				t.Fatalf("n=%d p=%d: bounds cover [0,%d), want [0,%d)", n, p, pos, n)
			}
			if len(bounds) > p || (n > 0 && len(bounds) > n) {
				t.Fatalf("n=%d p=%d: %d shards", n, p, len(bounds))
			}
		}
	}
}
