package engine

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/epicscale/sgl/internal/exec"
	"github.com/epicscale/sgl/internal/game"
	"github.com/epicscale/sgl/internal/geom"
)

// tortureRounds is how many tick boundaries the arrival-order torture
// spans; tortureOrigins is how many concurrent actors race each one.
const (
	tortureRounds  = 6
	tortureOrigins = 5
	tortureUnits   = 48
)

// tortureBurst is the logical command set origin k submits in round r —
// a pure function of (r, k), so the single-threaded reference and every
// randomized interleaving submit exactly the same commands. The mix
// covers every op: row edits (the common case), population changes
// (spawn/despawn, which invalidate the maintenance baseline), constant
// tunes, and commands whose apply-time rules must reject them.
func tortureBurst(r, k int) []Command {
	cmds := []Command{
		{Op: OpSet, Key: int64((7*r + 11*k) % tortureUnits), Col: "morale", Val: float64(r + k + 1)},
		{Op: OpSet, Key: int64((3*r + 5*k) % tortureUnits), Col: "health", Val: float64(10 + r)},
	}
	if (r+k)%3 == 0 {
		key := int64(9000 + r*tortureOrigins + k)
		cmds = append(cmds, Command{Op: OpSpawn,
			Row: game.NewUnit(key, k%2, game.Archer, geom.Point{X: float64(55 + r), Y: float64(40 + 2*k)})})
	}
	if (r+k)%4 == 1 {
		// Usually despawns a live unit; occasionally a key another
		// origin's earlier round already removed — a deterministic
		// apply-time rejection either way.
		cmds = append(cmds, Command{Op: OpDespawn, Key: int64((13*r + k) % tortureUnits)})
	}
	if r%3 == 2 && k == 0 {
		cmds = append(cmds, Command{Op: OpTune, Col: "_HEAL_AURA", Val: float64(2 + r)})
	}
	return cmds
}

// TestSubmitArrivalOrderTorture is the arrival-order property test for
// the sharded admission path: the same logical command set, submitted
// through K concurrent goroutines under seeded-random interleavings,
// sleeps and per-origin burst splits, must produce checkpoint bytes
// identical to single-threaded submission through the serial
// Engine.Submit path — for every zoo program and the battle simulation,
// at Workers {1,4} × Incremental {off,on}. The checkpoint covers the
// environment, every counter, the journal, the per-origin sequence
// numbers and the pending buffer, so byte equality is the whole
// "arrival order cannot reach the world" claim at once. Run under -race
// in CI, where the spectator goroutine hammering the read accessors
// during the submission storm makes the locking discipline part of the
// property.
func TestSubmitArrivalOrderTorture(t *testing.T) {
	mk := func(progName, src string, battle bool) {
		t.Run(progName, func(t *testing.T) {
			prog := battleProg(t)
			if !battle {
				prog = compileZoo(t, src)
			}
			for _, cfg := range restoreCfgs {
				tweak := func(o *Options) {
					o.Workers = cfg.workers
					o.Incremental = cfg.incremental
					o.IncrementalThreshold = 1 // always maintain: the hostile setting
				}

				// Reference: one goroutine, serial Submit, origins in
				// canonical order.
				ref := newEngine(t, prog, tortureUnits, Indexed, 9, tweak)
				for r := 0; r < tortureRounds; r++ {
					for k := 0; k < tortureOrigins; k++ {
						if err := ref.Submit(fmt.Sprintf("actor-%d", k), tortureBurst(r, k)...); err != nil {
							t.Fatalf("reference round %d actor %d: %v", r, k, err)
						}
					}
					if err := ref.Tick(); err != nil {
						t.Fatal(err)
					}
				}

				// Torture: same commands, one goroutine per origin,
				// seeded-random sub-burst splits and sleeps, a spectator
				// reading journal/pending/stats throughout. Submitters are
				// joined before each tick so WHAT was admitted per boundary
				// is deterministic; HOW it interleaved is not.
				tor := newEngine(t, prog, tortureUnits, Indexed, 9, tweak)
				sess := NewSession(tor)
				stop := make(chan struct{})
				var spect sync.WaitGroup
				spect.Add(1)
				go func() {
					defer spect.Done()
					for {
						select {
						case <-stop:
							return
						default:
							_ = sess.Journal()
							_ = sess.Pending()
							_ = sess.JournalBase()
							_ = sess.Stats()
							runtime.Gosched()
						}
					}
				}()
				seed := int64(9000 + cfg.workers*10)
				if cfg.incremental {
					seed++
				}
				for r := 0; r < tortureRounds; r++ {
					var wg sync.WaitGroup
					for k := 0; k < tortureOrigins; k++ {
						wg.Add(1)
						go func(r, k int) {
							defer wg.Done()
							rnd := rand.New(rand.NewSource(seed + int64(r*100+k)))
							burst := tortureBurst(r, k)
							origin := fmt.Sprintf("actor-%d", k)
							for len(burst) > 0 {
								n := 1 + rnd.Intn(len(burst))
								if rnd.Intn(2) == 0 {
									time.Sleep(time.Duration(rnd.Intn(40)) * time.Microsecond)
								} else {
									runtime.Gosched()
								}
								if err := sess.Submit(origin, burst[:n]...); err != nil {
									t.Errorf("torture round %d actor %d: %v", r, k, err)
									return
								}
								burst = burst[n:]
							}
						}(r, k)
					}
					wg.Wait()
					if err := sess.Step(1); err != nil {
						t.Fatal(err)
					}
				}
				close(stop)
				spect.Wait()
				if t.Failed() {
					t.FailNow()
				}

				// One command left unstamped in the sharded queues: the
				// pre-checkpoint drain must stamp it exactly like the
				// serial path stamped its pending twin.
				late := Command{Op: OpSet, Key: 1, Col: "morale", Val: 42}
				if err := ref.Submit("late", late); err != nil {
					t.Fatal(err)
				}
				if err := sess.Submit("late", late); err != nil {
					t.Fatal(err)
				}

				var refBytes, torBytes bytes.Buffer
				if err := ref.Checkpoint(&refBytes); err != nil {
					t.Fatal(err)
				}
				if err := sess.Checkpoint(&torBytes); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(refBytes.Bytes(), torBytes.Bytes()) {
					t.Fatalf("w=%d inc=%v: concurrent sharded submission diverged from single-threaded submission",
						cfg.workers, cfg.incremental)
				}
				if ref.Stats.CommandsApplied == 0 || ref.Stats.CommandsRejected == 0 {
					t.Fatalf("torture scenario exercised no apply/reject path (applied %d, rejected %d)",
						ref.Stats.CommandsApplied, ref.Stats.CommandsRejected)
				}
			}
		})
	}
	for _, zp := range exec.Zoo {
		mk(zp.Name, zp.Src, false)
	}
	mk("battle-sim", "", true)
}

// Submissions racing a running clock must be admitted or cleanly
// refused, never lost or torn: admission touches only immutable engine
// state and its own queues, so it is safe concurrent with Tick itself.
// No byte comparison here — which boundary each batch lands before is
// genuinely nondeterministic — but every acknowledged command must be in
// the journal once the dust settles, exactly once.
func TestSubmitDuringStepRace(t *testing.T) {
	prog := battleProg(t)
	e := newEngine(t, prog, tortureUnits, Indexed, 4, nil)
	sess := NewSession(e)
	const actors, perActor = 4, 50
	var accepted [actors]int
	var wg sync.WaitGroup
	for k := 0; k < actors; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			origin := fmt.Sprintf("racer-%d", k)
			for i := 0; i < perActor; i++ {
				err := sess.Submit(origin, Command{Op: OpSet, Key: int64(i % tortureUnits), Col: "morale", Val: float64(i)})
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				accepted[k]++
				if i%8 == 0 {
					runtime.Gosched()
				}
			}
		}(k)
	}
	stepErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if err := sess.Step(1); err != nil {
				stepErr <- err
				return
			}
		}
	}()
	wg.Wait()
	select {
	case err := <-stepErr:
		t.Fatal(err)
	default:
	}
	if err := sess.Step(1); err != nil { // final drain boundary
		t.Fatal(err)
	}
	want := 0
	for _, n := range accepted {
		want += n
	}
	if got := len(sess.Journal()); got != want {
		t.Fatalf("journal has %d entries, %d commands were acknowledged", got, want)
	}
}

// The admission budget (queued + pending ≤ MaxPendingCommands) is
// enforced atomically across the sharded queues, and released when the
// tick boundary drains and applies the buffer.
func TestShardedBackpressure(t *testing.T) {
	prog := battleProg(t)
	e := newEngine(t, prog, tortureUnits, Indexed, 6, nil)
	sess := NewSession(e)
	batch := make([]Command, 512)
	for i := range batch {
		batch[i] = Command{Op: OpSet, Key: int64(i % tortureUnits), Col: "morale", Val: 1}
	}
	queued := 0
	for queued+len(batch) <= MaxPendingCommands {
		if err := sess.Submit("flood", batch...); err != nil {
			t.Fatalf("under the limit (%d queued): %v", queued, err)
		}
		queued += len(batch)
	}
	if err := sess.Submit("flood", batch...); err == nil {
		t.Fatalf("submission past MaxPendingCommands (%d queued) accepted", queued)
	}
	if err := sess.Step(1); err != nil {
		t.Fatal(err)
	}
	if err := sess.Submit("flood", batch...); err != nil {
		t.Fatalf("budget not released by the tick boundary: %v", err)
	}
}

// An acknowledged Submit must be part of the next checkpoint even if no
// tick boundary intervened: Checkpoint drains the sharded queues into
// the stamped pending buffer before serializing (the engine-level twin
// of the server's restore-survival test).
func TestShardedAdmissionCheckpointDrain(t *testing.T) {
	prog := battleProg(t)
	e := newEngine(t, prog, tortureUnits, Indexed, 8, nil)
	sess := NewSession(e)
	if err := sess.Step(3); err != nil {
		t.Fatal(err)
	}
	if err := sess.Submit("saver", Command{Op: OpSet, Key: 2, Col: "health", Val: 3}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sess.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Open(bytes.NewReader(buf.Bytes()), game.NewMechanics(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	pend := restored.Pending()
	if len(pend) != 1 || pend[0].Origin != "saver" || pend[0].Tick != 3 {
		t.Fatalf("restored pending = %+v, want the acknowledged command stamped at tick 3", pend)
	}
	if got := len(restored.Journal()); got != 1 {
		t.Fatalf("restored journal has %d entries, want 1", got)
	}
}

// BenchmarkSubmitSharded measures command admission throughput through
// the lock-free sharded path at increasing actor counts; its twin
// BenchmarkSubmitLocked routes the same traffic through the session
// writer lock the pre-sharding Submit used. On multi-core hardware the
// sharded path scales with actors while the locked path stays flat; on
// a single core the comparison still shows the sharded path's absence
// of cross-actor serialization (no lock convoy). Each op is one
// admitted command; ticks to drain full buffers are included, as they
// would be in production.
func BenchmarkSubmitSharded(b *testing.B) {
	for _, actors := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("actors=%d", actors), func(b *testing.B) {
			benchSubmit(b, actors, true)
		})
	}
}

// BenchmarkSubmitLocked is the writer-lock baseline for
// BenchmarkSubmitSharded.
func BenchmarkSubmitLocked(b *testing.B) {
	for _, actors := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("actors=%d", actors), func(b *testing.B) {
			benchSubmit(b, actors, false)
		})
	}
}

func benchSubmit(b *testing.B, actors int, sharded bool) {
	prog := battleProg(b)
	e := newEngine(b, prog, 64, Indexed, 11, nil)
	sess := NewSession(e)
	var stepMu sync.Mutex
	drain := func() error {
		stepMu.Lock()
		defer stepMu.Unlock()
		return sess.Step(1)
	}
	submit := func(origin string, cmd Command) error {
		if sharded {
			return sess.Submit(origin, cmd)
		}
		// The pre-sharding discipline: every submitter serializes on the
		// session writer lock.
		sess.mu.Lock()
		defer sess.mu.Unlock()
		return e.Submit(origin, cmd)
	}
	per := b.N/actors + 1
	b.ResetTimer()
	var wg sync.WaitGroup
	for a := 0; a < actors; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			origin := fmt.Sprintf("actor-%d", a)
			cmd := Command{Op: OpSet, Key: int64(a), Col: "morale", Val: 1}
			for i := 0; i < per; i++ {
				for {
					err := submit(origin, cmd)
					if err == nil {
						break
					}
					if derr := drain(); derr != nil {
						b.Error(derr)
						return
					}
				}
			}
		}(a)
	}
	wg.Wait()
}
