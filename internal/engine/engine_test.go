package engine

import (
	"testing"

	"github.com/epicscale/sgl/internal/game"
	"github.com/epicscale/sgl/internal/sgl/sem"
	"github.com/epicscale/sgl/internal/table"
	"github.com/epicscale/sgl/internal/workload"
)

func battleProg(t testing.TB) *sem.Program {
	t.Helper()
	prog, err := game.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func newEngine(t testing.TB, prog *sem.Program, n int, mode Mode, seed uint64, tweak func(*Options)) *Engine {
	t.Helper()
	spec := workload.Spec{Units: n, Density: 0.01, Seed: seed, Formation: workload.BattleLines}
	opts := Options{
		Mode:         mode,
		Categoricals: game.Categoricals(),
		Seed:         seed,
		Side:         spec.Side(),
		MoveSpeed:    1,
	}
	if tweak != nil {
		tweak(&opts)
	}
	e, err := New(prog, game.NewMechanics(), workload.Generate(spec), opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// The paper's central correctness claim: the indexed engine is an
// optimization, not a different game. Both engines must produce identical
// environments tick-for-tick.
func TestNaiveAndIndexedAgreeOverManyTicks(t *testing.T) {
	prog := battleProg(t)
	for _, seed := range []uint64{1, 2} {
		naive := newEngine(t, prog, 90, Naive, seed, nil)
		indexed := newEngine(t, prog, 90, Indexed, seed, nil)
		for tick := 0; tick < 12; tick++ {
			if err := naive.Tick(); err != nil {
				t.Fatalf("naive tick %d: %v", tick, err)
			}
			if err := indexed.Tick(); err != nil {
				t.Fatalf("indexed tick %d: %v", tick, err)
			}
			if !naive.Env().AlmostEqualContents(indexed.Env(), 1e-9) {
				t.Fatalf("seed %d: engines diverged at tick %d", seed, tick)
			}
		}
	}
}

// The Section 5.4 deferred area path must not change outcomes either.
func TestAreaDeferMatchesDirect(t *testing.T) {
	prog := battleProg(t)
	deferred := newEngine(t, prog, 72, Indexed, 5, nil)
	direct := newEngine(t, prog, 72, Indexed, 5, func(o *Options) { o.DisableAreaDefer = true })
	for tick := 0; tick < 10; tick++ {
		if err := deferred.Tick(); err != nil {
			t.Fatal(err)
		}
		if err := direct.Tick(); err != nil {
			t.Fatal(err)
		}
		if !deferred.Env().AlmostEqualContents(direct.Env(), 1e-9) {
			t.Fatalf("area defer diverged at tick %d", tick)
		}
	}
}

// The optimizer rewrites must be semantics-preserving inside the engine.
func TestOptimizerPreservesEngineSemantics(t *testing.T) {
	prog := battleProg(t)
	opt := newEngine(t, prog, 60, Indexed, 9, nil)
	raw := newEngine(t, prog, 60, Indexed, 9, func(o *Options) { o.DisableOptimizer = true })
	for tick := 0; tick < 8; tick++ {
		if err := opt.Tick(); err != nil {
			t.Fatal(err)
		}
		if err := raw.Tick(); err != nil {
			t.Fatal(err)
		}
		if !opt.Env().AlmostEqualContents(raw.Env(), 1e-9) {
			t.Fatalf("optimizer changed semantics at tick %d", tick)
		}
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	prog := battleProg(t)
	a := newEngine(t, prog, 60, Indexed, 11, nil)
	b := newEngine(t, prog, 60, Indexed, 11, nil)
	if err := a.Run(10); err != nil {
		t.Fatal(err)
	}
	if err := b.Run(10); err != nil {
		t.Fatal(err)
	}
	if !a.Env().EqualContents(b.Env()) {
		t.Fatal("same seed must reproduce the same battle exactly")
	}
	c := newEngine(t, prog, 60, Indexed, 12, nil)
	if err := c.Run(10); err != nil {
		t.Fatal(err)
	}
	if a.Env().EqualContents(c.Env()) {
		t.Fatal("different seeds should diverge")
	}
}

// Engine invariants over a longer run.
func TestEngineInvariants(t *testing.T) {
	prog := battleProg(t)
	e := newEngine(t, prog, 120, Indexed, 3, nil)
	s := game.Schema()
	side := (workload.Spec{Units: 120, Density: 0.01}).Side()
	for tick := 0; tick < 25; tick++ {
		if err := e.Tick(); err != nil {
			t.Fatal(err)
		}
		env := e.Env()
		if env.Len() != 120 {
			t.Fatalf("population changed: %d (resurrection rule broken)", env.Len())
		}
		occupied := map[[2]int]int{}
		for _, row := range env.Rows {
			h := row[s.MustCol("health")]
			if h <= 0 {
				t.Fatalf("dead unit in environment at tick %d", tick)
			}
			if h > row[s.MustCol("maxhealth")] {
				t.Fatalf("health above max at tick %d: %v", tick, h)
			}
			if row[s.MustCol("cooldown")] < 0 {
				t.Fatal("negative cooldown")
			}
			x, y := row[s.MustCol("posx")], row[s.MustCol("posy")]
			if x < 0 || x >= side || y < 0 || y >= side {
				t.Fatalf("unit out of bounds: %v,%v (side %v)", x, y, side)
			}
			// Effect columns must be back at game defaults after the tick.
			for _, c := range []string{"weaponused", "movevect_x", "movevect_y", "damage", "inaura"} {
				if row[s.MustCol(c)] != 0 {
					t.Fatalf("effect column %s not reset: %v", c, row[s.MustCol(c)])
				}
			}
			sq := [2]int{int(x), int(y)}
			occupied[sq]++
			if occupied[sq] > 1 {
				t.Fatalf("collision: two units in square %v at tick %d", sq, tick)
			}
		}
	}
	if e.Stats.Moves == 0 {
		t.Error("nobody moved in 25 ticks; scripts inert?")
	}
	if e.Stats.EffectsApplied == 0 {
		t.Error("no effects applied in 25 ticks")
	}
}

func TestCombatActuallyHappens(t *testing.T) {
	prog := battleProg(t)
	// Dense arena (4%) so the armies make contact quickly.
	spec := workload.Spec{Units: 120, Density: 0.04, Seed: 21, Formation: workload.BattleLines}
	opts := Options{
		Mode:         Indexed,
		Categoricals: game.Categoricals(),
		Seed:         21,
		Side:         spec.Side(),
		MoveSpeed:    1,
	}
	e, err := New(prog, game.NewMechanics(), workload.Generate(spec), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(60); err != nil {
		t.Fatal(err)
	}
	if e.Stats.Deaths == 0 {
		t.Error("no deaths in 30 ticks of a battle-lines engagement")
	}
	if e.Stats.IndexStats.TreeProbes == 0 {
		t.Error("indexed engine made no range-tree probes")
	}
	if e.Stats.IndexStats.Sweeps == 0 {
		t.Error("indexed engine ran no sweeps (weakest-in-reach should batch)")
	}
}

func TestNewRejectsBadInputs(t *testing.T) {
	prog := battleProg(t)
	env := workload.Generate(workload.Spec{Units: 10, Density: 0.01, Seed: 1})
	dup := env.Clone()
	dup.Rows[1][dup.Schema.KeyCol()] = dup.Rows[0][dup.Schema.KeyCol()]
	if _, err := New(prog, game.NewMechanics(), dup, Options{Side: 10, MoveSpeed: 1}); err == nil {
		t.Fatal("duplicate keys should be rejected")
	}
	noPos := table.MustSchema(table.Attr{Name: "key", Kind: table.Const})
	_ = noPos // schema mismatch is caught by sem long before the engine
}

func TestEngineModeString(t *testing.T) {
	if Naive.String() != "naive" || Indexed.String() != "indexed" {
		t.Fatal("mode labels wrong")
	}
}

func BenchmarkTickNaive500(b *testing.B)   { benchTick(b, Naive, 500) }
func BenchmarkTickIndexed500(b *testing.B) { benchTick(b, Indexed, 500) }

func benchTick(b *testing.B, mode Mode, n int) {
	prog := battleProg(b)
	// Serial pin: keep these baseline numbers machine-independent.
	e := newEngine(b, prog, n, mode, 42, func(o *Options) { o.Workers = 1 })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Tick(); err != nil {
			b.Fatal(err)
		}
	}
}
