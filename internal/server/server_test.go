package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/epicscale/sgl/internal/engine"
	"github.com/epicscale/sgl/internal/game"
	"github.com/epicscale/sgl/internal/metrics"
	"github.com/epicscale/sgl/internal/table"
	"github.com/epicscale/sgl/internal/workload"
)

// newTestServer spins up a server over a temp data dir.
func newTestServer(t *testing.T) (*httptest.Server, *Registry) {
	t.Helper()
	ts, _, reg := newTestServerFull(t)
	return ts, reg
}

// newTestServerWithDataDir is newTestServer exposing the data dir.
func newTestServerWithDataDir(t *testing.T) (*httptest.Server, string) {
	t.Helper()
	ts, dir, _ := newTestServerFull(t)
	return ts, dir
}

func newTestServerFull(t *testing.T) (*httptest.Server, string, *Registry) {
	t.Helper()
	reg := NewRegistry()
	dir := t.TempDir()
	srv := New(reg, dir)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		reg.Close()
	})
	return ts, dir, reg
}

// try issues a JSON request and decodes the response body into out
// (skipped when nil), returning the status code; transport and decode
// problems come back as errors. Safe to call from any goroutine —
// unlike do, which may t.Fatal and so is only valid on the test
// goroutine (FailNow does not work from others).
func try(method, url string, body, out any) (int, error) {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return 0, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, fmt.Errorf("decode %s %s response %q: %w", method, url, data, err)
		}
	}
	return resp.StatusCode, nil
}

// do issues a JSON request and decodes the response body into out
// (skipped when nil), returning the status code. Test-goroutine only
// (it t.Fatals on transport errors); goroutines use try.
func do(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decode %s %s response %q: %v", method, url, data, err)
		}
	}
	return resp.StatusCode
}

// create makes a small world and fails the test on error.
func create(t *testing.T, base, name string, extra func(*CreateRequest)) Status {
	t.Helper()
	req := CreateRequest{Name: name, Units: 64, Density: 0.02, Seed: 7}
	if extra != nil {
		extra(&req)
	}
	var st Status
	if code := do(t, http.MethodPost, base+"/v1/sessions", req, &st); code != http.StatusCreated {
		t.Fatalf("create %s: status %d", name, code)
	}
	return st
}

func TestCreateListGetDelete(t *testing.T) {
	ts, _ := newTestServer(t)
	st := create(t, ts.URL, "alpha", nil)
	if st.Name != "alpha" || st.Units != 64 || st.Tick != 0 {
		t.Errorf("created status = %+v", st)
	}

	var list []Status
	if code := do(t, http.MethodGet, ts.URL+"/v1/sessions", nil, &list); code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
	if len(list) != 1 || list[0].Name != "alpha" {
		t.Errorf("list = %+v", list)
	}

	var got Status
	if code := do(t, http.MethodGet, ts.URL+"/v1/sessions/alpha", nil, &got); code != http.StatusOK {
		t.Fatalf("get: %d", code)
	}
	if got.Name != "alpha" {
		t.Errorf("get = %+v", got)
	}

	if code := do(t, http.MethodDelete, ts.URL+"/v1/sessions/alpha", nil, nil); code != http.StatusOK {
		t.Fatalf("delete: %d", code)
	}
	if code := do(t, http.MethodGet, ts.URL+"/v1/sessions/alpha", nil, nil); code != http.StatusNotFound {
		t.Errorf("get after delete: %d, want 404", code)
	}
}

func TestCreateRejectsBadScript(t *testing.T) {
	ts, _ := newTestServer(t)
	var e struct {
		Error string `json:"error"`
	}
	code := do(t, http.MethodPost, ts.URL+"/v1/sessions",
		CreateRequest{Name: "bad", Units: 10, Script: "function main(u) { perform Undefined(u) }"}, &e)
	if code != http.StatusBadRequest {
		t.Fatalf("bad script: status %d", code)
	}
	if !strings.Contains(e.Error, "Undefined") {
		t.Errorf("error should name the problem, got %q", e.Error)
	}

	// Syntax error path too.
	code = do(t, http.MethodPost, ts.URL+"/v1/sessions",
		CreateRequest{Name: "bad2", Units: 10, Script: "aggregate ???"}, &e)
	if code != http.StatusBadRequest {
		t.Errorf("syntax error: status %d", code)
	}
}

func TestCreateValidation(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []CreateRequest{
		{Name: ""},                                // empty name
		{Name: "../escape"},                       // path-like name
		{Name: "a b"},                             // space
		{Name: "ok", Formation: "diagonal"},       // bad formation
		{Name: "ok", Mode: "quantum"},             // bad mode
		{Name: "ok", Restore: "../../etc/passwd"}, // path traversal
		{Name: "ok", Units: MaxWorldUnits + 1},    // oversized army (OOM guard)
		{Name: "ok", Units: 64, Density: 1},       // unplaceable density (hang guard)
	}
	for _, req := range cases {
		if code := do(t, http.MethodPost, ts.URL+"/v1/sessions", req, nil); code != http.StatusBadRequest {
			t.Errorf("create %+v: status %d, want 400", req, code)
		}
	}
	// Unknown JSON fields are rejected (catches misspelled knobs).
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json",
		strings.NewReader(`{"name":"x","wrokers":4}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", resp.StatusCode)
	}
}

func TestDuplicateCreateConflicts(t *testing.T) {
	ts, _ := newTestServer(t)
	create(t, ts.URL, "dup", nil)
	code := do(t, http.MethodPost, ts.URL+"/v1/sessions", CreateRequest{Name: "dup", Units: 64}, nil)
	if code != http.StatusConflict {
		t.Errorf("duplicate create: status %d, want 409", code)
	}
}

func TestUnknownSessionIs404(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, c := range []struct{ method, path string }{
		{http.MethodGet, "/v1/sessions/ghost"},
		{http.MethodDelete, "/v1/sessions/ghost"},
		{http.MethodPost, "/v1/sessions/ghost/step"},
		{http.MethodPost, "/v1/sessions/ghost/run"},
		{http.MethodPost, "/v1/sessions/ghost/stop"},
		{http.MethodPost, "/v1/sessions/ghost/query"},
		{http.MethodPost, "/v1/sessions/ghost/checkpoint"},
		{http.MethodGet, "/v1/sessions/ghost/checkpoint"},
	} {
		var body any
		if c.method == http.MethodPost {
			body = map[string]any{}
		}
		if code := do(t, c.method, ts.URL+c.path, body, nil); code != http.StatusNotFound {
			t.Errorf("%s %s: status %d, want 404", c.method, c.path, code)
		}
	}
}

func TestStepAdvancesTicks(t *testing.T) {
	ts, _ := newTestServer(t)
	create(t, ts.URL, "w", nil)
	var st Status
	if code := do(t, http.MethodPost, ts.URL+"/v1/sessions/w/step", StepRequest{Ticks: 5}, &st); code != http.StatusOK {
		t.Fatalf("step: %d", code)
	}
	if st.Tick != 5 {
		t.Errorf("tick after step 5 = %d", st.Tick)
	}
	if code := do(t, http.MethodPost, ts.URL+"/v1/sessions/w/step", StepRequest{Ticks: 0}, nil); code != http.StatusBadRequest {
		t.Errorf("step 0: status %d, want 400", code)
	}
	if code := do(t, http.MethodPost, ts.URL+"/v1/sessions/w/step", StepRequest{Ticks: -3}, nil); code != http.StatusBadRequest {
		t.Errorf("step -3: status %d, want 400", code)
	}
	if code := do(t, http.MethodPost, ts.URL+"/v1/sessions/w/step", StepRequest{Ticks: maxStepTicks + 1}, nil); code != http.StatusBadRequest {
		t.Errorf("step over cap: status %d, want 400", code)
	}
}

func TestRunStopClock(t *testing.T) {
	ts, _ := newTestServer(t)
	create(t, ts.URL, "clock", nil)
	var st Status
	if code := do(t, http.MethodPost, ts.URL+"/v1/sessions/clock/run", RunRequest{TickRate: 0}, &st); code != http.StatusOK {
		t.Fatalf("run: %d", code)
	}
	if !st.Running {
		t.Error("world should be running after /run")
	}
	// Step while the clock runs must conflict, and a second /run too.
	if code := do(t, http.MethodPost, ts.URL+"/v1/sessions/clock/step", StepRequest{Ticks: 1}, nil); code != http.StatusConflict {
		t.Errorf("step while running: %d, want 409", code)
	}
	if code := do(t, http.MethodPost, ts.URL+"/v1/sessions/clock/run", RunRequest{TickRate: 5}, nil); code != http.StatusConflict {
		t.Errorf("run while running: %d, want 409", code)
	}
	// The uncapped clock must make progress.
	deadline := time.Now().Add(5 * time.Second)
	for {
		do(t, http.MethodGet, ts.URL+"/v1/sessions/clock", nil, &st)
		if st.Tick > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("clock made no progress")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if code := do(t, http.MethodPost, ts.URL+"/v1/sessions/clock/stop", map[string]any{}, &st); code != http.StatusOK {
		t.Fatalf("stop: %d", code)
	}
	if st.Running {
		t.Error("world should be stopped after /stop")
	}
	// Stopping again is a no-op, and stepping works again.
	if code := do(t, http.MethodPost, ts.URL+"/v1/sessions/clock/stop", map[string]any{}, nil); code != http.StatusOK {
		t.Errorf("double stop should be OK")
	}
	if code := do(t, http.MethodPost, ts.URL+"/v1/sessions/clock/step", StepRequest{Ticks: 1}, nil); code != http.StatusOK {
		t.Errorf("step after stop should work")
	}
}

const testCountQuery = `aggregate Pop(u) := count(*) as n, sum(e.health) as hp over e;`

func TestQueryForms(t *testing.T) {
	ts, _ := newTestServer(t)
	create(t, ts.URL, "q", nil)
	do(t, http.MethodPost, ts.URL+"/v1/sessions/q/step", StepRequest{Ticks: 2}, nil)

	// World query.
	var qr QueryResponse
	if code := do(t, http.MethodPost, ts.URL+"/v1/sessions/q/query",
		QueryRequest{Src: testCountQuery}, &qr); code != http.StatusOK {
		t.Fatalf("world query: %d", code)
	}
	if qr.Name != "Pop" || len(qr.Values) != 2 || qr.Values[0] != 64 || qr.Tick != 2 {
		t.Errorf("world query = %+v", qr)
	}
	if qr.Outputs[0] != "n" || qr.Outputs[1] != "hp" {
		t.Errorf("outputs = %v", qr.Outputs)
	}

	// Positional query, indexed vs scan must agree.
	posQuery := `
aggregate Near(u, r) :=
  count(*)
  over e where e.posx >= u.posx - r and e.posx <= u.posx + r
    and e.posy >= u.posy - r and e.posy <= u.posy + r;`
	x, y := 10.0, 10.0
	var idx, scan QueryResponse
	if code := do(t, http.MethodPost, ts.URL+"/v1/sessions/q/query",
		QueryRequest{Src: posQuery, X: &x, Y: &y, Args: []float64{8}}, &idx); code != http.StatusOK {
		t.Fatalf("positional query: %d", code)
	}
	if code := do(t, http.MethodPost, ts.URL+"/v1/sessions/q/query",
		QueryRequest{Src: posQuery, X: &x, Y: &y, Args: []float64{8}, Scan: true}, &scan); code != http.StatusOK {
		t.Fatalf("scan query: %d", code)
	}
	if idx.Values[0] != scan.Values[0] {
		t.Errorf("indexed %v != scan %v", idx.Values, scan.Values)
	}

	// Unit query through a live unit's eyes.
	unit := int64(0)
	unitQuery := `
aggregate Foes(u) := count(*) over e where e.player <> u.player;`
	var ur QueryResponse
	if code := do(t, http.MethodPost, ts.URL+"/v1/sessions/q/query",
		QueryRequest{Src: unitQuery, Unit: &unit}, &ur); code != http.StatusOK {
		t.Fatalf("unit query: %d", code)
	}
	if ur.Values[0] != 32 {
		t.Errorf("unit query foes = %v, want 32", ur.Values)
	}
}

func TestQueryRejections(t *testing.T) {
	ts, _ := newTestServer(t)
	create(t, ts.URL, "qr", nil)
	x, y := 1.0, 2.0
	unit := int64(0)
	ghost := int64(10_000)
	cases := []struct {
		name string
		req  QueryRequest
	}{
		{"empty src", QueryRequest{}},
		{"action in query", QueryRequest{Src: `action A(u) := on e where e.key = u.key set damage = 1;`}},
		{"random in query", QueryRequest{Src: `aggregate R(u) := sum(Random(1)) over e;`}},
		{"syntax error", QueryRequest{Src: `aggregate ???`}},
		{"arg count mismatch", QueryRequest{Src: testCountQuery, Args: []float64{1, 2}}},
		{"x without y", QueryRequest{Src: testCountQuery, X: &x}},
		{"unit and position", QueryRequest{Src: testCountQuery, X: &x, Y: &y, Unit: &unit}},
		{"unknown unit", QueryRequest{Src: `aggregate F(u) := count(*) over e where e.player <> u.player;`, Unit: &ghost}},
	}
	for _, c := range cases {
		var e struct {
			Error string `json:"error"`
		}
		if code := do(t, http.MethodPost, ts.URL+"/v1/sessions/qr/query", c.req, &e); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (err %q)", c.name, code, e.Error)
		}
	}
}

func TestQueryCompileOnce(t *testing.T) {
	ts, reg := newTestServer(t)
	create(t, ts.URL, "cc", nil)
	w, _ := reg.Get("cc")
	q1, _, err := w.CompiledQuery(testCountQuery)
	if err != nil {
		t.Fatal(err)
	}
	q2, _, err := w.CompiledQuery(testCountQuery)
	if err != nil {
		t.Fatal(err)
	}
	if q1 != q2 {
		t.Error("same source should return the identical compiled query (fan-out sharing)")
	}
}

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	ts, _ := newTestServer(t)
	create(t, ts.URL, "src", func(r *CreateRequest) { r.Seed = 11 })
	do(t, http.MethodPost, ts.URL+"/v1/sessions/src/step", StepRequest{Ticks: 10}, nil)

	var ck CheckpointResponse
	if code := do(t, http.MethodPost, ts.URL+"/v1/sessions/src/checkpoint", CheckpointRequest{File: "mig.ckpt"}, &ck); code != http.StatusOK {
		t.Fatalf("checkpoint: %d", code)
	}
	if ck.File != "mig.ckpt" || ck.Tick != 10 {
		t.Errorf("checkpoint response = %+v", ck)
	}

	// Restore into a new session with different Workers (the migration
	// move; Workers is both determinism- and stats-neutral, so even the
	// checkpoint bytes must match), step both to the same tick, compare.
	var st Status
	if code := do(t, http.MethodPost, ts.URL+"/v1/sessions",
		CreateRequest{Name: "dst", Restore: "mig.ckpt", Workers: 2}, &st); code != http.StatusCreated {
		t.Fatalf("restore create: %d", code)
	}
	if st.Tick != 10 {
		t.Errorf("restored tick = %d, want 10", st.Tick)
	}
	do(t, http.MethodPost, ts.URL+"/v1/sessions/src/step", StepRequest{Ticks: 7}, nil)
	do(t, http.MethodPost, ts.URL+"/v1/sessions/dst/step", StepRequest{Ticks: 7}, nil)

	a := fetchCheckpoint(t, ts.URL, "src")
	b := fetchCheckpoint(t, ts.URL, "dst")
	if !bytes.Equal(a, b) {
		t.Error("migrated world diverged from the original")
	}

	// Restoring under Incremental maintenance changes the serialized
	// maintenance counters (they are measurement state), but the game
	// outcome must still match exactly.
	var inc Status
	if code := do(t, http.MethodPost, ts.URL+"/v1/sessions",
		CreateRequest{Name: "inc", Restore: "mig.ckpt", Incremental: true}, &inc); code != http.StatusCreated {
		t.Fatalf("incremental restore: %d", code)
	}
	do(t, http.MethodPost, ts.URL+"/v1/sessions/inc/step", StepRequest{Ticks: 7}, nil)
	var want, got Status
	do(t, http.MethodGet, ts.URL+"/v1/sessions/src", nil, &want)
	do(t, http.MethodGet, ts.URL+"/v1/sessions/inc", nil, &got)
	if got.Tick != want.Tick || got.Deaths != want.Deaths || got.Moves != want.Moves {
		t.Errorf("incremental migration diverged: got %+v, want %+v", got, want)
	}
}

// fetchCheckpoint streams a world's checkpoint bytes over HTTP.
func fetchCheckpoint(t *testing.T, base, name string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/sessions/" + name + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream checkpoint %s: %d", name, resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestCheckpointOfSteppingSession(t *testing.T) {
	ts, _ := newTestServer(t)
	create(t, ts.URL, "live", nil)
	if code := do(t, http.MethodPost, ts.URL+"/v1/sessions/live/run", RunRequest{TickRate: 0}, nil); code != http.StatusOK {
		t.Fatal("run failed")
	}
	// Checkpoint repeatedly while the clock free-runs: every snapshot
	// must be consistent (restorable), and ticks must be monotone.
	var lastTick int64 = -1
	for i := 0; i < 5; i++ {
		var ck CheckpointResponse
		file := fmt.Sprintf("live-%d.ckpt", i)
		if code := do(t, http.MethodPost, ts.URL+"/v1/sessions/live/checkpoint", CheckpointRequest{File: file}, &ck); code != http.StatusOK {
			t.Fatalf("checkpoint %d: %d", i, code)
		}
		if ck.Tick < lastTick {
			t.Errorf("checkpoint ticks went backwards: %d after %d", ck.Tick, lastTick)
		}
		lastTick = ck.Tick
		name := fmt.Sprintf("resurrect-%d", i)
		var st Status
		if code := do(t, http.MethodPost, ts.URL+"/v1/sessions",
			CreateRequest{Name: name, Restore: file}, &st); code != http.StatusCreated {
			t.Fatalf("restore of live checkpoint %d failed: %d", i, code)
		}
	}
	do(t, http.MethodPost, ts.URL+"/v1/sessions/live/stop", map[string]any{}, nil)
}

func TestConcurrentCreateDeleteRaces(t *testing.T) {
	ts, reg := newTestServer(t)
	// Hammer the same names from many goroutines: creates either succeed
	// (201) or conflict (409), deletes either succeed (200) or miss
	// (404); nothing else, and the registry stays consistent.
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("race-%d", g%3) // 3 contested names
			for i := 0; i < 8; i++ {
				code, err := try(http.MethodPost, ts.URL+"/v1/sessions",
					CreateRequest{Name: name, Units: 16, Density: 0.05}, nil)
				if err != nil {
					t.Error(err)
					return
				}
				if code != http.StatusCreated && code != http.StatusConflict {
					t.Errorf("racy create: status %d", code)
				}
				code, err = try(http.MethodDelete, ts.URL+"/v1/sessions/"+name, nil, nil)
				if err != nil {
					t.Error(err)
					return
				}
				if code != http.StatusOK && code != http.StatusNotFound {
					t.Errorf("racy delete: status %d", code)
				}
			}
		}(g)
	}
	wg.Wait()
	// Registry invariant: list is well-formed and every listed world Gets.
	for _, st := range reg.List() {
		if _, ok := reg.Get(st.Name); !ok {
			t.Errorf("listed world %q not gettable", st.Name)
		}
	}
}

// Regression: a vanishingly small tick rate must behave as nearly
// paused, not overflow the period math into a negative duration and
// busy-loop at full speed.
func TestTinyTickRateDoesNotBusyLoop(t *testing.T) {
	reg := NewRegistry()
	w, err := reg.Create("slow", WorldSpec{Units: 16, Density: 0.05, Mode: engine.Indexed})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Delete("slow")
	if err := w.StartClock(1e-12); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)
	w.StopClock()
	// The loop ticks once before its first wait; anything more means the
	// pacing branch never engaged.
	if got := w.Session().Tick(); got > 1 {
		t.Errorf("tiny tick rate ran %d ticks in 150ms (busy loop)", got)
	}
}

// Regression: a StartClock racing Delete must never leave an orphaned
// clock goroutine (Delete marks the world, then stops; StartClock on a
// deleted world refuses).
func TestStartClockAfterDeleteRefused(t *testing.T) {
	reg := NewRegistry()
	w, err := reg.Create("gone", WorldSpec{Units: 16, Density: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if !reg.Delete("gone") {
		t.Fatal("delete failed")
	}
	if err := w.StartClock(0); err == nil {
		w.StopClock()
		t.Fatal("StartClock on a deleted world must refuse")
	}
	if w.Running() {
		t.Error("deleted world has a running clock")
	}
}

// Regression: StartClock must refuse while a synchronous Step is in
// flight — otherwise the client's "advance exactly N ticks" overlaps
// the clock and the returned tick is meaningless.
func TestStartClockDuringStepRefused(t *testing.T) {
	reg := NewRegistry()
	w, err := reg.Create("busy", WorldSpec{Units: 2000, Density: 0.02, Mode: engine.Indexed})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Delete("busy")

	// The per-tick hook is a deterministic "step is in flight" signal: it
	// runs inside Session.Step, after World.Step marked itself stepping.
	started := make(chan struct{})
	var once sync.Once
	w.Session().OnTick(func(int64, engine.RunStats) {
		once.Do(func() { close(started) })
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := w.Step(10); err != nil {
			t.Error(err)
		}
	}()
	<-started
	if err := w.StartClock(0); err == nil {
		w.StopClock()
		t.Error("clock started while a synchronous step was in flight")
	}
	<-done
	// Step finished; starting now is legitimate.
	if err := w.StartClock(0); err != nil {
		t.Fatalf("StartClock after step: %v", err)
	}
	w.StopClock()
}

// Regression: concurrent synchronous Steps serialize, so the tick
// counter matches the world's real clock instead of double-counting
// each caller's view of the shared tick delta.
func TestConcurrentStepsCountTicksExactly(t *testing.T) {
	reg := NewRegistry()
	w, err := reg.Create("acct", WorldSpec{Units: 64, Density: 0.02, Mode: engine.Indexed})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Delete("acct")
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Step(5); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := w.Session().Tick(); got != 20 {
		t.Fatalf("world tick = %d, want 20", got)
	}
	if v := reg.Metrics.Counter("sgld_ticks_total", metrics.L("session", "acct")).Value(); v != 20 {
		t.Errorf("sgld_ticks_total = %v, want 20", v)
	}
}

// A checkpoint is self-contained: the write produces exactly one file
// (no .sgl sidecar), and restoring it needs nothing but the file — the
// script travels inside the stream. A custom (non-battle) script must
// survive the round trip, which is exactly what the sidecar used to
// carry.
func TestRestoreSelfContained(t *testing.T) {
	ts, dir, registry := newTestServerFull(t)
	custom := `
aggregate N(u) := count(*) over e where e.player <> u.player;
action Tag(u, v) := on e where e.key = u.key set damage = v;
function main(u) { perform Tag(u, N(u)) }`
	orig := create(t, ts.URL, "orig", func(r *CreateRequest) { r.Script = custom })
	_ = orig
	do(t, http.MethodPost, ts.URL+"/v1/sessions/orig/step", StepRequest{Ticks: 3}, nil)
	if code := do(t, http.MethodPost, ts.URL+"/v1/sessions/orig/checkpoint", CheckpointRequest{File: "solo.ckpt"}, nil); code != http.StatusOK {
		t.Fatal("checkpoint failed")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".sgl") {
			t.Fatalf("checkpoint wrote a sidecar %q; the format is self-contained now", e.Name())
		}
	}
	var st Status
	if code := do(t, http.MethodPost, ts.URL+"/v1/sessions",
		CreateRequest{Name: "back", Restore: "solo.ckpt"}, &st); code != http.StatusCreated {
		t.Fatalf("restore of self-contained checkpoint: status %d, want 201", code)
	}
	if st.Tick != 3 {
		t.Errorf("restored tick = %d, want 3", st.Tick)
	}
	// The restored world runs the embedded custom script, not the battle
	// default: its canonical source must equal the donor world's.
	donor, _ := registry.Get("orig")
	wd, ok := registry.Get("back")
	if !ok {
		t.Fatal("restored world missing from registry")
	}
	if wd.Script() != donor.Script() {
		t.Errorf("restored world script differs from the embedded custom script")
	}
	if strings.Contains(wd.Script(), "knightMain") {
		t.Errorf("restored world fell back to the battle script")
	}
}

// Regression: a maximum-length session name must still round-trip
// through its derived "<name>.ckpt" checkpoint and back through the
// restore API.
func TestMaxLengthNameCheckpointRoundTrip(t *testing.T) {
	ts, _ := newTestServer(t)
	long := strings.Repeat("n", 120)
	create(t, ts.URL, long, nil)
	do(t, http.MethodPost, ts.URL+"/v1/sessions/"+long+"/step", StepRequest{Ticks: 2}, nil)
	var ck CheckpointResponse
	if code := do(t, http.MethodPost, ts.URL+"/v1/sessions/"+long+"/checkpoint", CheckpointRequest{}, &ck); code != http.StatusOK {
		t.Fatalf("checkpoint with derived name: %d", code)
	}
	if code := do(t, http.MethodPost, ts.URL+"/v1/sessions",
		CreateRequest{Name: "back", Restore: ck.File}, nil); code != http.StatusCreated {
		t.Errorf("restore of derived-name checkpoint: status %d, want 201", code)
	}
}

// Restoring a version-1 checkpoint (no embedded script) without an
// explicit script must fail with a pointer at the fix, and succeed once
// the script is supplied — the version policy's "v1 stays readable".
func TestRestoreV1NeedsExplicitScript(t *testing.T) {
	ts, dir, _ := newTestServerFull(t)
	// Synthesize a v1 stream by hand: the frozen v1 layout is the header
	// with 7 counters, then schema + rows, then the checksum — no script,
	// constants or input sections.
	spec := workload.Spec{Units: 64, Density: 0.02, Seed: 7, Formation: workload.BattleLines}
	army := workload.Generate(spec)
	var buf bytes.Buffer
	cw := table.NewWriter(&buf)
	cw.Bytes([]byte("SGLCKPT\n"))
	cw.U32(1) // version 1
	cw.U64(7) // seed
	cw.I64(2) // tick
	cw.U8(1)  // mode: indexed
	cw.U8(0)  // flags
	cw.F64(spec.Side())
	cw.F64(1) // movespeed
	cats := game.Categoricals()
	cw.U32(uint32(len(cats)))
	for _, c := range cats {
		cw.Str(c)
	}
	cw.I64(2) // stats: Ticks
	for i := 0; i < 6; i++ {
		cw.I64(0)
	}
	table.WriteSchema(cw, game.Schema())
	table.WriteRows(cw, army)
	cw.U64(cw.Sum())
	if err := cw.Err(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "old.ckpt"), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var e struct {
		Error string `json:"error"`
	}
	if code := do(t, http.MethodPost, ts.URL+"/v1/sessions",
		CreateRequest{Name: "v1", Restore: "old.ckpt"}, &e); code != http.StatusBadRequest {
		t.Fatalf("v1 restore without script: status %d, want 400", code)
	}
	if !strings.Contains(e.Error, "version 1") {
		t.Errorf("error should name the version, got %q", e.Error)
	}
	var st Status
	if code := do(t, http.MethodPost, ts.URL+"/v1/sessions",
		CreateRequest{Name: "v1", Restore: "old.ckpt", Script: game.Script}, &st); code != http.StatusCreated {
		t.Fatalf("v1 restore with explicit script: status %d, want 201", code)
	}
	if st.Tick != 2 {
		t.Errorf("restored v1 tick = %d, want 2", st.Tick)
	}
}

// Regression: restore requests must not silently drop fresh-world
// fields — the checkpoint carries the spec.
func TestRestoreRejectsFreshWorldFields(t *testing.T) {
	ts, _ := newTestServer(t)
	create(t, ts.URL, "donor", nil)
	do(t, http.MethodPost, ts.URL+"/v1/sessions/donor/checkpoint", CheckpointRequest{File: "d.ckpt"}, nil)
	for _, req := range []CreateRequest{
		{Name: "r1", Restore: "d.ckpt", Units: 500},
		{Name: "r2", Restore: "d.ckpt", Seed: 9},
		{Name: "r3", Restore: "d.ckpt", Mode: "naive"},
		{Name: "r4", Restore: "d.ckpt", Formation: "scattered"},
	} {
		if code := do(t, http.MethodPost, ts.URL+"/v1/sessions", req, nil); code != http.StatusBadRequest {
			t.Errorf("restore with fresh-world field %+v: status %d, want 400", req, code)
		}
	}
	// Tuning fields stay legal on restore.
	if code := do(t, http.MethodPost, ts.URL+"/v1/sessions",
		CreateRequest{Name: "ok", Restore: "d.ckpt", Workers: 2, Incremental: true}, nil); code != http.StatusCreated {
		t.Errorf("restore with tuning only: status %d, want 201", code)
	}
}

// Regression: concurrent checkpoints of the same file must each write a
// complete, restorable file (per-call temp names — a shared temp path
// once let two writers interleave).
func TestConcurrentCheckpointsStayRestorable(t *testing.T) {
	ts, _ := newTestServer(t)
	create(t, ts.URL, "cc", nil)
	do(t, http.MethodPost, ts.URL+"/v1/sessions/cc/run", RunRequest{TickRate: 0}, nil)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := try(http.MethodPost, ts.URL+"/v1/sessions/cc/checkpoint", CheckpointRequest{File: "cc.ckpt"}, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	do(t, http.MethodPost, ts.URL+"/v1/sessions/cc/stop", map[string]any{}, nil)
	if code := do(t, http.MethodPost, ts.URL+"/v1/sessions",
		CreateRequest{Name: "cc2", Restore: "cc.ckpt"}, nil); code != http.StatusCreated {
		t.Errorf("restore after concurrent checkpoints: status %d, want 201", code)
	}
}

// Regression: deleting a world removes its labeled metric series, so
// session churn cannot grow /metrics without bound.
func TestDeleteRemovesMetricSeries(t *testing.T) {
	ts, _ := newTestServer(t)
	create(t, ts.URL, "ephemeral", nil)
	do(t, http.MethodPost, ts.URL+"/v1/sessions/ephemeral/step", StepRequest{Ticks: 2}, nil)
	do(t, http.MethodDelete, ts.URL+"/v1/sessions/ephemeral", nil, nil)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if strings.Contains(string(data), `session="ephemeral"`) {
		t.Errorf("deleted session still in /metrics:\n%s", data)
	}
}

func TestDeleteStopsRunningClock(t *testing.T) {
	ts, reg := newTestServer(t)
	create(t, ts.URL, "doomed", nil)
	do(t, http.MethodPost, ts.URL+"/v1/sessions/doomed/run", RunRequest{TickRate: 0}, nil)
	w, _ := reg.Get("doomed")
	if code := do(t, http.MethodDelete, ts.URL+"/v1/sessions/doomed", nil, nil); code != http.StatusOK {
		t.Fatalf("delete running world: %d", code)
	}
	if w.Running() {
		t.Error("deleted world's clock still running")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	create(t, ts.URL, "m", nil)
	do(t, http.MethodPost, ts.URL+"/v1/sessions/m/step", StepRequest{Ticks: 3}, nil)
	do(t, http.MethodPost, ts.URL+"/v1/sessions/m/query", QueryRequest{Src: testCountQuery}, nil)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	out := string(data)
	for _, want := range []string{
		`sgld_worlds 1`,
		`sgld_sessions_created_total 1`,
		`sgld_ticks_total{session="m"} 3`,
		`sgld_queries_total{session="m"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d", resp.StatusCode)
	}
}

func TestValidNameTable(t *testing.T) {
	for name, want := range map[string]bool{
		"alpha":                  true,
		"a":                      true,
		"w0.ckpt":                true,
		"A-b_c.9":                true,
		"":                       false,
		".hidden":                false,
		"-flag":                  false,
		"..":                     false,
		"a/b":                    false,
		"a\\b":                   false,
		"a b":                    false,
		strings.Repeat("x", 121): false,
		strings.Repeat("x", 120): true,
	} {
		if got := ValidName(name); got != want {
			t.Errorf("ValidName(%q) = %v, want %v", name, got, want)
		}
	}
}

// The command endpoint end to end: inject every op, step, and observe
// the effects — a spawned unit queryable by key, a despawned one gone,
// the population reflecting both, and the journal recording all of it.
func TestCommandsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	create(t, ts.URL, "cmd", nil)

	var cr CommandsResponse
	code := do(t, http.MethodPost, ts.URL+"/v1/sessions/cmd/commands", CommandsRequest{
		Origin: "player-1",
		Commands: []WireCommand{
			{Op: "spawn", Key: 9000, Player: 0, UnitType: 1, X: 40, Y: 40},
			{Op: "despawn", Key: 3},
			{Op: "set", Key: 5, Col: "health", Val: 4},
			{Op: "tune", Name: "_HEAL_AURA", Val: 7},
		},
	}, &cr)
	if code != http.StatusOK {
		t.Fatalf("commands: status %d", code)
	}
	if cr.Accepted != 4 || cr.Tick != 0 {
		t.Errorf("response = %+v, want accepted 4 at tick 0", cr)
	}
	// Nothing applies until the next tick boundary.
	var st Status
	do(t, http.MethodGet, ts.URL+"/v1/sessions/cmd", nil, &st)
	if st.Units != 64 {
		t.Errorf("units before tick = %d, want 64", st.Units)
	}
	do(t, http.MethodPost, ts.URL+"/v1/sessions/cmd/step", StepRequest{Ticks: 1}, &st)
	if st.Units != 64 { // -1 despawn +1 spawn
		t.Errorf("units after tick = %d, want 64", st.Units)
	}
	// The spawned unit answers unit-probe queries.
	unit := int64(9000)
	var qr QueryResponse
	code = do(t, http.MethodPost, ts.URL+"/v1/sessions/cmd/query", QueryRequest{
		Src:  "aggregate Self(u) := max(e.health) as hp over e where e.key = u.key;",
		Unit: &unit,
	}, &qr)
	if code != http.StatusOK {
		t.Fatalf("query spawned unit: %d", code)
	}
	// The despawned unit is gone.
	gone := int64(3)
	code = do(t, http.MethodPost, ts.URL+"/v1/sessions/cmd/query", QueryRequest{
		Src:  "aggregate Self(u) := max(e.health) as hp over e where e.key = u.key;",
		Unit: &gone,
	}, nil)
	if code != http.StatusBadRequest {
		t.Errorf("query despawned unit: status %d, want 400", code)
	}

	var jr JournalResponse
	if code := do(t, http.MethodGet, ts.URL+"/v1/sessions/cmd/journal", nil, &jr); code != http.StatusOK {
		t.Fatalf("journal: %d", code)
	}
	if len(jr.Entries) != 4 || jr.Tick != 1 {
		t.Fatalf("journal = %d entries at tick %d, want 4 at 1", len(jr.Entries), jr.Tick)
	}
	if jr.Entries[0].Origin != "player-1" || jr.Entries[0].Cmd.Op != engine.OpSpawn {
		t.Errorf("journal head = %+v", jr.Entries[0])
	}
}

// Command endpoint validation: bad ops, oversized batches, empty
// batches, unknown sessions and invalid targets are all 4xx.
func TestCommandsEndpointValidation(t *testing.T) {
	ts, _ := newTestServer(t)
	create(t, ts.URL, "val", nil)
	post := func(req CommandsRequest) int {
		t.Helper()
		return do(t, http.MethodPost, ts.URL+"/v1/sessions/val/commands", req, nil)
	}
	if code := post(CommandsRequest{}); code != http.StatusBadRequest {
		t.Errorf("empty batch: %d, want 400", code)
	}
	if code := post(CommandsRequest{Commands: []WireCommand{{Op: "explode", Key: 1}}}); code != http.StatusBadRequest {
		t.Errorf("unknown op: %d, want 400", code)
	}
	if code := post(CommandsRequest{Commands: []WireCommand{{Op: "spawn", Key: 1, Player: 7}}}); code != http.StatusBadRequest {
		t.Errorf("bad player: %d, want 400", code)
	}
	if code := post(CommandsRequest{Commands: []WireCommand{{Op: "spawn", Key: 1, UnitType: 9}}}); code != http.StatusBadRequest {
		t.Errorf("bad unittype: %d, want 400", code)
	}
	if code := post(CommandsRequest{Commands: []WireCommand{{Op: "set", Key: 1, Col: "nosuch", Val: 1}}}); code != http.StatusBadRequest {
		t.Errorf("unknown column: %d, want 400", code)
	}
	big := make([]WireCommand, MaxCommandsPerRequest+1)
	for i := range big {
		big[i] = WireCommand{Op: "set", Key: 1, Col: "health", Val: 1}
	}
	if code := post(CommandsRequest{Commands: big}); code != http.StatusBadRequest {
		t.Errorf("oversized batch: %d, want 400", code)
	}
	if code := do(t, http.MethodPost, ts.URL+"/v1/sessions/ghost/commands",
		CommandsRequest{Commands: []WireCommand{{Op: "despawn", Key: 1}}}, nil); code != http.StatusNotFound {
		t.Errorf("unknown session: %d, want 404", code)
	}
	// A valid batch afterwards proves the rejected ones left no residue.
	var jr JournalResponse
	do(t, http.MethodGet, ts.URL+"/v1/sessions/val/journal", nil, &jr)
	if len(jr.Entries) != 0 {
		t.Errorf("rejected batches reached the journal: %d entries", len(jr.Entries))
	}
}

// A served world's interactive state — journal, pending commands, tuned
// constants — survives checkpoint-to-file and restore, and the restored
// world continues from it (the serving half of contract #5's mid-stream
// story).
func TestServedCommandsSurviveRestore(t *testing.T) {
	ts, _ := newTestServer(t)
	create(t, ts.URL, "donor", nil)
	do(t, http.MethodPost, ts.URL+"/v1/sessions/donor/commands", CommandsRequest{
		Origin:   "p1",
		Commands: []WireCommand{{Op: "set", Key: 2, Col: "morale", Val: 11}},
	}, nil)
	do(t, http.MethodPost, ts.URL+"/v1/sessions/donor/step", StepRequest{Ticks: 2}, nil)
	// Pending at checkpoint time:
	do(t, http.MethodPost, ts.URL+"/v1/sessions/donor/commands", CommandsRequest{
		Origin:   "p1",
		Commands: []WireCommand{{Op: "despawn", Key: 4}},
	}, nil)
	do(t, http.MethodPost, ts.URL+"/v1/sessions/donor/checkpoint", CheckpointRequest{File: "donor.ckpt"}, nil)
	if code := do(t, http.MethodPost, ts.URL+"/v1/sessions",
		CreateRequest{Name: "heir", Restore: "donor.ckpt"}, nil); code != http.StatusCreated {
		t.Fatal("restore failed")
	}
	var jr JournalResponse
	do(t, http.MethodGet, ts.URL+"/v1/sessions/heir/journal", nil, &jr)
	if len(jr.Entries) != 2 {
		t.Fatalf("restored journal has %d entries, want 2", len(jr.Entries))
	}
	var st Status
	do(t, http.MethodPost, ts.URL+"/v1/sessions/heir/step", StepRequest{Ticks: 1}, &st)
	if st.Units != 63 {
		t.Errorf("pending despawn did not apply after restore: units = %d, want 63", st.Units)
	}
}
