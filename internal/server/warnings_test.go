package server

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/url"
	"strings"
	"testing"

	"github.com/epicscale/sgl/internal/sgl/lint"
)

// hasCode reports whether any diagnostic in ds carries code.
func hasCode(ds []lint.Diagnostic, code string) bool {
	for _, d := range ds {
		if d.Code == code {
			return true
		}
	}
	return false
}

// TestCreateResponseCarriesWarnings pins the create-from-script lint
// surface: the 201 body is a CreateResponse whose warnings field is
// always an array, populated with the script's findings. The built-in
// battle script has exactly one pinned finding (SGL012: _TIME_RELOAD is
// consumed by the engine's tick rule, not the script text), and a
// script with a dead let adds SGL009 — while both worlds are created
// and usable.
func TestCreateResponseCarriesWarnings(t *testing.T) {
	ts, _ := newTestServer(t)

	var cr CreateResponse
	req := CreateRequest{Name: "warn-builtin", Units: 16, Density: 0.02, Seed: 3}
	if code := do(t, http.MethodPost, ts.URL+"/v1/sessions", req, &cr); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	if cr.Warnings == nil {
		t.Fatal("create response warnings is null; must be an array")
	}
	if !hasCode(cr.Warnings, lint.CodeDeadConst) {
		t.Errorf("builtin script warnings = %v, want the pinned %s finding", cr.Warnings, lint.CodeDeadConst)
	}
	for _, d := range cr.Warnings {
		if d.Severity != lint.SevWarn {
			t.Errorf("created world carries %s at severity %q; a script that compiled can only warn", d.Code, d.Severity)
		}
	}

	// A custom script with a dead let: still creates (dead code is not an
	// error), and the response says so.
	deadLet := `
aggregate Foes(u) := count(*) over e where e.player <> u.player;
action Tag(u, v) := on e where e.key = u.key set damage = v;
function main(u) { (let unused = u.health) perform Tag(u, Foes(u)) }`
	var cr2 CreateResponse
	req2 := CreateRequest{Name: "warn-deadlet", Units: 16, Density: 0.02, Seed: 3, Script: deadLet}
	if code := do(t, http.MethodPost, ts.URL+"/v1/sessions", req2, &cr2); code != http.StatusCreated {
		t.Fatalf("create with dead let: status %d", code)
	}
	if !hasCode(cr2.Warnings, lint.CodeDeadLet) {
		t.Errorf("dead-let script warnings = %v, want %s", cr2.Warnings, lint.CodeDeadLet)
	}
	// The warned world still runs.
	var st Status
	if code := do(t, http.MethodPost, ts.URL+"/v1/sessions/warn-deadlet/step", StepRequest{Ticks: 2}, &st); code != http.StatusOK {
		t.Fatalf("step warned world: status %d", code)
	}
	if st.Tick != 2 {
		t.Fatalf("warned world tick = %d, want 2", st.Tick)
	}
}

// sseTyped reads raw SSE frames off a subscribe stream, preserving each
// frame's event type (sseEvents drops it). The channel carries
// (event, data) pairs and closes when the stream ends.
type typedEvent struct {
	event string
	data  string
}

func sseTypedEvents(t *testing.T, ctx context.Context, streamURL string) <-chan typedEvent {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, streamURL, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("subscribe %s: status %d", streamURL, resp.StatusCode)
	}
	ch := make(chan typedEvent, 64)
	go func() {
		defer resp.Body.Close()
		defer close(ch)
		sc := bufio.NewScanner(resp.Body)
		ev := ""
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				ev = line[len("event: "):]
			case strings.HasPrefix(line, "data: "):
				ch <- typedEvent{event: ev, data: line[len("data: "):]}
			}
		}
	}()
	return ch
}

// TestNonDivisibleSubscriptionWarnsAndStreams is the acceptance pin for
// the SGL102 surface: subscribing to a min() query — non-divisible, so
// the maintained answer rederives on every dirty tick — pushes a
// "warnings" event carrying SGL102 before the first answer, and the
// subscription still streams correct answers afterward.
func TestNonDivisibleSubscriptionWarnsAndStreams(t *testing.T) {
	ts, _ := newTestServer(t)
	create(t, ts.URL, "nondiv", nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	minSrc := `aggregate Low(u) := min(e.health) as low over e;`
	ch := sseTypedEvents(t, ctx, ts.URL+"/v1/sessions/nondiv/subscribe?q="+url.QueryEscape(minSrc))

	first, ok := <-ch
	if !ok {
		t.Fatal("stream closed before any event")
	}
	if first.event != "warnings" {
		t.Fatalf("first event = %q, want \"warnings\" before the initial answer", first.event)
	}
	var warns []lint.Diagnostic
	if err := json.Unmarshal([]byte(first.data), &warns); err != nil {
		t.Fatalf("decode warnings event %q: %v", first.data, err)
	}
	if !hasCode(warns, lint.CodeNonDivisible) {
		t.Fatalf("warnings event = %v, want %s for a min() subscription", warns, lint.CodeNonDivisible)
	}

	second, ok := <-ch
	if !ok {
		t.Fatal("stream closed before the initial answer")
	}
	if second.event != "answer" {
		t.Fatalf("second event = %q, want \"answer\"", second.event)
	}
	var ans SubscribeEvent
	if err := json.Unmarshal([]byte(second.data), &ans); err != nil {
		t.Fatalf("decode answer event %q: %v", second.data, err)
	}
	if ans.Error != "" || len(ans.Values) != 1 {
		t.Fatalf("initial answer = %+v, want one error-free value", ans)
	}

	// The warned query still computes the right answer: the pushed value
	// matches the naive-scan oracle, and the one-shot query path reports
	// the same SGL102 in its response.
	var qr QueryResponse
	if code := do(t, http.MethodPost, ts.URL+"/v1/sessions/nondiv/query", QueryRequest{Src: minSrc, Scan: true}, &qr); code != http.StatusOK {
		t.Fatalf("scan query: status %d", code)
	}
	if len(qr.Values) != 1 || qr.Values[0] != ans.Values[0] {
		t.Fatalf("scan oracle = %v, pushed initial answer = %v", qr.Values, ans.Values)
	}
	if !hasCode(qr.Warnings, lint.CodeNonDivisible) {
		t.Errorf("query response warnings = %v, want %s", qr.Warnings, lint.CodeNonDivisible)
	}
}
