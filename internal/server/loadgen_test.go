package server

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/epicscale/sgl/internal/metrics"
)

// TestLoadGenEightWorlds is the serving-layer acceptance run: eight
// simultaneous worlds, clocks running, spectators fanning out queries
// and actors injecting commands per world, all over real HTTP — and at
// the end every world must have advanced its clock, served queries and
// accepted commands without a single error. The per-session latency and
// tick-rate table renders via metrics.WriteLoadGen (run
// `sgld -loadgen -actors 1` for a full-size version of this).
func TestLoadGenEightWorlds(t *testing.T) {
	reg := NewRegistry()
	ts := httptest.NewServer(New(reg, t.TempDir()))
	defer func() {
		ts.Close()
		reg.Close()
	}()

	rows, err := LoadGen(LoadGenConfig{
		BaseURL:     ts.URL,
		Worlds:      8,
		Units:       128,
		Density:     0.02,
		Seed:        1,
		TickRate:    20,
		Spectators:  2,
		Actors:      1,
		Subscribers: 2,
		Duration:    1500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	var totalPushes, totalPollEquiv int64
	for _, r := range rows {
		if r.Ticks <= 0 {
			t.Errorf("world %s made no clock progress", r.World)
		}
		if r.Queries <= 0 {
			t.Errorf("world %s served no queries", r.World)
		}
		if r.Errors != 0 {
			t.Errorf("world %s: %d query errors", r.World, r.Errors)
		}
		if r.P99Micros < r.P50Micros || r.MaxMicros < r.P99Micros {
			t.Errorf("world %s: non-monotone latency quantiles %+v", r.World, r)
		}
		if r.Commands <= 0 {
			t.Errorf("world %s accepted no commands", r.World)
		}
		if r.CmdErrors != 0 {
			t.Errorf("world %s: %d command errors", r.World, r.CmdErrors)
		}
		if r.CmdP99Micros < r.CmdP50Micros {
			t.Errorf("world %s: non-monotone command quantiles %+v", r.World, r)
		}
		if r.SubErrors != 0 {
			t.Errorf("world %s: %d subscriber errors", r.World, r.SubErrors)
		}
		if r.Pushes <= 0 {
			t.Errorf("world %s: subscribers received no pushes", r.World)
		}
		totalPushes += int64(r.Pushes)
		totalPollEquiv += r.PollEquiv
	}
	// The push-vs-poll claim, on the fleet aggregate (a single world's
	// probe can sit on a busy box and change every tick): pushing only
	// changed answers must cost fewer events than one poll per subscriber
	// per tick would at the same freshness.
	if totalPushes >= totalPollEquiv {
		t.Errorf("fleet pushed %d events ≥ %d poll-equivalents — push suppression not working", totalPushes, totalPollEquiv)
	}

	// The table must render one line per world plus totals, including
	// the actor-command columns this run populated.
	var b strings.Builder
	metrics.WriteLoadGen(&b, rows)
	out := b.String()
	for _, want := range []string{"loadgen-0", "loadgen-7", "TOTAL", "cmd/s", "push/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}

	// Worlds are torn down after the run; the server's counters survive.
	if got := len(reg.List()); got != 0 {
		t.Errorf("loadgen left %d worlds behind", got)
	}
	if v := reg.Metrics.Counter("sgld_sessions_created_total").Value(); v != 8 {
		t.Errorf("sessions created counter = %v, want 8", v)
	}
}

// TestLoadGenDistinctWorlds checks the fleet is eight different
// simulations, not one replicated: per-world seeds differ, so tick
// outcomes (deaths/moves) diverge across worlds.
func TestLoadGenDistinctWorlds(t *testing.T) {
	reg := NewRegistry()
	ts := httptest.NewServer(New(reg, t.TempDir()))
	defer func() {
		ts.Close()
		reg.Close()
	}()
	rows, err := LoadGen(LoadGenConfig{
		BaseURL: ts.URL, Worlds: 2, Units: 200, Density: 0.02, Seed: 3,
		TickRate: 0, Spectators: 1, Duration: 700 * time.Millisecond,
		KeepSessions: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	w0, ok0 := reg.Get("loadgen-0")
	w1, ok1 := reg.Get("loadgen-1")
	if !ok0 || !ok1 {
		t.Fatal("KeepSessions should leave the worlds registered")
	}
	w0.StopClock()
	w1.StopClock()
	// Different seeds ⇒ different armies ⇒ different environments.
	if w0.Session().Engine().Env().EqualContents(w1.Session().Engine().Env()) {
		t.Error("worlds with different seeds should be distinct simulations")
	}
}
