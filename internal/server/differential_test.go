package server

import (
	"bytes"
	"net/http"
	"sync"
	"testing"

	"github.com/epicscale/sgl/internal/engine"
	"github.com/epicscale/sgl/internal/exec"
	"github.com/epicscale/sgl/internal/game"
	"github.com/epicscale/sgl/internal/sgl/parser"
	"github.com/epicscale/sgl/internal/sgl/sem"
	"github.com/epicscale/sgl/internal/workload"
)

// TestServedMatchesStandalone is the fourth exactness contract:
// served ≡ standalone. A world hosted by the daemon and stepped over
// HTTP while spectator goroutines hammer it with observation queries
// must produce a checkpoint byte-identical to the same (script, spec,
// seed, ticks) run as a plain engine with nobody watching. Spectators
// are pure readers of the frozen snapshot — if one ever perturbed the
// world (a stray write through a fork, a query-cache invalidation bug,
// an RNG draw charged to the wrong counter), the checkpoint bytes would
// diverge.
//
// It runs the battle script plus every zoo program, at the served
// world's own Workers/Incremental tuning differing from the standalone
// run's — stacking contract #4 on contracts #1 and #2.
func TestServedMatchesStandalone(t *testing.T) {
	const (
		units   = 300
		density = 0.02
		seed    = 99
		ticks   = 24
	)

	scripts := []struct{ name, src string }{{"battle", game.Script}}
	for _, z := range exec.Zoo {
		scripts = append(scripts, struct{ name, src string }{z.Name, z.Src})
	}

	for _, sc := range scripts {
		t.Run(sc.name, func(t *testing.T) {
			// Standalone: plain engine, serial, rebuild-every-tick.
			standalone := runStandalone(t, sc.src, units, density, seed, ticks)

			// Served: same world hosted by the daemon under spectator
			// load, with the tuning knobs deliberately different.
			served := runServed(t, sc.src, units, density, seed, ticks)

			if !bytes.Equal(standalone, served) {
				t.Errorf("%s: served checkpoint differs from standalone (contract #4 violated)", sc.name)
			}
		})
	}
}

// runStandalone runs (script, spec, seed, ticks) as a bare engine and
// returns its checkpoint bytes.
func runStandalone(t *testing.T, src string, units int, density float64, seed uint64, ticks int) []byte {
	t.Helper()
	script, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := sem.Check(script, game.Schema(), game.Consts())
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.Spec{Units: units, Density: density, Seed: seed, Formation: workload.BattleLines}
	e, err := engine.New(prog, game.NewMechanics(), workload.Generate(spec), engine.Options{
		Mode:         engine.Indexed,
		Categoricals: game.Categoricals(),
		Seed:         seed,
		Side:         spec.Side(),
		MoveSpeed:    1,
		Workers:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(ticks); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// runServed hosts the same world in an HTTP server, steps it to the
// same tick while concurrent spectators query it continuously, and
// returns the streamed checkpoint bytes.
func runServed(t *testing.T, src string, units int, density float64, seed uint64, ticks int) []byte {
	t.Helper()
	ts, _ := newTestServer(t)
	var st Status
	code := do(t, http.MethodPost, ts.URL+"/v1/sessions", CreateRequest{
		Name: "served", Script: src,
		Units: units, Density: density, Seed: seed,
		Workers: 4, Incremental: false,
	}, &st)
	if code != http.StatusCreated {
		t.Fatalf("create served world: %d", code)
	}

	// Spectators: three query shapes across the three probe forms, all
	// legal for every zoo script (they reference only shared attributes).
	stop := make(chan struct{})
	var wg sync.WaitGroup
	spectate := func(req QueryRequest) {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r := req
			if r.X != nil {
				x, y := float64((5*i)%60), float64((11*i)%60)
				r.X, r.Y = &x, &y
			}
			// Response intentionally ignored: some ticks race a unit's
			// death (QueryUnit on a respawned key is still valid — keys
			// persist), and the contract under test is that NONE of this
			// affects the world. Transport failures still surface (via
			// try — do would t.Fatal off the test goroutine).
			if _, err := try(http.MethodPost, ts.URL+"/v1/sessions/served/query", r, nil); err != nil {
				t.Error(err)
				return
			}
		}
	}
	x0, y0 := 10.0, 10.0
	unit := int64(3)
	reqs := []QueryRequest{
		{Src: `aggregate Pop(u) := count(*) as n, sum(e.health) as hp over e;`},
		{Src: `aggregate Zone(u, r) :=
  count(*) over e where e.posx >= u.posx - r and e.posx <= u.posx + r
    and e.posy >= u.posy - r and e.posy <= u.posy + r;`,
			X: &x0, Y: &y0, Args: []float64{12}},
		{Src: `aggregate Mine(u) := count(*), max(e.health) as top over e where e.player = u.player;`,
			Unit: &unit},
		{Src: `aggregate Pop(u) := count(*) as n, sum(e.health) as hp over e;`, Scan: true},
	}
	for _, r := range reqs {
		wg.Add(1)
		go spectate(r)
	}

	// Step to the target tick in small increments so queries interleave
	// with many write phases, not just one.
	for done := 0; done < ticks; {
		n := 3
		if ticks-done < n {
			n = ticks - done
		}
		if code := do(t, http.MethodPost, ts.URL+"/v1/sessions/served/step", StepRequest{Ticks: n}, nil); code != http.StatusOK {
			t.Fatalf("step: %d", code)
		}
		done += n
	}
	close(stop)
	wg.Wait()

	return fetchCheckpoint(t, ts.URL, "served")
}

// TestServedIncrementalMatchesStandalone re-runs the battle leg of the
// contract with the served world under incremental maintenance. The
// maintenance counters are serialized, so the standalone twin runs
// incremental too — what differs is only "served under load" vs "not
// served at all".
func TestServedIncrementalMatchesStandalone(t *testing.T) {
	const (
		units   = 300
		density = 0.02
		seed    = 5
		ticks   = 18
	)
	script, err := parser.Parse(game.Script)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := sem.Check(script, game.Schema(), game.Consts())
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.Spec{Units: units, Density: density, Seed: seed, Formation: workload.BattleLines}
	e, err := engine.New(prog, game.NewMechanics(), workload.Generate(spec), engine.Options{
		Mode: engine.Indexed, Categoricals: game.Categoricals(),
		Seed: seed, Side: spec.Side(), MoveSpeed: 1,
		Workers: 1, Incremental: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(ticks); err != nil {
		t.Fatal(err)
	}
	var standalone bytes.Buffer
	if err := e.Checkpoint(&standalone); err != nil {
		t.Fatal(err)
	}

	ts, _ := newTestServer(t)
	if code := do(t, http.MethodPost, ts.URL+"/v1/sessions", CreateRequest{
		Name: "inc", Units: units, Density: density, Seed: seed,
		Workers: 2, Incremental: true,
	}, nil); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := try(http.MethodPost, ts.URL+"/v1/sessions/inc/query",
				QueryRequest{Src: `aggregate Pop(u) := count(*) over e;`}, nil); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for done := 0; done < ticks; done += 2 {
		if code := do(t, http.MethodPost, ts.URL+"/v1/sessions/inc/step", StepRequest{Ticks: 2}, nil); code != http.StatusOK {
			t.Fatalf("step: %d", code)
		}
	}
	close(stop)
	wg.Wait()

	if served := fetchCheckpoint(t, ts.URL, "inc"); !bytes.Equal(standalone.Bytes(), served) {
		t.Error("served-under-load incremental world diverged from standalone incremental run")
	}
}
