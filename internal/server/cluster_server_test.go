// Tests for the server's cluster-facing surface: the /readyz report,
// journal long-polls, push-restore (PUT …/checkpoint), replica worlds,
// and the SSE-through-a-reverse-proxy regression that gateway proxying
// depends on.
package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"strings"
	"testing"
	"time"

	"github.com/epicscale/sgl/internal/engine"
	"github.com/epicscale/sgl/internal/game"
)

// putCheckpoint streams ck as a PUT …/checkpoint body and decodes the
// response, returning the status code.
func putCheckpoint(t *testing.T, urlStr string, ck []byte, out any) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, urlStr, bytes.NewReader(ck))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decode PUT %s response %q: %v", urlStr, data, err)
		}
	}
	return resp.StatusCode
}

// openReplica opens a session from checkpoint bytes and registers it as
// a follower world.
func openReplica(t *testing.T, reg *Registry, name string, ck []byte) *World {
	t.Helper()
	sess, err := engine.Open(bytes.NewReader(ck), game.NewMechanics(), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w, err := reg.RegisterReplica(name, sess)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestReadyzReportsLoadAndLag pins the gateway's placement/health signal:
// /readyz counts worlds and replicas and surfaces the worst replica lag,
// and the sgld_replica_lag_ticks gauge appears on /metrics.
func TestReadyzReportsLoadAndLag(t *testing.T) {
	ts, reg := newTestServer(t)
	create(t, ts.URL, "primary", nil)

	var ready ReadyResponse
	if code := do(t, http.MethodGet, ts.URL+"/readyz", nil, &ready); code != http.StatusOK {
		t.Fatalf("readyz: %d", code)
	}
	if ready.Worlds != 1 || ready.Replicas != 0 || ready.MaxLagTicks != 0 {
		t.Errorf("readyz before replica = %+v", ready)
	}

	rep := openReplica(t, reg, "primary-r", fetchCheckpoint(t, ts.URL, "primary"))
	rep.SetReplicaLag(3)

	if code := do(t, http.MethodGet, ts.URL+"/readyz", nil, &ready); code != http.StatusOK {
		t.Fatalf("readyz: %d", code)
	}
	if ready.Worlds != 2 || ready.Replicas != 1 || ready.MaxLagTicks != 3 {
		t.Errorf("readyz with lagging replica = %+v", ready)
	}
	found := false
	for _, s := range ready.Sessions {
		if s.Name == "primary-r" {
			found = true
			if !s.Replica || s.LagTicks != 3 {
				t.Errorf("replica session row = %+v", s)
			}
		}
	}
	if !found {
		t.Error("readyz sessions missing the replica")
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `sgld_replica_lag_ticks{session="primary-r"} 3`) {
		t.Error("metrics missing sgld_replica_lag_ticks for the replica")
	}
}

// TestJournalLongPoll pins the replication transport: ?wait= parks the
// request until the world ticks past ?since (woken by the tick, not a
// poll), times out gracefully with the current suffix, and rejects
// unanchored or malformed waits.
func TestJournalLongPoll(t *testing.T) {
	ts, _ := newTestServer(t)
	create(t, ts.URL, "lp", nil)

	if code := do(t, http.MethodGet, ts.URL+"/v1/sessions/lp/journal?wait=1s", nil, nil); code != http.StatusBadRequest {
		t.Errorf("wait without since: %d, want 400", code)
	}
	if code := do(t, http.MethodGet, ts.URL+"/v1/sessions/lp/journal?since=0&wait=bogus", nil, nil); code != http.StatusBadRequest {
		t.Errorf("malformed wait: %d, want 400", code)
	}

	// The blocking poll: parked at since=0 on a paused world, it must
	// return promptly once the world steps — well before its 10s budget.
	type result struct {
		resp JournalResponse
		code int
		err  error
		took time.Duration
	}
	ch := make(chan result, 1)
	start := time.Now()
	go func() {
		var r result
		r.code, r.err = try(http.MethodGet, ts.URL+"/v1/sessions/lp/journal?since=0&wait=10s", nil, &r.resp)
		r.took = time.Since(start)
		ch <- r
	}()
	time.Sleep(100 * time.Millisecond) // let the poll park
	if code := do(t, http.MethodPost, ts.URL+"/v1/sessions/lp/step", StepRequest{Ticks: 1}, nil); code != http.StatusOK {
		t.Fatalf("step: %d", code)
	}
	select {
	case r := <-ch:
		if r.err != nil || r.code != http.StatusOK {
			t.Fatalf("long-poll: code %d, err %v", r.code, r.err)
		}
		if r.resp.Tick != 1 {
			t.Errorf("long-poll woke at tick %d, want 1", r.resp.Tick)
		}
		if r.took > 5*time.Second {
			t.Errorf("long-poll took %v — woken by timeout, not by the tick", r.took)
		}
	case <-time.After(8 * time.Second):
		t.Fatal("long-poll never returned after the step")
	}

	// The timeout path: a wait past the current tick expires and returns
	// the (empty) suffix with 200, not an error.
	var jr JournalResponse
	start = time.Now()
	if code := do(t, http.MethodGet, ts.URL+"/v1/sessions/lp/journal?since=5&wait=200ms", nil, &jr); code != http.StatusOK {
		t.Fatalf("timed-out poll: %d", code)
	}
	if took := time.Since(start); took < 150*time.Millisecond {
		t.Errorf("timed-out poll returned in %v — it never waited", took)
	}
	if jr.Tick != 1 || len(jr.Entries) != 0 {
		t.Errorf("timed-out poll = tick %d, %d entries; want tick 1, none", jr.Tick, len(jr.Entries))
	}
}

// TestCheckpointPutRestores pins the push half of migration: a world
// checkpointed from one daemon comes up on another via PUT …/checkpoint
// with restore-time tuning, and checkpoints byte-identically (tuning is
// deliberately not serialized).
func TestCheckpointPutRestores(t *testing.T) {
	ts, _ := newTestServer(t)
	create(t, ts.URL, "src", nil)
	do(t, http.MethodPost, ts.URL+"/v1/sessions/src/commands", CommandsRequest{
		Origin:   "t",
		Commands: []WireCommand{{Op: "set", Key: 3, Col: "health", Val: 55}},
	}, nil)
	if code := do(t, http.MethodPost, ts.URL+"/v1/sessions/src/step", StepRequest{Ticks: 5}, nil); code != http.StatusOK {
		t.Fatalf("step: %d", code)
	}
	ck := fetchCheckpoint(t, ts.URL, "src")

	var cr CreateResponse
	if code := putCheckpoint(t, ts.URL+"/v1/sessions/dst/checkpoint?workers=2&incremental=true", ck, &cr); code != http.StatusCreated {
		t.Fatalf("PUT checkpoint: %d", code)
	}
	if cr.Tick != 5 || cr.Workers != 2 {
		t.Errorf("restored status = %+v, want tick 5 workers 2", cr.Status)
	}
	if got := fetchCheckpoint(t, ts.URL, "dst"); !bytes.Equal(ck, got) {
		t.Error("pushed-restore checkpoint bytes differ from the source")
	}

	// Collisions are 409 (the migration caller must know the name is
	// taken), malformed tuning is 400, and a truncated stream is 400.
	if code := putCheckpoint(t, ts.URL+"/v1/sessions/dst/checkpoint", ck, nil); code != http.StatusConflict {
		t.Errorf("duplicate PUT: %d, want 409", code)
	}
	if code := putCheckpoint(t, ts.URL+"/v1/sessions/d2/checkpoint?workers=lots", ck, nil); code != http.StatusBadRequest {
		t.Errorf("bad workers param: %d, want 400", code)
	}
	if code := putCheckpoint(t, ts.URL+"/v1/sessions/d3/checkpoint", ck[:len(ck)/2], nil); code != http.StatusBadRequest {
		t.Errorf("truncated stream: %d, want 400", code)
	}
}

// TestReplicaWorldRefusesMutation pins the follower discipline over
// HTTP: every client-side mutation on a replica is 409 with the replica
// spelled out, while reads (status, query, journal, checkpoint) serve
// normally.
func TestReplicaWorldRefusesMutation(t *testing.T) {
	ts, reg := newTestServer(t)
	create(t, ts.URL, "w", nil)
	openReplica(t, reg, "r", fetchCheckpoint(t, ts.URL, "w"))

	var st Status
	if code := do(t, http.MethodGet, ts.URL+"/v1/sessions/r", nil, &st); code != http.StatusOK {
		t.Fatalf("status: %d", code)
	}
	if !st.Replica {
		t.Errorf("status = %+v, want Replica", st)
	}

	var er errorResponse
	if code := do(t, http.MethodPost, ts.URL+"/v1/sessions/r/step", StepRequest{Ticks: 1}, &er); code != http.StatusConflict {
		t.Errorf("step on replica: %d, want 409", code)
	} else if !strings.Contains(er.Error, "replica") {
		t.Errorf("step error %q does not say replica", er.Error)
	}
	if code := do(t, http.MethodPost, ts.URL+"/v1/sessions/r/run", RunRequest{TickRate: 10}, nil); code != http.StatusConflict {
		t.Errorf("run on replica: %d, want 409", code)
	}
	if code := do(t, http.MethodPost, ts.URL+"/v1/sessions/r/commands", CommandsRequest{
		Origin: "t", Commands: []WireCommand{{Op: "despawn", Key: 1}},
	}, nil); code != http.StatusConflict {
		t.Errorf("commands on replica: %d, want 409", code)
	}
	if code := do(t, http.MethodPost, ts.URL+"/v1/sessions/r/compact", nil, nil); code != http.StatusConflict {
		t.Errorf("compact on replica: %d, want 409", code)
	}

	var qr QueryResponse
	if code := do(t, http.MethodPost, ts.URL+"/v1/sessions/r/query", QueryRequest{Src: posSumSrc}, &qr); code != http.StatusOK {
		t.Errorf("query on replica: %d, want 200", code)
	}
	if code := do(t, http.MethodDelete, ts.URL+"/v1/sessions/r", nil, nil); code != http.StatusOK {
		t.Errorf("delete replica: %d, want 200", code)
	}
}

// TestReplicaAdvanceMatchesWriter is the in-process half of contract #6's
// replica leg: a follower bootstrapped from the writer's checkpoint and
// advanced through ReplicaAdvance over the writer's journal reaches
// byte-identical checkpoints at the same tick — including command traffic
// and a pending batch restored from the bootstrap stream (the dedupe
// path).
func TestReplicaAdvanceMatchesWriter(t *testing.T) {
	ts, reg := newTestServer(t)
	create(t, ts.URL, "writer", nil)
	wd, _ := reg.Get("writer")

	// A pending command in the bootstrap checkpoint: the replica restores
	// it, then sees the same entry again in the journal fetch and must
	// not double-apply.
	do(t, http.MethodPost, ts.URL+"/v1/sessions/writer/commands", CommandsRequest{
		Origin:   "a",
		Commands: []WireCommand{{Op: "set", Key: 2, Col: "health", Val: 40}},
	}, nil)
	boot := fetchCheckpoint(t, ts.URL, "writer")
	rep := openReplica(t, reg, "writer-r", boot)

	for i := 0; i < 4; i++ {
		do(t, http.MethodPost, ts.URL+"/v1/sessions/writer/commands", CommandsRequest{
			Origin:   "b",
			Commands: []WireCommand{{Op: "set", Key: int64(10 + i), Col: "health", Val: float64(60 + i)}},
		}, nil)
		if code := do(t, http.MethodPost, ts.URL+"/v1/sessions/writer/step", StepRequest{Ticks: 2}, nil); code != http.StatusOK {
			t.Fatalf("step: %d", code)
		}
	}

	target := wd.Session().Tick()
	entries := wd.Session().Journal()
	if err := rep.ReplicaAdvance(target, entries); err != nil {
		t.Fatal(err)
	}
	if got := rep.Session().Tick(); got != target {
		t.Fatalf("replica at tick %d, writer at %d", got, target)
	}

	var wck, rck bytes.Buffer
	if err := wd.Checkpoint(&wck); err != nil {
		t.Fatal(err)
	}
	if err := rep.Checkpoint(&rck); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wck.Bytes(), rck.Bytes()) {
		t.Error("replica checkpoint differs from writer at the same tick")
	}

	// Entries stamped at the target tick (still open on the writer) are
	// deferred, not applied: advancing to the same target again with the
	// same entries is a no-op.
	if err := rep.ReplicaAdvance(target, entries); err != nil {
		t.Fatal(err)
	}
	if got := rep.Session().Tick(); got != target {
		t.Errorf("idempotent re-advance moved the replica to %d", got)
	}

	// And the guard: a primary world refuses ReplicaAdvance.
	if err := wd.ReplicaAdvance(target+1, nil); err == nil {
		t.Error("ReplicaAdvance on a primary world did not refuse")
	}
}

// TestSubscribeThroughReverseProxy is the satellite regression for SSE
// proxyability: through an httputil.ReverseProxy hop (what sglgw does),
// the subscribe stream must still deliver each event promptly — the
// handler's per-event flush plus the text/event-stream content type are
// what switch Go's proxy into unbuffered mode — and the
// X-Accel-Buffering: no header must survive the hop for non-Go proxies.
func TestSubscribeThroughReverseProxy(t *testing.T) {
	ts, _ := newTestServer(t)
	create(t, ts.URL, "prox", nil)

	target, err := url.Parse(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(httputil.NewSingleHostReverseProxy(target))
	defer front.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	streamURL := front.URL + "/v1/sessions/prox/subscribe?q=" + url.QueryEscape(posSumSrc)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, streamURL, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe via proxy: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Accel-Buffering"); got != "no" {
		t.Errorf("X-Accel-Buffering = %q through the proxy, want \"no\"", got)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Errorf("Content-Type = %q through the proxy", ct)
	}

	events := make(chan SubscribeEvent, 16)
	go func() {
		defer close(events)
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var ev SubscribeEvent
			if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
				return
			}
			events <- ev
		}
	}()

	waitEvent := func(what string) SubscribeEvent {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatalf("%s: stream closed", what)
			}
			return ev
		case <-time.After(3 * time.Second):
			t.Fatalf("%s: no event within 3s — the proxy hop is buffering", what)
		}
		panic("unreachable")
	}
	if ev := waitEvent("initial event"); ev.Tick != 0 {
		t.Errorf("initial event at tick %d, want 0", ev.Tick)
	}
	// Each step must push through the proxy promptly, one at a time: if
	// the hop buffered, the event would only arrive when the buffer fills
	// or the stream ends, and the 3s deadline would trip.
	for tk := int64(1); tk <= 3; tk++ {
		if code := do(t, http.MethodPost, ts.URL+"/v1/sessions/prox/step", StepRequest{Ticks: 1}, nil); code != http.StatusOK {
			t.Fatalf("step: %d", code)
		}
		if ev := waitEvent(fmt.Sprintf("event for tick %d", tk)); ev.Tick != tk {
			t.Errorf("event tick = %d, want %d", ev.Tick, tk)
		}
	}
}
