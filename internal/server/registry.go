// Package server hosts many concurrent simulation worlds behind an
// HTTP/JSON API: the serving layer between the single-world Session API
// and "heavy traffic from millions of users".
//
// A Registry owns a set of named Worlds. Each World wraps an
// engine.Session — so it inherits the session's reader/writer discipline
// (spectator queries fan out under the read lock, the clock and
// checkpointing interleave safely) — and adds what a daemon needs on
// top: an optional clock goroutine stepping the world at a target tick
// rate, a compile-once observation-query cache keyed by source text
// (every request for the same source shares one engine-side index build
// per tick through the existing Fork path), and per-session Prometheus
// counters in a metrics.Registry.
//
// The fourth exactness contract lives here: a world served under
// concurrent spectator load produces checkpoints byte-identical to the
// same (script, spec, seed, ticks) run standalone, because queries are
// pure reads of the frozen snapshot and the clock is the only writer.
// TestServedMatchesStandalone pins it over HTTP.
package server

import (
	"errors"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/epicscale/sgl/internal/engine"
	"github.com/epicscale/sgl/internal/game"
	"github.com/epicscale/sgl/internal/metrics"
	"github.com/epicscale/sgl/internal/sgl/lint"
	"github.com/epicscale/sgl/internal/sgl/parser"
	"github.com/epicscale/sgl/internal/sgl/sem"
	"github.com/epicscale/sgl/internal/workload"
)

// Sentinel errors handlers map to HTTP statuses.
var (
	// ErrExists reports a session-name collision on create.
	ErrExists = errors.New("session already exists")
	// ErrClockRunning reports an operation that requires a paused clock.
	ErrClockRunning = errors.New("clock is running")
	// ErrReplica reports a mutating operation on a follower replica
	// world, which only its replication loop may advance.
	ErrReplica = errors.New("replica world is read-only")
)

// Name rules: both sessions and checkpoint files must be flat path
// components (they appear in URLs, metric labels, and file paths under
// the data directory) of [A-Za-z0-9._-], not starting with a dot or
// dash (which rules out "..", hidden files, and flag-like names).
// Sessions are capped at 120 chars and files at 128, so the derived
// "<session>.ckpt" name of a maximum-length session is still a file
// name the restore API accepts.
var (
	nameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,119}$`)
	fileRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$`)
)

// ValidName reports whether s is acceptable as a session name
// (1–120 chars, see the name rules above).
func ValidName(s string) bool { return nameRE.MatchString(s) }

// ValidFileName reports whether s is acceptable as a checkpoint file
// name (1–128 chars, see the name rules above).
func ValidFileName(s string) bool { return fileRE.MatchString(s) }

// Bounds on client-supplied world specs (see Registry.Create).
const (
	// MaxWorldUnits caps one world's army. Far above the paper's
	// experiments (12k), far below an allocation that endangers the
	// daemon.
	MaxWorldUnits = 1_000_000
	// MaxWorldDensity caps grid occupancy. The paper's experiments top
	// out at 8%; beyond ~1/6 the BattleLines formation (each player
	// confined to a third of the grid) cannot place the army at all and
	// generation would loop forever.
	MaxWorldDensity = 0.125
)

// WorldSpec is everything needed to build a fresh world. The server
// hosts worlds over the battle schema and mechanics — the script is the
// variable part, exactly as in the paper's setup where behavior is data.
type WorldSpec struct {
	// Script is the SGL source; empty selects the built-in battle script.
	Script string
	// Army generation (workload.Spec minus the formation enum).
	Units     int
	Density   float64
	Seed      uint64
	Formation workload.Formation
	// Engine tuning.
	Mode engine.Mode
	Tune engine.Options // Workers / Incremental / IncrementalThreshold
	// TickRate starts the world's clock at registration: 0 leaves it
	// paused, > 0 targets that many ticks/second, < 0 runs uncapped.
	// Starting inside registration is deliberate — a world published
	// first and clock-started second would leave a window where another
	// client's /run, /step, or delete makes the start fail with the
	// world already visible.
	TickRate float64
}

// World is one hosted simulation: a session plus the serving state the
// registry adds. All methods are safe for concurrent use.
type World struct {
	Name string

	sess    *engine.Session
	prog    *sem.Program
	script  string // source the program was compiled from (checkpoint sidecar)
	created time.Time
	// warnings are the script's lint diagnostics, computed once at
	// registration (a registered script compiles, so they are all
	// warn-severity). Returned in the create response and by Warnings().
	warnings []lint.Diagnostic

	mu  sync.Mutex // guards clk, clockErr, rate, stepping, deleted
	clk *clock
	// clockErr records a tick error that stopped the clock; surfaced on
	// the next status read.
	clockErr error
	rate     float64
	// stepping counts synchronous Steps in flight, so StartClock cannot
	// slip in between Step's clock check and the step itself.
	stepping int
	// deleted marks a world removed from the registry: its clock may
	// never start again (an orphaned clock goroutine would be
	// unreachable by StopClock and run until process exit).
	deleted bool

	// stepMu serializes synchronous Step calls (see Step).
	stepMu sync.Mutex

	qmu     sync.Mutex
	queries map[string]*cachedQuery // compile-once cache, keyed by source
	qseq    uint64                  // use counter for LRU eviction

	// Push subscriptions (subscribe.go). submu guards subs and subsClosed;
	// subsDone is closed exactly once, when the world is deleted, to
	// release every streaming handler.
	submu      sync.Mutex
	subs       map[*subscriber]struct{}
	subsClosed bool
	subsDone   chan struct{}

	// Tick broadcast: tickCh is closed and replaced after every completed
	// tick (under tmu), so journal long-polls (GET …/journal?wait=) can
	// block until the world moves without polling.
	tmu    sync.Mutex
	tickCh chan struct{}

	// replica marks a follower world: it is advanced only by its
	// replication loop (ReplicaAdvance), never by clients — Step,
	// StartClock, Submit and Compact refuse with ErrReplica. lagTicks is
	// the last writer-tick minus local-tick gap the loop reported.
	replica    bool
	lagTicks   atomic.Int64
	replicaLag *metrics.Gauge // sgld_replica_lag_ticks{session=…}; nil for primaries

	ticks         *metrics.Counter
	queriesTotal  *metrics.Counter
	querySecs     *metrics.Counter
	queryErrs     *metrics.Counter
	checkpoints   *metrics.Counter
	commandsTotal *metrics.Counter
	commandSecs   *metrics.Counter
	commandErrs   *metrics.Counter
	subscribers   *metrics.Gauge
	pushes        *metrics.Counter
	pushDrops     *metrics.Counter
}

// cachedQuery is one compile-once cache slot; seq is the recency stamp
// (guarded by qmu) LRU eviction compares. The lint warnings ride the
// cache so N spectators of one source pay for one lint run.
type cachedQuery struct {
	q     *engine.Query
	warns []lint.Diagnostic
	seq   uint64
}

// clock is one run of a world's clock goroutine. The stop channel is
// closed by exactly one owner: StopClock takes ownership of the clock by
// swapping it out of the world first, so a clock that exits on its own
// (tick error) never races the close.
type clock struct {
	stop chan struct{}
	done chan struct{}
}

// Session exposes the wrapped session (for tests and embedders).
func (w *World) Session() *engine.Session { return w.sess }

// Script returns the SGL source this world runs, in the engine's
// canonical printed form (the same text checkpoint v2 embeds).
func (w *World) Script() string { return w.script }

// Warnings returns the script's lint diagnostics (never nil). The slice
// is computed once at registration and must not be mutated.
func (w *World) Warnings() []lint.Diagnostic { return w.warnings }

// SubmitCommands injects a validated command batch into the world's
// input buffer (see engine.Submit), counting acceptances and rejections
// in the per-session metrics. The returned tick is the stamp the batch
// carries, read under the same lock as the enqueue — a running clock
// cannot skew it.
func (w *World) SubmitCommands(origin string, cmds []engine.Command) (int64, error) {
	if w.replica {
		w.commandErrs.Inc()
		return 0, fmt.Errorf("server: world %s: %w; submit to the writer", w.Name, ErrReplica)
	}
	tick, err := w.sess.SubmitTick(origin, cmds...)
	if err != nil {
		w.commandErrs.Inc()
		return tick, err
	}
	w.commandsTotal.Add(float64(len(cmds)))
	return tick, nil
}

// Status is a point-in-time summary of a world.
type Status struct {
	Name     string  `json:"name"`
	Tick     int64   `json:"tick"`
	Units    int     `json:"units"`
	Workers  int     `json:"workers"`
	Running  bool    `json:"running"`
	TickRate float64 `json:"tickrate,omitempty"` // target; 0 = uncapped
	Deaths   int     `json:"deaths"`
	Moves    int     `json:"moves"`
	ClockErr string  `json:"clock_error,omitempty"`
	// Replica marks a follower world replaying its writer's journal;
	// LagTicks is the writer-tick gap its replication loop last reported.
	Replica  bool  `json:"replica,omitempty"`
	LagTicks int64 `json:"lag_ticks,omitempty"`
	// Created is when the world was registered (RFC 3339).
	Created time.Time `json:"created"`
}

// Status snapshots the world's serving state. Engine reads go through
// one Session.View, so tick, population, and counters all describe the
// same between-ticks snapshot (and the session's lock discipline is
// honored even for reads that happen to be race-free today).
func (w *World) Status() Status {
	st := Status{Name: w.Name, Created: w.created, Replica: w.replica, LagTicks: w.lagTicks.Load()}
	w.sess.View(func(e *engine.Engine) {
		st.Tick = e.TickCount()
		st.Units = e.Env().Len()
		st.Workers = e.Workers()
		st.Deaths = e.Stats.Deaths
		st.Moves = e.Stats.Moves
	})
	w.mu.Lock()
	st.Running = w.clk != nil
	st.TickRate = w.rate
	if w.clockErr != nil {
		st.ClockErr = w.clockErr.Error()
	}
	w.mu.Unlock()
	return st
}

// Step advances the world n ticks synchronously. It refuses while the
// clock is running — mixing a free-running clock with synchronous steps
// would make "the tick the client asked for" meaningless. Concurrent
// Step calls serialize on stepMu: letting them interleave would be
// memory-safe (the session lock covers each tick) but each caller's
// before/after tick delta would span the other's ticks, double-counting
// sgld_ticks_total.
func (w *World) Step(n int) error {
	if w.replica {
		return fmt.Errorf("server: world %s: %w; it follows its writer's journal", w.Name, ErrReplica)
	}
	w.stepMu.Lock()
	defer w.stepMu.Unlock()
	w.mu.Lock()
	if w.clk != nil {
		w.mu.Unlock()
		return fmt.Errorf("server: world %s: %w; stop it before stepping", w.Name, ErrClockRunning)
	}
	w.stepping++
	w.mu.Unlock()
	// Count the ticks that actually ran: a mid-batch error still
	// advanced the world, and the counter must track the real clock.
	// Stepping one tick at a time (instead of one Step(n) batch) keeps
	// push subscribers at full freshness: they see every tick boundary,
	// exactly as under the clock.
	before := w.sess.Tick()
	var err error
	for i := 0; i < n; i++ {
		if err = w.sess.Step(1); err != nil {
			break
		}
		w.notifySubscribers()
	}
	w.ticks.Add(float64(w.sess.Tick() - before))
	w.mu.Lock()
	w.stepping--
	w.mu.Unlock()
	return err
}

// StartClock launches the clock goroutine stepping the world at rate
// ticks per second (rate <= 0 runs uncapped). It fails if the clock is
// already running.
func (w *World) StartClock(rate float64) error {
	if w.replica {
		return fmt.Errorf("server: world %s: %w; its cadence is the writer's", w.Name, ErrReplica)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.deleted {
		return fmt.Errorf("server: world %s: deleted", w.Name)
	}
	if w.stepping > 0 {
		return fmt.Errorf("server: world %s: synchronous step in progress", w.Name)
	}
	if w.clk != nil {
		return fmt.Errorf("server: world %s: clock already running", w.Name)
	}
	clk := &clock{stop: make(chan struct{}), done: make(chan struct{})}
	w.clk = clk
	w.clockErr = nil
	w.rate = rate
	go w.clockLoop(clk, rate)
	return nil
}

// clockLoop is the world's clock goroutine: one Step(1) per period. The
// cadence is absolute (next = start + n·period), so a slow tick borrows
// from the following idle time instead of permanently lagging the rate.
func (w *World) clockLoop(clk *clock, rate float64) {
	defer close(clk.done)
	var period time.Duration
	if rate > 0 {
		// Guard the float→Duration conversion: a tiny rate (1e-10) makes
		// seconds-per-tick overflow int64, and the implementation-defined
		// conversion of an out-of-range float can yield a negative
		// period — turning a nearly-paused clock into an uncapped busy
		// loop. Clamp to MaxInt64 (~292 years/tick) instead.
		p := float64(time.Second) / rate
		if p >= float64(math.MaxInt64) {
			period = time.Duration(math.MaxInt64)
		} else {
			period = time.Duration(p)
		}
	}
	start := time.Now()
	for n := int64(1); ; n++ {
		select {
		case <-clk.stop:
			return
		default:
		}
		if err := w.sess.Step(1); err != nil {
			w.mu.Lock()
			w.clockErr = err
			if w.clk == clk {
				w.clk = nil
			}
			w.mu.Unlock()
			return
		}
		w.ticks.Inc()
		w.notifySubscribers()
		if period > 0 {
			next := start.Add(time.Duration(n) * period)
			if d := time.Until(next); d > 0 {
				select {
				case <-clk.stop:
					return
				case <-time.After(d):
				}
			} else if -d > 4*period {
				// Badly behind (CPU contention, a long checkpoint):
				// re-anchor instead of repaying the whole debt as an
				// uncapped burst that would starve every other world.
				// Bounded catch-up (≤ 4 ticks) still smooths small
				// stalls.
				start = time.Now().Add(-time.Duration(n) * period)
			}
		}
	}
}

// StopClock stops the clock goroutine and waits for it to finish the
// tick in flight. Stopping a stopped clock is a no-op.
func (w *World) StopClock() {
	w.mu.Lock()
	clk := w.clk
	w.clk = nil
	w.mu.Unlock()
	if clk == nil {
		return
	}
	close(clk.stop)
	<-clk.done
}

// Running reports whether the clock goroutine is live.
func (w *World) Running() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.clk != nil
}

// CompiledQuery returns the compiled observation query for src, compiling
// it at most once per world. Returning the same *engine.Query pointer for
// the same source is what lets N spectators share one engine-side index
// build per tick — the engine's provider cache is keyed by query
// identity, not source text.
func (w *World) CompiledQuery(src string) (*engine.Query, []lint.Diagnostic, error) {
	w.qmu.Lock()
	defer w.qmu.Unlock()
	w.qseq++
	if c, ok := w.queries[src]; ok {
		c.seq = w.qseq
		return c.q, c.warns, nil
	}
	q, err := engine.CompileQuery(src, w.prog.Schema, w.prog.Consts)
	if err != nil {
		return nil, nil, err
	}
	// Lint once per cached source: the compile succeeded, so everything
	// the linter finds is warn-severity (notably SGL102, "this maintained
	// answer rederives instead of patching").
	warns := lint.Lint(src, lint.Options{
		Mode:         lint.ModeQuery,
		Schema:       w.prog.Schema,
		Consts:       w.prog.Consts,
		Categoricals: game.Categoricals(),
	})
	if w.queries == nil {
		w.queries = map[string]*cachedQuery{}
	}
	// Bound the cache like the engine bounds its provider cache: a client
	// generating unbounded distinct sources must not pin unbounded
	// programs. Eviction is LRU by use stamp — safe because CompileQuery
	// is pure, so an evicted hot source merely recompiles — and keeps the
	// popular sources (and their engine-side shared index builds) warm
	// where dropping the whole map would cold-start every spectator at
	// once.
	for len(w.queries) >= maxCachedQuerySources {
		var lruSrc string
		var lru *cachedQuery
		for s, c := range w.queries {
			if lru == nil || c.seq < lru.seq {
				lruSrc, lru = s, c
			}
		}
		delete(w.queries, lruSrc)
	}
	w.queries[src] = &cachedQuery{q: q, warns: warns, seq: w.qseq}
	return q, warns, nil
}

// cachedQueryCount reports the live compile-once cache size (tests).
func (w *World) cachedQueryCount() int {
	w.qmu.Lock()
	defer w.qmu.Unlock()
	return len(w.queries)
}

// maxCachedQuerySources bounds a world's source-text query cache.
const maxCachedQuerySources = 256

// Checkpoint writes the world's checkpoint to wr under the session's
// reader lock: spectators keep querying, the clock waits for the write.
func (w *World) Checkpoint(wr io.Writer) error { return w.sess.Checkpoint(wr) }

// Replica reports whether this world is a follower replica.
func (w *World) Replica() bool { return w.replica }

// SetReplicaLag records the writer-tick gap the replication loop last
// observed; surfaced in Status, /readyz and sgld_replica_lag_ticks.
func (w *World) SetReplicaLag(lag int64) {
	w.lagTicks.Store(lag)
	if w.replicaLag != nil {
		w.replicaLag.Set(float64(lag))
	}
}

// bumpTick broadcasts a completed tick to journal long-polls. Called by
// notifySubscribers, which runs after every successful Step(1) on the
// world's single stepping goroutine (clock, synchronous Step, or the
// replication loop).
func (w *World) bumpTick() {
	w.tmu.Lock()
	close(w.tickCh)
	w.tickCh = make(chan struct{})
	w.tmu.Unlock()
}

// WaitTick blocks until the world's tick count exceeds after, the
// timeout elapses, or the world is deleted, and reports whether the tick
// now exceeds after. This is the long-poll primitive behind GET
// …/journal?since=N&wait=…: a follower replica parks here instead of
// hammering the endpoint between ticks.
func (w *World) WaitTick(after int64, timeout time.Duration) bool {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		if w.sess.Tick() > after {
			return true
		}
		w.tmu.Lock()
		ch := w.tickCh
		w.tmu.Unlock()
		// Re-check after capturing the channel: a tick landing in between
		// closed the channel we now hold, but one landing before the
		// capture closed its predecessor — only the state answers.
		if w.sess.Tick() > after {
			return true
		}
		select {
		case <-ch:
		case <-w.subsDone:
			return w.sess.Tick() > after
		case <-deadline.C:
			return w.sess.Tick() > after
		}
	}
}

// replicaStamp identifies a journal entry within one tick (the tick is
// the loop variable in ReplicaAdvance).
type replicaStamp struct {
	origin string
	seq    uint64
}

// ReplicaAdvance replays journal entries and steps the replica world to
// the target tick: for each tick t below target it submits the entries
// stamped t (skipping stamps already pending — the bootstrap checkpoint
// carries the writer's pending buffer, and the first poll after a
// recovery re-serves those entries) and steps once, notifying push
// subscribers exactly as a clock tick would. Entries stamped at or past
// target are ignored; the writer may still be accepting commands for
// those ticks, so the caller re-requests them next round (see
// cluster.Follower). Only the replication loop calls this; it refuses on
// a non-replica world.
func (w *World) ReplicaAdvance(target int64, entries []engine.StampedCommand) error {
	if !w.replica {
		return fmt.Errorf("server: world %s: ReplicaAdvance on a primary world", w.Name)
	}
	w.stepMu.Lock()
	defer w.stepMu.Unlock()
	before := w.sess.Tick()
	defer func() { w.ticks.Add(float64(w.sess.Tick() - before)) }()
	for {
		t := w.sess.Tick()
		if t >= target {
			return nil
		}
		var pending map[replicaStamp]bool
		for _, sc := range entries {
			if sc.Tick != t {
				continue
			}
			if pending == nil {
				pending = map[replicaStamp]bool{}
				for _, p := range w.sess.Pending() {
					pending[replicaStamp{p.Origin, p.Seq}] = true
				}
			}
			if pending[replicaStamp{sc.Origin, sc.Seq}] {
				continue
			}
			if err := w.sess.SubmitStamped(sc); err != nil {
				return fmt.Errorf("server: replica %s: replay tick %d: %w", w.Name, t, err)
			}
		}
		if err := w.sess.Step(1); err != nil {
			return fmt.Errorf("server: replica %s: step: %w", w.Name, err)
		}
		w.notifySubscribers()
	}
}

// ---------------------------------------------------------------------------
// Registry

// Registry is the set of live worlds a server hosts. All methods are
// safe for concurrent use.
type Registry struct {
	mu     sync.Mutex
	worlds map[string]*World

	// Metrics is the Prometheus-style registry all per-world counters
	// live in; the server also exposes it on /metrics.
	Metrics *metrics.Registry
}

// NewRegistry returns an empty registry with its own metrics registry.
func NewRegistry() *Registry {
	r := &Registry{worlds: map[string]*World{}, Metrics: &metrics.Registry{}}
	r.Metrics.Help("sgld_worlds", "Worlds currently hosted.")
	r.Metrics.Help("sgld_sessions_created_total", "Worlds created since start.")
	r.Metrics.Help("sgld_sessions_deleted_total", "Worlds deleted since start.")
	r.Metrics.Help("sgld_ticks_total", "Clock ticks advanced, per session.")
	r.Metrics.Help("sgld_queries_total", "Observation queries served, per session.")
	r.Metrics.Help("sgld_query_seconds_total", "Time spent evaluating observation queries, per session.")
	r.Metrics.Help("sgld_query_errors_total", "Observation queries rejected or failed, per session.")
	r.Metrics.Help("sgld_checkpoints_total", "Checkpoints written, per session.")
	r.Metrics.Help("sgld_commands_total", "Injected commands accepted, per session.")
	r.Metrics.Help("sgld_command_seconds_total", "Time spent accepting injected commands, per session.")
	r.Metrics.Help("sgld_command_errors_total", "Injected command batches rejected, per session.")
	r.Metrics.Help("sgld_restores_total", "Worlds created by restoring a checkpoint.")
	r.Metrics.Help("sgld_subscribers", "Live push subscribers, per session.")
	r.Metrics.Help("sgld_pushes_total", "Answer events pushed to subscribers, per session.")
	r.Metrics.Help("sgld_push_drops_total", "Answer events dropped on slow subscribers (resynced on the next push), per session.")
	r.Metrics.Help("sgld_replica_lag_ticks", "Writer-tick gap a follower replica last observed, per session.")
	// Materialize the unlabeled series eagerly: a fresh daemon must
	// expose sgld_worlds 0 (not an absent metric that trips no-data
	// alerts) before the first session ever arrives.
	r.Metrics.Gauge("sgld_worlds").Set(0)
	r.Metrics.Counter("sgld_sessions_created_total")
	r.Metrics.Counter("sgld_sessions_deleted_total")
	r.Metrics.Counter("sgld_restores_total")
	return r
}

// compileWorldScript compiles src (or the built-in battle script when
// empty) against the battle schema and constants.
func compileWorldScript(src string) (*sem.Program, error) {
	if src == "" {
		src = game.Script
	}
	script, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	return sem.Check(script, game.Schema(), game.Consts())
}

// attachCounters creates the world's per-session metric series. It must
// run inside the registry's critical section, after the duplicate-name
// check: created any earlier, a concurrent Delete of the same name could
// hand this world the dying world's series and then delete them, leaving
// the new world's counters orphaned from /metrics for its lifetime. The
// counters are held as pointers so handlers never get-or-create
// per-session series at request time (the mirror image of the same
// race: a late request must not resurrect a deleted session's series).
func (r *Registry) attachCounters(w *World) {
	l := metrics.L("session", w.Name)
	w.ticks = r.Metrics.Counter("sgld_ticks_total", l)
	w.queriesTotal = r.Metrics.Counter("sgld_queries_total", l)
	w.querySecs = r.Metrics.Counter("sgld_query_seconds_total", l)
	w.queryErrs = r.Metrics.Counter("sgld_query_errors_total", l)
	w.checkpoints = r.Metrics.Counter("sgld_checkpoints_total", l)
	w.commandsTotal = r.Metrics.Counter("sgld_commands_total", l)
	w.commandSecs = r.Metrics.Counter("sgld_command_seconds_total", l)
	w.commandErrs = r.Metrics.Counter("sgld_command_errors_total", l)
	w.subscribers = r.Metrics.Gauge("sgld_subscribers", l)
	w.pushes = r.Metrics.Counter("sgld_pushes_total", l)
	w.pushDrops = r.Metrics.Counter("sgld_push_drops_total", l)
}

// Create builds a fresh world from spec and registers it under name.
// The engine build happens outside the registry lock (large armies take
// a while); on a name collision the loser's engine is discarded.
func (r *Registry) Create(name string, spec WorldSpec) (*World, error) {
	if !ValidName(name) {
		return nil, fmt.Errorf("server: invalid session name %q", name)
	}
	prog, err := compileWorldScript(spec.Script)
	if err != nil {
		return nil, fmt.Errorf("server: compile script: %w", err)
	}
	if spec.Units <= 0 {
		spec.Units = 1000
	}
	if spec.Density <= 0 {
		spec.Density = 0.01
	}
	// Bound the world spec like every other client input: an oversized
	// army is a multi-gigabyte allocation on the request path, and a
	// density beyond what the formations can place makes army generation
	// spin forever looking for a free square (BattleLines confines each
	// player to ~1/6 of the grid).
	if spec.Units > MaxWorldUnits {
		return nil, fmt.Errorf("server: units %d exceeds the limit %d", spec.Units, MaxWorldUnits)
	}
	if spec.Density > MaxWorldDensity {
		return nil, fmt.Errorf("server: density %g exceeds the limit %g (higher occupancies cannot be placed)", spec.Density, MaxWorldDensity)
	}
	wspec := workload.Spec{Units: spec.Units, Density: spec.Density, Seed: spec.Seed, Formation: spec.Formation}
	opts := spec.Tune
	opts.Mode = spec.Mode
	opts.Categoricals = game.Categoricals()
	opts.Seed = spec.Seed
	opts.Side = wspec.Side()
	opts.MoveSpeed = 1
	eng, err := engine.New(prog, game.NewMechanics(), workload.Generate(wspec), opts)
	if err != nil {
		return nil, fmt.Errorf("server: build engine: %w", err)
	}
	// The world keeps the engine's canonical source (not the client's
	// raw text): it is what checkpoints embed, so Script() always equals
	// what a migration target will run.
	return r.register(name, engine.NewSession(eng), prog, eng.Source(), spec.TickRate, false)
}

// Restore builds a world from a checkpoint stream under restore-time
// tuning — the live-migration path: checkpoint a running world, restore
// it here (possibly with different Workers/Incremental), and it
// continues byte-identically. The checkpoint is self-contained (format
// v2 embeds the script), so scriptOverride is normally empty; a
// non-empty override deliberately reopens the world under a different
// program (and is the only way to reopen a version-1 checkpoint, which
// predates the embedded script). tickRate follows the
// WorldSpec.TickRate convention (0 = paused).
func (r *Registry) Restore(name string, ck io.Reader, scriptOverride string, tune engine.Options, tickRate float64) (*World, error) {
	if !ValidName(name) {
		return nil, fmt.Errorf("server: invalid session name %q", name)
	}
	var sess *engine.Session
	if scriptOverride != "" {
		prog, err := compileWorldScript(scriptOverride)
		if err != nil {
			return nil, fmt.Errorf("server: compile script: %w", err)
		}
		sess, err = engine.RestoreSession(ck, prog, game.NewMechanics(), tune)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
	} else {
		var err error
		sess, err = engine.Open(ck, game.NewMechanics(), tune)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
	}
	// The daemon hosts worlds over the battle schema and mechanics; a
	// self-contained checkpoint of some other schema would restore an
	// engine the battle post-processor cannot drive.
	prog := sess.Engine().Program()
	if !prog.Schema.Equal(game.Schema()) {
		return nil, fmt.Errorf("server: checkpoint schema %v is not the battle schema this daemon serves", prog.Schema)
	}
	w, err := r.register(name, sess, prog, sess.Engine().Source(), tickRate, false)
	if err == nil {
		r.Metrics.Counter("sgld_restores_total").Inc()
	}
	return w, err
}

// RegisterReplica publishes a follower world over an already-restored
// session (typically opened from the writer's checkpoint stream). The
// world serves queries, status, checkpoints and push subscriptions like
// any other, but refuses every client-side mutation (step, clock,
// commands, compaction): only the caller's replication loop advances it,
// through ReplicaAdvance. No clock ever starts on a replica — its
// cadence is the writer's.
func (r *Registry) RegisterReplica(name string, sess *engine.Session) (*World, error) {
	if !ValidName(name) {
		return nil, fmt.Errorf("server: invalid session name %q", name)
	}
	prog := sess.Engine().Program()
	if !prog.Schema.Equal(game.Schema()) {
		return nil, fmt.Errorf("server: checkpoint schema %v is not the battle schema this daemon serves", prog.Schema)
	}
	return r.register(name, sess, prog, sess.Engine().Source(), 0, true)
}

// register inserts a built world, failing on duplicate names. Counter
// attachment, publication, and the optional clock start all happen in
// one registry critical section: nothing can observe (or race) the
// world between becoming visible and reaching its requested state, so
// the clock start cannot fail and no rollback path exists.
func (r *Registry) register(name string, sess *engine.Session, prog *sem.Program, script string, tickRate float64, replica bool) (*World, error) {
	w := &World{Name: name, sess: sess, prog: prog, script: script, created: time.Now(), subsDone: make(chan struct{}), tickCh: make(chan struct{}), replica: replica}
	// Lint the canonical source once, outside the registry lock. The
	// program compiled, so every finding is warn-severity; []
	// (not nil) keeps the create response's warnings field an array.
	w.warnings = lint.Lint(script, lint.Options{
		Mode:         lint.ModeScript,
		Schema:       prog.Schema,
		Consts:       prog.Consts,
		Categoricals: game.Categoricals(),
	})
	if w.warnings == nil {
		w.warnings = []lint.Diagnostic{}
	}
	r.mu.Lock()
	if _, dup := r.worlds[name]; dup {
		r.mu.Unlock()
		return nil, fmt.Errorf("server: session %q: %w", name, ErrExists)
	}
	r.attachCounters(w)
	if replica {
		w.replicaLag = r.Metrics.Gauge("sgld_replica_lag_ticks", metrics.L("session", name))
		w.replicaLag.Set(0)
	}
	r.worlds[name] = w
	// Under the registry lock, so concurrent register/Delete cannot
	// publish the gauge updates out of order and leave it stale.
	r.Metrics.Gauge("sgld_worlds").Set(float64(len(r.worlds)))
	if tickRate != 0 {
		rate := tickRate
		if rate < 0 {
			rate = 0 // uncapped
		}
		// Cannot fail: the world is fresh (no clock, no step, not
		// deleted) and unreachable until we release r.mu.
		if err := w.StartClock(rate); err != nil {
			panic(fmt.Sprintf("server: clock start on fresh world %s: %v", name, err))
		}
	}
	r.mu.Unlock()
	r.Metrics.Counter("sgld_sessions_created_total").Inc()
	return w, nil
}

// Get looks a world up by name.
func (r *Registry) Get(name string) (*World, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.worlds[name]
	return w, ok
}

// Delete removes a world and stops its clock. Deleting an absent name
// reports false.
func (r *Registry) Delete(name string) bool {
	r.mu.Lock()
	w, ok := r.worlds[name]
	if ok {
		delete(r.worlds, name)
		r.Metrics.Gauge("sgld_worlds").Set(float64(len(r.worlds)))
		// Drop the dead session's labeled series in the same critical
		// section that removes the world: a daemon churning through
		// world names must not grow /metrics without bound, and a
		// concurrent same-name Create must neither inherit these series
		// nor lose its own to this deletion. (Prometheus handles
		// disappearing series; a recreated world starts its counters
		// from zero, which scrapers treat as a counter reset.)
		r.Metrics.DeleteSeries(metrics.L("session", name))
	}
	r.mu.Unlock()
	if !ok {
		return false
	}
	// Mark first, then stop: StartClock and this marking serialize on
	// w.mu, so either the racing StartClock ran first (its clock is
	// stopped below) or it runs after and refuses — no orphaned clock
	// goroutine either way. Outside the registry lock, because StopClock
	// waits for a tick in flight and a slow tick must not block
	// unrelated Create/Get calls.
	w.mu.Lock()
	w.deleted = true
	w.mu.Unlock()
	w.StopClock()
	// Release every streaming subscriber handler; new Subscribe calls on
	// the unregistered world refuse from here on.
	w.closeSubscribers()
	r.Metrics.Counter("sgld_sessions_deleted_total").Inc()
	return true
}

// List returns the current worlds' statuses, sorted by name.
func (r *Registry) List() []Status {
	r.mu.Lock()
	worlds := make([]*World, 0, len(r.worlds))
	for _, w := range r.worlds {
		worlds = append(worlds, w)
	}
	r.mu.Unlock()
	sort.Slice(worlds, func(i, j int) bool { return worlds[i].Name < worlds[j].Name })
	out := make([]Status, len(worlds))
	for i, w := range worlds {
		out[i] = w.Status()
	}
	return out
}

// Close stops every world's clock (used at daemon shutdown).
func (r *Registry) Close() {
	r.mu.Lock()
	worlds := make([]*World, 0, len(r.worlds))
	for _, w := range r.worlds {
		worlds = append(worlds, w)
	}
	r.mu.Unlock()
	for _, w := range worlds {
		w.StopClock()
	}
}
