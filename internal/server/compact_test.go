package server

import (
	"net/http"
	"testing"
)

// Compaction over the wire: POST …/compact folds the applied journal,
// GET …/journal reports the base and serves suffixes via ?since=, and a
// request for folded history is an explicit 410 Gone — not a silent
// empty list a replay client would mistake for "no inputs".
func TestCompactEndpointAndJournalBase(t *testing.T) {
	ts, _ := newTestServer(t)
	create(t, ts.URL, "cpt", nil)

	inject := func(tick int) {
		t.Helper()
		code := do(t, http.MethodPost, ts.URL+"/v1/sessions/cpt/commands", CommandsRequest{
			Origin: "player-1",
			Commands: []WireCommand{
				{Op: "set", Key: int64(tick % 64), Col: "health", Val: float64(tick)},
				{Op: "set", Key: int64((tick + 7) % 64), Col: "morale", Val: 1},
			},
		}, nil)
		if code != http.StatusOK {
			t.Fatalf("commands at tick %d: status %d", tick, code)
		}
	}
	for tick := 0; tick < 4; tick++ {
		inject(tick)
		if code := do(t, http.MethodPost, ts.URL+"/v1/sessions/cpt/step", StepRequest{Ticks: 1}, nil); code != http.StatusOK {
			t.Fatalf("step: status %d", code)
		}
	}

	var jr JournalResponse
	if code := do(t, http.MethodGet, ts.URL+"/v1/sessions/cpt/journal", nil, &jr); code != http.StatusOK {
		t.Fatalf("journal: status %d", code)
	}
	if jr.Base != 0 || len(jr.Entries) != 8 || jr.Tick != 4 {
		t.Fatalf("pre-compact journal = base %d, %d entries at tick %d; want base 0, 8 entries at tick 4", jr.Base, len(jr.Entries), jr.Tick)
	}

	var cp CompactResponse
	if code := do(t, http.MethodPost, ts.URL+"/v1/sessions/cpt/compact", nil, &cp); code != http.StatusOK {
		t.Fatalf("compact: status %d", code)
	}
	if cp.Base != 4 || cp.Tick != 4 {
		t.Fatalf("compact response = %+v, want base 4 at tick 4", cp)
	}

	if code := do(t, http.MethodGet, ts.URL+"/v1/sessions/cpt/journal", nil, &jr); code != http.StatusOK {
		t.Fatalf("journal after compact: status %d", code)
	}
	if jr.Base != 4 || len(jr.Entries) != 0 {
		t.Fatalf("post-compact journal = base %d, %d entries; want base 4, 0 entries", jr.Base, len(jr.Entries))
	}

	// New traffic lands in the tail and is served from the base on.
	// (Sharded admissions become journal-visible at the next drain
	// boundary — the tick that applies them — so step once.)
	inject(4)
	if code := do(t, http.MethodPost, ts.URL+"/v1/sessions/cpt/step", StepRequest{Ticks: 1}, nil); code != http.StatusOK {
		t.Fatalf("step: status %d", code)
	}
	if code := do(t, http.MethodGet, ts.URL+"/v1/sessions/cpt/journal?since=4", nil, &jr); code != http.StatusOK {
		t.Fatalf("journal?since=4: status %d", code)
	}
	if len(jr.Entries) != 2 {
		t.Fatalf("journal?since=4 = %d entries, want the 2 applied at tick 4", len(jr.Entries))
	}

	// Folded history is gone, explicitly.
	if code := do(t, http.MethodGet, ts.URL+"/v1/sessions/cpt/journal?since=0", nil, nil); code != http.StatusGone {
		t.Fatalf("journal?since=0 after compact: status %d, want 410", code)
	}
	if code := do(t, http.MethodGet, ts.URL+"/v1/sessions/cpt/journal?since=-1", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("journal?since=-1: status %d, want 400", code)
	}
	if code := do(t, http.MethodGet, ts.URL+"/v1/sessions/cpt/journal?since=bogus", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("journal?since=bogus: status %d, want 400", code)
	}
}

// The create-time compact knob auto-folds at every tick boundary: the
// base tracks the tick and the served journal never accumulates applied
// history.
func TestCreateWithCompactKnob(t *testing.T) {
	ts, _ := newTestServer(t)
	create(t, ts.URL, "auto", func(req *CreateRequest) { req.Compact = true })

	for tick := 0; tick < 3; tick++ {
		code := do(t, http.MethodPost, ts.URL+"/v1/sessions/auto/commands", CommandsRequest{
			Origin:   "bot",
			Commands: []WireCommand{{Op: "set", Key: int64(tick), Col: "health", Val: 2}},
		}, nil)
		if code != http.StatusOK {
			t.Fatalf("commands: status %d", code)
		}
		if code := do(t, http.MethodPost, ts.URL+"/v1/sessions/auto/step", StepRequest{Ticks: 1}, nil); code != http.StatusOK {
			t.Fatalf("step: status %d", code)
		}
	}

	var jr JournalResponse
	if code := do(t, http.MethodGet, ts.URL+"/v1/sessions/auto/journal", nil, &jr); code != http.StatusOK {
		t.Fatalf("journal: status %d", code)
	}
	if jr.Base != 3 || jr.Tick != 3 || len(jr.Entries) != 0 {
		t.Fatalf("auto-compacted journal = base %d, %d entries at tick %d; want base 3, 0 entries at tick 3", jr.Base, len(jr.Entries), jr.Tick)
	}
}
