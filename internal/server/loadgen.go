// Load generator: the workload driver that proves the serving layer
// sustains many concurrent worlds with spectator query fan-out. It is a
// pure HTTP client of the API in server.go — it exercises exactly the
// code path external clients do, so its numbers include JSON and
// transport cost, not just engine cost.
//
// Shape of the run: Worlds sessions are created, each clock started at
// TickRate; Spectators goroutines per world then issue observation
// queries (the windowed Zone aggregate — one range-tree probe indexed,
// an O(n) scan otherwise) with rotating probe windows for Duration,
// while Actors goroutines per world inject commands through the command
// endpoint (rotating set-column mutations — the player half of the
// traffic mix). Results come back as one metrics.LoadGenRow per world:
// achieved tick rate against target, query and command throughput, and
// client-observed latency quantiles for both.
package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"github.com/epicscale/sgl/internal/metrics"
)

// LoadGenConfig parameterizes one load-generation run.
type LoadGenConfig struct {
	// BaseURL of the target daemon, e.g. "http://127.0.0.1:7070".
	BaseURL string
	// Worlds is how many concurrent sessions to host (the acceptance bar
	// is ≥ 8). Sessions are named loadgen-0 … loadgen-{W-1}.
	Worlds int
	// Units / Density / Seed shape each world's army (world i runs seed
	// Seed+i so the worlds are distinct simulations, not replicas).
	Units   int
	Density float64
	Seed    uint64
	// Script is the SGL source each world runs (empty = battle script).
	Script string
	// TickRate is each world's clock target in ticks/second (0 =
	// uncapped).
	TickRate float64
	// Spectators is the number of concurrent query goroutines per world.
	Spectators int
	// Actors is the number of concurrent command-injecting goroutines
	// per world (0 = spectators only). Each actor rotates set-column
	// commands across the army through POST …/commands.
	Actors int
	// Subscribers is the number of push subscribers per world (0 =
	// none). Each holds one GET …/subscribe SSE stream on a fixed probe
	// window for the whole run and counts the answer events pushed; the
	// report compares that count against the polls the same freshness
	// would have cost (one per subscriber per tick).
	Subscribers int
	// Duration is the measurement window.
	Duration time.Duration
	// Workers / Incremental tune each session's engine. Compact turns on
	// end-of-tick journal compaction — the right setting for a long
	// actor-heavy run, where an uncompacted journal grows with every
	// injected command.
	Workers     int
	Incremental bool
	Compact     bool
	// KeepSessions leaves the worlds running after the run (for poking at
	// /metrics afterwards); default tears them down.
	KeepSessions bool
}

// loadgenQuery is the spectator question every goroutine asks: activity
// and total health inside a moving window — literally the aggregate the
// QueryFanout experiment measures, so the loadgen numbers and the
// experiment's stay comparable by construction.
const loadgenQuery = metrics.FanoutQuery

// LoadGen drives one run and returns a row per world. The error is
// non-nil only for setup/teardown failures; individual query failures
// are counted in the rows instead (a load generator that aborts on the
// first timeout measures nothing).
func LoadGen(cfg LoadGenConfig) (rows []metrics.LoadGenRow, err error) {
	if cfg.Worlds <= 0 {
		cfg.Worlds = 8
	}
	if cfg.Units <= 0 {
		cfg.Units = 1000
	}
	if cfg.Spectators <= 0 {
		cfg.Spectators = 4
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	client := &http.Client{Timeout: 30 * time.Second}

	name := func(i int) string { return fmt.Sprintf("loadgen-%d", i) }

	// Teardown registered before creation: a mid-loop create failure
	// must still delete the worlds already created (their clocks are
	// running on the target daemon), not leak them. A failed delete is a
	// run failure (unless an earlier error already is): a world left
	// ticking on the daemon would silently poison the next run's numbers.
	created := 0
	defer func() {
		if cfg.KeepSessions {
			return
		}
		for i := 0; i < created; i++ {
			req, _ := http.NewRequest(http.MethodDelete, cfg.BaseURL+"/v1/sessions/"+name(i), nil)
			resp, derr := client.Do(req)
			if derr == nil {
				derr = decodeResponse(resp, nil)
				resp.Body.Close()
			}
			if derr != nil && err == nil {
				err = fmt.Errorf("loadgen: delete %s: %w", name(i), derr)
			}
		}
	}()

	// Create the worlds, clocks running.
	for i := 0; i < cfg.Worlds; i++ {
		req := CreateRequest{
			Name:    name(i),
			Script:  cfg.Script,
			Units:   cfg.Units,
			Density: cfg.Density,
			Seed:    cfg.Seed + uint64(i),
			Workers: cfg.Workers, Incremental: cfg.Incremental, Compact: cfg.Compact,
			TickRate: cfg.TickRate,
		}
		if req.TickRate == 0 {
			req.TickRate = -1 // create-time 0 means "don't start"; -1 = uncapped
		}
		if err := postJSON(client, cfg.BaseURL+"/v1/sessions", req, nil); err != nil {
			return nil, fmt.Errorf("loadgen: create %s: %w", name(i), err)
		}
		created++
	}

	// Tick counts at the start of the window (clocks are already running;
	// the window measures steady-state serving, not engine warmup). Each
	// world's window is timed at its own status fetches: the fetches are
	// sequential HTTP calls, and dividing every world's tick delta by one
	// shared wall-clock window would inflate the rates of the worlds
	// sampled late.
	startTicks := make([]int64, cfg.Worlds)
	startAt := make([]time.Time, cfg.Worlds)
	for i := range startTicks {
		var st Status
		if err := getJSON(client, cfg.BaseURL+"/v1/sessions/"+name(i), &st); err != nil {
			return nil, fmt.Errorf("loadgen: status %s: %w", name(i), err)
		}
		startTicks[i] = st.Tick
		startAt[i] = time.Now()
	}

	// Spectator and actor fan-out.
	type worldSample struct {
		mu         sync.Mutex
		latency    []float64 // micros
		errs       int
		cmdLatency []float64 // micros
		cmdErrs    int
		pushes     int
		subErrs    int
	}
	samples := make([]worldSample, cfg.Worlds)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < cfg.Worlds; i++ {
		for sp := 0; sp < cfg.Spectators; sp++ {
			wg.Add(1)
			go func(i, sp int) {
				defer wg.Done()
				url := cfg.BaseURL + "/v1/sessions/" + name(i) + "/query"
				ws := &samples[i]
				for n := 0; ; n++ {
					select {
					case <-stop:
						return
					default:
					}
					// Rotate the probe window so spectators don't all ask
					// the same question of the same partition.
					x := float64((7*n + 13*sp) % 97)
					y := float64((13*n + 29*sp) % 89)
					q := QueryRequest{Src: loadgenQuery, Args: []float64{x, y, 12}}
					t0 := time.Now()
					err := postJSON(client, url, q, &QueryResponse{})
					dt := float64(time.Since(t0).Nanoseconds()) / 1e3
					// A request in flight when the window closed finishes
					// during the drain; counting it would inflate QPS
					// against a window that ends at stop.
					select {
					case <-stop:
						return
					default:
					}
					ws.mu.Lock()
					if err != nil {
						ws.errs++
					} else {
						ws.latency = append(ws.latency, dt)
					}
					ws.mu.Unlock()
				}
			}(i, sp)
		}
	}
	// Actor fan-out: each actor rotates morale nudges across the army —
	// always-valid mutations (keys 0…Units-1 persist through resurrection),
	// so every submission should be accepted and the latency sample
	// measures the command path, not rejection handling.
	for i := 0; i < cfg.Worlds; i++ {
		for a := 0; a < cfg.Actors; a++ {
			wg.Add(1)
			go func(i, a int) {
				defer wg.Done()
				url := cfg.BaseURL + "/v1/sessions/" + name(i) + "/commands"
				ws := &samples[i]
				for n := 0; ; n++ {
					select {
					case <-stop:
						return
					default:
					}
					key := int64((17*n + 5*a) % cfg.Units)
					req := CommandsRequest{
						Origin: fmt.Sprintf("actor-%d", a),
						Commands: []WireCommand{
							{Op: "set", Key: key, Col: "morale", Val: float64(3 + (n+a)%6)},
						},
					}
					t0 := time.Now()
					err := postJSON(client, url, req, &CommandsResponse{})
					dt := float64(time.Since(t0).Nanoseconds()) / 1e3
					select {
					case <-stop:
						return
					default:
					}
					ws.mu.Lock()
					if err != nil {
						ws.cmdErrs++
					} else {
						ws.cmdLatency = append(ws.cmdLatency, dt)
					}
					ws.mu.Unlock()
				}
			}(i, a)
		}
	}
	// Subscriber fan-out: each subscriber holds one SSE stream on a fixed
	// probe window (fixed on purpose — a maintained answer is per probe,
	// so a stable probe is what a dashboard or client widget looks like)
	// and counts the answer events pushed. The stream client has no
	// timeout: the connection is supposed to outlive the whole window.
	// Streams end via context cancel after the window closes.
	subCtx, subCancel := context.WithCancel(context.Background())
	defer subCancel()
	streamClient := &http.Client{}
	for i := 0; i < cfg.Worlds; i++ {
		for sb := 0; sb < cfg.Subscribers; sb++ {
			wg.Add(1)
			go func(i, sb int) {
				defer wg.Done()
				ws := &samples[i]
				x := float64((17*sb + 7) % 97)
				y := float64((23*sb + 31) % 89)
				u := fmt.Sprintf("%s/v1/sessions/%s/subscribe?q=%s&args=%g,%g,12",
					cfg.BaseURL, name(i), url.QueryEscape(loadgenQuery), x, y)
				req, rerr := http.NewRequestWithContext(subCtx, http.MethodGet, u, nil)
				if rerr != nil {
					ws.mu.Lock()
					ws.subErrs++
					ws.mu.Unlock()
					return
				}
				resp, rerr := streamClient.Do(req)
				if rerr != nil {
					ws.mu.Lock()
					ws.subErrs++
					ws.mu.Unlock()
					return
				}
				defer resp.Body.Close()
				if resp.StatusCode/100 != 2 {
					io.Copy(io.Discard, resp.Body)
					ws.mu.Lock()
					ws.subErrs++
					ws.mu.Unlock()
					return
				}
				sc := bufio.NewScanner(resp.Body)
				// Answer vectors scale with query outputs; the default 64KB
				// token cap would kill the stream mid-window on a long data
				// line and silently under-count pushes.
				sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
				for sc.Scan() {
					if strings.HasPrefix(sc.Text(), "data: ") {
						ws.mu.Lock()
						ws.pushes++
						ws.mu.Unlock()
					}
				}
				// A stream that died mid-window (network failure, oversized
				// line) must count as an error, or the report under-states
				// pushes with zero recorded failures. The window-close
				// cancel is the one expected way out.
				if err := sc.Err(); err != nil && !errors.Is(err, context.Canceled) {
					ws.mu.Lock()
					ws.subErrs++
					ws.mu.Unlock()
				}
			}(i, sb)
		}
	}
	windowStart := time.Now()
	time.Sleep(cfg.Duration)
	// The QPS window closes when spectators are told to stop — the
	// post-stop drain of in-flight requests (which can run long on a
	// saturated daemon) must not deflate the throughput denominator.
	window := time.Since(windowStart).Seconds()
	close(stop)
	subCancel() // unblock the SSE readers
	wg.Wait()

	// Collect: end ticks and per-world rows. Tick rates use each world's
	// own start/end fetch times — the clocks keep running while the
	// sequential end-of-window fetches drain, and the shared window would
	// misattribute those extra ticks.
	rows = make([]metrics.LoadGenRow, 0, cfg.Worlds)
	for i := 0; i < cfg.Worlds; i++ {
		var st Status
		if err := getJSON(client, cfg.BaseURL+"/v1/sessions/"+name(i), &st); err != nil {
			return nil, fmt.Errorf("loadgen: status %s: %w", name(i), err)
		}
		elapsed := time.Since(startAt[i]).Seconds()
		ws := &samples[i]
		ws.mu.Lock()
		mean, p50, p99, maxv := metrics.LatencySummary(ws.latency)
		nq := len(ws.latency)
		errs := ws.errs
		_, cmdP50, cmdP99, _ := metrics.LatencySummary(ws.cmdLatency)
		nc := len(ws.cmdLatency)
		cmdErrs := ws.cmdErrs
		pushes := ws.pushes
		subErrs := ws.subErrs
		ws.mu.Unlock()
		ticks := st.Tick - startTicks[i]
		rows = append(rows, metrics.LoadGenRow{
			World:      st.Name,
			Ticks:      ticks,
			TickRate:   float64(ticks) / elapsed,
			TargetRate: cfg.TickRate,
			Queries:    nq,
			QPS:        float64(nq) / window,
			MeanMicros: mean, P50Micros: p50, P99Micros: p99, MaxMicros: maxv,
			Errors:       errs,
			Commands:     nc,
			CPS:          float64(nc) / window,
			CmdP50Micros: cmdP50, CmdP99Micros: cmdP99,
			CmdErrors:   cmdErrs,
			Subscribers: cfg.Subscribers,
			Pushes:      pushes,
			PushRate:    float64(pushes) / window,
			PollEquiv:   int64(cfg.Subscribers) * ticks,
			SubErrors:   subErrs,
		})
	}
	return rows, nil
}

// postJSON posts v and decodes the response into out (ignored when nil).
// Non-2xx statuses are errors carrying the server's message.
func postJSON(c *http.Client, url string, v, out any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	resp, err := c.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeResponse(resp, out)
}

// getJSON fetches url into out.
func getJSON(c *http.Client, url string, out any) error {
	resp, err := c.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeResponse(resp, out)
}

func decodeResponse(resp *http.Response, out any) error {
	if resp.StatusCode/100 != 2 {
		var e errorResponse
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("unexpected status %s", resp.Status)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
