// Push subscriptions: GET /v1/sessions/{name}/subscribe streams a
// query's answer over Server-Sent Events, pushing only when the value
// changes. This is the delivery half of maintained query answers — the
// world's clock evaluates every live subscription once per tick through
// Session.QueryMaintained* (so N subscribers on the same source share
// one maintained answer and one classification per tick), compares the
// result bitwise against the last pushed value, and enqueues an event
// only on change.
//
// Backpressure policy: the tick never blocks on a subscriber. Each
// subscriber owns a small buffered channel; when it is full the event is
// dropped, the drop is counted (sgld_push_drops_total), and the
// subscriber is marked for resync — the next tick pushes unconditionally
// (with "resync": true) so a slow client that catches up is current
// again after one event, having missed intermediate values, never having
// stalled the simulation.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"github.com/epicscale/sgl/internal/engine"
	"github.com/epicscale/sgl/internal/sgl/lint"
)

// subSpec is one subscription's evaluation: a compiled query plus the
// probe form, mirroring QueryRequest.
type subSpec struct {
	q     *engine.Query
	warns []lint.Diagnostic // the query's lint findings, pushed once at stream start
	args  []float64
	x, y  float64
	pos   bool // probe at (x, y)
	unit  int64
	byID  bool // probe from live unit `unit`
}

// eval runs the spec against the engine through the maintained-answer
// path. Must be called under a Session view (the clock's notify does).
func (sp *subSpec) eval(e *engine.Engine) ([]float64, error) {
	switch {
	case sp.byID:
		return e.QueryMaintainedUnit(sp.q, sp.unit, sp.args...)
	case sp.pos:
		return e.QueryMaintainedAt(sp.q, sp.x, sp.y, sp.args...)
	default:
		return e.QueryMaintained(sp.q, sp.args...)
	}
}

// SubscribeEvent is the JSON payload of one SSE "answer" event.
type SubscribeEvent struct {
	Tick   int64     `json:"tick"`
	Values []float64 `json:"values,omitempty"`
	// Error carries a per-tick evaluation failure (e.g. the probed unit
	// despawned); the subscription stays live and recovers when the
	// query evaluates again.
	Error string `json:"error,omitempty"`
	// Resync marks the first event after the subscriber fell behind and
	// intermediate events were dropped.
	Resync bool `json:"resync,omitempty"`
}

// subEventBuffer is each subscriber's channel depth. Small on purpose:
// an SSE writer that cannot drain a handful of per-tick events is slow,
// and the policy for slow is drop-and-resync, not buffer.
const subEventBuffer = 8

type subscriber struct {
	spec subSpec
	ch   chan SubscribeEvent
	// mu guards the compare-and-push state below. The notifying
	// goroutine is single (clock or synchronous Step, never both — Step
	// refuses while the clock runs), but Subscribe's post-registration
	// catch-up push may race one notify run, so the state needs a real
	// lock; it is per-subscriber and held only across a compare+send, so
	// it never serializes the fan-out.
	mu       sync.Mutex
	last     []float64
	lastErr  string
	hasLast  bool
	dropped  bool
	lastTick int64 // tick of the newest state in last/lastErr
}

// Subscribe registers a push subscriber and returns it along with the
// initial answer event (evaluated inside the same view that snapshots
// the tick). It fails if the world was deleted or the query's probe form
// rejects the spec.
func (w *World) Subscribe(spec subSpec) (*subscriber, SubscribeEvent, error) {
	var ev SubscribeEvent
	var err error
	w.sess.View(func(e *engine.Engine) {
		ev.Tick = e.TickCount()
		ev.Values, err = spec.eval(e)
	})
	if err != nil {
		return nil, ev, err
	}
	sub := &subscriber{spec: spec, ch: make(chan SubscribeEvent, subEventBuffer)}
	sub.last, sub.hasLast, sub.lastTick = ev.Values, true, ev.Tick
	w.submu.Lock()
	if w.subsClosed {
		w.submu.Unlock()
		return nil, ev, fmt.Errorf("server: world %s: deleted", w.Name)
	}
	if w.subs == nil {
		w.subs = map[*subscriber]struct{}{}
	}
	w.subs[sub] = struct{}{}
	w.subscribers.Set(float64(len(w.subs)))
	w.pushes.Inc() // the initial answer is a push too
	w.submu.Unlock()

	// A tick that landed between the initial evaluation above and the
	// registration just made was notified before this subscriber existed;
	// without a re-check the client would hold the pre-tick answer until
	// the value next changes — forever, if the clock stops here. Evaluate
	// once more and enqueue a catch-up event if the world moved on.
	w.sess.View(func(e *engine.Engine) {
		tick := e.TickCount()
		if tick == ev.Tick {
			return
		}
		vals, verr := sub.spec.eval(e)
		errStr := ""
		if verr != nil {
			errStr = verr.Error()
		}
		sub.mu.Lock()
		defer sub.mu.Unlock()
		if tick <= sub.lastTick {
			return // a concurrent notify already pushed fresher state
		}
		if errStr == sub.lastErr && sameValues(vals, sub.last) {
			sub.lastTick = tick
			return
		}
		select {
		case sub.ch <- SubscribeEvent{Tick: tick, Values: vals, Error: errStr}:
			sub.last, sub.lastErr, sub.hasLast = vals, errStr, true
			sub.lastTick = tick
			w.pushes.Inc()
		default:
			sub.dropped = true
			w.pushDrops.Inc()
		}
	})
	return sub, ev, nil
}

// Unsubscribe removes a subscriber; idempotent.
func (w *World) Unsubscribe(sub *subscriber) {
	w.submu.Lock()
	defer w.submu.Unlock()
	delete(w.subs, sub)
	w.subscribers.Set(float64(len(w.subs)))
}

// closeSubscribers releases every streaming handler and refuses new
// subscriptions; called exactly once, by Registry.Delete.
func (w *World) closeSubscribers() {
	w.submu.Lock()
	defer w.submu.Unlock()
	if w.subsClosed {
		return
	}
	w.subsClosed = true
	close(w.subsDone)
}

// notifySubscribers evaluates every live subscription against the
// post-tick snapshot and pushes the answers that changed. Runs on the
// world's single notifying goroutine right after a successful Step(1);
// the nonblocking send is the whole backpressure policy. submu is held
// only to snapshot the subscriber set — never across the evaluation
// fan-out, so Subscribe/Unsubscribe (and SSE handler teardown) are not
// serialized behind the tick. A subscriber removed concurrently may
// still receive one last event into its buffered channel; the handler
// is gone, so it is simply never read.
func (w *World) notifySubscribers() {
	// Every completed tick also wakes journal long-polls (WaitTick):
	// notifySubscribers is the one per-tick hook every stepping path
	// (clock, synchronous Step, replica replay) already runs.
	w.bumpTick()
	w.submu.Lock()
	subs := make([]*subscriber, 0, len(w.subs))
	for sub := range w.subs {
		subs = append(subs, sub)
	}
	w.submu.Unlock()
	if len(subs) == 0 {
		return
	}
	w.sess.View(func(e *engine.Engine) {
		tick := e.TickCount()
		for _, sub := range subs {
			vals, err := sub.spec.eval(e)
			errStr := ""
			if err != nil {
				errStr = err.Error()
			}
			sub.mu.Lock()
			if !sub.dropped && sub.hasLast && errStr == sub.lastErr && sameValues(vals, sub.last) {
				sub.mu.Unlock()
				continue
			}
			ev := SubscribeEvent{Tick: tick, Values: vals, Error: errStr, Resync: sub.dropped}
			select {
			case sub.ch <- ev:
				sub.last, sub.lastErr, sub.hasLast = vals, errStr, true
				sub.lastTick = tick
				sub.dropped = false
				sub.mu.Unlock()
				w.pushes.Inc()
			default:
				sub.dropped = true
				sub.mu.Unlock()
				w.pushDrops.Inc()
			}
		}
	})
}

// sameValues compares answer vectors bitwise, so NaN outputs compare
// stable instead of pushing every tick.
func sameValues(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// parseSubSpec builds a subscription spec from the request's query
// string: q (required source), args (comma-separated floats), and at
// most one probe — x & y, or unit.
func parseSubSpec(wd *World, r *http.Request) (subSpec, error) {
	var sp subSpec
	src := r.URL.Query().Get("q")
	if src == "" {
		return sp, errors.New("query parameter q is required")
	}
	q, warns, err := wd.CompiledQuery(src)
	if err != nil {
		return sp, err
	}
	sp.q, sp.warns = q, warns
	if raw := r.URL.Query().Get("args"); raw != "" {
		for _, part := range strings.Split(raw, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				return sp, fmt.Errorf("bad args value %q: %v", part, err)
			}
			sp.args = append(sp.args, v)
		}
	}
	xs, ys := r.URL.Query().Get("x"), r.URL.Query().Get("y")
	if (xs == "") != (ys == "") {
		return sp, errors.New("positional subscription needs both x and y")
	}
	if xs != "" {
		if sp.x, err = strconv.ParseFloat(xs, 64); err != nil {
			return sp, fmt.Errorf("bad x %q: %v", xs, err)
		}
		if sp.y, err = strconv.ParseFloat(ys, 64); err != nil {
			return sp, fmt.Errorf("bad y %q: %v", ys, err)
		}
		sp.pos = true
	}
	if us := r.URL.Query().Get("unit"); us != "" {
		if sp.pos {
			return sp, errors.New("unit and x/y probes are mutually exclusive")
		}
		if sp.unit, err = strconv.ParseInt(us, 10, 64); err != nil {
			return sp, fmt.Errorf("bad unit %q: %v", us, err)
		}
		sp.byID = true
	}
	return sp, nil
}

// handleSubscribe streams maintained answers as SSE "answer" events.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	wd, ok := s.world(w, r)
	if !ok {
		return
	}
	spec, err := parseSubSpec(wd, r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	sub, initial, err := wd.Subscribe(spec)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer wd.Unsubscribe(sub)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // common reverse proxies buffer SSE otherwise
	w.WriteHeader(http.StatusOK)
	// Lint findings ride the stream once, before the first answer, so a
	// subscriber learns up front that (say) its non-divisible aggregate
	// rederives the full answer every dirty tick — and then keeps
	// receiving correct answers anyway.
	if len(spec.warns) > 0 {
		if err := writeSSEWarnings(w, spec.warns); err != nil {
			return
		}
	}
	if err := writeSSE(w, initial); err != nil {
		return
	}
	flusher.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-wd.subsDone:
			return
		case ev := <-sub.ch:
			if err := writeSSE(w, ev); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

// writeSSE renders one "answer" event in SSE framing.
func writeSSE(w http.ResponseWriter, ev SubscribeEvent) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: answer\ndata: %s\n\n", data)
	return err
}

// writeSSEWarnings renders the subscription's lint findings as a single
// "warnings" event carrying a JSON array of diagnostics.
func writeSSEWarnings(w http.ResponseWriter, warns []lint.Diagnostic) error {
	data, err := json.Marshal(warns)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: warnings\ndata: %s\n\n", data)
	return err
}
