// HTTP/JSON surface of the multi-session daemon. Routes (all JSON unless
// noted):
//
//	POST   /v1/sessions                     create a world (from script or checkpoint)
//	GET    /v1/sessions                     list worlds
//	GET    /v1/sessions/{name}              one world's status
//	DELETE /v1/sessions/{name}              stop clock, remove world
//	POST   /v1/sessions/{name}/step         advance N ticks synchronously
//	POST   /v1/sessions/{name}/run          start the clock at a tick rate
//	POST   /v1/sessions/{name}/stop         stop the clock
//	POST   /v1/sessions/{name}/query        evaluate an observation query
//	GET    /v1/sessions/{name}/subscribe    push changed answers (SSE)
//	POST   /v1/sessions/{name}/commands     inject commands (spawn/despawn/set/tune)
//	GET    /v1/sessions/{name}/journal      download the input journal (?since=N for a suffix, &wait=D to long-poll)
//	POST   /v1/sessions/{name}/compact      fold the applied journal into the base
//	POST   /v1/sessions/{name}/checkpoint   write a checkpoint into the data dir
//	GET    /v1/sessions/{name}/checkpoint   stream a checkpoint (binary)
//	PUT    /v1/sessions/{name}/checkpoint   create a world from a pushed checkpoint stream (binary body)
//	GET    /metrics                         Prometheus text exposition
//	GET    /healthz                         liveness probe
//	GET    /readyz                          readiness + per-world lag report (cluster signals)
//
// Error responses are {"error": "..."} with a 4xx/5xx status. The
// checkpoint data directory is the daemon's only filesystem surface;
// file names are validated to be flat path components, so clients cannot
// escape it. Checkpoints are self-contained (format v2 embeds the
// script), so a checkpoint file is one atomic rename — no sidecar, no
// pairing discipline.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"github.com/epicscale/sgl/internal/engine"
	"github.com/epicscale/sgl/internal/game"
	"github.com/epicscale/sgl/internal/geom"
	"github.com/epicscale/sgl/internal/sgl/lint"
	"github.com/epicscale/sgl/internal/table"
	"github.com/epicscale/sgl/internal/workload"
)

// Server glues the registry to an http.Handler.
type Server struct {
	reg *Registry
	// dataDir is where POST …/checkpoint writes and restore-by-file
	// reads. Empty disables file-based checkpoints (streaming still
	// works).
	dataDir string
	mux     *http.ServeMux
}

// New builds a server around reg. dataDir may be empty to disable
// file-based checkpoint/restore.
func New(reg *Registry, dataDir string) *Server {
	s := &Server{reg: reg, dataDir: dataDir, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	s.mux.HandleFunc("GET /v1/sessions", s.handleList)
	s.mux.HandleFunc("GET /v1/sessions/{name}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/sessions/{name}", s.handleDelete)
	s.mux.HandleFunc("POST /v1/sessions/{name}/step", s.handleStep)
	s.mux.HandleFunc("POST /v1/sessions/{name}/run", s.handleRun)
	s.mux.HandleFunc("POST /v1/sessions/{name}/stop", s.handleStop)
	s.mux.HandleFunc("POST /v1/sessions/{name}/query", s.handleQuery)
	s.mux.HandleFunc("GET /v1/sessions/{name}/subscribe", s.handleSubscribe)
	s.mux.HandleFunc("POST /v1/sessions/{name}/commands", s.handleCommands)
	s.mux.HandleFunc("GET /v1/sessions/{name}/journal", s.handleJournal)
	s.mux.HandleFunc("POST /v1/sessions/{name}/compact", s.handleCompact)
	s.mux.HandleFunc("POST /v1/sessions/{name}/checkpoint", s.handleCheckpointFile)
	s.mux.HandleFunc("GET /v1/sessions/{name}/checkpoint", s.handleCheckpointStream)
	s.mux.HandleFunc("PUT /v1/sessions/{name}/checkpoint", s.handleCheckpointPut)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	return s
}

// Registry returns the server's world registry.
func (s *Server) Registry() *Registry { return s.reg }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// ---------------------------------------------------------------------------
// Wire types

// CreateRequest creates a world. Exactly one of the two creation paths is
// used: Restore names a checkpoint file in the data dir (live-migration
// arrival); otherwise the world is generated from Script + army spec.
type CreateRequest struct {
	Name string `json:"name"`

	// Fresh-world path.
	Script    string  `json:"script,omitempty"`  // SGL source; empty = built-in battle script
	Units     int     `json:"units,omitempty"`   // default 1000
	Density   float64 `json:"density,omitempty"` // default 0.01
	Seed      uint64  `json:"seed,omitempty"`
	Formation string  `json:"formation,omitempty"` // "lines" (default) or "scattered"
	Mode      string  `json:"mode,omitempty"`      // "indexed" (default) or "naive"

	// Restore path: checkpoint file name in the data dir. Checkpoints
	// are self-contained (the script travels inside the stream); a
	// non-empty Script deliberately overrides the embedded one.
	Restore string `json:"restore,omitempty"`

	// Per-session determinism-neutral tuning. Compact folds the applied
	// journal prefix into the checkpoint base at the end of every tick,
	// keeping checkpoint size flat under sustained command traffic at
	// the cost of genesis replay (GET …/journal reports the base).
	Workers              int     `json:"workers,omitempty"`
	Incremental          bool    `json:"incremental,omitempty"`
	IncrementalThreshold float64 `json:"incthreshold,omitempty"`
	Compact              bool    `json:"compact,omitempty"`

	// TickRate, when nonzero, starts the clock immediately (ticks/second;
	// negative = uncapped).
	TickRate float64 `json:"tickrate,omitempty"`
}

// StepRequest advances a world synchronously.
type StepRequest struct {
	Ticks int `json:"ticks"`
}

// RunRequest starts a world's clock.
type RunRequest struct {
	// TickRate is the target ticks per second; <= 0 runs uncapped.
	TickRate float64 `json:"tickrate"`
}

// QueryRequest evaluates a compiled-once observation query. The probe
// form follows the Session API: no X/Y/Unit → Engine.Query, X+Y →
// QueryAt, Unit → QueryUnit. Scan selects the naive-scan evaluator (the
// differential oracle; mostly for tests and measurement).
type QueryRequest struct {
	Src  string    `json:"src"`
	Args []float64 `json:"args,omitempty"`
	X    *float64  `json:"x,omitempty"`
	Y    *float64  `json:"y,omitempty"`
	Unit *int64    `json:"unit,omitempty"`
	Scan bool      `json:"scan,omitempty"`
}

// QueryResponse carries one evaluation's outputs. Warnings holds the
// query's lint findings (computed once per cached source, all
// warn-severity since the query compiled) so clients see the SGL1xx
// performance classification of what they just ran.
type QueryResponse struct {
	Name     string            `json:"name"`
	Tick     int64             `json:"tick"`
	Outputs  []string          `json:"outputs"`
	Values   []float64         `json:"values"`
	Warnings []lint.Diagnostic `json:"warnings,omitempty"`
}

// CreateResponse is the body of a successful create/restore: the
// world's status plus the script's lint findings. Warnings is always an
// array (possibly empty), never null — the script compiled, so every
// finding is warn-severity.
type CreateResponse struct {
	Status
	Warnings []lint.Diagnostic `json:"warnings"`
}

// CommandsRequest injects a batch of typed commands into a world's
// input buffer; they apply at the next tick boundary in the canonical
// (tick, origin, sequence) order. The batch is all-or-nothing: if any
// command fails validation, none is enqueued.
type CommandsRequest struct {
	// Origin identifies the submitter; commands from one origin apply in
	// submission order relative to each other.
	Origin string `json:"origin,omitempty"`
	// Commands is the batch, bounded by MaxCommandsPerRequest.
	Commands []WireCommand `json:"commands"`
}

// WireCommand is the JSON shape of one injected command. Op selects the
// mutation and which other fields matter:
//
//	spawn:   key, player, unittype, x, y   (a new battle unit)
//	despawn: key
//	set:     key, col, val
//	tune:    name, val                     (a game constant)
type WireCommand struct {
	Op       string  `json:"op"`
	Key      int64   `json:"key,omitempty"`
	Player   int     `json:"player,omitempty"`
	UnitType int     `json:"unittype,omitempty"`
	X        float64 `json:"x,omitempty"`
	Y        float64 `json:"y,omitempty"`
	Col      string  `json:"col,omitempty"`
	Name     string  `json:"name,omitempty"`
	Val      float64 `json:"val,omitempty"`
}

// CommandsResponse acknowledges an accepted batch.
type CommandsResponse struct {
	// Accepted is the number of commands enqueued (the whole batch).
	Accepted int `json:"accepted"`
	// Tick is the world tick the commands were stamped with; they apply
	// at the start of the tick that advances the world past it.
	Tick int64 `json:"tick"`
}

// JournalResponse carries a world's input journal.
type JournalResponse struct {
	Name string `json:"name"`
	// Tick is the world's tick count when the journal was read.
	Tick int64 `json:"tick"`
	// Base is the journal's compaction base: entries stamped before this
	// tick have been folded into the checkpoint state and are no longer
	// retrievable. 0 means the journal reaches back to genesis.
	Base int64 `json:"base"`
	// Entries is every retained accepted command with its (tick, origin,
	// seq) stamp, in acceptance order, starting at Base (or at ?since=N
	// when the client asks for a suffix).
	Entries []engine.StampedCommand `json:"entries"`
}

// CheckpointRequest writes a checkpoint file into the data dir.
type CheckpointRequest struct {
	// File is the checkpoint file name; empty derives "<session>.ckpt".
	File string `json:"file,omitempty"`
}

// CheckpointResponse reports where a checkpoint landed.
type CheckpointResponse struct {
	File string `json:"file"`
	Tick int64  `json:"tick"`
}

// errorResponse is every non-2xx body.
type errorResponse struct {
	Error string `json:"error"`
}

// ---------------------------------------------------------------------------
// Helpers

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// decodeJSON decodes a request body strictly (unknown fields are errors,
// catching misspelled tuning knobs instead of silently ignoring them).
// Bodies over maxRequestBytes are rejected with 413 — distinguishable
// from malformed JSON, and MaxBytesReader gets the ResponseWriter so the
// oversized connection is closed instead of draining the rest.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	// Trailing garbage after the JSON value is a malformed request too.
	if dec.More() {
		return errors.New("unexpected data after JSON body")
	}
	return nil
}

// writeBodyErr maps a decodeJSON failure to its status: 413 for an
// oversized body, 400 for everything else.
func writeBodyErr(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		writeErr(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
		return
	}
	writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
}

// maxRequestBytes bounds request bodies; scripts are small.
const maxRequestBytes = 1 << 20

// dataPath resolves a client-supplied checkpoint file name inside the
// data dir. The name must already satisfy ValidFileName (a flat path
// component, no "..", no separators); this re-checks the joined result
// as defense in depth, so no future relaxation of the name rules can
// silently open directory escape.
func (s *Server) dataPath(file string) (string, error) {
	path := filepath.Join(s.dataDir, file)
	if filepath.Dir(path) != filepath.Clean(s.dataDir) || filepath.Base(path) != file {
		return "", fmt.Errorf("checkpoint file name %q escapes the data directory", file)
	}
	return path, nil
}

// maxStepTicks bounds one synchronous step request. Session.Step has no
// cancellation — neither client disconnect nor DELETE interrupts it —
// so the bound is what keeps a single request from pinning a world (and
// a core) for hours. Long runs either loop step requests or use the
// clock (/run), which is stoppable.
const maxStepTicks = 10_000

// maxJournalWait caps one journal long-poll (GET …/journal?wait=): a
// paused world must not pin request handlers forever; clients re-poll.
const maxJournalWait = 30 * time.Second

// maxCheckpointBytes bounds a pushed checkpoint stream (PUT
// …/checkpoint). Far above any real world (a 1M-unit army checkpoints in
// the tens of MB), far below an allocation that endangers the daemon.
const maxCheckpointBytes = 1 << 30

// world resolves the {name} path segment, writing a 404 on miss.
func (s *Server) world(w http.ResponseWriter, r *http.Request) (*World, bool) {
	name := r.PathValue("name")
	wd, ok := s.reg.Get(name)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown session %q", name)
		return nil, false
	}
	return wd, true
}

// ---------------------------------------------------------------------------
// Handlers

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeBodyErr(w, err)
		return
	}
	if !ValidName(req.Name) {
		writeErr(w, http.StatusBadRequest, "invalid session name %q", req.Name)
		return
	}
	tune := engine.Options{
		Workers:              req.Workers,
		Incremental:          req.Incremental,
		IncrementalThreshold: req.IncrementalThreshold,
		CompactJournal:       req.Compact,
	}

	var world *World
	var err error
	if req.Restore != "" {
		// The fresh-world spec lives in the checkpoint; accepting (and
		// silently dropping) it here would let a client believe it
		// restored a resized or reseeded world. Script stays legal — it
		// is the documented sidecar override.
		if req.Units != 0 || req.Density != 0 || req.Seed != 0 || req.Formation != "" || req.Mode != "" {
			writeErr(w, http.StatusBadRequest,
				"restore and fresh-world fields (units/density/seed/formation/mode) are mutually exclusive: the checkpoint carries the world spec")
			return
		}
		world, err = s.restoreFromFile(req, tune)
	} else {
		spec := WorldSpec{
			Script:   req.Script,
			Units:    req.Units,
			Density:  req.Density,
			Seed:     req.Seed,
			Tune:     tune,
			TickRate: req.TickRate,
		}
		switch req.Formation {
		case "", "lines":
			spec.Formation = workload.BattleLines
		case "scattered":
			spec.Formation = workload.Scattered
		default:
			writeErr(w, http.StatusBadRequest, "formation must be \"lines\" or \"scattered\", got %q", req.Formation)
			return
		}
		switch req.Mode {
		case "", "indexed":
			spec.Mode = engine.Indexed
		case "naive":
			spec.Mode = engine.Naive
		default:
			writeErr(w, http.StatusBadRequest, "mode must be \"naive\" or \"indexed\", got %q", req.Mode)
			return
		}
		world, err = s.reg.Create(req.Name, spec)
	}
	switch {
	case err == nil:
	case errors.Is(err, ErrExists):
		writeErr(w, http.StatusConflict, "%v", err)
		return
	default:
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, CreateResponse{Status: world.Status(), Warnings: world.Warnings()})
}

// restoreFromFile is the arrival half of live migration: open the named
// checkpoint in the data dir and register the restored session under
// restore-time tuning. The checkpoint is self-contained — the script it
// ran travels inside the stream — so one file read is the whole
// operation; a non-empty req.Script deliberately overrides the embedded
// script.
func (s *Server) restoreFromFile(req CreateRequest, tune engine.Options) (*World, error) {
	if s.dataDir == "" {
		return nil, errors.New("server: no data directory configured; file restore disabled")
	}
	if !ValidFileName(req.Restore) {
		return nil, fmt.Errorf("server: invalid checkpoint file name %q", req.Restore)
	}
	path, err := s.dataPath(req.Restore)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("server: open checkpoint: %w", err)
	}
	defer f.Close()
	return s.reg.Restore(req.Name, f, req.Script, tune, req.TickRate)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.List())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	if wd, ok := s.world(w, r); ok {
		writeJSON(w, http.StatusOK, wd.Status())
	}
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.reg.Delete(name) {
		writeErr(w, http.StatusNotFound, "unknown session %q", name)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

func (s *Server) handleStep(w http.ResponseWriter, r *http.Request) {
	wd, ok := s.world(w, r)
	if !ok {
		return
	}
	var req StepRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeBodyErr(w, err)
		return
	}
	if req.Ticks <= 0 {
		writeErr(w, http.StatusBadRequest, "ticks must be positive, got %d", req.Ticks)
		return
	}
	if req.Ticks > maxStepTicks {
		writeErr(w, http.StatusBadRequest,
			"ticks %d exceeds the per-request limit %d; issue multiple requests (a synchronous step cannot be cancelled, so one request must not monopolize the world indefinitely)",
			req.Ticks, maxStepTicks)
		return
	}
	if err := wd.Step(req.Ticks); err != nil {
		if errors.Is(err, ErrClockRunning) || errors.Is(err, ErrReplica) {
			writeErr(w, http.StatusConflict, "%v", err)
		} else {
			writeErr(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusOK, wd.Status())
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	wd, ok := s.world(w, r)
	if !ok {
		return
	}
	var req RunRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeBodyErr(w, err)
		return
	}
	rate := req.TickRate
	if rate < 0 {
		rate = 0
	}
	if err := wd.StartClock(rate); err != nil {
		writeErr(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, wd.Status())
}

func (s *Server) handleStop(w http.ResponseWriter, r *http.Request) {
	wd, ok := s.world(w, r)
	if !ok {
		return
	}
	wd.StopClock()
	writeJSON(w, http.StatusOK, wd.Status())
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	wd, ok := s.world(w, r)
	if !ok {
		return
	}
	var req QueryRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeBodyErr(w, err)
		return
	}
	if req.Src == "" {
		writeErr(w, http.StatusBadRequest, "query src is required")
		return
	}
	start := time.Now()
	resp, err := s.evalQuery(wd, req)
	if err != nil {
		// Failed queries count only as errors: charging their time to
		// sgld_query_seconds_total while not counting them in
		// sgld_queries_total would skew the standard seconds/queries
		// latency ratio.
		wd.queryErrs.Inc()
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	wd.querySecs.Add(time.Since(start).Seconds())
	wd.queriesTotal.Inc()
	writeJSON(w, http.StatusOK, resp)
}

// evalQuery compiles (once) and dispatches one query evaluation to the
// probe form the request selects.
func (s *Server) evalQuery(wd *World, req QueryRequest) (*QueryResponse, error) {
	q, warns, err := wd.CompiledQuery(req.Src)
	if err != nil {
		return nil, err
	}
	if (req.X == nil) != (req.Y == nil) {
		return nil, errors.New("positional query needs both x and y")
	}
	if req.Unit != nil && req.X != nil {
		return nil, errors.New("unit and x/y probes are mutually exclusive")
	}
	// Evaluation and tick capture happen inside one Session.View, so the
	// response's tick is exactly the tick the values were computed at —
	// a free-running clock between "evaluate" and "read tick" would
	// otherwise mislabel the snapshot.
	var vals []float64
	var tick int64
	wd.Session().View(func(e *engine.Engine) {
		tick = e.TickCount()
		switch {
		case req.Unit != nil && req.Scan:
			vals, err = e.QueryScanUnit(q, *req.Unit, req.Args...)
		case req.Unit != nil:
			vals, err = e.QueryUnit(q, *req.Unit, req.Args...)
		case req.X != nil && req.Scan:
			vals, err = e.QueryScanAt(q, *req.X, *req.Y, req.Args...)
		case req.X != nil:
			vals, err = e.QueryAt(q, *req.X, *req.Y, req.Args...)
		case req.Scan:
			vals, err = e.QueryScan(q, req.Args...)
		default:
			vals, err = e.Query(q, req.Args...)
		}
	})
	if err != nil {
		return nil, err
	}
	return &QueryResponse{
		Name: q.Name(), Tick: tick,
		Outputs: q.Outputs(), Values: vals,
		Warnings: warns,
	}, nil
}

// MaxCommandsPerRequest bounds one command batch; the engine's own
// input-buffer limit (engine.MaxPendingCommands) still applies across
// batches.
const MaxCommandsPerRequest = 256

func (s *Server) handleCommands(w http.ResponseWriter, r *http.Request) {
	wd, ok := s.world(w, r)
	if !ok {
		return
	}
	var req CommandsRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeBodyErr(w, err)
		return
	}
	if len(req.Commands) == 0 {
		writeErr(w, http.StatusBadRequest, "commands must not be empty")
		return
	}
	if len(req.Commands) > MaxCommandsPerRequest {
		writeErr(w, http.StatusBadRequest, "%d commands exceeds the per-request limit %d", len(req.Commands), MaxCommandsPerRequest)
		return
	}
	cmds := make([]engine.Command, len(req.Commands))
	for i, wc := range req.Commands {
		c, err := wc.toCommand(wd)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "command %d: %v", i, err)
			return
		}
		cmds[i] = c
	}
	start := time.Now()
	tick, err := wd.SubmitCommands(req.Origin, cmds)
	if err != nil {
		if errors.Is(err, ErrReplica) {
			writeErr(w, http.StatusConflict, "%v", err)
		} else {
			writeErr(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	wd.commandSecs.Add(time.Since(start).Seconds())
	writeJSON(w, http.StatusOK, CommandsResponse{Accepted: len(cmds), Tick: tick})
}

// toCommand maps the JSON wire shape to the engine's typed command. The
// spawn path builds a full battle-schema row via game.NewUnit, so the
// roster indexes must be validated here (NewUnit indexes by unit type).
func (wc WireCommand) toCommand(wd *World) (engine.Command, error) {
	switch wc.Op {
	case "spawn":
		if wc.Player != 0 && wc.Player != 1 {
			return engine.Command{}, fmt.Errorf("spawn player must be 0 or 1, got %d", wc.Player)
		}
		if wc.UnitType < game.Knight || wc.UnitType > game.Healer {
			return engine.Command{}, fmt.Errorf("spawn unittype must be 0 (knight), 1 (archer) or 2 (healer), got %d", wc.UnitType)
		}
		if wc.Key < 0 {
			return engine.Command{}, fmt.Errorf("spawn key must be non-negative, got %d", wc.Key)
		}
		row := game.NewUnit(wc.Key, wc.Player, wc.UnitType, geom.Point{X: wc.X, Y: wc.Y})
		return engine.Command{Op: engine.OpSpawn, Row: row}, nil
	case "despawn":
		return engine.Command{Op: engine.OpDespawn, Key: wc.Key}, nil
	case "set":
		return engine.Command{Op: engine.OpSet, Key: wc.Key, Col: wc.Col, Val: wc.Val}, nil
	case "tune":
		return engine.Command{Op: engine.OpTune, Col: wc.Name, Val: wc.Val}, nil
	default:
		return engine.Command{}, fmt.Errorf("op must be spawn, despawn, set or tune, got %q", wc.Op)
	}
}

func (s *Server) handleJournal(w http.ResponseWriter, r *http.Request) {
	wd, ok := s.world(w, r)
	if !ok {
		return
	}
	var since int64 = -1 // no ?since= → everything retained, from the base on
	if raw := r.URL.Query().Get("since"); raw != "" {
		v, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || v < 0 {
			writeErr(w, http.StatusBadRequest, "since must be a non-negative tick, got %q", raw)
			return
		}
		since = v
	}
	// ?wait=D long-polls: block until the world's tick exceeds ?since (so
	// the suffix is non-trivially answerable) or D elapses, whichever is
	// first. This is the replication transport — a follower parks one
	// request here per writer tick instead of polling between ticks. Only
	// meaningful with ?since: an unanchored wait has nothing to wait past.
	if raw := r.URL.Query().Get("wait"); raw != "" {
		if since < 0 {
			writeErr(w, http.StatusBadRequest, "wait requires since (the tick to wait past)")
			return
		}
		d, err := time.ParseDuration(raw)
		if err != nil || d < 0 {
			writeErr(w, http.StatusBadRequest, "wait must be a non-negative duration, got %q", raw)
			return
		}
		if d > maxJournalWait {
			d = maxJournalWait
		}
		// A timeout (or world deletion) is not an error: the client gets
		// the current — possibly empty — suffix and re-polls.
		wd.WaitTick(since, d)
	}
	// Journal, base and tick in one View, so the response's tick is
	// exactly the tick the journal snapshot was taken at.
	resp := JournalResponse{Name: wd.Name}
	var sinceErr error
	wd.Session().View(func(e *engine.Engine) {
		resp.Tick = e.TickCount()
		resp.Base = e.JournalBase()
		if since < 0 {
			resp.Entries = e.Journal()
		} else {
			resp.Entries, sinceErr = e.JournalSince(since)
		}
	})
	var ce *engine.CompactedError
	if errors.As(sinceErr, &ce) {
		// The requested prefix has been folded away: 410 Gone, with the
		// base tick a client can re-request from.
		writeErr(w, http.StatusGone, "journal before tick %d compacted away; re-request with ?since=%d", ce.BaseTick, ce.BaseTick)
		return
	}
	if sinceErr != nil {
		writeErr(w, http.StatusInternalServerError, "%v", sinceErr)
		return
	}
	if resp.Entries == nil {
		resp.Entries = []engine.StampedCommand{} // render [], not null
	}
	writeJSON(w, http.StatusOK, resp)
}

// CompactResponse reports a manual compaction's new journal base.
type CompactResponse struct {
	Name string `json:"name"`
	Tick int64  `json:"tick"`
	// Base is the new compaction base: the journal now starts here.
	Base int64 `json:"base"`
}

func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	wd, ok := s.world(w, r)
	if !ok {
		return
	}
	if wd.Replica() {
		// A replica's journal base must track the writer's: compacting it
		// independently would make its ?since= answers diverge.
		writeErr(w, http.StatusConflict, "server: world %s: %v; its journal base is the writer's", wd.Name, ErrReplica)
		return
	}
	sess := wd.Session()
	base := sess.Compact()
	writeJSON(w, http.StatusOK, CompactResponse{Name: wd.Name, Tick: sess.Tick(), Base: base})
}

func (s *Server) handleCheckpointFile(w http.ResponseWriter, r *http.Request) {
	wd, ok := s.world(w, r)
	if !ok {
		return
	}
	if s.dataDir == "" {
		writeErr(w, http.StatusBadRequest, "no data directory configured; use GET …/checkpoint to stream")
		return
	}
	var req CheckpointRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeBodyErr(w, err)
		return
	}
	// The derived default is safe by construction (validated session name
	// plus a fixed suffix — no separators), and must not be re-validated:
	// a maximum-length session name would push the derived name past
	// ValidName's cap and make the session impossible to checkpoint.
	file := req.File
	if file == "" {
		file = wd.Name + ".ckpt"
	} else if !ValidFileName(file) {
		writeErr(w, http.StatusBadRequest, "invalid checkpoint file name %q", file)
		return
	}
	path, err := s.dataPath(file)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	tick, err := s.writeCheckpointFile(wd, path)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	wd.checkpoints.Inc()
	writeJSON(w, http.StatusOK, CheckpointResponse{File: file, Tick: tick})
}

// writeCheckpointFile persists a self-contained checkpoint with the
// crash discipline battlesim uses — temp file, fsync, rename into place.
// The script rides inside the stream (format v2), so the write is ONE
// atomic rename: the crash window the old checkpoint+sidecar pair could
// not close from either rename order no longer exists. Temp names are
// per-call (os.CreateTemp), so concurrent checkpoints of the same file
// each write whole files and the last rename wins whole. Returns the
// tick the checkpoint captured.
func (s *Server) writeCheckpointFile(wd *World, path string) (tick int64, err error) {
	err = table.WriteFileAtomic(path, func(f *os.File) error {
		// Tick capture and serialization in one View: read separately,
		// a running clock could advance between them and the response
		// would mislabel the snapshot.
		var cerr error
		wd.Session().View(func(e *engine.Engine) {
			tick = e.TickCount()
			cerr = e.Checkpoint(f)
		})
		return cerr
	})
	if err != nil {
		return 0, err
	}
	return tick, nil
}

func (s *Server) handleCheckpointStream(w http.ResponseWriter, r *http.Request) {
	wd, ok := s.world(w, r)
	if !ok {
		return
	}
	// Serialize under the session lock into memory, then stream lock-free:
	// writing straight to the client would hold the reader lock for as
	// long as the slowest client takes to drain the response, parking the
	// clock (and, through the pending writer, every other spectator).
	var buf bytes.Buffer
	if err := wd.Checkpoint(&buf); err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-SGL-Checkpoint-Version", fmt.Sprint(engine.CheckpointVersion))
	w.Header().Set("Content-Length", fmt.Sprint(buf.Len()))
	_, _ = w.Write(buf.Bytes())
	wd.checkpoints.Inc()
}

// handleCheckpointPut is the push half of live migration: the gateway
// (or an operator) streams a self-contained checkpoint as the request
// body and the world comes up here under restore-time tuning — no shared
// data directory required. Tuning rides in query parameters because the
// body is the raw binary stream: ?workers, ?incremental, ?incthreshold,
// ?compact, ?tickrate, ?script (override, normally absent).
func (s *Server) handleCheckpointPut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !ValidName(name) {
		writeErr(w, http.StatusBadRequest, "invalid session name %q", name)
		return
	}
	q := r.URL.Query()
	var tune engine.Options
	var tickRate float64
	var err error
	if raw := q.Get("workers"); raw != "" {
		if tune.Workers, err = strconv.Atoi(raw); err != nil {
			writeErr(w, http.StatusBadRequest, "workers must be an integer, got %q", raw)
			return
		}
	}
	if raw := q.Get("incremental"); raw != "" {
		if tune.Incremental, err = strconv.ParseBool(raw); err != nil {
			writeErr(w, http.StatusBadRequest, "incremental must be a boolean, got %q", raw)
			return
		}
	}
	if raw := q.Get("incthreshold"); raw != "" {
		if tune.IncrementalThreshold, err = strconv.ParseFloat(raw, 64); err != nil {
			writeErr(w, http.StatusBadRequest, "incthreshold must be a number, got %q", raw)
			return
		}
	}
	if raw := q.Get("compact"); raw != "" {
		if tune.CompactJournal, err = strconv.ParseBool(raw); err != nil {
			writeErr(w, http.StatusBadRequest, "compact must be a boolean, got %q", raw)
			return
		}
	}
	if raw := q.Get("tickrate"); raw != "" {
		if tickRate, err = strconv.ParseFloat(raw, 64); err != nil {
			writeErr(w, http.StatusBadRequest, "tickrate must be a number, got %q", raw)
			return
		}
	}
	body := http.MaxBytesReader(w, r.Body, maxCheckpointBytes)
	world, err := s.reg.Restore(name, body, q.Get("script"), tune, tickRate)
	switch {
	case err == nil:
	case errors.Is(err, ErrExists):
		writeErr(w, http.StatusConflict, "%v", err)
		return
	default:
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, http.StatusRequestEntityTooLarge, "checkpoint stream exceeds %d bytes", tooBig.Limit)
			return
		}
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, CreateResponse{Status: world.Status(), Warnings: world.Warnings()})
}

// ReadySession is one world's row in the readiness report: enough for a
// gateway to weigh load (world count) and a replica supervisor to judge
// freshness (per-world lag).
type ReadySession struct {
	Name     string `json:"name"`
	Tick     int64  `json:"tick"`
	Replica  bool   `json:"replica,omitempty"`
	LagTicks int64  `json:"lag_ticks,omitempty"`
}

// ReadyResponse is GET /readyz's body. The status is always 200 once the
// daemon serves HTTP — readiness here means "accepting placements", and
// the interesting signal is the load/lag content, which the gateway's
// health prober consumes for least-loaded placement.
type ReadyResponse struct {
	Worlds      int            `json:"worlds"`
	Replicas    int            `json:"replicas"`
	MaxLagTicks int64          `json:"max_lag_ticks"`
	Sessions    []ReadySession `json:"sessions"`
}

func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	statuses := s.reg.List()
	resp := ReadyResponse{Sessions: make([]ReadySession, 0, len(statuses))}
	for _, st := range statuses {
		resp.Worlds++
		if st.Replica {
			resp.Replicas++
			if st.LagTicks > resp.MaxLagTicks {
				resp.MaxLagTicks = st.LagTicks
			}
		}
		resp.Sessions = append(resp.Sessions, ReadySession{
			Name: st.Name, Tick: st.Tick, Replica: st.Replica, LagTicks: st.LagTicks,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.reg.Metrics.WritePrometheus(w)
}
