package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/epicscale/sgl/internal/engine"
	"github.com/epicscale/sgl/internal/game"
	"github.com/epicscale/sgl/internal/workload"
)

// Query sources the subscription tests share. Both are divisible
// (count/sum only), so the maintained-answer path refolds them
// bit-exactly against the naive scan — the pushed stream can be compared
// to polled QueryScan* values without tolerance.
const (
	posSumSrc = `aggregate Pos(u) := sum(e.posx) as sx, sum(e.posy) as sy over e;`
	zoneSrc   = `aggregate Zone(u, r) :=
  count(*) over e where e.posx >= u.posx - r and e.posx <= u.posx + r
    and e.posy >= u.posy - r and e.posy <= u.posy + r;`
)

// sseEvents opens a subscribe stream and feeds its decoded "answer"
// events into the returned channel (closed when the stream ends).
// Cancel ctx to release the server handler.
func sseEvents(t *testing.T, ctx context.Context, streamURL string) <-chan SubscribeEvent {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, streamURL, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("subscribe %s: status %d: %s", streamURL, resp.StatusCode, body)
	}
	ch := make(chan SubscribeEvent, 64)
	go func() {
		defer resp.Body.Close()
		defer close(ch)
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var ev SubscribeEvent
			if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
				t.Errorf("decode SSE event %q: %v", line, err)
				return
			}
			ch <- ev
		}
	}()
	return ch
}

// TestSubscribePushedMatchesPolled is the push-path differential: the
// event stream a subscriber receives must be exactly the changes in the
// polled QueryScan* sequence — one event per tick whose answer differs
// from the previous tick's, carrying that tick's scan values, and no
// events for unchanged ticks. Runs both probe forms (plain and
// positional) over a paused-clock world stepped one tick at a time, so
// every tick boundary is observed by both paths.
func TestSubscribePushedMatchesPolled(t *testing.T) {
	ts, _ := newTestServer(t)
	create(t, ts.URL, "sub", nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	const ticks = 20
	x, y := 28.0, 28.0
	type stream struct {
		name string
		poll QueryRequest
		ch   <-chan SubscribeEvent
	}
	streams := []*stream{
		{
			name: "plain",
			poll: QueryRequest{Src: posSumSrc, Scan: true},
		},
		{
			name: "at",
			poll: QueryRequest{Src: zoneSrc, X: &x, Y: &y, Args: []float64{20}, Scan: true},
		},
	}
	base := ts.URL + "/v1/sessions/sub/subscribe?q="
	streams[0].ch = sseEvents(t, ctx, base+url.QueryEscape(posSumSrc))
	streams[1].ch = sseEvents(t, ctx, base+url.QueryEscape(zoneSrc)+"&x=28&y=28&args=20")

	// Poll the scan oracle at every tick 0..ticks, stepping one tick at a
	// time so subscribers see every boundary.
	polled := make([][][]float64, len(streams))
	pollNow := func(tick int) {
		for i, s := range streams {
			var qr QueryResponse
			if code := do(t, http.MethodPost, ts.URL+"/v1/sessions/sub/query", s.poll, &qr); code != http.StatusOK {
				t.Fatalf("%s: poll at tick %d: status %d", s.name, tick, code)
			}
			if qr.Tick != int64(tick) {
				t.Fatalf("%s: poll tick = %d, want %d", s.name, qr.Tick, tick)
			}
			polled[i] = append(polled[i], qr.Values)
		}
	}
	pollNow(0)
	for tk := 1; tk <= ticks; tk++ {
		if code := do(t, http.MethodPost, ts.URL+"/v1/sessions/sub/step", StepRequest{Ticks: 1}, nil); code != http.StatusOK {
			t.Fatalf("step %d: status %d", tk, code)
		}
		pollNow(tk)
	}

	for i, s := range streams {
		// Expected pushes: the initial answer plus every tick whose scan
		// value changed.
		want := []int{0}
		for tk := 1; tk <= ticks; tk++ {
			if !sameValues(polled[i][tk], polled[i][tk-1]) {
				want = append(want, tk)
			}
		}
		if s.name == "plain" && len(want) < 10 {
			t.Fatalf("plain: only %d change ticks out of %d — units should move every tick", len(want)-1, ticks)
		}

		deadline := time.After(3 * time.Second)
		var evs []SubscribeEvent
		for len(evs) < len(want) {
			select {
			case ev, ok := <-s.ch:
				if !ok {
					t.Fatalf("%s: stream closed after %d events, want %d", s.name, len(evs), len(want))
				}
				evs = append(evs, ev)
			case <-deadline:
				t.Fatalf("%s: got %d events, want %d (timed out)", s.name, len(evs), len(want))
			}
		}
		select {
		case ev := <-s.ch:
			t.Errorf("%s: extra event beyond the %d changes: %+v", s.name, len(want), ev)
		case <-time.After(200 * time.Millisecond):
		}

		for j, ev := range evs {
			if ev.Resync {
				t.Errorf("%s: event %d resynced — a promptly drained subscriber must never drop", s.name, j)
			}
			if ev.Error != "" {
				t.Errorf("%s: event %d carries error %q", s.name, j, ev.Error)
			}
			if ev.Tick != int64(want[j]) {
				t.Errorf("%s: event %d at tick %d, want %d", s.name, j, ev.Tick, want[j])
				continue
			}
			if !sameValues(ev.Values, polled[i][want[j]]) {
				t.Errorf("%s: tick %d pushed %v, scan says %v", s.name, want[j], ev.Values, polled[i][want[j]])
			}
		}
	}
}

// TestSubscribeBackpressureDropAndResync pins the backpressure policy: a
// subscriber that never drains must not block the tick — events beyond
// the channel buffer are dropped and counted — and the first push after
// the drop is unconditional and marked Resync.
func TestSubscribeBackpressureDropAndResync(t *testing.T) {
	reg := NewRegistry()
	defer reg.Close()
	wd, err := reg.Create("bp", WorldSpec{
		Units: 64, Density: 0.02, Seed: 7,
		Formation: workload.BattleLines, Mode: engine.Indexed,
	})
	if err != nil {
		t.Fatal(err)
	}
	q, _, err := wd.CompiledQuery(posSumSrc)
	if err != nil {
		t.Fatal(err)
	}
	sub, initial, err := wd.Subscribe(subSpec{q: q})
	if err != nil {
		t.Fatal(err)
	}
	defer wd.Unsubscribe(sub)
	if initial.Tick != 0 || len(initial.Values) != 2 {
		t.Fatalf("initial event = %+v", initial)
	}

	// 30 ticks against a buffer of subEventBuffer: Step must return (the
	// nonblocking send is the whole point) with the overflow counted.
	if err := wd.Step(30); err != nil {
		t.Fatal(err)
	}
	if v := wd.pushDrops.Value(); v == 0 {
		t.Fatal("no drops after 30 undrained ticks — backpressure never engaged")
	}
	buffered := 0
	for {
		select {
		case <-sub.ch:
			buffered++
			continue
		default:
		}
		break
	}
	if buffered != subEventBuffer {
		t.Errorf("drained %d buffered events, want a full buffer of %d", buffered, subEventBuffer)
	}

	// Caught up: the next push must come through even if the value did
	// not change, flagged as a resync.
	if err := wd.Step(1); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-sub.ch:
		if !ev.Resync {
			t.Errorf("first post-drop event not marked resync: %+v", ev)
		}
		if ev.Tick != 31 {
			t.Errorf("resync event at tick %d, want 31", ev.Tick)
		}
	default:
		t.Fatal("no resync event after catching up")
	}

	// Resynced: subsequent pushes are ordinary change events again.
	for tk := 0; tk < 20; tk++ {
		if err := wd.Step(1); err != nil {
			t.Fatal(err)
		}
		select {
		case ev := <-sub.ch:
			if ev.Resync {
				t.Errorf("post-resync event still flagged resync: %+v", ev)
			}
			return
		default:
		}
	}
	t.Fatal("no change event in 20 ticks after resync")
}

// TestSubscribeChurnDuringTicks races subscriber registration and
// teardown against a running clock's notify fan-out — the window where
// a tick can land between Subscribe's initial evaluation and its
// registration, and where notify must not hold the subscriber-set lock
// across the evaluation sweep. Under -race this pins the per-subscriber
// locking; the assertions pin freshness: on a world whose answer moves
// every tick, every subscriber must receive a push newer than its
// initial answer, and never one older.
func TestSubscribeChurnDuringTicks(t *testing.T) {
	reg := NewRegistry()
	defer reg.Close()
	wd, err := reg.Create("churn", WorldSpec{
		Units: 64, Density: 0.02, Seed: 11,
		Formation: workload.BattleLines, Mode: engine.Indexed,
	})
	if err != nil {
		t.Fatal(err)
	}
	q, _, err := wd.CompiledQuery(posSumSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := wd.StartClock(200); err != nil {
		t.Fatal(err)
	}
	defer wd.StopClock()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				sub, initial, err := wd.Subscribe(subSpec{q: q})
				if err != nil {
					t.Error(err)
					return
				}
				select {
				case ev := <-sub.ch:
					if ev.Tick <= initial.Tick {
						t.Errorf("pushed event tick %d not newer than initial tick %d", ev.Tick, initial.Tick)
					}
				case <-time.After(10 * time.Second):
					t.Error("no push within 10s of subscribing on a running clock")
				}
				wd.Unsubscribe(sub)
			}
		}()
	}
	wg.Wait()
}

// TestSlowSubscriberDoesNotPerturbCheckpoint stacks the push path onto
// contracts #4/#5: a world served with a subscriber that never drains
// (drop-and-resync engaged on every tick) must still checkpoint
// byte-identically to the same (script, spec, seed, ticks) run
// standalone. Maintained answers fork the frozen snapshot and their
// Answer* counters are deliberately not serialized, so nothing a
// subscriber does can leak into the world state.
func TestSlowSubscriberDoesNotPerturbCheckpoint(t *testing.T) {
	const (
		units   = 200
		density = 0.02
		seed    = 11
		ticks   = 16
	)
	standalone := runStandalone(t, game.Script, units, density, seed, ticks)

	ts, reg := newTestServer(t)
	create(t, ts.URL, "watched", func(r *CreateRequest) {
		r.Units, r.Density, r.Seed = units, density, seed
		r.Workers = 2 // tuning deliberately differs from the standalone run
	})
	wd, ok := reg.Get("watched")
	if !ok {
		t.Fatal("world not registered")
	}
	q, _, err := wd.CompiledQuery(posSumSrc)
	if err != nil {
		t.Fatal(err)
	}
	sub, _, err := wd.Subscribe(subSpec{q: q})
	if err != nil {
		t.Fatal(err)
	}
	defer wd.Unsubscribe(sub) // never drained: the slowest possible client

	for done := 0; done < ticks; done += 4 {
		if code := do(t, http.MethodPost, ts.URL+"/v1/sessions/watched/step", StepRequest{Ticks: 4}, nil); code != http.StatusOK {
			t.Fatalf("step: %d", code)
		}
	}
	if v := wd.pushDrops.Value(); v == 0 {
		t.Error("undrained subscriber never dropped — the slow path was not exercised")
	}
	if served := fetchCheckpoint(t, ts.URL, "watched"); !bytes.Equal(standalone, served) {
		t.Error("slow subscriber perturbed checkpoint bytes (contracts #4/#5 violated)")
	}
}

// TestSubscribeBadRequest covers the subscription spec rejections.
func TestSubscribeBadRequest(t *testing.T) {
	ts, _ := newTestServer(t)
	create(t, ts.URL, "bad", nil)
	esc := url.QueryEscape
	cases := []struct{ name, query string }{
		{"missing q", ""},
		{"unparseable q", "q=" + esc(`aggregate Broken( :=`)},
		{"x without y", "q=" + esc(posSumSrc) + "&x=1"},
		{"unit and position", "q=" + esc(zoneSrc) + "&x=1&y=2&unit=3&args=5"},
		{"bad args", "q=" + esc(posSumSrc) + "&args=one,two"},
		{"unit query without probe", "q=" + esc(zoneSrc) + "&args=5"},
	}
	for _, c := range cases {
		resp, err := http.Get(ts.URL + "/v1/sessions/bad/subscribe?" + c.query)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, resp.StatusCode)
		}
	}
}

// TestCompiledQueryCacheLRU is the regression test for the compile-once
// cache bound: unbounded distinct sources must not pin unbounded
// compiled programs, while a source in active use survives eviction
// (same pointer, so engine-side index sharing keeps working).
func TestCompiledQueryCacheLRU(t *testing.T) {
	reg := NewRegistry()
	defer reg.Close()
	wd, err := reg.Create("lru", WorldSpec{
		Units: 16, Density: 0.02, Seed: 1,
		Formation: workload.BattleLines, Mode: engine.Indexed,
	})
	if err != nil {
		t.Fatal(err)
	}
	hot := `aggregate Hot(u) := count(*) over e;`
	p0, _, err := wd.CompiledQuery(hot)
	if err != nil {
		t.Fatal(err)
	}
	coldSrc := func(i int) string {
		return fmt.Sprintf("aggregate Q%d(u) := count(*) over e where e.health > %d;", i, i%64)
	}
	var q0 *engine.Query
	for i := 0; i < maxCachedQuerySources+40; i++ {
		q, _, err := wd.CompiledQuery(coldSrc(i))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			q0 = q
		}
		// Keep the hot source recent; it must never be the LRU victim.
		if p, _, err := wd.CompiledQuery(hot); err != nil || p != p0 {
			t.Fatalf("hot source evicted after %d cold inserts (err %v)", i+1, err)
		}
	}
	if got := wd.cachedQueryCount(); got > maxCachedQuerySources {
		t.Errorf("cache holds %d sources, bound is %d", got, maxCachedQuerySources)
	}
	// The first cold source aged out; re-requesting it recompiles.
	if q, _, err := wd.CompiledQuery(coldSrc(0)); err != nil {
		t.Fatal(err)
	} else if q == q0 {
		t.Error("oldest cold source survived past the cache bound")
	}
}

// TestCheckpointTraversalRejected pins the data-dir boundary: checkpoint
// and restore file names that would escape the data directory are
// rejected with 400 and nothing is written outside it.
func TestCheckpointTraversalRejected(t *testing.T) {
	ts, dir := newTestServerWithDataDir(t)
	create(t, ts.URL, "trav", nil)
	for _, bad := range []string{"../evil", "..", "a/b.ckpt", "/abs.ckpt", ".hidden", "-flag"} {
		if code := do(t, http.MethodPost, ts.URL+"/v1/sessions/trav/checkpoint", CheckpointRequest{File: bad}, nil); code != http.StatusBadRequest {
			t.Errorf("checkpoint File %q: status %d, want 400", bad, code)
		}
		if code := do(t, http.MethodPost, ts.URL+"/v1/sessions", CreateRequest{Name: "t2", Restore: bad}, nil); code != http.StatusBadRequest {
			t.Errorf("restore %q: status %d, want 400", bad, code)
		}
	}
	if _, err := os.Stat(filepath.Join(filepath.Dir(dir), "evil")); !os.IsNotExist(err) {
		t.Error("traversal attempt left a file outside the data dir")
	}
}

// TestDataPathDefenseInDepth drives the joined-path re-check directly:
// even if the name regex were ever relaxed, dataPath must still refuse
// anything that resolves outside the data directory.
func TestDataPathDefenseInDepth(t *testing.T) {
	s := &Server{dataDir: "data"}
	for _, bad := range []string{"../x", "a/b", "/abs", "..", ".", ""} {
		if _, err := s.dataPath(bad); err == nil {
			t.Errorf("dataPath(%q) accepted an escaping name", bad)
		}
	}
	p, err := s.dataPath("ok.ckpt")
	if err != nil || p != filepath.Join("data", "ok.ckpt") {
		t.Errorf("dataPath(ok.ckpt) = %q, %v", p, err)
	}
}

// TestRequestBodyLimit pins the body bound: an oversized JSON body is
// rejected with 413 (distinguishable from malformed JSON's 400), and the
// server keeps serving normal requests afterwards.
func TestRequestBodyLimit(t *testing.T) {
	ts, _ := newTestServer(t)
	big := `{"name":"big","script":"` + strings.Repeat("a", maxRequestBytes) + `"}`
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	var er errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}
	if !strings.Contains(er.Error, "exceeds") {
		t.Errorf("413 body %q does not name the limit", er.Error)
	}
	// The connection-scoped limiter must not have wedged the server.
	create(t, ts.URL, "after", nil)
}
