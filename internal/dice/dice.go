// Package dice implements the d20 System combat mechanics that the paper's
// battle simulation adopts (Section 3.2: "we use the game mechanics in the
// pen-and-paper d20 system").
//
// The relevant subset:
//
//   - An attack roll is 1d20 + attack bonus; it hits if it meets or exceeds
//     the target's Armor Class (AC). A natural 20 always hits, a natural 1
//     always misses.
//   - Damage is a dice expression such as 1d8+3, reduced by the target's
//     damage reduction (armored units "take less damage from the attacks of
//     others"); a hit always deals at least 1 point.
//   - Healing restores hit points but "can never be restored beyond the
//     initial health of the unit"; that cap is enforced by the engine's
//     post-processing query, not here.
//
// All randomness flows through rng.TickSource so combat is a deterministic
// function of (seed, tick, attacker key, sequence number); the naive and
// indexed evaluators therefore roll identical dice.
package dice

import (
	"fmt"

	"github.com/epicscale/sgl/internal/rng"
)

// Roll is a dice expression: Count dice with Sides faces plus a flat Bonus,
// e.g. Roll{1, 8, 3} is 1d8+3.
type Roll struct {
	Count int // number of dice
	Sides int // faces per die
	Bonus int // flat modifier
}

// String renders the roll in standard dice notation.
func (r Roll) String() string {
	switch {
	case r.Bonus > 0:
		return fmt.Sprintf("%dd%d+%d", r.Count, r.Sides, r.Bonus)
	case r.Bonus < 0:
		return fmt.Sprintf("%dd%d%d", r.Count, r.Sides, r.Bonus)
	default:
		return fmt.Sprintf("%dd%d", r.Count, r.Sides)
	}
}

// Min returns the smallest possible outcome.
func (r Roll) Min() int { return r.Count + r.Bonus }

// Max returns the largest possible outcome.
func (r Roll) Max() int { return r.Count*r.Sides + r.Bonus }

// Mean returns the expected outcome.
func (r Roll) Mean() float64 {
	return float64(r.Count)*float64(r.Sides+1)/2 + float64(r.Bonus)
}

// Eval rolls the expression using the tick source, attributed to the unit
// with the given key; seq distinguishes multiple rolls by the same unit in
// the same tick.
func (r Roll) Eval(t rng.TickSource, key, seq int64) int {
	total := r.Bonus
	for i := 0; i < r.Count; i++ {
		total += t.Intn(key, seq*64+int64(i)+1, r.Sides) + 1
	}
	return total
}

// Attack describes one attack attempt: the attacker's bonus and damage
// expression against a defender's AC and damage reduction.
type Attack struct {
	Bonus  int  // attack bonus added to the d20 roll
	Damage Roll // damage expression on a hit
}

// Defense describes the defender-side mechanics.
type Defense struct {
	AC        int // armor class the attack roll must meet
	Reduction int // flat damage reduction applied to each hit
}

// Outcome reports the result of a resolved attack.
type Outcome struct {
	Roll   int  // the natural d20 roll, 1..20
	Hit    bool // whether the attack hit
	Damage int  // damage dealt after reduction (0 if missed)
}

// seq slots: slot 0 is the attack roll, slot 1.. the damage dice. Each
// (attack resolution) consumes one seq value from the caller.

// Resolve performs a full d20 attack resolution for the attacker with the
// given key at the bound tick. A natural 20 always hits and a natural 1
// always misses, per the d20 SRD; damage on a hit is at least 1 after
// reduction.
func Resolve(t rng.TickSource, key, seq int64, atk Attack, def Defense) Outcome {
	natural := t.Intn(key, seq*128+0, 20) + 1
	hit := natural == 20 || (natural != 1 && natural+atk.Bonus >= def.AC)
	out := Outcome{Roll: natural, Hit: hit}
	if !hit {
		return out
	}
	dmg := atk.Damage.Eval(t, key, seq*2+1) - def.Reduction
	if dmg < 1 {
		dmg = 1
	}
	out.Damage = dmg
	return out
}

// HitProbability returns the analytic chance that an attack with the given
// bonus hits the given AC, accounting for automatic hits and misses. Used
// by tests and by the workload balancer.
func HitProbability(bonus, ac int) float64 {
	need := ac - bonus // minimum natural roll to hit
	if need < 2 {
		need = 2 // natural 1 always misses
	}
	if need > 20 {
		need = 20 // natural 20 always hits
	}
	return float64(21-need) / 20
}

// ExpectedDamage returns the analytic expected damage per attack attempt,
// approximating the ≥1 floor by clamping the post-reduction mean. It is a
// balance-tuning aid, not part of the hot path.
func ExpectedDamage(atk Attack, def Defense) float64 {
	p := HitProbability(atk.Bonus, def.AC)
	mean := atk.Damage.Mean() - float64(def.Reduction)
	if mean < 1 {
		mean = 1
	}
	return p * mean
}
