package dice

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/epicscale/sgl/internal/rng"
)

func tick() rng.TickSource { return rng.New(99).Tick(5) }

func TestRollString(t *testing.T) {
	cases := []struct {
		r    Roll
		want string
	}{
		{Roll{1, 8, 3}, "1d8+3"},
		{Roll{2, 6, 0}, "2d6"},
		{Roll{1, 4, -1}, "1d4-1"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.r, got, c.want)
		}
	}
}

func TestRollBounds(t *testing.T) {
	r := Roll{2, 6, 3}
	if r.Min() != 5 || r.Max() != 15 {
		t.Fatalf("bounds = [%d,%d], want [5,15]", r.Min(), r.Max())
	}
	if r.Mean() != 10 {
		t.Fatalf("Mean = %v, want 10", r.Mean())
	}
}

func TestRollEvalWithinBounds(t *testing.T) {
	r := Roll{3, 6, 2}
	tk := tick()
	for seq := int64(0); seq < 500; seq++ {
		v := r.Eval(tk, 7, seq)
		if v < r.Min() || v > r.Max() {
			t.Fatalf("Eval = %d outside [%d,%d]", v, r.Min(), r.Max())
		}
	}
}

func TestRollEvalDeterministic(t *testing.T) {
	r := Roll{1, 20, 0}
	a := r.Eval(tick(), 7, 3)
	b := r.Eval(tick(), 7, 3)
	if a != b {
		t.Fatalf("same (tick,key,seq) rolled differently: %d vs %d", a, b)
	}
	if r.Eval(tick(), 7, 3) == r.Eval(tick(), 8, 3) &&
		r.Eval(tick(), 7, 4) == r.Eval(tick(), 8, 4) &&
		r.Eval(tick(), 7, 5) == r.Eval(tick(), 8, 5) {
		t.Fatal("different keys consistently rolled the same values")
	}
}

func TestRollEvalMeanConverges(t *testing.T) {
	r := Roll{1, 6, 0}
	tk := tick()
	var sum float64
	const n = 20000
	for seq := int64(0); seq < n; seq++ {
		sum += float64(r.Eval(tk, 1, seq))
	}
	if mean := sum / n; math.Abs(mean-3.5) > 0.05 {
		t.Fatalf("empirical mean = %v, want ≈3.5", mean)
	}
}

func TestResolveOutcomes(t *testing.T) {
	tk := tick()
	atk := Attack{Bonus: 4, Damage: Roll{1, 8, 2}}
	def := Defense{AC: 15, Reduction: 2}
	hits, total := 0, 0
	const n = 20000
	for seq := int64(0); seq < n; seq++ {
		out := Resolve(tk, 3, seq, atk, def)
		if out.Roll < 1 || out.Roll > 20 {
			t.Fatalf("natural roll %d outside 1..20", out.Roll)
		}
		if out.Hit {
			hits++
			total += out.Damage
			if out.Damage < 1 {
				t.Fatalf("hit dealt %d damage; floor is 1", out.Damage)
			}
			maxDmg := atk.Damage.Max() - def.Reduction
			if out.Damage > maxDmg {
				t.Fatalf("damage %d above max %d", out.Damage, maxDmg)
			}
		} else if out.Damage != 0 {
			t.Fatalf("miss dealt damage %d", out.Damage)
		}
	}
	// Need an 11+ to hit: p = 0.5.
	p := float64(hits) / n
	if math.Abs(p-HitProbability(atk.Bonus, def.AC)) > 0.02 {
		t.Fatalf("hit rate %v, want ≈%v", p, HitProbability(atk.Bonus, def.AC))
	}
}

func TestNatural20AlwaysHits(t *testing.T) {
	tk := tick()
	// AC so high only a natural 20 can hit.
	atk := Attack{Bonus: 0, Damage: Roll{1, 4, 0}}
	def := Defense{AC: 100}
	hits := 0
	const n = 40000
	for seq := int64(0); seq < n; seq++ {
		if Resolve(tk, 11, seq, atk, def).Hit {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.05) > 0.01 {
		t.Fatalf("natural-20 hit rate %v, want ≈0.05", p)
	}
}

func TestNatural1AlwaysMisses(t *testing.T) {
	tk := tick()
	// Bonus so high everything except a natural 1 hits.
	atk := Attack{Bonus: 100, Damage: Roll{1, 4, 0}}
	def := Defense{AC: 10}
	misses := 0
	const n = 40000
	for seq := int64(0); seq < n; seq++ {
		if !Resolve(tk, 12, seq, atk, def).Hit {
			misses++
		}
	}
	p := float64(misses) / n
	if math.Abs(p-0.05) > 0.01 {
		t.Fatalf("natural-1 miss rate %v, want ≈0.05", p)
	}
}

func TestHitProbability(t *testing.T) {
	cases := []struct {
		bonus, ac int
		want      float64
	}{
		{0, 10, 0.55},  // need 10
		{5, 10, 0.80},  // need 5
		{0, 30, 0.05},  // only nat 20
		{30, 10, 0.95}, // all but nat 1
		{0, 2, 0.95},   // need 2
	}
	for _, c := range cases {
		if got := HitProbability(c.bonus, c.ac); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("HitProbability(%d,%d) = %v, want %v", c.bonus, c.ac, got, c.want)
		}
	}
}

func TestExpectedDamagePositive(t *testing.T) {
	atk := Attack{Bonus: 2, Damage: Roll{1, 6, 0}}
	heavy := Defense{AC: 14, Reduction: 10}
	if ed := ExpectedDamage(atk, heavy); ed <= 0 {
		t.Fatalf("ExpectedDamage = %v, want > 0 (1-point floor)", ed)
	}
}

// Property: hit probability is within [0.05, 0.95] for any bonus/AC, and
// monotone in the bonus.
func TestHitProbabilityProperties(t *testing.T) {
	f := func(bonus, ac int8) bool {
		p := HitProbability(int(bonus), int(ac))
		if p < 0.05-1e-12 || p > 0.95+1e-12 {
			return false
		}
		return HitProbability(int(bonus)+1, int(ac)) >= p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: empirical resolve results respect hit-damage bounds for random
// but sane attack/defense parameters.
func TestResolveBoundsProperty(t *testing.T) {
	tk := tick()
	f := func(bonus uint8, sides uint8, red uint8, seq int64) bool {
		atk := Attack{Bonus: int(bonus % 10), Damage: Roll{1, int(sides%8) + 1, int(bonus % 4)}}
		def := Defense{AC: 12, Reduction: int(red % 5)}
		out := Resolve(tk, 21, seq, atk, def)
		if !out.Hit {
			return out.Damage == 0
		}
		return out.Damage >= 1 && out.Damage <= atk.Damage.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkResolve(b *testing.B) {
	tk := tick()
	atk := Attack{Bonus: 4, Damage: Roll{1, 8, 2}}
	def := Defense{AC: 15, Reduction: 2}
	for i := 0; i < b.N; i++ {
		Resolve(tk, 3, int64(i), atk, def)
	}
}
