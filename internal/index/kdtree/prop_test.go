package kdtree

import (
	"fmt"
	"math"
	"testing"

	"github.com/epicscale/sgl/internal/rng"
)

// bruteNearest is the reference nearest-neighbour over a live point list,
// with the tree's exact tie rules (smaller key wins).
func bruteNearestLive(pts []Point, live []bool, x, y float64, exclude int64, maxDist float64) Result {
	best := Result{DistSq: maxDist * maxDist}
	if math.IsInf(maxDist, 1) {
		best.DistSq = math.Inf(1)
	}
	for i, p := range pts {
		if !live[i] || p.Key == exclude {
			continue
		}
		dx, dy := p.X-x, p.Y-y
		d := dx*dx + dy*dy
		if d < best.DistSq ||
			(d == best.DistSq && best.Found && p.Key < best.Key) ||
			(d <= best.DistSq && !best.Found) {
			best = Result{Key: p.Key, X: p.X, Y: p.Y, DistSq: d, Found: true}
		}
	}
	return best
}

// TestDynamicOpsAgainstModel interleaves Insert/Remove/Patch with Nearest
// and KNearest probes against a brute-force model. Nearest answers are a
// pure function of the live point set (ties break by key), so equality is
// exact. Failures name the seed subtest to replay.
func TestDynamicOpsAgainstModel(t *testing.T) {
	for _, seed := range []uint64{2, 13, 42, 512} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			st := rng.NewStream(rng.New(seed), 23)
			n := 15 + st.Intn(40)
			pts := make([]Point, n)
			live := make([]bool, n)
			for i := range pts {
				pts[i] = Point{X: float64(st.Intn(50)), Y: float64(st.Intn(50)), Key: int64(i)}
				live[i] = true
			}
			tr := Build(pts)
			nextKey := int64(n)

			check := func(op int) {
				t.Helper()
				for probe := 0; probe < 10; probe++ {
					x, y := float64(st.Intn(50)), float64(st.Intn(50))
					exclude := int64(st.Intn(n)) // may or may not be live
					maxDist := math.Inf(1)
					if st.Intn(2) == 0 {
						maxDist = float64(5 + st.Intn(20))
					}
					want := bruteNearestLive(pts, live, x, y, exclude, maxDist)
					got := tr.Nearest(x, y, exclude, maxDist)
					if want != got {
						t.Fatalf("op %d: Nearest(%v,%v,excl=%d,max=%v) = %+v, want %+v",
							op, x, y, exclude, maxDist, got, want)
					}
					k := 1 + st.Intn(4)
					kn := tr.KNearest(x, y, exclude, k)
					// Verify KNearest against repeated brute nearest with
					// progressive exclusion by checking order and membership.
					prev := Result{DistSq: -1}
					seen := map[int64]bool{}
					for _, r := range kn {
						if !live[keyIndex(pts, r.Key)] {
							t.Fatalf("op %d: KNearest returned dead key %d", op, r.Key)
						}
						if r.DistSq < prev.DistSq || (r.DistSq == prev.DistSq && r.Key < prev.Key) {
							t.Fatalf("op %d: KNearest out of order: %+v after %+v", op, r, prev)
						}
						if seen[r.Key] || r.Key == exclude {
							t.Fatalf("op %d: KNearest bad key %d", op, r.Key)
						}
						seen[r.Key] = true
						prev = r
					}
					liveCount := 0
					for i := range pts {
						if live[i] && pts[i].Key != exclude {
							liveCount++
						}
					}
					wantLen := k
					if liveCount < k {
						wantLen = liveCount
					}
					if len(kn) != wantLen {
						t.Fatalf("op %d: KNearest returned %d results, want %d", op, len(kn), wantLen)
					}
				}
			}

			check(-1)
			for op := 0; op < 50; op++ {
				switch st.Intn(3) {
				case 0: // insert a fresh key
					p := Point{X: float64(st.Intn(60)), Y: float64(st.Intn(60)), Key: nextKey}
					nextKey++
					tr.Insert(p)
					pts = append(pts, p)
					live = append(live, true)
				case 1: // remove a random live key
					ids := liveKeys(pts, live)
					if len(ids) == 0 {
						continue
					}
					key := ids[st.Intn(len(ids))]
					if !tr.Remove(key) {
						t.Fatalf("op %d: Remove(%d) failed on live key", op, key)
					}
					if tr.Remove(key) {
						t.Fatalf("op %d: double Remove(%d) succeeded", op, key)
					}
					live[keyIndex(pts, key)] = false
				case 2: // move a random live key
					ids := liveKeys(pts, live)
					if len(ids) == 0 {
						continue
					}
					key := ids[st.Intn(len(ids))]
					x, y := float64(st.Intn(60)), float64(st.Intn(60))
					if !tr.Patch(key, x, y) {
						t.Fatalf("op %d: Patch(%d) failed on live key", op, key)
					}
					i := keyIndex(pts, key)
					live[i] = false
					pts = append(pts, Point{X: x, Y: y, Key: key})
					live = append(live, true)
				}
				check(op)
			}
		})
	}
}

// keyIndex finds the last occurrence of key (patched points re-appear at
// the tail, mirroring the tree's young buffer).
func keyIndex(pts []Point, key int64) int {
	for i := len(pts) - 1; i >= 0; i-- {
		if pts[i].Key == key {
			return i
		}
	}
	return -1
}

func liveKeys(pts []Point, live []bool) []int64 {
	seen := map[int64]bool{}
	var out []int64
	for i := len(pts) - 1; i >= 0; i-- {
		if live[i] && !seen[pts[i].Key] {
			seen[pts[i].Key] = true
			out = append(out, pts[i].Key)
		}
	}
	return out
}

func TestInsertLiveKeyPanics(t *testing.T) {
	tr := Build([]Point{{X: 1, Y: 1, Key: 5}})
	defer func() {
		if recover() == nil {
			t.Fatal("Insert of a live key should panic")
		}
	}()
	tr.Insert(Point{X: 2, Y: 2, Key: 5})
}
