// Package kdtree implements the 2-d tree used for spatial aggregates such
// as nearest-neighbour queries (paper Section 5.3.2, citing Bentley's
// semidynamic k-d trees).
//
// The paper places kD-trees at the lowest level of a layered structure:
// categorical selections (player, unit type, "whose armor we can
// penetrate") are handled by building one tree per partition above this
// package, then each probe is answered by the partition's tree. Queries
// support an exclusion key (a unit is never its own nearest enemy) and an
// optional maximum radius (visibility range).
package kdtree

import (
	"math"
	"sort"
)

// Point is an indexed location with its unit key.
type Point struct {
	X, Y float64
	Key  int64
}

// Tree is an immutable 2-d tree, rebuilt per tick like the other indices.
// Safe for concurrent reads.
type Tree struct {
	pts []Point // points in tree layout order
	// The tree is stored implicitly: node i covers pts[lo:hi] with the
	// median at mid; children are the sub-slices. Recursion boundaries are
	// recomputed during search, so no explicit node structs are needed.
}

// Build constructs a balanced 2-d tree in O(n log n). The input slice is
// not modified.
func Build(pts []Point) *Tree {
	cp := append([]Point(nil), pts...)
	build(cp, 0)
	return &Tree{pts: cp}
}

// build recursively partitions pts around the median along the split axis
// (0 = x, 1 = y, alternating by depth).
func build(pts []Point, axis int) {
	if len(pts) <= 1 {
		return
	}
	mid := len(pts) / 2
	nthElement(pts, mid, axis)
	build(pts[:mid], 1-axis)
	build(pts[mid+1:], 1-axis)
}

// nthElement partially sorts pts so pts[k] holds the k-th smallest element
// along the axis, smaller elements before and larger after (quickselect
// with median-of-three pivots; ties broken by the other axis then key for
// determinism).
func nthElement(pts []Point, k, axis int) {
	lo, hi := 0, len(pts)-1
	for lo < hi {
		if hi-lo < 16 {
			insertionSort(pts[lo:hi+1], axis)
			return
		}
		p := medianOfThree(pts, lo, (lo+hi)/2, hi, axis)
		pts[p], pts[hi] = pts[hi], pts[p]
		store := lo
		for i := lo; i < hi; i++ {
			if less(pts[i], pts[hi], axis) {
				pts[i], pts[store] = pts[store], pts[i]
				store++
			}
		}
		pts[store], pts[hi] = pts[hi], pts[store]
		switch {
		case store == k:
			return
		case store < k:
			lo = store + 1
		default:
			hi = store - 1
		}
	}
}

func insertionSort(pts []Point, axis int) {
	for i := 1; i < len(pts); i++ {
		for j := i; j > 0 && less(pts[j], pts[j-1], axis); j-- {
			pts[j], pts[j-1] = pts[j-1], pts[j]
		}
	}
}

func medianOfThree(pts []Point, a, b, c, axis int) int {
	if less(pts[a], pts[b], axis) {
		a, b = b, a
	}
	if less(pts[b], pts[c], axis) {
		b = c
	}
	if less(pts[a], pts[b], axis) {
		b = a
	}
	return b
}

func less(a, b Point, axis int) bool {
	av, bv := coord(a, axis), coord(b, axis)
	if av != bv {
		return av < bv
	}
	ao, bo := coord(a, 1-axis), coord(b, 1-axis)
	if ao != bo {
		return ao < bo
	}
	return a.Key < b.Key
}

func coord(p Point, axis int) float64 {
	if axis == 0 {
		return p.X
	}
	return p.Y
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return len(t.pts) }

// Result is a nearest-neighbour answer.
type Result struct {
	Key    int64
	X, Y   float64
	DistSq float64
	Found  bool
}

// Nearest returns the point closest (Euclidean) to (x, y), excluding any
// point whose key equals exclude (pass a negative key to exclude nothing),
// and ignoring points farther than maxDist (pass +Inf for unbounded).
// Ties break toward the smaller key so both evaluators agree.
func (t *Tree) Nearest(x, y float64, exclude int64, maxDist float64) Result {
	best := Result{DistSq: maxDist * maxDist}
	if math.IsInf(maxDist, 1) {
		best.DistSq = math.Inf(1)
	}
	t.search(t.pts, 0, x, y, exclude, &best)
	return best
}

func (t *Tree) search(pts []Point, axis int, x, y float64, exclude int64, best *Result) {
	if len(pts) == 0 {
		return
	}
	mid := len(pts) / 2
	p := pts[mid]
	if p.Key != exclude {
		dx, dy := p.X-x, p.Y-y
		d := dx*dx + dy*dy
		// Accept if strictly closer, or the first point found within the
		// radius bound (inclusive), or an equidistant tie with smaller key.
		if d < best.DistSq ||
			(d == best.DistSq && best.Found && p.Key < best.Key) ||
			(d <= best.DistSq && !best.Found) {
			best.Key, best.X, best.Y, best.DistSq, best.Found = p.Key, p.X, p.Y, d, true
		}
	}
	var diff float64
	if axis == 0 {
		diff = x - p.X
	} else {
		diff = y - p.Y
	}
	near, far := pts[:mid], pts[mid+1:]
	if diff > 0 {
		near, far = far, near
	}
	t.search(near, 1-axis, x, y, exclude, best)
	// Visit the far side only if the splitting plane is within the best
	// radius; use <= so equidistant ties are found for determinism.
	if diff*diff <= best.DistSq {
		t.search(far, 1-axis, x, y, exclude, best)
	}
}

// KNearest returns up to k points nearest to (x, y) (excluding the given
// key), ordered by ascending distance with key tiebreak. It is used by
// scripts that examine a small neighbourhood ("the three nearest healers").
func (t *Tree) KNearest(x, y float64, exclude int64, k int) []Result {
	if k <= 0 {
		return nil
	}
	h := &resultHeap{}
	t.kSearch(t.pts, 0, x, y, exclude, k, h)
	out := make([]Result, len(*h))
	for i := len(*h) - 1; i >= 0; i-- {
		out[i] = h.pop()
	}
	return out
}

func (t *Tree) kSearch(pts []Point, axis int, x, y float64, exclude int64, k int, h *resultHeap) {
	if len(pts) == 0 {
		return
	}
	mid := len(pts) / 2
	p := pts[mid]
	if p.Key != exclude {
		dx, dy := p.X-x, p.Y-y
		d := dx*dx + dy*dy
		h.push(Result{Key: p.Key, X: p.X, Y: p.Y, DistSq: d, Found: true}, k)
	}
	var diff float64
	if axis == 0 {
		diff = x - p.X
	} else {
		diff = y - p.Y
	}
	near, far := pts[:mid], pts[mid+1:]
	if diff > 0 {
		near, far = far, near
	}
	t.kSearch(near, 1-axis, x, y, exclude, k, h)
	if len(*h) < k || diff*diff <= (*h)[0].DistSq {
		t.kSearch(far, 1-axis, x, y, exclude, k, h)
	}
}

// resultHeap is a max-heap by (DistSq, Key) holding the current k best.
type resultHeap []Result

func worse(a, b Result) bool {
	if a.DistSq != b.DistSq {
		return a.DistSq > b.DistSq
	}
	return a.Key > b.Key
}

func (h *resultHeap) push(r Result, k int) {
	if len(*h) == k {
		if !worse((*h)[0], r) {
			return
		}
		(*h)[0] = r
		h.siftDown(0)
		return
	}
	*h = append(*h, r)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !worse((*h)[i], (*h)[parent]) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *resultHeap) pop() Result {
	top := (*h)[0]
	last := len(*h) - 1
	(*h)[0] = (*h)[last]
	*h = (*h)[:last]
	if last > 0 {
		h.siftDown(0)
	}
	return top
}

func (h *resultHeap) siftDown(i int) {
	n := len(*h)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && worse((*h)[l], (*h)[largest]) {
			largest = l
		}
		if r < n && worse((*h)[r], (*h)[largest]) {
			largest = r
		}
		if largest == i {
			return
		}
		(*h)[i], (*h)[largest] = (*h)[largest], (*h)[i]
		i = largest
	}
}

// All returns the indexed points sorted by key, primarily for tests.
func (t *Tree) All() []Point {
	cp := append([]Point(nil), t.pts...)
	sort.Slice(cp, func(i, j int) bool { return cp[i].Key < cp[j].Key })
	return cp
}
