// Package kdtree implements the 2-d tree used for spatial aggregates such
// as nearest-neighbour queries (paper Section 5.3.2, citing Bentley's
// semidynamic k-d trees).
//
// The paper places kD-trees at the lowest level of a layered structure:
// categorical selections (player, unit type, "whose armor we can
// penetrate") are handled by building one tree per partition above this
// package, then each probe is answered by the partition's tree. Queries
// support an exclusion key (a unit is never its own nearest enemy) and an
// optional maximum radius (visibility range).
package kdtree

import (
	"math"
	"sort"
)

// Point is an indexed location with its unit key.
type Point struct {
	X, Y float64
	Key  int64
}

// Tree is a 2-d tree, rebuilt per tick like the other indices and safe
// for concurrent reads. In Bentley's semidynamic spirit it also absorbs
// updates between rebuilds: Remove tombstones a point by key, Insert adds
// the point to a young buffer scanned linearly by queries, and Patch
// moves a point (remove + insert). Because nearest-neighbour answers are
// a pure function of the live point set (ties break by key), query
// results after any update sequence are identical to a fresh Build over
// the same live points. The mutating methods are not concurrency-safe.
type Tree struct {
	pts []Point // points in tree layout order
	// The tree is stored implicitly: node i covers pts[lo:hi] with the
	// median at mid; children are the sub-slices. Recursion boundaries are
	// recomputed during search, so no explicit node structs are needed.

	// Dynamic state: tombstoned built keys, young points (with their own
	// tombstones), and a lazily built key → liveness index.
	deadBuilt map[int64]bool
	young     []Point
	youngDead []bool
	builtKeys map[int64]bool // lazily built on first mutation
}

// Build constructs a balanced 2-d tree in O(n log n). The input slice is
// not modified.
func Build(pts []Point) *Tree {
	cp := append([]Point(nil), pts...)
	build(cp, 0)
	return &Tree{pts: cp}
}

// build recursively partitions pts around the median along the split axis
// (0 = x, 1 = y, alternating by depth).
func build(pts []Point, axis int) {
	if len(pts) <= 1 {
		return
	}
	mid := len(pts) / 2
	nthElement(pts, mid, axis)
	build(pts[:mid], 1-axis)
	build(pts[mid+1:], 1-axis)
}

// nthElement partially sorts pts so pts[k] holds the k-th smallest element
// along the axis, smaller elements before and larger after (quickselect
// with median-of-three pivots; ties broken by the other axis then key for
// determinism).
func nthElement(pts []Point, k, axis int) {
	lo, hi := 0, len(pts)-1
	for lo < hi {
		if hi-lo < 16 {
			insertionSort(pts[lo:hi+1], axis)
			return
		}
		p := medianOfThree(pts, lo, (lo+hi)/2, hi, axis)
		pts[p], pts[hi] = pts[hi], pts[p]
		store := lo
		for i := lo; i < hi; i++ {
			if less(pts[i], pts[hi], axis) {
				pts[i], pts[store] = pts[store], pts[i]
				store++
			}
		}
		pts[store], pts[hi] = pts[hi], pts[store]
		switch {
		case store == k:
			return
		case store < k:
			lo = store + 1
		default:
			hi = store - 1
		}
	}
}

func insertionSort(pts []Point, axis int) {
	for i := 1; i < len(pts); i++ {
		for j := i; j > 0 && less(pts[j], pts[j-1], axis); j-- {
			pts[j], pts[j-1] = pts[j-1], pts[j]
		}
	}
}

func medianOfThree(pts []Point, a, b, c, axis int) int {
	if less(pts[a], pts[b], axis) {
		a, b = b, a
	}
	if less(pts[b], pts[c], axis) {
		b = c
	}
	if less(pts[a], pts[b], axis) {
		b = a
	}
	return b
}

func less(a, b Point, axis int) bool {
	av, bv := coord(a, axis), coord(b, axis)
	if av != bv {
		return av < bv
	}
	ao, bo := coord(a, 1-axis), coord(b, 1-axis)
	if ao != bo {
		return ao < bo
	}
	return a.Key < b.Key
}

func coord(p Point, axis int) float64 {
	if axis == 0 {
		return p.X
	}
	return p.Y
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return len(t.pts) }

// Result is a nearest-neighbour answer.
type Result struct {
	Key    int64
	X, Y   float64
	DistSq float64
	Found  bool
}

// Nearest returns the point closest (Euclidean) to (x, y), excluding any
// point whose key equals exclude (pass a negative key to exclude nothing),
// and ignoring points farther than maxDist (pass +Inf for unbounded).
// Ties break toward the smaller key so both evaluators agree.
func (t *Tree) Nearest(x, y float64, exclude int64, maxDist float64) Result {
	best := Result{DistSq: maxDist * maxDist}
	if math.IsInf(maxDist, 1) {
		best.DistSq = math.Inf(1)
	}
	t.search(t.pts, 0, x, y, exclude, &best)
	for j, p := range t.young {
		if t.youngDead[j] || p.Key == exclude {
			continue
		}
		dx, dy := p.X-x, p.Y-y
		d := dx*dx + dy*dy
		if d < best.DistSq ||
			(d == best.DistSq && best.Found && p.Key < best.Key) ||
			(d <= best.DistSq && !best.Found) {
			best.Key, best.X, best.Y, best.DistSq, best.Found = p.Key, p.X, p.Y, d, true
		}
	}
	return best
}

// isDead reports whether a built point's key is tombstoned.
func (t *Tree) isDead(key int64) bool {
	return t.deadBuilt != nil && t.deadBuilt[key]
}

func (t *Tree) search(pts []Point, axis int, x, y float64, exclude int64, best *Result) {
	if len(pts) == 0 {
		return
	}
	mid := len(pts) / 2
	p := pts[mid]
	if p.Key != exclude && !t.isDead(p.Key) {
		dx, dy := p.X-x, p.Y-y
		d := dx*dx + dy*dy
		// Accept if strictly closer, or the first point found within the
		// radius bound (inclusive), or an equidistant tie with smaller key.
		if d < best.DistSq ||
			(d == best.DistSq && best.Found && p.Key < best.Key) ||
			(d <= best.DistSq && !best.Found) {
			best.Key, best.X, best.Y, best.DistSq, best.Found = p.Key, p.X, p.Y, d, true
		}
	}
	var diff float64
	if axis == 0 {
		diff = x - p.X
	} else {
		diff = y - p.Y
	}
	near, far := pts[:mid], pts[mid+1:]
	if diff > 0 {
		near, far = far, near
	}
	t.search(near, 1-axis, x, y, exclude, best)
	// Visit the far side only if the splitting plane is within the best
	// radius; use <= so equidistant ties are found for determinism.
	if diff*diff <= best.DistSq {
		t.search(far, 1-axis, x, y, exclude, best)
	}
}

// KNearest returns up to k points nearest to (x, y) (excluding the given
// key), ordered by ascending distance with key tiebreak. It is used by
// scripts that examine a small neighbourhood ("the three nearest healers").
func (t *Tree) KNearest(x, y float64, exclude int64, k int) []Result {
	if k <= 0 {
		return nil
	}
	h := &resultHeap{}
	t.kSearch(t.pts, 0, x, y, exclude, k, h)
	for j, p := range t.young {
		if t.youngDead[j] || p.Key == exclude {
			continue
		}
		dx, dy := p.X-x, p.Y-y
		h.push(Result{Key: p.Key, X: p.X, Y: p.Y, DistSq: dx*dx + dy*dy, Found: true}, k)
	}
	out := make([]Result, len(*h))
	for i := len(*h) - 1; i >= 0; i-- {
		out[i] = h.pop()
	}
	return out
}

func (t *Tree) kSearch(pts []Point, axis int, x, y float64, exclude int64, k int, h *resultHeap) {
	if len(pts) == 0 {
		return
	}
	mid := len(pts) / 2
	p := pts[mid]
	if p.Key != exclude && !t.isDead(p.Key) {
		dx, dy := p.X-x, p.Y-y
		d := dx*dx + dy*dy
		h.push(Result{Key: p.Key, X: p.X, Y: p.Y, DistSq: d, Found: true}, k)
	}
	var diff float64
	if axis == 0 {
		diff = x - p.X
	} else {
		diff = y - p.Y
	}
	near, far := pts[:mid], pts[mid+1:]
	if diff > 0 {
		near, far = far, near
	}
	t.kSearch(near, 1-axis, x, y, exclude, k, h)
	if len(*h) < k || diff*diff <= (*h)[0].DistSq {
		t.kSearch(far, 1-axis, x, y, exclude, k, h)
	}
}

// resultHeap is a max-heap by (DistSq, Key) holding the current k best.
type resultHeap []Result

func worse(a, b Result) bool {
	if a.DistSq != b.DistSq {
		return a.DistSq > b.DistSq
	}
	return a.Key > b.Key
}

func (h *resultHeap) push(r Result, k int) {
	if len(*h) == k {
		if !worse((*h)[0], r) {
			return
		}
		(*h)[0] = r
		h.siftDown(0)
		return
	}
	*h = append(*h, r)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !worse((*h)[i], (*h)[parent]) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *resultHeap) pop() Result {
	top := (*h)[0]
	last := len(*h) - 1
	(*h)[0] = (*h)[last]
	*h = (*h)[:last]
	if last > 0 {
		h.siftDown(0)
	}
	return top
}

func (h *resultHeap) siftDown(i int) {
	n := len(*h)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && worse((*h)[l], (*h)[largest]) {
			largest = l
		}
		if r < n && worse((*h)[r], (*h)[largest]) {
			largest = r
		}
		if largest == i {
			return
		}
		(*h)[i], (*h)[largest] = (*h)[largest], (*h)[i]
		i = largest
	}
}

// All returns the live indexed points sorted by key, primarily for tests.
func (t *Tree) All() []Point {
	cp := make([]Point, 0, len(t.pts)+len(t.young))
	for _, p := range t.pts {
		if !t.isDead(p.Key) {
			cp = append(cp, p)
		}
	}
	for j, p := range t.young {
		if !t.youngDead[j] {
			cp = append(cp, p)
		}
	}
	sort.Slice(cp, func(i, j int) bool { return cp[i].Key < cp[j].Key })
	return cp
}

// ---------------------------------------------------------------------------
// Incremental maintenance (Bentley's semidynamic scheme)

// ensureKeys builds the built-point key set lazily on first mutation.
func (t *Tree) ensureKeys() {
	if t.builtKeys != nil {
		return
	}
	t.builtKeys = make(map[int64]bool, len(t.pts))
	for _, p := range t.pts {
		t.builtKeys[p.Key] = true
	}
}

// live reports whether key currently names a live point.
func (t *Tree) live(key int64) bool {
	t.ensureKeys()
	if t.builtKeys[key] && !t.isDead(key) {
		return true
	}
	for j, p := range t.young {
		if p.Key == key && !t.youngDead[j] {
			return true
		}
	}
	return false
}

// Insert adds a point to the young buffer, scanned linearly by queries
// (rebuild once the buffer grows past a few percent of the tree). It
// panics if the key is already live — keys are unit identities.
func (t *Tree) Insert(p Point) {
	if t.live(p.Key) {
		panic("kdtree: Insert of a live key")
	}
	t.young = append(t.young, p)
	t.youngDead = append(t.youngDead, false)
}

// Remove deletes the point with the given key (tombstoning it, per the
// semidynamic scheme). It returns false if no live point has that key.
func (t *Tree) Remove(key int64) bool {
	t.ensureKeys()
	if t.builtKeys[key] && !t.isDead(key) {
		if t.deadBuilt == nil {
			t.deadBuilt = make(map[int64]bool)
		}
		t.deadBuilt[key] = true
		return true
	}
	for j, p := range t.young {
		if p.Key == key && !t.youngDead[j] {
			t.youngDead[j] = true
			return true
		}
	}
	return false
}

// Patch moves the point with the given key to a new position (remove +
// young insert). It returns false if no live point has that key.
func (t *Tree) Patch(key int64, x, y float64) bool {
	if !t.Remove(key) {
		return false
	}
	t.young = append(t.young, Point{X: x, Y: y, Key: key})
	t.youngDead = append(t.youngDead, false)
	return true
}

// Young returns the young-buffer size (including tombstoned entries), a
// rebuild heuristic for callers.
func (t *Tree) Young() int { return len(t.young) }
