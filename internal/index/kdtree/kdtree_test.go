package kdtree

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"github.com/epicscale/sgl/internal/rng"
)

func randomPoints(seed int64, n int, side float64) []Point {
	st := rng.NewStream(rng.New(uint64(seed)), 21)
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{
			X:   math.Floor(st.Float64() * side),
			Y:   math.Floor(st.Float64() * side),
			Key: int64(i),
		}
	}
	return pts
}

// bruteNearest mirrors Tree.Nearest's contract exactly.
func bruteNearest(pts []Point, x, y float64, exclude int64, maxDist float64) Result {
	best := Result{DistSq: maxDist * maxDist}
	if math.IsInf(maxDist, 1) {
		best.DistSq = math.Inf(1)
	}
	for _, p := range pts {
		if p.Key == exclude {
			continue
		}
		dx, dy := p.X-x, p.Y-y
		d := dx*dx + dy*dy
		if d < best.DistSq ||
			(d == best.DistSq && best.Found && p.Key < best.Key) ||
			(d <= best.DistSq && !best.Found) {
			best = Result{Key: p.Key, X: p.X, Y: p.Y, DistSq: d, Found: true}
		}
	}
	return best
}

func TestEmptyTree(t *testing.T) {
	tr := Build(nil)
	if r := tr.Nearest(0, 0, -1, math.Inf(1)); r.Found {
		t.Fatalf("empty tree found %+v", r)
	}
	if got := tr.KNearest(0, 0, -1, 3); len(got) != 0 {
		t.Fatalf("empty KNearest = %v", got)
	}
}

func TestSinglePoint(t *testing.T) {
	tr := Build([]Point{{X: 3, Y: 4, Key: 7}})
	r := tr.Nearest(0, 0, -1, math.Inf(1))
	if !r.Found || r.Key != 7 || r.DistSq != 25 {
		t.Fatalf("got %+v", r)
	}
	if r := tr.Nearest(0, 0, 7, math.Inf(1)); r.Found {
		t.Fatalf("excluded point still found: %+v", r)
	}
}

func TestMaxDistBound(t *testing.T) {
	tr := Build([]Point{{X: 10, Y: 0, Key: 1}})
	if r := tr.Nearest(0, 0, -1, 5); r.Found {
		t.Fatalf("point beyond maxDist found: %+v", r)
	}
	if r := tr.Nearest(0, 0, -1, 10); !r.Found {
		t.Fatal("point exactly at maxDist should be found (inclusive)")
	}
}

func TestBuildDoesNotMutateInput(t *testing.T) {
	pts := randomPoints(3, 50, 20)
	snapshot := append([]Point(nil), pts...)
	Build(pts)
	for i := range pts {
		if pts[i] != snapshot[i] {
			t.Fatal("Build mutated its input slice")
		}
	}
}

func TestNearestMatchesBrute(t *testing.T) {
	pts := randomPoints(1, 400, 60)
	tr := Build(pts)
	st := rng.NewStream(rng.New(2), 22)
	for q := 0; q < 300; q++ {
		x, y := st.Float64()*60, st.Float64()*60
		exclude := int64(st.Intn(len(pts)))
		got := tr.Nearest(x, y, exclude, math.Inf(1))
		want := bruteNearest(pts, x, y, exclude, math.Inf(1))
		if got != want {
			t.Fatalf("Nearest(%v,%v,excl=%d) = %+v, want %+v", x, y, exclude, got, want)
		}
	}
}

func TestNearestWithRadiusMatchesBrute(t *testing.T) {
	pts := randomPoints(4, 300, 50)
	tr := Build(pts)
	st := rng.NewStream(rng.New(5), 23)
	for q := 0; q < 300; q++ {
		x, y := st.Float64()*50, st.Float64()*50
		maxDist := st.Float64() * 15
		got := tr.Nearest(x, y, -1, maxDist)
		want := bruteNearest(pts, x, y, -1, maxDist)
		if got != want {
			t.Fatalf("Nearest radius: got %+v, want %+v", got, want)
		}
	}
}

func TestKNearestOrderedAndComplete(t *testing.T) {
	pts := randomPoints(8, 200, 40)
	tr := Build(pts)
	st := rng.NewStream(rng.New(9), 24)
	for q := 0; q < 100; q++ {
		x, y := st.Float64()*40, st.Float64()*40
		k := 1 + st.Intn(10)
		got := tr.KNearest(x, y, -1, k)
		// Brute: sort all by (dist, key), take k.
		all := append([]Point(nil), pts...)
		sort.Slice(all, func(i, j int) bool {
			di := (all[i].X-x)*(all[i].X-x) + (all[i].Y-y)*(all[i].Y-y)
			dj := (all[j].X-x)*(all[j].X-x) + (all[j].Y-y)*(all[j].Y-y)
			if di != dj {
				return di < dj
			}
			return all[i].Key < all[j].Key
		})
		want := all
		if len(want) > k {
			want = want[:k]
		}
		if len(got) != len(want) {
			t.Fatalf("KNearest len = %d, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i].Key != want[i].Key {
				t.Fatalf("KNearest[%d].Key = %d, want %d", i, got[i].Key, want[i].Key)
			}
		}
	}
}

func TestKNearestExcludes(t *testing.T) {
	pts := []Point{{0, 0, 1}, {1, 0, 2}, {2, 0, 3}}
	tr := Build(pts)
	got := tr.KNearest(0, 0, 1, 3)
	if len(got) != 2 || got[0].Key != 2 || got[1].Key != 3 {
		t.Fatalf("KNearest with exclusion = %v", got)
	}
	if got := tr.KNearest(0, 0, -1, 0); got != nil {
		t.Fatalf("k=0 should return nil, got %v", got)
	}
}

func TestDuplicatePositionsTieBreak(t *testing.T) {
	pts := []Point{{5, 5, 30}, {5, 5, 10}, {5, 5, 20}}
	tr := Build(pts)
	r := tr.Nearest(5, 5, -1, math.Inf(1))
	if r.Key != 10 {
		t.Fatalf("tie should pick smallest key, got %d", r.Key)
	}
	r = tr.Nearest(5, 5, 10, math.Inf(1))
	if r.Key != 20 {
		t.Fatalf("tie with exclusion should pick key 20, got %d", r.Key)
	}
}

func TestAllReturnsSortedCopy(t *testing.T) {
	pts := randomPoints(10, 30, 10)
	tr := Build(pts)
	all := tr.All()
	if len(all) != 30 {
		t.Fatalf("All len = %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Key >= all[i].Key {
			t.Fatal("All not sorted by key")
		}
	}
}

// Property: tree NN equals brute-force NN for random configurations.
func TestNearestProperty(t *testing.T) {
	f := func(seed int64, n uint8, qx, qy uint8, excl uint8) bool {
		pts := randomPoints(seed, int(n%64)+1, 30)
		tr := Build(pts)
		x, y := float64(qx%30), float64(qy%30)
		exclude := int64(excl) % int64(len(pts))
		return tr.Nearest(x, y, exclude, math.Inf(1)) == bruteNearest(pts, x, y, exclude, math.Inf(1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkNearest(b *testing.B) {
	pts := randomPoints(42, 10000, 1000)
	tr := Build(pts)
	st := rng.NewStream(rng.New(43), 25)
	qs := make([][2]float64, 1024)
	for i := range qs {
		qs[i] = [2]float64{st.Float64() * 1000, st.Float64() * 1000}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		tr.Nearest(q[0], q[1], int64(i%10000), math.Inf(1))
	}
}

func BenchmarkBuild(b *testing.B) {
	pts := randomPoints(42, 10000, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(pts)
	}
}
