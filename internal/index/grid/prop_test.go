package grid

import (
	"fmt"
	"sort"
	"testing"

	"github.com/epicscale/sgl/internal/geom"
	"github.com/epicscale/sgl/internal/rng"
)

// gridModel is the brute-force reference for the dynamic grid.
type gridModel struct {
	pts  []geom.Point
	vals [][]float64
	live []bool
}

func (m *gridModel) inRect(i int, r geom.Rect) bool {
	p := m.pts[i]
	return m.live[i] && p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// TestDynamicOpsAgainstModel interleaves Insert/Remove/Patch (including
// moves outside the built extent, which land in the overflow bucket) with
// Aggregate/Count/Report probes against the model. Integer payloads keep
// sums exact. Failures name the seed subtest to replay.
func TestDynamicOpsAgainstModel(t *testing.T) {
	for _, seed := range []uint64{5, 17, 42, 321} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			st := rng.NewStream(rng.New(seed), 31)
			n := 10 + st.Intn(40)
			m := &gridModel{}
			var pts []geom.Point
			var flat []float64
			for i := 0; i < n; i++ {
				p := geom.Point{X: float64(st.Intn(40)), Y: float64(st.Intn(40))}
				v := []float64{float64(1 + st.Intn(5))}
				pts = append(pts, p)
				flat = append(flat, v...)
				m.pts = append(m.pts, p)
				m.vals = append(m.vals, v)
				m.live = append(m.live, true)
			}
			g := Build(pts, 1, flat, 4)

			check := func(op int) {
				t.Helper()
				for probe := 0; probe < 8; probe++ {
					r := geom.RectAround(geom.Point{
						X: float64(st.Intn(60)) - 10, Y: float64(st.Intn(60)) - 10,
					}, float64(1+st.Intn(15)))
					var wantSum float64
					var wantIDs []int
					for i := range m.pts {
						if m.inRect(i, r) {
							wantSum += m.vals[i][0]
							wantIDs = append(wantIDs, i)
						}
					}
					out := []float64{0}
					g.Aggregate(r, out)
					if out[0] != wantSum {
						t.Fatalf("op %d: Aggregate = %v, want %v (rect %+v)", op, out[0], wantSum, r)
					}
					if cnt := g.Count(r); cnt != len(wantIDs) {
						t.Fatalf("op %d: Count = %d, want %d", op, cnt, len(wantIDs))
					}
					var gotIDs []int
					g.Report(r, func(i int) { gotIDs = append(gotIDs, i) })
					sort.Ints(gotIDs)
					if fmt.Sprint(gotIDs) != fmt.Sprint(wantIDs) {
						t.Fatalf("op %d: Report %v, want %v", op, gotIDs, wantIDs)
					}
				}
			}

			liveIDs := func() []int {
				var ids []int
				for i, l := range m.live {
					if l {
						ids = append(ids, i)
					}
				}
				return ids
			}
			check(-1)
			for op := 0; op < 60; op++ {
				switch st.Intn(3) {
				case 0: // insert, sometimes far outside the built extent
					p := geom.Point{X: float64(st.Intn(120)) - 40, Y: float64(st.Intn(120)) - 40}
					v := []float64{float64(1 + st.Intn(5))}
					id := g.Insert(p, v)
					if id != len(m.pts) {
						t.Fatalf("op %d: Insert id = %d, want %d", op, id, len(m.pts))
					}
					m.pts = append(m.pts, p)
					m.vals = append(m.vals, v)
					m.live = append(m.live, true)
				case 1: // remove
					ids := liveIDs()
					if len(ids) == 0 {
						continue
					}
					i := ids[st.Intn(len(ids))]
					if !g.Remove(i) {
						t.Fatalf("op %d: Remove(%d) failed", op, i)
					}
					if g.Remove(i) {
						t.Fatalf("op %d: double Remove(%d) succeeded", op, i)
					}
					m.live[i] = false
				case 2: // move between cells (possibly into/out of overflow)
					ids := liveIDs()
					if len(ids) == 0 {
						continue
					}
					i := ids[st.Intn(len(ids))]
					p := geom.Point{X: float64(st.Intn(120)) - 40, Y: float64(st.Intn(120)) - 40}
					v := []float64{float64(1 + st.Intn(5))}
					g.Patch(i, p, v)
					m.pts[i] = p
					copy(m.vals[i], v)
				}
				check(op)
			}
		})
	}
}
