// Package grid implements a uniform-bucket spatial index. It serves two
// roles in the reproduction:
//
//   - an *ablation baseline* against the layered range tree: bucket grids
//     are what 2007-era games actually shipped, and the benchmark suite
//     compares them (they degrade when ranges are large relative to the
//     cell size — the d20 visibility scenario the paper argues for);
//   - the occupancy structure for the movement phase's collision detection
//     ("this is done in random order, with collision detection and very
//     simple pathfinding rules", Section 6).
package grid

import (
	"math"

	"github.com/epicscale/sgl/internal/geom"
)

// Index is a uniform grid over points with sum-combinable payloads, the
// same payload model as the range tree. Build per tick; concurrent reads
// are safe. Between rebuilds the grid also absorbs updates in place:
// Insert appends a point (cells outside the built extent land in an
// overflow bucket scanned by every query), Remove tombstones one, and
// Patch moves a point between cells. The mutating methods are not safe
// for concurrent use.
type Index struct {
	cell       float64
	width      int
	minX, minY float64
	nx, ny     int
	cells      [][]int32 // point indexes per cell
	pts        []geom.Point
	vals       []float64

	// Dynamic state: tombstones and the out-of-extent overflow bucket.
	removed  []bool
	overflow []int32
}

// Build constructs a grid with the given cell size over pts, whose payload
// vectors (width values each) are flattened in vals.
func Build(pts []geom.Point, width int, vals []float64, cellSize float64) *Index {
	if cellSize <= 0 {
		panic("grid: non-positive cell size")
	}
	if len(vals) != len(pts)*width {
		panic("grid: vals length does not match points*width")
	}
	g := &Index{cell: cellSize, width: width, pts: pts, vals: vals}
	if len(pts) == 0 {
		g.nx, g.ny = 1, 1
		g.cells = make([][]int32, 1)
		return g
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range pts {
		minX, minY = math.Min(minX, p.X), math.Min(minY, p.Y)
		maxX, maxY = math.Max(maxX, p.X), math.Max(maxY, p.Y)
	}
	g.minX, g.minY = minX, minY
	g.nx = int((maxX-minX)/cellSize) + 1
	g.ny = int((maxY-minY)/cellSize) + 1
	g.cells = make([][]int32, g.nx*g.ny)
	for i, p := range pts {
		c := g.cellOf(p.X, p.Y)
		g.cells[c] = append(g.cells[c], int32(i))
	}
	return g
}

func (g *Index) cellOf(x, y float64) int {
	cx := int((x - g.minX) / g.cell)
	cy := int((y - g.minY) / g.cell)
	return cy*g.nx + cx
}

// Len returns the number of indexed points.
func (g *Index) Len() int { return len(g.pts) }

// Aggregate adds the payload sum over points inside r into out (length
// Width). Cells fully inside r are folded without per-point tests would
// require per-cell prefix sums; this baseline intentionally scans, which is
// exactly what makes it degrade on large ranges.
func (g *Index) Aggregate(r geom.Rect, out []float64) {
	if len(out) != g.width {
		panic("grid: out width mismatch")
	}
	g.visit(r, func(i int) {
		base := i * g.width
		for c := 0; c < g.width; c++ {
			out[c] += g.vals[base+c]
		}
	})
}

// Count returns the number of points inside r.
func (g *Index) Count(r geom.Rect) int {
	n := 0
	g.visit(r, func(int) { n++ })
	return n
}

// Report calls fn for every point index inside r.
func (g *Index) Report(r geom.Rect, fn func(i int)) { g.visit(r, fn) }

func (g *Index) visit(r geom.Rect, fn func(i int)) {
	if len(g.pts) == 0 || r.Empty() {
		return
	}
	cx0 := int(math.Floor((r.MinX - g.minX) / g.cell))
	cy0 := int(math.Floor((r.MinY - g.minY) / g.cell))
	cx1 := int(math.Floor((r.MaxX - g.minX) / g.cell))
	cy1 := int(math.Floor((r.MaxY - g.minY) / g.cell))
	cx0, cy0 = clampInt(cx0, 0, g.nx-1), clampInt(cy0, 0, g.ny-1)
	cx1, cy1 = clampInt(cx1, 0, g.nx-1), clampInt(cy1, 0, g.ny-1)
	for cy := cy0; cy <= cy1; cy++ {
		for cx := cx0; cx <= cx1; cx++ {
			g.visitBucket(g.cells[cy*g.nx+cx], r, fn)
		}
	}
	g.visitBucket(g.overflow, r, fn)
}

func (g *Index) visitBucket(bucket []int32, r geom.Rect, fn func(i int)) {
	for _, i := range bucket {
		if g.removed != nil && g.removed[i] {
			continue
		}
		p := g.pts[i]
		if p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY {
			fn(int(i))
		}
	}
}

// ---------------------------------------------------------------------------
// Incremental maintenance

// bucketFor returns the cell bucket a point belongs to, or the overflow
// bucket when the point lies outside the built extent (&g.overflow).
func (g *Index) bucketFor(p geom.Point) *[]int32 {
	cx := int(math.Floor((p.X - g.minX) / g.cell))
	cy := int(math.Floor((p.Y - g.minY) / g.cell))
	if cx < 0 || cx >= g.nx || cy < 0 || cy >= g.ny {
		return &g.overflow
	}
	return &g.cells[cy*g.nx+cx]
}

// dropFrom splices point index i out of a bucket (order of the remaining
// entries is preserved — the cell is edited in place).
func dropFrom(bucket *[]int32, i int32) {
	b := *bucket
	for j, v := range b {
		if v == i {
			*bucket = append(b[:j], b[j+1:]...)
			return
		}
	}
}

// Insert adds a point with its payload and returns its index (usable with
// Remove and Patch). Points outside the built extent go to an overflow
// bucket that every query scans, so keep them rare between rebuilds.
func (g *Index) Insert(p geom.Point, vals []float64) int {
	if len(vals) != g.width {
		panic("grid: Insert vals width mismatch")
	}
	i := len(g.pts)
	g.pts = append(g.pts, p)
	g.vals = append(g.vals, vals...)
	if g.removed != nil {
		g.removed = append(g.removed, false)
	}
	*g.bucketFor(p) = append(*g.bucketFor(p), int32(i))
	return i
}

// Remove deletes point i, splicing it out of its cell. Returns false if
// it was already removed.
func (g *Index) Remove(i int) bool {
	if g.removed == nil {
		g.removed = make([]bool, len(g.pts))
	}
	if g.removed[i] {
		return false
	}
	dropFrom(g.bucketFor(g.pts[i]), int32(i))
	g.removed[i] = true
	return true
}

// Patch moves point i to a new position with a new payload: the entry is
// spliced out of its old cell and appended to the new one — the grid
// analogue of "move the unit between buckets" rather than rebuilding.
func (g *Index) Patch(i int, p geom.Point, vals []float64) {
	if len(vals) != g.width {
		panic("grid: Patch vals width mismatch")
	}
	if g.removed != nil && g.removed[i] {
		panic("grid: Patch of removed point")
	}
	oldB, newB := g.bucketFor(g.pts[i]), g.bucketFor(p)
	if oldB != newB {
		dropFrom(oldB, int32(i))
		*newB = append(*newB, int32(i))
	}
	g.pts[i] = p
	copy(g.vals[i*g.width:(i+1)*g.width], vals)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Occupancy tracks which integer grid squares are occupied, for the
// movement phase. The game grid is 1×1 squares; a square holds at most one
// unit ("1 percent of game grid squares occupied" defines the paper's
// density parameter).
type Occupancy struct {
	taken map[[2]int32]int64 // square → unit key
}

// NewOccupancy returns an empty occupancy map.
func NewOccupancy(capacity int) *Occupancy {
	return &Occupancy{taken: make(map[[2]int32]int64, capacity)}
}

func square(x, y float64) [2]int32 {
	return [2]int32{int32(math.Floor(x)), int32(math.Floor(y))}
}

// Occupied reports whether the square containing (x, y) is taken, and by
// which unit.
func (o *Occupancy) Occupied(x, y float64) (int64, bool) {
	k, ok := o.taken[square(x, y)]
	return k, ok
}

// Place marks the square containing (x, y) as held by the unit. It returns
// false (without modifying anything) if another unit already holds it.
func (o *Occupancy) Place(x, y float64, key int64) bool {
	s := square(x, y)
	if holder, ok := o.taken[s]; ok && holder != key {
		return false
	}
	o.taken[s] = key
	return true
}

// Remove releases the square containing (x, y) if the unit holds it.
func (o *Occupancy) Remove(x, y float64, key int64) {
	s := square(x, y)
	if o.taken[s] == key {
		delete(o.taken, s)
	}
}

// Move atomically relocates a unit between squares: it fails (returning
// false, with no state change) if the destination square is held by another
// unit. Moving within the same square always succeeds.
func (o *Occupancy) Move(fromX, fromY, toX, toY float64, key int64) bool {
	from, to := square(fromX, fromY), square(toX, toY)
	if from == to {
		return true
	}
	if holder, ok := o.taken[to]; ok && holder != key {
		return false
	}
	if o.taken[from] == key {
		delete(o.taken, from)
	}
	o.taken[to] = key
	return true
}

// Size returns the number of occupied squares.
func (o *Occupancy) Size() int { return len(o.taken) }
