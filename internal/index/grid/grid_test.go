package grid

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/epicscale/sgl/internal/geom"
	"github.com/epicscale/sgl/internal/rng"
)

func randomPoints(seed int64, n int, side float64) ([]geom.Point, []float64) {
	st := rng.NewStream(rng.New(uint64(seed)), 41)
	pts := make([]geom.Point, n)
	vals := make([]float64, n)
	for i := range pts {
		pts[i] = geom.Point{X: math.Floor(st.Float64() * side), Y: math.Floor(st.Float64() * side)}
		vals[i] = math.Floor(st.Float64() * 10)
	}
	return pts, vals
}

func TestEmptyGrid(t *testing.T) {
	g := Build(nil, 1, nil, 4)
	out := []float64{0}
	g.Aggregate(geom.Rect{MinX: -5, MinY: -5, MaxX: 5, MaxY: 5}, out)
	if out[0] != 0 || g.Count(geom.Rect{MinX: -5, MinY: -5, MaxX: 5, MaxY: 5}) != 0 || g.Len() != 0 {
		t.Fatal("empty grid not empty")
	}
}

func TestBuildPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero cell":     func() { Build(nil, 1, nil, 0) },
		"vals mismatch": func() { Build([]geom.Point{{X: 1, Y: 1}}, 2, []float64{1}, 4) },
		"out mismatch": func() {
			g := Build([]geom.Point{{X: 1, Y: 1}}, 1, []float64{1}, 4)
			g.Aggregate(geom.Rect{}, make([]float64, 2))
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestAggregateMatchesBrute(t *testing.T) {
	pts, vals := randomPoints(1, 400, 60)
	for _, cell := range []float64{1, 4, 17, 100} {
		g := Build(pts, 1, vals, cell)
		st := rng.NewStream(rng.New(2), 42)
		for q := 0; q < 100; q++ {
			c := geom.Point{X: st.Float64() * 60, Y: st.Float64() * 60}
			r := geom.RectAround(c, st.Float64()*20)
			var want float64
			wantCount := 0
			for i, p := range pts {
				if r.Contains(p) {
					want += vals[i]
					wantCount++
				}
			}
			out := []float64{0}
			g.Aggregate(r, out)
			if out[0] != want {
				t.Fatalf("cell=%v Aggregate(%v) = %v, want %v", cell, r, out[0], want)
			}
			if got := g.Count(r); got != wantCount {
				t.Fatalf("cell=%v Count = %d, want %d", cell, got, wantCount)
			}
		}
	}
}

func TestReport(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 5, Y: 5}, {X: 9, Y: 9}}
	g := Build(pts, 0, nil, 3)
	var got []int
	g.Report(geom.Rect{MinX: 4, MinY: 4, MaxX: 10, MaxY: 10}, func(i int) { got = append(got, i) })
	if len(got) != 2 {
		t.Fatalf("Report = %v", got)
	}
}

func TestQueryOutsideBounds(t *testing.T) {
	pts, vals := randomPoints(5, 50, 10)
	g := Build(pts, 1, vals, 2)
	out := []float64{0}
	g.Aggregate(geom.Rect{MinX: 100, MinY: 100, MaxX: 200, MaxY: 200}, out)
	if out[0] != 0 {
		t.Fatalf("far query = %v", out[0])
	}
	// A rect straddling the boundary should still clamp correctly.
	out[0] = 0
	g.Aggregate(geom.Rect{MinX: -100, MinY: -100, MaxX: 100, MaxY: 100}, out)
	var want float64
	for _, v := range vals {
		want += v
	}
	if out[0] != want {
		t.Fatalf("covering query = %v, want %v", out[0], want)
	}
}

// Property: grid aggregate equals brute force for random cell sizes.
func TestGridProperty(t *testing.T) {
	f := func(seed int64, n, cellRaw, cx, cy, rr uint8) bool {
		pts, vals := randomPoints(seed, int(n%80), 30)
		cell := float64(cellRaw%20) + 0.5
		g := Build(pts, 1, vals, cell)
		r := geom.RectAround(geom.Point{X: float64(cx % 30), Y: float64(cy % 30)}, float64(rr%15))
		var want float64
		for i, p := range pts {
			if r.Contains(p) {
				want += vals[i]
			}
		}
		out := []float64{0}
		g.Aggregate(r, out)
		return out[0] == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOccupancyPlaceMove(t *testing.T) {
	o := NewOccupancy(8)
	if !o.Place(1.5, 1.5, 10) {
		t.Fatal("first Place failed")
	}
	if o.Place(1.9, 1.1, 20) {
		t.Fatal("second unit placed in same square")
	}
	if !o.Place(1.5, 1.5, 10) {
		t.Fatal("re-placing own square should succeed")
	}
	if k, ok := o.Occupied(1.2, 1.8); !ok || k != 10 {
		t.Fatalf("Occupied = %d,%v", k, ok)
	}
	if _, ok := o.Occupied(5, 5); ok {
		t.Fatal("empty square reported occupied")
	}
	if !o.Move(1.5, 1.5, 2.5, 1.5, 10) {
		t.Fatal("move to free square failed")
	}
	if _, ok := o.Occupied(1.5, 1.5); ok {
		t.Fatal("source square not released")
	}
	if k, _ := o.Occupied(2.5, 1.5); k != 10 {
		t.Fatal("destination square not taken")
	}
	if !o.Place(1.5, 1.5, 20) {
		t.Fatal("released square not reusable")
	}
	if o.Move(2.5, 1.5, 1.5, 1.5, 10) {
		t.Fatal("move onto occupied square should fail")
	}
	if !o.Move(2.5, 1.5, 2.9, 1.1, 10) {
		t.Fatal("move within same square should succeed")
	}
	if o.Size() != 2 {
		t.Fatalf("Size = %d, want 2", o.Size())
	}
	o.Remove(2.5, 1.5, 99) // wrong key: no-op
	if _, ok := o.Occupied(2.5, 1.5); !ok {
		t.Fatal("Remove with wrong key removed the square")
	}
	o.Remove(2.5, 1.5, 10)
	if _, ok := o.Occupied(2.5, 1.5); ok {
		t.Fatal("Remove failed")
	}
}

func TestOccupancyNegativeCoords(t *testing.T) {
	o := NewOccupancy(4)
	if !o.Place(-0.5, -0.5, 1) {
		t.Fatal("negative coord Place failed")
	}
	// (-0.5,-0.5) is square (-1,-1); (0.2,0.2) is square (0,0): distinct.
	if !o.Place(0.2, 0.2, 2) {
		t.Fatal("adjacent square across origin should be free")
	}
	if o.Place(-0.9, -0.1, 3) {
		t.Fatal("square (-1,-1) should be taken")
	}
}

func BenchmarkGridAggregate(b *testing.B) {
	pts, vals := randomPoints(42, 10000, 1000)
	g := Build(pts, 1, vals, 10)
	st := rng.NewStream(rng.New(43), 44)
	probes := make([]geom.Rect, 1024)
	for i := range probes {
		probes[i] = geom.RectAround(geom.Point{X: st.Float64() * 1000, Y: st.Float64() * 1000}, 100)
	}
	out := []float64{0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out[0] = 0
		g.Aggregate(probes[i%len(probes)], out)
	}
}
