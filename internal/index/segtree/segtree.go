// Package segtree implements the dynamic interval aggregate index used by
// the sweep-line technique of paper Section 5.3.1: a segment tree over a
// fixed x-ordering of units supporting O(log n) point updates ("percolate
// any changed leaf values up the tree") and O(log n) range MIN/MAX queries.
//
// Leaves carry a value plus a satellite payload (the unit key), so queries
// answer both "what is the minimum health in range" and "whose is it" —
// the arg-min needed for scripts like FireAt(getWeakestEnemy(u).key).
package segtree

import "math"

// Op selects whether the tree aggregates by minimum or maximum.
type Op uint8

// The two supported aggregates. MIN and MAX are exactly the non-divisible
// aggregates for which the paper introduces the sweep line.
const (
	Min Op = iota
	Max
)

// NoKey is the payload reported for identity (empty) ranges.
const NoKey int64 = -1

// Tree is a fixed-size segment tree over positions 0..n-1. The zero value
// is not usable; construct with New. Not safe for concurrent mutation.
type Tree struct {
	op   Op
	n    int
	size int // number of leaves, power of two ≥ n
	val  []float64
	key  []int64
	id   float64
}

// New returns a tree of n leaves, all initialized to the identity
// (+∞ for Min, −∞ for Max) with payload NoKey — the "default value"
// annotation of the paper's sweep description.
func New(n int, op Op) *Tree {
	if n < 0 {
		panic("segtree: negative size")
	}
	size := 1
	for size < n {
		size *= 2
	}
	if n == 0 {
		size = 1
	}
	t := &Tree{op: op, n: n, size: size, val: make([]float64, 2*size), key: make([]int64, 2*size)}
	if op == Min {
		t.id = math.Inf(1)
	} else {
		t.id = math.Inf(-1)
	}
	for i := range t.val {
		t.val[i] = t.id
		t.key[i] = NoKey
	}
	return t
}

// Len returns the number of leaf positions.
func (t *Tree) Len() int { return t.n }

// Identity returns the identity value of the tree's aggregate.
func (t *Tree) Identity() float64 { return t.id }

// better reports whether (v1,k1) beats (v2,k2) under the tree's op. Ties
// break toward the smaller key so results are deterministic regardless of
// evaluation order — both engines must pick the same "weakest unit".
func (t *Tree) better(v1 float64, k1 int64, v2 float64, k2 int64) bool {
	if v1 != v2 {
		if t.op == Min {
			return v1 < v2
		}
		return v1 > v2
	}
	if k1 == NoKey {
		return false
	}
	if k2 == NoKey {
		return true
	}
	return k1 < k2
}

// Set writes (value, key) at position i and percolates the change to the
// root in O(log n).
func (t *Tree) Set(i int, value float64, key int64) {
	if i < 0 || i >= t.n {
		panic("segtree: Set out of range")
	}
	p := t.size + i
	t.val[p], t.key[p] = value, key
	for p >>= 1; p >= 1; p >>= 1 {
		l, r := 2*p, 2*p+1
		if t.better(t.val[l], t.key[l], t.val[r], t.key[r]) {
			t.val[p], t.key[p] = t.val[l], t.key[l]
		} else {
			t.val[p], t.key[p] = t.val[r], t.key[r]
		}
	}
}

// Clear resets position i to the identity — the sweep line's "replace the
// actual value with the default value" when a unit exits the sweep region.
func (t *Tree) Clear(i int) { t.Set(i, t.id, NoKey) }

// Reset restores every position to the identity in O(n) — equivalent to n
// Clear calls (or a fresh New) at a fraction of the cost. It lets a sweep
// caller reuse one tree across many sweeps instead of allocating per
// sweep.
func (t *Tree) Reset() {
	for i := range t.val {
		t.val[i] = t.id
		t.key[i] = NoKey
	}
}

// Query returns the aggregate value and arg-key over positions [lo, hi).
// An empty or out-of-bounds-clamped-to-empty interval yields the identity
// and NoKey.
func (t *Tree) Query(lo, hi int) (float64, int64) {
	if lo < 0 {
		lo = 0
	}
	if hi > t.n {
		hi = t.n
	}
	bv, bk := t.id, NoKey
	if lo >= hi {
		return bv, bk
	}
	l, r := lo+t.size, hi+t.size
	for l < r {
		if l&1 == 1 {
			if t.better(t.val[l], t.key[l], bv, bk) {
				bv, bk = t.val[l], t.key[l]
			}
			l++
		}
		if r&1 == 1 {
			r--
			if t.better(t.val[r], t.key[r], bv, bk) {
				bv, bk = t.val[r], t.key[r]
			}
		}
		l >>= 1
		r >>= 1
	}
	return bv, bk
}

// Root returns the aggregate over the whole tree.
func (t *Tree) Root() (float64, int64) { return t.Query(0, t.n) }
