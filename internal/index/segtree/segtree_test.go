package segtree

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	tr := New(0, Min)
	if v, k := tr.Root(); !math.IsInf(v, 1) || k != NoKey {
		t.Fatalf("empty root = (%v,%d)", v, k)
	}
}

func TestNegativeSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(-1, Min)
}

func TestIdentity(t *testing.T) {
	if !math.IsInf(New(4, Min).Identity(), 1) {
		t.Error("Min identity should be +Inf")
	}
	if !math.IsInf(New(4, Max).Identity(), -1) {
		t.Error("Max identity should be -Inf")
	}
}

func TestSetQueryMin(t *testing.T) {
	tr := New(8, Min)
	vals := []float64{5, 3, 8, 1, 9, 2, 7, 4}
	for i, v := range vals {
		tr.Set(i, v, int64(100+i))
	}
	if v, k := tr.Query(0, 8); v != 1 || k != 103 {
		t.Fatalf("full min = (%v,%d), want (1,103)", v, k)
	}
	if v, k := tr.Query(4, 8); v != 2 || k != 105 {
		t.Fatalf("min[4,8) = (%v,%d), want (2,105)", v, k)
	}
	if v, k := tr.Query(2, 3); v != 8 || k != 102 {
		t.Fatalf("min[2,3) = (%v,%d), want (8,102)", v, k)
	}
}

func TestSetQueryMax(t *testing.T) {
	tr := New(5, Max)
	vals := []float64{5, 3, 8, 1, 9}
	for i, v := range vals {
		tr.Set(i, v, int64(i))
	}
	if v, k := tr.Query(0, 5); v != 9 || k != 4 {
		t.Fatalf("full max = (%v,%d)", v, k)
	}
	if v, k := tr.Query(0, 2); v != 5 || k != 0 {
		t.Fatalf("max[0,2) = (%v,%d)", v, k)
	}
}

func TestClear(t *testing.T) {
	tr := New(4, Min)
	tr.Set(0, 5, 10)
	tr.Set(1, 3, 11)
	tr.Clear(1)
	if v, k := tr.Root(); v != 5 || k != 10 {
		t.Fatalf("after Clear root = (%v,%d), want (5,10)", v, k)
	}
	tr.Clear(0)
	if v, k := tr.Root(); !math.IsInf(v, 1) || k != NoKey {
		t.Fatalf("all cleared root = (%v,%d)", v, k)
	}
}

func TestUpdateOverwrites(t *testing.T) {
	tr := New(4, Max)
	tr.Set(2, 10, 1)
	tr.Set(2, 4, 1)
	if v, _ := tr.Root(); v != 4 {
		t.Fatalf("overwrite not reflected: %v", v)
	}
}

func TestTieBreaksTowardSmallerKey(t *testing.T) {
	tr := New(4, Min)
	tr.Set(0, 7, 50)
	tr.Set(1, 7, 20)
	tr.Set(2, 7, 90)
	if _, k := tr.Root(); k != 20 {
		t.Fatalf("tie should pick smallest key, got %d", k)
	}
	trMax := New(4, Max)
	trMax.Set(0, 7, 50)
	trMax.Set(1, 7, 20)
	if _, k := trMax.Root(); k != 20 {
		t.Fatalf("max tie should also pick smallest key, got %d", k)
	}
}

func TestEmptyAndClampedRanges(t *testing.T) {
	tr := New(4, Min)
	tr.Set(0, 1, 1)
	if v, k := tr.Query(2, 2); !math.IsInf(v, 1) || k != NoKey {
		t.Fatalf("empty range = (%v,%d)", v, k)
	}
	if v, k := tr.Query(3, 1); !math.IsInf(v, 1) || k != NoKey {
		t.Fatalf("inverted range = (%v,%d)", v, k)
	}
	if v, _ := tr.Query(-5, 100); v != 1 {
		t.Fatalf("clamped range = %v, want 1", v)
	}
}

func TestSetOutOfRangePanics(t *testing.T) {
	tr := New(4, Min)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.Set(4, 1, 1)
}

// Property: tree queries agree with brute force under random updates,
// clears, and range queries.
func TestAgainstBruteForce(t *testing.T) {
	type step struct {
		Pos   uint8
		Val   int8
		Clear bool
		QLo   uint8
		QHi   uint8
	}
	for _, op := range []Op{Min, Max} {
		op := op
		f := func(steps []step) bool {
			const n = 23
			tr := New(n, op)
			brute := make([]float64, n)
			keys := make([]int64, n)
			for i := range brute {
				brute[i] = tr.Identity()
				keys[i] = NoKey
			}
			for si, s := range steps {
				p := int(s.Pos) % n
				if s.Clear {
					tr.Clear(p)
					brute[p], keys[p] = tr.Identity(), NoKey
				} else {
					tr.Set(p, float64(s.Val), int64(si))
					brute[p], keys[p] = float64(s.Val), int64(si)
				}
				lo, hi := int(s.QLo)%n, int(s.QHi)%(n+1)
				gv, gk := tr.Query(lo, hi)
				wv, wk := tr.Identity(), NoKey
				for i := lo; i < hi; i++ {
					if tr.better(brute[i], keys[i], wv, wk) {
						wv, wk = brute[i], keys[i]
					}
				}
				if gv != wv || gk != wk {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Fatalf("op=%v: %v", op, err)
		}
	}
}

func BenchmarkSetQuery(b *testing.B) {
	tr := New(4096, Min)
	for i := 0; i < b.N; i++ {
		p := i % 4096
		tr.Set(p, float64(i%97), int64(i))
		tr.Query(p/2, p/2+512)
	}
}
