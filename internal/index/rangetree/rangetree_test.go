package rangetree

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"github.com/epicscale/sgl/internal/geom"
	"github.com/epicscale/sgl/internal/rng"
)

// randomPoints generates n points on a small integer-ish grid so that
// duplicate coordinates occur, with a 2-wide payload (count, value).
func randomPoints(seed int64, n int, gridSize float64) ([]Point, []float64) {
	st := rng.NewStream(rng.New(uint64(seed)), 17)
	pts := make([]Point, n)
	vals := make([]float64, 2*n)
	for i := range pts {
		pts[i] = Point{
			X: math.Floor(st.Float64() * gridSize),
			Y: math.Floor(st.Float64() * gridSize),
		}
		vals[2*i] = 1
		vals[2*i+1] = math.Floor(st.Float64()*20) - 10
	}
	return pts, vals
}

func bruteAggregate(pts []Point, vals []float64, width int, r geom.Rect) []float64 {
	out := make([]float64, width)
	for i, p := range pts {
		if r.Contains(geom.Point{X: p.X, Y: p.Y}) {
			for c := 0; c < width; c++ {
				out[c] += vals[i*width+c]
			}
		}
	}
	return out
}

func TestEmptyTree(t *testing.T) {
	tr := Build(nil, 2, nil)
	out := make([]float64, 2)
	tr.Aggregate(geom.Rect{MinX: -10, MinY: -10, MaxX: 10, MaxY: 10}, out)
	if out[0] != 0 || out[1] != 0 {
		t.Fatalf("empty tree aggregate = %v", out)
	}
	if tr.Count(geom.Rect{MinX: -10, MinY: -10, MaxX: 10, MaxY: 10}) != 0 {
		t.Fatal("empty tree count != 0")
	}
	if tr.Len() != 0 {
		t.Fatal("empty tree Len != 0")
	}
	tr.Report(geom.Rect{MinX: -10, MinY: -10, MaxX: 10, MaxY: 10}, func(int) { t.Fatal("reported from empty tree") })
}

func TestSinglePoint(t *testing.T) {
	tr := Build([]Point{{5, 5}}, 1, []float64{3})
	out := []float64{0}
	tr.Aggregate(geom.RectAround(geom.Point{X: 5, Y: 5}, 1), out)
	if out[0] != 3 {
		t.Fatalf("got %v, want 3", out[0])
	}
	out[0] = 0
	tr.Aggregate(geom.RectAround(geom.Point{X: 8, Y: 8}, 1), out)
	if out[0] != 0 {
		t.Fatalf("miss should be 0, got %v", out[0])
	}
}

func TestBoundaryInclusive(t *testing.T) {
	// Points exactly on the query boundary must be included, matching the
	// SQL conditions E.x >= lo AND E.x <= hi of the paper's aggregates.
	pts := []Point{{0, 0}, {10, 0}, {0, 10}, {10, 10}, {5, 5}}
	vals := []float64{1, 1, 1, 1, 1}
	tr := Build(pts, 1, vals)
	out := []float64{0}
	tr.Aggregate(geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}, out)
	if out[0] != 5 {
		t.Fatalf("boundary points excluded: got %v, want 5", out[0])
	}
}

func TestDuplicateCoordinates(t *testing.T) {
	pts := []Point{{3, 3}, {3, 3}, {3, 3}, {3, 4}, {4, 3}}
	vals := []float64{1, 1, 1, 1, 1}
	tr := Build(pts, 1, vals)
	out := []float64{0}
	tr.Aggregate(geom.Rect{MinX: 3, MinY: 3, MaxX: 3, MaxY: 3}, out)
	if out[0] != 3 {
		t.Fatalf("duplicates: got %v, want 3", out[0])
	}
}

func TestWidthZero(t *testing.T) {
	pts := []Point{{1, 1}, {2, 2}}
	tr := Build(pts, 0, nil)
	if got := tr.Count(geom.Rect{MinX: 0, MinY: 0, MaxX: 3, MaxY: 3}); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}
}

func TestBuildPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"negative width": func() { Build(nil, -1, nil) },
		"vals mismatch":  func() { Build([]Point{{1, 1}}, 2, []float64{1}) },
		"out mismatch": func() {
			tr := Build([]Point{{1, 1}}, 1, []float64{1})
			tr.Aggregate(geom.Rect{}, make([]float64, 3))
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestAggregateMatchesBrute(t *testing.T) {
	pts, vals := randomPoints(1, 500, 50)
	tr := Build(pts, 2, vals)
	st := rng.NewStream(rng.New(2), 3)
	for q := 0; q < 200; q++ {
		c := geom.Point{X: st.Float64() * 50, Y: st.Float64() * 50}
		r := geom.RectAround(c, st.Float64()*20)
		want := bruteAggregate(pts, vals, 2, r)
		got := make([]float64, 2)
		tr.Aggregate(r, got)
		if math.Abs(got[0]-want[0]) > 1e-9 || math.Abs(got[1]-want[1]) > 1e-9 {
			t.Fatalf("query %v: got %v, want %v", r, got, want)
		}
	}
}

func TestNoCascadeMatchesCascade(t *testing.T) {
	pts, vals := randomPoints(5, 300, 30)
	tr := Build(pts, 2, vals)
	st := rng.NewStream(rng.New(6), 4)
	for q := 0; q < 200; q++ {
		c := geom.Point{X: st.Float64() * 30, Y: st.Float64() * 30}
		r := geom.RectAround(c, st.Float64()*12)
		a := make([]float64, 2)
		b := make([]float64, 2)
		tr.Aggregate(r, a)
		tr.AggregateNoCascade(r, b)
		if a[0] != b[0] || a[1] != b[1] {
			t.Fatalf("cascade %v != no-cascade %v for %v", a, b, r)
		}
	}
}

func TestCountMatchesBrute(t *testing.T) {
	pts, vals := randomPoints(9, 400, 40)
	tr := Build(pts, 2, vals)
	st := rng.NewStream(rng.New(10), 5)
	for q := 0; q < 200; q++ {
		c := geom.Point{X: st.Float64() * 40, Y: st.Float64() * 40}
		r := geom.RectAround(c, st.Float64()*15)
		want := int(bruteAggregate(pts, vals, 2, r)[0])
		if got := tr.Count(r); got != want {
			t.Fatalf("Count(%v) = %d, want %d", r, got, want)
		}
	}
}

func TestReportMatchesBrute(t *testing.T) {
	pts, vals := randomPoints(11, 300, 30)
	tr := Build(pts, 2, vals)
	st := rng.NewStream(rng.New(12), 6)
	for q := 0; q < 100; q++ {
		c := geom.Point{X: st.Float64() * 30, Y: st.Float64() * 30}
		r := geom.RectAround(c, st.Float64()*10)
		var got []int
		tr.Report(r, func(i int) { got = append(got, i) })
		var want []int
		for i, p := range pts {
			if r.Contains(geom.Point{X: p.X, Y: p.Y}) {
				want = append(want, i)
			}
		}
		sort.Ints(got)
		if len(got) != len(want) {
			t.Fatalf("Report len = %d, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("Report ids %v, want %v", got, want)
			}
		}
	}
}

func TestEmptyAndInvertedQueries(t *testing.T) {
	pts, vals := randomPoints(13, 100, 20)
	tr := Build(pts, 2, vals)
	out := make([]float64, 2)
	tr.Aggregate(geom.Rect{MinX: 5, MinY: 5, MaxX: 1, MaxY: 9}, out) // empty rect
	if out[0] != 0 || out[1] != 0 {
		t.Fatalf("empty rect aggregate = %v", out)
	}
	tr.Aggregate(geom.Rect{MinX: 1000, MinY: 1000, MaxX: 2000, MaxY: 2000}, out)
	if out[0] != 0 {
		t.Fatalf("far-away rect aggregate = %v", out)
	}
}

// Property: for arbitrary point sets and query rects, the cascading
// aggregate equals brute force.
func TestAggregateProperty(t *testing.T) {
	f := func(seed int64, n uint8, cx, cy, r uint8) bool {
		pts, vals := randomPoints(seed, int(n), 25)
		tr := Build(pts, 2, vals)
		rect := geom.RectAround(geom.Point{X: float64(cx % 25), Y: float64(cy % 25)}, float64(r%12))
		want := bruteAggregate(pts, vals, 2, rect)
		got := make([]float64, 2)
		tr.Aggregate(rect, got)
		return math.Abs(got[0]-want[0]) < 1e-9 && math.Abs(got[1]-want[1]) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Count is monotone under rect growth.
func TestCountMonotoneProperty(t *testing.T) {
	pts, vals := randomPoints(77, 200, 30)
	tr := Build(pts, 2, vals)
	f := func(cx, cy, r1, r2 uint8) bool {
		c := geom.Point{X: float64(cx % 30), Y: float64(cy % 30)}
		small, big := float64(r1%10), float64(r1%10)+float64(r2%10)
		return tr.Count(geom.RectAround(c, small)) <= tr.Count(geom.RectAround(c, big))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func buildBenchTree(n int) (*Tree, []geom.Rect) {
	pts, vals := randomPoints(42, n, math.Sqrt(float64(n)*100)) // ~1% density
	tr := Build(pts, 2, vals)
	st := rng.NewStream(rng.New(43), 7)
	probes := make([]geom.Rect, 1024)
	side := math.Sqrt(float64(n) * 100)
	for i := range probes {
		probes[i] = geom.RectAround(geom.Point{X: st.Float64() * side, Y: st.Float64() * side}, side/10)
	}
	return tr, probes
}

func BenchmarkAggregateCascade(b *testing.B) {
	tr, probes := buildBenchTree(10000)
	out := make([]float64, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out[0], out[1] = 0, 0
		tr.Aggregate(probes[i%len(probes)], out)
	}
}

func BenchmarkAggregateNoCascade(b *testing.B) {
	tr, probes := buildBenchTree(10000)
	out := make([]float64, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out[0], out[1] = 0, 0
		tr.AggregateNoCascade(probes[i%len(probes)], out)
	}
}

func BenchmarkBuild(b *testing.B) {
	pts, vals := randomPoints(42, 10000, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(pts, 2, vals)
	}
}
