package rangetree

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"github.com/epicscale/sgl/internal/geom"
	"github.com/epicscale/sgl/internal/rng"
)

// propModel is the brute-force reference: a flat list of live points with
// payloads, mutated in lockstep with the tree under test.
type propModel struct {
	pts   []Point
	vals  [][]float64
	live  []bool
	width int
}

func (m *propModel) aggregate(r geom.Rect) []float64 {
	out := make([]float64, m.width)
	for i, p := range m.pts {
		if !m.live[i] || !r.Contains(geom.Point{X: p.X, Y: p.Y}) {
			continue
		}
		for c := 0; c < m.width; c++ {
			out[c] += m.vals[i][c]
		}
	}
	return out
}

func (m *propModel) report(r geom.Rect) []int {
	var ids []int
	for i, p := range m.pts {
		if m.live[i] && r.Contains(geom.Point{X: p.X, Y: p.Y}) {
			ids = append(ids, i)
		}
	}
	return ids
}

// TestDynamicOpsAgainstModel drives random Insert/Remove/Patch
// interleavings against the brute-force model and cross-checks Aggregate,
// AggregateNoCascade, Count and Report after every operation batch.
// Payloads are small integers so float sums are exact regardless of
// association. Each seed is its own subtest, so a failure names the seed
// to replay (`-run 'DynamicOps/seed=42'`).
func TestDynamicOpsAgainstModel(t *testing.T) {
	const width = 2
	for _, seed := range []uint64{1, 7, 42, 99, 1234} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			st := rng.NewStream(rng.New(seed), 11)
			n := 20 + st.Intn(40)
			m := &propModel{width: width}
			var vals []float64
			var pts []Point
			for i := 0; i < n; i++ {
				p := Point{X: float64(st.Intn(30)), Y: float64(st.Intn(30))}
				v := []float64{1, float64(st.Intn(9))}
				pts = append(pts, p)
				vals = append(vals, v...)
				m.pts = append(m.pts, p)
				m.vals = append(m.vals, v)
				m.live = append(m.live, true)
			}
			tr := Build(pts, width, vals)

			check := func(op int) {
				t.Helper()
				for probe := 0; probe < 8; probe++ {
					r := geom.RectAround(geom.Point{
						X: float64(st.Intn(30)), Y: float64(st.Intn(30)),
					}, float64(1+st.Intn(12)))
					want := m.aggregate(r)
					got := make([]float64, width)
					tr.Aggregate(r, got)
					for c := range want {
						if want[c] != got[c] {
							t.Fatalf("op %d: Aggregate[%d] = %v, want %v (rect %+v)", op, c, got[c], want[c], r)
						}
					}
					got2 := make([]float64, width)
					tr.AggregateNoCascade(r, got2)
					for c := range want {
						if want[c] != got2[c] {
							t.Fatalf("op %d: AggregateNoCascade[%d] = %v, want %v", op, c, got2[c], want[c])
						}
					}
					wantIDs := m.report(r)
					if cnt := tr.Count(r); cnt != len(wantIDs) {
						t.Fatalf("op %d: Count = %d, want %d", op, cnt, len(wantIDs))
					}
					var gotIDs []int
					tr.Report(r, func(i int) { gotIDs = append(gotIDs, i) })
					sort.Ints(gotIDs)
					if len(gotIDs) != len(wantIDs) {
						t.Fatalf("op %d: Report %v, want %v", op, gotIDs, wantIDs)
					}
					for j := range gotIDs {
						if gotIDs[j] != wantIDs[j] {
							t.Fatalf("op %d: Report %v, want %v", op, gotIDs, wantIDs)
						}
					}
				}
			}

			check(-1)
			liveIDs := func() []int {
				var ids []int
				for i, l := range m.live {
					if l {
						ids = append(ids, i)
					}
				}
				return ids
			}
			for op := 0; op < 60; op++ {
				switch st.Intn(3) {
				case 0: // insert
					p := Point{X: float64(st.Intn(40)) - 5, Y: float64(st.Intn(40)) - 5}
					v := []float64{1, float64(st.Intn(9))}
					id := tr.Insert(p, v)
					if id != len(m.pts) {
						t.Fatalf("op %d: Insert id = %d, want %d", op, id, len(m.pts))
					}
					m.pts = append(m.pts, p)
					m.vals = append(m.vals, v)
					m.live = append(m.live, true)
				case 1: // remove
					ids := liveIDs()
					if len(ids) == 0 {
						continue
					}
					i := ids[st.Intn(len(ids))]
					if !tr.Remove(i) {
						t.Fatalf("op %d: Remove(%d) said already removed", op, i)
					}
					if tr.Remove(i) {
						t.Fatalf("op %d: double Remove(%d) said live", op, i)
					}
					m.live[i] = false
				case 2: // patch payload
					ids := liveIDs()
					if len(ids) == 0 {
						continue
					}
					i := ids[st.Intn(len(ids))]
					v := []float64{1, float64(st.Intn(9))}
					tr.Patch(i, v)
					copy(m.vals[i], v)
				}
				check(op)
			}
		})
	}
}

// Repatch must be bit-identical to a fresh Build over the same points
// with the new payloads — the property exec's tier-2 maintenance relies
// on. Payloads here are adversarial floats, not integers: bit equality
// must come from identical association, not exactness.
func TestRepatchBitIdenticalToBuild(t *testing.T) {
	for _, seed := range []uint64{3, 21, 77} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			st := rng.NewStream(rng.New(seed), 5)
			n := 30 + st.Intn(50)
			const width = 3
			pts := make([]Point, n)
			vals := make([]float64, n*width)
			for i := range pts {
				pts[i] = Point{X: st.Float64() * 100, Y: st.Float64() * 100}
				for c := 0; c < width; c++ {
					vals[i*width+c] = st.Float64()*1e3 - 500
				}
			}
			tr := Build(pts, width, vals)

			newVals := make([]float64, n*width)
			for i := range newVals {
				newVals[i] = st.Float64()*1e-3 + st.Float64()*1e6
			}
			tr.Repatch(newVals)
			oracle := Build(pts, width, newVals)

			for probe := 0; probe < 200; probe++ {
				r := geom.RectAround(geom.Point{X: st.Float64() * 100, Y: st.Float64() * 100},
					st.Float64()*40)
				got := make([]float64, width)
				want := make([]float64, width)
				tr.Aggregate(r, got)
				oracle.Aggregate(r, want)
				for c := range want {
					if math.Float64bits(got[c]) != math.Float64bits(want[c]) {
						t.Fatalf("probe %d col %d: repatched %v, rebuilt %v", probe, c, got[c], want[c])
					}
				}
			}
		})
	}
}
