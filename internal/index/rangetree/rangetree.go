// Package rangetree implements the layered range tree of paper Section
// 5.3.1: the index structure for *divisible* aggregates (count, sum, the
// statistical moments, centroid components) over orthogonal range queries.
//
// The structure is a balanced binary tree over the x-sorted points. Every
// node covers a contiguous x-interval and stores its points sorted by y,
// but — this is the paper's Figure 8 — instead of placing the points at the
// leaves of the y-structure, each y-position stores the *prefix aggregate*
// of all points with smaller-or-equal y. Because divisible aggregates
// satisfy agg(A\B) = f(agg(A), agg(B)) for B ⊆ A, the aggregate of any
// y-interval is recovered from two prefix lookups.
//
// A query decomposes the x-range into O(log n) canonical nodes. With plain
// binary search at each node a probe costs O(log² n); with fractional
// cascading (bridge pointers from each node's y-list into its children's,
// [Chazelle & Guibas 1986]) the y-position is located once at the root and
// then followed down in O(1) per node, giving O(log n) probes and
// O(n log n) probes-for-all-units per tick as the paper claims. Both query
// paths are exposed so the benefit is benchmarkable (ablation A1/A5).
//
// The tree is static: it is rebuilt from scratch each tick, which the paper
// argues is cheaper than dynamic maintenance for rapidly changing attributes
// such as position ("we discard the index and build a new one from scratch").
// Layering by low-volatility categorical attributes (player, unit type) is
// done above this package by building one tree per partition, exactly like
// the paper's "6 range trees — one for each player/unit type combination".
package rangetree

import (
	"sort"

	"github.com/epicscale/sgl/internal/geom"
)

// Point is an indexed location. The payload values live in a separate
// flattened slice passed to Build.
type Point struct {
	X, Y float64
}

type node struct {
	left, right *node
	lo, hi      int       // x-rank interval [lo, hi) this node covers
	ys          []float64 // y values of covered points, ascending
	ids         []int32   // original point index per y-position
	prefix      []float64 // (len(ys)+1) * width prefix aggregates
	bl, br      []int32   // fractional-cascading bridges into children
}

// Tree is a layered range tree. Build one per tick per categorical
// partition; it is safe for concurrent reads. Between rebuilds the tree
// also absorbs small updates: Repatch recomputes every prefix aggregate
// in place (bit-identical to a fresh Build when positions are unchanged),
// Patch updates one point's payload, Remove tombstones a point, and
// Insert adds "young" points held in a side buffer that queries scan
// linearly. None of the mutating methods are safe for concurrent use.
type Tree struct {
	root  *node
	xs    []float64 // x values in sorted order (rank → x)
	width int

	// Dynamic-maintenance state, materialized lazily on first mutation so
	// the rebuild-every-tick path pays nothing for it. nBuilt is the
	// number of points Build saw (xs is shared post-build state).
	nBuilt   int
	vals     []float64 // flattened payloads, indexed like Build's input
	rankOf   []int32   // original point index → x-rank
	removed  []bool    // tombstones (payload already zeroed), nil until used
	nRemoved int
	young    []youngPoint // points inserted since Build
}

// youngPoint is a point added after Build; ids continue past the built
// points' indexes.
type youngPoint struct {
	pt      Point
	vals    []float64
	removed bool
}

// Build constructs the tree over pts with a payload of `width` float64
// values per point, flattened in vals (len(vals) == len(pts)*width, point
// i owning vals[i*width : (i+1)*width]). Payloads are combined by addition;
// a payload column of all 1s yields COUNT, a column of e.posx yields
// SUM(posx), and so on. Build is O(n log n).
func Build(pts []Point, width int, vals []float64) *Tree {
	if width < 0 {
		panic("rangetree: negative width")
	}
	if len(vals) != len(pts)*width {
		panic("rangetree: vals length does not match points*width")
	}
	t := &Tree{width: width}
	n := len(pts)
	if n == 0 {
		return t
	}
	// Sort point indexes by x; ties by y then index for determinism.
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := pts[order[a]], pts[order[b]]
		if pa.X != pb.X {
			return pa.X < pb.X
		}
		if pa.Y != pb.Y {
			return pa.Y < pb.Y
		}
		return order[a] < order[b]
	})
	t.xs = make([]float64, n)
	for r, id := range order {
		t.xs[r] = pts[id].X
	}
	t.nBuilt = n
	t.root = t.build(pts, vals, order, 0, n)
	return t
}

// ensureDynamic materializes the per-point rank map and payload copy the
// mutating APIs need, reconstructing both from the leaves (a leaf's
// x-rank is its lo, its payload is prefix[width:2·width]) so Build stays
// allocation-free for the rebuild-every-tick path.
func (t *Tree) ensureDynamic() {
	if t.rankOf != nil || t.root == nil {
		return
	}
	t.rankOf = make([]int32, t.nBuilt)
	t.vals = make([]float64, t.nBuilt*t.width)
	var walk func(nd *node)
	walk = func(nd *node) {
		if nd.left != nil {
			walk(nd.left)
			walk(nd.right)
			return
		}
		id := nd.ids[0]
		t.rankOf[id] = int32(nd.lo)
		copy(t.vals[int(id)*t.width:(int(id)+1)*t.width], nd.prefix[t.width:])
	}
	walk(t.root)
}

// build constructs the subtree over x-ranks [lo, hi), returning a node
// whose y-list is the merge of its children's (mergesort over y, computing
// cascading bridges in the same pass).
func (t *Tree) build(pts []Point, vals []float64, order []int32, lo, hi int) *node {
	nd := &node{lo: lo, hi: hi}
	if hi-lo == 1 {
		id := order[lo]
		nd.ys = []float64{pts[id].Y}
		nd.ids = []int32{id}
		nd.prefix = make([]float64, 2*t.width)
		copy(nd.prefix[t.width:], vals[int(id)*t.width:(int(id)+1)*t.width])
		return nd
	}
	mid := (lo + hi) / 2
	l := t.build(pts, vals, order, lo, mid)
	r := t.build(pts, vals, order, mid, hi)
	nd.left, nd.right = l, r

	nl, nr := len(l.ys), len(r.ys)
	nd.ys = make([]float64, 0, nl+nr)
	nd.ids = make([]int32, 0, nl+nr)
	i, j := 0, 0
	for i < nl || j < nr {
		takeLeft := j >= nr || (i < nl && (l.ys[i] < r.ys[j] || (l.ys[i] == r.ys[j] && l.ids[i] <= r.ids[j])))
		if takeLeft {
			nd.ys = append(nd.ys, l.ys[i])
			nd.ids = append(nd.ids, l.ids[i])
			i++
		} else {
			nd.ys = append(nd.ys, r.ys[j])
			nd.ids = append(nd.ids, r.ids[j])
			j++
		}
	}

	// Prefix aggregates over the merged y-order.
	w := t.width
	nd.prefix = make([]float64, (len(nd.ys)+1)*w)
	for p, id := range nd.ids {
		base, prev := (p+1)*w, p*w
		vbase := int(id) * w
		for c := 0; c < w; c++ {
			nd.prefix[base+c] = nd.prefix[prev+c] + vals[vbase+c]
		}
	}

	// Bridges: bl[p] = lowerBound(l.ys, nd.ys[p]); computed by a monotone
	// two-pointer walk since nd.ys is sorted. bl[len] = len(l.ys).
	nd.bl = make([]int32, len(nd.ys)+1)
	nd.br = make([]int32, len(nd.ys)+1)
	li, ri := 0, 0
	for p, y := range nd.ys {
		for li < nl && l.ys[li] < y {
			li++
		}
		for ri < nr && r.ys[ri] < y {
			ri++
		}
		nd.bl[p], nd.br[p] = int32(li), int32(ri)
	}
	nd.bl[len(nd.ys)], nd.br[len(nd.ys)] = int32(nl), int32(nr)
	return nd
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return len(t.xs) }

// Width returns the payload width.
func (t *Tree) Width() int { return t.width }

func lowerBound(a []float64, v float64) int {
	return sort.Search(len(a), func(i int) bool { return a[i] >= v })
}

func upperBound(a []float64, v float64) int {
	return sort.Search(len(a), func(i int) bool { return a[i] > v })
}

// Aggregate adds the payload sum over all points inside r (boundary
// inclusive) into out, which must have length Width(). This is the
// fractional-cascading fast path: O(log n), plus a linear scan over any
// young points added since Build.
func (t *Tree) Aggregate(r geom.Rect, out []float64) {
	if len(out) != t.width {
		panic("rangetree: out width mismatch")
	}
	if r.Empty() {
		return
	}
	if t.root != nil {
		xlo, xhi := lowerBound(t.xs, r.MinX), upperBound(t.xs, r.MaxX)
		if xlo < xhi {
			plo, phi := lowerBound(t.root.ys, r.MinY), upperBound(t.root.ys, r.MaxY)
			if plo < phi {
				t.aggCascade(t.root, xlo, xhi, plo, phi, out)
			}
		}
	}
	t.aggYoung(r, out)
}

func (t *Tree) aggCascade(nd *node, xlo, xhi, plo, phi int, out []float64) {
	if plo >= phi || xlo >= nd.hi || xhi <= nd.lo {
		return
	}
	if xlo <= nd.lo && nd.hi <= xhi {
		w := t.width
		hiBase, loBase := phi*w, plo*w
		for c := 0; c < w; c++ {
			out[c] += nd.prefix[hiBase+c] - nd.prefix[loBase+c]
		}
		return
	}
	if nd.left == nil {
		return
	}
	t.aggCascade(nd.left, xlo, xhi, int(nd.bl[plo]), int(nd.bl[phi]), out)
	t.aggCascade(nd.right, xlo, xhi, int(nd.br[plo]), int(nd.br[phi]), out)
}

// AggregateNoCascade is Aggregate without fractional cascading: each
// canonical node performs its own O(log n) binary searches, for O(log² n)
// per probe. Kept as the ablation baseline for benchmark A5.
func (t *Tree) AggregateNoCascade(r geom.Rect, out []float64) {
	if len(out) != t.width {
		panic("rangetree: out width mismatch")
	}
	if r.Empty() {
		return
	}
	if t.root != nil {
		xlo, xhi := lowerBound(t.xs, r.MinX), upperBound(t.xs, r.MaxX)
		if xlo < xhi {
			t.aggSearch(t.root, xlo, xhi, r.MinY, r.MaxY, out)
		}
	}
	t.aggYoung(r, out)
}

func (t *Tree) aggSearch(nd *node, xlo, xhi int, ymin, ymax float64, out []float64) {
	if xlo >= nd.hi || xhi <= nd.lo {
		return
	}
	if xlo <= nd.lo && nd.hi <= xhi {
		plo, phi := lowerBound(nd.ys, ymin), upperBound(nd.ys, ymax)
		if plo >= phi {
			return
		}
		w := t.width
		hiBase, loBase := phi*w, plo*w
		for c := 0; c < w; c++ {
			out[c] += nd.prefix[hiBase+c] - nd.prefix[loBase+c]
		}
		return
	}
	if nd.left == nil {
		return
	}
	t.aggSearch(nd.left, xlo, xhi, ymin, ymax, out)
	t.aggSearch(nd.right, xlo, xhi, ymin, ymax, out)
}

// Report calls fn with the original index of every point inside r, in
// canonical-node order (young points follow, in insertion order, with
// removed points skipped). This is the classic O(log n + k) layered range
// tree enumeration, used when a plan genuinely needs the qualifying rows
// rather than an aggregate over them.
func (t *Tree) Report(r geom.Rect, fn func(i int)) {
	if r.Empty() {
		return
	}
	if t.root != nil {
		xlo, xhi := lowerBound(t.xs, r.MinX), upperBound(t.xs, r.MaxX)
		if xlo < xhi {
			plo, phi := lowerBound(t.root.ys, r.MinY), upperBound(t.root.ys, r.MaxY)
			if plo < phi {
				t.report(t.root, xlo, xhi, plo, phi, fn)
			}
		}
	}
	for j := range t.young {
		yp := &t.young[j]
		if !yp.removed && r.Contains(geom.Point{X: yp.pt.X, Y: yp.pt.Y}) {
			fn(t.nBuilt + j)
		}
	}
}

func (t *Tree) report(nd *node, xlo, xhi, plo, phi int, fn func(i int)) {
	if plo >= phi || xlo >= nd.hi || xhi <= nd.lo {
		return
	}
	if xlo <= nd.lo && nd.hi <= xhi {
		for _, id := range nd.ids[plo:phi] {
			if t.removed != nil && t.removed[id] {
				continue
			}
			fn(int(id))
		}
		return
	}
	if nd.left == nil {
		return
	}
	t.report(nd.left, xlo, xhi, int(nd.bl[plo]), int(nd.bl[phi]), fn)
	t.report(nd.right, xlo, xhi, int(nd.br[plo]), int(nd.br[phi]), fn)
}

// Count returns the number of points inside r without needing a payload
// column: it reuses Report's canonical decomposition but sums interval
// lengths instead of visiting points, so it is O(log n). With tombstones
// or young points present it falls back to enumeration.
func (t *Tree) Count(r geom.Rect) int {
	if t.nRemoved > 0 || len(t.young) > 0 {
		n := 0
		t.Report(r, func(int) { n++ })
		return n
	}
	if t.root == nil || r.Empty() {
		return 0
	}
	xlo, xhi := lowerBound(t.xs, r.MinX), upperBound(t.xs, r.MaxX)
	if xlo >= xhi {
		return 0
	}
	plo, phi := lowerBound(t.root.ys, r.MinY), upperBound(t.root.ys, r.MaxY)
	if plo >= phi {
		return 0
	}
	return t.count(t.root, xlo, xhi, plo, phi)
}

func (t *Tree) count(nd *node, xlo, xhi, plo, phi int) int {
	if plo >= phi || xlo >= nd.hi || xhi <= nd.lo {
		return 0
	}
	if xlo <= nd.lo && nd.hi <= xhi {
		return phi - plo
	}
	if nd.left == nil {
		return 0
	}
	return t.count(nd.left, xlo, xhi, int(nd.bl[plo]), int(nd.bl[phi])) +
		t.count(nd.right, xlo, xhi, int(nd.br[plo]), int(nd.br[phi]))
}

// ---------------------------------------------------------------------------
// Incremental maintenance
//
// The paper's trees are rebuilt from scratch each tick; the APIs below
// let a caller amortize that cost when only part of the point set
// changed. Repatch is the exact one: with unchanged positions it
// reproduces a fresh Build bit for bit, because the prefix aggregates are
// recomputed with the same left-to-right association over the same
// y-order. Patch/Remove/Insert are the general dynamic operations; they
// preserve query *values* (sums may associate differently, and young
// points are enumerated after canonical nodes), so use them where value
// equality — not bit equality with a rebuild — is the contract.

// aggYoung folds the young points inside r into out.
func (t *Tree) aggYoung(r geom.Rect, out []float64) {
	for j := range t.young {
		yp := &t.young[j]
		if yp.removed || !r.Contains(geom.Point{X: yp.pt.X, Y: yp.pt.Y}) {
			continue
		}
		for c := 0; c < t.width; c++ {
			out[c] += yp.vals[c]
		}
	}
}

// Repatch replaces every built point's payload and recomputes all prefix
// aggregates in place: O(n log n) additions, no sorting, no allocation.
// vals is indexed exactly like Build's (point i owns
// vals[i*width:(i+1)*width]). The resulting tree answers every query
// bit-identically to Build over the same points with the new payloads.
// Repatch requires that no Insert or Remove has occurred since Build.
func (t *Tree) Repatch(vals []float64) {
	if len(vals) != t.nBuilt*t.width {
		panic("rangetree: Repatch vals length mismatch")
	}
	if t.nRemoved > 0 || len(t.young) > 0 {
		panic("rangetree: Repatch after Insert/Remove")
	}
	if t.root == nil {
		return
	}
	if t.vals == nil {
		t.vals = make([]float64, len(vals))
	}
	copy(t.vals, vals)
	t.repatch(t.root)
}

func (t *Tree) repatch(nd *node) {
	t.recomputePrefix(nd, 0)
	if nd.left != nil {
		t.repatch(nd.left)
		t.repatch(nd.right)
	}
}

// recomputePrefix redoes nd's prefix aggregates from y-position q onward,
// reading the payloads from t.vals.
func (t *Tree) recomputePrefix(nd *node, q int) {
	w := t.width
	for p := q; p < len(nd.ids); p++ {
		base, prev, vbase := (p+1)*w, p*w, int(nd.ids[p])*w
		for c := 0; c < w; c++ {
			nd.prefix[base+c] = nd.prefix[prev+c] + t.vals[vbase+c]
		}
	}
}

// Patch replaces one point's payload (its position is fixed) and repairs
// the prefix aggregates along its root-to-leaf path. Worst case O(n) per
// call (the root's suffix), still far below a rebuild's sort-and-allocate
// cost. i is a Build index or an Insert id.
func (t *Tree) Patch(i int, vals []float64) {
	if len(vals) != t.width {
		panic("rangetree: Patch vals width mismatch")
	}
	if i >= t.nBuilt {
		yp := &t.young[i-t.nBuilt]
		if yp.removed {
			panic("rangetree: Patch of removed point")
		}
		copy(yp.vals, vals)
		return
	}
	if t.removed != nil && t.removed[i] {
		panic("rangetree: Patch of removed point")
	}
	t.ensureDynamic()
	copy(t.vals[i*t.width:(i+1)*t.width], vals)
	t.patchPath(t.root, int32(i), int(t.rankOf[i]))
}

func (t *Tree) patchPath(nd *node, id int32, rank int) {
	q := 0
	for ; q < len(nd.ids); q++ {
		if nd.ids[q] == id {
			break
		}
	}
	t.recomputePrefix(nd, q)
	if nd.left == nil {
		return
	}
	if rank < nd.left.hi {
		t.patchPath(nd.left, id, rank)
	} else {
		t.patchPath(nd.right, id, rank)
	}
}

// Remove tombstones a point: its payload is zeroed (so aggregates no
// longer see it) and Report/Count skip it. Returns false if the point was
// already removed. i is a Build index or an Insert id.
func (t *Tree) Remove(i int) bool {
	if i >= t.nBuilt {
		yp := &t.young[i-t.nBuilt]
		if yp.removed {
			return false
		}
		yp.removed = true
		return true
	}
	if t.removed == nil {
		t.removed = make([]bool, t.nBuilt)
	}
	if t.removed[i] {
		return false
	}
	if t.width > 0 {
		t.ensureDynamic()
		zero := make([]float64, t.width)
		copy(t.vals[i*t.width:(i+1)*t.width], zero)
		t.patchPath(t.root, int32(i), int(t.rankOf[i]))
	}
	t.removed[i] = true
	t.nRemoved++
	return true
}

// Insert adds a point to the young buffer and returns its id (usable with
// Patch and Remove). Young points cost O(1) to add and O(k) extra per
// query; rebuild once the buffer grows past a few percent of the tree.
func (t *Tree) Insert(pt Point, vals []float64) int {
	if len(vals) != t.width {
		panic("rangetree: Insert vals width mismatch")
	}
	id := t.nBuilt + len(t.young)
	t.young = append(t.young, youngPoint{pt: pt, vals: append([]float64(nil), vals...)})
	return id
}

// Young returns the number of points in the young buffer (including
// removed ones), a rebuild heuristic for callers.
func (t *Tree) Young() int { return len(t.young) }
