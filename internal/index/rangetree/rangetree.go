// Package rangetree implements the layered range tree of paper Section
// 5.3.1: the index structure for *divisible* aggregates (count, sum, the
// statistical moments, centroid components) over orthogonal range queries.
//
// The structure is a balanced binary tree over the x-sorted points. Every
// node covers a contiguous x-interval and stores its points sorted by y,
// but — this is the paper's Figure 8 — instead of placing the points at the
// leaves of the y-structure, each y-position stores the *prefix aggregate*
// of all points with smaller-or-equal y. Because divisible aggregates
// satisfy agg(A\B) = f(agg(A), agg(B)) for B ⊆ A, the aggregate of any
// y-interval is recovered from two prefix lookups.
//
// A query decomposes the x-range into O(log n) canonical nodes. With plain
// binary search at each node a probe costs O(log² n); with fractional
// cascading (bridge pointers from each node's y-list into its children's,
// [Chazelle & Guibas 1986]) the y-position is located once at the root and
// then followed down in O(1) per node, giving O(log n) probes and
// O(n log n) probes-for-all-units per tick as the paper claims. Both query
// paths are exposed so the benefit is benchmarkable (ablation A1/A5).
//
// The tree is static: it is rebuilt from scratch each tick, which the paper
// argues is cheaper than dynamic maintenance for rapidly changing attributes
// such as position ("we discard the index and build a new one from scratch").
// Layering by low-volatility categorical attributes (player, unit type) is
// done above this package by building one tree per partition, exactly like
// the paper's "6 range trees — one for each player/unit type combination".
package rangetree

import (
	"sort"

	"github.com/epicscale/sgl/internal/geom"
)

// Point is an indexed location. The payload values live in a separate
// flattened slice passed to Build.
type Point struct {
	X, Y float64
}

type node struct {
	left, right *node
	lo, hi      int       // x-rank interval [lo, hi) this node covers
	ys          []float64 // y values of covered points, ascending
	ids         []int32   // original point index per y-position
	prefix      []float64 // (len(ys)+1) * width prefix aggregates
	bl, br      []int32   // fractional-cascading bridges into children
}

// Tree is an immutable layered range tree. Build one per tick per
// categorical partition; it is safe for concurrent reads.
type Tree struct {
	root  *node
	xs    []float64 // x values in sorted order (rank → x)
	width int
}

// Build constructs the tree over pts with a payload of `width` float64
// values per point, flattened in vals (len(vals) == len(pts)*width, point
// i owning vals[i*width : (i+1)*width]). Payloads are combined by addition;
// a payload column of all 1s yields COUNT, a column of e.posx yields
// SUM(posx), and so on. Build is O(n log n).
func Build(pts []Point, width int, vals []float64) *Tree {
	if width < 0 {
		panic("rangetree: negative width")
	}
	if len(vals) != len(pts)*width {
		panic("rangetree: vals length does not match points*width")
	}
	t := &Tree{width: width}
	n := len(pts)
	if n == 0 {
		return t
	}
	// Sort point indexes by x; ties by y then index for determinism.
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := pts[order[a]], pts[order[b]]
		if pa.X != pb.X {
			return pa.X < pb.X
		}
		if pa.Y != pb.Y {
			return pa.Y < pb.Y
		}
		return order[a] < order[b]
	})
	t.xs = make([]float64, n)
	for r, id := range order {
		t.xs[r] = pts[id].X
	}
	t.root = t.build(pts, vals, order, 0, n)
	return t
}

// build constructs the subtree over x-ranks [lo, hi), returning a node
// whose y-list is the merge of its children's (mergesort over y, computing
// cascading bridges in the same pass).
func (t *Tree) build(pts []Point, vals []float64, order []int32, lo, hi int) *node {
	nd := &node{lo: lo, hi: hi}
	if hi-lo == 1 {
		id := order[lo]
		nd.ys = []float64{pts[id].Y}
		nd.ids = []int32{id}
		nd.prefix = make([]float64, 2*t.width)
		copy(nd.prefix[t.width:], vals[int(id)*t.width:(int(id)+1)*t.width])
		return nd
	}
	mid := (lo + hi) / 2
	l := t.build(pts, vals, order, lo, mid)
	r := t.build(pts, vals, order, mid, hi)
	nd.left, nd.right = l, r

	nl, nr := len(l.ys), len(r.ys)
	nd.ys = make([]float64, 0, nl+nr)
	nd.ids = make([]int32, 0, nl+nr)
	i, j := 0, 0
	for i < nl || j < nr {
		takeLeft := j >= nr || (i < nl && (l.ys[i] < r.ys[j] || (l.ys[i] == r.ys[j] && l.ids[i] <= r.ids[j])))
		if takeLeft {
			nd.ys = append(nd.ys, l.ys[i])
			nd.ids = append(nd.ids, l.ids[i])
			i++
		} else {
			nd.ys = append(nd.ys, r.ys[j])
			nd.ids = append(nd.ids, r.ids[j])
			j++
		}
	}

	// Prefix aggregates over the merged y-order.
	w := t.width
	nd.prefix = make([]float64, (len(nd.ys)+1)*w)
	for p, id := range nd.ids {
		base, prev := (p+1)*w, p*w
		vbase := int(id) * w
		for c := 0; c < w; c++ {
			nd.prefix[base+c] = nd.prefix[prev+c] + vals[vbase+c]
		}
	}

	// Bridges: bl[p] = lowerBound(l.ys, nd.ys[p]); computed by a monotone
	// two-pointer walk since nd.ys is sorted. bl[len] = len(l.ys).
	nd.bl = make([]int32, len(nd.ys)+1)
	nd.br = make([]int32, len(nd.ys)+1)
	li, ri := 0, 0
	for p, y := range nd.ys {
		for li < nl && l.ys[li] < y {
			li++
		}
		for ri < nr && r.ys[ri] < y {
			ri++
		}
		nd.bl[p], nd.br[p] = int32(li), int32(ri)
	}
	nd.bl[len(nd.ys)], nd.br[len(nd.ys)] = int32(nl), int32(nr)
	return nd
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return len(t.xs) }

// Width returns the payload width.
func (t *Tree) Width() int { return t.width }

func lowerBound(a []float64, v float64) int {
	return sort.Search(len(a), func(i int) bool { return a[i] >= v })
}

func upperBound(a []float64, v float64) int {
	return sort.Search(len(a), func(i int) bool { return a[i] > v })
}

// Aggregate adds the payload sum over all points inside r (boundary
// inclusive) into out, which must have length Width(). This is the
// fractional-cascading fast path: O(log n).
func (t *Tree) Aggregate(r geom.Rect, out []float64) {
	if len(out) != t.width {
		panic("rangetree: out width mismatch")
	}
	if t.root == nil || r.Empty() {
		return
	}
	xlo, xhi := lowerBound(t.xs, r.MinX), upperBound(t.xs, r.MaxX)
	if xlo >= xhi {
		return
	}
	plo, phi := lowerBound(t.root.ys, r.MinY), upperBound(t.root.ys, r.MaxY)
	if plo >= phi {
		return
	}
	t.aggCascade(t.root, xlo, xhi, plo, phi, out)
}

func (t *Tree) aggCascade(nd *node, xlo, xhi, plo, phi int, out []float64) {
	if plo >= phi || xlo >= nd.hi || xhi <= nd.lo {
		return
	}
	if xlo <= nd.lo && nd.hi <= xhi {
		w := t.width
		hiBase, loBase := phi*w, plo*w
		for c := 0; c < w; c++ {
			out[c] += nd.prefix[hiBase+c] - nd.prefix[loBase+c]
		}
		return
	}
	if nd.left == nil {
		return
	}
	t.aggCascade(nd.left, xlo, xhi, int(nd.bl[plo]), int(nd.bl[phi]), out)
	t.aggCascade(nd.right, xlo, xhi, int(nd.br[plo]), int(nd.br[phi]), out)
}

// AggregateNoCascade is Aggregate without fractional cascading: each
// canonical node performs its own O(log n) binary searches, for O(log² n)
// per probe. Kept as the ablation baseline for benchmark A5.
func (t *Tree) AggregateNoCascade(r geom.Rect, out []float64) {
	if len(out) != t.width {
		panic("rangetree: out width mismatch")
	}
	if t.root == nil || r.Empty() {
		return
	}
	xlo, xhi := lowerBound(t.xs, r.MinX), upperBound(t.xs, r.MaxX)
	if xlo >= xhi {
		return
	}
	t.aggSearch(t.root, xlo, xhi, r.MinY, r.MaxY, out)
}

func (t *Tree) aggSearch(nd *node, xlo, xhi int, ymin, ymax float64, out []float64) {
	if xlo >= nd.hi || xhi <= nd.lo {
		return
	}
	if xlo <= nd.lo && nd.hi <= xhi {
		plo, phi := lowerBound(nd.ys, ymin), upperBound(nd.ys, ymax)
		if plo >= phi {
			return
		}
		w := t.width
		hiBase, loBase := phi*w, plo*w
		for c := 0; c < w; c++ {
			out[c] += nd.prefix[hiBase+c] - nd.prefix[loBase+c]
		}
		return
	}
	if nd.left == nil {
		return
	}
	t.aggSearch(nd.left, xlo, xhi, ymin, ymax, out)
	t.aggSearch(nd.right, xlo, xhi, ymin, ymax, out)
}

// Report calls fn with the original index of every point inside r, in
// canonical-node order. This is the classic O(log n + k) layered range
// tree enumeration, used when a plan genuinely needs the qualifying rows
// rather than an aggregate over them.
func (t *Tree) Report(r geom.Rect, fn func(i int)) {
	if t.root == nil || r.Empty() {
		return
	}
	xlo, xhi := lowerBound(t.xs, r.MinX), upperBound(t.xs, r.MaxX)
	if xlo >= xhi {
		return
	}
	plo, phi := lowerBound(t.root.ys, r.MinY), upperBound(t.root.ys, r.MaxY)
	if plo >= phi {
		return
	}
	t.report(t.root, xlo, xhi, plo, phi, fn)
}

func (t *Tree) report(nd *node, xlo, xhi, plo, phi int, fn func(i int)) {
	if plo >= phi || xlo >= nd.hi || xhi <= nd.lo {
		return
	}
	if xlo <= nd.lo && nd.hi <= xhi {
		for _, id := range nd.ids[plo:phi] {
			fn(int(id))
		}
		return
	}
	if nd.left == nil {
		return
	}
	t.report(nd.left, xlo, xhi, int(nd.bl[plo]), int(nd.bl[phi]), fn)
	t.report(nd.right, xlo, xhi, int(nd.br[plo]), int(nd.br[phi]), fn)
}

// Count returns the number of points inside r without needing a payload
// column: it reuses Report's canonical decomposition but sums interval
// lengths instead of visiting points, so it is O(log n).
func (t *Tree) Count(r geom.Rect) int {
	if t.root == nil || r.Empty() {
		return 0
	}
	xlo, xhi := lowerBound(t.xs, r.MinX), upperBound(t.xs, r.MaxX)
	if xlo >= xhi {
		return 0
	}
	plo, phi := lowerBound(t.root.ys, r.MinY), upperBound(t.root.ys, r.MaxY)
	if plo >= phi {
		return 0
	}
	return t.count(t.root, xlo, xhi, plo, phi)
}

func (t *Tree) count(nd *node, xlo, xhi, plo, phi int) int {
	if plo >= phi || xlo >= nd.hi || xhi <= nd.lo {
		return 0
	}
	if xlo <= nd.lo && nd.hi <= xhi {
		return phi - plo
	}
	if nd.left == nil {
		return 0
	}
	return t.count(nd.left, xlo, xhi, int(nd.bl[plo]), int(nd.bl[phi])) +
		t.count(nd.right, xlo, xhi, int(nd.br[plo]), int(nd.br[phi]))
}
