// Package sweepline implements the paper's sweep-line technique for MIN and
// MAX aggregates (Section 5.3.1, Figure 9). MIN/MAX are not divisible, so
// the prefix-aggregate trick of the layered range tree does not apply; but
// when the query range has a constant size along one axis — true in games,
// where all units of a type share the same weapon and visibility range —
// the aggregate for *every* unit can be computed in one sweep:
//
//   - choose the constant-size axis (y here, matching the paper: "we sweep
//     in the Y direction") with half-extent ry;
//   - keep a binary tree ordered on the remaining axis x whose leaves are
//     annotated with the default value (∞ for MIN, −∞ for MAX);
//   - sweep a window of height 2·ry over the probes in ascending y: when a
//     point enters the window, write its value at its x-leaf; when a probe
//     reaches the window center, query the tree over the probe's x-range
//     (O(log n)); when a point exits, restore the default value;
//   - percolate every leaf change up the tree (the segtree package).
//
// Each point enters and exits exactly once and each probe costs one range
// query, so the whole pass is O((n+m) log n) for n points and m probes —
// the paper's O(n log^{d-1} n) with d = 2.
//
// Probes may carry different x half-extents (only the sweep axis must be
// constant) and may exclude one key, so "the weakest *other* friendly unit
// in my range" is expressible.
package sweepline

import (
	"sort"

	"github.com/epicscale/sgl/internal/index/segtree"
)

// Point is a unit being aggregated over: a location, the value entering the
// MIN/MAX (e.g. health), and the unit key reported as the arg-extremum.
type Point struct {
	X, Y  float64
	Value float64
	Key   int64
}

// Probe is one unit's query: its location, its x half-extent, and an
// optional key to exclude from its own answer (negative to disable).
type Probe struct {
	X, Y    float64
	RX      float64
	Exclude int64
}

// Result is the answer for one probe, in probe input order.
type Result struct {
	Value float64 // the extremum (identity value if nothing in range)
	Key   int64   // arg-extremum key, segtree.NoKey if nothing in range
	Found bool
}

// NoExclude disables a probe's self-exclusion.
const NoExclude int64 = -1

// Order caches a point set's x-ordering (and the segment trees sweeping
// it) so that consecutive sweeps over a slowly changing population do not
// re-sort from scratch: Patch re-inserts only the displaced entry into
// the sorted order, shifting its neighbours. An Order is not safe for
// concurrent use.
type Order struct {
	pts   []Point
	byX   []int     // x-rank → point index
	xs    []float64 // x-rank → x value
	rank  []int     // point index → x-rank
	trees [2]*segtree.Tree
}

// NewOrder copies and x-sorts the points (ties broken by key, matching
// Sweep's deterministic order).
func NewOrder(points []Point) *Order {
	return newOrder(append([]Point(nil), points...))
}

// newOrder builds an Order around the caller's slice without copying.
func newOrder(points []Point) *Order {
	o := &Order{pts: points}
	o.byX = make([]int, len(points))
	for i := range o.byX {
		o.byX[i] = i
	}
	sort.Slice(o.byX, func(a, b int) bool { return xLess(points[o.byX[a]], points[o.byX[b]]) })
	o.xs = make([]float64, len(points))
	o.rank = make([]int, len(points))
	for r, i := range o.byX {
		o.xs[r] = points[i].X
		o.rank[i] = r
	}
	return o
}

// xLess is the sweep's total x-order: by X, ties by key.
func xLess(a, b Point) bool {
	if a.X != b.X {
		return a.X < b.X
	}
	return a.Key < b.Key
}

// Len returns the number of points.
func (o *Order) Len() int { return len(o.pts) }

// Point returns point i's current value.
func (o *Order) Point(i int) Point { return o.pts[i] }

// Patch replaces point i and restores sortedness by shifting only the
// entries the move displaced: O(d + 1) for displacement d, against
// O(n log n) for a full re-sort. The resulting permutation is identical
// to re-sorting from scratch (the order is total), so sweeps over a
// patched Order match sweeps over a freshly built one exactly.
func (o *Order) Patch(i int, p Point) {
	o.pts[i] = p
	r := o.rank[i]
	for r > 0 && xLess(p, o.pts[o.byX[r-1]]) {
		j := o.byX[r-1]
		o.byX[r], o.rank[j], o.xs[r] = j, r, o.pts[j].X
		r--
	}
	for r < len(o.byX)-1 && xLess(o.pts[o.byX[r+1]], p) {
		j := o.byX[r+1]
		o.byX[r], o.rank[j], o.xs[r] = j, r, o.pts[j].X
		r++
	}
	o.byX[r], o.rank[i], o.xs[r] = i, r, p.X
}

// Sweep computes, for every probe, the op-extremum of Value over points
// with |p.X−probe.X| ≤ probe.RX and |p.Y−probe.Y| ≤ ry. All boundaries are
// inclusive, matching the paper's SQL range conditions. ry must be the same
// for all probes — the precondition the sweep technique requires; the
// planner only selects this operator when the script's range is a per-type
// constant.
func Sweep(points []Point, probes []Probe, ry float64, op segtree.Op) []Result {
	return newOrder(points).Sweep(probes, ry, op)
}

// Sweep runs one sweep over the ordered points, reusing the Order's
// cached x-permutation and (Reset) segment tree. It is identical in
// results and result order to the package-level Sweep.
func (o *Order) Sweep(probes []Probe, ry float64, op segtree.Op) []Result {
	points := o.pts
	results := make([]Result, len(probes))
	if len(points) == 0 || len(probes) == 0 {
		for i := range results {
			results[i] = Result{Value: identity(op), Key: segtree.NoKey}
		}
		return results
	}
	xs, rank := o.xs, o.rank

	// Points sorted by y drive both the enter stream (at y−ry) and the
	// exit stream (at y+ry): with constant ry both streams are the same
	// order.
	byY := make([]int, len(points))
	copy(byY, o.byX) // start from a deterministic order
	sort.SliceStable(byY, func(a, b int) bool { return points[byY[a]].Y < points[byY[b]].Y })

	// Probes sorted by y; ties keep input order for determinism.
	probeOrder := make([]int, len(probes))
	for i := range probeOrder {
		probeOrder[i] = i
	}
	sort.SliceStable(probeOrder, func(a, b int) bool { return probes[probeOrder[a]].Y < probes[probeOrder[b]].Y })

	tree := o.trees[op]
	if tree == nil || tree.Len() != len(points) {
		tree = segtree.New(len(points), op)
		o.trees[op] = tree
	} else {
		tree.Reset()
	}
	active := make(map[int64]int, len(points)) // key → point index, for exclusion
	enter, exit := 0, 0
	for _, pi := range probeOrder {
		pr := probes[pi]
		// Activate points whose window includes pr.Y: y−ry ≤ pr.Y.
		for enter < len(byY) && points[byY[enter]].Y-ry <= pr.Y {
			pt := points[byY[enter]]
			tree.Set(rank[byY[enter]], pt.Value, pt.Key)
			active[pt.Key] = byY[enter]
			enter++
		}
		// Deactivate points that have fallen behind: y+ry < pr.Y.
		for exit < len(byY) && points[byY[exit]].Y+ry < pr.Y {
			pt := points[byY[exit]]
			tree.Clear(rank[byY[exit]])
			delete(active, pt.Key)
			exit++
		}

		lo := sort.SearchFloat64s(xs, pr.X-pr.RX)
		hi := sort.Search(len(xs), func(i int) bool { return xs[i] > pr.X+pr.RX })

		// Self-exclusion: temporarily blank the excluded unit's leaf.
		var restored bool
		var exIdx int
		if pr.Exclude >= 0 {
			if idx, ok := active[pr.Exclude]; ok {
				tree.Clear(rank[idx])
				restored, exIdx = true, idx
			}
		}
		v, k := tree.Query(lo, hi)
		if restored {
			pt := points[exIdx]
			tree.Set(rank[exIdx], pt.Value, pt.Key)
		}
		results[pi] = Result{Value: v, Key: k, Found: k != segtree.NoKey}
	}
	return results
}

func identity(op segtree.Op) float64 {
	return segtree.New(0, op).Identity()
}
