package sweepline

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/epicscale/sgl/internal/index/segtree"
	"github.com/epicscale/sgl/internal/rng"
)

// brute mirrors the contract of Sweep exactly, with tie-break on key.
func brute(points []Point, probes []Probe, ry float64, op segtree.Op) []Result {
	out := make([]Result, len(probes))
	for i, pr := range probes {
		best := Result{Value: identity(op), Key: segtree.NoKey}
		for _, p := range points {
			if p.Key == pr.Exclude {
				continue
			}
			if math.Abs(p.X-pr.X) > pr.RX || math.Abs(p.Y-pr.Y) > ry {
				continue
			}
			better := false
			switch {
			case !best.Found:
				better = true
			case op == segtree.Min && (p.Value < best.Value || (p.Value == best.Value && p.Key < best.Key)):
				better = true
			case op == segtree.Max && (p.Value > best.Value || (p.Value == best.Value && p.Key < best.Key)):
				better = true
			}
			if better {
				best = Result{Value: p.Value, Key: p.Key, Found: true}
			}
		}
		out[i] = best
	}
	return out
}

func randomScene(seed int64, nPts, nProbes int, side float64) ([]Point, []Probe) {
	st := rng.NewStream(rng.New(uint64(seed)), 31)
	pts := make([]Point, nPts)
	for i := range pts {
		pts[i] = Point{
			X:     math.Floor(st.Float64() * side),
			Y:     math.Floor(st.Float64() * side),
			Value: math.Floor(st.Float64() * 100),
			Key:   int64(i),
		}
	}
	probes := make([]Probe, nProbes)
	for i := range probes {
		probes[i] = Probe{
			X:       math.Floor(st.Float64() * side),
			Y:       math.Floor(st.Float64() * side),
			RX:      math.Floor(st.Float64() * side / 3),
			Exclude: NoExclude,
		}
	}
	return pts, probes
}

func TestEmptyInputs(t *testing.T) {
	res := Sweep(nil, []Probe{{X: 0, Y: 0, RX: 5, Exclude: NoExclude}}, 5, segtree.Min)
	if len(res) != 1 || res[0].Found {
		t.Fatalf("no points: %+v", res)
	}
	if res := Sweep([]Point{{X: 1, Y: 1, Value: 2, Key: 3}}, nil, 5, segtree.Min); len(res) != 0 {
		t.Fatalf("no probes: %+v", res)
	}
}

func TestSinglePointInAndOut(t *testing.T) {
	pts := []Point{{X: 5, Y: 5, Value: 42, Key: 9}}
	probes := []Probe{
		{X: 5, Y: 5, RX: 1, Exclude: NoExclude},  // dead center
		{X: 6, Y: 6, RX: 1, Exclude: NoExclude},  // corner, boundary inclusive
		{X: 8, Y: 5, RX: 1, Exclude: NoExclude},  // out of x range
		{X: 5, Y: 8, RX: 10, Exclude: NoExclude}, // out of y range
	}
	res := Sweep(pts, probes, 1, segtree.Min)
	if !res[0].Found || res[0].Value != 42 || res[0].Key != 9 {
		t.Fatalf("center probe: %+v", res[0])
	}
	if !res[1].Found {
		t.Fatalf("boundary probe should find the point: %+v", res[1])
	}
	if res[2].Found || res[3].Found {
		t.Fatalf("out-of-range probes found the point: %+v %+v", res[2], res[3])
	}
}

func TestExclusion(t *testing.T) {
	pts := []Point{
		{X: 0, Y: 0, Value: 10, Key: 1},
		{X: 1, Y: 0, Value: 20, Key: 2},
	}
	probes := []Probe{
		{X: 0, Y: 0, RX: 5, Exclude: 1},
		{X: 0, Y: 0, RX: 5, Exclude: NoExclude},
		{X: 0, Y: 0, RX: 5, Exclude: 99}, // excluding an absent key is a no-op
	}
	res := Sweep(pts, probes, 5, segtree.Min)
	if res[0].Key != 2 || res[0].Value != 20 {
		t.Fatalf("exclusion failed: %+v", res[0])
	}
	if res[1].Key != 1 || res[1].Value != 10 {
		t.Fatalf("no-exclusion wrong: %+v", res[1])
	}
	if res[2].Key != 1 {
		t.Fatalf("absent exclusion wrong: %+v", res[2])
	}
}

func TestExclusionRestoresLeaf(t *testing.T) {
	// Two probes at the same y, the first excluding the minimum: the
	// second must still see it (the leaf must be restored).
	pts := []Point{{X: 0, Y: 0, Value: 1, Key: 5}, {X: 1, Y: 0, Value: 9, Key: 6}}
	probes := []Probe{
		{X: 0, Y: 0, RX: 5, Exclude: 5},
		{X: 0, Y: 0, RX: 5, Exclude: NoExclude},
	}
	res := Sweep(pts, probes, 5, segtree.Min)
	if res[0].Key != 6 {
		t.Fatalf("probe 0: %+v", res[0])
	}
	if res[1].Key != 5 || res[1].Value != 1 {
		t.Fatalf("leaf not restored: %+v", res[1])
	}
}

func TestMinAndMax(t *testing.T) {
	pts := []Point{
		{X: 0, Y: 0, Value: 5, Key: 1},
		{X: 1, Y: 1, Value: 9, Key: 2},
		{X: 2, Y: 0, Value: 2, Key: 3},
	}
	probe := []Probe{{X: 1, Y: 0, RX: 3, Exclude: NoExclude}}
	if res := Sweep(pts, probe, 3, segtree.Min); res[0].Value != 2 || res[0].Key != 3 {
		t.Fatalf("min: %+v", res[0])
	}
	if res := Sweep(pts, probe, 3, segtree.Max); res[0].Value != 9 || res[0].Key != 2 {
		t.Fatalf("max: %+v", res[0])
	}
}

func TestTieBreaksTowardSmallerKey(t *testing.T) {
	pts := []Point{
		{X: 0, Y: 0, Value: 7, Key: 30},
		{X: 1, Y: 0, Value: 7, Key: 10},
		{X: 2, Y: 0, Value: 7, Key: 20},
	}
	res := Sweep(pts, []Probe{{X: 1, Y: 0, RX: 5, Exclude: NoExclude}}, 5, segtree.Min)
	if res[0].Key != 10 {
		t.Fatalf("tie should pick smallest key, got %d", res[0].Key)
	}
}

func TestVaryingRXConstantRY(t *testing.T) {
	// Different probes may have different x half-extents; only ry is fixed.
	pts := []Point{
		{X: 0, Y: 0, Value: 1, Key: 1},
		{X: 10, Y: 0, Value: 2, Key: 2},
	}
	probes := []Probe{
		{X: 5, Y: 0, RX: 2, Exclude: NoExclude},  // neither in x-range
		{X: 5, Y: 0, RX: 20, Exclude: NoExclude}, // both
	}
	res := Sweep(pts, probes, 1, segtree.Min)
	if res[0].Found {
		t.Fatalf("narrow probe found: %+v", res[0])
	}
	if !res[1].Found || res[1].Value != 1 {
		t.Fatalf("wide probe: %+v", res[1])
	}
}

func TestAgainstBruteRandom(t *testing.T) {
	for _, op := range []segtree.Op{segtree.Min, segtree.Max} {
		pts, probes := randomScene(3, 300, 200, 50)
		// Give some probes an exclusion.
		for i := range probes {
			if i%3 == 0 {
				probes[i].Exclude = int64(i % len(pts))
			}
		}
		got := Sweep(pts, probes, 7, op)
		want := brute(pts, probes, 7, op)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("op=%v probe %d: got %+v, want %+v", op, i, got[i], want[i])
			}
		}
	}
}

// Property: Sweep equals brute force on random scenes with random ry.
func TestSweepProperty(t *testing.T) {
	f := func(seed int64, nPts, nProbes, ryRaw uint8) bool {
		pts, probes := randomScene(seed, int(nPts%50)+1, int(nProbes%30)+1, 20)
		ry := float64(ryRaw % 15)
		got := Sweep(pts, probes, ry, segtree.Min)
		want := brute(pts, probes, ry, segtree.Min)
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSweep(b *testing.B) {
	pts, probes := randomScene(42, 10000, 10000, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sweep(pts, probes, 50, segtree.Min)
	}
}

func BenchmarkBruteMin(b *testing.B) {
	pts, probes := randomScene(42, 2000, 2000, 450)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		brute(pts, probes, 50, segtree.Min)
	}
}
