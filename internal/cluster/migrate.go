package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"

	"github.com/epicscale/sgl/internal/server"
)

// MigrateRequest asks the gateway to move a session to another node by
// checkpoint transfer. Tuning fields ride along because restore-time
// tuning is exactly what checkpoints were designed to carry across
// machines (contract #3): a migration is the moment to give a world
// more workers or flip incremental maintenance.
type MigrateRequest struct {
	Session string `json:"session"`
	// Target names the destination node; empty picks the session's next
	// node in rendezvous preference order (skipping the current owner).
	Target string `json:"target,omitempty"`

	// Restore-time tuning on the target; zero values keep the engine
	// defaults (they are deliberately NOT copied from the source — a
	// migration that must preserve tuning passes it explicitly).
	Workers              int     `json:"workers,omitempty"`
	Incremental          bool    `json:"incremental,omitempty"`
	IncrementalThreshold float64 `json:"incthreshold,omitempty"`
	Compact              bool    `json:"compact,omitempty"`
	// TickRate for the target's clock; 0 resumes the source's rate if
	// its clock was running (a migration never silently pauses a world),
	// negative leaves the target paused.
	TickRate float64 `json:"tickrate,omitempty"`
}

// MigrateResponse reports a completed migration.
type MigrateResponse struct {
	Session string `json:"session"`
	From    string `json:"from"`
	To      string `json:"to"`
	// Tick is the world's tick at transfer: every command acknowledged
	// before the migration began is inside the moved state.
	Tick int64 `json:"tick"`
}

func (g *Gateway) handleMigrate(w http.ResponseWriter, r *http.Request) {
	var req MigrateRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "gateway: migrate body: %v", err)
		return
	}
	resp, err := g.Migrate(req)
	if err != nil {
		g.migrateErrs.Inc()
		writeErr(w, http.StatusConflict, "gateway: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// Migrate moves a session to another node by checkpoint transfer and
// atomically repoints its route:
//
//  1. take the route (new non-stream requests for the session park),
//  2. drain requests already in flight — so every acknowledged command
//     response was fully written before the state is read,
//  3. stop the source clock,
//  4. stream the source checkpoint (Session.Checkpoint drains the
//     admission queues: all acknowledged commands are in the stream),
//  5. PUT it on the target with the requested restore-time tuning,
//  6. repoint the route and delete the source world,
//  7. release the parked requests — they proxy to the target.
//
// On any failure before the repoint the source is restored (clock
// restarted if it was running) and the route is untouched, so the
// worst case is a pause, never a loss. Open SSE subscriptions to the
// source end when the source world is deleted; the client's reconnect
// through the gateway lands on the target.
func (g *Gateway) Migrate(req MigrateRequest) (*MigrateResponse, error) {
	g.rmu.RLock()
	rt, ok := g.routes[req.Session]
	g.rmu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("no route for session %q", req.Session)
	}

	// Take the route.
	rt.mu.Lock()
	if rt.migrating != nil {
		rt.mu.Unlock()
		return nil, fmt.Errorf("session %q is already migrating", req.Session)
	}
	hold := make(chan struct{})
	rt.migrating = hold
	src := rt.node
	rt.mu.Unlock()
	var repointTo *nodeState // non-nil once the target holds the state
	defer func() {
		rt.mu.Lock()
		if repointTo != nil {
			rt.node = repointTo
		}
		rt.migrating = nil
		rt.mu.Unlock()
		close(hold)
	}()

	// Resolve the target now that the source is pinned.
	var dst *nodeState
	if req.Target == "" {
		for _, ns := range g.place(req.Session) {
			if ns != src {
				dst = ns
				break
			}
		}
		if dst == nil {
			return nil, fmt.Errorf("no alive node other than %s to migrate %q to", src.node.Name, req.Session)
		}
		req.Target = dst.node.Name
	} else {
		dst = g.byName[req.Target]
		if dst == nil {
			return nil, fmt.Errorf("unknown target node %q", req.Target)
		}
		if dst == src {
			return nil, fmt.Errorf("session %q is already on %s", req.Session, req.Target)
		}
		if !dst.alive.Load() {
			return nil, fmt.Errorf("target node %s is not alive", req.Target)
		}
	}

	// Drain in-flight requests: after Wait returns, every response the
	// gateway has relayed for this session is complete.
	rt.inflight.Wait()

	sessURL := src.node.URL + "/v1/sessions/" + req.Session
	var st server.Status
	if err := g.getJSON(sessURL, &st); err != nil {
		return nil, fmt.Errorf("source status: %w", err)
	}
	if st.Running {
		if err := g.postOK(sessURL + "/stop"); err != nil {
			return nil, fmt.Errorf("stop source clock: %w", err)
		}
	}
	// From here on a failure must restart the source clock.
	fail := func(err error) (*MigrateResponse, error) {
		if st.Running {
			body, _ := json.Marshal(server.RunRequest{TickRate: st.TickRate})
			resp, rerr := g.client.Post(sessURL+"/run", "application/json", bytes.NewReader(body))
			if rerr == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
		return nil, err
	}

	ck, err := g.client.Get(sessURL + "/checkpoint")
	if err != nil {
		return fail(fmt.Errorf("fetch source checkpoint: %w", err))
	}
	ckBytes, err := io.ReadAll(ck.Body)
	ck.Body.Close()
	if err != nil || ck.StatusCode != http.StatusOK {
		return fail(fmt.Errorf("fetch source checkpoint: status %d, %v", ck.StatusCode, err))
	}

	// Push to the target under the requested tuning. The clock resumes
	// on the target in the same PUT (?tickrate) — there is no window
	// where the world exists but a client could double-start it.
	rate := req.TickRate
	if rate == 0 && st.Running {
		rate = st.TickRate
	}
	if rate < 0 {
		rate = 0
	}
	q := url.Values{}
	if req.Workers != 0 {
		q.Set("workers", strconv.Itoa(req.Workers))
	}
	if req.Incremental {
		q.Set("incremental", "true")
	}
	if req.IncrementalThreshold != 0 {
		q.Set("incthreshold", strconv.FormatFloat(req.IncrementalThreshold, 'g', -1, 64))
	}
	if req.Compact {
		q.Set("compact", "true")
	}
	if rate != 0 || st.Running {
		q.Set("tickrate", strconv.FormatFloat(rate, 'g', -1, 64))
	}
	putURL := dst.node.URL + "/v1/sessions/" + req.Session + "/checkpoint"
	if enc := q.Encode(); enc != "" {
		putURL += "?" + enc
	}
	putReq, err := http.NewRequest(http.MethodPut, putURL, bytes.NewReader(ckBytes))
	if err != nil {
		return fail(err)
	}
	putResp, err := g.client.Do(putReq)
	if err != nil {
		return fail(fmt.Errorf("push checkpoint to %s: %w", dst.node.Name, err))
	}
	putBody, _ := io.ReadAll(putResp.Body)
	putResp.Body.Close()
	if putResp.StatusCode != http.StatusCreated {
		return fail(fmt.Errorf("push checkpoint to %s: status %d: %s", dst.node.Name, putResp.StatusCode, putBody))
	}
	var created server.CreateResponse
	_ = json.Unmarshal(putBody, &created)

	// The target holds the authoritative state now: repoint (applied in
	// the deferred release, under the route lock) before worrying about
	// the source's leftovers.
	repointTo = dst
	src.worlds.Add(-1)
	dst.worlds.Add(1)
	g.migrations.Inc()

	delReq, _ := http.NewRequest(http.MethodDelete, sessURL, nil)
	delResp, err := g.client.Do(delReq)
	if err == nil {
		io.Copy(io.Discard, delResp.Body)
		delResp.Body.Close()
		err = okStatus(delResp.StatusCode)
	}
	if err != nil {
		// The world moved, but a paused orphan remains on the source; the
		// route already points at the target, so the orphan serves nothing.
		return &MigrateResponse{Session: req.Session, From: src.node.Name, To: dst.node.Name, Tick: created.Tick},
			fmt.Errorf("migrated, but deleting the source world on %s failed: %w", src.node.Name, err)
	}
	return &MigrateResponse{Session: req.Session, From: src.node.Name, To: dst.node.Name, Tick: created.Tick}, nil
}

func okStatus(code int) error {
	if code < 200 || code > 299 {
		return fmt.Errorf("status %d", code)
	}
	return nil
}

func (g *Gateway) getJSON(url string, out any) error {
	resp, err := g.client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := okStatus(resp.StatusCode); err != nil {
		return err
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (g *Gateway) postOK(url string) error {
	resp, err := g.client.Post(url, "application/json", nil)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return okStatus(resp.StatusCode)
}
