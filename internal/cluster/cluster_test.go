// Shared fixtures for the cluster tier tests: in-process sgld nodes,
// a gateway fronting them, and small HTTP helpers mirroring the server
// package's test idiom.
package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/epicscale/sgl/internal/server"
)

// node is one in-process sgld: registry + HTTP server.
type node struct {
	ts  *httptest.Server
	reg *server.Registry
}

// newNode starts an in-process daemon with a temp data dir.
func newNode(t *testing.T) *node {
	t.Helper()
	reg := server.NewRegistry()
	ts := httptest.NewServer(server.New(reg, t.TempDir()))
	t.Cleanup(func() {
		ts.Close()
		reg.Close()
	})
	return &node{ts: ts, reg: reg}
}

// newCluster starts n nodes and a gateway fronting them, probed once so
// placement sees them alive.
func newCluster(t *testing.T, n int) (*Gateway, *httptest.Server, []*node) {
	t.Helper()
	nodes := make([]*node, n)
	cfg := Config{ProbeEvery: time.Hour} // tests probe explicitly
	for i := range nodes {
		nodes[i] = newNode(t)
		cfg.Nodes = append(cfg.Nodes, Node{Name: fmt.Sprintf("node%d", i), URL: nodes[i].ts.URL})
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	t.Cleanup(g.Close)
	gw := httptest.NewServer(g)
	t.Cleanup(gw.Close)
	return g, gw, nodes
}

// try performs one JSON request, decoding the response into out when
// non-nil. Goroutine-safe (no t.Fatal).
func try(method, url string, body, out any) (int, error) {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, fmt.Errorf("decode %s %s response %q: %w", method, url, data, err)
		}
	}
	return resp.StatusCode, nil
}

// do is try with t.Fatal on transport errors.
func do(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	code, err := try(method, url, body, out)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	return code
}

// fetchCheckpoint streams a session's checkpoint bytes.
func fetchCheckpoint(t *testing.T, base, name string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/sessions/" + name + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint %s: status %d", name, resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
