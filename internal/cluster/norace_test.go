//go:build !race

package cluster

// raceEnabled reports whether the race detector is compiled in; see
// race_test.go.
const raceEnabled = false
