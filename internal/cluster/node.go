// Package cluster is the multi-node tier over sgld: a gateway that
// places sessions on a fleet of daemons and proxies their routes
// (cmd/sglgw), plus journal-streaming follower replicas that serve
// spectator load off the writer (sgld -follow).
//
// The sixth byte-exactness contract lives here: a world driven through
// the gateway — creates, commands, spectators, subscriptions, even a
// live migration mid-run — checkpoints byte-identically to the same
// traffic sent straight at a node (TestRoutedMatchesDirect), and a
// follower replica bootstrapped from the writer's checkpoint and
// advanced over its journal answers queries byte-identically to the
// writer at the same tick (TestReplicaMatchesWriter). Both stand on
// contracts #3 (checkpoints are a migration vehicle) and #5 (replayed ≡
// live): the cluster tier adds routing, not semantics.
package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sync/atomic"
	"time"

	"github.com/epicscale/sgl/internal/server"
)

// Node is one sgld daemon in the fleet, as configured.
type Node struct {
	// Name identifies the node in placement hashing and operator APIs; it
	// must be stable across gateway restarts (rendezvous scores hash it).
	Name string `json:"name"`
	// URL is the node's base URL, e.g. "http://10.0.0.7:8080".
	URL string `json:"url"`
}

// nodeState is a Node plus the gateway's live view of it: the reverse
// proxy that fronts it, and the last health probe's verdict and load.
type nodeState struct {
	node   Node
	target *url.URL
	proxy  *httputil.ReverseProxy

	// alive is the last probe's verdict; a dead node receives no new
	// placements (existing routes keep pointing at it — a blip must not
	// strand sessions).
	alive atomic.Bool
	// worlds is the node's world count from the last /readyz probe,
	// nudged optimistically on create/migrate so bursts between probes
	// still spread.
	worlds atomic.Int64
	// probeErr is the last probe failure, for /gw/nodes ("" when alive).
	probeErr atomic.Value // string
}

// NodeStatus is one node's row in the gateway's /gw/nodes report.
type NodeStatus struct {
	Name     string `json:"name"`
	URL      string `json:"url"`
	Alive    bool   `json:"alive"`
	Worlds   int64  `json:"worlds"`
	ProbeErr string `json:"probe_error,omitempty"`
}

func newNodeState(n Node) (*nodeState, error) {
	target, err := url.Parse(n.URL)
	if err != nil {
		return nil, fmt.Errorf("cluster: node %s: parse url %q: %w", n.Name, n.URL, err)
	}
	if target.Scheme == "" || target.Host == "" {
		return nil, fmt.Errorf("cluster: node %s: url %q needs a scheme and host", n.Name, n.URL)
	}
	ns := &nodeState{node: n, target: target}
	ns.probeErr.Store("")
	// Rewrite-based proxy: the request path is already the node's path
	// (the gateway serves the same /v1/sessions tree), so only the
	// destination changes. Go's ReverseProxy flushes text/event-stream
	// responses per write, which is what lets /subscribe stream through
	// this hop (pinned by TestSubscribeThroughReverseProxy on the server
	// side and the gateway differentials here).
	ns.proxy = &httputil.ReverseProxy{
		Rewrite: func(pr *httputil.ProxyRequest) {
			pr.SetURL(target)
			pr.SetXForwarded()
		},
	}
	return ns, nil
}

// status snapshots the node for /gw/nodes.
func (ns *nodeState) status() NodeStatus {
	return NodeStatus{
		Name:     ns.node.Name,
		URL:      ns.node.URL,
		Alive:    ns.alive.Load(),
		Worlds:   ns.worlds.Load(),
		ProbeErr: ns.probeErr.Load().(string),
	}
}

// probe hits the node's /readyz and updates alive + load.
func (ns *nodeState) probe(client *http.Client) {
	resp, err := client.Get(ns.node.URL + "/readyz")
	if err != nil {
		ns.alive.Store(false)
		ns.probeErr.Store(err.Error())
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		ns.alive.Store(false)
		ns.probeErr.Store(fmt.Sprintf("readyz status %d", resp.StatusCode))
		return
	}
	var ready server.ReadyResponse
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		ns.alive.Store(false)
		ns.probeErr.Store(fmt.Sprintf("readyz decode: %v", err))
		return
	}
	ns.worlds.Store(int64(ready.Worlds))
	ns.probeErr.Store("")
	ns.alive.Store(true)
}

// defaultProbeEvery is the health probe cadence when Config leaves it 0.
const defaultProbeEvery = 2 * time.Second

// probeLoop re-probes every node on a fixed cadence until stop closes.
func (g *Gateway) probeLoop() {
	defer close(g.probeDone)
	t := time.NewTicker(g.probeEvery)
	defer t.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-t.C:
			g.ProbeNow()
		}
	}
}

// ProbeNow probes every node once, synchronously. Start calls it before
// serving (placement needs a live view immediately); tests call it to
// refresh load counts deterministically.
func (g *Gateway) ProbeNow() {
	for _, ns := range g.nodes {
		ns.probe(g.client)
	}
	alive := 0
	for _, ns := range g.nodes {
		if ns.alive.Load() {
			alive++
		}
	}
	g.nodesAlive.Set(float64(alive))
}
