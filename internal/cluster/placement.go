package cluster

import (
	"hash/fnv"
	"sort"
)

// Placement is rendezvous (highest-random-weight) hashing: every node
// scores FNV-1a(node name, session name) and the highest score wins.
// Each session's preference order is an independent pseudo-random
// permutation of the fleet, so sessions spread evenly, a dead node's
// sessions redistribute without moving anyone else's, and the choice is
// a pure function of the two names — any gateway replica computes the
// same answer with no coordination. Ties (and only ties) break toward
// the less-loaded node, then the lexically smaller name, keeping the
// order total and deterministic.

// rendezvousScore hashes (node, session) into the node's weight for the
// session. The NUL separator keeps ("ab","c") and ("a","bc") distinct.
// Raw FNV-1a is NOT enough here: a difference in the first bytes (the
// node name) persists as a roughly constant multiplicative offset
// through any shared suffix, so one node would outscore another for
// nearly every session. The splitmix64 finalizer avalanches the state
// so per-session winners are actually uniform.
func rendezvousScore(node, session string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(node))
	h.Write([]byte{0})
	h.Write([]byte(session))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// place returns the alive nodes in placement-preference order for a
// session. Empty means no node is alive.
func (g *Gateway) place(session string) []*nodeState {
	type scored struct {
		ns     *nodeState
		score  uint64
		worlds int64
	}
	alive := make([]scored, 0, len(g.nodes))
	for _, ns := range g.nodes {
		if !ns.alive.Load() {
			continue
		}
		alive = append(alive, scored{ns, rendezvousScore(ns.node.Name, session), ns.worlds.Load()})
	}
	sort.Slice(alive, func(i, j int) bool {
		if alive[i].score != alive[j].score {
			return alive[i].score > alive[j].score
		}
		if alive[i].worlds != alive[j].worlds {
			return alive[i].worlds < alive[j].worlds
		}
		return alive[i].ns.node.Name < alive[j].ns.node.Name
	})
	out := make([]*nodeState, len(alive))
	for i, s := range alive {
		out[i] = s.ns
	}
	return out
}
